# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep them in sync.

GO ?= go

.PHONY: all build lint lint-baseline test test-invariants bench bench-quick bench-routing bench-dataplane bench-dataplane-quick bench-partitions bench-churn bench-dcdm bench-dcdm-quick bench-domains smoke-parallel smoke-faults smoke-partitions smoke-churn smoke-dcdm smoke-domains fmt

all: lint test

build:
	$(GO) build ./...

# gofmt, go vet, then the repo's own analysis suite (cmd/scmplint): the
# determinism analyzers plus the dataflow analyzers (poollife, hotalloc,
# detshared) over every module package, _test.go files included. The
# full stable-sorted findings list (suppressed entries marked) lands in
# scmplint.json as the CI artifact; the run fails on any finding not
# covered by an inline ignore or the justified baseline
# (.scmplint-baseline.json).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/scmplint -tests -json ./... > scmplint.json

# Regenerate the suppression baseline from the current findings,
# preserving existing justifications. New entries start unjustified and
# must have a justification written before `make lint` accepts them.
lint-baseline:
	$(GO) run ./cmd/scmplint -tests -write-baseline ./...

test:
	$(GO) test ./...

# Same tests with the runtime invariant hooks armed: every committed
# tree, every DCDM mutation and every routed fabric configuration is
# re-verified (see internal/invariant).
test-invariants:
	$(GO) test -tags invariants ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Fast benchmark pass: just the serial-vs-parallel runner comparison.
bench-quick:
	$(GO) test -bench Fig89Parallelism -benchtime 1x -run '^$$' .

# Routing-engine perf gate: single-source, all-pairs, next-hop and
# fault-recompute benchmarks with allocation counts. The raw text
# (BENCH_routing.txt) is benchstat-compatible; cmd/benchjson converts
# it to BENCH_routing.json for the acceptance record. BENCHTIME=1x
# gives the quick CI pass; the default 3x smooths single-run noise.
BENCHTIME ?= 3x
bench-routing:
	{ $(GO) test -bench 'Shortest|AllPairs|NextHopTable' -benchtime $(BENCHTIME) -benchmem -run '^$$' ./internal/topology/ && \
	  $(GO) test -bench FaultRecompute -benchtime $(BENCHTIME) -benchmem -run '^$$' . ; } | tee BENCH_routing.txt
	$(GO) run ./cmd/benchjson < BENCH_routing.txt > BENCH_routing.json

# Data-plane perf gate: steady-state per-packet forwarding cost of the
# pooled scheduler + typed-sink path against the preserved reference
# path (closure per hop, map-keyed stores) on the 400-node Waxman
# instance under the Fig. 8/9 load. The acceptance record is
# BENCH_dataplane.txt/.json: >=10x fewer allocs per packet-hop and
# >=2x events/sec, fast vs ref.
DATAPLANE_BENCHTIME ?= 20000x
bench-dataplane:
	$(GO) test -bench 'DataPlane$$' -benchtime $(DATAPLANE_BENCHTIME) -benchmem -run '^$$' . | tee BENCH_dataplane.txt
	$(GO) run ./cmd/benchjson BENCH_dataplane.txt > BENCH_dataplane.json

# Quick CI pass of the same benchmark (no artefact files).
bench-dataplane-quick:
	$(GO) test -bench 'DataPlane$$' -benchtime 500x -benchmem -run '^$$' .

# Partitioned-drive perf gate: the 8-source Fig. 8/9 load over
# partition counts 1/2/4/8 (k=1 is the serial baseline). The acceptance
# record is BENCH_partitions.txt/.json: on an 8-core runner k=8 must
# reach >=3x the k=1 events/sec; hops/op is identical at every k by the
# determinism contract.
PARTITIONS_BENCHTIME ?= 2000x
bench-partitions:
	$(GO) test -bench DataPlanePartitioned -benchtime $(PARTITIONS_BENCHTIME) -benchmem -run '^$$' . | tee BENCH_partitions.txt
	$(GO) run ./cmd/benchjson BENCH_partitions.txt > BENCH_partitions.json

# Churn perf gate: the high-churn membership engine with the overload
# defences on (2000 events/s, 5% control loss). The acceptance record
# is BENCH_churn.txt/.json: simulator events/sec plus the peak
# pending-operation queue the admission limit bounds.
CHURN_BENCHTIME ?= 3x
bench-churn:
	$(GO) test -bench 'BenchmarkChurn$$' -benchtime $(CHURN_BENCHTIME) -benchmem -run '^$$' . | tee BENCH_churn.txt
	$(GO) run ./cmd/benchjson BENCH_churn.txt > BENCH_churn.json

# Incremental-DCDM perf gate: steady-state joins, batched leaves and a
# whole churn lifecycle against the preserved map-backed reference
# engine (internal/mtree/ref.go) on the 400-node/128-member fixture.
# The acceptance record is BENCH_dcdm.txt/.json: >=5x ns/op fast vs ref
# on BenchmarkDCDMJoin and <=1 alloc/op steady state.
DCDM_BENCHTIME ?= 3s
bench-dcdm:
	$(GO) test -bench 'DCDM(Join|Leave|Churn)' -benchtime $(DCDM_BENCHTIME) -benchmem -run '^$$' ./internal/mtree/ | tee BENCH_dcdm.txt
	$(GO) run ./cmd/benchjson < BENCH_dcdm.txt > BENCH_dcdm.json

# Quick CI pass of the same benchmarks (no artefact files).
bench-dcdm-quick:
	$(GO) test -bench 'DCDM(Join|Leave|Churn)' -benchtime 1s -benchmem -run '^$$' ./internal/mtree/

# Hierarchical-mode perf gate: 256 member joins on the transit-stub
# node-count ladder (fixed 20-node domains, growing domain count), flat
# engine vs the per-domain composer. The acceptance record is
# BENCH_domains.txt/.json: flat ns/join and table-bytes grow ~linearly
# with n while the hier arms stay nearly put (sublinear), with the hier
# arm >=10x fast at every rung.
DOMAINS_BENCHTIME ?= 3x
bench-domains:
	$(GO) test -bench DomainJoin -benchtime $(DOMAINS_BENCHTIME) -benchmem -run '^$$' ./internal/mtree/ | tee BENCH_domains.txt
	$(GO) run ./cmd/benchjson < BENCH_domains.txt > BENCH_domains.json

# Incremental-DCDM differential gate: the fast-vs-ref equivalence churn
# (exact tree/result/bound equality) plus the engine unit tests, under
# the race detector with the invariant hooks armed — every mutation
# re-validates the dense tree and cross-checks the incremental bound
# against a member rescan.
smoke-dcdm:
	$(GO) test -race -tags invariants -count=1 -run 'TestDCDMFastMatchesRef|TestDCDMLeave|TestMaxMultiset|TestTreeSharedViews' ./internal/mtree/

# Hierarchical-mode differential gate: the composer's k=1-vs-flat exact
# equivalence (mtree and experiment level), the multi-domain runtime's
# flat-trace byte-identity, convergence and deactivation tests, and the
# domain partition/labelling checks — race detector on, invariants
# armed (every composed-tree mutation re-validates the local/composed
# consistency contract) — then an end-to-end CLI check that the quick
# domains sweep renders the exact same bytes serial and fanned over 4
# workers.
smoke-domains:
	$(GO) test -race -tags invariants -count=1 -run 'Hier|Domain|TestPartition|TestMinCrossDelay' ./internal/mtree/ ./internal/core/ ./internal/topology/ ./internal/experiment/
	$(GO) run ./cmd/scmpsim -experiment domains -quick -parallel 1 -out smoke_domains_serial.txt
	$(GO) run -race ./cmd/scmpsim -experiment domains -quick -parallel 4 -out smoke_domains_p4.txt
	cmp smoke_domains_serial.txt smoke_domains_p4.txt
	rm -f smoke_domains_serial.txt smoke_domains_p4.txt

# End-to-end smoke of the parallel runner under the race detector: a
# quick Fig. 7 sweep fanned over 4 workers.
smoke-parallel:
	$(GO) run -race ./cmd/scmpsim -experiment fig7 -quick -parallel 4 -out /dev/null

# Chaos smoke: the fault-injection sweep (loss + link cuts + repair)
# in quick mode, race detector on and runtime invariants armed.
smoke-faults:
	$(GO) run -race -tags invariants ./cmd/scmpsim -experiment faults -quick -parallel 4 -out /dev/null

# Partitioned-drive differential gate: the serial-vs-partitioned
# byte-identity tests under the race detector with invariants armed,
# then an end-to-end CLI check that a quick fig8 sweep renders the
# exact same bytes serial and at 8 partitions.
smoke-partitions:
	$(GO) test -race -tags invariants -count=1 -run 'TestPartition' ./internal/experiment/
	$(GO) run ./cmd/scmpsim -experiment fig8 -quick -parallel 1 -out smoke_partitions_serial.txt
	$(GO) run -race ./cmd/scmpsim -experiment fig8 -quick -parallel 1 -partitions 8 -out smoke_partitions_p8.txt
	cmp smoke_partitions_serial.txt smoke_partitions_p8.txt
	rm -f smoke_partitions_serial.txt smoke_partitions_p8.txt

# Churn smoke: the high-churn membership tests (driver, overload
# protection, sweep acceptance, partition gating) under the race
# detector with invariants armed, then an end-to-end CLI check that the
# quick churn sweep renders the exact same bytes serial and fanned over
# 4 workers.
smoke-churn:
	$(GO) test -race -tags invariants -count=1 -run 'Churn' ./internal/netsim/ ./internal/core/ ./internal/experiment/
	$(GO) run ./cmd/scmpsim -experiment churn -quick -parallel 1 -out smoke_churn_serial.txt
	$(GO) run -race ./cmd/scmpsim -experiment churn -quick -parallel 4 -out smoke_churn_p4.txt
	cmp smoke_churn_serial.txt smoke_churn_p4.txt
	rm -f smoke_churn_serial.txt smoke_churn_p4.txt
