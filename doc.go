// Package scmp reproduces "A Service-Centric Multicast Architecture and
// Routing Protocol" (Yang, Wang, Yang; ICPP 2006) as a Go library: the
// SCMP protocol with its m-router/i-router split and DCDM tree
// algorithm, the DVMRP/MOSPF/CBT baselines, the m-router's sandwich
// switching fabric, a discrete-event network simulator to run them on,
// and the full evaluation harness for the paper's Figs. 7-9.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmark suite in
// bench_test.go regenerates every figure:
//
//	go test -bench=. -benchmem
package scmp
