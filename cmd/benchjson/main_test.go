package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// golden1 is verbatim `go test -bench -benchmem` output, context block
// included.
const golden1 = `goos: linux
goarch: amd64
pkg: scmp/internal/routing
cpu: Intel(R) Xeon(R) CPU
BenchmarkShortest-8   	    1203	    987654 ns/op	  120384 B/op	     312 allocs/op
BenchmarkNextHop-8    	     842	   1423901 ns/op	  240128 B/op	     641 allocs/op
PASS
ok  	scmp/internal/routing	3.214s
`

// golden2 has a different context block and a custom metric, to check
// context resets between files and (value, unit) pairs parse generally.
const golden2 = `goos: linux
goarch: amd64
pkg: scmp
cpu: Intel(R) Xeon(R) CPU
BenchmarkDataPlane/fast-8   	      25	  41234567 ns/op	        12.50 ns/hop	   1500000 events/sec	       0 allocs/op
PASS
ok  	scmp	2.001s
`

func TestParseSingleStream(t *testing.T) {
	results, err := parse(strings.NewReader(golden1), []Result{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkShortest-8" || r.Iterations != 1203 {
		t.Fatalf("first result = %+v", r)
	}
	if r.Pkg != "scmp/internal/routing" || r.Goos != "linux" || r.Goarch != "amd64" {
		t.Fatalf("context not folded in: %+v", r)
	}
	want := map[string]float64{"ns/op": 987654, "B/op": 120384, "allocs/op": 312}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Fatalf("metric %s = %g, want %g", unit, r.Metrics[unit], v)
		}
	}
}

func TestRunMergesFiles(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.txt")
	f2 := filepath.Join(dir, "b.txt")
	if err := os.WriteFile(f1, []byte(golden1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f2, []byte(golden2), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := run([]string{f1, f2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("merged %d results, want 3", len(results))
	}
	// Context must come from each result's own file.
	if results[0].Pkg != "scmp/internal/routing" {
		t.Fatalf("first file pkg = %q", results[0].Pkg)
	}
	last := results[2]
	if last.Pkg != "scmp" || last.Name != "BenchmarkDataPlane/fast-8" {
		t.Fatalf("second file result = %+v", last)
	}
	if last.Metrics["ns/hop"] != 12.5 || last.Metrics["events/sec"] != 1500000 || last.Metrics["allocs/op"] != 0 {
		t.Fatalf("custom metrics = %v", last.Metrics)
	}
}

func TestRunStdinWhenNoFiles(t *testing.T) {
	results, err := run(nil, strings.NewReader(golden2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkDataPlane/fast-8" {
		t.Fatalf("stdin results = %+v", results)
	}
}

func TestRunMissingFile(t *testing.T) {
	if _, err := run([]string{filepath.Join(t.TempDir(), "nope.txt")}, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunEmptyInputIsEmptyArray(t *testing.T) {
	results, err := run(nil, strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if results == nil || len(results) != 0 {
		t.Fatalf("empty input = %#v, want non-nil empty slice", results)
	}
}
