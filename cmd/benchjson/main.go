// Command benchjson converts `go test -bench` text output into a JSON
// array on stdout, one object per benchmark result line. The raw text
// is the benchstat-compatible artefact; the JSON is for dashboards and
// the BENCH_*.json acceptance records.
//
//	go test -bench . -benchmem | tee BENCH.txt | benchjson > BENCH.json
//	benchjson BENCH_routing.txt BENCH_dataplane.txt > BENCH_all.json
//
// With no arguments it reads stdin; with file arguments it reads each
// file in order and merges every result into one array. Each benchmark
// line becomes {"name", "iterations", "metrics": {unit: value}};
// context lines (goos/goarch/pkg/cpu) are folded into every following
// object until the next context block, and context never leaks across
// input files.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark output line, annotated with the context block
// (goos/goarch/pkg/cpu) it appeared under.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	results, err := run(os.Args[1:], os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run collects the results from every named file, or from stdin when
// none are given. The returned slice is non-nil even when empty, so the
// JSON output is always an array.
func run(files []string, stdin io.Reader) ([]Result, error) {
	results := []Result{}
	if len(files) == 0 {
		return parse(stdin, results)
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		results, err = parse(f, results)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
	}
	return results, nil
}

// parse scans one benchmark text stream, appending its results. The
// goos/goarch/pkg/cpu context resets per stream.
func parse(r io.Reader, results []Result) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	ctx := map[string]string{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			ctx[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBench(line, ctx); ok {
				results = append(results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// parseBench parses one `BenchmarkName-P  N  v1 unit1  v2 unit2 ...`
// line. Fields after the iteration count come in (value, unit) pairs.
func parseBench(line string, ctx map[string]string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       fields[0],
		Pkg:        ctx["pkg"],
		Goos:       ctx["goos"],
		Goarch:     ctx["goarch"],
		CPU:        ctx["cpu"],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
