// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array on stdout, one object per benchmark result
// line. The raw text is the benchstat-compatible artefact; the JSON is
// for dashboards and the BENCH_routing.json acceptance record.
//
//	go test -bench . -benchmem | tee BENCH.txt | benchjson > BENCH.json
//
// Each benchmark line becomes {"name", "iterations", "metrics": {unit:
// value}}; context lines (goos/goarch/pkg/cpu) are folded into every
// following object until the next context block.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark output line, annotated with the context block
// (goos/goarch/pkg/cpu) it appeared under.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var results []Result
	ctx := map[string]string{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			ctx[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, ctx); ok {
				results = append(results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []Result{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one `BenchmarkName-P  N  v1 unit1  v2 unit2 ...`
// line. Fields after the iteration count come in (value, unit) pairs.
func parseBench(line string, ctx map[string]string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       fields[0],
		Pkg:        ctx["pkg"],
		Goos:       ctx["goos"],
		Goarch:     ctx["goarch"],
		CPU:        ctx["cpu"],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
