package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestKinds(t *testing.T) {
	for _, args := range [][]string{
		{"-kind", "waxman", "-n", "20"},
		{"-kind", "random", "-n", "20"},
		{"-kind", "arpanet"},
		{"-kind", "transitstub", "-transit-domains", "3"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(buf.String(), "graph") {
			t.Fatalf("%v: no DOT output", args)
		}
	}
}

func TestEdgesFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "random", "-n", "10", "-degree", "3", "-format", "edges"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "# random") {
		t.Fatalf("header = %q", lines[0])
	}
	// 10 nodes at degree 3 -> 15 edges.
	if len(lines)-1 != 15 {
		t.Fatalf("edges = %d, want 15", len(lines)-1)
	}
	for _, l := range lines[1:] {
		if len(strings.Fields(l)) != 4 {
			t.Fatalf("edge line %q", l)
		}
	}
}

func TestDeterministicSeed(t *testing.T) {
	gen := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-kind", "waxman", "-n", "15", "-seed", "9", "-format", "edges"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if gen() != gen() {
		t.Fatal("same seed produced different topologies")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-format", "nope"},
		{"-kind", "waxman", "-n", "0"},
		{"-badflag"},
		// Flags the selected kind would silently ignore are rejected —
		// no clamping a transit-stub request onto the -n knob or vice
		// versa.
		{"-kind", "transitstub", "-n", "10000"},
		{"-kind", "transitstub", "-degree", "4"},
		{"-kind", "waxman", "-stub-size", "10"},
		{"-kind", "random", "-transit-domains", "5"},
		{"-kind", "arpanet", "-n", "30"},
		{"-kind", "transitstub", "-edge-prob", "1.5"},
		{"-kind", "transitstub", "-stub-size", "0"},
		{"-kind", "transitstub", "-transit-domains", "-1"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestTransitStubDimensions: the dimension flags compose to the exact
// requested scale — here the 10k-node instance of the hierarchical-mode
// experiments — and the edge list exports every node's domain label.
func TestTransitStubDimensions(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-kind", "transitstub", "-transit-domains", "5", "-transit-size", "8",
		"-stubs", "3", "-stub-size", "83", "-format", "edges"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "# transitstub n=10000 ") {
		t.Fatalf("header = %q, want a 10000-node transit-stub", lines[0])
	}
	domains := 0
	transit := 0
	maxDomain := -1
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "# domain ") {
			if strings.HasPrefix(l, "#") {
				t.Fatalf("unexpected comment %q", l)
			}
			continue
		}
		f := strings.Fields(l)
		if len(f) != 5 {
			t.Fatalf("domain line %q", l)
		}
		var v, d int
		if _, err := fmt.Sscanf(l, "# domain %d %d", &v, &d); err != nil {
			t.Fatalf("domain line %q: %v", l, err)
		}
		if d > maxDomain {
			maxDomain = d
		}
		if f[4] == "transit" {
			transit++
		}
		domains++
	}
	if domains != 10000 {
		t.Fatalf("%d domain labels, want one per node", domains)
	}
	if transit != 40 {
		t.Fatalf("%d transit nodes, want 40", transit)
	}
	// 5 transit domains + 40*3 stub domains.
	if maxDomain != 5+120-1 {
		t.Fatalf("max domain id %d, want %d", maxDomain, 5+120-1)
	}
}
