package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestKinds(t *testing.T) {
	for _, kind := range []string{"waxman", "random", "arpanet", "transitstub"} {
		var buf bytes.Buffer
		args := []string{"-kind", kind, "-n", "20"}
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(buf.String(), "graph") {
			t.Fatalf("%s: no DOT output", kind)
		}
	}
}

func TestEdgesFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "random", "-n", "10", "-degree", "3", "-format", "edges"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "# random") {
		t.Fatalf("header = %q", lines[0])
	}
	// 10 nodes at degree 3 -> 15 edges.
	if len(lines)-1 != 15 {
		t.Fatalf("edges = %d, want 15", len(lines)-1)
	}
	for _, l := range lines[1:] {
		if len(strings.Fields(l)) != 4 {
			t.Fatalf("edge line %q", l)
		}
	}
}

func TestDeterministicSeed(t *testing.T) {
	gen := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-kind", "waxman", "-n", "15", "-seed", "9", "-format", "edges"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if gen() != gen() {
		t.Fatal("same seed produced different topologies")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-format", "nope"},
		{"-kind", "waxman", "-n", "0"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
