// Command topogen generates the evaluation topologies and prints them as
// Graphviz DOT or a plain edge list:
//
//	topogen -kind waxman -n 100 -seed 1            # paper's Fig. 7 model
//	topogen -kind random -n 50 -degree 3 -seed 2   # GT-ITM-style flat random
//	topogen -kind arpanet                          # fixed ARPANET map
//	topogen -kind waxman -format edges             # "u v delay cost" lines
//
// Transit-stub topologies take their own dimension flags (the -n knob
// belongs to the flat generators and is rejected here — no silent
// reinterpretation) and can reach the 10k+ node scale of the
// hierarchical-mode experiments; the edge list then carries the domain
// labelling as "# domain <node> <domain> <transit|stub>" comment lines:
//
//	topogen -kind transitstub -transit-domains 5 -transit-size 8 \
//	        -stubs 3 -stub-size 83 -format edges   # 10000 nodes, labelled
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"scmp/internal/rng"

	"scmp/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	kind := fs.String("kind", "waxman", "waxman | random | arpanet | transitstub")
	n := fs.Int("n", 100, "node count (waxman, random)")
	alpha := fs.Float64("alpha", 0.25, "Waxman alpha")
	beta := fs.Float64("beta", 0.2, "Waxman beta")
	degree := fs.Float64("degree", 3, "target average degree (random)")
	transitDomains := fs.Int("transit-domains", 4, "transit domain count (transitstub)")
	transitSize := fs.Int("transit-size", 4, "nodes per transit domain (transitstub)")
	stubs := fs.Int("stubs", 2, "stub domains per transit node (transitstub)")
	stubSize := fs.Int("stub-size", 3, "nodes per stub domain (transitstub)")
	edgeProb := fs.Float64("edge-prob", 0.4, "extra intra-domain edge probability in (0,1] (transitstub)")
	seed := fs.Int64("seed", 1, "random seed")
	format := fs.String("format", "dot", "dot | edges")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	// Reject flags the selected kind would silently ignore: a 10k-node
	// request must produce a 10k-node graph or an error, never a
	// default-sized graph with the knob dropped on the floor.
	perKind := map[string]string{
		"n": "waxman|random", "degree": "random", "alpha": "waxman", "beta": "waxman",
		"transit-domains": "transitstub", "transit-size": "transitstub",
		"stubs": "transitstub", "stub-size": "transitstub", "edge-prob": "transitstub",
	}
	for name, kinds := range perKind {
		if set[name] && !matchKind(kinds, *kind) {
			return fmt.Errorf("-%s applies to kind %s, not %q", name, kinds, *kind)
		}
	}

	var g *topology.Graph
	var info *topology.TransitStubInfo
	switch *kind {
	case "waxman":
		cfg := topology.WaxmanConfig{N: *n, Alpha: *alpha, Beta: *beta, GridSize: 32767, Connect: true}
		wg, err := topology.Waxman(cfg, rng.New(*seed))
		if err != nil {
			return err
		}
		g = wg.Graph
	case "random":
		rg, err := topology.Random(topology.DefaultRandom(*n, *degree), rng.New(*seed))
		if err != nil {
			return err
		}
		g = rg
	case "arpanet":
		g = topology.Arpanet()
	case "transitstub":
		if *edgeProb <= 0 || *edgeProb > 1 {
			return fmt.Errorf("-edge-prob %g outside (0,1]", *edgeProb)
		}
		cfg := topology.TransitStubConfig{
			TransitDomains:      *transitDomains,
			TransitSize:         *transitSize,
			StubsPerTransitNode: *stubs,
			StubSize:            *stubSize,
			EdgeProb:            *edgeProb,
		}
		var err error
		g, info, err = topology.TransitStub(cfg, rng.New(*seed))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	switch *format {
	case "dot":
		return topology.WriteDOT(w, g, *kind, nil)
	case "edges":
		fmt.Fprintf(w, "# %s n=%d m=%d avg_degree=%.2f\n", *kind, g.N(), g.M(), g.AvgDegree())
		if info != nil {
			// Domain labelling, consumable by hierarchical-mode tooling
			// and ignorable by plain edge-list readers.
			for v, d := range info.Domain {
				role := "stub"
				if info.Roles[v] == topology.RoleTransit {
					role = "transit"
				}
				fmt.Fprintf(w, "# domain %d %d %s\n", v, d, role)
			}
		}
		for u := 0; u < g.N(); u++ {
			for _, l := range g.Neighbors(topology.NodeID(u)) {
				if topology.NodeID(u) < l.To {
					fmt.Fprintf(w, "%d %d %.3f %.3f\n", u, l.To, l.Delay, l.Cost)
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// matchKind reports whether kind is one of the "a|b" alternatives.
func matchKind(kinds, kind string) bool {
	for len(kinds) > 0 {
		i := 0
		for i < len(kinds) && kinds[i] != '|' {
			i++
		}
		if kinds[:i] == kind {
			return true
		}
		if i == len(kinds) {
			break
		}
		kinds = kinds[i+1:]
	}
	return false
}
