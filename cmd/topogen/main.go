// Command topogen generates the evaluation topologies and prints them as
// Graphviz DOT or a plain edge list:
//
//	topogen -kind waxman -n 100 -seed 1            # paper's Fig. 7 model
//	topogen -kind random -n 50 -degree 3 -seed 2   # GT-ITM-style flat random
//	topogen -kind arpanet                          # fixed ARPANET map
//	topogen -kind waxman -format edges             # "u v delay cost" lines
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"scmp/internal/rng"

	"scmp/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	kind := fs.String("kind", "waxman", "waxman | random | arpanet | transitstub")
	n := fs.Int("n", 100, "node count (waxman, random)")
	alpha := fs.Float64("alpha", 0.25, "Waxman alpha")
	beta := fs.Float64("beta", 0.2, "Waxman beta")
	degree := fs.Float64("degree", 3, "target average degree (random)")
	seed := fs.Int64("seed", 1, "random seed")
	format := fs.String("format", "dot", "dot | edges")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *topology.Graph
	switch *kind {
	case "waxman":
		cfg := topology.WaxmanConfig{N: *n, Alpha: *alpha, Beta: *beta, GridSize: 32767, Connect: true}
		wg, err := topology.Waxman(cfg, rng.New(*seed))
		if err != nil {
			return err
		}
		g = wg.Graph
	case "random":
		rg, err := topology.Random(topology.DefaultRandom(*n, *degree), rng.New(*seed))
		if err != nil {
			return err
		}
		g = rg
	case "arpanet":
		g = topology.Arpanet()
	case "transitstub":
		tg, _, err := topology.TransitStub(topology.DefaultTransitStub(), rng.New(*seed))
		if err != nil {
			return err
		}
		g = tg
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	switch *format {
	case "dot":
		return topology.WriteDOT(w, g, *kind, nil)
	case "edges":
		fmt.Fprintf(w, "# %s n=%d m=%d avg_degree=%.2f\n", *kind, g.N(), g.M(), g.AvgDegree())
		for u := 0; u < g.N(); u++ {
			for _, l := range g.Neighbors(topology.NodeID(u)) {
				if topology.NodeID(u) < l.To {
					fmt.Fprintf(w, "%d %d %.3f %.3f\n", u, l.To, l.Delay, l.Cost)
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
