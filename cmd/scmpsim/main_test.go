package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickOpts builds a smoke-run options value; progress stays nil so
// tests are silent.
func quickOpts(exp string) options {
	return options{experiment: exp, seeds: 1, quick: true, format: "table"}
}

func TestDispatchQuickEachExperiment(t *testing.T) {
	for _, exp := range []string{"placement"} {
		var buf bytes.Buffer
		if err := dispatch(&buf, quickOpts(exp)); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: no output", exp)
		}
	}
}

func TestDispatchFig7Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := dispatch(&buf, quickOpts("fig7")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 7", "DCDM", "KMB", "SPT", "tightest"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 output missing %q", want)
		}
	}
}

func TestDispatchFig8Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := dispatch(&buf, quickOpts("fig8")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Data overhead", "Protocol overhead", "SCMP", "DVMRP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 output missing %q", want)
		}
	}
}

func TestDispatchFig9Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := dispatch(&buf, quickOpts("fig9")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Maximum end-to-end delay") {
		t.Fatal("fig9 output incomplete")
	}
}

// TestDispatchParallelWidths: the -parallel knob must not change writer
// output — a two-worker quick run is byte-identical to the serial one.
func TestDispatchParallelWidths(t *testing.T) {
	render := func(parallel int) []byte {
		var buf bytes.Buffer
		opt := quickOpts("fig9")
		opt.parallel = parallel
		if err := dispatch(&buf, opt); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if serial, par := render(1), render(2); !bytes.Equal(serial, par) {
		t.Fatalf("dispatch output depends on -parallel:\nserial:\n%s\nparallel:\n%s", serial, par)
	}
}

// TestDispatchProgressReporting: a progress sink receives shard
// completions ending in a total/total line.
func TestDispatchProgressReporting(t *testing.T) {
	var out, prog bytes.Buffer
	opt := quickOpts("placement")
	opt.progress = &prog
	if err := dispatch(&out, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "placement: 1/1 shards") {
		t.Fatalf("progress output missing final shard count: %q", prog.String())
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch(&bytes.Buffer{}, options{experiment: "fig99", quick: true, format: "table"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "res.txt")
	if err := run([]string{"-experiment", "placement", "-quick", "-out", out}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "placement") {
		t.Fatalf("file content: %q", data)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
