package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDispatchQuickEachExperiment(t *testing.T) {
	for _, exp := range []string{"placement"} {
		var buf bytes.Buffer
		if err := dispatch(&buf, exp, 1, true, "table"); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: no output", exp)
		}
	}
}

func TestDispatchFig7Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := dispatch(&buf, "fig7", 1, true, "table"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 7", "DCDM", "KMB", "SPT", "tightest"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 output missing %q", want)
		}
	}
}

func TestDispatchFig8Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := dispatch(&buf, "fig8", 1, true, "table"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Data overhead", "Protocol overhead", "SCMP", "DVMRP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 output missing %q", want)
		}
	}
}

func TestDispatchFig9Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := dispatch(&buf, "fig9", 1, true, "table"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Maximum end-to-end delay") {
		t.Fatal("fig9 output incomplete")
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch(&bytes.Buffer{}, "fig99", 0, true, "table"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "res.txt")
	if err := run([]string{"-experiment", "placement", "-quick", "-out", out}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "placement") {
		t.Fatalf("file content: %q", data)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
