package main

import (
	"fmt"
	"io"

	"scmp/internal/experiment"
)

// options collects the CLI knobs dispatch needs.
type options struct {
	experiment string
	seeds      int  // 0 = paper default
	quick      bool // shrink sweeps for a smoke run
	parallel   int  // worker pool width; 0 = GOMAXPROCS, 1 = serial
	partitions int  // simulation partitions per run; <= 1 = serial drive
	format     string
	progress   io.Writer // shard progress sink (nil = silent)
}

// progressFor builds a per-experiment shard-completion reporter writing
// to opt.progress. It may be called concurrently from workers; each call
// is a single Write. Completions can land slightly out of order under
// parallelism — the line converges to total/total regardless.
func (opt options) progressFor(label string) func(done, total int) {
	if opt.progress == nil {
		return nil
	}
	return func(done, total int) {
		if done == total {
			fmt.Fprintf(opt.progress, "\r%s: %d/%d shards\n", label, done, total)
			return
		}
		fmt.Fprintf(opt.progress, "\r%s: %d/%d shards", label, done, total)
	}
}

// dispatch runs the selected experiment(s) and writes results as
// paper-style tables or CSV.
func dispatch(w io.Writer, opt options) error {
	if opt.format != "table" && opt.format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", opt.format)
	}
	csv := opt.format == "csv"
	header := func(s string, args ...any) {
		if !csv {
			fmt.Fprintf(w, s, args...)
		}
	}

	fig7cfg := func() experiment.Fig7Config {
		cfg := experiment.DefaultFig7()
		if opt.quick {
			// Sizes stay below quick-mode Nodes: the root is excluded, so
			// a 50-member group cannot be drawn from a 50-node graph.
			cfg.Nodes, cfg.GroupSizes, cfg.Seeds = 50, []int{10, 25, 45}, 3
		}
		if opt.seeds > 0 {
			cfg.Seeds = opt.seeds
		}
		cfg.Parallel, cfg.Progress = opt.parallel, opt.progressFor("fig7")
		return cfg
	}
	fig89cfg := func(label string) experiment.Fig89Config {
		cfg := experiment.DefaultFig89()
		if opt.quick {
			cfg.GroupSizes, cfg.Seeds, cfg.SimTime = []int{8, 24, 40}, 3, 10
		}
		if opt.seeds > 0 {
			cfg.Seeds = opt.seeds
		}
		cfg.Parallel, cfg.Partitions, cfg.Progress = opt.parallel, opt.partitions, opt.progressFor(label)
		return cfg
	}
	placementCfg := func() experiment.PlacementConfig {
		cfg := experiment.DefaultPlacement()
		if opt.quick {
			cfg.Seeds, cfg.Trials, cfg.Nodes = 2, 4, 50
		}
		if opt.seeds > 0 {
			cfg.Seeds = opt.seeds
		}
		cfg.Parallel, cfg.Progress = opt.parallel, opt.progressFor("placement")
		return cfg
	}
	stateCfg := func() experiment.StateConfig {
		cfg := experiment.DefaultState()
		if opt.quick {
			cfg.Groups, cfg.Seeds, cfg.Nodes = []int{1, 4}, 2, 30
		}
		if opt.seeds > 0 {
			cfg.Seeds = opt.seeds
		}
		cfg.Parallel, cfg.Progress = opt.parallel, opt.progressFor("state")
		return cfg
	}
	concentrationCfg := func() experiment.ConcentrationConfig {
		cfg := experiment.DefaultConcentration()
		if opt.quick {
			cfg.Seeds, cfg.Nodes, cfg.Rounds = 2, 30, 2
		}
		if opt.seeds > 0 {
			cfg.Seeds = opt.seeds
		}
		cfg.Parallel, cfg.Progress = opt.parallel, opt.progressFor("concentration")
		return cfg
	}

	faultsCfg := func() experiment.FaultsConfig {
		cfg := experiment.DefaultFaults()
		if opt.quick {
			cfg.LossRates, cfg.Seeds, cfg.SimTime, cfg.GroupSize = []float64{0, 0.05}, 3, 10, 8
		}
		if opt.seeds > 0 {
			cfg.Seeds = opt.seeds
		}
		cfg.Parallel, cfg.Partitions, cfg.Progress = opt.parallel, opt.partitions, opt.progressFor("faults")
		return cfg
	}

	churnCfg := func() experiment.ChurnConfig {
		cfg := experiment.DefaultChurn()
		if opt.quick {
			cfg.Rates = []float64{100, 2000}
			cfg.Seeds, cfg.GroupSize = 3, 10
			cfg.Duration, cfg.Settle = 3, 6
		}
		if opt.seeds > 0 {
			cfg.Seeds = opt.seeds
		}
		cfg.Parallel, cfg.Partitions, cfg.Progress = opt.parallel, opt.partitions, opt.progressFor("churn")
		return cfg
	}

	domainsCfg := func() experiment.DomainsConfig {
		cfg := experiment.DefaultDomains()
		if opt.quick {
			cfg.Topology.TransitSize, cfg.Topology.StubSize = 4, 12
			cfg.Members, cfg.Seeds = 48, 2
		}
		if opt.seeds > 0 {
			cfg.Seeds = opt.seeds
		}
		cfg.Parallel, cfg.Progress = opt.parallel, opt.progressFor("domains")
		return cfg
	}

	runFig7 := func() error {
		cfg := fig7cfg()
		header("== Fig. 7: multicast tree quality (Waxman n=%d, alpha=%.2f, beta=%.2f, %d seeds) ==\n",
			cfg.Nodes, cfg.Alpha, cfg.Beta, cfg.Seeds)
		points := experiment.RunFig7(cfg)
		if csv {
			return experiment.WriteFig7CSV(w, points)
		}
		experiment.WriteFig7(w, points)
		return nil
	}
	runFig7x := func() error {
		cfg := experiment.DefaultFig7x()
		if opt.quick {
			cfg.Seeds, cfg.GroupSize = 2, 12
		}
		if opt.seeds > 0 {
			cfg.Seeds = opt.seeds
		}
		cfg.Parallel, cfg.Progress = opt.parallel, opt.progressFor("fig7x")
		header("== Tree quality across topology families (DCDM kappa=%.1f, group %d) ==\n", cfg.Kappa, cfg.GroupSize)
		points := experiment.RunFig7x(cfg)
		if csv {
			return experiment.WriteFig7xCSV(w, points)
		}
		experiment.WriteFig7x(w, points)
		return nil
	}
	runPlacement := func() error {
		cfg := placementCfg()
		header("== m-router placement heuristics (Waxman n=%d, group %d) ==\n", cfg.Nodes, cfg.GroupSize)
		points := experiment.RunPlacement(cfg)
		if csv {
			return experiment.WritePlacementCSV(w, points)
		}
		experiment.WritePlacement(w, points)
		return nil
	}
	runState := func() error {
		cfg := stateCfg()
		header("== Routing-state scalability (n=%d, %d members, %d senders per group) ==\n",
			cfg.Nodes, cfg.Members, cfg.Senders)
		points := experiment.RunState(cfg)
		if csv {
			return experiment.WriteStateCSV(w, points)
		}
		experiment.WriteState(w, points)
		return nil
	}
	runConcentration := func() error {
		cfg := concentrationCfg()
		header("== Traffic concentration (core jam vs regional m-routers) ==\n")
		points := experiment.RunConcentration(cfg)
		if csv {
			return experiment.WriteConcentrationCSV(w, points)
		}
		experiment.WriteConcentration(w, points)
		return nil
	}

	runFaults := func() error {
		cfg := faultsCfg()
		header("== Chaos sweep: loss and link failures under the reliability stack (%d seeds, %.0f s runs) ==\n",
			cfg.Seeds, cfg.SimTime)
		res := experiment.RunFaults(cfg)
		if csv {
			return experiment.WriteFaultsCSV(w, res)
		}
		experiment.WriteFaults(w, res)
		return nil
	}

	switch opt.experiment {
	case "fig7":
		return runFig7()
	case "fig8":
		cfg := fig89cfg("fig8")
		header("== Fig. 8: data and protocol overhead (%d seeds, %.0f s runs) ==\n", cfg.Seeds, cfg.SimTime)
		points := experiment.RunFig89(cfg)
		if csv {
			return experiment.WriteFig89CSV(w, points)
		}
		experiment.WriteFig8(w, points)
		return nil
	case "fig9":
		cfg := fig89cfg("fig9")
		header("== Fig. 9: maximum end-to-end delay (%d seeds, %.0f s runs) ==\n", cfg.Seeds, cfg.SimTime)
		points := experiment.RunFig89(cfg)
		if csv {
			return experiment.WriteFig89CSV(w, points)
		}
		experiment.WriteFig9(w, points)
		return nil
	case "fig7x":
		return runFig7x()
	case "placement":
		return runPlacement()
	case "state":
		return runState()
	case "concentration":
		return runConcentration()
	case "faults":
		// Deliberately not part of "all": the chaos sweep measures the
		// robustness stack, not the paper's figures.
		return runFaults()
	case "churn":
		// Likewise outside "all": the churn sweep measures the overload
		// defences, not the paper's figures.
		cfg := churnCfg()
		header("== Churn sweep: membership flap rates under overload protection on/off (%d seeds, %.0fs churn + %.0fs settle) ==\n",
			cfg.Seeds, cfg.Duration, cfg.Settle)
		res := experiment.RunChurn(cfg)
		if csv {
			return experiment.WriteChurnCSV(w, res)
		}
		experiment.WriteChurn(w, res)
		return nil
	case "domains":
		// Outside "all" like faults and churn: the domains sweep measures
		// the hierarchical mode's scalability, not the paper's figures.
		cfg := domainsCfg()
		n := cfg.Topology.TransitDomains * cfg.Topology.TransitSize * (1 + cfg.Topology.StubsPerTransitNode*cfg.Topology.StubSize)
		header("== Hierarchical domains sweep: flat vs per-domain engines (transit-stub n=%d, %d members, %d seeds) ==\n",
			n, cfg.Members, cfg.Seeds)
		points := experiment.RunDomains(cfg)
		if csv {
			return experiment.WriteDomainsCSV(w, points)
		}
		experiment.WriteDomains(w, points)
		return nil
	case "all":
		if err := runFig7(); err != nil {
			return err
		}
		cfg := fig89cfg("fig8/9")
		points := experiment.RunFig89(cfg)
		if csv {
			if err := experiment.WriteFig89CSV(w, points); err != nil {
				return err
			}
		} else {
			fmt.Fprintf(w, "\n== Fig. 8: data and protocol overhead (%d seeds, %.0f s runs) ==\n", cfg.Seeds, cfg.SimTime)
			experiment.WriteFig8(w, points)
			fmt.Fprintf(w, "\n== Fig. 9: maximum end-to-end delay ==\n")
			experiment.WriteFig9(w, points)
		}
		header("\n")
		if err := runFig7x(); err != nil {
			return err
		}
		header("\n")
		if err := runPlacement(); err != nil {
			return err
		}
		header("\n")
		if err := runState(); err != nil {
			return err
		}
		header("\n")
		return runConcentration()
	default:
		return fmt.Errorf("unknown experiment %q (want fig7, fig7x, fig8, fig9, placement, state, concentration, faults, churn, domains or all)", opt.experiment)
	}
}
