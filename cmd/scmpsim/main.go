// Command scmpsim regenerates the paper's evaluation figures:
//
//	scmpsim -experiment fig7       # Fig. 7: tree delay / tree cost sweep
//	scmpsim -experiment fig8       # Fig. 8: data + protocol overhead
//	scmpsim -experiment fig9       # Fig. 9: maximum end-to-end delay
//	scmpsim -experiment placement  # §IV-A m-router placement heuristics
//	scmpsim -experiment all        # everything
//
// Two more studies quantify the paper's architectural arguments:
//
//	scmpsim -experiment state          # §I routing-state scalability
//	scmpsim -experiment concentration  # §I core jam vs regional m-routers
//	scmpsim -experiment faults         # chaos sweep: loss + link failures
//	scmpsim -experiment churn          # membership churn x overload protection
//	scmpsim -experiment domains        # hierarchical multi-domain scalability
//
// Use -quick for a fast smoke run, -seeds to override the averaging
// width, -parallel to bound the worker pool fanning (topology, seed)
// shards out (results are byte-identical at any width), -partitions to
// run each fig8/fig9/faults simulation on the partitioned parallel
// event drive (byte-identical at any partition count), -format csv for
// plot-ready records, and -out to write to a file instead of stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scmpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("scmpsim", flag.ContinueOnError)
	experimentName := fs.String("experiment", "all", "fig7 | fig7x | fig8 | fig9 | placement | state | concentration | faults | churn | domains | all")
	seeds := fs.Int("seeds", 0, "override the number of seeds (0 = paper default)")
	quick := fs.Bool("quick", false, "shrink the sweep for a fast smoke run")
	parallel := fs.Int("parallel", 0, "worker goroutines per experiment (0 = GOMAXPROCS, 1 = serial)")
	partitions := fs.Int("partitions", 0, "topology partitions per simulation for the windowed parallel event drive (<= 1 = serial; applies to fig8/fig9/faults, results are byte-identical)")
	outPath := fs.String("out", "", "write results to this file instead of stdout")
	format := fs.String("format", "table", "table | csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dispatch(w, options{
		experiment: *experimentName,
		seeds:      *seeds,
		quick:      *quick,
		parallel:   *parallel,
		partitions: *partitions,
		format:     *format,
		progress:   os.Stderr,
	})
}
