// Command treeviz builds a multicast tree with any of the three
// algorithms and prints it as Graphviz DOT (tree edges bold) plus a
// stats line, for eyeballing what DCDM, KMB and SPT do differently:
//
//	treeviz -algo dcdm -kappa 1.5 -n 40 -group 8 -seed 3
//	treeviz -algo kmb  -n 40 -group 8 -seed 3
//	treeviz -algo spt  -n 40 -group 8 -seed 3
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"scmp/internal/rng"

	"scmp/internal/mtree"
	"scmp/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("treeviz", flag.ContinueOnError)
	algo := fs.String("algo", "dcdm", "dcdm | kmb | spt")
	n := fs.Int("n", 40, "Waxman node count")
	group := fs.Int("group", 8, "group size")
	seed := fs.Int64("seed", 1, "random seed")
	kappa := fs.Float64("kappa", 1.5, "DCDM delay-constraint multiplier (0 = unconstrained)")
	root := fs.Int("root", 0, "m-router node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rng.New(*seed)
	wg, err := topology.Waxman(topology.DefaultWaxman(*n), rng)
	if err != nil {
		return err
	}
	g := wg.Graph
	if *root < 0 || *root >= g.N() {
		return fmt.Errorf("root %d out of range", *root)
	}
	rootID := topology.NodeID(*root)
	if *group >= g.N() {
		return fmt.Errorf("group %d too large for %d nodes", *group, g.N())
	}
	var members []topology.NodeID
	for _, v := range rng.Perm(g.N()) {
		if topology.NodeID(v) == rootID {
			continue
		}
		members = append(members, topology.NodeID(v))
		if len(members) == *group {
			break
		}
	}

	var tree *mtree.Tree
	switch *algo {
	case "dcdm":
		k := *kappa
		if k == 0 {
			k = math.Inf(1)
		}
		d := mtree.NewDCDM(g, rootID, k, nil, nil)
		for _, m := range members {
			d.Join(m)
		}
		tree = d.Tree()
	case "kmb":
		tree = mtree.KMB(g, rootID, members, nil)
	case "spt":
		tree = mtree.SPT(g, rootID, members, nil)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	fmt.Fprintf(stdout, "// %s: root=%d members=%v\n", *algo, rootID, members)
	fmt.Fprintf(stdout, "// tree cost=%.0f tree delay=%.0f nodes=%d\n",
		tree.Cost(), tree.TreeDelay(), tree.Size())
	return topology.WriteDOT(stdout, g, *algo, tree.Edges())
}
