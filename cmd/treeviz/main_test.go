package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAlgorithms(t *testing.T) {
	for _, algo := range []string{"dcdm", "kmb", "spt"} {
		var buf bytes.Buffer
		if err := run([]string{"-algo", algo, "-n", "20", "-group", "5", "-seed", "2"}, &buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		out := buf.String()
		if !strings.Contains(out, "tree cost=") || !strings.Contains(out, "style=bold") {
			t.Fatalf("%s output incomplete:\n%s", algo, out)
		}
	}
}

func TestUnconstrainedKappa(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "dcdm", "-kappa", "0", "-n", "20", "-group", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-algo", "nope"},
		{"-group", "50", "-n", "20"},
		{"-root", "99", "-n", "20"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
