// Command scenario runs a simulation script (see internal/scenario for
// the little language):
//
//	scenario lecture.scn       # run a script file
//	scenario -                 # read the script from stdin
//
// Exit status is non-zero when the script fails to parse, an event is
// invalid, or an "expect delivered" check finds missing or duplicated
// deliveries.
package main

import (
	"fmt"
	"io"
	"os"

	"scmp/internal/scenario"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: scenario <file.scn | ->")
		os.Exit(2)
	}
	var src io.Reader
	if os.Args[1] == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenario:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	script, err := scenario.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
	if err := script.Run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}
