// Command scmplint runs the repository's custom static-analysis suite —
// the determinism and tree-safety analyzers in scmp/internal/lint — over
// module packages and exits non-zero when any finding remains.
//
// Usage:
//
//	go run ./cmd/scmplint ./...
//	go run ./cmd/scmplint -list
//	go run ./cmd/scmplint ./internal/core ./internal/mtree
//
// Findings print one per line as file:line:col: [analyzer] message.
// Individual lines can be suppressed with a "//scmplint:ignore <name>"
// comment on the same or the preceding line; use sparingly and leave a
// reason. The suite runs on the default build (files behind custom build
// tags such as "invariants" are skipped, as in a normal compile).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scmp/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scmplint [-list] [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "scmplint: unknown analyzer %q (see -list)\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "scmplint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scmplint:", err)
		os.Exit(2)
	}
	diags := lint.Check(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scmplint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
