// Command scmplint runs the repository's custom static-analysis suite —
// the determinism analyzers and the dataflow analyzers (poollife,
// hotalloc, detshared) in scmp/internal/lint — over module packages and
// exits non-zero when any unsuppressed finding remains.
//
// Usage:
//
//	go run ./cmd/scmplint ./...
//	go run ./cmd/scmplint -tests -json ./...
//	go run ./cmd/scmplint -list
//	go run ./cmd/scmplint -write-baseline ./...
//
// Findings print one per line as file:line:col: [analyzer] message, or
// as a stable-sorted JSON array with -json (suppressed findings are
// included there, marked, so CI artifacts diff cleanly). -tests extends
// the analysis to _test.go files.
//
// Suppression has two layers: a "//scmplint:ignore <name>" comment on
// the same or preceding line for point exemptions, and the checked-in
// baseline (-baseline, default .scmplint-baseline.json at the module
// root) for reviewed findings; every baseline entry must carry a
// justification, stale entries fail the run, and -write-baseline
// regenerates the file from the current findings while preserving
// existing justifications.
//
// Exit codes: 0 clean, 1 unsuppressed findings (or a rotten baseline),
// 2 load/type-check/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scmp/internal/lint"
)

type jsonDiag struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a stable-sorted JSON array")
	tests := flag.Bool("tests", false, "also load and analyze _test.go files")
	baselinePath := flag.String("baseline", ".scmplint-baseline.json", "suppression baseline file, relative to the module root (empty disables)")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the baseline from current findings and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scmplint [-list] [-only a,b] [-tests] [-json] [-baseline file] [-write-baseline] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "scmplint: unknown analyzer %q (see -list)\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Check(pkgs, analyzers)
	moduleDir := loader.ModuleDir()

	var baseline *lint.Baseline
	var bpath string
	if *baselinePath != "" {
		bpath = *baselinePath
		if !filepath.IsAbs(bpath) {
			bpath = filepath.Join(moduleDir, bpath)
		}
		baseline, err = lint.LoadBaseline(bpath)
		if err != nil {
			fatal(err)
		}
	} else {
		baseline = &lint.Baseline{}
	}

	if *writeBaseline {
		if bpath == "" {
			fatal(fmt.Errorf("scmplint: -write-baseline needs a -baseline path"))
		}
		nb := lint.NewBaseline(diags, moduleDir, baseline)
		if err := nb.Write(bpath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scmplint: wrote %d entr%s to %s\n",
			len(nb.Entries), plural(len(nb.Entries), "y", "ies"), bpath)
		for _, e := range nb.Unjustified() {
			fmt.Fprintf(os.Stderr, "scmplint: entry needs a justification: [%s] %s: %s\n", e.Analyzer, e.File, e.Message)
		}
		return
	}

	if unj := baseline.Unjustified(); len(unj) > 0 {
		for _, e := range unj {
			fmt.Fprintf(os.Stderr, "scmplint: baseline entry without justification: [%s] %s: %s\n", e.Analyzer, e.File, e.Message)
		}
		os.Exit(2)
	}

	unsuppressed, stale := baseline.Filter(diags, moduleDir)

	if *jsonOut {
		suppressedSet := make(map[lint.Diagnostic]bool, len(unsuppressed))
		for _, d := range unsuppressed {
			suppressedSet[d] = true // actually the NOT-suppressed set
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			rel, err := filepath.Rel(moduleDir, d.Pos.Filename)
			if err != nil {
				rel = d.Pos.Filename
			}
			out = append(out, jsonDiag{
				Analyzer:   d.Analyzer,
				File:       filepath.ToSlash(rel),
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Message:    d.Message,
				Suppressed: !suppressedSet[d],
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range unsuppressed {
			fmt.Println(d)
		}
	}

	bad := false
	if len(unsuppressed) > 0 {
		fmt.Fprintf(os.Stderr, "scmplint: %d unsuppressed finding(s) in %d package(s)\n", len(unsuppressed), len(pkgs))
		bad = true
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "scmplint: stale baseline entry (matched nothing): [%s] %s: %s (count %d)\n", e.Analyzer, e.File, e.Message, e.Count)
		bad = true
	}
	if len(stale) > 0 {
		fmt.Fprintln(os.Stderr, "scmplint: run `make lint-baseline` to regenerate the baseline")
	}
	if bad {
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scmplint:", err)
	os.Exit(2)
}
