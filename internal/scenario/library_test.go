package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestScenarioLibrary runs every shipped scenario script end to end;
// each must parse, run, and satisfy its own "expect delivered" checks.
func TestScenarioLibrary(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("scenario library missing: %v", err)
	}
	ran := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".scn" {
			continue
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			script, err := Parse(f)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var buf bytes.Buffer
			if err := script.Run(&buf); err != nil {
				t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
			}
		})
	}
	if ran < 5 {
		t.Fatalf("only %d scenarios found; library incomplete", ran)
	}
}
