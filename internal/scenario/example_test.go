package scenario_test

import (
	"fmt"
	"os"
	"strings"

	"scmp/internal/scenario"
)

// Example runs a complete scripted simulation: an SCMP domain on the
// fixed ARPANET map, one member, one sender, delivery checked.
func Example() {
	script, err := scenario.Parse(strings.NewReader(`
# minimal SCMP session on the ARPANET
topology arpanet
scale-delays 0.001
protocol scmp mrouter=0 kappa=1.5
at 0.0 join 5
at 1.0 send 3 size=1000
run 5
expect delivered
print tree group=1
`))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	if err := script.Run(os.Stdout); err != nil {
		fmt.Println("run:", err)
	}
	// Output:
	// group 1: root=0 cost=57.8 delay=0.0236 members=[5]
	//   2 -> 0
	//   5 -> 2
}
