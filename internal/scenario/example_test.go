package scenario_test

import (
	"fmt"
	"os"
	"strings"

	"scmp/internal/scenario"
)

// Example runs a complete scripted simulation: an SCMP domain on the
// fixed ARPANET map, one member, one sender, delivery checked.
func Example() {
	script, err := scenario.Parse(strings.NewReader(`
# minimal SCMP session on the ARPANET
topology arpanet
scale-delays 0.001
protocol scmp mrouter=0 kappa=1.5
at 0.0 join 5
at 1.0 send 3 size=1000
run 5
expect delivered
print tree group=1
`))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	if err := script.Run(os.Stdout); err != nil {
		fmt.Println("run:", err)
	}
	// Output:
	// group 1: root=0 cost=57.8 delay=0.0236 members=[5]
	//   2 -> 0
	//   5 -> 2
}

// Example_churn drives generated membership churn against the overload
// defences: six routers flap with Poisson gaps at 40 events/s for three
// seconds under 5% control loss, while the slow m-router sheds overflow
// JOINs with NACK/retry-after, parks budget-exhausted requests, and
// skips refresh ticks for unchanged trees. The post-settle probe still
// reaches every surviving member, and the generated event mix is
// reported deterministically.
func Example_churn() {
	script, err := scenario.Parse(strings.NewReader(`
# high churn against a slow m-router, defences on
topology random n=30 degree=3 seed=9
scale-delays 0.001
protocol scmp mrouter=0 kappa=1.5 ack=0.05 retries=8 refresh=1 service=0.002 procs=1 admit=4 retry-budget=4 suppress=true
faults loss-control=0.05 until=3 seed=42
churn 1 40 poisson 3 members=5,9,14,17,22,26 seed=7
at 0.0 join 3
at 6.0 send 0 size=1000
run 9
expect delivered
print churn
`))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	if err := script.Run(os.Stdout); err != nil {
		fmt.Println("run:", err)
	}
	// Output:
	// churn group 1: dist=poisson rate=40 events=98 joins=6 rejoins=44 leaves=48
}

// Example_localRepair cuts the backbone link the tree hangs off
// mid-run. Router 2, orphaned with member 5 behind it, REJOINs toward
// the m-router, which detaches the dead subtree from its DCDM copy and
// re-grafts the member over the live 0-1-2 path: compare the repaired
// parent edges with Example's original 2 -> 0.
func Example_localRepair() {
	script, err := scenario.Parse(strings.NewReader(`
# same session as Example, plus a link cut and the healing stack
topology arpanet
scale-delays 0.001
protocol scmp mrouter=0 kappa=1.5 ack=0.05 retries=8 refresh=1
at 0.0 join 5
at 2.0 link-down 0 2
at 4.0 send 0 size=1000
run 8
expect delivered
print tree
`))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	if err := script.Run(os.Stdout); err != nil {
		fmt.Println("run:", err)
	}
	// Output:
	// group 1: root=0 cost=142.8 delay=0.0835 members=[5]
	//   1 -> 0
	//   2 -> 1
	//   5 -> 2
}
