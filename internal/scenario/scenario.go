// Package scenario provides a small text DSL for driving simulations —
// the tool a downstream user reaches for to reproduce a situation
// without writing Go. A script picks a topology and a protocol, then
// schedules joins, leaves, data and (for SCMP) a failover, runs the
// clock, and checks delivery:
//
//	# lecture with churn
//	topology random n=40 degree=3 seed=11
//	scale-delays 0.001
//	protocol scmp mrouter=0 kappa=1.5
//	at 0.0 join 5
//	at 0.2 join 9 group=1
//	at 1.0 send 3 size=1000
//	at 2.0 leave 5
//	run 10
//	expect delivered
//	print metrics
//	print tree group=1
//
// Lines are independent commands; '#' starts a comment. Every event
// command takes an optional group=N (default 1). `scale-delays F`
// multiplies every link delay (e.g. 0.001 reads the generators' units
// as milliseconds) and `bandwidth B` gives links a finite capacity of
// B bytes/s (queueing + transmission + propagation, the paper's
// three-component link delay); both must precede `protocol`.
//
// Fault injection: `faults loss-control=P loss-data=P until=T seed=S`
// (after `protocol`) installs a deterministic fault plan, and the
// events `at T link-down U V`, `at T link-up U V`, `at T node-down N`
// and `at T node-up N` schedule topology faults (installing an empty
// plan on first use if `faults` was not given). The scmp protocol
// accepts ack=T (reliable JOIN/LEAVE ACK timeout), retries=N and
// refresh=T (soft-state tree refresh interval); `run` quiesces those
// periodic timers after its deadline so the clock drains.
//
// Generated membership churn: `churn <group> <rate> <dist> <duration>
// members=a,b,c` (after `protocol`) installs a seeded flap schedule —
// <dist> is poisson or pareto (heavy-tailed; alpha=A, default 1.5) —
// with optional start=T and seed=S; `print churn` reports the
// generated event mix. The scmp overload defences pair with it:
// service=T procs=N model the m-router's compute, admit=N sheds JOINs
// beyond a pending-queue limit with NACK/retry-after, retry-budget=N
// parks a request after N failed attempts (re-attempted on a deferred
// timer), and suppress=true skips refresh ticks for unchanged trees.
package scenario

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"scmp/internal/rng"
	"sort"
	"strconv"
	"strings"

	"scmp/internal/core"
	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/protocols/cbt"
	"scmp/internal/protocols/dvmrp"
	"scmp/internal/protocols/mospf"
	"scmp/internal/topology"
)

// command is one parsed script line.
type command struct {
	line int
	verb string // topology, scale-delays, protocol, at, run, expect, print
	args []string
	kv   map[string]string
	at   float64 // for "at" commands
	sub  string  // the event verb after "at": join, leave, send, failover
}

// Script is a parsed scenario.
type Script struct {
	cmds []command
}

// Parse reads a scenario script.
func Parse(r io.Reader) (*Script, error) {
	sc := bufio.NewScanner(r)
	var cmds []command
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd := command{line: lineNo, verb: fields[0], kv: map[string]string{}}
		rest := fields[1:]
		if cmd.verb == "at" {
			if len(rest) < 2 {
				return nil, fmt.Errorf("line %d: at needs a time and an event", lineNo)
			}
			t, err := strconv.ParseFloat(rest[0], 64)
			if err != nil || t < 0 {
				return nil, fmt.Errorf("line %d: bad time %q", lineNo, rest[0])
			}
			cmd.at = t
			cmd.sub = rest[1]
			rest = rest[2:]
		}
		for _, f := range rest {
			if k, v, ok := strings.Cut(f, "="); ok {
				cmd.kv[k] = v
			} else {
				cmd.args = append(cmd.args, f)
			}
		}
		switch cmd.verb {
		case "topology", "scale-delays", "bandwidth", "protocol", "faults", "churn", "at", "run", "expect", "print":
		default:
			return nil, fmt.Errorf("line %d: unknown command %q", lineNo, cmd.verb)
		}
		cmds = append(cmds, cmd)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &Script{cmds: cmds}, nil
}

func (c command) float(key string, def float64) (float64, error) {
	v, ok := c.kv[key]
	if !ok {
		return def, nil
	}
	if v == "inf" {
		return math.Inf(1), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d: bad %s=%q", c.line, key, v)
	}
	return f, nil
}

func (c command) int(key string, def int) (int, error) {
	v, ok := c.kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("line %d: bad %s=%q", c.line, key, v)
	}
	return n, nil
}

func (c command) group() (packet.GroupID, error) {
	n, err := c.int("group", 1)
	return packet.GroupID(n), err
}

// state is the execution context.
type state struct {
	g         *topology.Graph
	scale     float64
	bandwidth float64
	net       *netsim.Network
	scmp      *core.SCMP     // non-nil when the protocol is SCMP
	faults    *netsim.Faults // non-nil once a fault plan is installed
	churns    []*netsim.Churn
	sent      []uint64
	w         io.Writer
}

// Run executes the script, writing "print" output to w.
func (s *Script) Run(w io.Writer) error {
	st := &state{scale: 1, w: w}
	for _, c := range s.cmds {
		if err := st.exec(c); err != nil {
			return err
		}
	}
	return nil
}

func (st *state) exec(c command) error {
	switch c.verb {
	case "topology":
		return st.execTopology(c)
	case "scale-delays":
		if st.net != nil {
			return fmt.Errorf("line %d: scale-delays must precede protocol", c.line)
		}
		if len(c.args) != 1 {
			return fmt.Errorf("line %d: scale-delays needs a factor", c.line)
		}
		f, err := strconv.ParseFloat(c.args[0], 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("line %d: bad factor %q", c.line, c.args[0])
		}
		st.scale = f
		return nil
	case "bandwidth":
		if st.net != nil {
			return fmt.Errorf("line %d: bandwidth must precede protocol", c.line)
		}
		if len(c.args) != 1 {
			return fmt.Errorf("line %d: bandwidth needs bytes/s", c.line)
		}
		f, err := strconv.ParseFloat(c.args[0], 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("line %d: bad bandwidth %q", c.line, c.args[0])
		}
		st.bandwidth = f
		return nil
	case "protocol":
		return st.execProtocol(c)
	case "faults":
		return st.execFaults(c)
	case "churn":
		return st.execChurn(c)
	case "at":
		return st.execAt(c)
	case "run":
		if st.net == nil {
			return fmt.Errorf("line %d: run before protocol", c.line)
		}
		if len(c.args) == 1 {
			t, err := strconv.ParseFloat(c.args[0], 64)
			if err != nil {
				return fmt.Errorf("line %d: bad run deadline %q", c.line, c.args[0])
			}
			st.net.RunUntil(des.Time(t))
		}
		// Periodic soft-state timers re-arm forever; cancel them so the
		// drain below terminates (a no-op unless refresh/ack are set).
		if st.scmp != nil {
			st.scmp.Quiesce()
		}
		st.net.Run()
		return nil
	case "expect":
		return st.execExpect(c)
	case "print":
		return st.execPrint(c)
	}
	return fmt.Errorf("line %d: unhandled %q", c.line, c.verb)
}

func (st *state) execTopology(c command) error {
	if st.g != nil {
		return fmt.Errorf("line %d: topology already set", c.line)
	}
	if len(c.args) != 1 {
		return fmt.Errorf("line %d: topology needs a kind", c.line)
	}
	seed, err := c.int("seed", 1)
	if err != nil {
		return err
	}
	rng := rng.New(int64(seed))
	switch c.args[0] {
	case "arpanet":
		st.g = topology.Arpanet()
	case "waxman":
		n, err := c.int("n", 50)
		if err != nil {
			return err
		}
		wg, err := topology.Waxman(topology.DefaultWaxman(n), rng)
		if err != nil {
			return fmt.Errorf("line %d: %v", c.line, err)
		}
		st.g = wg.Graph
	case "random":
		n, err := c.int("n", 50)
		if err != nil {
			return err
		}
		deg, err := c.float("degree", 3)
		if err != nil {
			return err
		}
		g, err := topology.Random(topology.DefaultRandom(n, deg), rng)
		if err != nil {
			return fmt.Errorf("line %d: %v", c.line, err)
		}
		st.g = g
	case "transitstub":
		g, _, err := topology.TransitStub(topology.DefaultTransitStub(), rng)
		if err != nil {
			return fmt.Errorf("line %d: %v", c.line, err)
		}
		st.g = g
	default:
		return fmt.Errorf("line %d: unknown topology %q", c.line, c.args[0])
	}
	return nil
}

func (st *state) execProtocol(c command) error {
	if st.g == nil {
		return fmt.Errorf("line %d: protocol before topology", c.line)
	}
	if st.net != nil {
		return fmt.Errorf("line %d: protocol already set", c.line)
	}
	if len(c.args) != 1 {
		return fmt.Errorf("line %d: protocol needs a name", c.line)
	}
	g := st.g
	if st.scale != 1 {
		g = g.ScaleDelays(st.scale)
	}
	var proto netsim.Protocol
	switch c.args[0] {
	case "scmp":
		mrouter, err := c.int("mrouter", 0)
		if err != nil {
			return err
		}
		kappa, err := c.float("kappa", 1.5)
		if err != nil {
			return err
		}
		standby, err := c.int("standby", -1)
		if err != nil {
			return err
		}
		budget, err := c.float("budget", 0)
		if err != nil {
			return err
		}
		ack, err := c.float("ack", 0)
		if err != nil {
			return err
		}
		retries, err := c.int("retries", 0)
		if err != nil {
			return err
		}
		refresh, err := c.float("refresh", 0)
		if err != nil {
			return err
		}
		service, err := c.float("service", 0)
		if err != nil {
			return err
		}
		procs, err := c.int("procs", 0)
		if err != nil {
			return err
		}
		admit, err := c.int("admit", 0)
		if err != nil {
			return err
		}
		retryBudget, err := c.int("retry-budget", 0)
		if err != nil {
			return err
		}
		suppress := false
		if v, ok := c.kv["suppress"]; ok {
			suppress, err = strconv.ParseBool(v)
			if err != nil {
				return fmt.Errorf("line %d: bad suppress=%q", c.line, v)
			}
		}
		s := core.New(core.Config{
			MRouter:         topology.NodeID(mrouter),
			Kappa:           kappa,
			Standby:         topology.NodeID(standby),
			DelayBudget:     budget,
			AckTimeout:      ack,
			RetryCap:        retries,
			RefreshInterval: refresh,
			ServiceTime:     service,
			Processors:      procs,
			AdmitLimit:      admit,
			RetryBudget:     retryBudget,
			RefreshSuppress: suppress,
		})
		st.scmp = s
		proto = s
	case "dvmrp":
		lifetime, err := c.float("prune", float64(dvmrp.DefaultPruneLifetime))
		if err != nil {
			return err
		}
		proto = dvmrp.New(des.Time(lifetime))
	case "mospf":
		proto = mospf.New()
	case "cbt":
		coreNode, err := c.int("core", 0)
		if err != nil {
			return err
		}
		proto = cbt.New(topology.NodeID(coreNode))
	default:
		return fmt.Errorf("line %d: unknown protocol %q", c.line, c.args[0])
	}
	st.net = netsim.New(g, proto)
	st.net.Bandwidth = st.bandwidth
	return nil
}

// execFaults installs the deterministic fault plan. It must follow
// `protocol` and precede any scheduled fault event (those auto-install
// an empty plan, and a network accepts only one).
func (st *state) execFaults(c command) error {
	if st.net == nil {
		return fmt.Errorf("line %d: faults before protocol", c.line)
	}
	if st.faults != nil {
		return fmt.Errorf("line %d: faults already installed", c.line)
	}
	lossCtl, err := c.float("loss-control", 0)
	if err != nil {
		return err
	}
	lossData, err := c.float("loss-data", 0)
	if err != nil {
		return err
	}
	if lossCtl < 0 || lossCtl > 1 || lossData < 0 || lossData > 1 {
		return fmt.Errorf("line %d: loss rates must be in [0, 1]", c.line)
	}
	until, err := c.float("until", 0)
	if err != nil {
		return err
	}
	seed, err := c.int("seed", 1)
	if err != nil {
		return err
	}
	st.faults = st.net.InstallFaults(netsim.FaultPlan{
		ControlLoss: lossCtl,
		DataLoss:    lossData,
		LossUntil:   des.Time(until),
		Seed:        int64(seed),
	})
	return nil
}

// execChurn installs a generated membership flap schedule:
// `churn <group> <rate> <dist> <duration> members=a,b,c` with optional
// start=T, seed=S and (for pareto) alpha=A.
func (st *state) execChurn(c command) error {
	if st.net == nil {
		return fmt.Errorf("line %d: churn before protocol", c.line)
	}
	if len(c.args) != 4 {
		return fmt.Errorf("line %d: churn needs <group> <rate> <dist> <duration>", c.line)
	}
	grp, err := strconv.Atoi(c.args[0])
	if err != nil || grp < 1 {
		return fmt.Errorf("line %d: bad group %q", c.line, c.args[0])
	}
	rate, err := strconv.ParseFloat(c.args[1], 64)
	if err != nil || rate <= 0 {
		return fmt.Errorf("line %d: bad rate %q", c.line, c.args[1])
	}
	var dist netsim.ChurnDist
	switch c.args[2] {
	case "poisson":
		dist = netsim.ChurnPoisson
	case "pareto":
		dist = netsim.ChurnPareto
	default:
		return fmt.Errorf("line %d: unknown churn distribution %q (want poisson or pareto)", c.line, c.args[2])
	}
	duration, err := strconv.ParseFloat(c.args[3], 64)
	if err != nil || duration <= 0 {
		return fmt.Errorf("line %d: bad duration %q", c.line, c.args[3])
	}
	mv, ok := c.kv["members"]
	if !ok {
		return fmt.Errorf("line %d: churn needs members=a,b,...", c.line)
	}
	var members []topology.NodeID
	for _, f := range strings.Split(mv, ",") {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 || n >= st.net.G.N() {
			return fmt.Errorf("line %d: bad churn member %q", c.line, f)
		}
		members = append(members, topology.NodeID(n))
	}
	start, err := c.float("start", 0)
	if err != nil {
		return err
	}
	alpha, err := c.float("alpha", 0)
	if err != nil {
		return err
	}
	seed, err := c.int("seed", 1)
	if err != nil {
		return err
	}
	st.churns = append(st.churns, st.net.InstallChurn(netsim.ChurnPlan{
		Group:    packet.GroupID(grp),
		Members:  members,
		Rate:     rate,
		Dist:     dist,
		Alpha:    alpha,
		Start:    start,
		Duration: duration,
		Seed:     int64(seed),
	}))
	return nil
}

// ensureFaults lazily installs an empty plan so scripts can schedule
// topology faults without a `faults` line.
func (st *state) ensureFaults() *netsim.Faults {
	if st.faults == nil {
		st.faults = st.net.InstallFaults(netsim.FaultPlan{})
	}
	return st.faults
}

func (st *state) execAt(c command) error {
	if st.net == nil {
		return fmt.Errorf("line %d: events before protocol", c.line)
	}
	grp, err := c.group()
	if err != nil {
		return err
	}
	node := func() (topology.NodeID, error) {
		if len(c.args) != 1 {
			return 0, fmt.Errorf("line %d: %s needs a node", c.line, c.sub)
		}
		n, err := strconv.Atoi(c.args[0])
		if err != nil || n < 0 || n >= st.net.G.N() {
			return 0, fmt.Errorf("line %d: bad node %q", c.line, c.args[0])
		}
		return topology.NodeID(n), nil
	}
	switch c.sub {
	case "join":
		v, err := node()
		if err != nil {
			return err
		}
		st.net.Sched.At(des.Time(c.at), func() { st.net.HostJoin(v, grp) })
	case "leave":
		v, err := node()
		if err != nil {
			return err
		}
		st.net.Sched.At(des.Time(c.at), func() { st.net.HostLeave(v, grp) })
	case "send":
		v, err := node()
		if err != nil {
			return err
		}
		size, err := c.int("size", packet.DefaultDataSize)
		if err != nil {
			return err
		}
		st.net.Sched.At(des.Time(c.at), func() {
			st.sent = append(st.sent, st.net.SendData(v, grp, size))
		})
	case "failover":
		if st.scmp == nil {
			return fmt.Errorf("line %d: failover requires the scmp protocol", c.line)
		}
		st.net.Sched.At(des.Time(c.at), func() { st.scmp.Failover() })
	case "link-down", "link-up":
		if len(c.args) != 2 {
			return fmt.Errorf("line %d: %s needs two endpoints", c.line, c.sub)
		}
		u, errU := strconv.Atoi(c.args[0])
		v, errV := strconv.Atoi(c.args[1])
		if errU != nil || errV != nil ||
			!st.net.G.HasEdge(topology.NodeID(u), topology.NodeID(v)) {
			return fmt.Errorf("line %d: %s: no link %s-%s", c.line, c.sub, c.args[0], c.args[1])
		}
		if c.sub == "link-down" {
			st.ensureFaults().ScheduleLinkDown(des.Time(c.at), topology.NodeID(u), topology.NodeID(v))
		} else {
			st.ensureFaults().ScheduleLinkUp(des.Time(c.at), topology.NodeID(u), topology.NodeID(v))
		}
	case "node-down", "node-up":
		v, err := node()
		if err != nil {
			return err
		}
		if c.sub == "node-down" {
			st.ensureFaults().ScheduleNodeDown(des.Time(c.at), v)
		} else {
			st.ensureFaults().ScheduleNodeUp(des.Time(c.at), v)
		}
	default:
		return fmt.Errorf("line %d: unknown event %q", c.line, c.sub)
	}
	return nil
}

func (st *state) execExpect(c command) error {
	if st.net == nil {
		return fmt.Errorf("line %d: expect before protocol", c.line)
	}
	if len(c.args) != 1 || c.args[0] != "delivered" {
		return fmt.Errorf("line %d: only 'expect delivered' is supported", c.line)
	}
	for _, seq := range st.sent {
		missing, anomalous := st.net.CheckDelivery(seq)
		if len(missing) > 0 || len(anomalous) > 0 {
			return fmt.Errorf("line %d: packet %d: missing=%v anomalous=%v",
				c.line, seq, missing, anomalous)
		}
	}
	return nil
}

func (st *state) execPrint(c command) error {
	if st.net == nil {
		return fmt.Errorf("line %d: print before protocol", c.line)
	}
	if len(c.args) != 1 {
		return fmt.Errorf("line %d: print needs a subject", c.line)
	}
	switch c.args[0] {
	case "metrics":
		m := st.net.Metrics
		fmt.Fprintf(st.w, "t=%.3f data_overhead=%.1f proto_overhead=%.1f delivered=%d dropped=%d ctrl_drops=%d recoveries=%d max_e2e=%.4f\n",
			float64(st.net.Now()), m.DataOverhead(), m.ProtocolOverhead(),
			m.Delivered(), m.Dropped(), m.DroppedControl(), m.Recoveries(), m.MaxEndToEndDelay())
	case "tree":
		if st.scmp == nil {
			return fmt.Errorf("line %d: print tree requires the scmp protocol", c.line)
		}
		grp, err := c.group()
		if err != nil {
			return err
		}
		tr := st.scmp.GroupTree(grp)
		if tr == nil {
			fmt.Fprintf(st.w, "group %d: no tree\n", grp)
			return nil
		}
		fmt.Fprintf(st.w, "group %d: root=%d cost=%.1f delay=%.4f members=%v\n",
			grp, tr.Root(), tr.Cost(), tr.TreeDelay(), tr.Members())
		nodes := tr.Nodes()
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, v := range nodes {
			if p, ok := tr.Parent(v); ok {
				fmt.Fprintf(st.w, "  %d -> %d\n", v, p)
			}
		}
	case "churn":
		if len(st.churns) == 0 {
			fmt.Fprintf(st.w, "no churn installed\n")
			return nil
		}
		for _, ch := range st.churns {
			p := ch.Plan()
			fmt.Fprintf(st.w, "churn group %d: dist=%s rate=%.0f events=%d joins=%d rejoins=%d leaves=%d\n",
				p.Group, p.Dist, p.Rate, ch.Events(), ch.Joins(), ch.Rejoins(), ch.Leaves())
		}
	default:
		return fmt.Errorf("line %d: unknown print subject %q", c.line, c.args[0])
	}
	return nil
}
