package scenario

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runScript(t *testing.T, src string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := parse(t, src).Run(&buf); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", err, buf.String())
	}
	return buf.String()
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown verb":  "frobnicate 1",
		"at needs time": "at join 5",
		"bad time":      "at minus join 5",
		"negative time": "at -1 join 5",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	s := parse(t, "# only a comment\n\n   \ntopology arpanet # trailing\n")
	if len(s.cmds) != 1 {
		t.Fatalf("cmds = %d", len(s.cmds))
	}
}

func TestRunOrderErrors(t *testing.T) {
	cases := map[string]string{
		"protocol first":    "protocol scmp",
		"event first":       "at 0 join 1",
		"run first":         "run",
		"expect first":      "expect delivered",
		"print first":       "print metrics",
		"double topology":   "topology arpanet\ntopology arpanet",
		"double protocol":   "topology arpanet\nprotocol scmp\nprotocol scmp",
		"unknown topology":  "topology blah",
		"unknown protocol":  "topology arpanet\nprotocol blah",
		"bad node":          "topology arpanet\nprotocol scmp\nat 0 join 99",
		"failover non-scmp": "topology arpanet\nprotocol cbt\nat 0 failover",
		"scale after proto": "topology arpanet\nprotocol scmp\nscale-delays 0.5",
		"unknown event":     "topology arpanet\nprotocol scmp\nat 0 dance 3",
		"bad expect":        "topology arpanet\nprotocol scmp\nexpect miracles",
		"bad print":         "topology arpanet\nprotocol scmp\nprint vibes",
	}
	for name, src := range cases {
		if err := parse(t, src).Run(&bytes.Buffer{}); err == nil {
			t.Errorf("%s: ran", name)
		}
	}
}

const lectureScript = `
# one lecturer, two students
topology random n=20 degree=4 seed=3
scale-delays 0.001
protocol %s
at 0.0 join 5
at 0.1 join 9
at 1.0 send 3 size=1000
at 2.0 send 3
run 5
expect delivered
print metrics
`

func TestScriptAllProtocols(t *testing.T) {
	for _, proto := range []string{"scmp mrouter=0 kappa=1.5", "dvmrp prune=10", "mospf", "cbt core=0"} {
		src := strings.Replace(lectureScript, "%s", proto, 1)
		out := runScript(t, src)
		if !strings.Contains(out, "delivered=4") {
			t.Errorf("%s: output %q lacks delivered=4", proto, out)
		}
	}
}

func TestScriptPrintTree(t *testing.T) {
	out := runScript(t, `
topology arpanet
protocol scmp mrouter=0
at 0 join 5
run
print tree group=1
print tree group=9
`)
	if !strings.Contains(out, "root=0") || !strings.Contains(out, "members=[5]") {
		t.Fatalf("tree output: %q", out)
	}
	if !strings.Contains(out, "group 9: no tree") {
		t.Fatalf("missing no-tree line: %q", out)
	}
}

func TestScriptFailover(t *testing.T) {
	out := runScript(t, `
topology random n=20 degree=4 seed=7
scale-delays 0.001
protocol scmp mrouter=1 standby=2
at 0.0 join 5
at 0.1 join 9
at 1.0 failover
at 2.0 send 3
run 5
expect delivered
print tree
`)
	if !strings.Contains(out, "root=2") {
		t.Fatalf("tree not re-rooted at standby: %q", out)
	}
}

func TestScriptLeave(t *testing.T) {
	runScript(t, `
topology random n=15 degree=3 seed=2
scale-delays 0.001
protocol scmp
at 0.0 join 5
at 0.1 join 9
at 1.0 leave 5
at 2.0 send 0
run 5
expect delivered
`)
}

func TestScriptKappaInf(t *testing.T) {
	runScript(t, `
topology waxman n=25 seed=4
protocol scmp kappa=inf
at 0 join 7
run
expect delivered
print tree
`)
}

func TestScriptTransitStub(t *testing.T) {
	out := runScript(t, `
topology transitstub seed=2
scale-delays 0.001
protocol cbt core=0
at 0 join 30
at 1 send 40
run 5
expect delivered
print metrics
`)
	if !strings.Contains(out, "delivered=1") {
		t.Fatalf("output: %q", out)
	}
}

func TestScriptBandwidth(t *testing.T) {
	// With finite bandwidth the max end-to-end delay must exceed the
	// infinite-bandwidth run of the same scenario.
	base := `
topology random n=15 degree=3 seed=6
scale-delays 0.001
%s
protocol scmp
at 0.0 join 5
at 0.1 join 9
at 1.0 send 3 size=10000
run 10
expect delivered
print metrics
`
	slow := runScript(t, strings.Replace(base, "%s", "bandwidth 100000", 1))
	fast := runScript(t, strings.Replace(base, "%s", "", 1))
	pick := func(out string) float64 {
		i := strings.Index(out, "max_e2e=")
		var v float64
		if _, err := fmt.Sscanf(out[i:], "max_e2e=%f", &v); err != nil {
			t.Fatalf("parse %q: %v", out, err)
		}
		return v
	}
	if pick(slow) <= pick(fast) {
		t.Fatalf("finite bandwidth did not add delay: slow %v fast %v", pick(slow), pick(fast))
	}
}

func TestScriptBandwidthErrors(t *testing.T) {
	for name, src := range map[string]string{
		"after protocol": "topology arpanet\nprotocol scmp\nbandwidth 100",
		"missing value":  "topology arpanet\nbandwidth\nprotocol scmp",
		"negative":       "topology arpanet\nbandwidth -5\nprotocol scmp",
	} {
		if err := parse(t, src).Run(&bytes.Buffer{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestScriptFaultEvents(t *testing.T) {
	// A node crash strands the member; the restart re-reports it and the
	// healing stack re-grafts, so the late send still reaches everyone.
	out := runScript(t, `
topology arpanet
scale-delays 0.001
protocol scmp mrouter=0 ack=0.05 retries=8 refresh=1
faults seed=3
at 0.0 join 5
at 1.0 node-down 2
at 2.0 node-up 2
at 4.0 send 0
run 8
expect delivered
print metrics
`)
	if !strings.Contains(out, "delivered=1") {
		t.Fatalf("output: %q", out)
	}
}

func TestScriptLossyFaultsHeal(t *testing.T) {
	out := runScript(t, `
topology random n=20 degree=4 seed=3
scale-delays 0.001
protocol scmp mrouter=0 ack=0.05 retries=8 refresh=1
faults loss-control=1 until=2 seed=5
at 0.0 join 5
at 4.0 send 0 # the retransmit ladder escapes the window at t=3.15
run 6
expect delivered
print metrics
`)
	if !strings.Contains(out, "ctrl_drops=") || strings.Contains(out, "ctrl_drops=0 ") {
		t.Fatalf("total loss window left no control drops: %q", out)
	}
}

func TestScriptFaultErrors(t *testing.T) {
	for name, src := range map[string]string{
		"faults before protocol": "topology arpanet\nfaults seed=1\nprotocol scmp",
		"double faults":          "topology arpanet\nprotocol scmp\nfaults seed=1\nfaults seed=2",
		"faults after event":     "topology arpanet\nprotocol scmp\nat 0 node-down 2\nfaults seed=1",
		"loss out of range":      "topology arpanet\nprotocol scmp\nfaults loss-control=1.5",
		"link-down one arg":      "topology arpanet\nprotocol scmp\nat 0 link-down 2",
		"link-down non-edge":     "topology arpanet\nprotocol scmp\nat 0 link-down 0 99",
		"node-down bad node":     "topology arpanet\nprotocol scmp\nat 0 node-down 99",
	} {
		if err := parse(t, src).Run(&bytes.Buffer{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExpectDeliveredFails(t *testing.T) {
	// A send with no members delivers vacuously; force a failure by
	// sending while the join is still propagating with huge delays.
	src := `
topology waxman n=30 seed=5
protocol scmp
at 0.0 join 7
at 0.0001 send 3
run
expect delivered
`
	err := parse(t, src).Run(&bytes.Buffer{})
	if err == nil {
		t.Skip("race did not materialise on this topology") // defensive
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v", err)
	}
}
