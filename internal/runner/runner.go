// Package runner is the deterministic parallel execution layer for the
// experiment harness. Experiments are embarrassingly parallel at the
// (topology, seed) granularity — each shard is an isolated simulation
// with its own rng streams — so Map fans shards over a worker pool and
// collects results by job index. The caller merges shard results in that
// canonical index order, which makes aggregate output byte-identical to
// a serial run regardless of completion order. Cache complements Map:
// immutable per-key artifacts (graphs, centers, all-pairs tables) are
// built once and shared read-only across shards and protocols.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Options controls how Map executes its jobs.
type Options struct {
	// Parallel bounds the worker goroutines: 0 means GOMAXPROCS, 1 runs
	// every job inline on the calling goroutine (the pure serial path —
	// no goroutines, no synchronisation).
	Parallel int
	// Progress, when set, observes job completions as (done, total).
	// With more than one worker it is called concurrently and the done
	// counts arrive in completion order, not job order.
	Progress func(done, total int)
}

// workers resolves the effective worker count for n jobs.
func (o Options) workers(n int) int {
	p := o.Parallel
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// JobPanic is how Map re-raises a panic from inside a job: the original
// value plus the identity of the job that raised it and its stack, so a
// failure in shard 317 of 1080 says which (topology, seed) died.
type JobPanic struct {
	Job   int
	Value any
	Stack []byte
}

func (p JobPanic) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", p.Job, p.Value)
}

func (p JobPanic) String() string { return p.Error() }

// Map runs job(0..n-1) over min(Parallel, n) workers and returns the
// results indexed by job, so the merge order downstream is canonical no
// matter which worker finished first. If a job panics, Map stops handing
// out new jobs, waits for in-flight jobs, and re-panics the first
// failure as a JobPanic. Jobs must be independent: they may share
// read-only state (see Cache) but must not write to common state.
func Map[T any](opts Options, n int, job func(int) T) []T {
	out := make([]T, n)
	if opts.workers(n) <= 1 {
		for i := 0; i < n; i++ {
			if jp := capture(&out[i], i, job); jp != nil {
				panic(*jp)
			}
			if opts.Progress != nil {
				opts.Progress(i+1, n)
			}
		}
		return out
	}
	var (
		next, done atomic.Int64
		failed     atomic.Bool
		firstOnce  sync.Once
		first      JobPanic
		wg         sync.WaitGroup
	)
	for w := opts.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if jp := capture(&out[i], i, job); jp != nil {
					firstOnce.Do(func() {
						first = *jp
						failed.Store(true)
					})
					return
				}
				if opts.Progress != nil {
					opts.Progress(int(done.Add(1)), n)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		panic(first)
	}
	return out
}

// capture runs one job, converting a panic into a JobPanic instead of
// unwinding the worker.
func capture[T any](dst *T, i int, job func(int) T) (jp *JobPanic) {
	defer func() {
		if r := recover(); r != nil {
			jp = &JobPanic{Job: i, Value: r, Stack: debug.Stack()}
		}
	}()
	*dst = job(i)
	return nil
}

// Cache memoises immutable artifacts by key: the first Get for a key
// runs build exactly once (even under concurrent Gets) and every caller
// shares the same value read-only afterwards. The zero value is ready to
// use. Values must never be mutated after build returns — that is what
// lets shards on different goroutines share them without copies.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	v    V
	// built distinguishes "v holds the build result" from "the build
	// panicked": sync.Once marks itself done even when its function
	// panics, so without the flag every later Get for the key would
	// silently hand out the zero V.
	built  bool
	panicv any
}

// Get returns the cached value for k, building it on first use. Distinct
// keys may build concurrently; concurrent Gets of the same key block
// until the single build finishes. If the build panics, the panic is
// re-raised to every Get of that key — later callers see the original
// failure, never a zero value.
func (c *Cache[K, V]) Get(k K, build func() V) V {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e := c.m[k]
	if e == nil {
		e = new(cacheEntry[V])
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if !e.built {
				e.panicv = recover()
			}
		}()
		e.v = build()
		e.built = true
	})
	// Once.Do orders the build (or its recovery) before every return,
	// so built/panicv are safely visible to concurrent callers.
	if !e.built {
		panic(e.panicv)
	}
	return e.v
}

// Len reports how many keys have been requested so far (built or
// building), for tests and capacity reporting.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
