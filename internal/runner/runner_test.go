package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapCanonicalOrder: results land at their job index no matter how
// many workers race, so a merge over the returned slice is equivalent to
// the serial loop.
func TestMapCanonicalOrder(t *testing.T) {
	for _, parallel := range []int{1, 2, 4, 16} {
		got := Map(Options{Parallel: parallel}, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	if got := Map(Options{Parallel: 4}, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

// TestMapSerialPathInline: Parallel=1 must run jobs on the calling
// goroutine, in order — the pure serial path the -parallel 1 flag
// promises.
func TestMapSerialPathInline(t *testing.T) {
	var order []int
	Map(Options{Parallel: 1}, 5, func(i int) int {
		order = append(order, i) // safe only because it runs inline
		return i
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path ran out of order: %v", order)
		}
	}
}

// TestMapPanicIdentity: a panicking job surfaces as a JobPanic naming
// the job, in both serial and parallel modes.
func TestMapPanicIdentity(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				jp, ok := r.(JobPanic)
				if !ok {
					t.Fatalf("parallel=%d: recovered %T %v, want JobPanic", parallel, r, r)
				}
				if jp.Job != 7 {
					t.Fatalf("parallel=%d: job = %d, want 7", parallel, jp.Job)
				}
				if jp.Value != "boom" {
					t.Fatalf("parallel=%d: value = %v", parallel, jp.Value)
				}
				if !strings.Contains(jp.Error(), "job 7") || !strings.Contains(jp.Error(), "boom") {
					t.Fatalf("parallel=%d: error %q lacks identity", parallel, jp.Error())
				}
				if len(jp.Stack) == 0 {
					t.Fatalf("parallel=%d: no stack captured", parallel)
				}
			}()
			Map(Options{Parallel: parallel}, 20, func(i int) int {
				if i == 7 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

// TestMapProgress: every completion is reported and the final report is
// (n, n).
func TestMapProgress(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		var calls, last atomic.Int64
		Map(Options{Parallel: parallel, Progress: func(done, total int) {
			calls.Add(1)
			if total != 30 {
				t.Errorf("total = %d, want 30", total)
			}
			if done == total {
				last.Add(1)
			}
		}}, 30, func(i int) int { return i })
		if calls.Load() != 30 {
			t.Fatalf("parallel=%d: %d progress calls, want 30", parallel, calls.Load())
		}
		if last.Load() != 1 {
			t.Fatalf("parallel=%d: final (n, n) report seen %d times", parallel, last.Load())
		}
	}
}

// TestCacheBuildsOnce: concurrent Gets of one key run build exactly once
// and all callers see the same value; distinct keys build independently.
func TestCacheBuildsOnce(t *testing.T) {
	var c Cache[int, *int]
	var builds atomic.Int64
	got := Map(Options{Parallel: 8}, 64, func(i int) *int {
		return c.Get(i%4, func() *int {
			builds.Add(1)
			v := i % 4
			return &v
		})
	})
	if builds.Load() != 4 {
		t.Fatalf("builds = %d, want 4", builds.Load())
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	for i, p := range got {
		if *p != i%4 {
			t.Fatalf("key %d resolved to %d", i%4, *p)
		}
		if p != got[i%4] {
			t.Fatalf("job %d did not share the cached pointer", i)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := (Options{Parallel: 8}).workers(3); w != 3 {
		t.Fatalf("workers capped = %d, want 3", w)
	}
	if w := (Options{}).workers(1000); w < 1 {
		t.Fatalf("workers default = %d", w)
	}
	if w := (Options{Parallel: -5}).workers(2); w < 1 || w > 2 {
		t.Fatalf("negative parallel resolved to %d", w)
	}
}
