package runner

import "testing"

// Regression: a panicking build used to consume the entry's sync.Once,
// so every later Get for the key silently returned the zero V. The
// panic must be re-raised to every caller and the key must not be
// rebuilt (the cache contract is build-exactly-once, success or not).
func TestCachePanickingBuildDoesNotPoisonKey(t *testing.T) {
	var c Cache[string, int]

	catch := func(f func()) (v any) {
		defer func() { v = recover() }()
		f()
		return nil
	}

	builds := 0
	if got := catch(func() {
		c.Get("k", func() int { builds++; panic("boom") })
	}); got != "boom" {
		t.Fatalf("first Get recovered %v, want the build panic", got)
	}

	// A later Get must not return zero silently, and must not re-run a
	// build for the key: the original panic is re-raised.
	if got := catch(func() {
		c.Get("k", func() int { builds++; return 42 })
	}); got != "boom" {
		t.Fatalf("second Get recovered %v, want the original build panic re-raised", got)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want exactly once", builds)
	}

	// Other keys are unaffected.
	if v := c.Get("ok", func() int { return 7 }); v != 7 {
		t.Fatalf("healthy key returned %d, want 7", v)
	}
}
