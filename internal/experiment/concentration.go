package experiment

import (
	"fmt"
	"io"
	"scmp/internal/rng"
	"sort"

	"scmp/internal/core"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/runner"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// ConcentrationConfig parameterises the traffic-concentration study
// behind two of the paper's arguments: (a) §I — "the ST-based approach
// may cause traffic jam around the core, since packets from multiple
// sources may reach the core simultaneously"; (b) §II-A — multiple
// m-routers spread that load across regions. The workload: per group,
// a set of receiving members plus off-tree senders whose packets must
// funnel through the group's center.
type ConcentrationConfig struct {
	Nodes   int
	Degree  float64
	Groups  int
	Members int
	Senders int // off-tree senders per group (their packets funnel into the center)
	Rounds  int // each sender sends this many packets
	Seeds   int
	// Parallel bounds the worker goroutines fanning the per-seed shards
	// out: 0 means GOMAXPROCS, 1 the pure serial path.
	Parallel int
	// Progress, when set, observes shard completions (called
	// concurrently when Parallel > 1).
	Progress func(done, total int)
}

// DefaultConcentration returns a 50-router configuration.
func DefaultConcentration() ConcentrationConfig {
	return ConcentrationConfig{Nodes: 50, Degree: 4, Groups: 4, Members: 8, Senders: 6, Rounds: 3, Seeds: 5}
}

// ConcentrationPoint is one scheme's load profile.
type ConcentrationPoint struct {
	Scheme string
	// CenterLoad is the service load of the busiest center — the
	// packets it terminates (encapsulated data) or fans out (tree-root
	// data); MaxLink is the busiest single link's packet count.
	CenterLoad *stats.Sample
	MaxLink    *stats.Sample
}

// concentration schemes: CBT's single core, SCMP with one m-router, and
// SCMP spread over two and four m-routers.
var concentrationSchemes = []string{"CBT-1core", "SCMP-1m", "SCMP-2m", "SCMP-4m"}

// RunConcentration executes the study.
func RunConcentration(cfg ConcentrationConfig) []ConcentrationPoint {
	points := map[string]*ConcentrationPoint{}
	for _, s := range concentrationSchemes {
		points[s] = &ConcentrationPoint{Scheme: s, CenterLoad: &stats.Sample{}, MaxLink: &stats.Sample{}}
	}
	type concObs struct {
		scheme              string
		centerLoad, maxLink float64
	}
	opts := runner.Options{Parallel: cfg.Parallel, Progress: cfg.Progress}
	shards := runner.Map(opts, cfg.Seeds, func(seed int) []concObs {
		// Centers: the best-placed node plus the next-best spread
		// (deterministic: ranked by average delay), shared via the
		// artifact cache.
		art := randomArtifactFor(cfg.Nodes, cfg.Degree, int64(seed))
		g, centers := art.g, art.centers
		wl := rng.New(int64(seed) * 31337)
		type plan struct{ members, senders []topology.NodeID }
		plans := make([]plan, cfg.Groups)
		for i := range plans {
			members := pickMembers(wl, g.N(), cfg.Members, -1)
			isMember := map[topology.NodeID]bool{}
			for _, m := range members {
				isMember[m] = true
			}
			// Off-tree senders: non-members, so their packets must be
			// encapsulated to the group's center (the paper's §I
			// concern: "packets from multiple sources may reach the
			// core simultaneously").
			var senders []topology.NodeID
			for _, v := range wl.Perm(g.N()) {
				if isMember[topology.NodeID(v)] {
					continue
				}
				senders = append(senders, topology.NodeID(v))
				if len(senders) == cfg.Senders {
					break
				}
			}
			plans[i] = plan{members: members, senders: senders}
		}
		var obs []concObs
		for _, scheme := range concentrationSchemes {
			var proto netsim.Protocol
			var watch []topology.NodeID
			switch scheme {
			case "CBT-1core":
				proto = buildProtocol("CBT", centers[0], 10)
				watch = centers[:1]
			case "SCMP-1m":
				proto = core.New(core.Config{MRouter: centers[0], Kappa: 1.5})
				watch = centers[:1]
			case "SCMP-2m":
				proto = core.New(core.Config{MRouters: centers[:2], Kappa: 1.5})
				watch = centers[:2]
			case "SCMP-4m":
				proto = core.New(core.Config{MRouters: centers[:4], Kappa: 1.5})
				watch = centers[:4]
			}
			n := newNetwork(g, proto)
			// Service load: the packets a center must switch as the
			// m-router/core — encapsulated data terminating at it plus
			// data it fans out — as opposed to incidental transit (the
			// centers are the best-connected nodes, so raw link load
			// mostly measures how central they are, not their role).
			service := map[topology.NodeID]int64{}
			watched := map[topology.NodeID]bool{}
			for _, c := range watch {
				watched[c] = true
			}
			n.Trace = func(from, to topology.NodeID, pkt *netsim.Packet) {
				if pkt.Kind == packet.EncapData && watched[to] && pkt.Dst == to {
					service[to]++
				}
				if pkt.Kind == packet.Data && watched[from] {
					service[from]++
				}
			}
			for gi, p := range plans {
				gid := packet.GroupID(gi + 1)
				for _, m := range p.members {
					n.HostJoin(m, gid)
				}
			}
			n.Run()
			for round := 0; round < cfg.Rounds; round++ {
				for gi, p := range plans {
					gid := packet.GroupID(gi + 1)
					for _, src := range p.senders {
						n.SendData(src, gid, packet.DefaultDataSize)
						n.Run()
					}
				}
			}
			busiest := int64(0)
			for _, c := range watch {
				if load := service[c]; load > busiest {
					busiest = load
				}
			}
			_, maxLink := n.Metrics.MaxLinkLoad()
			obs = append(obs, concObs{scheme, float64(busiest), float64(maxLink)})
		}
		return obs
	})
	for _, shard := range shards {
		for _, o := range shard {
			pt := points[o.scheme]
			pt.CenterLoad.Add(o.centerLoad)
			pt.MaxLink.Add(o.maxLink)
		}
	}
	out := make([]ConcentrationPoint, 0, len(points))
	for _, s := range concentrationSchemes {
		out = append(out, *points[s])
	}
	return out
}

// rankedCenters returns the k nodes with the smallest average
// shortest-delay to all others, best first.
func rankedCenters(g *topology.Graph, k int) []topology.NodeID {
	type scored struct {
		v   topology.NodeID
		avg float64
	}
	all := make([]scored, g.N())
	for u := 0; u < g.N(); u++ {
		sp := topology.Shortest(g, topology.NodeID(u), topology.ByDelay)
		sum := 0.0
		for v := 0; v < g.N(); v++ {
			sum += sp.Delay[v]
		}
		all[u] = scored{topology.NodeID(u), sum / float64(g.N())}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].avg != all[j].avg {
			return all[i].avg < all[j].avg
		}
		return all[i].v < all[j].v
	})
	out := make([]topology.NodeID, k)
	for i := range out {
		out[i] = all[i].v
	}
	return out
}

// WriteConcentration prints the study.
func WriteConcentration(w io.Writer, points []ConcentrationPoint) {
	fmt.Fprintf(w, "\nTraffic concentration (service load of the busiest center / busiest link)\n")
	fmt.Fprintf(w, "%-12s %16s %16s\n", "scheme", "center load", "max link load")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %16.0f %16.0f\n", p.Scheme, p.CenterLoad.Mean(), p.MaxLink.Mean())
	}
}
