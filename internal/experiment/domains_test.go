package experiment

import (
	"bytes"
	"strings"
	"testing"

	"scmp/internal/rng"
	"scmp/internal/topology"
)

// smallDomains is a ~300-node instance: 12 transit nodes, 24 stub
// domains of 12 nodes (k: flat 1, transit 3, attach 12, natural 27).
func smallDomains() DomainsConfig {
	return DomainsConfig{
		Topology: topology.TransitStubConfig{
			TransitDomains:      3,
			TransitSize:         4,
			StubsPerTransitNode: 2,
			StubSize:            12,
			EdgeProb:            0.4,
		},
		Groupings: []DomainGrouping{GroupFlat, GroupTransit, GroupAttach, GroupNatural},
		Members:   48,
		Kappa:     2.0,
		Seeds:     2,
	}
}

// TestDomainsGroupingLabelsValid checks every grouping ladder rung
// against the DomainView contract: dense labels, connected domains,
// and the expected domain counts.
func TestDomainsGroupingLabelsValid(t *testing.T) {
	cfg := smallDomains().Topology
	g, info, err := topology.TransitStub(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	transitN := cfg.TransitDomains * cfg.TransitSize
	wantK := map[DomainGrouping]int{
		GroupFlat:    1,
		GroupTransit: cfg.TransitDomains,
		GroupAttach:  transitN,
		GroupNatural: cfg.TransitDomains + transitN*cfg.StubsPerTransitNode,
	}
	for grouping, k := range wantK {
		view, err := topology.NewDomainView(g, DomainLabels(cfg, info, grouping))
		if err != nil {
			t.Fatalf("%v: %v", grouping, err)
		}
		if view.K() != k {
			t.Fatalf("%v: K=%d, want %d", grouping, view.K(), k)
		}
	}
}

// TestDomainsFlatHierEqualAtK1 is the experiment-level arm of the
// differential gate: with a single all-covering domain the composer's
// workload metrics must equal the flat engine's exactly — same tree
// cost, same worst member delay, same control hop count.
func TestDomainsFlatHierEqualAtK1(t *testing.T) {
	cfg := smallDomains()
	g, info, err := topology.TransitStub(cfg.Topology, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	view, err := topology.NewDomainView(g, DomainLabels(cfg.Topology, info, GroupFlat))
	if err != nil {
		t.Fatal(err)
	}
	members := pickMembers(rng.New(77), g.N(), cfg.Members, -1)
	var flat, hier domainsObs
	runDomainsFlat(g, view, members, cfg.Kappa, &flat)
	runDomainsHier(view, members, cfg.Kappa, &hier)
	if flat.cost != hier.cost || flat.maxDelay != hier.maxDelay || flat.ctrl != hier.ctrl {
		t.Fatalf("k=1 composer diverged from flat engine:\nflat cost=%g maxDelay=%g ctrl=%g\nhier cost=%g maxDelay=%g ctrl=%g",
			flat.cost, flat.maxDelay, flat.ctrl, hier.cost, hier.maxDelay, hier.ctrl)
	}
	if hier.active != 1 {
		t.Fatalf("k=1 composer reports %g active domains", hier.active)
	}
}

// TestDomainsSweepShape runs the small sweep and checks the scalability
// claims the arms exist to demonstrate: bounded tree-cost regression,
// strictly cheaper control walks, and a smaller resident table
// footprint as the domain count grows.
func TestDomainsSweepShape(t *testing.T) {
	cfg := smallDomains()
	points := RunDomains(cfg)
	if len(points) != len(cfg.Groupings) {
		t.Fatalf("got %d points, want %d", len(points), len(cfg.Groupings))
	}
	get := func(name string) DomainsPoint {
		for _, p := range points {
			if p.Grouping == name {
				return p
			}
		}
		t.Fatalf("missing arm %q", name)
		return DomainsPoint{}
	}
	flat := get("flat")
	if flat.Domains != 1 || flat.ActiveDomains.Mean() != 1 {
		t.Fatalf("flat arm: domains=%d active=%g", flat.Domains, flat.ActiveDomains.Mean())
	}
	for _, name := range []string{"transit", "attach", "natural"} {
		p := get(name)
		if p.Domains <= 1 {
			t.Fatalf("%s arm: domain count %d", name, p.Domains)
		}
		// Hierarchical trees trade some cost for locality; the regression
		// must stay bounded for the architecture to make sense.
		if p.TreeCost.Mean() > 2.5*flat.TreeCost.Mean() {
			t.Fatalf("%s arm: tree cost %.1f blows past the flat baseline %.1f",
				name, p.TreeCost.Mean(), flat.TreeCost.Mean())
		}
		if p.MaxDelay.Mean() <= 0 || p.TreeCost.Mean() <= 0 {
			t.Fatalf("%s arm: degenerate metrics %+v", name, p)
		}
	}
	natural := get("natural")
	if natural.CtrlHops.Mean() >= flat.CtrlHops.Mean() {
		t.Fatalf("control locality lost: natural %.2f hops/join >= flat %.2f",
			natural.CtrlHops.Mean(), flat.CtrlHops.Mean())
	}
	if natural.TableBytes.Mean() >= flat.TableBytes.Mean() {
		t.Fatalf("resident tables not smaller: natural %.0fB >= flat %.0fB",
			natural.TableBytes.Mean(), flat.TableBytes.Mean())
	}
	if natural.ActiveDomains.Mean() <= 1 {
		t.Fatal("natural arm never activated a non-core domain")
	}
}

// TestDomainsParallelDeterminism: the sweep renders the exact same
// bytes serial and fanned over 4 workers.
func TestDomainsParallelDeterminism(t *testing.T) {
	cfg := smallDomains()
	cfg.Members = 24
	serial, parallel := cfg, cfg
	serial.Parallel = 1
	parallel.Parallel = 4
	var a, b bytes.Buffer
	if err := WriteDomainsCSV(&a, RunDomains(serial)); err != nil {
		t.Fatal(err)
	}
	if err := WriteDomainsCSV(&b, RunDomains(parallel)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("parallel run diverged from serial:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestWriteDomains(t *testing.T) {
	cfg := smallDomains()
	cfg.Seeds, cfg.Members = 1, 16
	points := RunDomains(cfg)
	var buf bytes.Buffer
	WriteDomains(&buf, points)
	out := buf.String()
	for _, want := range []string{"grouping", "flat", "natural", "tables_MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := WriteDomainsCSV(&csv, points); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(points)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(points)+1)
	}
}
