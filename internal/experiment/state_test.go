package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func smallState() StateConfig {
	return StateConfig{
		Nodes: 30, Degree: 4,
		Groups:  []int{1, 4},
		Members: 5, Senders: 3, PacketsPer: 1,
		Seeds: 2,
	}
}

func TestStateScalabilityShape(t *testing.T) {
	points := RunState(smallState())
	get := func(groups int, proto string) StatePoint {
		for _, p := range points {
			if p.Groups == groups && p.Protocol == proto {
				return p
			}
		}
		t.Fatalf("missing cell %d/%s", groups, proto)
		return StatePoint{}
	}
	for _, proto := range Protocols {
		one, four := get(1, proto), get(4, proto)
		if four.SumState.Mean() <= one.SumState.Mean() {
			t.Fatalf("%s: state did not grow with groups (%.0f -> %.0f)",
				proto, one.SumState.Mean(), four.SumState.Mean())
		}
	}
	// The paper's argument: per-(source,group) protocols hold much more
	// state than per-group protocols under multi-source workloads.
	for _, groups := range []int{1, 4} {
		scmp := get(groups, "SCMP").SumState.Mean()
		cbt := get(groups, "CBT").SumState.Mean()
		dvmrp := get(groups, "DVMRP").SumState.Mean()
		mospf := get(groups, "MOSPF").SumState.Mean()
		if dvmrp <= scmp || mospf <= scmp {
			t.Fatalf("groups=%d: SPT-based state (dvmrp %.0f, mospf %.0f) not above SCMP (%.0f)",
				groups, dvmrp, mospf, scmp)
		}
		if dvmrp <= cbt || mospf <= cbt {
			t.Fatalf("groups=%d: SPT-based state not above CBT", groups)
		}
	}
	// SCMP's per-router state is bounded by the group count.
	if got := get(4, "SCMP").MaxState.Mean(); got > 4 {
		t.Fatalf("SCMP max per-router state %.1f exceeds group count 4", got)
	}
}

func TestWriteState(t *testing.T) {
	var buf bytes.Buffer
	WriteState(&buf, RunState(StateConfig{
		Nodes: 20, Degree: 3, Groups: []int{2}, Members: 4, Senders: 2, PacketsPer: 1, Seeds: 1,
	}))
	out := buf.String()
	for _, want := range []string{"Routing state", "SCMP", "DVMRP", "MOSPF", "CBT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
