package experiment

// Cross-validation: each protocol's emergent packet paths must equal
// the corresponding algorithmic tree from internal/mtree, computed
// independently. This ties the packet-level implementations to the
// graph-level ground truth.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/mtree"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/protocols/cbt"
	"scmp/internal/protocols/dvmrp"
	"scmp/internal/protocols/mospf"
	"scmp/internal/topology"
)

const xgrp packet.GroupID = 1

// dataLinks runs one data packet and returns the set of undirected
// links DATA crossed.
func dataLinks(n *netsim.Network, src topology.NodeID) map[[2]topology.NodeID]bool {
	links := map[[2]topology.NodeID]bool{}
	old := n.Trace
	n.Trace = func(from, to topology.NodeID, pkt *netsim.Packet) {
		if pkt.Kind == packet.Data {
			a, b := from, to
			if a > b {
				a, b = b, a
			}
			links[[2]topology.NodeID{a, b}] = true
		}
	}
	n.SendData(src, xgrp, 100)
	n.Run()
	n.Trace = old
	return links
}

// treeLinks returns a tree's undirected edge set, restricted to the
// paths from root to the given members.
func treeLinks(tr *mtree.Tree, members []topology.NodeID) map[[2]topology.NodeID]bool {
	links := map[[2]topology.NodeID]bool{}
	for _, m := range members {
		path := tr.PathToRoot(m)
		for i := 1; i < len(path); i++ {
			a, b := path[i-1], path[i]
			if a > b {
				a, b = b, a
			}
			links[[2]topology.NodeID{a, b}] = true
		}
	}
	return links
}

func sameLinks(a, b map[[2]topology.NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Property: MOSPF's data packets traverse exactly the shortest-delay
// source tree restricted to member paths — the same tree mtree.SPT
// computes (both use the identical deterministic Dijkstra).
func TestPropertyMOSPFDataEqualsSPT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(18, 4), rng)
		if err != nil {
			return false
		}
		n := netsim.New(g, mospf.New())
		members := pickMembers(rng, g.N(), 5, -1)
		src := topology.NodeID(rng.Intn(g.N()))
		for _, m := range members {
			n.HostJoin(m, xgrp)
		}
		n.Run()
		got := dataLinks(n, src)
		spt := mtree.SPT(g, src, members, nil)
		want := treeLinks(spt, membersExcluding(members, src))
		return sameLinks(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: DVMRP, once its prunes converge, forwards data on exactly
// the shortest-delay source tree restricted to member paths.
func TestPropertyDVMRPSteadyStateEqualsSPT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(18, 4), rng)
		if err != nil {
			return false
		}
		n := netsim.New(g, dvmrp.New(1e9 /* prunes never expire */))
		members := pickMembers(rng, g.N(), 5, -1)
		src := topology.NodeID(rng.Intn(g.N()))
		for _, m := range members {
			n.HostJoin(m, xgrp)
		}
		// Warm up: prunes propagate lazily, one hop per packet in the
		// worst case, so a few rounds converge the broadcast tree.
		for i := 0; i < g.N(); i++ {
			n.SendData(src, xgrp, 100)
			n.Run()
		}
		got := dataLinks(n, src)
		spt := mtree.SPT(g, src, members, nil)
		want := treeLinks(spt, membersExcluding(members, src))
		return sameLinks(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: CBT's installed branches are the unicast shortest-delay
// routes toward the core — each member's upstream chain equals the
// unicast path the join followed.
func TestPropertyCBTBranchesFollowUnicastRoutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(18, 4), rng)
		if err != nil {
			return false
		}
		core := topology.NodeID(0)
		c := cbt.New(core)
		n := netsim.New(g, c)
		members := pickMembers(rng, g.N(), 5, core)
		// Join strictly one at a time so each join's interception point
		// is deterministic.
		for _, m := range members {
			n.HostJoin(m, xgrp)
			n.Run()
		}
		// Each member's installed upstream chain must be a prefix-wise
		// subset of unicast routes toward the core: at every on-tree
		// router, the upstream equals the unicast next hop (joins are
		// forwarded along Next[at][core] and acks retrace the path).
		for _, m := range members {
			at := m
			for hops := 0; at != core; hops++ {
				if hops > g.N() {
					return false // cycle
				}
				up, ok := c.Upstream(at, xgrp)
				if !ok {
					return false
				}
				if up != n.Next.Hop(at, core) {
					return false
				}
				at = up
			}
		}
		// And the shared tree delivers exactly once from the core.
		seq := n.SendData(core, xgrp, 100)
		n.Run()
		missing, anomalous := n.CheckDelivery(seq)
		return len(missing) == 0 && len(anomalous) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func membersExcluding(members []topology.NodeID, src topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(members))
	for _, m := range members {
		if m != src {
			out = append(out, m)
		}
	}
	return out
}
