package experiment

import (
	"fmt"
	"io"
	"sort"

	"scmp/internal/core"
	"scmp/internal/des"
	"scmp/internal/mtree"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/rng"
	"scmp/internal/runner"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// The churn experiment stresses SCMP's control plane the way the faults
// experiment stresses its data plane: a seeded churn driver
// (netsim.ChurnPlan) flaps a member population at sweep-controlled
// aggregate rates — up to thousands of membership events per simulated
// second — under control-plane loss, with the overload-protection stack
// (admission control + retry budgets + refresh suppression) on vs off.
//
// Per run the sweep records the peak m-router pending-operation queue
// (the boundedness acceptance metric), stranded survivors after a
// settle phase (the convergence acceptance metric), per-cause
// shed/park/recover counters, tree-quality drift against a periodic
// full-rebuild baseline, the rearrangement rate, and control overhead.
// Shards fan over (topology, seed) exactly like Fig. 8/9, so serial and
// parallel runs are byte-identical; churned networks always use the
// serial event drive (netsim declines Partition under churn).

// ChurnConfig parameterises the churn sweep.
type ChurnConfig struct {
	Topologies []string  // defaults to Fig89Topologies()
	Rates      []float64 // aggregate membership events per simulated second
	LossRates  []float64 // control-plane loss during the churn window
	GroupSize  int       // churning member population (clamped below topology size)
	Seeds      int       // placements / churn streams per point
	Duration   float64   // churn window in seconds
	Settle     float64   // post-churn settle horizon before the probe
	Pareto     bool      // heavy-tailed (Pareto) gaps instead of Poisson
	// Parallel, Partitions and Progress behave exactly as in
	// Fig89Config. Churned networks decline the partitioned drive
	// (netsim.Network.Partition returns false), so any Partitions value
	// leaves the sweep byte-identical.
	Parallel   int
	Partitions int
	Progress   func(done, total int)
}

// DefaultChurn returns the standard churn-sweep configuration.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{
		Topologies: Fig89Topologies(),
		Rates:      []float64{100, 500, 2000},
		LossRates:  []float64{0, 0.05},
		GroupSize:  16,
		Seeds:      8,
		Duration:   5,
		Settle:     10,
	}
}

// Control-plane timers for the sweep. Both arms run the same reliable
// stack (ACK/retransmit, soft-state refresh, m-router service model);
// the protected arm adds the three overload defences on top. The
// service capacity (1/churnServiceTime ops/s on one processor) sits
// below the top sweep rate plus its retransmission amplification, so
// the unprotected arm genuinely overloads.
const (
	churnAckTimeout      = 0.05
	churnRetryCap        = 8
	churnRetryBudget     = 4
	churnRefreshInterval = 2.0
	churnServiceTime     = 0.00075
	churnAdmitLimit      = 32
)

const churnGroup = packet.GroupID(1)

// churnCore builds the protocol under test: the shared reliability +
// service stack, with or without the overload defences.
func churnCore(center topology.NodeID, protected bool) *core.SCMP {
	cfg := core.Config{
		MRouter:         center,
		Kappa:           1.5,
		AckTimeout:      churnAckTimeout,
		RetryCap:        churnRetryCap,
		RefreshInterval: churnRefreshInterval,
		ServiceTime:     churnServiceTime,
		Processors:      1,
	}
	if protected {
		cfg.AdmitLimit = churnAdmitLimit
		cfg.RetryBudget = churnRetryBudget
		cfg.RefreshSuppress = true
	}
	return core.New(cfg)
}

// churnMembers draws the shard's flapping population (never the
// m-router), from its own stream so cache state cannot shift it.
func churnMembers(art *fig89Artifact, cfg ChurnConfig, seed int) []topology.NodeID {
	rnd := rng.New(int64(seed)*104729 + 11)
	size := cfg.GroupSize
	if size > art.g.N()-1 {
		size = art.g.N() - 1
	}
	return pickMembers(rnd, art.g.N(), size, art.center)
}

// churnObs is one shard's observation for one (rate, loss, protection)
// run.
type churnObs struct {
	rate      float64
	loss      float64
	protected bool
	// maxBacklog is the peak m-router pending-operation queue sampled
	// every 0.1s — the boundedness acceptance metric. stranded counts
	// surviving members the post-settle probe missed — the convergence
	// acceptance metric.
	maxBacklog int
	stranded   int
	survivors  int
	events     int
	sheds      int64
	parks      int64
	recovers   int64
	skips      int64
	rearr      float64 // restructures per membership event
	drift      float64 // mean tree cost / full-rebuild cost during churn
	ctrl       float64 // protocol overhead, link-cost units
}

// rebuildCost computes the periodic full-rebuild baseline: the cost of
// a fresh DCDM tree over the group's current members, on clean path
// tables shared across the run's samples.
func rebuildCost(art *fig89Artifact, spD, spC *topology.AllPairs, members []topology.NodeID) float64 {
	d := mtree.NewDCDM(art.g, art.center, 1.5, spD, spC)
	sorted := append([]topology.NodeID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, m := range sorted {
		d.Join(m)
	}
	return d.Tree().Cost()
}

// runChurnRun executes one churn run: the flap schedule under loss,
// backlog and drift sampling, a settle phase, a bounded quiesced drain,
// and a clean probe against the surviving membership.
func runChurnRun(art *fig89Artifact, cfg ChurnConfig,
	members []topology.NodeID, rate, loss float64, protected bool, seed int) churnObs {

	s := churnCore(art.center, protected)
	n := newNetwork(art.g, s)
	dist := netsim.ChurnPoisson
	if cfg.Pareto {
		dist = netsim.ChurnPareto
	}
	ch := n.InstallChurn(netsim.ChurnPlan{
		Group:    churnGroup,
		Members:  members,
		Rate:     rate,
		Dist:     dist,
		Duration: cfg.Duration,
		Seed:     int64(seed)*7919 + 13,
	})
	n.Partition(cfg.Partitions, int64(seed)) // declined under churn: serial drive
	n.InstallFaults(netsim.FaultPlan{
		ControlLoss: loss,
		LossUntil:   des.Time(cfg.Duration),
		Seed:        int64(seed)*31 + 7,
	})

	// Backlog sampler: the peak pending-operation queue, every 0.1s
	// through the churn window and one settle second of drain.
	maxBacklog := 0
	for i := 0; float64(i)*0.1 <= cfg.Duration+1; i++ {
		n.Sched.At(des.Time(float64(i)*0.1), func() {
			if b := s.ControlBacklog(); b > maxBacklog {
				maxBacklog = b
			}
		})
	}
	// Drift sampler: every 0.5s during churn, current tree cost vs a
	// full rebuild over the same members.
	spD := topology.NewLazyAllPairs(art.g, topology.ByDelay)
	spC := topology.NewLazyAllPairs(art.g, topology.ByCost)
	driftSum, driftN := 0.0, 0
	for i := 1; float64(i)*0.5 <= cfg.Duration; i++ {
		n.Sched.At(des.Time(float64(i)*0.5), func() {
			tr := s.GroupTree(churnGroup)
			if tr == nil || tr.MemberCount() == 0 {
				return
			}
			if base := rebuildCost(art, spD, spC, tr.Members()); base > 0 {
				driftSum += tr.Cost() / base
				driftN++
			}
		})
	}

	total := cfg.Duration + cfg.Settle
	n.RunUntil(des.Time(total))
	// Bounded drain: service operations executing after the horizon
	// re-arm refresh timers, so a single Quiesce+Run could spin
	// forever. Quiesce per one-second slice until the scheduler drains
	// (the post-churn backlog is finite, so this terminates).
	for n.Sched.Pending() > 0 {
		s.Quiesce()
		total++
		n.RunUntil(des.Time(total))
	}

	probe := n.SendData(art.center, churnGroup, packet.DefaultDataSize)
	n.Run()
	missing, _ := n.CheckDelivery(probe)

	obs := churnObs{
		rate:       rate,
		loss:       loss,
		protected:  protected,
		maxBacklog: maxBacklog,
		stranded:   len(missing),
		survivors:  len(n.Members(churnGroup)),
		events:     ch.Events(),
		sheds:      n.Metrics.Sheds(),
		parks:      n.Metrics.Parks(),
		recovers:   n.Metrics.ParkRecovers(),
		skips:      n.Metrics.RefreshSkips(),
		ctrl:       n.Metrics.ProtocolOverhead(),
	}
	if ch.Events() > 0 {
		obs.rearr = float64(n.Metrics.Restructures()) / float64(ch.Events())
	}
	if driftN > 0 {
		obs.drift = driftSum / float64(driftN)
	}
	return obs
}

// runChurnShard executes every run of one (topology, seed) shard in
// deterministic order: rate-major, loss-minor, protection on before
// off.
func runChurnShard(cfg ChurnConfig, topo string, seed int) []churnObs {
	art := fig89ArtifactFor(topo, int64(seed))
	members := churnMembers(art, cfg, seed)
	var out []churnObs
	for _, rate := range cfg.Rates {
		for _, loss := range cfg.LossRates {
			for _, protected := range []bool{true, false} {
				out = append(out, runChurnRun(art, cfg, members, rate, loss, protected, seed))
			}
		}
	}
	return out
}

// ChurnPoint is one (topology, rate, loss, protection) cell of the
// sweep, averaged over seeds.
type ChurnPoint struct {
	Topology  string
	Rate      float64
	Loss      float64
	Protected bool

	MaxBacklog *stats.Sample
	Stranded   *stats.Sample
	Sheds      *stats.Sample
	Parks      *stats.Sample
	Recovers   *stats.Sample
	Skips      *stats.Sample
	Rearrange  *stats.Sample // restructures per membership event
	Drift      *stats.Sample // tree cost vs full-rebuild baseline
	Ctrl       *stats.Sample // protocol overhead, link-cost units
}

// ChurnResult is the whole sweep.
type ChurnResult struct {
	Points []ChurnPoint
}

// RunChurn executes the churn sweep, fanning (topology, seed) shards
// over runner.Map; shard results merge in topology-major, seed-minor
// order, so the aggregate is byte-identical to a serial run at any
// worker count.
func RunChurn(cfg ChurnConfig) ChurnResult {
	if cfg.Topologies == nil {
		cfg.Topologies = Fig89Topologies()
	}
	type key struct {
		topo      string
		rate      float64
		loss      float64
		protected bool
	}
	cells := make(map[key]*ChurnPoint)
	cell := func(topo string, o churnObs) *ChurnPoint {
		k := key{topo, o.rate, o.loss, o.protected}
		p := cells[k]
		if p == nil {
			p = &ChurnPoint{Topology: topo, Rate: o.rate, Loss: o.loss, Protected: o.protected,
				MaxBacklog: &stats.Sample{}, Stranded: &stats.Sample{},
				Sheds: &stats.Sample{}, Parks: &stats.Sample{}, Recovers: &stats.Sample{},
				Skips: &stats.Sample{}, Rearrange: &stats.Sample{},
				Drift: &stats.Sample{}, Ctrl: &stats.Sample{}}
			cells[k] = p
		}
		return p
	}

	opts := runner.Options{Parallel: cfg.Parallel, Progress: cfg.Progress}
	shards := runner.Map(opts, len(cfg.Topologies)*cfg.Seeds, func(j int) []churnObs {
		return runChurnShard(cfg, cfg.Topologies[j/cfg.Seeds], j%cfg.Seeds)
	})
	for j, sh := range shards {
		topo := cfg.Topologies[j/cfg.Seeds]
		for _, o := range sh {
			c := cell(topo, o)
			c.MaxBacklog.Add(float64(o.maxBacklog))
			c.Stranded.Add(float64(o.stranded))
			c.Sheds.Add(float64(o.sheds))
			c.Parks.Add(float64(o.parks))
			c.Recovers.Add(float64(o.recovers))
			c.Skips.Add(float64(o.skips))
			c.Rearrange.Add(o.rearr)
			c.Drift.Add(o.drift)
			c.Ctrl.Add(o.ctrl)
		}
	}

	res := ChurnResult{}
	for _, p := range cells {
		res.Points = append(res.Points, *p)
	}
	sort.Slice(res.Points, func(i, j int) bool {
		a, b := res.Points[i], res.Points[j]
		if a.Topology != b.Topology {
			return topoRank(a.Topology) < topoRank(b.Topology)
		}
		if a.Rate != b.Rate {
			return a.Rate < b.Rate
		}
		if a.Loss != b.Loss {
			return a.Loss < b.Loss
		}
		return a.Protected && !b.Protected
	})
	return res
}

// WriteChurn prints the sweep as per-topology tables.
func WriteChurn(w io.Writer, res ChurnResult) {
	for _, topo := range Fig89Topologies() {
		any := false
		for _, p := range res.Points {
			if p.Topology == topo {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(w, "\nChurn sweep — %s\n", topo)
		fmt.Fprintf(w, "%-8s %-6s %-5s %9s %9s %8s %7s %7s %7s %9s %7s %10s\n",
			"rate", "loss", "prot", "maxqueue", "stranded",
			"sheds", "parks", "recov", "skips", "rearr/ev", "drift", "ctrl-ovh")
		for _, p := range res.Points {
			if p.Topology != topo {
				continue
			}
			fmt.Fprintf(w, "%-8.0f %-6.2f %-5s %9.1f %9.2f %8.1f %7.1f %7.1f %7.1f %9.4f %7.4f %10.1f\n",
				p.Rate, p.Loss, onOff(p.Protected),
				p.MaxBacklog.Mean(), p.Stranded.Mean(),
				p.Sheds.Mean(), p.Parks.Mean(), p.Recovers.Mean(), p.Skips.Mean(),
				p.Rearrange.Mean(), p.Drift.Mean(), p.Ctrl.Mean())
		}
	}
}

// WriteChurnCSV renders the sweep as one CSV table.
func WriteChurnCSV(w io.Writer, res ChurnResult) error {
	rows := make([][]string, 0, len(res.Points))
	for _, p := range res.Points {
		rows = append(rows, []string{
			p.Topology, f(p.Rate), f(p.Loss), onOff(p.Protected),
			f(p.MaxBacklog.Mean()), f(p.MaxBacklog.Max()),
			f(p.Stranded.Mean()), f(p.Stranded.CI95()),
			f(p.Sheds.Mean()), f(p.Parks.Mean()), f(p.Recovers.Mean()), f(p.Skips.Mean()),
			f(p.Rearrange.Mean()), f(p.Drift.Mean()), f(p.Ctrl.Mean()),
		})
	}
	return writeCSV(w, []string{
		"topology", "rate", "loss", "protected",
		"max_backlog_mean", "max_backlog_max",
		"stranded_mean", "stranded_ci95",
		"sheds_mean", "parks_mean", "recovers_mean", "skips_mean",
		"rearrange_per_event", "drift_mean", "ctrl_overhead_mean",
	}, rows)
}
