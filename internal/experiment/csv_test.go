package experiment

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, out string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFig7CSV(t *testing.T) {
	points := RunFig7(Fig7Config{Nodes: 30, Alpha: 0.25, Beta: 0.2, GroupSizes: []int{5}, Seeds: 2})
	var buf bytes.Buffer
	if err := WriteFig7CSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	// 3 levels x 1 size x 3 algorithms + header.
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	if rows[0][0] != "level" || len(rows[1]) != 7 {
		t.Fatalf("header/shape wrong: %v", rows[0])
	}
}

func TestFig89CSV(t *testing.T) {
	cfg := Fig89Config{GroupSizes: []int{8}, Seeds: 1, SimTime: 3, DataRate: 1,
		PruneLifetime: 5, Topologies: []string{TopoArpanet}}
	var buf bytes.Buffer
	if err := WriteFig89CSV(&buf, RunFig89(cfg)); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if len(rows) != 5 { // header + 4 protocols
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[1][0] != TopoArpanet || rows[1][9] != "0" {
		t.Fatalf("row = %v", rows[1])
	}
}

func TestPlacementStateConcentrationCSV(t *testing.T) {
	var buf bytes.Buffer
	pp := RunPlacement(PlacementConfig{Nodes: 30, GroupSize: 8, Seeds: 1, Trials: 2, Kappa: 1.5})
	if err := WritePlacementCSV(&buf, pp); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, buf.String()); len(rows) != len(PlacementRules)+1 {
		t.Fatalf("placement rows = %d", len(rows))
	}

	buf.Reset()
	sp := RunState(StateConfig{Nodes: 20, Degree: 3, Groups: []int{2}, Members: 4, Senders: 2, PacketsPer: 1, Seeds: 1})
	if err := WriteStateCSV(&buf, sp); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, buf.String()); len(rows) != len(Protocols)+1 {
		t.Fatalf("state rows = %d", len(rows))
	}

	buf.Reset()
	cp := RunConcentration(ConcentrationConfig{Nodes: 20, Degree: 3, Groups: 2, Members: 4, Senders: 3, Rounds: 1, Seeds: 1})
	if err := WriteConcentrationCSV(&buf, cp); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, buf.String()); len(rows) != 5 {
		t.Fatalf("concentration rows = %d", len(rows))
	}
}
