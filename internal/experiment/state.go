package experiment

import (
	"fmt"
	"io"
	"scmp/internal/rng"
	"sort"

	"scmp/internal/packet"
	"scmp/internal/runner"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// StateConfig parameterises the routing-state scalability study that
// quantifies the paper's §I argument: SPT-based protocols (DVMRP,
// MOSPF) keep per-(source, group) state, while the shared/centralised
// protocols (SCMP, CBT) keep per-group state only. The workload runs
// G groups, each with a fixed member count and several distinct
// senders, then counts each router's live state entries.
type StateConfig struct {
	Nodes      int
	Degree     float64
	Groups     []int // group counts to sweep
	Members    int   // members per group
	Senders    int   // distinct senders per group
	PacketsPer int   // packets each sender sends (instantiates state)
	Seeds      int
	// Parallel bounds the worker goroutines fanning the per-seed shards
	// out: 0 means GOMAXPROCS, 1 the pure serial path.
	Parallel int
	// Progress, when set, observes shard completions (called
	// concurrently when Parallel > 1).
	Progress func(done, total int)
}

// DefaultState returns a 50-router configuration.
func DefaultState() StateConfig {
	return StateConfig{
		Nodes: 50, Degree: 4,
		Groups:  []int{1, 2, 4, 8, 16},
		Members: 8, Senders: 4, PacketsPer: 2,
		Seeds: 5,
	}
}

// StatePoint is one (groups, protocol) cell: state entries per router.
type StatePoint struct {
	Groups   int
	Protocol string
	MaxState *stats.Sample // max entries over routers, sampled per seed
	SumState *stats.Sample // total entries across routers
}

// stateCounter is implemented by all four protocols.
type stateCounter interface {
	StateEntries(node topology.NodeID) int
}

// RunState executes the sweep.
func RunState(cfg StateConfig) []StatePoint {
	type key struct {
		groups int
		proto  string
	}
	cells := map[key]*StatePoint{}
	cell := func(groups int, proto string) *StatePoint {
		k := key{groups, proto}
		p := cells[k]
		if p == nil {
			p = &StatePoint{Groups: groups, Protocol: proto,
				MaxState: &stats.Sample{}, SumState: &stats.Sample{}}
			cells[k] = p
		}
		return p
	}
	type stateObs struct {
		groups        int
		proto         string
		maxState, sum float64
	}
	opts := runner.Options{Parallel: cfg.Parallel, Progress: cfg.Progress}
	shards := runner.Map(opts, cfg.Seeds, func(seed int) []stateObs {
		art := randomArtifactFor(cfg.Nodes, cfg.Degree, int64(seed))
		g, center := art.g, art.centers[0]
		var obs []stateObs
		for _, groups := range cfg.Groups {
			// One shared workload per (seed, groups): per group, a
			// member set and a sender set.
			wl := rng.New(int64(seed)*1e6 + int64(groups))
			type groupPlan struct {
				members []topology.NodeID
				senders []topology.NodeID
			}
			plans := make([]groupPlan, groups)
			for i := range plans {
				plans[i] = groupPlan{
					members: pickMembers(wl, g.N(), cfg.Members, -1),
					senders: pickMembers(wl, g.N(), cfg.Senders, -1),
				}
			}
			for _, protoName := range Protocols {
				proto := buildProtocol(protoName, center, 1000 /* prunes persist: measure steady state */)
				n := newNetwork(g, proto)
				for gi, plan := range plans {
					gid := packet.GroupID(gi + 1)
					for _, m := range plan.members {
						n.HostJoin(m, gid)
					}
					n.Run()
					for p := 0; p < cfg.PacketsPer; p++ {
						for _, s := range plan.senders {
							n.SendData(s, gid, packet.DefaultDataSize)
							n.Run()
						}
					}
				}
				counter := proto.(stateCounter)
				maxState, sum := 0, 0
				for v := 0; v < g.N(); v++ {
					st := counter.StateEntries(topology.NodeID(v))
					sum += st
					if st > maxState {
						maxState = st
					}
				}
				obs = append(obs, stateObs{groups, protoName, float64(maxState), float64(sum)})
			}
		}
		return obs
	})
	for _, shard := range shards {
		for _, o := range shard {
			c := cell(o.groups, o.proto)
			c.MaxState.Add(o.maxState)
			c.SumState.Add(o.sum)
		}
	}
	out := make([]StatePoint, 0, len(cells))
	for _, p := range cells {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Groups != out[j].Groups {
			return out[i].Groups < out[j].Groups
		}
		return protoRank(out[i].Protocol) < protoRank(out[j].Protocol)
	})
	return out
}

// WriteState prints the study: per group count, the worst-router and
// domain-total state entries per protocol.
func WriteState(w io.Writer, points []StatePoint) {
	fmt.Fprintf(w, "\nRouting state per router (max over routers / domain total)\n")
	fmt.Fprintf(w, "%-8s", "groups")
	for _, proto := range Protocols {
		fmt.Fprintf(w, " %18s", proto)
	}
	fmt.Fprintln(w)
	byGroups := map[int]map[string]StatePoint{}
	for _, p := range points {
		if byGroups[p.Groups] == nil {
			byGroups[p.Groups] = map[string]StatePoint{}
		}
		byGroups[p.Groups][p.Protocol] = p
	}
	var groupCounts []int
	for gc := range byGroups {
		groupCounts = append(groupCounts, gc)
	}
	sort.Ints(groupCounts)
	for _, gc := range groupCounts {
		fmt.Fprintf(w, "%-8d", gc)
		for _, proto := range Protocols {
			p, ok := byGroups[gc][proto]
			if !ok {
				fmt.Fprintf(w, " %18s", "-")
				continue
			}
			fmt.Fprintf(w, " %9.1f/%8.0f", p.MaxState.Mean(), p.SumState.Mean())
		}
		fmt.Fprintln(w)
	}
}
