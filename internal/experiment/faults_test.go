package experiment

import (
	"bytes"
	"testing"
)

// The issue's acceptance criterion, run through the public harness:
// under 5% uniform loss the hardened stack strands nobody once the loss
// window closes, while the identically-seeded bare stack strands at
// least one member somewhere in the sweep; the loss-free rows are
// identical across modes (fault layer transparency).
func TestFaultsSweepAcceptance(t *testing.T) {
	cfg := FaultsConfig{
		Topologies: []string{TopoArpanet},
		LossRates:  []float64{0, 0.05},
		GroupSize:  8, Seeds: 4, SimTime: 10, DataRate: 1,
		Parallel: 1,
	}
	res := RunFaults(cfg)
	bareStranded := 0.0
	for _, p := range res.Loss {
		switch {
		case p.Repair && p.Stranded.Mean() != 0:
			t.Errorf("hardened stack stranded %.2f members at loss %.2f", p.Stranded.Mean(), p.Loss)
		case !p.Repair && p.Loss > 0:
			bareStranded += p.Stranded.Mean()
		case p.Loss == 0 && (p.Stranded.Mean() != 0 || p.CtrlDrops.Mean() != 0):
			t.Errorf("loss-free run not transparent: %+v", p)
		}
	}
	if bareStranded == 0 {
		t.Error("bare stack stranded nobody under loss — the sweep no longer discriminates")
	}
	for _, p := range res.Recovery {
		if p.Healed != p.Runs {
			t.Errorf("%s: only %d/%d link-cut runs healed", p.Topology, p.Healed, p.Runs)
		}
		if p.Recovery.N() > 0 && p.Recovery.Mean() <= 0 {
			t.Errorf("%s: non-positive mean recovery time", p.Topology)
		}
	}
}

// Same config twice must render byte-identical output (the serial
// twin of core's cross-mode test).
func TestFaultsRerunIsByteIdentical(t *testing.T) {
	cfg := FaultsConfig{
		Topologies: []string{TopoArpanet},
		LossRates:  []float64{0.05},
		GroupSize:  6, Seeds: 2, SimTime: 8, DataRate: 1,
		Parallel: 1,
	}
	render := func() []byte {
		var buf bytes.Buffer
		if err := WriteFaultsCSV(&buf, RunFaults(cfg)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Fatalf("re-run diverged:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}
