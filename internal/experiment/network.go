package experiment

import (
	"scmp/internal/netsim"
	"scmp/internal/topology"
)

// newNetwork constructs the simulation network every experiment run
// uses. It exists as a seam for the differential-equivalence gate,
// which swaps in netsim.NewRef to replay the same workloads over the
// preserved reference data plane and assert byte-identical reports
// (dataplane_test.go); production code never reassigns it.
var newNetwork func(*topology.Graph, netsim.Protocol) *netsim.Network = netsim.New
