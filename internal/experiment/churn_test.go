package experiment

import (
	"bytes"
	"testing"
)

// TestChurnOverloadProtection is the sweep's acceptance gate. At the top
// arrival rate under 5% control loss the unprotected control plane must
// reproduce the overload failure — an effectively unbounded
// pending-operation queue (or stranded survivors); with the protection
// stack on, the same schedule must keep the queue bounded near the
// admission limit, shed visibly, and still converge every surviving
// member after the settle phase.
func TestChurnOverloadProtection(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Duration, cfg.Settle = 3, 6
	for seed := 0; seed < 3; seed++ {
		art := fig89ArtifactFor(TopoArpanet, int64(seed))
		members := churnMembers(art, cfg, seed)

		prot := runChurnRun(art, cfg, members, 2000, 0.05, true, seed)
		if prot.maxBacklog > 2*churnAdmitLimit {
			t.Errorf("seed %d: protected backlog peaked at %d, admission limit %d",
				seed, prot.maxBacklog, churnAdmitLimit)
		}
		if prot.stranded != 0 {
			t.Errorf("seed %d: %d of %d survivors stranded with protection on",
				seed, prot.stranded, prot.survivors)
		}
		if prot.sheds == 0 {
			t.Errorf("seed %d: protected arm never shed at the top rate", seed)
		}

		raw := runChurnRun(art, cfg, members, 2000, 0.05, false, seed)
		if raw.maxBacklog <= 4*churnAdmitLimit && raw.stranded == 0 {
			t.Errorf("seed %d: unprotected arm did not overload (peak backlog %d, stranded %d)",
				seed, raw.maxBacklog, raw.stranded)
		}
		if raw.sheds != 0 {
			t.Errorf("seed %d: unprotected arm shed %d JOINs", seed, raw.sheds)
		}
	}
}

// TestChurnTableByteIdentical: the churn report must be byte-identical
// between a serial run and runner-sharded runs at several worker
// counts, for both renderers.
func TestChurnTableByteIdentical(t *testing.T) {
	render := func(parallel int) ([]byte, []byte) {
		cfg := DefaultChurn()
		cfg.Topologies = []string{TopoArpanet, TopoRand3}
		cfg.Rates = []float64{100, 2000}
		cfg.LossRates = []float64{0, 0.05}
		cfg.Seeds = 2
		cfg.Duration, cfg.Settle = 2, 4
		cfg.Parallel = parallel
		res := RunChurn(cfg)
		var table, csv bytes.Buffer
		WriteChurn(&table, res)
		if err := WriteChurnCSV(&csv, res); err != nil {
			t.Fatalf("parallel=%d: csv: %v", parallel, err)
		}
		return table.Bytes(), csv.Bytes()
	}
	serialTable, serialCSV := render(1)
	if len(serialTable) == 0 || len(serialCSV) == 0 {
		t.Fatal("serial churn sweep rendered nothing")
	}
	for _, p := range []int{2, 4, 8} {
		table, csv := render(p)
		if !bytes.Equal(serialTable, table) {
			t.Fatalf("churn table diverges at %d workers:\n--- serial ---\n%s\n--- p=%d ---\n%s",
				p, serialTable, p, table)
		}
		if !bytes.Equal(serialCSV, csv) {
			t.Fatalf("churn csv diverges at %d workers", p)
		}
	}
}
