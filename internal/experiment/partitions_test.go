package experiment

import (
	"bytes"
	"fmt"
	"testing"

	"scmp/internal/core"
	"scmp/internal/netsim"
	"scmp/internal/protocols/dvmrp"
	"scmp/internal/rng"
)

// The serial-vs-partitioned differential gate (DESIGN.md §12): the same
// smoke workloads rendered to full report bytes must be identical for
// the serial drive and for every partition count. Protocols that do not
// opt in via netsim.ParallelSafe fall back to serial inside the sweep,
// so the gate simultaneously checks the partitioned SCMP runs and the
// fallback plumbing. CI runs this with -race and -tags invariants.

// renderPartitionedReports runs the shrunken Fig. 8/9 and chaos sweeps
// with the given simulation partition count and returns the
// concatenated report text. The shard fan-out is pinned serial so the
// only varying axis is the partitioned event drive.
func renderPartitionedReports(partitions int) []byte {
	var buf bytes.Buffer
	cfg := Fig89Config{
		Topologies:    []string{TopoArpanet, TopoRand3},
		GroupSizes:    []int{8, 16},
		Seeds:         2,
		SimTime:       5,
		DataRate:      1,
		PruneLifetime: dvmrp.DefaultPruneLifetime,
		Parallel:      1,
		Partitions:    partitions,
	}
	points := RunFig89(cfg)
	WriteFig8(&buf, points)
	WriteFig9(&buf, points)

	fcfg := FaultsConfig{
		Topologies: []string{TopoArpanet},
		LossRates:  []float64{0, 0.05},
		GroupSize:  8,
		Seeds:      2,
		SimTime:    5,
		DataRate:   1,
		Parallel:   1,
		Partitions: partitions,
	}
	WriteFaults(&buf, RunFaults(fcfg))
	return buf.Bytes()
}

func TestPartitionedReportsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("partition sweep is the long differential gate")
	}
	serial := renderPartitionedReports(0)
	if len(serial) == 0 {
		t.Fatal("smoke reports rendered nothing")
	}
	for _, k := range []int{1, 2, 4, 8} {
		got := renderPartitionedReports(k)
		if !bytes.Equal(serial, got) {
			t.Fatalf("reports diverge at %d partitions:\n--- serial ---\n%s\n--- k=%d ---\n%s",
				k, serial, k, got)
		}
	}
}

// The gate above is vacuous if the sweep silently falls back to the
// serial drive everywhere, so check eligibility directly: the Fig. 8/9
// SCMP configuration on the ARPANET topology must actually engage the
// partitioned drive, and the fault-hardened configuration must decline.
func TestPartitionEngagement(t *testing.T) {
	art := fig89ArtifactFor(TopoArpanet, 0)

	n := netsim.New(art.g, core.New(core.Config{MRouter: art.center, Kappa: 1.5}))
	if !n.Partition(4, 1) {
		t.Fatal("plain SCMP on ARPANET should accept a partitioned drive")
	}
	if got := n.Partitions(); got < 2 {
		t.Fatalf("Partitions() = %d after accepting k=4", got)
	}

	hard := netsim.New(art.g, faultsCore(art.center, true))
	if hard.Partition(4, 1) {
		t.Fatal("hardened reliability stack must decline the partitioned drive")
	}
	if got := hard.Partitions(); got != 1 {
		t.Fatalf("Partitions() = %d after declining", got)
	}

	rest := netsim.New(art.g, dvmrp.New(dvmrp.DefaultPruneLifetime))
	if rest.Partition(4, 1) {
		t.Fatal("DVMRP does not implement ParallelSafe and must run serial")
	}
}

// TestChurnPartitionGated extends the eligibility checks to the churn
// additions: a network with an installed churn plan must decline the
// partitioned drive even for an otherwise-safe protocol (the driver
// mutates shared membership state from global barrier events), and each
// overload-protection knob alone must gate SCMP off the windowed drive.
func TestChurnPartitionGated(t *testing.T) {
	art := fig89ArtifactFor(TopoArpanet, 0)

	n := netsim.New(art.g, core.New(core.Config{MRouter: art.center, Kappa: 1.5}))
	n.InstallChurn(netsim.ChurnPlan{
		Group: faultsGroup, Members: pickMembers(rng.New(1), art.g.N(), 8, art.center),
		Rate: 100, Duration: 2, Seed: 1,
	})
	if n.Partition(4, 1) {
		t.Fatal("churned network accepted the partitioned drive")
	}
	if got := n.Partitions(); got != 1 {
		t.Fatalf("Partitions() = %d after declining under churn", got)
	}

	for name, cfg := range map[string]core.Config{
		"admit-limit":      {MRouter: art.center, Kappa: 1.5, AdmitLimit: 8},
		"retry-budget":     {MRouter: art.center, Kappa: 1.5, RetryBudget: 2},
		"refresh-suppress": {MRouter: art.center, Kappa: 1.5, RefreshSuppress: true},
	} {
		hard := netsim.New(art.g, core.New(cfg))
		if hard.Partition(4, 1) {
			t.Fatalf("%s: overload-protected SCMP accepted the partitioned drive", name)
		}
	}
}

// A direct end-to-end spot check outside the table renderers: one
// Fig. 8-style SCMP run must produce the same metrics serial and
// partitioned. Overhead sums are compared at the precision the report
// tables print: a partitioned run accumulates each shard's crossings
// locally and drains shard subtotals at window barriers, which
// associates the float additions differently than the serial
// interleaved sum — identical event sets, same values up to summation
// order. MaxE2E is a max, so it must match exactly.
func TestPartitionedRunMatchesSerialMetrics(t *testing.T) {
	art := fig89ArtifactFor(TopoArpanet, 3)
	members := pickMembers(rng.New(3*7919), art.g.N(), 10, -1)

	type snap struct {
		data, proto string
		maxE2E      float64
	}
	run := func(parts int) snap {
		cfg := Fig89Config{SimTime: 5, DataRate: 2, Partitions: parts}
		data, protoOv, maxE2E, undelivered := runOne(art.g, "SCMP", cfg, 3, members, members[0], art.center)
		if undelivered != 0 {
			t.Fatalf("parts=%d: %d undelivered member packets", parts, undelivered)
		}
		return snap{
			data:   fmt.Sprintf("%14.1f", data),
			proto:  fmt.Sprintf("%14.1f", protoOv),
			maxE2E: maxE2E,
		}
	}
	serial := run(0)
	for _, k := range []int{2, 4, 8} {
		if got := run(k); got != serial {
			t.Fatalf("k=%d metrics %+v diverge from serial %+v", k, got, serial)
		}
	}
}
