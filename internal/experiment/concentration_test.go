package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func smallConcentration() ConcentrationConfig {
	return ConcentrationConfig{Nodes: 30, Degree: 4, Groups: 4, Members: 6, Senders: 5, Rounds: 2, Seeds: 3}
}

func TestConcentrationShape(t *testing.T) {
	points := RunConcentration(smallConcentration())
	by := map[string]ConcentrationPoint{}
	for _, p := range points {
		by[p.Scheme] = p
	}
	if len(by) != 4 {
		t.Fatalf("schemes = %d", len(by))
	}
	// Spreading groups over more m-routers must reduce the busiest
	// center's load (§II-A's regional m-routers).
	one := by["SCMP-1m"].CenterLoad.Mean()
	two := by["SCMP-2m"].CenterLoad.Mean()
	four := by["SCMP-4m"].CenterLoad.Mean()
	if !(four < two && two < one) {
		t.Fatalf("center load not decreasing with m-routers: 1m %.0f, 2m %.0f, 4m %.0f", one, two, four)
	}
	// The single-core CBT concentrates at least comparably to
	// single-m-router SCMP (both funnel off-tree senders through one
	// node); many-to-many CBT members are on-tree so allow slack — the
	// claim tested is that multiple m-routers beat BOTH single-center
	// schemes.
	cbt := by["CBT-1core"].CenterLoad.Mean()
	if !(four < cbt) {
		t.Fatalf("4 m-routers (%.0f) should beat the single core (%.0f)", four, cbt)
	}
}

func TestWriteConcentration(t *testing.T) {
	var buf bytes.Buffer
	WriteConcentration(&buf, RunConcentration(ConcentrationConfig{
		Nodes: 20, Degree: 3, Groups: 2, Members: 4, Senders: 3, Rounds: 1, Seeds: 1,
	}))
	out := buf.String()
	for _, want := range []string{"Traffic concentration", "CBT-1core", "SCMP-4m"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
