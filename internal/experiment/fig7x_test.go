package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig7xConclusionsHoldAcrossFamilies(t *testing.T) {
	points := RunFig7x(Fig7xConfig{GroupSize: 15, Seeds: 3, Kappa: 1.5})
	by := map[[2]string]Fig7xPoint{}
	for _, p := range points {
		by[[2]string{p.Family, p.Algorithm}] = p
	}
	for _, family := range Fig7xFamilies {
		dcdm, ok := by[[2]string{family, "DCDM"}]
		if !ok {
			t.Fatalf("missing family %s", family)
		}
		kmb := by[[2]string{family, "KMB"}]
		spt := by[[2]string{family, "SPT"}]
		// SPT reference is exactly 1.
		if spt.CostVsSPT.Mean() != 1 || spt.DelayVsSPT.Mean() != 1 {
			t.Fatalf("%s: SPT reference not 1", family)
		}
		// The paper's conclusions, family by family: DCDM saves cost
		// over SPT; KMB saves at least as much; DCDM's delay stays far
		// below KMB's. On the tiny dense-membership ARPANET (15 of 20
		// routers in the group) there is almost nothing left to
		// optimise, so only near-parity is required there.
		costCeil := 1.0
		if family == "arpanet20" {
			costCeil = 1.02
		}
		if dcdm.CostVsSPT.Mean() >= costCeil {
			t.Errorf("%s: DCDM cost ratio %.3f not below %.2f", family, dcdm.CostVsSPT.Mean(), costCeil)
		}
		if kmb.CostVsSPT.Mean() > dcdm.CostVsSPT.Mean()*1.05 {
			t.Errorf("%s: KMB cost ratio %.3f above DCDM %.3f", family, kmb.CostVsSPT.Mean(), dcdm.CostVsSPT.Mean())
		}
		if dcdm.DelayVsSPT.Mean() >= kmb.DelayVsSPT.Mean() {
			t.Errorf("%s: DCDM delay ratio %.3f not below KMB %.3f", family, dcdm.DelayVsSPT.Mean(), kmb.DelayVsSPT.Mean())
		}
	}
}

func TestWriteFig7x(t *testing.T) {
	var buf bytes.Buffer
	WriteFig7x(&buf, RunFig7x(Fig7xConfig{GroupSize: 8, Seeds: 1, Kappa: 1.5}))
	out := buf.String()
	for _, want := range []string{"topology families", "waxman100", "transitstub112", "arpanet20", "DCDM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
