package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV writers render each experiment's points as plot-ready records
// (one row per cell, means with 95% confidence half-widths), selected
// by scmpsim's -format csv flag.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(x float64) string { return fmt.Sprintf("%.4f", x) }

// WriteFig7CSV renders the Fig. 7 sweep.
func WriteFig7CSV(w io.Writer, points []Fig7Point) error {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Level, fmt.Sprint(p.GroupSize), p.Algorithm,
			f(p.TreeDelay.Mean()), f(p.TreeDelay.CI95()),
			f(p.TreeCost.Mean()), f(p.TreeCost.CI95()),
		})
	}
	return writeCSV(w, []string{
		"level", "groupsize", "algorithm",
		"tree_delay_mean", "tree_delay_ci95", "tree_cost_mean", "tree_cost_ci95",
	}, rows)
}

// WriteFig89CSV renders the Fig. 8/9 sweep.
func WriteFig89CSV(w io.Writer, points []Fig89Point) error {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Topology, fmt.Sprint(p.GroupSize), p.Protocol,
			f(p.DataOverhead.Mean()), f(p.DataOverhead.CI95()),
			f(p.ProtoOverhead.Mean()), f(p.ProtoOverhead.CI95()),
			f(p.MaxE2E.Mean()), f(p.MaxE2E.CI95()),
			fmt.Sprint(p.Undelivered),
		})
	}
	return writeCSV(w, []string{
		"topology", "groupsize", "protocol",
		"data_overhead_mean", "data_overhead_ci95",
		"proto_overhead_mean", "proto_overhead_ci95",
		"max_e2e_mean", "max_e2e_ci95", "undelivered",
	}, rows)
}

// WritePlacementCSV renders the placement study.
func WritePlacementCSV(w io.Writer, points []PlacementPoint) error {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Rule,
			f(p.TreeCost.Mean()), f(p.TreeCost.CI95()),
			f(p.TreeDelay.Mean()), f(p.TreeDelay.CI95()),
		})
	}
	return writeCSV(w, []string{
		"rule", "tree_cost_mean", "tree_cost_ci95", "tree_delay_mean", "tree_delay_ci95",
	}, rows)
}

// WriteStateCSV renders the routing-state study.
func WriteStateCSV(w io.Writer, points []StatePoint) error {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprint(p.Groups), p.Protocol,
			f(p.MaxState.Mean()), f(p.SumState.Mean()),
		})
	}
	return writeCSV(w, []string{"groups", "protocol", "max_state_mean", "sum_state_mean"}, rows)
}

// WriteConcentrationCSV renders the concentration study.
func WriteConcentrationCSV(w io.Writer, points []ConcentrationPoint) error {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Scheme, f(p.CenterLoad.Mean()), f(p.MaxLink.Mean()),
		})
	}
	return writeCSV(w, []string{"scheme", "center_load_mean", "max_link_mean"}, rows)
}

// WriteFig7xCSV renders the topology-family study.
func WriteFig7xCSV(w io.Writer, points []Fig7xPoint) error {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Family, p.Algorithm,
			f(p.CostVsSPT.Mean()), f(p.DelayVsSPT.Mean()),
		})
	}
	return writeCSV(w, []string{"family", "algorithm", "cost_vs_spt", "delay_vs_spt"}, rows)
}
