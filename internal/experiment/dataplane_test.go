package experiment

import (
	"bytes"
	"testing"

	"scmp/internal/netsim"
	"scmp/internal/protocols/dvmrp"
)

// The differential-equivalence gate for the zero-allocation data plane:
// the same smoke workloads rendered to full report bytes over the fast
// path (pooled packets, typed sink events, dense link metrics) and the
// preserved reference path (closure per hop, map-keyed stores) must be
// identical, serially and under the parallel runner. CI runs this with
// -race and -tags invariants so the comparison also exercises the
// pooled scheduler's slot-generation checks.

// renderSmokeReports runs a shrunken Fig. 8/9 sweep and a shrunken
// chaos sweep (loss + recovery, the RNG-heaviest paths) and returns the
// concatenated report text.
func renderSmokeReports(parallel int) []byte {
	var buf bytes.Buffer
	cfg := Fig89Config{
		Topologies:    []string{TopoArpanet},
		GroupSizes:    []int{8, 16},
		Seeds:         2,
		SimTime:       5,
		DataRate:      1,
		PruneLifetime: dvmrp.DefaultPruneLifetime,
		Parallel:      parallel,
	}
	points := RunFig89(cfg)
	WriteFig8(&buf, points)
	WriteFig9(&buf, points)

	fcfg := FaultsConfig{
		Topologies: []string{TopoArpanet},
		LossRates:  []float64{0, 0.05},
		GroupSize:  8,
		Seeds:      2,
		SimTime:    5,
		DataRate:   1,
		Parallel:   parallel,
	}
	WriteFaults(&buf, RunFaults(fcfg))
	return buf.Bytes()
}

// withRefDataPlane routes every network the experiments build through
// netsim.NewRef for the duration of f.
func withRefDataPlane(f func() []byte) []byte {
	old := newNetwork
	newNetwork = netsim.NewRef
	defer func() { newNetwork = old }()
	return f()
}

func TestDataPlaneEquivalence(t *testing.T) {
	fastSerial := renderSmokeReports(1)
	refSerial := withRefDataPlane(func() []byte { return renderSmokeReports(1) })
	if !bytes.Equal(fastSerial, refSerial) {
		t.Fatalf("serial reports diverge between fast and reference data planes:\n--- fast ---\n%s\n--- ref ---\n%s",
			fastSerial, refSerial)
	}
	fastPar := renderSmokeReports(4)
	if !bytes.Equal(fastSerial, fastPar) {
		t.Fatal("fast data plane: parallel report differs from serial")
	}
	refPar := withRefDataPlane(func() []byte { return renderSmokeReports(4) })
	if !bytes.Equal(refSerial, refPar) {
		t.Fatal("reference data plane: parallel report differs from serial")
	}
	if len(fastSerial) == 0 {
		t.Fatal("smoke reports rendered nothing")
	}
}
