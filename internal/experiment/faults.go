package experiment

import (
	"fmt"
	"io"
	"sort"

	"scmp/internal/core"
	"scmp/internal/des"
	"scmp/internal/mtree"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/rng"
	"scmp/internal/runner"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// The faults experiment stresses SCMP's recovery machinery on the
// Fig. 8/9 topologies with the deterministic fault-injection layer:
//
//   - Chaos loss sweep: members join and a source streams data while a
//     uniform per-link-crossing loss rate applies to every packet, with
//     the reliability stack (ACK/retransmit + soft-state refresh +
//     local repair) on vs off. After the loss window closes and the
//     control plane settles, a clean probe counts stranded members —
//     the hardened stack must reach zero, the bare one generally not.
//   - Link-failure recovery curve: on a loss-free run, the tree link
//     carrying the most members is cut mid-run; the orphaned subtree's
//     REJOIN-driven repair time (see metrics.OnRecovery) is the curve.
//
// Both shard over (topology, seed) exactly like Fig. 8/9, so serial
// and parallel runs are byte-identical.

// FaultsConfig parameterises the chaos sweep.
type FaultsConfig struct {
	Topologies []string  // defaults to Fig89Topologies()
	LossRates  []float64 // per-crossing loss applied to control AND data
	GroupSize  int       // members per run (clamped below topology size)
	Seeds      int       // placements / loss streams per point
	SimTime    float64   // run horizon in seconds; loss ends at SimTime/2
	DataRate   float64   // in-window data packets per second
	// Parallel, Partitions and Progress behave exactly as in
	// Fig89Config. Only the bare (repair-off) loss arm is eligible for a
	// partitioned drive — the hardened stack's timers make the protocol
	// decline via netsim.ParallelSafe — so the sweep stays byte-identical
	// at every partition count.
	Parallel   int
	Partitions int
	Progress   func(done, total int)
}

// DefaultFaults returns the standard chaos-sweep configuration.
func DefaultFaults() FaultsConfig {
	return FaultsConfig{
		Topologies: Fig89Topologies(),
		LossRates:  []float64{0, 0.01, 0.05, 0.10},
		GroupSize:  12,
		Seeds:      10,
		SimTime:    30,
		DataRate:   1,
	}
}

// Hardened-stack timers for the sweep (seconds; link delays are
// millisecond-scale, so the ACK timeout dwarfs any RTT while the
// refresh interval still fits many rounds into half a run).
const (
	faultsAckTimeout      = 0.05
	faultsRetryCap        = 8
	faultsRefreshInterval = 2.0
)

// FaultsLossPoint is one (topology, loss rate, repair mode) cell of the
// sweep, averaged over seeds.
type FaultsLossPoint struct {
	Topology string
	Loss     float64
	Repair   bool
	// Stranded counts members missing from the post-settle probe (the
	// acceptance metric: 0 means every member recovered). Undelivered
	// counts member-deliveries lost during the loss window itself;
	// CtrlDrops and Recoveries come straight from the collector.
	Stranded    *stats.Sample
	Undelivered *stats.Sample
	CtrlDrops   *stats.Sample
	Recoveries  *stats.Sample
}

// FaultsRecoveryPoint aggregates the link-failure recovery runs of one
// topology.
type FaultsRecoveryPoint struct {
	Topology string
	// Recovery samples the worst orphan re-adoption time of each run
	// (seconds, from metrics.MaxRecovery); Healed counts runs whose
	// post-repair probe reached every member, out of Runs.
	Recovery *stats.Sample
	Healed   int
	Runs     int
}

// FaultsResult bundles both studies.
type FaultsResult struct {
	Loss     []FaultsLossPoint
	Recovery []FaultsRecoveryPoint
}

// faultsLossObs is one shard's observation for one (loss, repair) run.
type faultsLossObs struct {
	loss        float64
	repair      bool
	stranded    int
	undelivered int
	ctrlDrops   int64
	recoveries  int64
}

// faultsRecoveryObs is one shard's link-cut run.
type faultsRecoveryObs struct {
	recovery float64
	repaired bool // a recovery time was recorded
	healed   bool
}

type faultsShard struct {
	loss     []faultsLossObs
	recovery faultsRecoveryObs
}

const faultsGroup = packet.GroupID(1)

// faultsMembers draws the shard's member set (never the m-router).
func faultsMembers(art *fig89Artifact, cfg FaultsConfig, seed int) []topology.NodeID {
	rnd := rng.New(int64(seed)*104729 + 1)
	size := cfg.GroupSize
	if size > art.g.N()-1 {
		size = art.g.N() - 1
	}
	return pickMembers(rnd, art.g.N(), size, art.center)
}

// faultsCore builds the protocol under test: the hardened reliability
// stack, or the bare fire-and-forget one with repair disabled.
func faultsCore(center topology.NodeID, hardened bool) *core.SCMP {
	cfg := core.Config{MRouter: center, Kappa: 1.5}
	if hardened {
		cfg.AckTimeout = faultsAckTimeout
		cfg.RetryCap = faultsRetryCap
		cfg.RefreshInterval = faultsRefreshInterval
	} else {
		cfg.DisableRepair = true
	}
	return core.New(cfg)
}

// runFaultsLossRun executes one chaos run: joins and data under loss,
// then a settle phase and a clean probe.
func runFaultsLossRun(art *fig89Artifact, cfg FaultsConfig,
	members []topology.NodeID, loss float64, repair bool, seed int) faultsLossObs {

	s := faultsCore(art.center, repair)
	n := newNetwork(art.g, s)
	n.Partition(cfg.Partitions, int64(seed)) // before InstallFaults, by contract
	lossUntil := des.Time(cfg.SimTime / 2)
	n.InstallFaults(netsim.FaultPlan{
		ControlLoss: loss,
		DataLoss:    loss,
		LossUntil:   lossUntil,
		Seed:        int64(seed)*31 + 7,
	})
	for i, m := range members {
		m := m
		n.Sched.At(des.Time(float64(i)*0.01), func() { n.HostJoin(m, faultsGroup) })
	}
	var seqs []uint64
	for _, t := range sendTimes(float64(lossUntil), cfg.DataRate) {
		n.Sched.At(des.Time(t), func() {
			seqs = append(seqs, n.SendData(art.center, faultsGroup, packet.DefaultDataSize))
		})
	}
	n.RunUntil(des.Time(cfg.SimTime))
	s.Quiesce()
	n.Run()

	undelivered := 0
	for _, seq := range seqs {
		missing, _ := n.CheckDelivery(seq)
		undelivered += len(missing)
	}
	probe := n.SendData(art.center, faultsGroup, packet.DefaultDataSize)
	n.Run()
	missing, _ := n.CheckDelivery(probe)
	return faultsLossObs{
		loss:        loss,
		repair:      repair,
		stranded:    len(missing),
		undelivered: undelivered,
		ctrlDrops:   n.Metrics.DroppedControl(),
		recoveries:  n.Metrics.Recoveries(),
	}
}

// heaviestTreeEdge returns the tree edge (parent, child) whose child
// subtree serves the most members — the most damaging single cut — with
// ties broken toward the lowest child id. ok is false on an edgeless
// tree.
func heaviestTreeEdge(tr *mtree.Tree) (parent, child topology.NodeID, ok bool) {
	carried := make(map[topology.NodeID]int)
	for _, m := range tr.Members() {
		for v := m; ; {
			p, up := tr.Parent(v)
			if !up {
				break
			}
			carried[v]++ // the (p, v) edge carries member m
			v = p
		}
	}
	best := topology.NodeID(-1)
	for _, v := range tr.Nodes() {
		c := carried[v]
		if c == 0 {
			continue
		}
		if best < 0 || c > carried[best] {
			best = v
		}
	}
	if best < 0 {
		return -1, -1, false
	}
	p, _ := tr.Parent(best)
	return p, best, true
}

// runFaultsRecoveryRun executes one loss-free link-cut run on the
// hardened stack and reports the repair time.
func runFaultsRecoveryRun(art *fig89Artifact, cfg FaultsConfig,
	members []topology.NodeID, seed int) faultsRecoveryObs {

	s := faultsCore(art.center, true)
	n := newNetwork(art.g, s)
	n.Partition(cfg.Partitions, int64(seed)) // hardened stack: serial fallback
	f := n.InstallFaults(netsim.FaultPlan{Seed: int64(seed)*31 + 7})
	for i, m := range members {
		m := m
		n.Sched.At(des.Time(float64(i)*0.01), func() { n.HostJoin(m, faultsGroup) })
	}
	n.RunUntil(1) // every join settled, tree stable

	u, v, ok := heaviestTreeEdge(s.GroupTree(faultsGroup))
	if !ok {
		// Degenerate placement: every member sits on the m-router.
		s.Quiesce()
		n.Run()
		return faultsRecoveryObs{healed: true}
	}
	f.ScheduleLinkDown(2, u, v)
	n.RunUntil(des.Time(cfg.SimTime))
	s.Quiesce()
	n.Run()

	probe := n.SendData(art.center, faultsGroup, packet.DefaultDataSize)
	n.Run()
	missing, _ := n.CheckDelivery(probe)
	return faultsRecoveryObs{
		recovery: n.Metrics.MaxRecovery(),
		repaired: n.Metrics.Recoveries() > 0,
		healed:   len(missing) == 0,
	}
}

// runFaultsShard executes every run of one (topology, seed) shard in
// deterministic order: the loss sweep (loss-major, repair on before
// off), then the link-cut run.
func runFaultsShard(cfg FaultsConfig, topo string, seed int) faultsShard {
	art := fig89ArtifactFor(topo, int64(seed))
	members := faultsMembers(art, cfg, seed)
	var sh faultsShard
	for _, loss := range cfg.LossRates {
		for _, repair := range []bool{true, false} {
			sh.loss = append(sh.loss, runFaultsLossRun(art, cfg, members, loss, repair, seed))
		}
	}
	sh.recovery = runFaultsRecoveryRun(art, cfg, members, seed)
	return sh
}

// RunFaults executes the chaos sweep, fanning (topology, seed) shards
// over runner.Map; shard results merge in topology-major, seed-minor
// order, so the aggregate is byte-identical to a serial run.
func RunFaults(cfg FaultsConfig) FaultsResult {
	if cfg.Topologies == nil {
		cfg.Topologies = Fig89Topologies()
	}
	type lossKey struct {
		topo   string
		loss   float64
		repair bool
	}
	lossCells := make(map[lossKey]*FaultsLossPoint)
	lossCell := func(topo string, loss float64, repair bool) *FaultsLossPoint {
		k := lossKey{topo, loss, repair}
		p := lossCells[k]
		if p == nil {
			p = &FaultsLossPoint{Topology: topo, Loss: loss, Repair: repair,
				Stranded: &stats.Sample{}, Undelivered: &stats.Sample{},
				CtrlDrops: &stats.Sample{}, Recoveries: &stats.Sample{}}
			lossCells[k] = p
		}
		return p
	}
	recCells := make(map[string]*FaultsRecoveryPoint)

	opts := runner.Options{Parallel: cfg.Parallel, Progress: cfg.Progress}
	shards := runner.Map(opts, len(cfg.Topologies)*cfg.Seeds, func(j int) faultsShard {
		return runFaultsShard(cfg, cfg.Topologies[j/cfg.Seeds], j%cfg.Seeds)
	})
	for j, sh := range shards {
		topo := cfg.Topologies[j/cfg.Seeds]
		for _, o := range sh.loss {
			c := lossCell(topo, o.loss, o.repair)
			c.Stranded.Add(float64(o.stranded))
			c.Undelivered.Add(float64(o.undelivered))
			c.CtrlDrops.Add(float64(o.ctrlDrops))
			c.Recoveries.Add(float64(o.recoveries))
		}
		rc := recCells[topo]
		if rc == nil {
			rc = &FaultsRecoveryPoint{Topology: topo, Recovery: &stats.Sample{}}
			recCells[topo] = rc
		}
		rc.Runs++
		if sh.recovery.repaired {
			rc.Recovery.Add(sh.recovery.recovery)
		}
		if sh.recovery.healed {
			rc.Healed++
		}
	}

	res := FaultsResult{}
	for _, p := range lossCells {
		res.Loss = append(res.Loss, *p)
	}
	sort.Slice(res.Loss, func(i, j int) bool {
		a, b := res.Loss[i], res.Loss[j]
		if a.Topology != b.Topology {
			return topoRank(a.Topology) < topoRank(b.Topology)
		}
		if a.Loss != b.Loss {
			return a.Loss < b.Loss
		}
		return a.Repair && !b.Repair
	})
	for _, p := range recCells {
		res.Recovery = append(res.Recovery, *p)
	}
	sort.Slice(res.Recovery, func(i, j int) bool {
		return topoRank(res.Recovery[i].Topology) < topoRank(res.Recovery[j].Topology)
	})
	return res
}

func onOff(repair bool) string {
	if repair {
		return "on"
	}
	return "off"
}

// WriteFaults prints both studies as paper-style tables.
func WriteFaults(w io.Writer, res FaultsResult) {
	for _, topo := range Fig89Topologies() {
		any := false
		for _, p := range res.Loss {
			if p.Topology == topo {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(w, "\nChaos loss sweep — %s\n", topo)
		fmt.Fprintf(w, "%-8s %-7s %10s %14s %12s %12s\n",
			"loss", "repair", "stranded", "undelivered", "ctrl-drops", "recoveries")
		for _, p := range res.Loss {
			if p.Topology != topo {
				continue
			}
			fmt.Fprintf(w, "%-8.2f %-7s %10.2f %14.2f %12.1f %12.2f\n",
				p.Loss, onOff(p.Repair), p.Stranded.Mean(), p.Undelivered.Mean(),
				p.CtrlDrops.Mean(), p.Recoveries.Mean())
		}
	}
	fmt.Fprintf(w, "\nLink-failure recovery (hardened stack, heaviest tree edge cut)\n")
	fmt.Fprintf(w, "%-16s %18s %18s %10s\n", "topology", "mean recovery (s)", "max recovery (s)", "healed")
	for _, p := range res.Recovery {
		fmt.Fprintf(w, "%-16s %18.4f %18.4f %6d/%-3d\n",
			p.Topology, p.Recovery.Mean(), p.Recovery.Max(), p.Healed, p.Runs)
	}
}

// WriteFaultsCSV renders both studies as two CSV tables separated by a
// blank line.
func WriteFaultsCSV(w io.Writer, res FaultsResult) error {
	rows := make([][]string, 0, len(res.Loss))
	for _, p := range res.Loss {
		rows = append(rows, []string{
			p.Topology, f(p.Loss), onOff(p.Repair),
			f(p.Stranded.Mean()), f(p.Stranded.CI95()),
			f(p.Undelivered.Mean()), f(p.Undelivered.CI95()),
			f(p.CtrlDrops.Mean()), f(p.Recoveries.Mean()),
		})
	}
	if err := writeCSV(w, []string{
		"topology", "loss", "repair",
		"stranded_mean", "stranded_ci95",
		"undelivered_mean", "undelivered_ci95",
		"ctrl_drops_mean", "recoveries_mean",
	}, rows); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range res.Recovery {
		rows = append(rows, []string{
			p.Topology, f(p.Recovery.Mean()), f(p.Recovery.Max()),
			fmt.Sprint(p.Healed), fmt.Sprint(p.Runs),
		})
	}
	return writeCSV(w, []string{
		"topology", "recovery_mean", "recovery_max", "healed", "runs",
	}, rows)
}
