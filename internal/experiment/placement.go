package experiment

import (
	"fmt"
	"io"
	"scmp/internal/rng"
	"sort"

	"scmp/internal/mtree"
	"scmp/internal/runner"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// PlacementRules are the §IV-A heuristics for placing the m-router,
// plus a random-placement baseline:
//
//	rule 1: the node with the smallest average delay to all other nodes
//	rule 2: the node with the largest degree
//	rule 3: a node lying on a diameter path (we take its midpoint)
var PlacementRules = []string{"rule1-avgdelay", "rule2-degree", "rule3-diameter", "random"}

// PlacementConfig parameterises the placement study: Waxman topologies,
// random member sets, DCDM tree cost under each placement rule.
type PlacementConfig struct {
	Nodes     int
	GroupSize int
	Seeds     int     // topologies
	Trials    int     // member sets per topology
	Kappa     float64 // DCDM constraint (default 1.5)
	// Parallel bounds the worker goroutines fanning the per-seed shards
	// out: 0 means GOMAXPROCS, 1 the pure serial path.
	Parallel int
	// Progress, when set, observes shard completions (called
	// concurrently when Parallel > 1).
	Progress func(done, total int)
}

// DefaultPlacement returns a paper-scale configuration.
func DefaultPlacement() PlacementConfig {
	return PlacementConfig{Nodes: 100, GroupSize: 20, Seeds: 5, Trials: 10, Kappa: 1.5}
}

// PlacementPoint is one rule's tree-cost and tree-delay sample.
type PlacementPoint struct {
	Rule      string
	TreeCost  *stats.Sample
	TreeDelay *stats.Sample
}

// Place returns the m-router node a rule selects on g. The random rule
// consumes rng.
func Place(rule string, g *topology.Graph, rng *rng.Rand) topology.NodeID {
	switch rule {
	case "rule1-avgdelay":
		return Center(g)
	case "rule2-degree":
		best := topology.NodeID(0)
		for u := 1; u < g.N(); u++ {
			if g.Degree(topology.NodeID(u)) > g.Degree(best) {
				best = topology.NodeID(u)
			}
		}
		return best
	case "rule3-diameter":
		_, a, b := g.Diameter()
		sp := topology.Shortest(g, a, topology.ByDelay)
		path := sp.To(b)
		if len(path) == 0 {
			return a
		}
		return path[len(path)/2]
	case "random":
		return topology.NodeID(rng.Intn(g.N()))
	default:
		panic("experiment: unknown placement rule " + rule)
	}
}

// RunPlacement executes the study and returns one point per rule.
func RunPlacement(cfg PlacementConfig) []PlacementPoint {
	if cfg.Kappa == 0 {
		cfg.Kappa = 1.5
	}
	points := make(map[string]*PlacementPoint)
	for _, rule := range PlacementRules {
		points[rule] = &PlacementPoint{Rule: rule, TreeCost: &stats.Sample{}, TreeDelay: &stats.Sample{}}
	}
	type placementObs struct {
		rule        string
		cost, delay float64
	}
	opts := runner.Options{Parallel: cfg.Parallel, Progress: cfg.Progress}
	shards := runner.Map(opts, cfg.Seeds, func(seed int) []placementObs {
		// The workload stream (random placement + member sets) is
		// derived from the seed independently of the cached topology
		// build, so a cache hit cannot shift later draws.
		art := waxmanArtifactFor(topology.DefaultWaxman(cfg.Nodes), int64(seed))
		g, spDelay, spCost := art.g, art.spDelay, art.spCost
		wl := rng.New(int64(seed)*6151 + 2)
		roots := make(map[string]topology.NodeID)
		for _, rule := range PlacementRules {
			roots[rule] = Place(rule, g, wl)
		}
		var out []placementObs
		for trial := 0; trial < cfg.Trials; trial++ {
			members := pickMembers(wl, g.N(), cfg.GroupSize, -1)
			for _, rule := range PlacementRules {
				root := roots[rule]
				d := mtree.NewDCDM(g, root, cfg.Kappa, spDelay, spCost)
				for _, m := range members {
					if m == root {
						continue
					}
					d.Join(m)
				}
				out = append(out, placementObs{rule, d.Tree().Cost(), d.Tree().TreeDelay()})
			}
		}
		return out
	})
	for _, shard := range shards {
		for _, o := range shard {
			points[o.rule].TreeCost.Add(o.cost)
			points[o.rule].TreeDelay.Add(o.delay)
		}
	}
	out := make([]PlacementPoint, 0, len(points))
	for _, rule := range PlacementRules {
		out = append(out, *points[rule])
	}
	return out
}

// WritePlacement prints the study as one row per rule.
func WritePlacement(w io.Writer, points []PlacementPoint) {
	fmt.Fprintf(w, "\nm-router placement heuristics (DCDM tree quality)\n")
	fmt.Fprintf(w, "%-18s %18s %18s\n", "rule", "mean tree cost", "mean tree delay")
	sorted := append([]PlacementPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TreeCost.Mean() < sorted[j].TreeCost.Mean() })
	for _, p := range sorted {
		fmt.Fprintf(w, "%-18s %18.0f %18.0f\n", p.Rule, p.TreeCost.Mean(), p.TreeDelay.Mean())
	}
}
