package experiment

import (
	"scmp/internal/rng"
	"scmp/internal/runner"
	"scmp/internal/topology"
)

// Artifact caches: the expensive immutable inputs of a shard — graphs,
// center placements and all-pairs shortest-path tables — keyed by the
// exact parameters that determine them. Workers on different goroutines
// (and repeated Run* calls: fig8 and fig9 rebuild the same instances)
// share them read-only instead of recomputing per protocol run. Nothing
// downstream mutates a Graph or AllPairs after construction, which is
// what makes the sharing safe.
//
// Topology construction must not share an rng stream with anything else
// (member picks, source picks): a cache hit skips the build, so a shared
// stream would shift every later draw and the run would depend on cache
// state. Every builder below derives its own stream from the seed.

// fig89Key identifies one Fig. 8/9 evaluation topology instance.
type fig89Key struct {
	name string
	seed int64
}

// fig89Artifact is the per-(topology, seed) state shared by all four
// protocols: the graph and the shared m-router / CBT core placement.
type fig89Artifact struct {
	g      *topology.Graph
	center topology.NodeID
}

var fig89Artifacts runner.Cache[fig89Key, *fig89Artifact]

func fig89ArtifactFor(name string, seed int64) *fig89Artifact {
	return fig89Artifacts.Get(fig89Key{name, seed}, func() *fig89Artifact {
		g := BuildTopology(name, seed)
		return &fig89Artifact{g: g, center: Center(g)}
	})
}

// waxmanKey identifies one Waxman instance plus its routing tables.
type waxmanKey struct {
	cfg  topology.WaxmanConfig
	seed int64
}

// treeArtifact bundles a graph with the all-pairs tables the tree
// algorithms consume.
type treeArtifact struct {
	g       *topology.Graph
	spDelay *topology.AllPairs
	spCost  *topology.AllPairs
}

var waxmanArtifacts runner.Cache[waxmanKey, *treeArtifact]

func waxmanArtifactFor(wcfg topology.WaxmanConfig, seed int64) *treeArtifact {
	return waxmanArtifacts.Get(waxmanKey{wcfg, seed}, func() *treeArtifact {
		wg, err := topology.Waxman(wcfg, rng.New(seed))
		if err != nil {
			panic(err)
		}
		return newTreeArtifact(wg.Graph)
	})
}

// familyKey identifies one fig7x topology-family instance.
type familyKey struct {
	family string
	seed   int64
}

var familyArtifacts runner.Cache[familyKey, *treeArtifact]

func familyArtifactFor(family string, seed int64) *treeArtifact {
	return familyArtifacts.Get(familyKey{family, seed}, func() *treeArtifact {
		return newTreeArtifact(buildFamily(family, seed))
	})
}

func newTreeArtifact(g *topology.Graph) *treeArtifact {
	return &treeArtifact{
		g:       g,
		spDelay: topology.NewAllPairs(g, topology.ByDelay),
		spCost:  topology.NewAllPairs(g, topology.ByCost),
	}
}

// randomKey identifies one scaled flat-random instance (the state and
// concentration studies' substrate).
type randomKey struct {
	nodes  int
	degree float64
	seed   int64
}

// randomArtifact is a scaled random graph plus its four best centers,
// ranked by average shortest delay (rankedCenters order: centers[0] is
// Center(g)).
type randomArtifact struct {
	g       *topology.Graph
	centers []topology.NodeID
}

var randomArtifacts runner.Cache[randomKey, *randomArtifact]

func randomArtifactFor(nodes int, degree float64, seed int64) *randomArtifact {
	return randomArtifacts.Get(randomKey{nodes, degree, seed}, func() *randomArtifact {
		g, err := topology.Random(topology.DefaultRandom(nodes, degree), rng.New(seed))
		if err != nil {
			panic(err)
		}
		g = g.ScaleDelays(1e-3)
		return &randomArtifact{g: g, centers: rankedCenters(g, 4)}
	})
}
