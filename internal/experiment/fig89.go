package experiment

import (
	"fmt"
	"io"
	"scmp/internal/rng"
	"sort"

	"scmp/internal/core"
	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/protocols/cbt"
	"scmp/internal/protocols/dvmrp"
	"scmp/internal/protocols/mospf"
	"scmp/internal/runner"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// Protocols compared in Fig. 8/9, paper order.
var Protocols = []string{"SCMP", "DVMRP", "MOSPF", "CBT"}

// Fig89Config parameterises the network-wide comparison: for each of
// three topologies (ARPANET plus two random 50-node graphs with average
// degree 3 and 5), a group of the given size joins, then a single source
// sends one packet per second for SimTime seconds (§IV-B).
type Fig89Config struct {
	GroupSizes    []int    // paper: 8..40
	Seeds         int      // member/source placements per point
	SimTime       float64  // paper: 30 s
	DataRate      float64  // paper: 1 packet/s
	PruneLifetime des.Time // DVMRP prune timeout
	Topologies    []string // defaults to Fig89Topologies()
	// Parallel bounds the worker goroutines fanning the (topology, seed)
	// shards out: 0 means GOMAXPROCS, 1 the pure serial path. Results
	// are byte-identical either way (shards merge in canonical order).
	Parallel int
	// Partitions, when > 1, runs each simulation on a partitioned
	// parallel event drive with that many topology partitions (DESIGN.md
	// §12). Values <= 1 — and protocols that do not opt in via
	// netsim.ParallelSafe — use the serial scheduler. Metrics tables are
	// byte-identical at every partition count.
	Partitions int
	// Progress, when set, observes shard completions (called
	// concurrently when Parallel > 1).
	Progress func(done, total int)
}

// DefaultFig89 returns the paper's configuration.
func DefaultFig89() Fig89Config {
	return Fig89Config{
		GroupSizes:    []int{8, 12, 16, 20, 24, 28, 32, 36, 40},
		Seeds:         10,
		SimTime:       30,
		DataRate:      1,
		PruneLifetime: dvmrp.DefaultPruneLifetime,
		Topologies:    Fig89Topologies(),
	}
}

// Fig89Point is one (topology, group size, protocol) cell.
type Fig89Point struct {
	Topology  string
	GroupSize int
	Protocol  string
	// DataOverhead and ProtoOverhead are in link-cost units over the
	// whole run; MaxE2E is the maximum end-to-end delay of delivered
	// data packets; Undelivered counts member-deliveries that never
	// happened (0 when the protocols converge, which they must).
	DataOverhead  *stats.Sample
	ProtoOverhead *stats.Sample
	MaxE2E        *stats.Sample
	Undelivered   int
}

// buildProtocol instantiates a protocol by name with the shared
// center node used as m-router / CBT core.
func buildProtocol(name string, center topology.NodeID, pruneLifetime des.Time) netsim.Protocol {
	switch name {
	case "SCMP":
		// The moderate constraint (bound 1.5x the farthest member's
		// unicast delay) lets DCDM trade a little delay for tree cost,
		// the regime the paper's Fig. 8 runs in: its data overhead is
		// "strongly correlated to the multicast tree cost".
		return core.New(core.Config{MRouter: center, Kappa: 1.5})
	case "DVMRP":
		return dvmrp.New(pruneLifetime)
	case "MOSPF":
		return mospf.New()
	case "CBT":
		return cbt.New(center)
	default:
		panic("experiment: unknown protocol " + name)
	}
}

// Center picks the shared m-router / core location: the node with the
// smallest average shortest-path delay to all others (placement rule 1
// of §IV-A). SCMP and CBT get the same center, as in the paper's setup.
func Center(g *topology.Graph) topology.NodeID {
	best := topology.NodeID(0)
	bestAvg := -1.0
	for u := 0; u < g.N(); u++ {
		sp := topology.Shortest(g, topology.NodeID(u), topology.ByDelay)
		sum := 0.0
		for v := 0; v < g.N(); v++ {
			sum += sp.Delay[v]
		}
		avg := sum / float64(g.N())
		if bestAvg < 0 || avg < bestAvg {
			best, bestAvg = topology.NodeID(u), avg
		}
	}
	return best
}

// runOne simulates one protocol run and returns (data overhead,
// protocol overhead, max end-to-end delay, undelivered member count).
func runOne(g *topology.Graph, protoName string, cfg Fig89Config, partSeed int64,
	members []topology.NodeID, source, center topology.NodeID) (float64, float64, float64, int) {

	proto := buildProtocol(protoName, center, cfg.PruneLifetime)
	n := newNetwork(g, proto)
	n.Partition(cfg.Partitions, partSeed)

	// Members join over the first half second, then the group is stable
	// for the data phase, matching the paper's static member sets.
	for i, m := range members {
		m := m
		n.Sched.At(des.Time(float64(i)*0.01), func() { n.HostJoin(m, 1) })
	}
	var seqs []uint64
	for _, t := range sendTimes(cfg.SimTime, cfg.DataRate) {
		n.Sched.At(des.Time(t), func() {
			seqs = append(seqs, n.SendData(source, 1, packet.DefaultDataSize))
		})
	}
	n.RunUntil(des.Time(cfg.SimTime))
	n.Run() // drain in-flight packets

	undelivered := 0
	for _, seq := range seqs {
		missing, _ := n.CheckDelivery(seq)
		undelivered += len(missing)
	}
	return n.Metrics.DataOverhead(), n.Metrics.ProtocolOverhead(), n.Metrics.MaxEndToEndDelay(), undelivered
}

// sendTimes returns the data-phase send schedule: one packet every
// 1/rate seconds starting at t=1, while inside the run. Each time is
// computed as 1 + i*interval from an integer counter — the accumulating
// `t += interval` loop it replaces drifted by a few ULPs per step at
// non-integer intervals (e.g. rate 3), dropping or duplicating the final
// packet depending on drift direction.
func sendTimes(simTime, rate float64) []float64 {
	interval := 1.0 / rate
	var ts []float64
	for i := 0; ; i++ {
		t := 1.0 + float64(i)*interval
		if t > simTime {
			return ts
		}
		ts = append(ts, t)
	}
}

// fig89Obs is one shard observation: a single protocol run's metrics.
// The shard's size guard and protocol loop emit them in deterministic
// order, so the index-ordered merge reproduces the serial Add sequence.
type fig89Obs struct {
	size                  int
	proto                 string
	data, protoOv, maxE2E float64
	undelivered           int
}

// runFig89Shard executes every (size, protocol) run of one (topology,
// seed) shard. Shards are independent: each derives its own rng streams
// from the seed and shares only the immutable cached artifacts.
func runFig89Shard(cfg Fig89Config, topo string, seed int) []fig89Obs {
	art := fig89ArtifactFor(topo, int64(seed))
	rnd := rng.New(int64(seed) * 7919)
	var out []fig89Obs
	for _, size := range cfg.GroupSizes {
		if size >= art.g.N() {
			continue
		}
		members := pickMembers(rnd, art.g.N(), size, -1)
		source := topology.NodeID(rnd.Intn(art.g.N()))
		for _, protoName := range Protocols {
			data, proto, maxE2E, undelivered := runOne(art.g, protoName, cfg, int64(seed), members, source, art.center)
			out = append(out, fig89Obs{size, protoName, data, proto, maxE2E, undelivered})
		}
	}
	return out
}

// RunFig89 executes the full sweep, fanning the (topology, seed) shards
// over runner.Map. The same member sets, sources and centers are reused
// across protocols within a (topology, size, seed) triple so the
// comparison is paired, like the paper's; shard results merge in
// topology-major, seed-minor order, so the aggregate is byte-identical
// to a serial run.
func RunFig89(cfg Fig89Config) []Fig89Point {
	if cfg.Topologies == nil {
		cfg.Topologies = Fig89Topologies()
	}
	type key struct {
		topo, proto string
		size        int
	}
	cells := make(map[key]*Fig89Point)
	cell := func(topo, proto string, size int) *Fig89Point {
		k := key{topo, proto, size}
		p := cells[k]
		if p == nil {
			p = &Fig89Point{Topology: topo, GroupSize: size, Protocol: proto,
				DataOverhead: &stats.Sample{}, ProtoOverhead: &stats.Sample{}, MaxE2E: &stats.Sample{}}
			cells[k] = p
		}
		return p
	}
	opts := runner.Options{Parallel: cfg.Parallel, Progress: cfg.Progress}
	shards := runner.Map(opts, len(cfg.Topologies)*cfg.Seeds, func(j int) []fig89Obs {
		return runFig89Shard(cfg, cfg.Topologies[j/cfg.Seeds], j%cfg.Seeds)
	})
	for j, shard := range shards {
		topo := cfg.Topologies[j/cfg.Seeds]
		for _, o := range shard {
			c := cell(topo, o.proto, o.size)
			c.DataOverhead.Add(o.data)
			c.ProtoOverhead.Add(o.protoOv)
			c.MaxE2E.Add(o.maxE2E)
			c.Undelivered += o.undelivered
		}
	}
	out := make([]Fig89Point, 0, len(cells))
	for _, p := range cells {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Topology != b.Topology {
			return topoRank(a.Topology) < topoRank(b.Topology)
		}
		if a.GroupSize != b.GroupSize {
			return a.GroupSize < b.GroupSize
		}
		return protoRank(a.Protocol) < protoRank(b.Protocol)
	})
	return out
}

func topoRank(t string) int {
	for i, name := range Fig89Topologies() {
		if name == t {
			return i
		}
	}
	return 99
}

func protoRank(p string) int {
	for i, name := range Protocols {
		if name == p {
			return i
		}
	}
	return 99
}

// metricPick selects which metric a writer prints and how to format it.
type metricPick struct {
	title  string
	format string
	pick   func(Fig89Point) *stats.Sample
}

func writeFig89Metric(w io.Writer, points []Fig89Point, m metricPick) {
	for _, topo := range Fig89Topologies() {
		any := false
		for _, p := range points {
			if p.Topology == topo {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(w, "\n%s — %s\n", m.title, topo)
		fmt.Fprintf(w, "%-10s", "groupsize")
		for _, proto := range Protocols {
			fmt.Fprintf(w, " %14s", proto)
		}
		fmt.Fprintln(w)
		bySize := map[int]map[string]*stats.Sample{}
		for _, p := range points {
			if p.Topology != topo {
				continue
			}
			if bySize[p.GroupSize] == nil {
				bySize[p.GroupSize] = map[string]*stats.Sample{}
			}
			bySize[p.GroupSize][p.Protocol] = m.pick(p)
		}
		sizes := make([]int, 0, len(bySize))
		for s := range bySize {
			sizes = append(sizes, s)
		}
		sort.Ints(sizes)
		for _, s := range sizes {
			fmt.Fprintf(w, "%-10d", s)
			for _, proto := range Protocols {
				if sm := bySize[s][proto]; sm != nil {
					fmt.Fprintf(w, " "+m.format, sm.Mean())
				} else {
					fmt.Fprintf(w, " %14s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteFig8 prints the data-overhead panels (Fig. 8 a–c) and the
// protocol-overhead panels (Fig. 8 d–f).
func WriteFig8(w io.Writer, points []Fig89Point) {
	writeFig89Metric(w, points, metricPick{"Data overhead (link-cost units)", "%14.1f",
		func(p Fig89Point) *stats.Sample { return p.DataOverhead }})
	writeFig89Metric(w, points, metricPick{"Protocol overhead (link-cost units)", "%14.1f",
		func(p Fig89Point) *stats.Sample { return p.ProtoOverhead }})
}

// WriteFig9 prints the maximum end-to-end delay panels (Fig. 9 a–c).
func WriteFig9(w io.Writer, points []Fig89Point) {
	writeFig89Metric(w, points, metricPick{"Maximum end-to-end delay (s)", "%14.4f",
		func(p Fig89Point) *stats.Sample { return p.MaxE2E }})
}
