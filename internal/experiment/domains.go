package experiment

import (
	"fmt"
	"io"
	"sort"

	"scmp/internal/mtree"
	"scmp/internal/rng"
	"scmp/internal/runner"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// DomainsConfig parameterises the hierarchical-mode scalability sweep
// (PROTOCOL.md §13): the same join/leave workload on the same
// transit-stub instance, run once against the flat DCDM engine and once
// per domain grouping against the hierarchical composer, measuring how
// tree quality, control overhead and resident routing state move with
// the domain count. The sweep drives the routing engines directly (the
// packet-level runtime is exercised end-to-end by the core tests): what
// it varies is purely how the one fixed topology is cut into domains.
type DomainsConfig struct {
	Topology topology.TransitStubConfig
	// Groupings lists the domain-count ladder; see DomainGrouping.
	Groupings []DomainGrouping
	Members   int     // members joined (then removed) per run
	Kappa     float64 // DCDM relative delay-bound factor
	Seeds     int
	// Parallel bounds the worker goroutines fanning the per-seed shards
	// out: 0 means GOMAXPROCS, 1 the pure serial path.
	Parallel int
	// Progress, when set, observes shard completions (called
	// concurrently when Parallel > 1).
	Progress func(done, total int)
}

// DomainGrouping selects how the transit-stub hierarchy is folded into
// routing domains. Every grouping yields connected domains (a
// DomainView requirement): stubs only ever merge with the transit node
// they hang off.
type DomainGrouping int

const (
	// GroupFlat is the k=1 baseline: the flat engine with global lazy
	// all-pairs tables — what every other arm is measured against.
	GroupFlat DomainGrouping = iota
	// GroupTransit folds each transit domain with all stubs hanging off
	// its nodes: k = TransitDomains.
	GroupTransit
	// GroupAttach gives each transit node its own domain together with
	// its stubs: k = TransitDomains * TransitSize.
	GroupAttach
	// GroupNatural keeps the generator's own labels — every transit and
	// stub domain distinct: k = TransitDomains * (1 + TransitSize*StubsPerTransitNode).
	GroupNatural
)

func (g DomainGrouping) String() string {
	switch g {
	case GroupFlat:
		return "flat"
	case GroupTransit:
		return "transit"
	case GroupAttach:
		return "attach"
	case GroupNatural:
		return "natural"
	}
	return fmt.Sprintf("grouping(%d)", int(g))
}

// DefaultDomains returns the acceptance configuration: the 10k-node
// transit-stub instance of the BENCH_domains benchmarks (40 transit
// nodes, 120 stub domains of 83 nodes) under a 256-member workload.
func DefaultDomains() DomainsConfig {
	return DomainsConfig{
		Topology: topology.TransitStubConfig{
			TransitDomains:      5,
			TransitSize:         8,
			StubsPerTransitNode: 3,
			StubSize:            83,
			EdgeProb:            0.4,
		},
		Groupings: []DomainGrouping{GroupFlat, GroupTransit, GroupAttach, GroupNatural},
		Members:   256,
		Kappa:     2.0,
		Seeds:     3,
	}
}

// DomainsPoint is one grouping arm, aggregated over seeds.
type DomainsPoint struct {
	Grouping string
	Domains  int // k, the domain count of this arm
	Nodes    int
	// TreeCost / MaxDelay are taken at full membership: total composed
	// tree cost and the worst member's multicast delay.
	TreeCost *stats.Sample
	MaxDelay *stats.Sample
	// CtrlHops is the composer-level control message·hop count per join:
	// the JOIN's unicast walk to its serving m-router, the installed
	// graft-path hops, and — on a domain activation — the border GRAFT's
	// walk to the core plus the splice hops it installs. In the flat arm
	// every JOIN walks to the one global m-router; hierarchically it
	// stops at the local one.
	CtrlHops *stats.Sample
	// TableBytes is the resident routing-table footprint at full
	// membership: the engine's materialized lazy all-pairs rows (flat),
	// or the domain view's per-domain tables plus the contracted
	// backbone (hierarchical).
	TableBytes *stats.Sample
	// ActiveDomains is the number of domains holding members (and hence
	// live per-domain engines) at full membership; 1 in the flat arm.
	ActiveDomains *stats.Sample
}

// DomainLabels folds the generated transit-stub hierarchy into the
// domain labelling of the requested grouping.
func DomainLabels(cfg topology.TransitStubConfig, info *topology.TransitStubInfo, grouping DomainGrouping) []int {
	labels := make([]int, len(info.Domain))
	switch grouping {
	case GroupFlat:
		// all zero
	case GroupTransit:
		for v := range labels {
			if info.Roles[v] == topology.RoleTransit {
				labels[v] = info.Domain[v]
			} else {
				labels[v] = int(info.Attachment[v]) / cfg.TransitSize
			}
		}
	case GroupAttach:
		for v := range labels {
			if info.Roles[v] == topology.RoleTransit {
				labels[v] = v // transit nodes occupy ids 0..transitN-1
			} else {
				labels[v] = int(info.Attachment[v])
			}
		}
	case GroupNatural:
		copy(labels, info.Domain)
	default:
		panic(fmt.Sprintf("experiment: unknown domain grouping %d", int(grouping)))
	}
	return labels
}

// domainsObs is one (grouping, seed) cell's raw measurements.
type domainsObs struct {
	grouping string
	rank     int
	k, nodes int
	cost     float64
	maxDelay float64
	ctrl     float64
	tableB   float64
	active   float64
}

// pathHops counts the hops of the shortest-delay unicast walk from the
// row's source to dst.
func pathHops(row *topology.Paths, dst topology.NodeID) float64 {
	p := row.To(dst)
	if p == nil {
		return 0
	}
	return float64(len(p) - 1)
}

// RunDomains executes the sweep.
func RunDomains(cfg DomainsConfig) []DomainsPoint {
	opts := runner.Options{Parallel: cfg.Parallel, Progress: cfg.Progress}
	shards := runner.Map(opts, cfg.Seeds, func(seed int) []domainsObs {
		g, info, err := topology.TransitStub(cfg.Topology, rng.New(int64(seed)+1))
		if err != nil {
			panic(fmt.Sprintf("experiment: transit-stub config rejected: %v", err))
		}
		members := pickMembers(rng.New(int64(seed)*1e6+7), g.N(), cfg.Members, -1)
		obs := make([]domainsObs, 0, len(cfg.Groupings))
		for rank, grouping := range cfg.Groupings {
			view, err := topology.NewDomainView(g, DomainLabels(cfg.Topology, info, grouping))
			if err != nil {
				panic(fmt.Sprintf("experiment: grouping %v yields an invalid domain view: %v", grouping, err))
			}
			o := domainsObs{grouping: grouping.String(), rank: rank, k: view.K(), nodes: g.N()}
			if grouping == GroupFlat {
				runDomainsFlat(g, view, members, cfg.Kappa, &o)
			} else {
				runDomainsHier(view, members, cfg.Kappa, &o)
			}
			obs = append(obs, o)
		}
		return obs
	})

	type key struct {
		rank int
		k    int
	}
	cells := map[key]*DomainsPoint{}
	for _, shard := range shards {
		for _, o := range shard {
			p := cells[key{o.rank, o.k}]
			if p == nil {
				p = &DomainsPoint{Grouping: o.grouping, Domains: o.k, Nodes: o.nodes,
					TreeCost: &stats.Sample{}, MaxDelay: &stats.Sample{},
					CtrlHops: &stats.Sample{}, TableBytes: &stats.Sample{},
					ActiveDomains: &stats.Sample{}}
				cells[key{o.rank, o.k}] = p
			}
			p.TreeCost.Add(o.cost)
			p.MaxDelay.Add(o.maxDelay)
			p.CtrlHops.Add(o.ctrl)
			p.TableBytes.Add(o.tableB)
			p.ActiveDomains.Add(o.active)
		}
	}
	out := make([]DomainsPoint, 0, len(cells))
	ranks := make(map[*DomainsPoint]int, len(cells))
	for k, p := range cells {
		ranks[p] = k.rank
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domains != out[j].Domains {
			return out[i].Domains < out[j].Domains
		}
		return out[i].Grouping < out[j].Grouping
	})
	return out
}

// runDomainsFlat drives the flat incremental DCDM over the whole graph:
// the k=1 baseline with global (lazy) routing tables, every control
// walk ending at the one global m-router.
func runDomainsFlat(g *topology.Graph, view *topology.DomainView, members []topology.NodeID, kappa float64, o *domainsObs) {
	root := view.MRouters()[0]
	spDelay := topology.NewLazyAllPairs(g, topology.ByDelay)
	spCost := topology.NewLazyAllPairs(g, topology.ByCost)
	d := mtree.NewDCDM(g, root, kappa, spDelay, spCost)
	rootRow := spDelay.Row(root)
	joins := 0.0
	for _, m := range members {
		res := d.Join(m)
		o.ctrl += pathHops(rootRow, m)
		if len(res.Path) > 1 {
			o.ctrl += float64(len(res.Path) - 1)
		}
		joins++
	}
	tree := d.Tree()
	o.cost = tree.Cost()
	for _, m := range members {
		if dl := tree.Delay(m); dl > o.maxDelay {
			o.maxDelay = dl
		}
	}
	o.tableB = float64(spDelay.MemoryBytes() + spCost.MemoryBytes())
	o.active = 1
	o.ctrl /= joins
	for _, m := range members {
		d.Leave(m)
	}
}

// runDomainsHier drives the hierarchical composer: per-domain engines
// and tables, JOINs terminating at the member's local m-router, only
// activation grafts walking to the core.
func runDomainsHier(view *topology.DomainView, members []topology.NodeID, kappa float64, o *domainsObs) {
	mrouters := view.MRouters()
	h := mtree.NewHierDCDM(view, mrouters, 0, kappa)
	// Measurement-only global table for the activation GRAFT's unicast
	// walk to the core; deliberately excluded from the table footprint —
	// the protocol itself never builds a global row.
	measure := topology.NewLazyAllPairs(view.Graph(), topology.ByDelay)
	rootRow := measure.Row(h.Root())
	joins := 0.0
	for _, m := range members {
		dom := view.Domain(m)
		sub := view.Sub(dom)
		lm := mrouters[dom]
		res := h.Join(m)
		o.ctrl += pathHops(sub.Delay().Row(sub.Local(lm)), sub.Local(m))
		if len(res.Path) > 1 {
			o.ctrl += float64(len(res.Path) - 1)
		}
		if res.Activated {
			o.ctrl += pathHops(rootRow, lm)
			if len(res.SplicePath) > 1 {
				o.ctrl += float64(len(res.SplicePath) - 1)
			}
		}
		joins++
	}
	tree := h.Tree()
	o.cost = tree.Cost()
	for _, m := range members {
		if dl := tree.Delay(m); dl > o.maxDelay {
			o.maxDelay = dl
		}
	}
	o.tableB = float64(h.TableBytes())
	o.active = float64(h.ActiveDomains())
	o.ctrl /= joins
	for _, m := range members {
		h.Leave(m)
	}
}

// WriteDomains prints the sweep as a paper-style table.
func WriteDomains(w io.Writer, points []DomainsPoint) {
	fmt.Fprintf(w, "\nHierarchical domains sweep: flat engine vs per-domain composer\n")
	fmt.Fprintf(w, "%-10s %8s %12s %10s %10s %12s %8s\n",
		"grouping", "domains", "tree_cost", "max_delay", "ctrl/join", "tables_MB", "active")
	for _, p := range points {
		fmt.Fprintf(w, "%-10s %8d %12.1f %10.1f %10.2f %12.2f %8.1f\n",
			p.Grouping, p.Domains, p.TreeCost.Mean(), p.MaxDelay.Mean(),
			p.CtrlHops.Mean(), p.TableBytes.Mean()/(1<<20), p.ActiveDomains.Mean())
	}
}

// WriteDomainsCSV renders the sweep as plot-ready records.
func WriteDomainsCSV(w io.Writer, points []DomainsPoint) error {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Grouping, fmt.Sprint(p.Domains), fmt.Sprint(p.Nodes),
			f(p.TreeCost.Mean()), f(p.TreeCost.CI95()),
			f(p.MaxDelay.Mean()), f(p.MaxDelay.CI95()),
			f(p.CtrlHops.Mean()), f(p.CtrlHops.CI95()),
			f(p.TableBytes.Mean()), f(p.ActiveDomains.Mean()),
		})
	}
	return writeCSV(w, []string{
		"grouping", "domains", "nodes",
		"tree_cost_mean", "tree_cost_ci95",
		"max_delay_mean", "max_delay_ci95",
		"ctrl_hops_mean", "ctrl_hops_ci95",
		"table_bytes_mean", "active_domains_mean",
	}, rows)
}
