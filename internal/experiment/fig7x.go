package experiment

import (
	"fmt"
	"io"
	"math"
	"scmp/internal/rng"
	"sort"

	"scmp/internal/mtree"
	"scmp/internal/runner"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// Fig7xConfig parameterises the topology-sensitivity companion to
// Fig. 7: the same DCDM/KMB/SPT comparison run across topology
// families (the paper's Waxman model, GT-ITM-style flat random graphs,
// a hierarchical transit-stub, and the fixed ARPANET), to check that
// the paper's conclusions do not hinge on the Waxman generator.
type Fig7xConfig struct {
	GroupSize int // members per run (clamped to the topology size)
	Seeds     int
	Kappa     float64 // DCDM constraint (default 1.5, the moderate level)
	// Parallel bounds the worker goroutines fanning the (family, seed)
	// shards out: 0 means GOMAXPROCS, 1 the pure serial path.
	Parallel int
	// Progress, when set, observes shard completions (called
	// concurrently when Parallel > 1).
	Progress func(done, total int)
}

// DefaultFig7x returns a moderate configuration.
func DefaultFig7x() Fig7xConfig {
	return Fig7xConfig{GroupSize: 20, Seeds: 5, Kappa: 1.5}
}

// Fig7xFamilies lists the topology families swept.
var Fig7xFamilies = []string{"waxman100", "random50-deg3", "random50-deg5", "transitstub112", "arpanet20"}

func buildFamily(name string, seed int64) *topology.Graph {
	rng := rng.New(seed)
	switch name {
	case "waxman100":
		wg, err := topology.Waxman(topology.DefaultWaxman(100), rng)
		if err != nil {
			panic(err)
		}
		return wg.Graph
	case "random50-deg3":
		g, err := topology.Random(topology.DefaultRandom(50, 3), rng)
		if err != nil {
			panic(err)
		}
		return g
	case "random50-deg5":
		g, err := topology.Random(topology.DefaultRandom(50, 5), rng)
		if err != nil {
			panic(err)
		}
		return g
	case "transitstub112":
		g, _, err := topology.TransitStub(topology.DefaultTransitStub(), rng)
		if err != nil {
			panic(err)
		}
		return g
	case "arpanet20":
		return topology.Arpanet()
	default:
		panic("experiment: unknown family " + name)
	}
}

// Fig7xPoint is one (family, algorithm) cell, with cost and delay
// normalised to SPT's values on the same instance so families of very
// different scales are comparable.
type Fig7xPoint struct {
	Family    string
	Algorithm string
	// CostVsSPT and DelayVsSPT sample cost(alg)/cost(SPT) and
	// delay(alg)/delay(SPT) per seed.
	CostVsSPT  *stats.Sample
	DelayVsSPT *stats.Sample
}

// RunFig7x executes the sweep.
func RunFig7x(cfg Fig7xConfig) []Fig7xPoint {
	if cfg.Kappa == 0 {
		cfg.Kappa = 1.5
	}
	points := map[[2]string]*Fig7xPoint{}
	cell := func(family, algo string) *Fig7xPoint {
		k := [2]string{family, algo}
		p := points[k]
		if p == nil {
			p = &Fig7xPoint{Family: family, Algorithm: algo,
				CostVsSPT: &stats.Sample{}, DelayVsSPT: &stats.Sample{}}
			points[k] = p
		}
		return p
	}
	type fig7xObs struct {
		algo        string
		cost, delay float64 // relative to SPT on the same instance
	}
	opts := runner.Options{Parallel: cfg.Parallel, Progress: cfg.Progress}
	shards := runner.Map(opts, len(Fig7xFamilies)*cfg.Seeds, func(j int) []fig7xObs {
		family := Fig7xFamilies[j/cfg.Seeds]
		seed := j % cfg.Seeds
		art := familyArtifactFor(family, int64(seed))
		g, spDelay, spCost := art.g, art.spDelay, art.spCost
		size := cfg.GroupSize
		if size >= g.N() {
			size = g.N() - 2
		}
		wl := rng.New(int64(seed) * 977)
		members := pickMembers(wl, g.N(), size, 0)

		spt := mtree.SPT(g, 0, members, spDelay)
		kmb := mtree.KMB(g, 0, members, spCost)
		dcdm := mtree.NewDCDM(g, 0, cfg.Kappa, spDelay, spCost)
		for _, m := range members {
			dcdm.Join(m)
		}
		baseCost, baseDelay := spt.Cost(), spt.TreeDelay()
		if baseCost <= 0 || baseDelay <= 0 {
			return nil
		}
		return []fig7xObs{
			{"DCDM", dcdm.Tree().Cost() / baseCost, dcdm.Tree().TreeDelay() / baseDelay},
			{"KMB", kmb.Cost() / baseCost, kmb.TreeDelay() / baseDelay},
			{"SPT", 1, 1},
		}
	})
	for j, shard := range shards {
		family := Fig7xFamilies[j/cfg.Seeds]
		for _, o := range shard {
			p := cell(family, o.algo)
			p.CostVsSPT.Add(o.cost)
			p.DelayVsSPT.Add(o.delay)
		}
	}
	out := make([]Fig7xPoint, 0, len(points))
	for _, family := range Fig7xFamilies {
		for _, algo := range []string{"DCDM", "KMB", "SPT"} {
			if p, ok := points[[2]string{family, algo}]; ok {
				out = append(out, *p)
			}
		}
	}
	return out
}

// WriteFig7x prints the study: cost and delay relative to SPT (=1.00)
// per family.
func WriteFig7x(w io.Writer, points []Fig7xPoint) {
	fmt.Fprintf(w, "\nTree quality across topology families (relative to SPT = 1.00)\n")
	fmt.Fprintf(w, "%-16s %-6s %14s %14s\n", "family", "algo", "cost/SPT", "delay/SPT")
	sorted := append([]Fig7xPoint(nil), points...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Family != sorted[j].Family {
			return familyRank(sorted[i].Family) < familyRank(sorted[j].Family)
		}
		return sorted[i].Algorithm < sorted[j].Algorithm
	})
	for _, p := range sorted {
		fmt.Fprintf(w, "%-16s %-6s %14.3f %14.3f\n",
			p.Family, p.Algorithm, p.CostVsSPT.Mean(), p.DelayVsSPT.Mean())
	}
}

func familyRank(f string) int {
	for i, name := range Fig7xFamilies {
		if name == f {
			return i
		}
	}
	return math.MaxInt32
}
