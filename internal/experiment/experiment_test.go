package experiment

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"scmp/internal/topology"
)

func TestBuildTopologyNames(t *testing.T) {
	for _, name := range Fig89Topologies() {
		g := BuildTopology(name, 1)
		if g.N() == 0 || !g.Connected() {
			t.Fatalf("%s: degenerate topology", name)
		}
	}
	a1 := BuildTopology(TopoArpanet, 1)
	a2 := BuildTopology(TopoArpanet, 99)
	if a1.M() != a2.M() {
		t.Fatal("ARPANET must not depend on the seed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown topology accepted")
		}
	}()
	BuildTopology("nope", 0)
}

func TestPickMembersExcludes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		ms := pickMembers(rng, 10, 9, 3)
		if len(ms) != 9 {
			t.Fatalf("got %d members", len(ms))
		}
		seen := map[topology.NodeID]bool{}
		for _, m := range ms {
			if m == 3 {
				t.Fatal("excluded node picked")
			}
			if seen[m] {
				t.Fatal("duplicate member")
			}
			seen[m] = true
		}
	}
}

func TestCenterPrefersHub(t *testing.T) {
	// Star: center 0 clearly minimises average delay.
	g := topology.New(5)
	for i := 1; i < 5; i++ {
		g.MustAddEdge(0, topology.NodeID(i), 1, 1)
	}
	if c := Center(g); c != 0 {
		t.Fatalf("Center = %d, want 0", c)
	}
}

// smallFig7 keeps the sweep fast for tests.
func smallFig7() Fig7Config {
	return Fig7Config{Nodes: 50, Alpha: 0.25, Beta: 0.2, GroupSizes: []int{10, 25}, Seeds: 4}
}

func TestFig7ShapesMatchPaper(t *testing.T) {
	points := RunFig7(smallFig7())
	get := func(level, algo string, size int) Fig7Point {
		for _, p := range points {
			if p.Level == level && p.Algorithm == algo && p.GroupSize == size {
				return p
			}
		}
		t.Fatalf("missing cell %s/%s/%d", level, algo, size)
		return Fig7Point{}
	}
	for _, size := range []int{10, 25} {
		// SPT's delay is a lower bound for every tree, at every level.
		for _, lvl := range ConstraintLevels {
			spt := get(lvl.Name, "SPT", size)
			dcdm := get(lvl.Name, "DCDM", size)
			kmb := get(lvl.Name, "KMB", size)
			if spt.TreeDelay.Mean() > dcdm.TreeDelay.Mean()+1e-9 {
				t.Fatalf("%s size %d: SPT delay above DCDM", lvl.Name, size)
			}
			if spt.TreeDelay.Mean() > kmb.TreeDelay.Mean() {
				t.Fatalf("%s size %d: SPT delay above KMB", lvl.Name, size)
			}
			// Cost ordering: KMB cheapest, SPT most expensive.
			if kmb.TreeCost.Mean() > spt.TreeCost.Mean() {
				t.Fatalf("%s size %d: KMB cost above SPT", lvl.Name, size)
			}
			if dcdm.TreeCost.Mean() > spt.TreeCost.Mean()*1.02 {
				t.Fatalf("%s size %d: DCDM cost above SPT (%.0f vs %.0f)",
					lvl.Name, size, dcdm.TreeCost.Mean(), spt.TreeCost.Mean())
			}
		}
		// Relaxing the constraint must not raise DCDM's cost.
		tight := get("tightest", "DCDM", size)
		loose := get("loosest", "DCDM", size)
		if loose.TreeCost.Mean() > tight.TreeCost.Mean()*1.02 {
			t.Fatalf("size %d: loosest DCDM cost %.0f above tightest %.0f",
				size, loose.TreeCost.Mean(), tight.TreeCost.Mean())
		}
		// At the tightest level DCDM tracks SPT delay closely (paper:
		// identical); restructuring allows small slack.
		if tight.TreeDelay.Mean() > get("tightest", "SPT", size).TreeDelay.Mean()*1.15 {
			t.Fatalf("size %d: tightest DCDM delay far above SPT", size)
		}
	}
	// Cost grows with group size for every algorithm.
	for _, algo := range []string{"DCDM", "KMB", "SPT"} {
		if get("moderate", algo, 10).TreeCost.Mean() >= get("moderate", algo, 25).TreeCost.Mean() {
			t.Fatalf("%s: cost not increasing with group size", algo)
		}
	}
}

func TestWriteFig7(t *testing.T) {
	var buf bytes.Buffer
	WriteFig7(&buf, RunFig7(Fig7Config{Nodes: 30, Alpha: 0.25, Beta: 0.2, GroupSizes: []int{5}, Seeds: 2}))
	out := buf.String()
	for _, want := range []string{"Tree delay", "Tree cost", "tightest", "moderate", "loosest", "DCDM", "KMB", "SPT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// smallFig89 keeps the protocol sweep fast for tests.
func smallFig89() Fig89Config {
	return Fig89Config{
		GroupSizes:    []int{8, 16},
		Seeds:         3,
		SimTime:       10,
		DataRate:      1,
		PruneLifetime: 5,
		Topologies:    []string{TopoArpanet, TopoRand3},
	}
}

func TestFig89ShapesMatchPaper(t *testing.T) {
	points := RunFig89(smallFig89())
	get := func(topo, proto string, size int) Fig89Point {
		for _, p := range points {
			if p.Topology == topo && p.Protocol == proto && p.GroupSize == size {
				return p
			}
		}
		t.Fatalf("missing cell %s/%s/%d", topo, proto, size)
		return Fig89Point{}
	}
	for _, topo := range smallFig89().Topologies {
		for _, size := range []int{8, 16} {
			scmp := get(topo, "SCMP", size)
			dv := get(topo, "DVMRP", size)
			mo := get(topo, "MOSPF", size)
			cb := get(topo, "CBT", size)
			// Everything must actually deliver.
			for _, p := range []Fig89Point{scmp, dv, mo, cb} {
				if p.Undelivered != 0 {
					t.Fatalf("%s/%s/%d: %d undelivered", topo, p.Protocol, size, p.Undelivered)
				}
			}
			// Fig. 8 (a-c): DVMRP's flood-and-refresh data overhead
			// dominates; SCMP has the least data overhead.
			if dv.DataOverhead.Mean() <= scmp.DataOverhead.Mean() {
				t.Fatalf("%s size %d: DVMRP data %.0f <= SCMP %.0f",
					topo, size, dv.DataOverhead.Mean(), scmp.DataOverhead.Mean())
			}
			for _, other := range []Fig89Point{dv, mo, cb} {
				if scmp.DataOverhead.Mean() > other.DataOverhead.Mean()*1.02 {
					t.Fatalf("%s size %d: SCMP data %.0f above %s %.0f",
						topo, size, scmp.DataOverhead.Mean(), other.Protocol, other.DataOverhead.Mean())
				}
			}
			// Fig. 8 (d-f): MOSPF floods an LSA per membership change —
			// the steepest protocol overhead; SCMP and CBT are both far
			// below MOSPF.
			if mo.ProtoOverhead.Mean() <= scmp.ProtoOverhead.Mean() ||
				mo.ProtoOverhead.Mean() <= cb.ProtoOverhead.Mean() {
				t.Fatalf("%s size %d: MOSPF proto overhead not dominant", topo, size)
			}
			if scmp.ProtoOverhead.Mean() > mo.ProtoOverhead.Mean()/2 {
				t.Fatalf("%s size %d: SCMP proto overhead %.0f not well below MOSPF %.0f",
					topo, size, scmp.ProtoOverhead.Mean(), mo.ProtoOverhead.Mean())
			}
			// Fig. 9: the shared-tree protocols may detour through the
			// center, so their delay is at least the SPT protocols'
			// (allowing sampling noise).
			if scmp.MaxE2E.Mean() < mo.MaxE2E.Mean()*0.8 {
				t.Fatalf("%s size %d: SCMP delay %.2f implausibly below MOSPF %.2f",
					topo, size, scmp.MaxE2E.Mean(), mo.MaxE2E.Mean())
			}
		}
	}
}

func TestWriteFig89(t *testing.T) {
	cfg := Fig89Config{GroupSizes: []int{8}, Seeds: 1, SimTime: 3, DataRate: 1,
		PruneLifetime: 5, Topologies: []string{TopoArpanet}}
	points := RunFig89(cfg)
	var buf bytes.Buffer
	WriteFig8(&buf, points)
	WriteFig9(&buf, points)
	out := buf.String()
	for _, want := range []string{"Data overhead", "Protocol overhead", "Maximum end-to-end delay", "SCMP", "DVMRP", "MOSPF", "CBT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPlacementRulesBeatRandom(t *testing.T) {
	cfg := PlacementConfig{Nodes: 60, GroupSize: 15, Seeds: 3, Trials: 6, Kappa: 1.5}
	points := RunPlacement(cfg)
	byRule := map[string]PlacementPoint{}
	for _, p := range points {
		byRule[p.Rule] = p
	}
	if len(byRule) != len(PlacementRules) {
		t.Fatalf("got %d rules", len(byRule))
	}
	// The paper reports no single always-best placement but the
	// heuristics help "in most cases": rule 1 should not lose to random
	// placement by more than noise.
	if byRule["rule1-avgdelay"].TreeCost.Mean() > byRule["random"].TreeCost.Mean()*1.1 {
		t.Fatalf("rule1 cost %.0f worse than random %.0f",
			byRule["rule1-avgdelay"].TreeCost.Mean(), byRule["random"].TreeCost.Mean())
	}
	var buf bytes.Buffer
	WritePlacement(&buf, points)
	if !strings.Contains(buf.String(), "rule1-avgdelay") {
		t.Fatal("WritePlacement output incomplete")
	}
}

func TestPlaceRules(t *testing.T) {
	// Path graph: rule 2 picks an interior node; rule 3 the midpoint.
	g := topology.New(5)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(topology.NodeID(i), topology.NodeID(i+1), 1, 1)
	}
	rng := rand.New(rand.NewSource(1))
	if got := Place("rule3-diameter", g, rng); got != 2 {
		t.Fatalf("rule3 = %d, want midpoint 2", got)
	}
	if got := Place("rule1-avgdelay", g, rng); got != 2 {
		t.Fatalf("rule1 = %d, want 2", got)
	}
	r := Place("random", g, rng)
	if r < 0 || int(r) >= g.N() {
		t.Fatalf("random = %d", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown rule accepted")
		}
	}()
	Place("nope", g, rng)
}
