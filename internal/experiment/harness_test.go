package experiment

// Regression tests for the harness bugfixes: the floating-point send
// schedule, the WriteFig7 nil-cell panic, and pickMembers' silent group
// shrinking.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"scmp/internal/stats"
)

// TestSendTimesExactCounts pins the schedule length for several rates.
// The old accumulating loop (`t += interval`) drifted by ULPs at
// non-integer intervals and dropped or duplicated the final packet.
func TestSendTimesExactCounts(t *testing.T) {
	cases := []struct {
		simTime, rate float64
		want          int
	}{
		{30, 1, 30},   // paper default: t = 1..30
		{30, 2, 59},   // t = 1, 1.5, …, 30
		{30, 3, 88},   // non-dyadic interval: the drift-prone case
		{30, 4, 117},  // t = 1, 1.25, …, 30
		{30, 0.5, 15}, // t = 1, 3, …, 29
		{10, 3, 28},   // t = 1, 1.33…, …, 10 − ε
		{0.5, 1, 0},   // run ends before the first send
		{1, 1, 1},     // exactly one send at t = 1
	}
	for _, c := range cases {
		ts := sendTimes(c.simTime, c.rate)
		if len(ts) != c.want {
			t.Errorf("sendTimes(%g, %g): %d packets, want %d",
				c.simTime, c.rate, len(ts), c.want)
			continue
		}
		if c.want == 0 {
			continue
		}
		if ts[0] != 1.0 {
			t.Errorf("sendTimes(%g, %g): first send at %g, want 1", c.simTime, c.rate, ts[0])
		}
		last := ts[len(ts)-1]
		if last > c.simTime {
			t.Errorf("sendTimes(%g, %g): last send %g after end of run", c.simTime, c.rate, last)
		}
		if last+1.0/c.rate <= c.simTime {
			t.Errorf("sendTimes(%g, %g): schedule stops early at %g", c.simTime, c.rate, last)
		}
	}
}

// TestSendTimesMonotone: times strictly increase (no duplicated sends).
func TestSendTimesMonotone(t *testing.T) {
	for _, rate := range []float64{0.5, 1, 2, 3, 7, 10} {
		ts := sendTimes(30, rate)
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("rate %g: non-monotone schedule at %d: %g then %g", rate, i-1, ts[i-1], ts[i])
			}
		}
	}
}

// TestWriteFig7PartialSlice: a filtered point slice missing algorithms
// must print a placeholder, not panic on a nil cell (the old writer
// dereferenced row["KMB"] unconditionally).
func TestWriteFig7PartialSlice(t *testing.T) {
	sample := func(x float64) *stats.Sample {
		s := &stats.Sample{}
		s.Add(x)
		return s
	}
	points := []Fig7Point{
		{Level: "moderate", GroupSize: 10, Algorithm: "DCDM",
			TreeDelay: sample(5), TreeCost: sample(7)},
	}
	var buf bytes.Buffer
	WriteFig7(&buf, points) // must not panic
	out := buf.String()
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cells not marked with placeholder:\n%s", out)
	}
	if !strings.Contains(out, "7") {
		t.Fatalf("present cell not printed:\n%s", out)
	}
}

// TestPickMembersPanicsWhenShort: requesting more members than exist
// must fail loudly instead of quietly shrinking the group (which would
// silently skew every averaged sweep point).
func TestPickMembersPanicsWhenShort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// k = n with a real exclusion: only n-1 candidates.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("pickMembers accepted k > candidates")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "pickMembers") {
				t.Fatalf("panic %v lacks context", r)
			}
		}()
		pickMembers(rng, 10, 10, 3)
	}()
	// k = n without exclusion is fine.
	if got := pickMembers(rng, 10, 10, -1); len(got) != 10 {
		t.Fatalf("k = n, no exclusion: got %d members", len(got))
	}
	// An exclusion outside [0, n) does not shrink the pool.
	if got := pickMembers(rng, 10, 10, 42); len(got) != 10 {
		t.Fatalf("out-of-range exclusion shrank the pool: %d members", len(got))
	}
}

// TestRunFig7SkipsOversizedGroups: sweep sizes at or above N cannot be
// filled once the root is excluded, so they are skipped rather than
// silently shrunk (and rather than panicking deep in a shard).
func TestRunFig7SkipsOversizedGroups(t *testing.T) {
	points := RunFig7(Fig7Config{Nodes: 20, Alpha: 0.25, Beta: 0.2,
		GroupSizes: []int{5, 20, 25}, Seeds: 1})
	for _, p := range points {
		if p.GroupSize >= 20 {
			t.Fatalf("oversized group %d not skipped", p.GroupSize)
		}
	}
	if len(points) == 0 {
		t.Fatal("valid sizes were dropped too")
	}
}
