package experiment

import (
	"fmt"
	"io"
	"math"
	"scmp/internal/rng"
	"sort"

	"scmp/internal/mtree"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// Fig7Config parameterises the tree-quality comparison of Fig. 7:
// Waxman topologies, group size swept, three delay-constraint levels,
// three algorithms (DCDM = SCMP's tree, KMB, SPT), averaged over seeds.
type Fig7Config struct {
	Nodes      int     // paper: 100
	Alpha      float64 // paper: 0.25
	Beta       float64 // paper: 0.2
	GroupSizes []int   // paper: 10..90 step 10
	Seeds      int     // paper: 10
}

// DefaultFig7 returns the paper's configuration.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		Nodes: 100, Alpha: 0.25, Beta: 0.2,
		GroupSizes: []int{10, 20, 30, 40, 50, 60, 70, 80, 90},
		Seeds:      10,
	}
}

// ConstraintLevels maps the paper's three delay-constraint levels to
// DCDM's bound multiplier.
var ConstraintLevels = []struct {
	Name  string
	Kappa float64
}{
	{"tightest", 1},
	{"moderate", 1.5},
	{"loosest", math.Inf(1)},
}

// Fig7Point is one (level, group size, algorithm) cell: tree delay and
// tree cost sampled across seeds.
type Fig7Point struct {
	Level     string
	GroupSize int
	Algorithm string
	TreeDelay *stats.Sample
	TreeCost  *stats.Sample
}

// RunFig7 executes the sweep and returns every cell, ordered by level,
// group size, algorithm.
func RunFig7(cfg Fig7Config) []Fig7Point {
	type key struct {
		level, algo string
		size        int
	}
	cells := make(map[key]*Fig7Point)
	cell := func(level, algo string, size int) *Fig7Point {
		k := key{level, algo, size}
		p := cells[k]
		if p == nil {
			p = &Fig7Point{Level: level, GroupSize: size, Algorithm: algo,
				TreeDelay: &stats.Sample{}, TreeCost: &stats.Sample{}}
			cells[k] = p
		}
		return p
	}
	for seed := 0; seed < cfg.Seeds; seed++ {
		rng := rng.New(int64(seed))
		wcfg := topology.WaxmanConfig{N: cfg.Nodes, Alpha: cfg.Alpha, Beta: cfg.Beta, GridSize: 32767, Connect: true}
		wg, err := topology.Waxman(wcfg, rng)
		if err != nil {
			panic(err)
		}
		g := wg.Graph
		root := topology.NodeID(0)
		spDelay := topology.NewAllPairs(g, topology.ByDelay)
		spCost := topology.NewAllPairs(g, topology.ByCost)
		for _, size := range cfg.GroupSizes {
			members := pickMembers(rng, g.N(), size, root)
			// KMB and SPT are constraint-oblivious; compute once and
			// record them under every level so each panel has all three
			// series, like the paper's plots.
			kmb := mtree.KMB(g, root, members, spCost)
			spt := mtree.SPT(g, root, members, spDelay)
			for _, lvl := range ConstraintLevels {
				d := mtree.NewDCDM(g, root, lvl.Kappa, spDelay, spCost)
				for _, m := range members {
					d.Join(m)
				}
				dc := cell(lvl.Name, "DCDM", size)
				dc.TreeDelay.Add(d.Tree().TreeDelay())
				dc.TreeCost.Add(d.Tree().Cost())
				kc := cell(lvl.Name, "KMB", size)
				kc.TreeDelay.Add(kmb.TreeDelay())
				kc.TreeCost.Add(kmb.Cost())
				sc := cell(lvl.Name, "SPT", size)
				sc.TreeDelay.Add(spt.TreeDelay())
				sc.TreeCost.Add(spt.Cost())
			}
		}
	}
	out := make([]Fig7Point, 0, len(cells))
	for _, p := range cells {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Level != b.Level {
			return levelRank(a.Level) < levelRank(b.Level)
		}
		if a.GroupSize != b.GroupSize {
			return a.GroupSize < b.GroupSize
		}
		return a.Algorithm < b.Algorithm
	})
	return out
}

func levelRank(level string) int {
	for i, lvl := range ConstraintLevels {
		if lvl.Name == level {
			return i
		}
	}
	return len(ConstraintLevels)
}

// WriteFig7 prints the sweep as paper-style panels: Fig. 7(a-c) tree
// delay and Fig. 7(d-f) tree cost, one row per group size, one column
// per algorithm.
func WriteFig7(w io.Writer, points []Fig7Point) {
	metrics := []struct {
		title string
		pick  func(Fig7Point) *stats.Sample
	}{
		{"Tree delay", func(p Fig7Point) *stats.Sample { return p.TreeDelay }},
		{"Tree cost", func(p Fig7Point) *stats.Sample { return p.TreeCost }},
	}
	for _, m := range metrics {
		for _, lvl := range ConstraintLevels {
			fmt.Fprintf(w, "\n%s — delay constraint %s\n", m.title, lvl.Name)
			fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "groupsize", "DCDM", "KMB", "SPT")
			bySize := map[int]map[string]*stats.Sample{}
			for _, p := range points {
				if p.Level != lvl.Name {
					continue
				}
				if bySize[p.GroupSize] == nil {
					bySize[p.GroupSize] = map[string]*stats.Sample{}
				}
				bySize[p.GroupSize][p.Algorithm] = m.pick(p)
			}
			sizes := make([]int, 0, len(bySize))
			for s := range bySize {
				sizes = append(sizes, s)
			}
			sort.Ints(sizes)
			for _, s := range sizes {
				row := bySize[s]
				fmt.Fprintf(w, "%-10d %14.0f %14.0f %14.0f\n",
					s, row["DCDM"].Mean(), row["KMB"].Mean(), row["SPT"].Mean())
			}
		}
	}
}
