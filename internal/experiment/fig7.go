package experiment

import (
	"fmt"
	"io"
	"math"
	"scmp/internal/rng"
	"sort"

	"scmp/internal/mtree"
	"scmp/internal/runner"
	"scmp/internal/stats"
	"scmp/internal/topology"
)

// Fig7Config parameterises the tree-quality comparison of Fig. 7:
// Waxman topologies, group size swept, three delay-constraint levels,
// three algorithms (DCDM = SCMP's tree, KMB, SPT), averaged over seeds.
type Fig7Config struct {
	Nodes      int     // paper: 100
	Alpha      float64 // paper: 0.25
	Beta       float64 // paper: 0.2
	GroupSizes []int   // paper: 10..90 step 10
	Seeds      int     // paper: 10
	// Parallel bounds the worker goroutines fanning the per-seed shards
	// out: 0 means GOMAXPROCS, 1 the pure serial path. Results are
	// byte-identical either way.
	Parallel int
	// Progress, when set, observes shard completions (called
	// concurrently when Parallel > 1).
	Progress func(done, total int)
}

// DefaultFig7 returns the paper's configuration.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		Nodes: 100, Alpha: 0.25, Beta: 0.2,
		GroupSizes: []int{10, 20, 30, 40, 50, 60, 70, 80, 90},
		Seeds:      10,
	}
}

// ConstraintLevels maps the paper's three delay-constraint levels to
// DCDM's bound multiplier.
var ConstraintLevels = []struct {
	Name  string
	Kappa float64
}{
	{"tightest", 1},
	{"moderate", 1.5},
	{"loosest", math.Inf(1)},
}

// Fig7Point is one (level, group size, algorithm) cell: tree delay and
// tree cost sampled across seeds.
type Fig7Point struct {
	Level     string
	GroupSize int
	Algorithm string
	TreeDelay *stats.Sample
	TreeCost  *stats.Sample
}

// fig7Obs is one shard observation: one algorithm's tree quality at one
// (level, size) cell, emitted in deterministic shard order.
type fig7Obs struct {
	level, algo string
	size        int
	delay, cost float64
}

// runFig7Shard executes one seed's full sweep. The member stream is
// derived from the seed independently of the (cached) topology build, so
// a cache hit cannot shift later draws.
func runFig7Shard(cfg Fig7Config, seed int) []fig7Obs {
	wcfg := topology.WaxmanConfig{N: cfg.Nodes, Alpha: cfg.Alpha, Beta: cfg.Beta, GridSize: 32767, Connect: true}
	art := waxmanArtifactFor(wcfg, int64(seed))
	g, spDelay, spCost := art.g, art.spDelay, art.spCost
	root := topology.NodeID(0)
	memberRng := rng.New(int64(seed)*104729 + 1)
	var out []fig7Obs
	for _, size := range cfg.GroupSizes {
		if size >= g.N() { // root is excluded, so at most N-1 members exist
			continue
		}
		members := pickMembers(memberRng, g.N(), size, root)
		// KMB and SPT are constraint-oblivious; compute once and
		// record them under every level so each panel has all three
		// series, like the paper's plots.
		kmb := mtree.KMB(g, root, members, spCost)
		spt := mtree.SPT(g, root, members, spDelay)
		for _, lvl := range ConstraintLevels {
			d := mtree.NewDCDM(g, root, lvl.Kappa, spDelay, spCost)
			for _, m := range members {
				d.Join(m)
			}
			out = append(out,
				fig7Obs{lvl.Name, "DCDM", size, d.Tree().TreeDelay(), d.Tree().Cost()},
				fig7Obs{lvl.Name, "KMB", size, kmb.TreeDelay(), kmb.Cost()},
				fig7Obs{lvl.Name, "SPT", size, spt.TreeDelay(), spt.Cost()})
		}
	}
	return out
}

// RunFig7 executes the sweep and returns every cell, ordered by level,
// group size, algorithm. Per-seed shards fan out over runner.Map and
// merge in seed order, so the aggregate matches a serial run exactly.
func RunFig7(cfg Fig7Config) []Fig7Point {
	type key struct {
		level, algo string
		size        int
	}
	cells := make(map[key]*Fig7Point)
	cell := func(level, algo string, size int) *Fig7Point {
		k := key{level, algo, size}
		p := cells[k]
		if p == nil {
			p = &Fig7Point{Level: level, GroupSize: size, Algorithm: algo,
				TreeDelay: &stats.Sample{}, TreeCost: &stats.Sample{}}
			cells[k] = p
		}
		return p
	}
	opts := runner.Options{Parallel: cfg.Parallel, Progress: cfg.Progress}
	shards := runner.Map(opts, cfg.Seeds, func(seed int) []fig7Obs {
		return runFig7Shard(cfg, seed)
	})
	for _, shard := range shards {
		for _, o := range shard {
			c := cell(o.level, o.algo, o.size)
			c.TreeDelay.Add(o.delay)
			c.TreeCost.Add(o.cost)
		}
	}
	out := make([]Fig7Point, 0, len(cells))
	for _, p := range cells {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Level != b.Level {
			return levelRank(a.Level) < levelRank(b.Level)
		}
		if a.GroupSize != b.GroupSize {
			return a.GroupSize < b.GroupSize
		}
		return a.Algorithm < b.Algorithm
	})
	return out
}

func levelRank(level string) int {
	for i, lvl := range ConstraintLevels {
		if lvl.Name == level {
			return i
		}
	}
	return len(ConstraintLevels)
}

// WriteFig7 prints the sweep as paper-style panels: Fig. 7(a-c) tree
// delay and Fig. 7(d-f) tree cost, one row per group size, one column
// per algorithm.
func WriteFig7(w io.Writer, points []Fig7Point) {
	metrics := []struct {
		title string
		pick  func(Fig7Point) *stats.Sample
	}{
		{"Tree delay", func(p Fig7Point) *stats.Sample { return p.TreeDelay }},
		{"Tree cost", func(p Fig7Point) *stats.Sample { return p.TreeCost }},
	}
	for _, m := range metrics {
		for _, lvl := range ConstraintLevels {
			fmt.Fprintf(w, "\n%s — delay constraint %s\n", m.title, lvl.Name)
			fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "groupsize", "DCDM", "KMB", "SPT")
			bySize := map[int]map[string]*stats.Sample{}
			for _, p := range points {
				if p.Level != lvl.Name {
					continue
				}
				if bySize[p.GroupSize] == nil {
					bySize[p.GroupSize] = map[string]*stats.Sample{}
				}
				bySize[p.GroupSize][p.Algorithm] = m.pick(p)
			}
			sizes := make([]int, 0, len(bySize))
			for s := range bySize {
				sizes = append(sizes, s)
			}
			sort.Ints(sizes)
			for _, s := range sizes {
				row := bySize[s]
				fmt.Fprintf(w, "%-10d", s)
				// A filtered or partial point slice may miss cells; print
				// a placeholder instead of dereferencing nil, exactly
				// like writeFig89Metric.
				for _, algo := range []string{"DCDM", "KMB", "SPT"} {
					if sm := row[algo]; sm != nil {
						fmt.Fprintf(w, " %14.0f", sm.Mean())
					} else {
						fmt.Fprintf(w, " %14s", "-")
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
}
