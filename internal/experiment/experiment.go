// Package experiment regenerates the paper's evaluation (§IV): the
// Fig. 7 multicast-tree quality sweep, the Fig. 8 data/protocol overhead
// sweep, the Fig. 9 maximum end-to-end delay sweep, and the §IV-A
// m-router placement heuristics study. Each experiment averages over
// seeds, like the paper's 10-seed averages, and prints rows shaped like
// the paper's series.
package experiment

import (
	"fmt"

	"scmp/internal/rng"

	"scmp/internal/topology"
)

// pickMembers draws k distinct member routers, never the excluded node.
// It panics when fewer than k candidates exist: silently returning a
// smaller set would quietly shrink group sizes in sweeps and skew every
// averaged point, so callers must guard their sweep bounds (each Run*
// skips or clamps sizes against the topology first).
func pickMembers(rng *rng.Rand, n, k int, exclude topology.NodeID) []topology.NodeID {
	avail := n
	if exclude >= 0 && int(exclude) < n {
		avail--
	}
	if k > avail {
		panic(fmt.Sprintf(
			"experiment: pickMembers: %d members requested but only %d candidates (n=%d, exclude=%d)",
			k, avail, n, exclude))
	}
	perm := rng.Perm(n)
	out := make([]topology.NodeID, 0, k)
	for _, v := range perm {
		if topology.NodeID(v) == exclude {
			continue
		}
		out = append(out, topology.NodeID(v))
		if len(out) == k {
			break
		}
	}
	return out
}

// Topology names used across Fig. 8/9.
const (
	TopoArpanet = "ARPANET"
	TopoRand3   = "Random50-deg3"
	TopoRand5   = "Random50-deg5"
)

// delayScale converts the generators' abstract delay units to seconds
// for the packet-level simulations: raw values (1..100) are read as
// milliseconds, so propagation is fast relative to the paper's
// one-packet-per-second source.
const delayScale = 1e-3

// BuildTopology constructs one of the three Fig. 8/9 topologies with
// link delays in seconds. The ARPANET is a fixed instance; the random
// ones vary with the seed.
func BuildTopology(name string, seed int64) *topology.Graph {
	switch name {
	case TopoArpanet:
		return topology.Arpanet().ScaleDelays(delayScale)
	case TopoRand3:
		g, err := topology.Random(topology.DefaultRandom(50, 3), rng.New(seed))
		if err != nil {
			panic(err)
		}
		return g.ScaleDelays(delayScale)
	case TopoRand5:
		g, err := topology.Random(topology.DefaultRandom(50, 5), rng.New(seed))
		if err != nil {
			panic(err)
		}
		return g.ScaleDelays(delayScale)
	default:
		panic("experiment: unknown topology " + name)
	}
}

// Fig89Topologies lists the three evaluation topologies in paper order.
func Fig89Topologies() []string { return []string{TopoArpanet, TopoRand3, TopoRand5} }
