// Package mospf implements the Multicast Extensions to OSPF baseline.
//
// Every router holds the full link-state topology (given: the domain
// runs a link-state unicast protocol) plus a group-membership database
// fed by flooded group-membership LSAs: every time a subnet gains its
// first member or loses its last one, the designated router floods a
// GROUP-LSA through the whole domain — the behaviour behind MOSPF's
// steep protocol-overhead curve in the paper's Fig. 8 ("whenever a group
// member wants to join or leave the group, the DR will flood a
// group-membership-lsa packet throughout the domain").
//
// Data packets follow the source-rooted shortest-delay tree that every
// router computes identically from its link-state database, forwarded
// only toward subtrees containing members.
package mospf

import (
	"encoding/binary"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

type lsaKey struct {
	origin topology.NodeID
	seq    uint64
}

// MOSPF is a protocol instance for one domain.
type MOSPF struct {
	net *netsim.Network

	// view[node] is node's local copy of the membership database:
	// group -> member routers. Views converge as LSAs flood.
	view map[topology.NodeID]map[packet.GroupID]map[topology.NodeID]bool
	// seen[node] dedupes LSA floods.
	seen map[topology.NodeID]map[lsaKey]bool
	// lsaSeq[origin] numbers LSAs per originating router.
	lsaSeq map[topology.NodeID]uint64
	// spt caches the source-rooted shortest-delay tree per source; the
	// topology is static, so every router shares the same computation.
	spt map[topology.NodeID]*sptInfo
	// fwdCache tracks the (source, group) forwarding-cache entries each
	// router has instantiated — the per-pair state real MOSPF builds on
	// demand when data arrives.
	fwdCache map[cacheKey]bool
}

type cacheKey struct {
	node, src topology.NodeID
	group     packet.GroupID
}

type sptInfo struct {
	parent   []topology.NodeID
	children map[topology.NodeID][]topology.NodeID
}

var _ netsim.Protocol = (*MOSPF)(nil)

// New returns a MOSPF instance.
func New() *MOSPF {
	return &MOSPF{
		view:     make(map[topology.NodeID]map[packet.GroupID]map[topology.NodeID]bool),
		seen:     make(map[topology.NodeID]map[lsaKey]bool),
		lsaSeq:   make(map[topology.NodeID]uint64),
		spt:      make(map[topology.NodeID]*sptInfo),
		fwdCache: make(map[cacheKey]bool),
	}
}

// Name implements netsim.Protocol.
func (m *MOSPF) Name() string { return "MOSPF" }

// StateEntries returns the state a router holds: its group-membership
// database records (one per known (group, member) pair, kept
// domain-wide by LSA flooding) plus the (source, group) forwarding
// cache entries it has instantiated. Both grow with sources and
// members — the storage cost the paper's §I charges MOSPF with.
func (m *MOSPF) StateEntries(node topology.NodeID) int {
	count := 0
	for _, members := range m.view[node] {
		count += len(members)
	}
	for k := range m.fwdCache {
		if k.node == node {
			count++
		}
	}
	return count
}

// Attach implements netsim.Protocol.
func (m *MOSPF) Attach(n *netsim.Network) { m.net = n }

func (m *MOSPF) nodeView(node topology.NodeID) map[packet.GroupID]map[topology.NodeID]bool {
	v := m.view[node]
	if v == nil {
		v = make(map[packet.GroupID]map[topology.NodeID]bool)
		m.view[node] = v
	}
	return v
}

func (m *MOSPF) applyMembership(node, member topology.NodeID, g packet.GroupID, joined bool) {
	v := m.nodeView(node)
	if v[g] == nil {
		v[g] = make(map[topology.NodeID]bool)
	}
	if joined {
		v[g][member] = true
	} else {
		delete(v[g], member)
	}
}

// --- LSA flooding -------------------------------------------------------

// lsaPayload encodes (member, joined) — the group rides in the packet
// header.
func lsaPayload(member topology.NodeID, joined bool) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(member))
	if joined {
		return append(b, 1)
	}
	return append(b, 0)
}

func decodeLSA(b []byte) (member topology.NodeID, joined bool, ok bool) {
	if len(b) != 5 {
		return 0, false, false
	}
	return topology.NodeID(binary.BigEndian.Uint32(b)), b[4] == 1, true
}

// floodLSA originates a membership LSA at node and floods it.
func (m *MOSPF) floodLSA(node topology.NodeID, g packet.GroupID, joined bool) {
	m.lsaSeq[node]++
	seq := m.lsaSeq[node]
	m.markSeen(node, lsaKey{node, seq})
	pkt := &netsim.Packet{
		Kind:    packet.GroupLSA,
		Group:   g,
		Src:     node,
		Seq:     seq,
		Payload: lsaPayload(node, joined),
		Size:    packet.ControlSize,
	}
	for _, l := range m.net.G.Neighbors(node) {
		m.net.SendLink(node, l.To, pkt)
	}
}

func (m *MOSPF) markSeen(node topology.NodeID, k lsaKey) bool {
	s := m.seen[node]
	if s == nil {
		s = make(map[lsaKey]bool)
		m.seen[node] = s
	}
	if s[k] {
		return false
	}
	s[k] = true
	return true
}

func (m *MOSPF) handleLSA(node topology.NodeID, pkt *netsim.Packet) {
	if !m.markSeen(node, lsaKey{pkt.Src, pkt.Seq}) {
		return // duplicate
	}
	member, joined, ok := decodeLSA(pkt.Payload)
	if !ok {
		return
	}
	m.applyMembership(node, member, pkt.Group, joined)
	for _, l := range m.net.G.Neighbors(node) {
		if l.To != pkt.From {
			m.net.SendLink(node, l.To, pkt)
		}
	}
}

// --- membership ---------------------------------------------------------

// HostJoin implements netsim.Protocol.
func (m *MOSPF) HostJoin(node topology.NodeID, g packet.GroupID) {
	m.applyMembership(node, node, g, true)
	m.floodLSA(node, g, true)
}

// HostLeave implements netsim.Protocol.
func (m *MOSPF) HostLeave(node topology.NodeID, g packet.GroupID) {
	m.applyMembership(node, node, g, false)
	m.floodLSA(node, g, false)
}

// --- data forwarding ------------------------------------------------------

// sourceTree returns the shortest-delay tree rooted at src (shared cache
// — the computation is identical at every router).
func (m *MOSPF) sourceTree(src topology.NodeID) *sptInfo {
	if t, ok := m.spt[src]; ok {
		return t
	}
	sp := topology.Shortest(m.net.G, src, topology.ByDelay)
	info := &sptInfo{parent: sp.Parent, children: make(map[topology.NodeID][]topology.NodeID)}
	for v, p := range sp.Parent {
		if p != -1 {
			info.children[p] = append(info.children[p], topology.NodeID(v))
		}
	}
	m.spt[src] = info
	return info
}

// subtreeHasMember reports whether, in src's tree, the subtree rooted at
// c contains a member of g according to node's membership view.
func (m *MOSPF) subtreeHasMember(node topology.NodeID, info *sptInfo, c topology.NodeID, g packet.GroupID) bool {
	members := m.nodeView(node)[g]
	if len(members) == 0 {
		return false
	}
	// Walk each member's parent chain; if it passes through c, the
	// member lives in c's subtree.
	for mr := range members {
		v := mr
		for v != -1 {
			if v == c {
				return true
			}
			v = info.parent[v]
		}
	}
	return false
}

// forwardDown sends pkt from node to each child subtree holding members.
func (m *MOSPF) forwardDown(node topology.NodeID, info *sptInfo, pkt *netsim.Packet) {
	for _, c := range info.children[node] {
		if m.subtreeHasMember(node, info, c, pkt.Group) {
			m.net.SendLink(node, c, pkt)
		}
	}
}

// SendData implements netsim.Protocol.
func (m *MOSPF) SendData(src topology.NodeID, g packet.GroupID, size int, seq uint64) {
	pkt := &netsim.Packet{
		Kind: packet.Data, Group: g, Src: src, Seq: seq, Size: size,
		Created: m.net.Now(),
	}
	m.fwdCache[cacheKey{src, src, g}] = true
	m.forwardDown(src, m.sourceTree(src), pkt)
}

func (m *MOSPF) handleData(node topology.NodeID, pkt *netsim.Packet) {
	info := m.sourceTree(pkt.Src)
	if info.parent[node] != pkt.From {
		m.net.DropData(node) // not this router's place in the source tree
		return
	}
	m.fwdCache[cacheKey{node, pkt.Src, pkt.Group}] = true
	if m.nodeView(node)[pkt.Group][node] {
		m.net.DeliverLocal(node, pkt)
	}
	m.forwardDown(node, info, pkt)
}

// HandlePacket implements netsim.Protocol.
func (m *MOSPF) HandlePacket(node topology.NodeID, pkt *netsim.Packet) {
	switch pkt.Kind {
	case packet.GroupLSA:
		m.handleLSA(node, pkt)
	case packet.Data:
		m.handleData(node, pkt)
	}
}
