package mospf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

const grp packet.GroupID = 1

func lineGraph(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(topology.NodeID(i), topology.NodeID(i+1), 1, 1)
	}
	return g
}

func TestLSAFloodsWholeDomain(t *testing.T) {
	g := lineGraph(5) // 4 links
	n := netsim.New(g, New())
	n.HostJoin(2, grp)
	n.Run()
	// Flooding crosses every link at least once, in both directions for
	// interior links; for this line: origin 2 sends to 1 and 3, each
	// forwards outward and back-floods duplicates are suppressed at
	// nodes, not links.
	got := n.Metrics.Crossings(packet.GroupLSA)
	if got < 4 {
		t.Fatalf("LSA crossings = %d, want at least one per link", got)
	}
}

func TestLSAConvergesAllViews(t *testing.T) {
	g := lineGraph(4)
	m := New()
	n := netsim.New(g, m)
	n.HostJoin(3, grp)
	n.Run()
	for v := 0; v < g.N(); v++ {
		if !m.nodeView(topology.NodeID(v))[grp][3] {
			t.Fatalf("router %d did not learn membership of 3", v)
		}
	}
	n.HostLeave(3, grp)
	n.Run()
	for v := 0; v < g.N(); v++ {
		if m.nodeView(topology.NodeID(v))[grp][3] {
			t.Fatalf("router %d did not learn leave of 3", v)
		}
	}
}

func TestEveryMembershipChangeFloods(t *testing.T) {
	g := lineGraph(4)
	n := netsim.New(g, New())
	n.HostJoin(1, grp)
	n.Run()
	first := n.Metrics.Crossings(packet.GroupLSA)
	n.HostJoin(3, grp)
	n.Run()
	second := n.Metrics.Crossings(packet.GroupLSA) - first
	if second < first/2 {
		t.Fatalf("second join flooded only %d crossings vs %d: flood suppressed?", second, first)
	}
}

func TestDataFollowsSourceTree(t *testing.T) {
	g := lineGraph(5)
	n := netsim.New(g, New())
	n.HostJoin(4, grp)
	n.Run()
	seq := n.SendData(0, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	// Data is scoped to the member path: exactly 4 crossings.
	if got := n.Metrics.Crossings(packet.Data); got != 4 {
		t.Fatalf("data crossings = %d, want 4", got)
	}
}

func TestDataPrunedToMemberSubtrees(t *testing.T) {
	// Star: 0 center with arms 1, 2, 3; member only on arm 2.
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(0, 2, 1, 1)
	g.MustAddEdge(0, 3, 1, 1)
	n := netsim.New(g, New())
	n.HostJoin(2, grp)
	n.Run()
	n.SendData(0, grp, 100)
	n.Run()
	if got := n.Metrics.Crossings(packet.Data); got != 1 {
		t.Fatalf("data crossings = %d, want 1 (member arm only)", got)
	}
}

func TestNoMembersNoData(t *testing.T) {
	g := lineGraph(3)
	n := netsim.New(g, New())
	n.SendData(0, grp, 100)
	n.Run()
	if got := n.Metrics.Crossings(packet.Data); got != 0 {
		t.Fatalf("data crossings = %d, want 0", got)
	}
}

func TestMemberSourceDeliversToOthers(t *testing.T) {
	g := lineGraph(3)
	n := netsim.New(g, New())
	n.HostJoin(0, grp)
	n.HostJoin(2, grp)
	n.Run()
	seq := n.SendData(0, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

// Property: after quiescent LSA convergence, data from any source
// reaches every member exactly once.
func TestPropertyMOSPFDelivery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(15, 3), rng)
		if err != nil {
			return false
		}
		n := netsim.New(g, New())
		for _, v := range rng.Perm(g.N())[:5] {
			n.HostJoin(topology.NodeID(v), grp)
		}
		n.Run()
		for i := 0; i < 3; i++ {
			src := topology.NodeID(rng.Intn(g.N()))
			seq := n.SendData(src, grp, 100)
			n.Run()
			missing, anomalous := n.CheckDelivery(seq)
			if len(missing) != 0 || len(anomalous) != 0 {
				t.Logf("seed %d src %d: missing=%v anomalous=%v", seed, src, missing, anomalous)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
