package dvmrp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

const grp packet.GroupID = 1

func lineGraph(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(topology.NodeID(i), topology.NodeID(i+1), 1, 1)
	}
	return g
}

func TestFloodReachesMembers(t *testing.T) {
	n := netsim.New(lineGraph(4), New(0))
	n.HostJoin(3, grp)
	seq := n.SendData(0, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

func TestFirstPacketFloodsEverywhere(t *testing.T) {
	// Ring of 6: the first packet must cross many links even with a
	// single member right next to the source.
	g := topology.New(6)
	for i := 0; i < 6; i++ {
		g.MustAddEdge(topology.NodeID(i), topology.NodeID((i+1)%6), 1, 1)
	}
	n := netsim.New(g, New(0))
	n.HostJoin(1, grp)
	n.SendData(0, grp, 100)
	n.Run()
	// Every router is reached by the truncated broadcast, so data
	// crossings far exceed the 1 link a tree would use.
	if n.Metrics.Crossings(packet.Data) < 5 {
		t.Fatalf("data crossings = %d, expected a flood", n.Metrics.Crossings(packet.Data))
	}
	if n.Metrics.Crossings(packet.DvmrpPrune) == 0 {
		t.Fatal("no prunes after flood")
	}
}

func TestPruneSuppressesSecondFlood(t *testing.T) {
	n := netsim.New(lineGraph(5), New(100 /* long prune lifetime */))
	n.HostJoin(1, grp)
	n.SendData(0, grp, 100)
	n.Run()
	first := n.Metrics.Crossings(packet.Data)
	seq := n.SendData(0, grp, 100)
	n.Run()
	second := n.Metrics.Crossings(packet.Data) - first
	if second >= first {
		t.Fatalf("second send crossed %d links, first %d: prunes ineffective", second, first)
	}
	if missing, _ := n.CheckDelivery(seq); len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestPruneExpiryRefloods(t *testing.T) {
	p := New(10) // prunes live 10 s
	n := netsim.New(lineGraph(5), p)
	n.HostJoin(1, grp)
	n.SendData(0, grp, 100)
	n.Run()
	base := n.Metrics.Crossings(packet.Data)

	// Within the lifetime: pruned.
	n.SendData(0, grp, 100)
	n.Run()
	inLife := n.Metrics.Crossings(packet.Data) - base

	// After expiry: floods again.
	expired := n.Sched.Now() + 50
	n.Sched.At(expired, func() { n.SendData(0, grp, 100) })
	n.RunUntil(expired)
	n.Run()
	afterLife := n.Metrics.Crossings(packet.Data) - base - inLife
	if afterLife <= inLife {
		t.Fatalf("after expiry crossed %d links vs %d pruned: no re-flood", afterLife, inLife)
	}
}

func TestGraftRestoresDelivery(t *testing.T) {
	p := New(1000)
	n := netsim.New(lineGraph(4), p)
	n.HostJoin(1, grp)
	n.SendData(0, grp, 100) // prunes the 2-3 tail
	n.Run()
	n.HostJoin(3, grp) // graft must reopen the pruned tail
	n.Run()
	if n.Metrics.Crossings(packet.DvmrpGraft) == 0 {
		t.Fatal("no graft sent")
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

func TestTruncatedBroadcastOnCycle(t *testing.T) {
	// Square: 0-1, 1-3, 0-2, 2-3. The truncated broadcast follows the
	// RPF tree (0->1->3 and 0->2): member 3 delivers exactly once, and
	// the dead branch through 2 prunes itself.
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 3, 1, 1)
	g.MustAddEdge(0, 2, 2, 1)
	g.MustAddEdge(2, 3, 2, 1)
	n := netsim.New(g, New(0))
	n.HostJoin(3, grp)
	seq := n.SendData(0, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	if n.Metrics.Crossings(packet.DvmrpPrune) == 0 {
		t.Fatal("non-member branch through 2 did not prune")
	}
}

func TestLeaveThenPruneLazily(t *testing.T) {
	p := New(1000)
	n := netsim.New(lineGraph(3), p)
	n.HostJoin(2, grp)
	n.SendData(0, grp, 100)
	n.Run()
	n.HostLeave(2, grp)
	n.SendData(0, grp, 100) // this packet reaches 2, which now prunes
	n.Run()
	pruneCount := n.Metrics.Crossings(packet.DvmrpPrune)
	if pruneCount == 0 {
		t.Fatal("no prune after leave")
	}
	// Prunes propagate lazily: the third packet still reaches router 1,
	// which only then notices it is a fully-pruned non-member and prunes
	// itself upstream.
	before := n.Metrics.Crossings(packet.Data)
	n.SendData(0, grp, 100)
	n.Run()
	if got := n.Metrics.Crossings(packet.Data) - before; got != 1 {
		t.Fatalf("third send crossed %d links, want 1 (lazy prune)", got)
	}
	before = n.Metrics.Crossings(packet.Data)
	n.SendData(0, grp, 100)
	n.Run()
	if got := n.Metrics.Crossings(packet.Data) - before; got != 0 {
		t.Fatalf("fourth send crossed %d links, want 0 (fully pruned)", got)
	}
}

func TestNameAndState(t *testing.T) {
	p := New(0)
	if p.Name() != "DVMRP" {
		t.Fatal("name wrong")
	}
	n := netsim.New(lineGraph(4), p)
	n.HostJoin(1, grp)
	n.SendData(0, grp, 100) // instantiates prune state at 2 and 3
	n.Run()
	if got := p.StateEntries(1); got != 1 {
		t.Fatalf("member state = %d, want 1", got)
	}
	if got := p.StateEntries(3); got == 0 {
		t.Fatal("pruned leaf holds no state")
	}
	if got := p.StateEntries(0); got != 0 {
		t.Fatalf("source state = %d, want 0", got)
	}
}

func TestGraftPropagatesThroughChain(t *testing.T) {
	// Line 0-1-2-3-4: member at 1 prunes the whole tail 2-3-4. A new
	// member at 4 must graft hop by hop back to the live tree.
	p := New(1000)
	n := netsim.New(lineGraph(5), p)
	n.HostJoin(1, grp)
	for i := 0; i < 4; i++ { // converge prunes along the tail
		n.SendData(0, grp, 100)
		n.Run()
	}
	before := n.Metrics.Crossings(packet.Data)
	n.SendData(0, grp, 100)
	n.Run()
	if got := n.Metrics.Crossings(packet.Data) - before; got != 1 {
		t.Fatalf("steady state crossings = %d, want 1", got)
	}
	n.HostJoin(4, grp)
	n.Run()
	// Grafts travelled 4 -> 3 -> 2 -> 1 (each hop had sent a prune).
	if got := n.Metrics.Crossings(packet.DvmrpGraft); got != 3 {
		t.Fatalf("graft crossings = %d, want 3", got)
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

func TestSourceOwnPacketDropped(t *testing.T) {
	// A data packet arriving back at its source is dropped (cycle guard).
	g := topology.New(3)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 0, 3, 1)
	p := New(0)
	n := netsim.New(g, p)
	n.HostJoin(1, grp)
	n.SendData(0, grp, 100)
	n.Run()
	if n.Metrics.Dropped() == 0 {
		t.Fatal("no drops recorded on the cycle")
	}
}

// Property: on random topologies with random members, every member
// receives every packet exactly once, whatever the prune state.
func TestPropertyDVMRPDelivery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(15, 3), rng)
		if err != nil {
			return false
		}
		n := netsim.New(g, New(5))
		src := topology.NodeID(rng.Intn(g.N()))
		members := map[topology.NodeID]bool{}
		for _, v := range rng.Perm(g.N())[:5] {
			n.HostJoin(topology.NodeID(v), grp)
			members[topology.NodeID(v)] = true
		}
		for i := 0; i < 4; i++ {
			seq := n.SendData(src, grp, 100)
			n.Run()
			missing, anomalous := n.CheckDelivery(seq)
			if len(missing) != 0 || len(anomalous) != 0 {
				t.Logf("seed %d round %d: missing=%v anomalous=%v", seed, i, missing, anomalous)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
