// Package dvmrp implements the Distance-Vector Multicast Routing
// Protocol baseline: flood-and-prune source-based shortest-path trees.
//
// Data packets are flooded from the source as a truncated broadcast
// filtered by reverse-path forwarding (RPF). Routers with no members and
// no unpruned downstream send PRUNE upstream; prune state expires after
// PruneLifetime, after which data floods the domain again — the behaviour
// behind DVMRP's dominant data overhead in the paper's Fig. 8 ("DVMRP
// floods the packets frequently when it starts to construct the tree or
// the timer in a leaf router is expired"). GRAFT messages un-prune a
// branch when a pruned router gains a member.
package dvmrp

import (
	"sort"

	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// DefaultPruneLifetime is the prune-state timeout. Real DVMRP defaults
// to around two hours; evaluations (the paper included) use a few
// seconds so that periodic re-flooding shows up within a 30 s run.
const DefaultPruneLifetime des.Time = 10

type pruneKey struct {
	node, src, child topology.NodeID
	group            packet.GroupID
}

type stateKey struct {
	node, src topology.NodeID
	group     packet.GroupID
}

// DVMRP is a protocol instance for one domain.
type DVMRP struct {
	net           *netsim.Network
	PruneLifetime des.Time

	localMembers map[topology.NodeID]map[packet.GroupID]bool
	// prunes[node, src, g, child] = expiry of the prune the child sent us.
	prunes map[pruneKey]des.Time
	// sentPrune marks that (node) pruned itself upstream for (src, g);
	// a later member join must graft.
	sentPrune map[stateKey]bool
}

var _ netsim.Protocol = (*DVMRP)(nil)

// New returns a DVMRP instance. pruneLifetime <= 0 selects the default.
func New(pruneLifetime des.Time) *DVMRP {
	if pruneLifetime <= 0 {
		pruneLifetime = DefaultPruneLifetime
	}
	return &DVMRP{
		PruneLifetime: pruneLifetime,
		localMembers:  make(map[topology.NodeID]map[packet.GroupID]bool),
		prunes:        make(map[pruneKey]des.Time),
		sentPrune:     make(map[stateKey]bool),
	}
}

// Name implements netsim.Protocol.
func (d *DVMRP) Name() string { return "DVMRP" }

// StateEntries returns the number of (source, group) pairs the router
// holds state for — prune timers, sent-prune markers — plus its local
// membership records. DVMRP state is per (source, group): the
// scalability cost the paper charges SPT-based protocols with.
func (d *DVMRP) StateEntries(node topology.NodeID) int {
	pairs := map[stateKey]bool{}
	for k := range d.prunes {
		if k.node == node {
			pairs[stateKey{node, k.src, k.group}] = true
		}
	}
	for k := range d.sentPrune {
		if k.node == node {
			pairs[k] = true
		}
	}
	return len(pairs) + len(d.localMembers[node])
}

// Attach implements netsim.Protocol.
func (d *DVMRP) Attach(n *netsim.Network) { d.net = n }

// HostJoin implements netsim.Protocol: record local membership and graft
// any branch this router had pruned.
func (d *DVMRP) HostJoin(node topology.NodeID, g packet.GroupID) {
	if d.localMembers[node] == nil {
		d.localMembers[node] = make(map[packet.GroupID]bool)
	}
	d.localMembers[node][g] = true
	var srcs []topology.NodeID
	for key := range d.sentPrune {
		if key.node == node && key.group == g {
			srcs = append(srcs, key.src)
		}
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		delete(d.sentPrune, stateKey{node, src, g})
		d.sendGraft(node, src, g)
	}
}

// HostLeave implements netsim.Protocol. Pruning happens lazily on the
// next data packet.
func (d *DVMRP) HostLeave(node topology.NodeID, g packet.GroupID) {
	delete(d.localMembers[node], g)
}

func (d *DVMRP) isMember(node topology.NodeID, g packet.GroupID) bool {
	return d.localMembers[node][g]
}

// rpfNeighbor returns the neighbor a packet from src must arrive on.
func (d *DVMRP) rpfNeighbor(node, src topology.NodeID) topology.NodeID {
	return d.net.Next.Hop(node, src)
}

// downstreamNeighbors returns the links to flood on: every neighbor
// except the RPF upstream, minus links with live prune state. Classic
// dense-mode flooding forwards on all non-incoming interfaces and lets
// receivers prune back — both non-RPF cross links and memberless
// branches — which is exactly the bandwidth waste the paper charges
// DVMRP with ("adopting DVMRP wastes a large portion of the network
// bandwidth due to flooding").
func (d *DVMRP) downstreamNeighbors(node, src topology.NodeID, g packet.GroupID) []topology.NodeID {
	up := d.rpfNeighbor(node, src)
	now := d.net.Now()
	var out []topology.NodeID
	for _, l := range d.net.G.Neighbors(node) {
		if l.To == up || l.To == src {
			continue
		}
		if exp, ok := d.prunes[pruneKey{node, src, l.To, g}]; ok && exp > now {
			continue
		}
		out = append(out, l.To)
	}
	return out
}

// SendData implements netsim.Protocol: the source floods to every
// unpruned neighbor.
func (d *DVMRP) SendData(src topology.NodeID, g packet.GroupID, size int, seq uint64) {
	pkt := &netsim.Packet{
		Kind: packet.Data, Group: g, Src: src, Seq: seq, Size: size,
		Created: d.net.Now(),
	}
	for _, c := range d.downstreamNeighbors(src, src, g) {
		d.net.SendLink(src, c, pkt)
	}
}

// HandlePacket implements netsim.Protocol.
func (d *DVMRP) HandlePacket(node topology.NodeID, pkt *netsim.Packet) {
	switch pkt.Kind {
	case packet.Data:
		d.handleData(node, pkt)
	case packet.DvmrpPrune:
		d.prunes[pruneKey{node, pkt.Src, pkt.From, pkt.Group}] = d.net.Now() + d.PruneLifetime
	case packet.DvmrpGraft:
		d.handleGraft(node, pkt)
	}
}

func (d *DVMRP) handleData(node topology.NodeID, pkt *netsim.Packet) {
	src := pkt.Src
	if node == src {
		d.net.DropData(node)
		return
	}
	if pkt.From != d.rpfNeighbor(node, src) {
		// Not on the reverse shortest path: the flood copy dies here,
		// and the useless cross link is pruned so later packets skip it.
		d.net.DropData(node)
		d.net.SendLink(node, pkt.From, &netsim.Packet{
			Kind: packet.DvmrpPrune, Group: pkt.Group, Src: src, Size: packet.ControlSize,
		})
		return
	}
	if d.isMember(node, pkt.Group) {
		d.net.DeliverLocal(node, pkt)
	}
	children := d.downstreamNeighbors(node, src, pkt.Group)
	if len(children) == 0 && !d.isMember(node, pkt.Group) {
		// Leaf with nothing below: prune upstream.
		d.sendPrune(node, src, pkt.Group)
		return
	}
	for _, c := range children {
		d.net.SendLink(node, c, pkt)
	}
}

func (d *DVMRP) sendPrune(node, src topology.NodeID, g packet.GroupID) {
	d.sentPrune[stateKey{node, src, g}] = true
	up := d.rpfNeighbor(node, src)
	if up == -1 {
		return
	}
	d.net.SendLink(node, up, &netsim.Packet{
		Kind: packet.DvmrpPrune, Group: g, Src: src, Size: packet.ControlSize,
	})
}

func (d *DVMRP) sendGraft(node, src topology.NodeID, g packet.GroupID) {
	up := d.rpfNeighbor(node, src)
	if up == -1 {
		return
	}
	d.net.SendLink(node, up, &netsim.Packet{
		Kind: packet.DvmrpGraft, Group: g, Src: src, Size: packet.ControlSize,
	})
}

func (d *DVMRP) handleGraft(node topology.NodeID, pkt *netsim.Packet) {
	delete(d.prunes, pruneKey{node, pkt.Src, pkt.From, pkt.Group})
	// If this router had pruned itself upstream, the graft must continue
	// toward the source.
	key := stateKey{node, pkt.Src, pkt.Group}
	if d.sentPrune[key] {
		delete(d.sentPrune, key)
		d.sendGraft(node, pkt.Src, pkt.Group)
	}
}
