package cbt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

const grp packet.GroupID = 1

func lineGraph(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(topology.NodeID(i), topology.NodeID(i+1), 1, 1)
	}
	return g
}

func TestJoinBuildsBranchToCore(t *testing.T) {
	c := New(0)
	n := netsim.New(lineGraph(4), c)
	n.HostJoin(3, grp)
	n.Run()
	// Join travelled 3 hops to the core, ack 3 hops back.
	if got := n.Metrics.Crossings(packet.CbtJoin); got != 3 {
		t.Fatalf("JOIN crossings = %d, want 3", got)
	}
	if got := n.Metrics.Crossings(packet.CbtJoinAck); got != 3 {
		t.Fatalf("ACK crossings = %d, want 3", got)
	}
	for _, v := range []topology.NodeID{1, 2, 3} {
		if !c.onTree(v, grp) {
			t.Fatalf("router %d not on tree", v)
		}
	}
	e := c.entry(3, grp)
	if !e.hasLocal || e.upstream != 2 {
		t.Fatalf("entry(3) = %+v", e)
	}
}

func TestSecondJoinInterceptedByOnTreeRouter(t *testing.T) {
	// Y shape: core 0 - 1 - 2 (member), and 1 - 3 (joins second).
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(1, 3, 1, 1)
	c := New(0)
	n := netsim.New(g, c)
	n.HostJoin(2, grp)
	n.Run()
	joins := n.Metrics.Crossings(packet.CbtJoin)
	acks := n.Metrics.Crossings(packet.CbtJoinAck)
	n.HostJoin(3, grp)
	n.Run()
	// 3's join is intercepted at on-tree router 1: one join hop, one ack
	// hop — the ack comes from the graft node, not the core.
	if got := n.Metrics.Crossings(packet.CbtJoin) - joins; got != 1 {
		t.Fatalf("second JOIN crossings = %d, want 1 (intercepted)", got)
	}
	if got := n.Metrics.Crossings(packet.CbtJoinAck) - acks; got != 1 {
		t.Fatalf("second ACK crossings = %d, want 1", got)
	}
}

func TestDataBidirectional(t *testing.T) {
	c := New(0)
	n := netsim.New(lineGraph(4), c)
	n.HostJoin(1, grp)
	n.HostJoin(3, grp)
	n.Run()
	// Member 3 sends: data climbs 3->2->1 and stops (1 delivers, nothing
	// above 1 needs it — but CBT forwards to the core too, since 1's
	// upstream is still on the tree).
	seq := n.SendData(3, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	if n.Metrics.Crossings(packet.EncapData) != 0 {
		t.Fatal("on-tree member must not encapsulate")
	}
}

func TestOffTreeSourceEncapsulatesToCore(t *testing.T) {
	// Y: core 0 - 1 - 2 (member); source 3 hangs off 0 and is off-tree.
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(0, 3, 1, 1)
	c := New(0)
	n := netsim.New(g, c)
	n.HostJoin(2, grp)
	n.Run()
	seq := n.SendData(3, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	if n.Metrics.Crossings(packet.EncapData) != 1 {
		t.Fatalf("EncapData crossings = %d, want 1", n.Metrics.Crossings(packet.EncapData))
	}
}

func TestQuitTearsDownBranch(t *testing.T) {
	c := New(0)
	n := netsim.New(lineGraph(4), c)
	n.HostJoin(3, grp)
	n.Run()
	n.HostLeave(3, grp)
	n.Run()
	for _, v := range []topology.NodeID{1, 2, 3} {
		if c.onTree(v, grp) {
			t.Fatalf("router %d still on tree after quit", v)
		}
	}
	if got := n.Metrics.Crossings(packet.CbtQuit); got != 3 {
		t.Fatalf("QUIT crossings = %d, want 3", got)
	}
}

func TestQuitStopsAtFork(t *testing.T) {
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(1, 3, 1, 1)
	c := New(0)
	n := netsim.New(g, c)
	n.HostJoin(2, grp)
	n.HostJoin(3, grp)
	n.Run()
	n.HostLeave(3, grp)
	n.Run()
	if c.onTree(3, grp) {
		t.Fatal("3 still on tree")
	}
	if !c.onTree(1, grp) || !c.onTree(2, grp) {
		t.Fatal("surviving branch torn down")
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	if missing, _ := n.CheckDelivery(seq); len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestCoreAsMember(t *testing.T) {
	c := New(0)
	n := netsim.New(lineGraph(3), c)
	n.HostJoin(0, grp)
	n.HostJoin(2, grp)
	n.Run()
	seq := n.SendData(2, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

// Property: random membership with quiescence, then data from random
// sources reaches every member exactly once.
func TestPropertyCBTDelivery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(15, 3), rng)
		if err != nil {
			return false
		}
		n := netsim.New(g, New(0))
		members := map[topology.NodeID]bool{}
		for op := 0; op < 20; op++ {
			v := topology.NodeID(rng.Intn(g.N()))
			if members[v] {
				n.HostLeave(v, grp)
				delete(members, v)
			} else {
				n.HostJoin(v, grp)
				members[v] = true
			}
			n.Run()
			if len(members) == 0 {
				continue
			}
			src := topology.NodeID(rng.Intn(g.N()))
			seq := n.SendData(src, grp, 100)
			n.Run()
			missing, anomalous := n.CheckDelivery(seq)
			if len(missing) != 0 || len(anomalous) != 0 {
				t.Logf("seed %d op %d src %d: missing=%v anomalous=%v", seed, op, src, missing, anomalous)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
