// Package cbt implements the Core-Based Tree baseline: a single shared
// bi-directional tree per group rooted at a core router.
//
// A designated router joining a group sends a JOIN hop-by-hop along the
// unicast route toward the core; the first on-tree router (or the core)
// intercepts it and returns a JOIN-ACK along the reverse path,
// instantiating forwarding state hop by hop — this is why CBT's join
// overhead is slightly below SCMP's in the paper's Fig. 8: "CBT only
// needs to send an acknowledgement packet from the graft node to the
// newly joining node, while SCMP always needs to send a BRANCH packet
// from the m-router all the way down". Leaves send QUIT upstream.
// Off-tree sources unicast-encapsulate data to the core. (The paper
// does not simulate core election; neither do we.)
package cbt

import (
	"fmt"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

const noUpstream topology.NodeID = -1

type entry struct {
	onTree       bool
	upstream     topology.NodeID
	downstream   map[topology.NodeID]bool
	hasLocal     bool
	pendingLocal bool
}

func newEntry() *entry {
	return &entry{upstream: noUpstream, downstream: make(map[topology.NodeID]bool)}
}

// CBT is a protocol instance for one domain.
type CBT struct {
	net     *netsim.Network
	core    topology.NodeID
	entries map[topology.NodeID]map[packet.GroupID]*entry
}

var _ netsim.Protocol = (*CBT)(nil)

// New returns a CBT instance with the given core router.
func New(core topology.NodeID) *CBT {
	return &CBT{
		core:    core,
		entries: make(map[topology.NodeID]map[packet.GroupID]*entry),
	}
}

// Name implements netsim.Protocol.
func (c *CBT) Name() string { return "CBT" }

// Attach implements netsim.Protocol.
func (c *CBT) Attach(n *netsim.Network) {
	if c.core < 0 || int(c.core) >= n.G.N() {
		panic(fmt.Sprintf("cbt: core %d out of range", c.core))
	}
	c.net = n
}

// Core returns the core router's node id.
func (c *CBT) Core() topology.NodeID { return c.core }

// Upstream reports node's parent on g's shared tree; ok is false when
// the node is off the tree or is the core (which has no upstream).
func (c *CBT) Upstream(node topology.NodeID, g packet.GroupID) (topology.NodeID, bool) {
	e := c.peekEntry(node, g)
	if e == nil || !e.onTree || e.upstream == noUpstream {
		return -1, false
	}
	return e.upstream, true
}

// StateEntries returns the number of live routing entries a router
// holds — one per group, like SCMP: shared-tree state is independent of
// source count.
func (c *CBT) StateEntries(node topology.NodeID) int {
	count := 0
	for _, e := range c.entries[node] {
		if e.onTree || e.hasLocal || e.pendingLocal {
			count++
		}
	}
	return count
}

func (c *CBT) entry(node topology.NodeID, g packet.GroupID) *entry {
	byGroup := c.entries[node]
	if byGroup == nil {
		byGroup = make(map[packet.GroupID]*entry)
		c.entries[node] = byGroup
	}
	e := byGroup[g]
	if e == nil {
		e = newEntry()
		byGroup[g] = e
	}
	return e
}

func (c *CBT) peekEntry(node topology.NodeID, g packet.GroupID) *entry {
	return c.entries[node][g]
}

// onTree reports whether node has live tree state for g; the core is
// always implicitly on the tree.
func (c *CBT) onTree(node topology.NodeID, g packet.GroupID) bool {
	if node == c.core {
		return true
	}
	e := c.peekEntry(node, g)
	return e != nil && e.onTree
}

// --- membership ----------------------------------------------------------

// HostJoin implements netsim.Protocol.
func (c *CBT) HostJoin(node topology.NodeID, g packet.GroupID) {
	e := c.entry(node, g)
	if node == c.core || e.onTree {
		e.onTree = true
		e.hasLocal = true
		return
	}
	e.pendingLocal = true
	// Hop-by-hop JOIN toward the core; the payload accumulates the path
	// so the ACK can retrace it.
	c.forwardJoin(node, node, g, []topology.NodeID{node})
}

// forwardJoin advances a JOIN one hop toward the core. path holds the
// routers traversed so far, joining DR first.
func (c *CBT) forwardJoin(at, origin topology.NodeID, g packet.GroupID, path []topology.NodeID) {
	nh := c.net.Next.Hop(at, c.core)
	if nh == -1 {
		return // partitioned: join dies
	}
	c.net.SendLink(at, nh, &netsim.Packet{
		Kind:    packet.CbtJoin,
		Group:   g,
		Src:     origin,
		Payload: packet.EncodeBranch(append(append([]topology.NodeID(nil), path...), nh)),
		Size:    packet.ControlSize + 4*len(path),
	})
}

func (c *CBT) handleJoin(node topology.NodeID, pkt *netsim.Packet) {
	path, err := packet.DecodeBranch(pkt.Payload)
	if err != nil || len(path) < 2 || path[len(path)-1] != node {
		return
	}
	if c.onTree(node, pkt.Group) {
		// Graft point found: this router adds the previous hop as a
		// child and acks back down the recorded path.
		e := c.entry(node, pkt.Group)
		e.onTree = true
		prev := path[len(path)-2]
		e.downstream[prev] = true
		c.sendAck(node, prev, pkt.Group, path[:len(path)-1])
		return
	}
	// Keep heading for the core.
	c.forwardJoin(node, pkt.Src, pkt.Group, path)
}

// sendAck sends a JOIN-ACK from node to child; remaining is the path
// suffix still to be confirmed (ending at the child, joining DR first).
func (c *CBT) sendAck(node, child topology.NodeID, g packet.GroupID, remaining []topology.NodeID) {
	c.net.SendLink(node, child, &netsim.Packet{
		Kind:    packet.CbtJoinAck,
		Group:   g,
		Payload: packet.EncodeBranch(remaining),
		Size:    packet.ControlSize,
	})
}

func (c *CBT) handleAck(node topology.NodeID, pkt *netsim.Packet) {
	path, err := packet.DecodeBranch(pkt.Payload)
	if err != nil || len(path) == 0 || path[len(path)-1] != node {
		return
	}
	e := c.entry(node, pkt.Group)
	e.onTree = true
	e.upstream = pkt.From
	if len(path) == 1 {
		// The joining DR.
		if e.pendingLocal {
			e.pendingLocal = false
			e.hasLocal = true
		}
		return
	}
	next := path[len(path)-2]
	e.downstream[next] = true
	c.sendAck(node, next, pkt.Group, path[:len(path)-1])
}

// HostLeave implements netsim.Protocol.
func (c *CBT) HostLeave(node topology.NodeID, g packet.GroupID) {
	e := c.peekEntry(node, g)
	if e == nil {
		return
	}
	e.hasLocal = false
	e.pendingLocal = false
	if node != c.core && e.onTree && len(e.downstream) == 0 {
		c.sendQuit(node, g, e)
	}
}

func (c *CBT) sendQuit(node topology.NodeID, g packet.GroupID, e *entry) {
	up := e.upstream
	e.onTree = false
	e.upstream = noUpstream
	if up == noUpstream {
		return
	}
	c.net.SendLink(node, up, &netsim.Packet{
		Kind: packet.CbtQuit, Group: g, Src: node, Size: packet.ControlSize,
	})
}

func (c *CBT) handleQuit(node topology.NodeID, pkt *netsim.Packet) {
	e := c.peekEntry(node, pkt.Group)
	if e == nil || !e.onTree && node != c.core {
		return
	}
	delete(e.downstream, pkt.From)
	if node != c.core && len(e.downstream) == 0 && !e.hasLocal && !e.pendingLocal {
		c.sendQuit(node, pkt.Group, e)
	}
}

// --- data ------------------------------------------------------------------

// SendData implements netsim.Protocol: on-tree sources use the shared
// bi-directional tree; off-tree sources encapsulate to the core.
func (c *CBT) SendData(src topology.NodeID, g packet.GroupID, size int, seq uint64) {
	pkt := &netsim.Packet{
		Kind: packet.Data, Group: g, Src: src, Seq: seq, Size: size,
		Created: c.net.Now(),
	}
	if c.onTree(src, g) {
		e := c.entry(src, g)
		c.forwardOnTree(src, e, pkt, src)
		return
	}
	enc := *pkt
	enc.Kind = packet.EncapData
	enc.Dst = c.core
	enc.Size = size + 20
	c.net.SendUnicast(src, &enc)
}

func (c *CBT) forwardOnTree(node topology.NodeID, e *entry, pkt *netsim.Packet, except topology.NodeID) {
	if e.upstream != noUpstream && e.upstream != except {
		c.net.SendLink(node, e.upstream, pkt)
	}
	for _, d := range topology.SortedNodes(e.downstream) {
		if d != except {
			c.net.SendLink(node, d, pkt)
		}
	}
}

func (c *CBT) handleData(node topology.NodeID, pkt *netsim.Packet) {
	if !c.onTree(node, pkt.Group) {
		c.net.DropData(node)
		return
	}
	e := c.entry(node, pkt.Group)
	fromUpstream := pkt.From == e.upstream
	fromDownstream := e.downstream[pkt.From]
	if !fromUpstream && !fromDownstream {
		c.net.DropData(node)
		return
	}
	c.forwardOnTree(node, e, pkt, pkt.From)
	if e.hasLocal {
		c.net.DeliverLocal(node, pkt)
	}
}

func (c *CBT) handleEncap(node topology.NodeID, pkt *netsim.Packet) {
	if node != c.core {
		return
	}
	e := c.entry(node, pkt.Group)
	e.onTree = true
	data := *pkt
	data.Kind = packet.Data
	data.Size = pkt.Size - 20
	c.forwardOnTree(node, e, &data, node)
	if e.hasLocal {
		c.net.DeliverLocal(node, &data)
	}
}

// HandlePacket implements netsim.Protocol.
func (c *CBT) HandlePacket(node topology.NodeID, pkt *netsim.Packet) {
	switch pkt.Kind {
	case packet.CbtJoin:
		c.handleJoin(node, pkt)
	case packet.CbtJoinAck:
		c.handleAck(node, pkt)
	case packet.CbtQuit:
		c.handleQuit(node, pkt)
	case packet.Data:
		c.handleData(node, pkt)
	case packet.EncapData:
		c.handleEncap(node, pkt)
	}
}
