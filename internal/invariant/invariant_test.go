package invariant

import (
	"strings"
	"testing"

	"scmp/internal/fabric"
	"scmp/internal/mtree"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// lineGraph is 0-1-2-3-4 with unit delays, plus the triangle edges
// 1-2-5-1 some corrupt trees need.
func lineGraph() *topology.Graph {
	g := topology.New(6)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	g.MustAddEdge(3, 4, 1, 1)
	g.MustAddEdge(2, 5, 1, 1)
	g.MustAddEdge(5, 1, 1, 1)
	return g
}

type n = topology.NodeID

func TestCheckTree(t *testing.T) {
	cases := []struct {
		name    string
		root    n // tree's actual root; spec.Root unless overridden
		parents map[n]n
		members []n
		spec    TreeSpec
		wantErr string // "" = tree must be accepted
	}{
		{
			name:    "good tree",
			parents: map[n]n{1: 0, 2: 1, 3: 2},
			members: []n{3},
			spec:    TreeSpec{Root: 0, DelayBound: 5},
		},
		{
			name:    "good tree, zero bound skips delay check",
			parents: map[n]n{1: 0, 2: 1, 3: 2},
			members: []n{3},
			spec:    TreeSpec{Root: 0},
		},
		{
			name:    "wrong root",
			root:    0,
			parents: map[n]n{1: 0},
			members: []n{1},
			spec:    TreeSpec{Root: 2},
			wantErr: "rooted at",
		},
		{
			name: "cycle",
			// 1→2→5→1 is a parent cycle disconnected from root 0.
			parents: map[n]n{1: 2, 2: 5, 5: 1, 3: 2},
			members: []n{3},
			spec:    TreeSpec{Root: 0},
			wantErr: "cycle",
		},
		{
			name: "orphaned branch",
			// 3's chain climbs to 2, which has no parent and is not root.
			parents: map[n]n{1: 0, 3: 2},
			members: []n{1, 3},
			spec:    TreeSpec{Root: 0},
			wantErr: "orphaned branch",
		},
		{
			name: "phantom edge",
			// 0-3 is not a link in the topology.
			parents: map[n]n{3: 0},
			members: []n{3},
			spec:    TreeSpec{Root: 0},
			wantErr: "not a link",
		},
		{
			name:    "member off tree",
			parents: map[n]n{1: 0},
			members: []n{1, 4},
			spec:    TreeSpec{Root: 0},
			wantErr: "off the tree",
		},
		{
			name:    "unpruned non-member leaf",
			parents: map[n]n{1: 0, 2: 1},
			members: []n{1},
			spec:    TreeSpec{Root: 0},
			wantErr: "unpruned branch",
		},
		{
			name:    "delay bound violated",
			parents: map[n]n{1: 0, 2: 1, 3: 2, 4: 3},
			members: []n{4}, // delay 4 over unit links
			spec:    TreeSpec{Root: 0, DelayBound: 2.5},
			wantErr: "exceeds bound",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := tc.spec.Root
			if tc.wantErr == "rooted at" {
				root = tc.root
			}
			tree := mtree.Rebuild(lineGraph(), root, tc.parents, tc.members)
			err := CheckTree(tree, tc.spec)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("CheckTree rejected a good tree: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("CheckTree accepted a bad tree, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckTree error = %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestCheckTreeMatchesDCDM pins the checker to the protocol's own
// output: trees DCDM grows must always be accepted, with the bound DCDM
// reports at join time.
func TestCheckTreeMatchesDCDM(t *testing.T) {
	d := mtree.NewDCDM(lineGraph(), 0, 1.5, nil, nil)
	for _, m := range []n{3, 4, 5} {
		d.Join(m)
		if err := CheckTree(d.Tree(), TreeSpec{Root: 0, DelayBound: d.Bound()}); err != nil {
			t.Fatalf("DCDM tree rejected after Join(%d): %v", m, err)
		}
	}
	d.Leave(4)
	if err := CheckTree(d.Tree(), TreeSpec{Root: 0}); err != nil {
		t.Fatalf("DCDM tree rejected after Leave(4): %v", err)
	}
}

func TestCheckFabric(t *testing.T) {
	f, err := fabric.New(8)
	if err != nil {
		t.Fatal(err)
	}
	groups := map[packet.GroupID]fabric.GroupConn{
		1: {Inputs: []int{0, 4, 6}, Output: 2},
		2: {Inputs: []int{1, 3}, Output: 5},
	}
	cfg, err := f.Configure(groups)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFabric(cfg); err != nil {
		t.Fatalf("CheckFabric rejected a freshly routed configuration: %v", err)
	}

	// A cross-group connection — group 1's run relabelled as group 2's —
	// must be rejected with an error naming the collision.
	cfg.Tamper(0, 2)
	err = CheckFabric(cfg)
	if err == nil {
		t.Fatal("CheckFabric accepted a cross-group connection")
	}
	if !strings.Contains(err.Error(), "group") {
		t.Fatalf("CheckFabric error = %q, want it to name the groups involved", err)
	}
}
