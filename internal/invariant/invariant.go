// Package invariant is the runtime safety net for the properties the
// simulator's results rest on: every committed multicast tree is a real
// tree (acyclic, connected, rooted at the m-router's home node, with
// symmetric parent/child pointers over existing links) that serves every
// member within its delay bound, and the m-router's switching fabric
// keeps concurrent groups isolated.
//
// The checks run in two places. Tests call CheckTree / CheckFabric
// directly on known-good and deliberately corrupted structures. The
// simulator hot path calls them through no-op hooks that the
// "invariants" build tag turns on (`go test -tags invariants ./...`):
// core re-checks each tree as it commits at the m-router, mtree
// re-validates after every DCDM Join/Leave, and fabric verifies each
// routed configuration. A violation panics — by construction it means a
// protocol bug, not bad input — so a tagged run fails loudly at the
// first corrupt commit instead of producing subtly wrong figures.
//
// Everything here goes through the checked packages' public read-only
// APIs, so the checker cannot itself disturb the state it is examining.
package invariant

import (
	"fmt"
	"sort"

	"scmp/internal/fabric"
	"scmp/internal/mtree"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// TreeSpec is what a committed tree promises to be.
type TreeSpec struct {
	// Root is the node the tree must be rooted at: the active m-router's
	// home node.
	Root topology.NodeID
	// DelayBound, when positive, is the maximum root-to-member delay any
	// member may experience. Zero skips the delay check: DCDM's bound
	// shrinks when the farthest member leaves without restructuring the
	// survivors, so a bound is only enforceable where the caller knows
	// one holds (joins, fresh trees).
	DelayBound float64
}

// CheckTree validates t against spec. It returns nil for a well-formed
// tree and a descriptive error naming the first violated invariant
// otherwise. The checks are ordered so that structural soundness
// (acyclicity, connectivity) is established before anything that walks
// parent chains unguarded (delay computation).
func CheckTree(t *mtree.Tree, spec TreeSpec) error {
	root := t.Root()
	if root != spec.Root {
		return fmt.Errorf("invariant: tree rooted at %d, want m-router home %d", root, spec.Root)
	}
	g := t.Graph()
	nodes := t.Nodes()

	// Acyclic and connected: every on-tree node's parent chain must
	// reach the root without revisiting a node, over edges that exist.
	for _, v := range nodes {
		seen := map[topology.NodeID]bool{v: true}
		for cur := v; cur != root; {
			p, ok := t.Parent(cur)
			if !ok {
				return fmt.Errorf("invariant: orphaned branch — %d's parent chain dead-ends at %d, never reaching root %d", v, cur, root)
			}
			if _, exists := g.Edge(cur, p); !exists {
				return fmt.Errorf("invariant: tree edge %d-%d is not a link in the topology", cur, p)
			}
			if seen[p] {
				return fmt.Errorf("invariant: cycle — %d's parent chain revisits %d", v, p)
			}
			seen[p] = true
			cur = p
		}
	}

	// Parent/child pointer symmetry, both directions.
	for _, v := range nodes {
		for _, c := range t.Children(v) {
			if p, ok := t.Parent(c); !ok || p != v {
				return fmt.Errorf("invariant: asymmetric pointers — %d lists child %d, but %d's parent is not %d", v, c, c, v)
			}
		}
		if v == root {
			continue
		}
		p, _ := t.Parent(v)
		symmetric := false
		for _, c := range t.Children(p) {
			if c == v {
				symmetric = true
				break
			}
		}
		if !symmetric {
			return fmt.Errorf("invariant: asymmetric pointers — %d's parent is %d, but %d does not list it as a child", v, p, p)
		}
	}

	// Membership: every member is on the tree, and — the tree being
	// minimal — every leaf is a member (a non-member leaf is a branch
	// the protocol failed to prune).
	for _, m := range t.Members() {
		if !t.OnTree(m) {
			return fmt.Errorf("invariant: member %d is off the tree", m)
		}
	}
	for _, v := range nodes {
		if v != root && len(t.Children(v)) == 0 && !t.IsMember(v) {
			return fmt.Errorf("invariant: unpruned branch — leaf %d is not a member", v)
		}
	}

	// Delay bound (structure already proven acyclic, so Delay's parent
	// walk terminates).
	if spec.DelayBound > 0 {
		for _, m := range t.Members() {
			if d := t.Delay(m); d > spec.DelayBound {
				return fmt.Errorf("invariant: member %d delay %.4f exceeds bound %.4f", m, d, spec.DelayBound)
			}
		}
	}
	return nil
}

// CheckFabric validates a routed fabric configuration's group-isolation
// property: every input a group claims routes to that group's output
// and is labelled with that group's id, no output serves two groups,
// and inputs no group claims route nowhere. The structural half lives
// in (*fabric.Configuration).Verify — fabric cannot import this package
// — and this wrapper cross-checks the routed paths through the public
// Route API so a corrupted switch setting is caught even if the
// configuration's own bookkeeping still looks consistent.
func CheckFabric(c *fabric.Configuration) error {
	if err := c.Verify(); err != nil {
		return fmt.Errorf("invariant: %w", err)
	}
	groups := c.Groups()
	gids := make([]int, 0, len(groups))
	for gid := range groups {
		gids = append(gids, int(gid))
	}
	sort.Ints(gids)
	claimed := make(map[int]bool)
	for _, id := range gids {
		gid := packet.GroupID(id)
		gc := groups[gid]
		for _, in := range gc.Inputs {
			claimed[in] = true
			out, got, ok := c.Route(in)
			if !ok {
				return fmt.Errorf("invariant: group %d input %d routes nowhere", gid, in)
			}
			if got != gid {
				return fmt.Errorf("invariant: cross-group connection — group %d input %d carries group %d's label", gid, in, got)
			}
			if out != gc.Output {
				return fmt.Errorf("invariant: cross-group connection — group %d input %d lands on output %d, want %d", gid, in, out, gc.Output)
			}
		}
	}
	for in := 0; in < c.N(); in++ {
		if claimed[in] {
			continue
		}
		if _, gid, ok := c.Route(in); ok {
			return fmt.Errorf("invariant: idle input %d routes as group %d", in, gid)
		}
	}
	return nil
}

// CheckEventSlot validates one pooled DES event at dispatch time,
// guarding the free-list recycling scheme the zero-allocation scheduler
// rests on (DESIGN.md §10). entryGen is the generation stamped into the
// heap entry when the slot was enqueued; slotGen is the slot's current
// generation; at and now are the event's firing time and the clock
// before dispatch. The parameters are primitives because the DES sits
// below this package in the import graph — its invariants hook passes
// the fields, not the types.
//
// A generation mismatch at the head of the heap means a slot was
// recycled while a heap entry still pointed at it — the use-after-free
// this scheme exists to make impossible: a recycled slot's payload
// belongs to a different, later event, so dispatching it would fire a
// cancelled (or already-fired) callback with another event's arguments.
// Time running backwards means the heap order itself broke.
func CheckEventSlot(entryGen, slotGen uint32, at, now float64) error {
	if entryGen != slotGen {
		return fmt.Errorf("invariant: DES slot recycled under a queued event (entry gen %d, slot gen %d)", entryGen, slotGen)
	}
	if at < now {
		return fmt.Errorf("invariant: DES dispatch would run time backwards (event at %g, clock %g)", at, now)
	}
	return nil
}
