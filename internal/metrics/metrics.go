// Package metrics accumulates the paper's three network-wide metrics
// (§IV-B): data overhead and protocol overhead, both measured in
// link-cost units per packet-link crossing, and maximum end-to-end
// delay over delivered data packets. Byte counters and per-kind packet
// counts are kept as supplementary detail.
package metrics

import (
	"sort"

	"scmp/internal/packet"
	"scmp/internal/topology"
)

// LinkID identifies an undirected link by its normalised endpoints.
type LinkID struct{ A, B topology.NodeID }

// MkLinkID normalises endpoints so both directions map to one link.
func MkLinkID(u, v topology.NodeID) LinkID {
	if u > v {
		u, v = v, u
	}
	return LinkID{u, v}
}

// Collector accumulates one simulation run's metrics. The zero value is
// ready to use.
type Collector struct {
	dataUnits  float64
	protoUnits float64
	dataBytes  int64
	protoBytes int64
	crossings  map[packet.Kind]int64
	linkLoad   map[LinkID]int64

	delivered int64
	dropped   int64 // data-class packets discarded
	ctlDrops  int64 // control-class packets discarded or lost
	dropsKind map[packet.Kind]int64
	delaySum  float64
	maxDelay  float64

	recoveries  int64
	recoverySum float64
	recoveryMax float64
}

// OnLink records one packet of the given kind and byte size crossing
// the link {from,to} of the given cost.
func (c *Collector) OnLink(from, to topology.NodeID, kind packet.Kind, cost float64, bytes int) {
	if c.crossings == nil {
		c.crossings = make(map[packet.Kind]int64)
	}
	if c.linkLoad == nil {
		c.linkLoad = make(map[LinkID]int64)
	}
	c.crossings[kind]++
	c.linkLoad[MkLinkID(from, to)]++
	if packet.ClassOf(kind) == packet.ClassData {
		c.dataUnits += cost
		c.dataBytes += int64(bytes)
	} else {
		c.protoUnits += cost
		c.protoBytes += int64(bytes)
	}
}

// OnDeliver records a data packet reaching one group member with the
// given end-to-end delay.
func (c *Collector) OnDeliver(delay float64) {
	c.delivered++
	c.delaySum += delay
	if delay > c.maxDelay {
		c.maxDelay = delay
	}
}

// OnDrop records a packet of the given kind discarded before reaching
// its destination — an RPF failure or off-tree arrival for data, a
// lossy or dead link for any class. Data-class and control-class
// drops accumulate separately (a lost TREE subpacket is a routing
// fault, not a delivery fault), and a per-kind count is kept so fault
// experiments can report exactly which control messages the network
// ate.
func (c *Collector) OnDrop(kind packet.Kind) {
	if c.dropsKind == nil {
		c.dropsKind = make(map[packet.Kind]int64)
	}
	c.dropsKind[kind]++
	if packet.ClassOf(kind) == packet.ClassData {
		c.dropped++
	} else {
		c.ctlDrops++
	}
}

// OnRecovery records one fault-recovery duration: the time from a
// fault to full delivery being restored, as measured by the fault
// experiment's probe stream.
func (c *Collector) OnRecovery(d float64) {
	c.recoveries++
	c.recoverySum += d
	if d > c.recoveryMax {
		c.recoveryMax = d
	}
}

// DataOverhead returns the accumulated data overhead in link-cost units.
func (c *Collector) DataOverhead() float64 { return c.dataUnits }

// ProtocolOverhead returns the accumulated protocol overhead in
// link-cost units.
func (c *Collector) ProtocolOverhead() float64 { return c.protoUnits }

// DataBytes returns total data bytes that crossed links.
func (c *Collector) DataBytes() int64 { return c.dataBytes }

// ProtocolBytes returns total protocol bytes that crossed links.
func (c *Collector) ProtocolBytes() int64 { return c.protoBytes }

// Crossings returns how many times packets of kind k crossed a link.
func (c *Collector) Crossings(k packet.Kind) int64 { return c.crossings[k] }

// LinkLoad returns how many packets (all classes) crossed the
// undirected link {u,v}.
func (c *Collector) LinkLoad(u, v topology.NodeID) int64 {
	return c.linkLoad[MkLinkID(u, v)]
}

// MaxLinkLoad returns the most-crossed link and its packet count, or a
// zero LinkID when nothing crossed any link.
func (c *Collector) MaxLinkLoad() (LinkID, int64) {
	var best LinkID
	var max int64
	ids := make([]LinkID, 0, len(c.linkLoad))
	for id := range c.linkLoad {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].A != ids[j].A {
			return ids[i].A < ids[j].A
		}
		return ids[i].B < ids[j].B
	})
	for _, id := range ids {
		if n := c.linkLoad[id]; n > max {
			best, max = id, n
		}
	}
	return best, max
}

// NodeLoad returns the packets that crossed links incident to v — the
// traffic funnelled through one router, the paper's "traffic
// concentration" measure.
func (c *Collector) NodeLoad(v topology.NodeID) int64 {
	var sum int64
	for id, n := range c.linkLoad {
		if id.A == v || id.B == v {
			sum += n
		}
	}
	return sum
}

// Delivered returns the number of member deliveries recorded.
func (c *Collector) Delivered() int64 { return c.delivered }

// Dropped returns the number of discarded data-class packets recorded.
func (c *Collector) Dropped() int64 { return c.dropped }

// DroppedControl returns the number of discarded control-class packets
// — the count the self-healing machinery has to out-persist.
func (c *Collector) DroppedControl() int64 { return c.ctlDrops }

// DroppedByKind returns how many packets of kind k were discarded.
func (c *Collector) DroppedByKind(k packet.Kind) int64 { return c.dropsKind[k] }

// DropKinds returns the packet kinds with at least one drop, sorted by
// kind value for deterministic reports.
func (c *Collector) DropKinds() []packet.Kind {
	out := make([]packet.Kind, 0, len(c.dropsKind))
	for k := range c.dropsKind {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recoveries returns the number of fault recoveries recorded.
func (c *Collector) Recoveries() int64 { return c.recoveries }

// MeanRecovery returns the mean fault-recovery time, 0 when none.
func (c *Collector) MeanRecovery() float64 {
	if c.recoveries == 0 {
		return 0
	}
	return c.recoverySum / float64(c.recoveries)
}

// MaxRecovery returns the longest fault-recovery time observed.
func (c *Collector) MaxRecovery() float64 { return c.recoveryMax }

// MaxEndToEndDelay returns the maximum delivery delay observed.
func (c *Collector) MaxEndToEndDelay() float64 { return c.maxDelay }

// MeanEndToEndDelay returns the mean delivery delay, or 0 when nothing
// was delivered.
func (c *Collector) MeanEndToEndDelay() float64 {
	if c.delivered == 0 {
		return 0
	}
	return c.delaySum / float64(c.delivered)
}

// Reset clears every counter.
func (c *Collector) Reset() { *c = Collector{} }
