// Package metrics accumulates the paper's three network-wide metrics
// (§IV-B): data overhead and protocol overhead, both measured in
// link-cost units per packet-link crossing, and maximum end-to-end
// delay over delivered data packets. Byte counters and per-kind packet
// counts are kept as supplementary detail.
package metrics

import (
	"sort"

	"scmp/internal/packet"
	"scmp/internal/topology"
)

// LinkID identifies an undirected link by its normalised endpoints.
type LinkID struct{ A, B topology.NodeID }

// MkLinkID normalises endpoints so both directions map to one link.
func MkLinkID(u, v topology.NodeID) LinkID {
	if u > v {
		u, v = v, u
	}
	return LinkID{u, v}
}

// Collector accumulates one simulation run's metrics. The zero value is
// ready to use.
//
// The per-kind counters are fixed-size arrays indexed by packet.Kind
// (kinds are dense from 0), so the per-crossing hot path touches no
// maps. Per-link load has two stores: callers that registered the
// topology's link table up front (UseDenseLinks) count crossings in a
// dense slice via OnLinkDense; OnLink falls back to a map keyed by
// LinkID. The read accessors merge both, so either path — or a mix —
// yields identical reports.
type Collector struct {
	dataUnits  float64
	protoUnits float64
	dataBytes  int64
	protoBytes int64
	crossings  [packet.NumKinds]int64
	linkLoad   map[LinkID]int64

	denseIDs  []LinkID         // undirected link id per dense index
	denseLoad []int64          // crossings per dense index
	denseIdx  map[LinkID]int32 // reverse lookup for point queries

	delivered int64
	dropped   int64 // data-class packets discarded
	ctlDrops  int64 // control-class packets discarded or lost
	dropsKind [packet.NumKinds]int64
	delaySum  float64
	maxDelay  float64

	recoveries  int64
	recoverySum float64
	recoveryMax float64

	// Overload-protection and churn counters (per-cause): JOINs shed by
	// admission control, requests parked after exhausting their retry
	// budget, parked requests that later recovered, soft-state TREE
	// refreshes suppressed as redundant, and tree restructurings.
	sheds        int64
	parks        int64
	parkRecovers int64
	refreshSkips int64
	restructures int64
}

// UseDenseLinks registers the run's undirected link table, enabling the
// index-addressed OnLinkDense path. ids[i] is the link the caller will
// report as dense index i. Call once before the run; Reset clears the
// registration.
func (c *Collector) UseDenseLinks(ids []LinkID) {
	if c.denseLoad != nil {
		panic("metrics: dense link table registered twice")
	}
	c.denseIDs = append([]LinkID(nil), ids...)
	c.denseLoad = make([]int64, len(ids))
	c.denseIdx = make(map[LinkID]int32, len(ids))
	for i, id := range c.denseIDs {
		c.denseIdx[id] = int32(i)
	}
}

// OnLink records one packet of the given kind and byte size crossing
// the link {from,to} of the given cost.
func (c *Collector) OnLink(from, to topology.NodeID, kind packet.Kind, cost float64, bytes int) {
	if c.linkLoad == nil {
		c.linkLoad = make(map[LinkID]int64)
	}
	c.linkLoad[MkLinkID(from, to)]++
	c.onCrossing(kind, cost, bytes)
}

// OnLinkDense is OnLink for callers that registered the link table: the
// crossing is counted at dense index uid with no map operation or
// LinkID normalisation on the hot path.
func (c *Collector) OnLinkDense(uid int32, kind packet.Kind, cost float64, bytes int) {
	c.denseLoad[uid]++
	c.onCrossing(kind, cost, bytes)
}

func (c *Collector) onCrossing(kind packet.Kind, cost float64, bytes int) {
	c.crossings[kind]++
	if packet.ClassOf(kind) == packet.ClassData {
		c.dataUnits += cost
		c.dataBytes += int64(bytes)
	} else {
		c.protoUnits += cost
		c.protoBytes += int64(bytes)
	}
}

// OnDeliver records a data packet reaching one group member with the
// given end-to-end delay.
func (c *Collector) OnDeliver(delay float64) {
	c.delivered++
	c.delaySum += delay
	if delay > c.maxDelay {
		c.maxDelay = delay
	}
}

// OnDrop records a packet of the given kind discarded before reaching
// its destination — an RPF failure or off-tree arrival for data, a
// lossy or dead link for any class. Data-class and control-class
// drops accumulate separately (a lost TREE subpacket is a routing
// fault, not a delivery fault), and a per-kind count is kept so fault
// experiments can report exactly which control messages the network
// ate.
func (c *Collector) OnDrop(kind packet.Kind) {
	c.dropsKind[kind]++
	if packet.ClassOf(kind) == packet.ClassData {
		c.dropped++
	} else {
		c.ctlDrops++
	}
}

// OnRecovery records one fault-recovery duration: the time from a
// fault to full delivery being restored, as measured by the fault
// experiment's probe stream.
func (c *Collector) OnRecovery(d float64) {
	c.recoveries++
	c.recoverySum += d
	if d > c.recoveryMax {
		c.recoveryMax = d
	}
}

// OnShed records one JOIN refused by m-router admission control.
func (c *Collector) OnShed() { c.sheds++ }

// OnPark records one reliable request that exhausted its retry budget
// and entered the degraded parked state.
func (c *Collector) OnPark() { c.parks++ }

// OnParkRecover records one parked request whose deferred re-attempt
// was finally acknowledged.
func (c *Collector) OnParkRecover() { c.parkRecovers++ }

// OnRefreshSkip records one soft-state TREE refresh suppressed because
// the group's entry changed within the last refresh interval.
func (c *Collector) OnRefreshSkip() { c.refreshSkips++ }

// OnRestructure records one tree restructuring (a membership change
// that rebuilt the whole tree rather than grafting a branch).
func (c *Collector) OnRestructure() { c.restructures++ }

// Sheds returns the number of admission-control JOIN refusals recorded.
func (c *Collector) Sheds() int64 { return c.sheds }

// Parks returns the number of retry-budget exhaustions recorded.
func (c *Collector) Parks() int64 { return c.parks }

// ParkRecovers returns the number of parked-request recoveries recorded.
func (c *Collector) ParkRecovers() int64 { return c.parkRecovers }

// RefreshSkips returns the number of suppressed TREE refreshes recorded.
func (c *Collector) RefreshSkips() int64 { return c.refreshSkips }

// Restructures returns the number of tree restructurings recorded.
func (c *Collector) Restructures() int64 { return c.restructures }

// DataOverhead returns the accumulated data overhead in link-cost units.
func (c *Collector) DataOverhead() float64 { return c.dataUnits }

// ProtocolOverhead returns the accumulated protocol overhead in
// link-cost units.
func (c *Collector) ProtocolOverhead() float64 { return c.protoUnits }

// DataBytes returns total data bytes that crossed links.
func (c *Collector) DataBytes() int64 { return c.dataBytes }

// ProtocolBytes returns total protocol bytes that crossed links.
func (c *Collector) ProtocolBytes() int64 { return c.protoBytes }

// Crossings returns how many times packets of kind k crossed a link.
func (c *Collector) Crossings(k packet.Kind) int64 { return c.crossings[k] }

// LinkLoad returns how many packets (all classes) crossed the
// undirected link {u,v}.
func (c *Collector) LinkLoad(u, v topology.NodeID) int64 {
	id := MkLinkID(u, v)
	n := c.linkLoad[id]
	if i, ok := c.denseIdx[id]; ok {
		n += c.denseLoad[i]
	}
	return n
}

// loadByLink merges the dense and map link counters into one map.
func (c *Collector) loadByLink() map[LinkID]int64 {
	merged := make(map[LinkID]int64, len(c.linkLoad)+len(c.denseIDs))
	for id, n := range c.linkLoad {
		merged[id] = n
	}
	for i, n := range c.denseLoad {
		if n != 0 {
			merged[c.denseIDs[i]] += n
		}
	}
	return merged
}

// MaxLinkLoad returns the most-crossed link and its packet count, or a
// zero LinkID when nothing crossed any link.
func (c *Collector) MaxLinkLoad() (LinkID, int64) {
	var best LinkID
	var max int64
	load := c.loadByLink()
	ids := make([]LinkID, 0, len(load))
	for id := range load {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].A != ids[j].A {
			return ids[i].A < ids[j].A
		}
		return ids[i].B < ids[j].B
	})
	for _, id := range ids {
		if n := load[id]; n > max {
			best, max = id, n
		}
	}
	return best, max
}

// NodeLoad returns the packets that crossed links incident to v — the
// traffic funnelled through one router, the paper's "traffic
// concentration" measure.
func (c *Collector) NodeLoad(v topology.NodeID) int64 {
	var sum int64
	for id, n := range c.linkLoad {
		if id.A == v || id.B == v {
			sum += n
		}
	}
	for i, n := range c.denseLoad {
		if id := c.denseIDs[i]; id.A == v || id.B == v {
			sum += n
		}
	}
	return sum
}

// Delivered returns the number of member deliveries recorded.
func (c *Collector) Delivered() int64 { return c.delivered }

// Dropped returns the number of discarded data-class packets recorded.
func (c *Collector) Dropped() int64 { return c.dropped }

// DroppedControl returns the number of discarded control-class packets
// — the count the self-healing machinery has to out-persist.
func (c *Collector) DroppedControl() int64 { return c.ctlDrops }

// DroppedByKind returns how many packets of kind k were discarded.
func (c *Collector) DroppedByKind(k packet.Kind) int64 { return c.dropsKind[k] }

// DropKinds returns the packet kinds with at least one drop, sorted by
// kind value for deterministic reports (the array scan is ascending by
// construction).
func (c *Collector) DropKinds() []packet.Kind {
	var out []packet.Kind
	for k, n := range c.dropsKind {
		if n != 0 {
			out = append(out, packet.Kind(k))
		}
	}
	return out
}

// Recoveries returns the number of fault recoveries recorded.
func (c *Collector) Recoveries() int64 { return c.recoveries }

// MeanRecovery returns the mean fault-recovery time, 0 when none.
func (c *Collector) MeanRecovery() float64 {
	if c.recoveries == 0 {
		return 0
	}
	return c.recoverySum / float64(c.recoveries)
}

// MaxRecovery returns the longest fault-recovery time observed.
func (c *Collector) MaxRecovery() float64 { return c.recoveryMax }

// MaxEndToEndDelay returns the maximum delivery delay observed.
func (c *Collector) MaxEndToEndDelay() float64 { return c.maxDelay }

// MeanEndToEndDelay returns the mean delivery delay, or 0 when nothing
// was delivered.
func (c *Collector) MeanEndToEndDelay() float64 {
	if c.delivered == 0 {
		return 0
	}
	return c.delaySum / float64(c.delivered)
}

// Reset clears every counter.
func (c *Collector) Reset() { *c = Collector{} }

// Shard returns a fresh zero-count collector sharing c's dense-link
// registration (the id table and reverse index are immutable after
// UseDenseLinks, so shards read them without copies; each shard gets
// its own count array). Partitioned runs give every partition a shard
// so the per-crossing hot path stays lock-free, then Drain the shards
// into the root collector at window barriers.
func (c *Collector) Shard() *Collector {
	s := &Collector{}
	if c.denseLoad != nil {
		s.denseIDs = c.denseIDs
		s.denseIdx = c.denseIdx
		s.denseLoad = make([]int64, len(c.denseLoad))
	}
	return s
}

// Drain folds src's counts into c and zeroes src (keeping its dense
// registration), so alternating record/drain cycles never double-count.
// Sums and counts add; maxima take the larger side. Draining shards in
// a fixed order keeps float sums deterministic for a given partition
// count.
func (c *Collector) Drain(src *Collector) {
	c.dataUnits += src.dataUnits
	c.protoUnits += src.protoUnits
	c.dataBytes += src.dataBytes
	c.protoBytes += src.protoBytes
	for k, n := range src.crossings {
		c.crossings[k] += n
		src.crossings[k] = 0
	}
	for id, n := range src.linkLoad {
		if c.linkLoad == nil {
			c.linkLoad = make(map[LinkID]int64)
		}
		c.linkLoad[id] += n
	}
	src.linkLoad = nil
	for i, n := range src.denseLoad {
		if n != 0 {
			c.denseLoad[i] += n
			src.denseLoad[i] = 0
		}
	}
	c.delivered += src.delivered
	c.dropped += src.dropped
	c.ctlDrops += src.ctlDrops
	for k, n := range src.dropsKind {
		c.dropsKind[k] += n
		src.dropsKind[k] = 0
	}
	c.delaySum += src.delaySum
	if src.maxDelay > c.maxDelay {
		c.maxDelay = src.maxDelay
	}
	c.recoveries += src.recoveries
	c.recoverySum += src.recoverySum
	if src.recoveryMax > c.recoveryMax {
		c.recoveryMax = src.recoveryMax
	}
	c.sheds += src.sheds
	c.parks += src.parks
	c.parkRecovers += src.parkRecovers
	c.refreshSkips += src.refreshSkips
	c.restructures += src.restructures
	src.dataUnits, src.protoUnits = 0, 0
	src.dataBytes, src.protoBytes = 0, 0
	src.delivered, src.dropped, src.ctlDrops = 0, 0, 0
	src.delaySum, src.maxDelay = 0, 0
	src.recoveries, src.recoverySum, src.recoveryMax = 0, 0, 0
	src.sheds, src.parks, src.parkRecovers, src.refreshSkips, src.restructures = 0, 0, 0, 0, 0
}
