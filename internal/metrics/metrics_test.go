package metrics

import (
	"testing"

	"scmp/internal/packet"
)

func TestClassSplit(t *testing.T) {
	var c Collector
	c.OnLink(0, 1, packet.Data, 5, 1000)
	c.OnLink(1, 0, packet.EncapData, 2, 1000)
	c.OnLink(1, 2, packet.Join, 3, 64)
	c.OnLink(2, 1, packet.Tree, 4, 128)
	if c.DataOverhead() != 7 {
		t.Fatalf("data overhead = %g, want 7", c.DataOverhead())
	}
	if c.ProtocolOverhead() != 7 {
		t.Fatalf("protocol overhead = %g, want 7", c.ProtocolOverhead())
	}
	if c.DataBytes() != 2000 || c.ProtocolBytes() != 192 {
		t.Fatalf("bytes = %d/%d", c.DataBytes(), c.ProtocolBytes())
	}
	if c.Crossings(packet.Data) != 1 || c.Crossings(packet.Join) != 1 {
		t.Fatal("crossings wrong")
	}
	if c.Crossings(packet.Leave) != 0 {
		t.Fatal("phantom crossing")
	}
}

func TestDelays(t *testing.T) {
	var c Collector
	if c.MeanEndToEndDelay() != 0 || c.MaxEndToEndDelay() != 0 {
		t.Fatal("zero-value delays wrong")
	}
	c.OnDeliver(1)
	c.OnDeliver(3)
	c.OnDrop(packet.Data)
	if c.Delivered() != 2 || c.Dropped() != 1 {
		t.Fatalf("delivered=%d dropped=%d", c.Delivered(), c.Dropped())
	}
	if c.MeanEndToEndDelay() != 2 {
		t.Fatalf("mean = %g, want 2", c.MeanEndToEndDelay())
	}
	if c.MaxEndToEndDelay() != 3 {
		t.Fatalf("max = %g, want 3", c.MaxEndToEndDelay())
	}
}

func TestLinkLoad(t *testing.T) {
	var c Collector
	c.OnLink(0, 1, packet.Data, 1, 1)
	c.OnLink(1, 0, packet.Data, 1, 1) // both directions count once per link
	c.OnLink(1, 2, packet.Join, 1, 1)
	if c.LinkLoad(0, 1) != 2 || c.LinkLoad(1, 0) != 2 {
		t.Fatalf("LinkLoad(0,1) = %d, want 2", c.LinkLoad(0, 1))
	}
	if c.LinkLoad(0, 2) != 0 {
		t.Fatal("phantom load")
	}
	id, n := c.MaxLinkLoad()
	if id != MkLinkID(1, 0) || n != 2 {
		t.Fatalf("MaxLinkLoad = %v/%d", id, n)
	}
	if c.NodeLoad(1) != 3 {
		t.Fatalf("NodeLoad(1) = %d, want 3", c.NodeLoad(1))
	}
	if c.NodeLoad(0) != 2 || c.NodeLoad(2) != 1 {
		t.Fatalf("NodeLoad = %d/%d", c.NodeLoad(0), c.NodeLoad(2))
	}
}

func TestDropSplit(t *testing.T) {
	var c Collector
	c.OnDrop(packet.Data)
	c.OnDrop(packet.EncapData)
	c.OnDrop(packet.Tree)
	c.OnDrop(packet.Tree)
	c.OnDrop(packet.Join)
	if c.Dropped() != 2 {
		t.Fatalf("data drops = %d, want 2", c.Dropped())
	}
	if c.DroppedControl() != 3 {
		t.Fatalf("control drops = %d, want 3", c.DroppedControl())
	}
	if c.DroppedByKind(packet.Tree) != 2 || c.DroppedByKind(packet.Join) != 1 {
		t.Fatalf("per-kind drops wrong: tree=%d join=%d",
			c.DroppedByKind(packet.Tree), c.DroppedByKind(packet.Join))
	}
	if c.DroppedByKind(packet.Leave) != 0 {
		t.Fatal("phantom drop")
	}
	kinds := c.DropKinds()
	want := []packet.Kind{packet.Data, packet.EncapData, packet.Join, packet.Tree}
	if len(kinds) != len(want) {
		t.Fatalf("DropKinds = %v", kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("DropKinds = %v, want %v", kinds, want)
		}
	}
}

func TestRecovery(t *testing.T) {
	var c Collector
	if c.MeanRecovery() != 0 || c.MaxRecovery() != 0 || c.Recoveries() != 0 {
		t.Fatal("zero-value recovery stats wrong")
	}
	c.OnRecovery(1)
	c.OnRecovery(3)
	if c.Recoveries() != 2 || c.MeanRecovery() != 2 || c.MaxRecovery() != 3 {
		t.Fatalf("recoveries=%d mean=%g max=%g",
			c.Recoveries(), c.MeanRecovery(), c.MaxRecovery())
	}
}

func TestMaxLinkLoadEmpty(t *testing.T) {
	var c Collector
	id, n := c.MaxLinkLoad()
	if n != 0 || id != (LinkID{}) {
		t.Fatalf("empty MaxLinkLoad = %v/%d", id, n)
	}
}

func TestMkLinkIDNormalises(t *testing.T) {
	if MkLinkID(5, 2) != MkLinkID(2, 5) {
		t.Fatal("link id not normalised")
	}
}

func TestReset(t *testing.T) {
	var c Collector
	c.OnLink(0, 1, packet.Data, 5, 10)
	c.OnDeliver(2)
	c.Reset()
	if c.DataOverhead() != 0 || c.Delivered() != 0 || c.MaxEndToEndDelay() != 0 {
		t.Fatal("reset incomplete")
	}
	c.OnLink(0, 1, packet.Join, 1, 1) // maps must be rebuilt after reset
	if c.Crossings(packet.Join) != 1 {
		t.Fatal("collector unusable after Reset")
	}
}
