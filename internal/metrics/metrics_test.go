package metrics

import (
	"testing"

	"scmp/internal/packet"
	"scmp/internal/topology"
)

func TestClassSplit(t *testing.T) {
	var c Collector
	c.OnLink(0, 1, packet.Data, 5, 1000)
	c.OnLink(1, 0, packet.EncapData, 2, 1000)
	c.OnLink(1, 2, packet.Join, 3, 64)
	c.OnLink(2, 1, packet.Tree, 4, 128)
	if c.DataOverhead() != 7 {
		t.Fatalf("data overhead = %g, want 7", c.DataOverhead())
	}
	if c.ProtocolOverhead() != 7 {
		t.Fatalf("protocol overhead = %g, want 7", c.ProtocolOverhead())
	}
	if c.DataBytes() != 2000 || c.ProtocolBytes() != 192 {
		t.Fatalf("bytes = %d/%d", c.DataBytes(), c.ProtocolBytes())
	}
	if c.Crossings(packet.Data) != 1 || c.Crossings(packet.Join) != 1 {
		t.Fatal("crossings wrong")
	}
	if c.Crossings(packet.Leave) != 0 {
		t.Fatal("phantom crossing")
	}
}

func TestDelays(t *testing.T) {
	var c Collector
	if c.MeanEndToEndDelay() != 0 || c.MaxEndToEndDelay() != 0 {
		t.Fatal("zero-value delays wrong")
	}
	c.OnDeliver(1)
	c.OnDeliver(3)
	c.OnDrop(packet.Data)
	if c.Delivered() != 2 || c.Dropped() != 1 {
		t.Fatalf("delivered=%d dropped=%d", c.Delivered(), c.Dropped())
	}
	if c.MeanEndToEndDelay() != 2 {
		t.Fatalf("mean = %g, want 2", c.MeanEndToEndDelay())
	}
	if c.MaxEndToEndDelay() != 3 {
		t.Fatalf("max = %g, want 3", c.MaxEndToEndDelay())
	}
}

func TestLinkLoad(t *testing.T) {
	var c Collector
	c.OnLink(0, 1, packet.Data, 1, 1)
	c.OnLink(1, 0, packet.Data, 1, 1) // both directions count once per link
	c.OnLink(1, 2, packet.Join, 1, 1)
	if c.LinkLoad(0, 1) != 2 || c.LinkLoad(1, 0) != 2 {
		t.Fatalf("LinkLoad(0,1) = %d, want 2", c.LinkLoad(0, 1))
	}
	if c.LinkLoad(0, 2) != 0 {
		t.Fatal("phantom load")
	}
	id, n := c.MaxLinkLoad()
	if id != MkLinkID(1, 0) || n != 2 {
		t.Fatalf("MaxLinkLoad = %v/%d", id, n)
	}
	if c.NodeLoad(1) != 3 {
		t.Fatalf("NodeLoad(1) = %d, want 3", c.NodeLoad(1))
	}
	if c.NodeLoad(0) != 2 || c.NodeLoad(2) != 1 {
		t.Fatalf("NodeLoad = %d/%d", c.NodeLoad(0), c.NodeLoad(2))
	}
}

func TestDropSplit(t *testing.T) {
	var c Collector
	c.OnDrop(packet.Data)
	c.OnDrop(packet.EncapData)
	c.OnDrop(packet.Tree)
	c.OnDrop(packet.Tree)
	c.OnDrop(packet.Join)
	if c.Dropped() != 2 {
		t.Fatalf("data drops = %d, want 2", c.Dropped())
	}
	if c.DroppedControl() != 3 {
		t.Fatalf("control drops = %d, want 3", c.DroppedControl())
	}
	if c.DroppedByKind(packet.Tree) != 2 || c.DroppedByKind(packet.Join) != 1 {
		t.Fatalf("per-kind drops wrong: tree=%d join=%d",
			c.DroppedByKind(packet.Tree), c.DroppedByKind(packet.Join))
	}
	if c.DroppedByKind(packet.Leave) != 0 {
		t.Fatal("phantom drop")
	}
	kinds := c.DropKinds()
	want := []packet.Kind{packet.Data, packet.EncapData, packet.Join, packet.Tree}
	if len(kinds) != len(want) {
		t.Fatalf("DropKinds = %v", kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("DropKinds = %v, want %v", kinds, want)
		}
	}
}

func TestRecovery(t *testing.T) {
	var c Collector
	if c.MeanRecovery() != 0 || c.MaxRecovery() != 0 || c.Recoveries() != 0 {
		t.Fatal("zero-value recovery stats wrong")
	}
	c.OnRecovery(1)
	c.OnRecovery(3)
	if c.Recoveries() != 2 || c.MeanRecovery() != 2 || c.MaxRecovery() != 3 {
		t.Fatalf("recoveries=%d mean=%g max=%g",
			c.Recoveries(), c.MeanRecovery(), c.MaxRecovery())
	}
}

func TestMaxLinkLoadEmpty(t *testing.T) {
	var c Collector
	id, n := c.MaxLinkLoad()
	if n != 0 || id != (LinkID{}) {
		t.Fatalf("empty MaxLinkLoad = %v/%d", id, n)
	}
}

func TestMkLinkIDNormalises(t *testing.T) {
	if MkLinkID(5, 2) != MkLinkID(2, 5) {
		t.Fatal("link id not normalised")
	}
}

func TestReset(t *testing.T) {
	var c Collector
	c.OnLink(0, 1, packet.Data, 5, 10)
	c.OnDeliver(2)
	c.Reset()
	if c.DataOverhead() != 0 || c.Delivered() != 0 || c.MaxEndToEndDelay() != 0 {
		t.Fatal("reset incomplete")
	}
	c.OnLink(0, 1, packet.Join, 1, 1) // maps must be rebuilt after reset
	if c.Crossings(packet.Join) != 1 {
		t.Fatal("collector unusable after Reset")
	}
}

// The dense per-link fast path must account identically to the
// map-keyed OnLink path: every crossing replayed through both stores
// yields the same totals, per-kind counts, link loads and node loads.
func TestDensePathMatchesMapAccounting(t *testing.T) {
	type crossing struct {
		u, v  topology.NodeID
		kind  packet.Kind
		cost  float64
		bytes int
	}
	crossings := []crossing{
		{0, 1, packet.Data, 5, 1000},
		{1, 0, packet.Data, 5, 1000}, // reverse direction, same link
		{1, 2, packet.Tree, 3, 128},
		{2, 3, packet.Join, 2, 64},
		{1, 2, packet.EncapData, 3, 1000},
		{0, 1, packet.Prune, 5, 64},
		{2, 3, packet.Data, 2, 500},
	}
	links := []LinkID{MkLinkID(0, 1), MkLinkID(1, 2), MkLinkID(2, 3)}

	var byMap, byDense Collector
	byDense.UseDenseLinks(links)
	uid := map[LinkID]int32{}
	for i, id := range links {
		uid[id] = int32(i)
	}
	for _, x := range crossings {
		byMap.OnLink(x.u, x.v, x.kind, x.cost, x.bytes)
		byDense.OnLinkDense(uid[MkLinkID(x.u, x.v)], x.kind, x.cost, x.bytes)
	}

	if byMap.DataOverhead() != byDense.DataOverhead() ||
		byMap.ProtocolOverhead() != byDense.ProtocolOverhead() {
		t.Fatalf("overhead mismatch: map %g/%g dense %g/%g",
			byMap.DataOverhead(), byMap.ProtocolOverhead(),
			byDense.DataOverhead(), byDense.ProtocolOverhead())
	}
	if byMap.DataBytes() != byDense.DataBytes() || byMap.ProtocolBytes() != byDense.ProtocolBytes() {
		t.Fatal("byte totals mismatch")
	}
	for k := 0; k < packet.NumKinds; k++ {
		if byMap.Crossings(packet.Kind(k)) != byDense.Crossings(packet.Kind(k)) {
			t.Fatalf("crossings(%v) mismatch", packet.Kind(k))
		}
	}
	for _, id := range links {
		if byMap.LinkLoad(id.A, id.B) != byDense.LinkLoad(id.A, id.B) {
			t.Fatalf("link load mismatch on %v", id)
		}
	}
	for v := topology.NodeID(0); v < 4; v++ {
		if byMap.NodeLoad(v) != byDense.NodeLoad(v) {
			t.Fatalf("node load mismatch at %d", v)
		}
	}
	idM, nM := byMap.MaxLinkLoad()
	idD, nD := byDense.MaxLinkLoad()
	if idM != idD || nM != nD {
		t.Fatalf("max link load mismatch: map %v/%d dense %v/%d", idM, nM, idD, nD)
	}
}

// A collector fed through both paths at once (the mixed case: the fast
// data plane counts densely while a test harness calls OnLink) merges
// the stores in every accessor.
func TestMixedDenseAndMapStores(t *testing.T) {
	var c Collector
	c.UseDenseLinks([]LinkID{MkLinkID(0, 1)})
	c.OnLinkDense(0, packet.Data, 1, 100)
	c.OnLink(0, 1, packet.Data, 1, 100)
	c.OnLink(1, 2, packet.Data, 1, 100)
	if got := c.LinkLoad(0, 1); got != 2 {
		t.Fatalf("merged LinkLoad(0,1) = %d, want 2", got)
	}
	if got := c.NodeLoad(1); got != 3 {
		t.Fatalf("merged NodeLoad(1) = %d, want 3", got)
	}
	if id, n := c.MaxLinkLoad(); id != MkLinkID(0, 1) || n != 2 {
		t.Fatalf("merged MaxLinkLoad = %v/%d", id, n)
	}
}

func TestUseDenseLinksTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double registration")
		}
	}()
	var c Collector
	c.UseDenseLinks([]LinkID{MkLinkID(0, 1)})
	c.UseDenseLinks([]LinkID{MkLinkID(0, 1)})
}
