package core

import (
	"math/rand"
	"sort"
	"testing"

	destime "scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// Multi-m-router / failover churn coverage: the static HomeOf
// assignment and the hot-standby promotion, exercised together with
// the overload-protection knobs (reliable signalling, retry budget,
// admission limit, service time) under membership churn and control
// loss — the combination the flat deployment story rests on.

// churnPlan drives a randomized join/leave schedule across groups,
// tracking the intended final membership per group.
type churnPlan struct {
	want map[packet.GroupID]map[topology.NodeID]bool
}

// schedule spreads ops over (0, span): each op flips a random node's
// membership in a random group, scheduled through the simulator clock
// so it interleaves with retries, shedding and refresh ticks. A
// pre-seeded want map declares memberships that already exist — flips
// start from it.
func (p *churnPlan) schedule(n *netsim.Network, r *rand.Rand, groups []packet.GroupID, nodes, ops int, span float64) {
	if p.want == nil {
		p.want = map[packet.GroupID]map[topology.NodeID]bool{}
	}
	for _, g := range groups {
		if p.want[g] == nil {
			p.want[g] = map[topology.NodeID]bool{}
		}
	}
	base := n.Sched.Now()
	for op := 0; op < ops; op++ {
		gid := groups[r.Intn(len(groups))]
		v := topology.NodeID(r.Intn(nodes))
		at := base + destime.Time(span*float64(op+1)/float64(ops+1))
		if p.want[gid][v] {
			delete(p.want[gid], v)
			n.Sched.At(at, func() { n.HostLeave(v, gid) })
		} else {
			p.want[gid][v] = true
			n.Sched.At(at, func() { n.HostJoin(v, gid) })
		}
	}
}

// verify checks each group's converged state: tree rooted at its
// published home, valid, carrying exactly the intended members, and
// delivering data exactly once from on- and off-tree sources.
func (p *churnPlan) verify(t *testing.T, n *netsim.Network, s *SCMP, src topology.NodeID) {
	t.Helper()
	gids := make([]packet.GroupID, 0, len(p.want))
	for gid := range p.want {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		want := p.want[gid]
		tr := s.GroupTree(gid)
		if len(want) == 0 {
			if tr != nil && tr.MemberCount() != 0 {
				t.Fatalf("group %d: %d members linger, want none", gid, tr.MemberCount())
			}
			continue
		}
		if tr == nil {
			t.Fatalf("group %d: no tree for %d intended members", gid, len(want))
		}
		if tr.Root() != s.HomeOf(gid) {
			t.Fatalf("group %d: tree root %d != published home %d", gid, tr.Root(), s.HomeOf(gid))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("group %d: %v", gid, err)
		}
		for v := range want {
			if !tr.IsMember(v) {
				t.Fatalf("group %d: member %d lost (tree has %v)", gid, v, tr.Members())
			}
		}
		if got := tr.MemberCount(); got != len(want) {
			t.Fatalf("group %d: %d members on tree, want %d (%v)", gid, got, len(want), tr.Members())
		}
		seq := n.SendData(src, gid, 300)
		n.Run()
		missing, anomalous := n.CheckDelivery(seq)
		if len(missing) != 0 || len(anomalous) != 0 {
			t.Fatalf("group %d: missing=%v anomalous=%v", gid, missing, anomalous)
		}
	}
}

// TestMultiMRouterChurnUnderOverloadProtection: churn across groups
// homed on two m-routers with the full PR-8 knob set armed and a
// control-loss window covering most of the churn. Every group must
// converge to its intended membership on a tree rooted at its static
// HomeOf assignment — shedding, retries and parked re-attempts
// included — once the loss heals and refresh reconverges stragglers.
func TestMultiMRouterChurnUnderOverloadProtection(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	g, err := topology.Random(topology.DefaultRandom(24, 4), r)
	if err != nil {
		t.Fatal(err)
	}
	homes := []topology.NodeID{1, 2}
	n, s := newNet(g, Config{
		MRouters:        homes,
		Kappa:           1.5,
		AckTimeout:      5,
		RetryBudget:     2,
		ServiceTime:     0.05,
		AdmitLimit:      4,
		RefreshInterval: 40,
		RefreshSuppress: true,
	})
	n.InstallFaults(netsim.FaultPlan{ControlLoss: 0.3, LossUntil: 120, Seed: 7})

	groups := []packet.GroupID{1, 2, 3, 4}
	for _, gid := range groups {
		if want := homes[int(gid)%len(homes)]; s.HomeOf(gid) != want {
			t.Fatalf("HomeOf(%d) = %d, want %d", gid, s.HomeOf(gid), want)
		}
	}
	var plan churnPlan
	plan.schedule(n, r, groups, g.N(), 60, 100)
	// The drain deadline must clear the in-flight control tail: link
	// delays run up to 100, so a request transmitted near convergence
	// can land a full round trip later — a JOIN arriving after Quiesce
	// re-arms the (by design perpetual) refresh chain and Run would
	// never return.
	n.RunUntil(700)
	s.Quiesce()
	n.Run()
	plan.verify(t, n, s, 5)
	if s.PendingRequests() != 0 || s.ParkedRequests() != 0 {
		t.Fatalf("drain left %d pending / %d parked requests", s.PendingRequests(), s.ParkedRequests())
	}
}

// TestFailoverUnderChurnWithReliableSignalling: the hot standby is
// promoted in the middle of a churn burst running under control loss,
// while reliable requests are mid-ladder. Retransmissions re-resolve
// the home at fire time, so the pending ladder must land on the new
// m-router: after the dust settles every group's tree is rooted at the
// standby, HomeOf reports it, and the intended membership delivers.
func TestFailoverUnderChurnWithReliableSignalling(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g, err := topology.Random(topology.DefaultRandom(20, 4), r)
	if err != nil {
		t.Fatal(err)
	}
	n, s := newNet(g, Config{
		MRouter:         1,
		Standby:         2,
		Kappa:           1.5,
		AckTimeout:      5,
		RetryBudget:     2,
		RefreshInterval: 40,
		RefreshSuppress: true,
	})
	n.InstallFaults(netsim.FaultPlan{ControlLoss: 0.3, LossUntil: 80, Seed: 9})

	groups := []packet.GroupID{1, 2}
	var plan churnPlan
	plan.schedule(n, r, groups, g.N(), 30, 100)
	n.Sched.At(50, func() { s.Failover() }) // mid-burst, inside the loss window
	n.RunUntil(700)                         // past the in-flight control tail (see above)
	s.Quiesce()
	n.Run()

	if s.MRouter() != 2 {
		t.Fatalf("active m-router = %d, want promoted standby 2", s.MRouter())
	}
	for _, gid := range groups {
		if s.HomeOf(gid) != 2 {
			t.Fatalf("HomeOf(%d) = %d after failover, want 2", gid, s.HomeOf(gid))
		}
	}
	plan.verify(t, n, s, 3)
}

// TestFailoverThenChurnConverges is the quiet-point variant: promote
// the standby with no requests in flight, then run a clean churn burst
// against the new home. Post-failover joins and leaves must be served
// by the standby alone (epoch-stamped distributions), ending exactly
// at the intended membership.
func TestFailoverThenChurnConverges(t *testing.T) {
	n, s := failoverNet(t, 21, 20)
	n.HostJoin(5, grp)
	n.HostJoin(9, grp)
	n.Run()

	s.Failover()
	n.Run()

	r := rand.New(rand.NewSource(23))
	// Seed the plan with the pre-failover members so the flips start
	// from the real membership.
	plan := churnPlan{want: map[packet.GroupID]map[topology.NodeID]bool{
		grp: {5: true, 9: true},
	}}
	plan.schedule(n, r, []packet.GroupID{grp}, 20, 25, 50)
	n.RunUntil(300)
	s.Quiesce()
	n.Run()
	if s.MRouter() != 2 {
		t.Fatalf("active m-router = %d, want 2", s.MRouter())
	}
	plan.verify(t, n, s, 0)
}
