package core

import (
	"math/rand"
	"testing"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// TestScaleLargeDomain drives SCMP at well beyond the paper's sizes:
// a 200-router domain, 20 groups, 30 members each, churn, and data from
// random sources — exactly-once delivery and valid trees throughout.
func TestScaleLargeDomain(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	g, err := topology.Random(topology.DefaultRandom(200, 4), rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	g = g.ScaleDelays(1e-3)
	s := New(Config{MRouter: 0, Kappa: 1.5})
	n := netsim.New(g, s)
	rng := rand.New(rand.NewSource(99))

	const groups = 20
	members := make([]map[topology.NodeID]bool, groups+1)
	for gi := 1; gi <= groups; gi++ {
		members[gi] = map[topology.NodeID]bool{}
		for _, v := range rng.Perm(g.N())[:30] {
			if v == 0 {
				continue
			}
			n.HostJoin(topology.NodeID(v), packet.GroupID(gi))
			members[gi][topology.NodeID(v)] = true
		}
	}
	n.Run()

	// Validate every tree and state-size bound.
	for gi := 1; gi <= groups; gi++ {
		tr := s.GroupTree(packet.GroupID(gi))
		if err := tr.Validate(); err != nil {
			t.Fatalf("group %d: %v", gi, err)
		}
		for m := range members[gi] {
			if !tr.IsMember(m) {
				t.Fatalf("group %d lost member %d", gi, m)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if st := s.StateEntries(topology.NodeID(v)); st > groups {
			t.Fatalf("router %d holds %d entries, exceeding the group count", v, st)
		}
	}

	// Churn a third of each group, then blast data from random sources.
	for gi := 1; gi <= groups; gi++ {
		i := 0
		for m := range members[gi] {
			if i%3 == 0 {
				n.HostLeave(m, packet.GroupID(gi))
				delete(members[gi], m)
			}
			i++
		}
	}
	n.Run()
	for round := 0; round < 3; round++ {
		for gi := 1; gi <= groups; gi++ {
			src := topology.NodeID(rng.Intn(g.N()))
			seq := n.SendData(src, packet.GroupID(gi), packet.DefaultDataSize)
			n.Run()
			missing, anomalous := n.CheckDelivery(seq)
			if len(missing) != 0 || len(anomalous) != 0 {
				t.Fatalf("group %d round %d src %d: missing=%v anomalous=%v",
					gi, round, src, missing, anomalous)
			}
		}
	}
}
