//go:build !invariants

package core

import (
	"scmp/internal/mtree"
	"scmp/internal/topology"
)

// commitCheck is a no-op unless built with -tags invariants, which
// turns it into a full invariant.CheckTree on every tree the m-router
// commits.
func commitCheck(topology.NodeID, *mtree.Tree) {}
