package core_test

import (
	"fmt"

	"scmp/internal/core"
	"scmp/internal/netsim"
	"scmp/internal/topology"
)

// rails builds the documentation topology: node 0 is the m-router, a
// fast expensive rail 0-1-2 and a slow cheap rail 0-3-2, with a member
// stub 2-4.
func rails() *topology.Graph {
	g := topology.New(5)
	g.MustAddEdge(0, 1, 1, 10)
	g.MustAddEdge(1, 2, 1, 10)
	g.MustAddEdge(0, 3, 6, 1)
	g.MustAddEdge(3, 2, 6, 1)
	g.MustAddEdge(2, 4, 1, 1)
	return g
}

// Example runs one SCMP session end to end: a subnet joins, the
// m-router grafts it (JOIN up, BRANCH down), and data from an off-tree
// source is encapsulated to the m-router and forwarded down the tree.
func Example() {
	scmp := core.New(core.Config{MRouter: 0, Kappa: 1.5})
	net := netsim.New(rails(), scmp)

	net.HostJoin(4, 42)
	net.Run()
	tree := scmp.GroupTree(42)
	fmt.Printf("tree: cost=%.0f delay=%.0f members=%v\n",
		tree.Cost(), tree.TreeDelay(), tree.Members())

	seq := net.SendData(3, 42, 1000) // node 3 is off the tree
	net.Run()
	missing, dupes := net.CheckDelivery(seq)
	fmt.Println("missing:", len(missing), "duplicates:", len(dupes))
	// Output:
	// tree: cost=21 delay=3 members=[4]
	// missing: 0 duplicates: 0
}

// ExampleSCMP_Entry inspects the self-routing state the TREE/BRANCH
// packets installed: each on-tree router holds the paper's
// (group, upstream, downstream) triple.
func ExampleSCMP_Entry() {
	scmp := core.New(core.Config{MRouter: 0, Kappa: 1.5})
	net := netsim.New(rails(), scmp)
	net.HostJoin(4, 42)
	net.Run()
	for _, v := range []topology.NodeID{0, 1, 2, 4} {
		e, _ := scmp.Entry(v, 42)
		fmt.Printf("router %d: upstream=%2d downstream=%v local=%v\n",
			v, e.Upstream, e.Downstream, e.HasLocal)
	}
	// Output:
	// router 0: upstream=-1 downstream=[1] local=false
	// router 1: upstream= 0 downstream=[2] local=false
	// router 2: upstream= 1 downstream=[4] local=false
	// router 4: upstream= 2 downstream=[] local=true
}

// ExampleSCMP_Failover promotes the hot-standby secondary after the
// primary m-router fails: trees are rebuilt rooted at the standby from
// the replicated membership.
func ExampleSCMP_Failover() {
	g := topology.New(5)
	g.MustAddEdge(1, 0, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	g.MustAddEdge(3, 4, 1, 1)
	scmp := core.New(core.Config{MRouter: 1, Standby: 2, Kappa: 1.5})
	net := netsim.New(g, scmp)
	net.HostJoin(4, 7)
	net.Run()
	fmt.Println("before: m-router", scmp.MRouter(), "root", scmp.GroupTree(7).Root())

	scmp.Failover()
	net.Run()
	fmt.Println("after:  m-router", scmp.MRouter(), "root", scmp.GroupTree(7).Root())

	seq := net.SendData(0, 7, 100)
	net.Run()
	missing, _ := net.CheckDelivery(seq)
	fmt.Println("post-failover missing:", len(missing))
	// Output:
	// before: m-router 1 root 1
	// after:  m-router 2 root 2
	// post-failover missing: 0
}
