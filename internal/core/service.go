package core

import (
	"scmp/internal/des"
)

// serviceCenter models the m-router's compute: the paper's m-router
// "can adopt a multiprocessor or a cluster computer architecture"
// because group management, tree generation, scheduling and routing
// "are relatively independent, which can be performed in parallel"
// (§II-B). Control requests (JOIN/LEAVE processing, tree computation)
// each occupy one processor for ServiceTime seconds; requests beyond
// the processor count queue.
//
// A zero ServiceTime short-circuits to immediate execution, which is
// what the protocol-level experiments use; the service model exists to
// study the m-router's centralisation bottleneck (BenchmarkMRouterLoad).
type serviceCenter struct {
	sched       *des.Scheduler
	serviceTime des.Time
	busyUntil   []des.Time // one entry per processor

	requests  uint64
	totalWait des.Time
	maxWait   des.Time

	// outstanding counts operations submitted but not yet executed —
	// the pending-operation queue depth admission control bounds.
	outstanding int
}

func newServiceCenter(sched *des.Scheduler, serviceTime des.Time, processors int) *serviceCenter {
	if processors < 1 {
		processors = 1
	}
	return &serviceCenter{
		sched:       sched,
		serviceTime: serviceTime,
		busyUntil:   make([]des.Time, processors),
	}
}

// submit runs fn after the request has waited for a free processor and
// been serviced. With no service time configured, fn runs synchronously.
func (sc *serviceCenter) submit(fn func()) {
	if sc.serviceTime <= 0 {
		fn()
		return
	}
	now := sc.sched.Now()
	best := 0
	for i, t := range sc.busyUntil {
		if t < sc.busyUntil[best] {
			best = i
		}
	}
	start := now
	if sc.busyUntil[best] > start {
		start = sc.busyUntil[best]
	}
	finish := start + sc.serviceTime
	sc.busyUntil[best] = finish
	wait := start - now
	sc.requests++
	sc.totalWait += wait
	if wait > sc.maxWait {
		sc.maxWait = wait
	}
	sc.outstanding++
	sc.sched.At(finish, func() {
		sc.outstanding--
		fn()
	})
}

// backlog returns the pending-operation queue depth: operations
// submitted but whose service has not yet completed. Always 0 with no
// service time (submissions execute synchronously).
func (sc *serviceCenter) backlog() int { return sc.outstanding }

// ServiceStats reports the m-router's control-plane load figures.
type ServiceStats struct {
	Requests uint64
	MeanWait float64 // mean queueing wait before service began
	MaxWait  float64
}

// ServiceStats returns the m-router's queueing statistics. All zeros
// when no service time is configured.
func (s *SCMP) ServiceStats() ServiceStats {
	sc := s.service
	if sc == nil || sc.requests == 0 {
		return ServiceStats{Requests: sc.requestsOrZero()}
	}
	return ServiceStats{
		Requests: sc.requests,
		MeanWait: float64(sc.totalWait) / float64(sc.requests),
		MaxWait:  float64(sc.maxWait),
	}
}

func (sc *serviceCenter) requestsOrZero() uint64 {
	if sc == nil {
		return 0
	}
	return sc.requests
}
