// Control-plane overload protection for SCMP, defended against the
// churn workload (netsim.ChurnPlan): deterministic admission control at
// the m-router (Config.AdmitLimit — shed newest JOINs with a
// NACK/retry-after), retry budgets with a degraded "parked" state
// (Config.RetryBudget — a budget-exhausted request stops burning the
// exponential ladder and waits one deferred re-attempt interval), and
// refresh-storm suppression (Config.RefreshSuppress, in repair.go's
// refreshGroup). Everything here is off by default; a legacy
// configuration never reaches any of it, so fault-free and PR 3
// fault-model runs are byte-identical with this file present.
package core

import (
	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// parkedReq is one reliable request in the degraded parked state: its
// retry budget is spent, so instead of an exponential retransmission
// ladder it holds a single deferred re-attempt timer. firstSeq..seq is
// the lineage of the ladder that gave up, so a late ACK can still
// claim the request (lateAck), and the re-attempt keeps extending the
// same lineage instead of starting a fresh one.
type parkedReq struct {
	kind     packet.Kind
	payload  []byte
	seq      uint64
	firstSeq uint64
	timer    *des.Event
}

// admitJoin is the m-router's deterministic admission control: with an
// AdmitLimit configured, a JOIN offered while the pending-operation
// queue is full is shed — refused with a NACK telling the requester
// when the backlog should have drained. Sequence-less JOINs
// (fire-and-forget mode) are shed silently; their backstop is the
// soft-state refresh. Returns whether the JOIN may enter the service
// queue.
func (s *SCMP) admitJoin(home topology.NodeID, g packet.GroupID, member topology.NodeID, seq uint64) bool {
	if s.cfg.AdmitLimit <= 0 || s.service.backlog() < s.cfg.AdmitLimit {
		return true
	}
	s.net.NoteShed(home)
	if seq == 0 {
		return false
	}
	// Retry-after: the time the current backlog needs to drain through
	// the service capacity, so the shed member returns when a queue
	// slot is plausible instead of immediately re-offering.
	retryAfter := float64(s.service.backlog()+1) * s.cfg.ServiceTime / float64(len(s.service.busyUntil))
	payload := packet.EncodeNack(packet.NackInfo{Req: packet.Join, Seq: seq, RetryAfter: retryAfter})
	s.net.SendUnicast(home, &netsim.Packet{
		Kind:    packet.Nack,
		Group:   g,
		Src:     home,
		Dst:     member,
		Payload: payload,
		Size:    packet.ControlSize,
	})
	return false
}

// handleNack processes an admission-control refusal at the requester:
// the matching pending request's backoff timer is replaced by the
// m-router's retry-after hint. The deferred retransmission still goes
// through retryFire, so it consumes an attempt from the ladder — a
// repeatedly-NACKed request runs into its retry limit (and parks, with
// a budget) instead of retrying forever.
func (s *SCMP) handleNack(node topology.NodeID, pkt *netsim.Packet) {
	info, err := packet.DecodeNack(pkt.Payload)
	if err != nil {
		return
	}
	key := pendingKey{node, pkt.Group}
	p := s.pending[key]
	if p == nil || info.Req != p.kind || info.Seq < p.firstSeq || info.Seq > p.seq {
		return // stale NACK for a superseded request
	}
	if p.timer != nil {
		p.timer.Cancel()
	}
	wait := des.Time(info.RetryAfter)
	if wait <= 0 {
		wait = des.Time(s.cfg.AckTimeout)
	}
	p.timer = s.net.Sched.After(wait, func() { s.retryFire(key, p) })
}

// park moves a budget-exhausted request into the degraded parked state:
// one deferred re-attempt timer — the refresh interval when configured
// (the request re-attempts on the next refresh tick's cadence), else
// the next step of the backoff ladder it left.
func (s *SCMP) park(key pendingKey, p *pendingReq) {
	s.unpark(key)
	s.net.NotePark(s.noteNode(key))
	wait := des.Time(s.cfg.RefreshInterval)
	if wait <= 0 {
		wait = des.Time(s.cfg.AckTimeout * float64(uint64(1)<<uint(p.attempt+1)))
	}
	pk := &parkedReq{kind: p.kind, payload: p.payload, seq: p.seq, firstSeq: p.firstSeq}
	pk.timer = s.net.Sched.After(wait, func() {
		if s.parked[key] != pk {
			return // superseded by a newer request since
		}
		delete(s.parked, key)
		s.sendReliableOpt(key.node, key.g, pk.kind, pk.payload, true, pk.firstSeq)
	})
	s.parked[key] = pk
}

// lateAck resolves a parked request whose ACK arrived after the retry
// ladder gave up: the m-router did process the operation — the reply
// just lost the race with the park. Without this, a topology whose
// control round trip exceeds the whole backoff ladder livelocks: every
// ladder parks before its ACK returns, every deferred re-attempt
// re-sends under a fresh sequence, and every reply is forever "stale".
func (s *SCMP) lateAck(key pendingKey, a packet.AckInfo) {
	pk := s.parked[key]
	if pk == nil || a.Req != pk.kind || a.Seq < pk.firstSeq || a.Seq > pk.seq {
		return
	}
	s.unpark(key)
	s.net.NoteParkRecover(s.noteNode(key))
	if pk.kind == packet.Replicate {
		s.flushAckQueue(key.g)
	}
}

// unpark cancels and forgets key's parked request, if any: a newer
// reliable request from the same (router, group) supersedes it, exactly
// as it supersedes a pending one.
func (s *SCMP) unpark(key pendingKey) {
	pk := s.parked[key]
	if pk == nil {
		return
	}
	if pk.timer != nil {
		pk.timer.Cancel()
	}
	delete(s.parked, key)
}

// ControlBacklog returns the m-router service centre's pending
// control-operation count — the queue depth AdmitLimit bounds. Always 0
// without a ServiceTime.
func (s *SCMP) ControlBacklog() int { return s.service.backlog() }

// PendingRequests returns the number of unacknowledged reliable control
// requests outstanding across all routers.
func (s *SCMP) PendingRequests() int { return len(s.pending) }

// ParkedRequests returns the number of requests currently in the
// degraded parked state.
func (s *SCMP) ParkedRequests() int { return len(s.parked) }
