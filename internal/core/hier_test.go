package core

import (
	"math/rand"
	"testing"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// hierNet builds a transit-stub network in hierarchical mode, using the
// generator's own domain labels and the default (lowest-id) per-domain
// m-router placement.
func hierNet(t testing.TB, cfg topology.TransitStubConfig, seed int64, extra Config) (*netsim.Network, *SCMP, *topology.DomainView) {
	t.Helper()
	g, info, err := topology.TransitStub(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("TransitStub: %v", err)
	}
	view, err := topology.NewDomainView(g, info.Domain)
	if err != nil {
		t.Fatalf("NewDomainView: %v", err)
	}
	extra.Domains = info.Domain
	extra.DomainMRouters = view.MRouters()
	s := New(extra)
	n := netsim.New(g, s)
	return n, s, view
}

// smallTS is a ~81-node transit-stub: 3 transit domains of 3 routers,
// one 8-router stub per transit router — 12 domains in all.
func smallTS() topology.TransitStubConfig {
	return topology.TransitStubConfig{TransitDomains: 3, TransitSize: 3, StubsPerTransitNode: 1, StubSize: 8, EdgeProb: 0.4}
}

// requireInstalledMatchesComposed asserts, after a full drain, that the
// routers' installed entries mirror the composed tree exactly: every
// composed-tree node is on tree with its composed parent as upstream
// and its composed children among its downstream, and no router off the
// composed tree still forwards for the group.
func requireInstalledMatchesComposed(t *testing.T, s *SCMP, g packet.GroupID) {
	t.Helper()
	tree := s.GroupTree(g)
	if tree == nil {
		t.Fatal("no group tree")
	}
	n := tree.Graph().N()
	for v := 0; v < n; v++ {
		id := topology.NodeID(v)
		e, ok := s.Entry(id, g)
		if !tree.OnTree(id) {
			if ok && e.OnTree {
				t.Fatalf("node %d installed on tree but composed tree excludes it", v)
			}
			continue
		}
		if !ok || !e.OnTree {
			t.Fatalf("composed-tree node %d has no installed entry", v)
		}
		p, hasParent := tree.Parent(id)
		if hasParent {
			if e.Upstream != p {
				t.Fatalf("node %d upstream = %d, composed parent = %d", v, e.Upstream, p)
			}
		} else if e.Upstream != noUpstream {
			t.Fatalf("root %d has upstream %d", v, e.Upstream)
		}
		want := map[topology.NodeID]bool{}
		for _, c := range tree.Children(id) {
			want[c] = true
		}
		for _, d := range e.Downstream {
			if !want[d] {
				t.Fatalf("node %d has stale downstream %d", v, d)
			}
			delete(want, d)
		}
		if len(want) != 0 {
			t.Fatalf("node %d missing downstream %v", v, want)
		}
	}
}

// TestHierCoreMultiDomainDelivery drives joins across several domains
// through the per-domain m-router runtime and checks that the installed
// forwarding state converges to the composed tree and delivers data
// exactly once from on-tree, off-tree and core sources.
func TestHierCoreMultiDomainDelivery(t *testing.T) {
	n, s, view := hierNet(t, smallTS(), 7, Config{Kappa: 2})
	g := view.Graph()
	// One member per stub attached to transit domain 0 and 1, plus a
	// couple of transit-domain members, plus each of two local
	// m-routers as their own DR.
	members := []topology.NodeID{}
	seenDom := map[int]bool{}
	for v := g.N() - 1; v >= 0 && len(members) < 8; v-- {
		d := view.Domain(topology.NodeID(v))
		if d >= 3 && !seenDom[d] { // stub domains only, one member each
			seenDom[d] = true
			members = append(members, topology.NodeID(v))
		}
	}
	members = append(members, s.cfg.DomainMRouters[4], s.cfg.DomainMRouters[6])
	for _, m := range members {
		n.HostJoin(m, grp)
		n.Run()
	}
	requireInstalledMatchesComposed(t, s, grp)
	comp := s.GroupComposer(grp)
	if comp == nil || comp.Tree().MemberCount() != len(members) {
		t.Fatalf("composer members = %d, want %d", comp.Tree().MemberCount(), len(members))
	}
	if comp.ActiveDomains() < 3 {
		t.Fatalf("only %d active domains across a multi-domain member set", comp.ActiveDomains())
	}
	// Core m-router source, member source, and an off-tree source that
	// must encapsulate to the core.
	sources := []topology.NodeID{s.HomeOf(grp), members[0]}
	for v := 0; v < g.N(); v++ {
		if !comp.Tree().OnTree(topology.NodeID(v)) {
			sources = append(sources, topology.NodeID(v))
			break
		}
	}
	for _, src := range sources {
		seq := n.SendData(src, grp, 1000)
		n.Run()
		missing, anomalous := n.CheckDelivery(seq)
		if len(missing) != 0 || len(anomalous) != 0 {
			t.Fatalf("src %d: missing=%v anomalous=%v", src, missing, anomalous)
		}
	}
	if n.Metrics.Crossings(packet.EncapData) == 0 {
		t.Fatal("off-tree source should have encapsulated to the core m-router")
	}
}

// TestHierCoreControlLocality compares the control-plane cost of the
// same join set under flat and hierarchical service: hierarchical JOINs
// terminate at the member's local m-router, so their total link
// crossings must be strictly below flat's JOINs to the core, with the
// difference made up by at most one GRAFT per activated domain.
func TestHierCoreControlLocality(t *testing.T) {
	cfg := smallTS()
	const seed = 21
	nh, sh, view := hierNet(t, cfg, seed, Config{Kappa: 2})
	g, info, err := topology.TransitStub(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("TransitStub: %v", err)
	}
	_ = info
	nf, _ := newNet(g, Config{MRouter: sh.HomeOf(grp), Kappa: 2})
	members := []topology.NodeID{}
	for v := g.N() - 1; v >= 0 && len(members) < 12; v -= 7 {
		if view.Domain(topology.NodeID(v)) >= 3 {
			members = append(members, topology.NodeID(v))
		}
	}
	for _, m := range members {
		nh.HostJoin(m, grp)
		nf.HostJoin(m, grp)
	}
	nh.Run()
	nf.Run()
	hierJoins := nh.Metrics.Crossings(packet.Join)
	flatJoins := nf.Metrics.Crossings(packet.Join)
	if hierJoins >= flatJoins {
		t.Fatalf("hier JOIN crossings %d not below flat %d: no locality win", hierJoins, flatJoins)
	}
	grafts := nh.Metrics.Crossings(packet.Graft)
	if grafts == 0 {
		t.Fatal("multi-domain joins should have sent border GRAFTs")
	}
	if comp := sh.GroupComposer(grp); comp != nil {
		// At most one graft per activated non-core domain reached the wire.
		if per := int(grafts); per > 0 && comp.ActiveDomains() == 0 {
			t.Fatalf("grafts %d with no active domains", per)
		}
	}
	if nf.Metrics.Crossings(packet.Graft) != 0 {
		t.Fatal("flat mode must never send GRAFT")
	}
}

// TestHierCoreSingleDomainDegeneratesToFlat is the core-level k=1 arm
// of the differential gate: a one-domain hierarchical configuration
// must run the flat code path and produce byte-identical wire traffic
// and routing state.
func TestHierCoreSingleDomainDegeneratesToFlat(t *testing.T) {
	type hop struct {
		kind     packet.Kind
		from, to topology.NodeID
		size     int
	}
	run := func(cfg Config) ([]hop, *SCMP, *netsim.Network) {
		s := New(cfg)
		n := netsim.New(railGraph(), s)
		var log []hop
		n.Trace = func(from, to topology.NodeID, pkt *netsim.Packet) {
			log = append(log, hop{pkt.Kind, from, to, pkt.Size})
		}
		for _, m := range []topology.NodeID{4, 1, 2} {
			n.HostJoin(m, grp)
			n.Run()
		}
		n.HostLeave(1, grp)
		n.Run()
		n.SendData(3, grp, 900)
		n.Run()
		return log, s, n
	}
	flatLog, fs, _ := run(Config{MRouter: 0})
	hierLog, hs, _ := run(Config{Domains: make([]int, 5), DomainMRouters: []topology.NodeID{0}})
	if hs.hierarchical() {
		t.Fatal("single-domain configuration should degenerate to the flat engine")
	}
	if len(flatLog) != len(hierLog) {
		t.Fatalf("trace lengths differ: flat %d, hier-k1 %d", len(flatLog), len(hierLog))
	}
	for i := range flatLog {
		if flatLog[i] != hierLog[i] {
			t.Fatalf("trace diverges at %d: flat %+v, hier-k1 %+v", i, flatLog[i], hierLog[i])
		}
	}
	for v := topology.NodeID(0); v < 5; v++ {
		fe, fok := fs.Entry(v, grp)
		he, hok := hs.Entry(v, grp)
		if fok != hok || fe.OnTree != he.OnTree || fe.Upstream != he.Upstream || fe.HasLocal != he.HasLocal {
			t.Fatalf("node %d entry differs: flat %+v, hier-k1 %+v", v, fe, he)
		}
	}
}

// TestHierCoreChurnConverges runs a randomized join/leave churn through
// the hierarchical runtime — including domain deactivation and
// reactivation — with soft-state refresh on, then drains and checks the
// installed state converged to the composed tree and still delivers
// exactly once.
func TestHierCoreChurnConverges(t *testing.T) {
	n, s, view := hierNet(t, smallTS(), 33, Config{Kappa: 2, RefreshInterval: 50, RefreshSuppress: true})
	g := view.Graph()
	r := rand.New(rand.NewSource(99))
	var pool []topology.NodeID
	for v := 0; v < g.N(); v++ {
		if view.Domain(topology.NodeID(v)) >= 3 {
			pool = append(pool, topology.NodeID(v))
		}
	}
	in := map[topology.NodeID]bool{}
	for step := 0; step < 300; step++ {
		m := pool[r.Intn(len(pool))]
		if in[m] {
			delete(in, m)
			n.HostLeave(m, grp)
		} else {
			in[m] = true
			n.HostJoin(m, grp)
		}
		if step%17 == 0 {
			n.RunUntil(n.Now() + 10)
		}
	}
	// Make sure at least one member remains, then drain fully: quiesce
	// the refresh timers so Run can terminate, after one final refresh
	// window has had the chance to heal any churn transient.
	if len(in) == 0 {
		m := pool[0]
		in[m] = true
		n.HostJoin(m, grp)
	}
	n.RunUntil(n.Now() + 200)
	s.Quiesce()
	n.Run()
	comp := s.GroupComposer(grp)
	if comp.Tree().MemberCount() != len(in) {
		t.Fatalf("composer members = %d, want %d", comp.Tree().MemberCount(), len(in))
	}
	requireInstalledMatchesComposed(t, s, grp)
	seq := n.SendData(s.HomeOf(grp), grp, 1000)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

// TestHierCoreDomainDeactivation checks the domain lifecycle through
// the runtime: activating a domain sends its splice once, draining it
// releases the composer's local engine and the network prunes the
// branch, and a re-join re-activates cleanly.
func TestHierCoreDomainDeactivation(t *testing.T) {
	n, s, view := hierNet(t, smallTS(), 5, Config{Kappa: 2})
	g := view.Graph()
	// Two members of one far stub domain.
	var dom int
	var ms []topology.NodeID
	for v := g.N() - 1; v >= 0; v-- {
		d := view.Domain(topology.NodeID(v))
		if d >= 3 {
			if dom == 0 {
				dom = d
			}
			if d == dom {
				ms = append(ms, topology.NodeID(v))
				if len(ms) == 2 {
					break
				}
			}
		}
	}
	for _, m := range ms {
		n.HostJoin(m, grp)
		n.Run()
	}
	comp := s.GroupComposer(grp)
	if _, active := comp.DomainAnchor(dom); !active {
		t.Fatalf("domain %d should be active", dom)
	}
	base := comp.ActiveDomains()
	for _, m := range ms {
		n.HostLeave(m, grp)
		n.Run()
	}
	if _, active := comp.DomainAnchor(dom); active {
		t.Fatalf("domain %d should have deactivated after its last leave", dom)
	}
	if comp.ActiveDomains() >= base {
		t.Fatalf("active domains %d did not drop from %d", comp.ActiveDomains(), base)
	}
	requireInstalledMatchesComposed(t, s, grp)
	// Reactivate and verify delivery end-to-end.
	n.HostJoin(ms[0], grp)
	n.Run()
	if _, active := comp.DomainAnchor(dom); !active {
		t.Fatalf("domain %d should have reactivated", dom)
	}
	seq := n.SendData(s.HomeOf(grp), grp, 800)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}
