package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

func multiNet(t testing.TB, seed int64, homes []topology.NodeID) (*netsim.Network, *SCMP) {
	t.Helper()
	g, err := topology.Random(topology.DefaultRandom(25, 4), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{MRouters: homes, Kappa: 1.5})
	n := netsim.New(g, s)
	return n, s
}

func TestMultiMRouterAssignment(t *testing.T) {
	_, s := multiNet(t, 1, []topology.NodeID{3, 7})
	if s.HomeOf(2) != 3 || s.HomeOf(3) != 7 || s.HomeOf(4) != 3 {
		t.Fatalf("homes: g2->%d g3->%d g4->%d", s.HomeOf(2), s.HomeOf(3), s.HomeOf(4))
	}
	if s.MRouter() != 3 {
		t.Fatalf("MRouter = %d, want first home 3", s.MRouter())
	}
}

func TestMultiMRouterTreesRootedAtHomes(t *testing.T) {
	n, s := multiNet(t, 2, []topology.NodeID{3, 7})
	n.HostJoin(10, 2) // home 3
	n.HostJoin(10, 3) // home 7
	n.Run()
	if got := s.GroupTree(2).Root(); got != 3 {
		t.Fatalf("group 2 root = %d, want 3", got)
	}
	if got := s.GroupTree(3).Root(); got != 7 {
		t.Fatalf("group 3 root = %d, want 7", got)
	}
}

func TestMultiMRouterDelivery(t *testing.T) {
	n, s := multiNet(t, 3, []topology.NodeID{3, 7})
	for _, g := range []packet.GroupID{2, 3, 4, 5} {
		n.HostJoin(10, g)
		n.HostJoin(15, g)
		n.HostJoin(20, g)
	}
	n.Run()
	for _, g := range []packet.GroupID{2, 3, 4, 5} {
		if err := s.GroupTree(g).Validate(); err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
		seq := n.SendData(1, g, 500) // off-tree source: encap to home
		n.Run()
		missing, anomalous := n.CheckDelivery(seq)
		if len(missing) != 0 || len(anomalous) != 0 {
			t.Fatalf("group %d: missing=%v anomalous=%v", g, missing, anomalous)
		}
	}
}

func TestMultiMRouterLoadSpread(t *testing.T) {
	// With 8 groups over 2 m-routers, encapsulated traffic must reach
	// both homes, not concentrate on one (the paper's geographic
	// load-balancing motivation).
	n, s := multiNet(t, 4, []topology.NodeID{3, 7})
	arrivedAt := map[topology.NodeID]int{}
	n.Trace = func(from, to topology.NodeID, pkt *netsim.Packet) {
		if pkt.Kind == packet.EncapData && (to == 3 || to == 7) && pkt.Dst == to {
			arrivedAt[to]++
		}
	}
	for g := packet.GroupID(1); g <= 8; g++ {
		n.HostJoin(10, g)
		n.Run()
		n.SendData(1, g, 500)
		n.Run()
	}
	if arrivedAt[3] == 0 || arrivedAt[7] == 0 {
		t.Fatalf("encap distribution = %v, want both m-routers used", arrivedAt)
	}
	_ = s
}

func TestMultiMRouterConfigGuards(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate m-routers accepted")
			}
		}()
		New(Config{MRouters: []topology.NodeID{3, 3}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("standby with multiple m-routers accepted")
			}
		}()
		New(Config{MRouters: []topology.NodeID{3, 7}, Standby: 5})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range m-router accepted")
			}
		}()
		g := topology.New(2)
		g.MustAddEdge(0, 1, 1, 1)
		netsim.New(g, New(Config{MRouters: []topology.NodeID{0, 99}}))
	}()
}

// Property: under churn across many groups on two m-routers, trees stay
// valid and data delivers exactly once, with each group rooted at its
// published home.
func TestPropertyMultiMRouterChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(20, 4), rng)
		if err != nil {
			return false
		}
		homes := []topology.NodeID{1, 2}
		s := New(Config{MRouters: homes, Kappa: 1.5})
		n := netsim.New(g, s)
		members := map[packet.GroupID]map[topology.NodeID]bool{}
		for op := 0; op < 30; op++ {
			gid := packet.GroupID(1 + rng.Intn(4))
			v := topology.NodeID(rng.Intn(g.N()))
			if members[gid] == nil {
				members[gid] = map[topology.NodeID]bool{}
			}
			if members[gid][v] {
				n.HostLeave(v, gid)
				delete(members[gid], v)
			} else {
				n.HostJoin(v, gid)
				members[gid][v] = true
			}
			n.Run()
			tr := s.GroupTree(gid)
			if tr != nil {
				if tr.Root() != s.HomeOf(gid) {
					return false
				}
				if err := tr.Validate(); err != nil {
					return false
				}
			}
			if len(members[gid]) == 0 {
				continue
			}
			seq := n.SendData(topology.NodeID(rng.Intn(g.N())), gid, 300)
			n.Run()
			missing, anomalous := n.CheckDelivery(seq)
			if len(missing) != 0 || len(anomalous) != 0 {
				t.Logf("seed %d op %d gid %d: missing=%v anomalous=%v", seed, op, gid, missing, anomalous)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
