//go:build invariants

package core

import (
	"scmp/internal/invariant"
	"scmp/internal/mtree"
	"scmp/internal/topology"
)

// commitCheck runs the full cross-package invariant check on every tree
// the m-router commits: acyclic, connected, rooted at the active
// m-router's home node, symmetric pointers, members on-tree. The delay
// bound is deliberately not asserted here — DCDM's relative bound
// shrinks when the farthest member leaves without restructuring the
// survivors, so committed trees only promise the bound at join time. A
// failure is a protocol bug and panics.
func commitCheck(home topology.NodeID, t *mtree.Tree) {
	if err := invariant.CheckTree(t, invariant.TreeSpec{Root: home}); err != nil {
		panic("core: committed tree violates invariant: " + err.Error())
	}
}
