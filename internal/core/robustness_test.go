package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

func TestStaleTreePacketIgnored(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	e2, _ := s.Entry(2, grp)
	// Replay an old-version TREE packet at node 2 claiming a bogus
	// subtree; the entry must not change.
	bogus := packet.EncodeSubtree(packet.Subtree{Children: []packet.Child{{Addr: 3}}})
	s.HandlePacket(2, &netsim.Packet{
		Kind: packet.Tree, Group: grp, From: 1, Version: 0, Payload: bogus,
	})
	n.Run()
	after, _ := s.Entry(2, grp)
	if len(after.Downstream) != len(e2.Downstream) || after.Upstream != e2.Upstream {
		t.Fatalf("stale TREE mutated entry: %+v -> %+v", e2, after)
	}
}

func TestStaleBranchIgnored(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	before, _ := s.Entry(2, grp)
	payload := packet.EncodeBranch([]topology.NodeID{2, 3})
	s.HandlePacket(2, &netsim.Packet{
		Kind: packet.Branch, Group: grp, From: 1, Version: 0, Payload: payload,
	})
	n.Run()
	after, _ := s.Entry(2, grp)
	if len(after.Downstream) != len(before.Downstream) {
		t.Fatalf("stale BRANCH mutated entry: %+v -> %+v", before, after)
	}
}

func TestCorruptPayloadsDropped(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	before, _ := s.Entry(2, grp)
	for _, kind := range []packet.Kind{packet.Tree, packet.Branch} {
		s.HandlePacket(2, &netsim.Packet{
			Kind: kind, Group: grp, From: 1, Version: 99,
			Payload: []byte{0xde, 0xad},
		})
	}
	n.Run()
	after, _ := s.Entry(2, grp)
	if after.Upstream != before.Upstream || len(after.Downstream) != len(before.Downstream) {
		t.Fatal("corrupt payload mutated entry")
	}
}

func TestBranchForWrongNodeIgnored(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	// BRANCH whose head is not this node must be ignored.
	payload := packet.EncodeBranch([]topology.NodeID{3, 2})
	before, _ := s.Entry(2, grp)
	s.HandlePacket(2, &netsim.Packet{
		Kind: packet.Branch, Group: grp, From: 1, Version: 99, Payload: payload,
	})
	after, _ := s.Entry(2, grp)
	if len(after.Downstream) != len(before.Downstream) {
		t.Fatal("misaddressed BRANCH accepted")
	}
}

func TestFlushWithLocalMembersRejoins(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	// Forge a FLUSH from 4's upstream with a current version: the DR
	// must tear down and immediately re-join.
	e4, _ := s.Entry(4, grp)
	joinsBefore := n.Metrics.Crossings(packet.Join)
	s.HandlePacket(4, &netsim.Packet{
		Kind: packet.Flush, Group: grp, From: e4.Upstream, Version: 1 << 40,
	})
	n.Run()
	if got := n.Metrics.Crossings(packet.Join); got <= joinsBefore {
		t.Fatal("flushed member DR did not re-join")
	}
	after, _ := s.Entry(4, grp)
	if !after.OnTree || !after.HasLocal {
		t.Fatalf("DR not restored after flush: %+v", after)
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	if missing, _ := n.CheckDelivery(seq); len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestFlushFromNonUpstreamIgnored(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	before, _ := s.Entry(2, grp)
	s.HandlePacket(2, &netsim.Packet{
		Kind: packet.Flush, Group: grp, From: 3 /* not 2's upstream */, Version: 1 << 40,
	})
	after, _ := s.Entry(2, grp)
	if after.OnTree != before.OnTree {
		t.Fatal("flush from non-upstream accepted")
	}
}

func TestLeaveUnknownGroupHarmless(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostLeave(4, 77) // never joined
	n.Run()
	if _, ok := s.Entry(4, 77); ok {
		t.Fatal("phantom entry created")
	}
}

func TestPruneAtOffTreeRouterIgnored(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	s.HandlePacket(3, &netsim.Packet{Kind: packet.Prune, Group: grp, From: 2})
	n.Run()
	if _, ok := s.Entry(3, grp); ok {
		if e, _ := s.Entry(3, grp); e.OnTree {
			t.Fatal("prune created tree state")
		}
	}
}

// Property: feeding the protocol random garbage packets at random nodes
// never panics and never breaks an established tree's delivery.
func TestPropertyGarbageResilience(t *testing.T) {
	f := func(seed int64, raw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(12, 3), rng)
		if err != nil {
			return false
		}
		n, s := newNet(g, Config{MRouter: 0})
		n.HostJoin(5, grp)
		n.HostJoin(9, grp)
		n.Run()
		kinds := []packet.Kind{packet.Tree, packet.Branch, packet.Prune, packet.Flush, packet.Join, packet.Leave, packet.Data, packet.EncapData, packet.Replicate}
		for i := 0; i < 20; i++ {
			node := topology.NodeID(rng.Intn(g.N()))
			from := topology.NodeID(rng.Intn(g.N()))
			s.HandlePacket(node, &netsim.Packet{
				Kind:    kinds[rng.Intn(len(kinds))],
				Group:   grp,
				Src:     from,
				From:    from,
				Version: uint64(rng.Intn(3)),
				Payload: raw,
			})
		}
		n.Run()
		// The m-router's authoritative tree still validates; a fresh
		// distribution (triggered by a new join) restores the network.
		if err := s.GroupTree(grp).Validate(); err != nil {
			return false
		}
		n.HostJoin(7, grp)
		n.Run()
		seq := n.SendData(0, grp, 100)
		n.Run()
		_, anomalous := n.CheckDelivery(seq)
		// Deliveries may be disturbed by forged PRUNEs (an attacker in
		// the domain can always cut a branch), but duplicates must never
		// appear and nothing may panic.
		return len(anomalous) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
