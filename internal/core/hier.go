// Hierarchical multi-domain SCMP (PROTOCOL.md §13, DESIGN.md §15): one
// m-router per domain, each resolving its own members' JOIN/LEAVE
// against the shared inter-domain composer (mtree.HierDCDM). Membership
// signalling stays inside the member's domain; the only control traffic
// that crosses a domain boundary is the border graft — a GRAFT from the
// local m-router handing the group's core m-router a newly realized
// backbone splice, answered by the core with the BRANCH that installs
// it — plus the install packets themselves walking the composed paths.
//
// Distribution discipline. Flat SCMP bumps the group version per join
// and relies on every BRANCH sharing the home as origin (per-link FIFO)
// for ordering. Hierarchical installs have many origins — each domain's
// m-router plus the core — so here the version moves only when a whole
// TREE is distributed (restructure, refresh): concurrent BRANCHes carry
// equal versions and never suppress each other, while anything in
// flight across a restructure is still fenced off by the TREE's bumped
// version. BRANCH packets are unicast-addressed to their first path
// node (the graft point); an addressed head never adopts the packet's
// unicast-relay From as its upstream (see handleBranch).
package core

import (
	"fmt"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// hierarchical reports whether the instance runs the multi-domain mode.
// A single-domain configuration is normalised to flat in New, so
// hierarchical implies at least two domains.
func (s *SCMP) hierarchical() bool { return s.view != nil }

// localHome returns the m-router of v's domain — where v's DR sends its
// control requests in hierarchical mode.
func (s *SCMP) localHome(v topology.NodeID) topology.NodeID {
	return s.cfg.DomainMRouters[s.cfg.Domains[v]]
}

// ctrlHome returns the m-router node's control requests for g go to:
// the node's local m-router in hierarchical mode, the group's home
// otherwise.
func (s *SCMP) ctrlHome(node topology.NodeID, g packet.GroupID) topology.NodeID {
	if s.view != nil {
		return s.localHome(node)
	}
	return s.home(g)
}

// isCtrlHome reports whether node is the m-router that serves
// requester's control requests for g.
func (s *SCMP) isCtrlHome(node, requester topology.NodeID, g packet.GroupID) bool {
	if s.view != nil {
		return node == s.localHome(requester)
	}
	return s.isHome(node, g)
}

// hierJoin processes a JOIN at the member's local m-router: run the
// composer, then distribute exactly the paths that changed — the local
// graft as a BRANCH from this m-router, and, when the join activated
// its domain, the backbone splice via a GRAFT to the core. A composed-
// tree restructure falls back to a full TREE distribution from the
// core, exactly like flat.
func (s *SCMP) hierJoin(member topology.NodeID, g packet.GroupID) {
	gs := s.group(g)
	gs.lastChange = s.net.Now()
	defer s.armRefresh(g, gs)
	s.acct.Adopt(g, fmt.Sprintf("group-%d", g))
	if gs.session == 0 {
		if id, err := s.acct.StartSession(g, 0, nil); err == nil {
			gs.session = id
		}
	}
	_ = s.acct.MemberJoined(g, member)
	lm := s.localHome(member)
	res := gs.hier.Join(member)
	if res.Restructured {
		s.net.NoteRestructure(lm)
	}
	s.syncMRouterEntry(g, gs)
	if res.Restructured || s.cfg.DisableBranch {
		gs.version++
		s.distributeTree(g, gs)
		return
	}
	if res.Activated && len(res.SplicePath) > 1 {
		// Border graft: the splice's newly grafted segment plus the
		// member's local graft below it form one contiguous composed
		// path. Hand it to the core m-router, which installs it as a
		// single BRANCH — the only control exchange crossing domains.
		install := append([]topology.NodeID(nil), res.SplicePath...)
		if len(res.Path) > 1 {
			install = append(install, res.Path[1:]...)
		}
		s.sendGraft(lm, g, gs.version, install)
		return
	}
	if res.AlreadyOn {
		// The member was already a relay: refresh its path from the
		// domain anchor (idempotent; the DR may be awaiting re-homing).
		path := s.branchFromAnchor(gs, res.Domain, member)
		if path == nil {
			gs.version++
			s.distributeTree(g, gs)
			return
		}
		s.deliverBranch(lm, g, gs.version, path)
		return
	}
	s.deliverBranch(lm, g, gs.version, res.Path)
}

// hierLeave processes a LEAVE at the member's local m-router. The
// network-side teardown is the leaving DR's hop-by-hop PRUNE, exactly
// as in flat mode; the composer prunes its copy and releases the
// domain's engine when its last member departs.
func (s *SCMP) hierLeave(member topology.NodeID, g packet.GroupID) {
	gs := s.groups[g]
	if gs == nil {
		return
	}
	_ = s.acct.MemberLeft(g, member)
	gs.lastChange = s.net.Now()
	gs.hier.Leave(member)
	s.syncMRouterEntry(g, gs)
}

// branchFromAnchor returns the composed-tree path from domain d's
// splice anchor down to member (anchor first), nil when it cannot be
// derived (caller falls back to a TREE distribution).
func (s *SCMP) branchFromAnchor(gs *groupState, d int, member topology.NodeID) []topology.NodeID {
	anchor, ok := gs.hier.DomainAnchor(d)
	if !ok {
		return nil
	}
	rev := gs.hier.Tree().PathToRoot(member) // member ... root
	if rev == nil {
		return nil
	}
	idx := -1
	for i, v := range rev {
		if v == anchor {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	path := make([]topology.NodeID, idx+1)
	for i := 0; i <= idx; i++ {
		path[i] = rev[idx-i]
	}
	return path
}

// deliverBranch installs path (head already on the composed tree) as a
// BRANCH: unicast-addressed to the head, then self-routing hop-by-hop.
// Delivering to the origin itself is immediate (netsim self-delivery).
func (s *SCMP) deliverBranch(origin topology.NodeID, g packet.GroupID, version uint64, path []topology.NodeID) {
	if len(path) == 0 {
		return
	}
	payload := packet.EncodeBranch(path)
	s.net.SendUnicast(origin, &netsim.Packet{
		Kind:    packet.Branch,
		Group:   g,
		Src:     origin,
		Dst:     path[0],
		Version: version,
		Payload: payload,
		Size:    len(payload) + 8,
	})
}

// sendGraft asks the group's core m-router to install a newly realized
// inter-domain splice (plus the first member's local tail).
func (s *SCMP) sendGraft(lm topology.NodeID, g packet.GroupID, version uint64, path []topology.NodeID) {
	payload := packet.EncodeBranch(path)
	s.net.SendUnicast(lm, &netsim.Packet{
		Kind:    packet.Graft,
		Group:   g,
		Src:     lm,
		Dst:     s.home(g),
		Version: version,
		Payload: payload,
		Size:    len(payload) + 8,
	})
}

// handleGraft is the core m-router's side of the border graft: validate
// and distribute the splice as a BRANCH, unless a restructure's TREE
// already superseded it.
func (s *SCMP) handleGraft(node topology.NodeID, pkt *netsim.Packet) {
	path, err := packet.DecodeBranch(pkt.Payload)
	if err != nil || len(path) < 2 {
		return
	}
	gs := s.groups[pkt.Group]
	if gs == nil || gs.hier == nil {
		return
	}
	if pkt.Version < gs.version {
		return // a restructure redistributed the whole tree meanwhile
	}
	s.deliverBranch(node, pkt.Group, pkt.Version, path)
}
