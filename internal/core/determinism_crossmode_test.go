// Cross-mode determinism: the companion to determinism_test.go's
// byte-identical-trace regression. That test proves two identically
// seeded serial runs agree; this one proves the runner's parallel
// fan-out changes nothing — experiments sharded over 4 workers must
// produce byte-identical writer output to the pure serial path, because
// shards are independent and merge in canonical seed order. It lives in
// package core_test (not core) so it can import the experiment harness
// without an import cycle.
package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"scmp/internal/experiment"
	"scmp/internal/topology"
)

func TestFig7ParallelMatchesSerial(t *testing.T) {
	render := func(parallel int) []byte {
		cfg := experiment.Fig7Config{
			Nodes: 30, Alpha: 0.25, Beta: 0.2,
			GroupSizes: []int{5, 10}, Seeds: 3,
			Parallel: parallel,
		}
		var buf bytes.Buffer
		experiment.WriteFig7(&buf, experiment.RunFig7(cfg))
		return buf.Bytes()
	}
	serial, par := render(1), render(4)
	if !bytes.Equal(serial, par) {
		t.Fatalf("fig7 output diverges between -parallel 1 and -parallel 4:\nserial:\n%s\nparallel:\n%s", serial, par)
	}
}

func TestFig89ParallelMatchesSerial(t *testing.T) {
	render := func(parallel int) []byte {
		cfg := experiment.Fig89Config{
			GroupSizes: []int{8}, Seeds: 4, SimTime: 5, DataRate: 1,
			PruneLifetime: 5,
			Topologies:    []string{experiment.TopoArpanet, experiment.TopoRand3},
			Parallel:      parallel,
		}
		var buf bytes.Buffer
		points := experiment.RunFig89(cfg)
		experiment.WriteFig8(&buf, points)
		experiment.WriteFig9(&buf, points)
		return buf.Bytes()
	}
	serial, par := render(1), render(4)
	if !bytes.Equal(serial, par) {
		t.Fatalf("fig8/9 output diverges between -parallel 1 and -parallel 4:\nserial:\n%s\nparallel:\n%s", serial, par)
	}
}

// TestFaultsParallelMatchesSerial proves the chaos sweep's fault
// schedules, loss draws and repair runs shard deterministically: the
// parallel fan-out must render byte-identical output to the serial
// path.
func TestFaultsParallelMatchesSerial(t *testing.T) {
	render := func(parallel int) []byte {
		cfg := experiment.FaultsConfig{
			Topologies: []string{experiment.TopoArpanet, experiment.TopoRand3},
			LossRates:  []float64{0, 0.05},
			GroupSize:  8, Seeds: 3, SimTime: 10, DataRate: 1,
			Parallel: parallel,
		}
		var buf bytes.Buffer
		if err := experiment.WriteFaultsCSV(&buf, experiment.RunFaults(cfg)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, par := render(1), render(4)
	if !bytes.Equal(serial, par) {
		t.Fatalf("faults output diverges between -parallel 1 and -parallel 4:\nserial:\n%s\nparallel:\n%s", serial, par)
	}
}

// TestAllPairsParallelMatchesSerial proves the sharded all-pairs build
// underneath every protocol's path tables is itself mode-independent:
// the eager table built at GOMAXPROCS=1, the same build at
// GOMAXPROCS=4, and the lazy row-on-demand table must hand out
// byte-identical rows. This is the routing-layer leg of the
// byte-identical-output guarantee the experiment-level tests above
// check end to end.
func TestAllPairsParallelMatchesSerial(t *testing.T) {
	wg, err := topology.Waxman(topology.DefaultWaxman(80), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	g := wg.Graph
	render := func(ap *topology.AllPairs) []byte {
		var buf bytes.Buffer
		for u := 0; u < ap.N(); u++ {
			row := ap.Row(topology.NodeID(u))
			fmt.Fprintf(&buf, "%d %v %v %v %v\n", row.Src, row.Dist, row.Delay, row.Cost, row.Parent)
		}
		return buf.Bytes()
	}
	for _, w := range []topology.Weight{topology.ByDelay, topology.ByCost} {
		serial := func() []byte {
			prev := runtime.GOMAXPROCS(1)
			defer runtime.GOMAXPROCS(prev)
			return render(topology.NewAllPairs(g, w))
		}()
		parallel := func() []byte {
			prev := runtime.GOMAXPROCS(4)
			defer runtime.GOMAXPROCS(prev)
			return render(topology.NewAllPairs(g, w))
		}()
		lazy := render(topology.NewLazyAllPairs(g, w))
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("%s all-pairs rows diverge between GOMAXPROCS 1 and 4", w)
		}
		if !bytes.Equal(serial, lazy) {
			t.Fatalf("%s all-pairs rows diverge between eager and lazy builds", w)
		}
	}
}

// TestOtherExperimentsParallelMatchSerial sweeps the remaining harnesses
// with small configs: CSV output (means and Student-t confidence
// half-widths per cell) must be identical across modes.
func TestOtherExperimentsParallelMatchSerial(t *testing.T) {
	runs := []struct {
		name   string
		render func(parallel int) []byte
	}{
		{"fig7x", func(p int) []byte {
			cfg := experiment.Fig7xConfig{GroupSize: 8, Seeds: 2, Kappa: 1.5, Parallel: p}
			var buf bytes.Buffer
			if err := experiment.WriteFig7xCSV(&buf, experiment.RunFig7x(cfg)); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
		{"placement", func(p int) []byte {
			cfg := experiment.PlacementConfig{Nodes: 40, GroupSize: 10, Seeds: 2, Trials: 3, Kappa: 1.5, Parallel: p}
			var buf bytes.Buffer
			if err := experiment.WritePlacementCSV(&buf, experiment.RunPlacement(cfg)); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
		{"state", func(p int) []byte {
			cfg := experiment.StateConfig{Nodes: 25, Degree: 3, Groups: []int{1, 2},
				Members: 4, Senders: 2, PacketsPer: 1, Seeds: 2, Parallel: p}
			var buf bytes.Buffer
			if err := experiment.WriteStateCSV(&buf, experiment.RunState(cfg)); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
		{"concentration", func(p int) []byte {
			cfg := experiment.ConcentrationConfig{Nodes: 25, Degree: 3, Groups: 2,
				Members: 4, Senders: 3, Rounds: 1, Seeds: 2, Parallel: p}
			var buf bytes.Buffer
			if err := experiment.WriteConcentrationCSV(&buf, experiment.RunConcentration(cfg)); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
	}
	for _, r := range runs {
		serial, par := r.render(1), r.render(4)
		if !bytes.Equal(serial, par) {
			t.Errorf("%s output diverges between -parallel 1 and -parallel 4:\nserial:\n%s\nparallel:\n%s",
				r.name, serial, par)
		}
	}
}
