package core

import (
	"math/rand"
	"testing"

	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/topology"
)

func TestServiceZeroTimeIsSynchronous(t *testing.T) {
	sc := newServiceCenter(des.New(), 0, 4)
	ran := false
	sc.submit(func() { ran = true })
	if !ran {
		t.Fatal("zero service time must run synchronously")
	}
	if sc.requests != 0 {
		t.Fatal("synchronous path should not count queueing requests")
	}
}

func TestServiceSingleProcessorQueues(t *testing.T) {
	sched := des.New()
	sc := newServiceCenter(sched, 2, 1)
	var done []des.Time
	run := func() { done = append(done, sched.Now()) }
	sc.submit(run) // services 0..2
	sc.submit(run) // waits 2, services 2..4
	sc.submit(run) // waits 4, services 4..6
	sched.Run()
	if len(done) != 3 || done[0] != 2 || done[1] != 4 || done[2] != 6 {
		t.Fatalf("completions = %v, want [2 4 6]", done)
	}
	if sc.maxWait != 4 || sc.totalWait != 6 {
		t.Fatalf("maxWait=%v totalWait=%v", sc.maxWait, sc.totalWait)
	}
}

func TestServiceParallelProcessors(t *testing.T) {
	sched := des.New()
	sc := newServiceCenter(sched, 2, 3)
	var done []des.Time
	for i := 0; i < 3; i++ {
		sc.submit(func() { done = append(done, sched.Now()) })
	}
	sched.Run()
	for _, d := range done {
		if d != 2 {
			t.Fatalf("completions = %v, want all at 2", done)
		}
	}
	if sc.maxWait != 0 {
		t.Fatalf("maxWait = %v, want 0", sc.maxWait)
	}
}

func TestServiceProcessorsFloor(t *testing.T) {
	sc := newServiceCenter(des.New(), 1, 0)
	if len(sc.busyUntil) != 1 {
		t.Fatalf("processors = %d, want 1", len(sc.busyUntil))
	}
}

// TestMRouterLoadAblation verifies the §II-B argument quantitatively: a
// join burst at a single-processor m-router queues; adding processors
// removes the queueing.
func TestMRouterLoadAblation(t *testing.T) {
	g, err := topology.Random(topology.DefaultRandom(40, 4), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	g = g.ScaleDelays(1e-3)
	maxWait := func(processors int) float64 {
		s := New(Config{MRouter: 0, ServiceTime: 0.05, Processors: processors})
		n := netsim.New(g, s)
		for v := 1; v <= 20; v++ {
			n.HostJoin(topology.NodeID(v), grp)
		}
		n.Run()
		stats := s.ServiceStats()
		if stats.Requests == 0 {
			t.Fatal("no requests serviced")
		}
		return stats.MaxWait
	}
	one := maxWait(1)
	eight := maxWait(8)
	if one <= eight {
		t.Fatalf("1-proc max wait %.3f not above 8-proc %.3f", one, eight)
	}
	if eight > one/2 {
		t.Fatalf("8 processors should cut the wait substantially: %.3f vs %.3f", eight, one)
	}
}

func TestServiceDelaysJoinButDelivers(t *testing.T) {
	g, err := topology.Random(topology.DefaultRandom(20, 4), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	g = g.ScaleDelays(1e-3)
	s := New(Config{MRouter: 0, ServiceTime: 0.01, Processors: 2})
	n := netsim.New(g, s)
	n.HostJoin(5, grp)
	n.HostJoin(9, grp)
	n.Run()
	seq := n.SendData(3, grp, 500)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	if s.ServiceStats().Requests != 2 {
		t.Fatalf("requests = %d, want 2", s.ServiceStats().Requests)
	}
}

func TestServiceStatsZeroValue(t *testing.T) {
	s := New(Config{MRouter: 0})
	g := topology.New(2)
	g.MustAddEdge(0, 1, 1, 1)
	netsim.New(g, s)
	stats := s.ServiceStats()
	if stats.Requests != 0 || stats.MeanWait != 0 || stats.MaxWait != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}
