package core

import (
	"testing"

	destime "scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/topology"
)

// TestLeaveCancelsJoinRetry is the leave-vs-retry race audit: a member
// joins inside a total control-loss window (so its JOIN sits on the
// retransmission ladder), then leaves before any transmission got
// through. The LEAVE supersedes the pending JOIN — cancelling its
// retry timer — so once the loss heals no stale JOIN retransmission
// may resurrect the membership.
func TestLeaveCancelsJoinRetry(t *testing.T) {
	n, s := newNet(meshGraph(), Config{MRouter: 0, AckTimeout: 10, RetryCap: 6})
	n.InstallFaults(netsim.FaultPlan{ControlLoss: 1, LossUntil: 35, Seed: 3})
	n.HostJoin(2, grp)
	n.Sched.At(15, func() { n.HostLeave(2, grp) })
	n.Run()

	if tr := s.GroupTree(grp); tr != nil && len(tr.Members()) != 0 {
		t.Fatalf("membership resurrected by a stale JOIN retry: %v", tr.Members())
	}
	if got := n.Members(grp); len(got) != 0 {
		t.Fatalf("ground-truth members after leave: %v", got)
	}
	if e, ok := s.Entry(2, grp); ok && (e.OnTree || e.HasLocal) {
		t.Fatalf("router 2 entry after leave: %+v", e)
	}
	if s.PendingRequests() != 0 {
		t.Fatalf("%d pending requests after drain", s.PendingRequests())
	}
}

// TestLeaveCancelsParkedJoin is the same audit for the parked state: a
// JOIN that exhausted its retry budget and parked must be cancelled by
// a subsequent leave — the deferred re-attempt may not resurrect the
// membership either.
func TestLeaveCancelsParkedJoin(t *testing.T) {
	n, s := newNet(meshGraph(), Config{MRouter: 0, AckTimeout: 5, RetryBudget: 2, RefreshInterval: 40})
	n.InstallFaults(netsim.FaultPlan{ControlLoss: 1, LossUntil: 60, Seed: 3})
	n.HostJoin(2, grp)
	// Ladder: transmit at 0, retries at 5 and 15, park at 35 with a
	// deferred re-attempt at 75. The leave at 50 lands in between.
	n.Sched.At(50, func() {
		if s.ParkedRequests() != 1 {
			t.Errorf("parked requests at t=50: %d, want 1", s.ParkedRequests())
		}
		n.HostLeave(2, grp)
		if s.ParkedRequests() != 0 {
			t.Errorf("leave did not unpark the stale JOIN")
		}
	})
	n.RunUntil(200)
	s.Quiesce()
	n.Run()

	if n.Metrics.Parks() == 0 {
		t.Fatal("no park recorded")
	}
	if tr := s.GroupTree(grp); tr != nil && len(tr.Members()) != 0 {
		t.Fatalf("membership resurrected by a parked JOIN: %v", tr.Members())
	}
}

// TestQuiesceCancelsParkedTimers: Quiesce must cancel parked deferred
// re-attempt timers (not just pending retry timers), or the final
// drain would spin re-attempts forever under sustained loss.
func TestQuiesceCancelsParkedTimers(t *testing.T) {
	n, s := newNet(meshGraph(), Config{MRouter: 0, AckTimeout: 5, RetryBudget: 1})
	n.InstallFaults(netsim.FaultPlan{ControlLoss: 1, Seed: 1}) // loss never heals
	n.HostJoin(2, grp)
	n.RunUntil(100)
	s.Quiesce()
	n.Run() // must terminate
	if s.ParkedRequests() != 0 || s.PendingRequests() != 0 {
		t.Fatalf("quiesce left %d parked / %d pending requests",
			s.ParkedRequests(), s.PendingRequests())
	}
}

// TestRetryBudgetParksAndRecovers: a JOIN that burns its whole retry
// budget inside a loss window parks, then recovers via the deferred
// re-attempt once the loss heals — and both transitions are counted.
func TestRetryBudgetParksAndRecovers(t *testing.T) {
	n, s := newNet(meshGraph(), Config{MRouter: 0, AckTimeout: 5, RetryBudget: 2, RefreshInterval: 40})
	n.InstallFaults(netsim.FaultPlan{ControlLoss: 1, LossUntil: 60, Seed: 3})
	n.HostJoin(2, grp)
	// Transmissions at 0/5/15 are lost; park at 35; the deferred
	// re-attempt at 75 is past the loss window and succeeds.
	n.RunUntil(150)
	s.Quiesce()
	n.Run()

	if n.Metrics.Parks() == 0 {
		t.Fatal("budget exhausted but no park recorded")
	}
	if n.Metrics.ParkRecovers() == 0 {
		t.Fatal("parked JOIN never recovered")
	}
	if missing := probe(t, n, 0); len(missing) != 0 {
		t.Fatalf("member stranded after park recovery: %v", missing)
	}
}

// TestAdmissionShedsAndConverges: four members join at once against a
// slow single-processor m-router with a one-slot admission queue. The
// overflow JOINs are shed with NACKs; the retry-after path must still
// converge every member, and the sheds must be counted.
func TestAdmissionShedsAndConverges(t *testing.T) {
	n, s := newNet(meshGraph(), Config{
		MRouter: 0, ServiceTime: 5, Processors: 1,
		AdmitLimit: 1, AckTimeout: 10, RetryCap: 8,
	})
	n.InstallFaults(netsim.FaultPlan{})
	for _, m := range []topology.NodeID{2, 3, 4, 5} {
		n.HostJoin(m, grp)
	}
	n.Run()

	if n.Metrics.Sheds() == 0 {
		t.Fatal("admission control never shed under a full queue")
	}
	if missing := probe(t, n, 0); len(missing) != 0 {
		t.Fatalf("shed members never converged: %v", missing)
	}
	if s.ControlBacklog() != 0 {
		t.Fatalf("control backlog %d after drain", s.ControlBacklog())
	}
}

// TestRefreshSuppression: under a steady membership-change drip every
// refresh tick lands within one interval of the last change, so with
// suppression on the ticks are skipped (and counted); with it off the
// same schedule skips nothing.
func TestRefreshSuppression(t *testing.T) {
	run := func(suppress bool) (skips int64) {
		n, s := newNet(meshGraph(), Config{
			MRouter: 0, AckTimeout: 5, RefreshInterval: 10, RefreshSuppress: suppress,
		})
		n.HostJoin(3, grp) // stable member keeps the tree non-empty
		for i := 0; i < 6; i++ {
			at, flapOn := float64(4+8*i), i%2 == 0
			n.Sched.At(destime.Time(at), func() {
				if flapOn {
					n.HostJoin(2, grp)
				} else {
					n.HostLeave(2, grp)
				}
			})
		}
		n.RunUntil(60)
		s.Quiesce()
		n.Run()
		if missing := probe(t, n, 0); len(missing) != 0 {
			t.Fatalf("suppress=%v: probe missing %v", suppress, missing)
		}
		return n.Metrics.RefreshSkips()
	}
	if skips := run(true); skips == 0 {
		t.Fatal("suppression on: no refresh tick was skipped")
	}
	if skips := run(false); skips != 0 {
		t.Fatalf("suppression off: %d ticks skipped", skips)
	}
}
