// Self-healing extensions to SCMP: reliable control signalling
// (ACK/retransmit with exponential backoff), periodic soft-state tree
// refresh, and local repair after link or router failures (REJOIN).
//
// All three are off by default (Config.AckTimeout / RefreshInterval
// zero; repair only reacts when a fault layer is installed), so the
// paper-faithful fault-free protocol of scmp.go is byte-identical with
// this file present. The fault model they defend against lives in
// internal/netsim (FaultPlan).
package core

import (
	"sort"

	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// defaultRetryCap bounds reliable-request retransmissions when the
// configuration leaves RetryCap zero.
const defaultRetryCap = 5

// pendingKey identifies one reliable request slot: a router has at most
// one outstanding request per group (a newer request supersedes).
type pendingKey struct {
	node topology.NodeID
	g    packet.GroupID
}

// replSlot is the sentinel "node" of a group's replication slot. The
// primary's snapshot ladder must not share a slot with the primary's
// own membership ladder for the same group — a snapshot superseding the
// primary's self-JOIN would cancel exactly the ladder that re-lands
// that membership after a failover.
const replSlot topology.NodeID = -2

// replKey returns the reliable-request slot of group g's replication
// stream (primary → standby snapshots).
func replKey(g packet.GroupID) pendingKey { return pendingKey{node: replSlot, g: g} }

// noteNode maps a slot to the node its park/recover metrics are charged
// to: the requester, or the primary for the synthetic replication slot.
func (s *SCMP) noteNode(key pendingKey) topology.NodeID {
	if key.node >= 0 {
		return key.node
	}
	return s.homes[0]
}

// pendingReq is one unacknowledged reliable request. fromPark marks a
// parked request's deferred re-attempt, so its eventual ACK can be
// counted as a park recovery.
//
// firstSeq..seq is the request's lineage: every sequence number this
// same logical operation has been transmitted under, across park /
// re-attempt cycles. An ACK bearing any of them resolves the request —
// on a topology whose control round trip exceeds the backoff ladder,
// the reply to one incarnation routinely arrives while a later
// incarnation is outstanding, and matching only the newest sequence
// would livelock the slot forever. A superseding request (a new
// operation on the same slot) resets the lineage.
type pendingReq struct {
	kind     packet.Kind
	payload  []byte
	seq      uint64
	firstSeq uint64
	attempt  int
	timer    *des.Event
	fromPark bool
}

// acked reports whether a is a reply to any incarnation of this
// request's lineage.
func (p *pendingReq) acked(a packet.AckInfo) bool {
	return a.Req == p.kind && a.Seq >= p.firstSeq && a.Seq <= p.seq
}

var _ netsim.FaultListener = (*SCMP)(nil)

// --- reliable control signalling ---------------------------------------

// sendReliable sends a control request from node to the group's
// m-router. With AckTimeout configured it registers the request for
// ACK-matching and retransmits with exponential backoff until
// acknowledged or the retry cap is reached; otherwise it degrades to
// the classic fire-and-forget unicast.
func (s *SCMP) sendReliable(node topology.NodeID, g packet.GroupID, kind packet.Kind, payload []byte) {
	s.sendReliableOpt(node, g, kind, payload, false, 0)
}

// sendReliableOpt is sendReliable with the provenance of a parked
// request's deferred re-attempt: fromPark marks it for park-recovery
// accounting, and lineage (when non-zero) is the firstSeq of the
// operation being re-attempted, so replies to its earlier incarnations
// still match (see pendingReq).
func (s *SCMP) sendReliableOpt(node topology.NodeID, g packet.GroupID, kind packet.Kind, payload []byte, fromPark bool, lineage uint64) {
	if s.cfg.AckTimeout <= 0 {
		s.net.SendUnicast(node, &netsim.Packet{
			Kind:    kind,
			Group:   g,
			Src:     node,
			Dst:     s.ctrlHome(node, g),
			Payload: payload,
			Size:    packet.ControlSize,
		})
		return
	}
	key := pendingKey{node, g}
	if kind == packet.Replicate {
		key = replKey(g) // dedicated slot: see replSlot
	}
	s.unpark(key) // a newer request supersedes any parked one
	if old := s.pending[key]; old != nil && old.timer != nil {
		old.timer.Cancel()
	}
	s.reqSeq++
	p := &pendingReq{kind: kind, payload: payload, seq: s.reqSeq, firstSeq: s.reqSeq, fromPark: fromPark}
	if lineage != 0 {
		p.firstSeq = lineage
	}
	s.pending[key] = p
	s.transmitReq(key, p)
	s.armRetry(key, p)
}

// staleCtl is the m-router-side ordering complement to the requester's
// per-slot supersede: sequence numbers are issued from one monotone
// counter, so a membership request carrying a lower sequence than one
// already accepted from the same (requester, group) is a retransmitted
// copy of a superseded operation — the requester has since sent (and
// the m-router applied) its successor, and applying the straggler would
// roll the membership back. Retransmissions of the *current* operation
// (equal sequence) pass, so a lost ACK is still re-answered.
// Sequence-less fire-and-forget requests are never filtered.
func (s *SCMP) staleCtl(member topology.NodeID, g packet.GroupID, seq uint64) bool {
	if seq == 0 {
		return false
	}
	key := pendingKey{member, g}
	if seq < s.ctlSeen[key] {
		return true
	}
	s.ctlSeen[key] = seq
	return false
}

// transmitReq puts one (re)transmission of a reliable request on the
// wire. The request's sequence number rides the packet's Seq field so
// the m-router can echo it in the ACK.
func (s *SCMP) transmitReq(key pendingKey, p *pendingReq) {
	src, dst := key.node, s.home(key.g)
	if p.kind == packet.Replicate {
		// Replication flows primary → standby, not requester → home.
		src, dst = s.homes[0], s.cfg.Standby
	}
	s.net.SendUnicast(src, &netsim.Packet{
		Kind:    p.kind,
		Group:   key.g,
		Src:     src,
		Dst:     dst,
		Seq:     p.seq,
		Payload: p.payload,
		Size:    packet.ControlSize,
	})
}

// armRetry schedules the retransmission timer for attempt p.attempt:
// AckTimeout doubled per attempt already made.
func (s *SCMP) armRetry(key pendingKey, p *pendingReq) {
	backoff := des.Time(s.cfg.AckTimeout * float64(uint64(1)<<uint(p.attempt)))
	p.timer = s.net.Sched.After(backoff, func() { s.retryFire(key, p) })
}

// retryFire is one retransmission-timer expiry (or a NACK-directed
// deferred retransmission): at the retry limit the request gives up —
// parking when a retry budget is configured — otherwise it retransmits
// and re-arms the next backoff step.
func (s *SCMP) retryFire(key pendingKey, p *pendingReq) {
	if s.pending[key] != p {
		return // acknowledged or superseded since
	}
	if p.attempt >= s.retryLimit() {
		// Give up: the soft-state refresh (and ground-truth re-reports
		// after a restart) are the backstop — or, with a retry budget
		// configured, the parked deferred re-attempt (overload.go).
		delete(s.pending, key)
		if s.cfg.RetryBudget > 0 {
			s.park(key, p)
		}
		return
	}
	p.attempt++
	s.transmitReq(key, p)
	s.armRetry(key, p)
}

// retryLimit returns the retransmissions allowed per reliable request:
// the retry budget when configured, else the legacy cap.
func (s *SCMP) retryLimit() int {
	if s.cfg.RetryBudget > 0 {
		return s.cfg.RetryBudget
	}
	if s.cfg.RetryCap < 1 {
		return defaultRetryCap
	}
	return s.cfg.RetryCap
}

// ack is the m-router's acknowledgement of a reliable request. Requests
// without a sequence number (fire-and-forget mode) are not
// acknowledged. An ACK addressed to the home itself self-delivers: the
// durable-mode primary sends its own membership through the reliable
// path (HostJoin), and that ladder needs settling like any other.
func (s *SCMP) ack(g packet.GroupID, req packet.Kind, to topology.NodeID, seq uint64) {
	if seq == 0 {
		return
	}
	payload := packet.EncodeAck(packet.AckInfo{Req: req, Seq: seq})
	s.net.SendUnicast(s.home(g), &netsim.Packet{
		Kind:    packet.Ack,
		Group:   g,
		Src:     s.home(g),
		Dst:     to,
		Payload: payload,
		Size:    packet.ControlSize,
	})
}

// durableMode reports whether membership acknowledgements are chained
// to replication: a hot standby is receiving snapshots over a reliable
// channel and has not yet been promoted. (Standby failover is a flat,
// single-m-router feature.)
func (s *SCMP) durableMode() bool {
	return s.cfg.Standby >= 0 && s.cfg.AckTimeout > 0 && s.epoch == 0 && !s.hierarchical()
}

// ackDurable acknowledges a membership request — immediately when no
// hot standby is in play, else only once the standby has confirmed a
// replica snapshot reflecting the operation (flushAckQueue). Deferring
// the ACK chains the two reliability legs: the member's retransmission
// ladder stays alive until the operation is durable at the standby, so
// a primary death inside the replication window leaves a live ladder
// that re-lands the operation on the promoted standby — instead of an
// acknowledged member silently missing from the rebuilt trees.
func (s *SCMP) ackDurable(g packet.GroupID, req packet.Kind, to topology.NodeID, seq uint64) {
	gs := s.groups[g]
	if seq == 0 || !s.durableMode() || gs == nil {
		// gs == nil: a LEAVE for a group this m-router never built —
		// nothing was replicated, nothing to wait for.
		s.ack(g, req, to, seq)
		return
	}
	gs.ackQueue = append(gs.ackQueue, deferredAck{kind: req, to: to, seq: seq})
}

// flushAckQueue releases the group's deferred membership ACKs after the
// standby acknowledged a replica snapshot. Snapshots carry the full
// member set, so confirming the newest one confirms every operation
// queued before it.
func (s *SCMP) flushAckQueue(g packet.GroupID) {
	gs := s.groups[g]
	if gs == nil || len(gs.ackQueue) == 0 {
		return
	}
	q := gs.ackQueue
	gs.ackQueue = nil
	for _, d := range q {
		s.ack(g, d.kind, d.to, d.seq)
	}
}

// handleAck matches an ACK against the node's pending request and, on a
// match, cancels the retransmission timer.
func (s *SCMP) handleAck(node topology.NodeID, pkt *netsim.Packet) {
	a, err := packet.DecodeAck(pkt.Payload)
	if err != nil {
		return
	}
	key := pendingKey{node, pkt.Group}
	if a.Req == packet.Replicate {
		key = replKey(pkt.Group)
	}
	p := s.pending[key]
	if p == nil || !p.acked(a) {
		// Not the outstanding lineage — but it may be the (late) reply
		// to a request that already parked; that parked request is done.
		s.lateAck(key, a)
		return
	}
	if p.timer != nil {
		p.timer.Cancel()
	}
	if p.fromPark {
		s.net.NoteParkRecover(s.noteNode(key))
	}
	delete(s.pending, key)
	if p.kind == packet.Replicate {
		s.flushAckQueue(key.g)
	}
}

// --- soft-state tree refresh -------------------------------------------

// armRefresh starts the group's periodic redistribution timer if
// refresh is enabled and the timer is not already running.
func (s *SCMP) armRefresh(g packet.GroupID, gs *groupState) {
	if s.cfg.RefreshInterval <= 0 || gs.refresh != nil {
		return
	}
	gs.refresh = s.net.Sched.After(des.Time(s.cfg.RefreshInterval), func() {
		gs.refresh = nil
		s.refreshGroup(g, gs)
	})
}

// refreshGroup is one soft-state tick: retry deferred grafts, bump the
// version, redistribute the whole TREE (idempotent at in-sync routers,
// corrective at diverged ones), and re-arm. A group whose tree has
// emptied and owes no deferred grafts lets its timer die — the next
// membership change re-arms it — so Network.Run can drain.
func (s *SCMP) refreshGroup(g packet.GroupID, gs *groupState) {
	tree := gs.tree()
	if tree.MemberCount() == 0 && tree.Size() == 1 && len(gs.deferred) == 0 {
		return
	}
	if s.cfg.RefreshSuppress && len(gs.deferred) == 0 &&
		s.net.Now()-gs.lastChange < des.Time(s.cfg.RefreshInterval) {
		// Refresh-storm suppression: the entry changed within the last
		// interval, so the distribution that accompanied the change
		// already reconverged any diverged router — this tick would be
		// a redundant TREE storm. Skip it but keep the timer alive.
		s.net.NoteRefreshSkip(s.home(g))
		s.armRefresh(g, gs)
		return
	}
	if s.regraftDeferred(g, gs) {
		s.syncMRouterEntry(g, gs)
	}
	gs.version++
	s.distributeTree(g, gs)
	s.armRefresh(g, gs)
}

// Quiesce cancels SCMP's self-sustaining timers — armed refresh ticks
// and in-flight retransmission backoffs — so a harness can RunUntil its
// measurement deadline, Quiesce, then Run to drain cleanly. The next
// membership or tree change re-arms refresh.
func (s *SCMP) Quiesce() {
	for _, g := range s.sortedGroupIDs() {
		gs := s.groups[g]
		if gs.refresh != nil {
			gs.refresh.Cancel()
			gs.refresh = nil
		}
	}
	for key, p := range s.pending {
		if p.timer != nil {
			p.timer.Cancel()
		}
		delete(s.pending, key)
	}
	for key, pk := range s.parked {
		if pk.timer != nil {
			pk.timer.Cancel()
		}
		delete(s.parked, key)
	}
}

// --- fault reaction (netsim.FaultListener) ------------------------------

// LinkDown reacts to a link failure: refresh the path tables against
// the masked topology, then run local repair at both endpoints.
func (s *SCMP) LinkDown(u, v topology.NodeID) {
	if s.cfg.DisableRepair || s.hierarchical() {
		return
	}
	s.refreshPathTables()
	s.repairEndpoint(u, v)
	s.repairEndpoint(v, u)
}

// LinkUp reacts to a link heal: with paths restored, retry every
// deferred graft.
func (s *SCMP) LinkUp(u, v topology.NodeID) {
	if s.cfg.DisableRepair || s.hierarchical() {
		return
	}
	s.refreshPathTables()
	s.healGroups()
}

// NodeDown reacts to a router crash: the router's protocol state and
// pending requests die with it unconditionally; with repair enabled its
// neighbours additionally treat every adjacent link as failed.
func (s *SCMP) NodeDown(n topology.NodeID) {
	s.entries[n] = nil
	for key, p := range s.pending {
		if key.node == n {
			if p.timer != nil {
				p.timer.Cancel()
			}
			delete(s.pending, key)
		}
	}
	for key, pk := range s.parked {
		if key.node == n {
			if pk.timer != nil {
				pk.timer.Cancel()
			}
			delete(s.parked, key)
		}
	}
	if s.cfg.DisableRepair || s.hierarchical() {
		return
	}
	s.refreshPathTables()
	for _, l := range s.net.G.Neighbors(n) {
		s.repairEndpoint(l.To, n)
	}
}

// NodeUp reacts to a router restart: recompute paths and retry deferred
// grafts. The restarted router itself re-learns its memberships from
// the ground-truth re-report netsim issues right after this callback.
func (s *SCMP) NodeUp(n topology.NodeID) {
	if s.cfg.DisableRepair || s.hierarchical() {
		return
	}
	s.refreshPathTables()
	s.healGroups()
}

// repairEndpoint is local repair at node after its link toward dead
// failed: the branch toward dead is dropped from the downstream set
// (that subtree re-homes itself from its own side), and if dead was the
// upstream, node becomes an orphan — it keeps forwarding to its intact
// downstream but asks the m-router for a re-graft with a reliable
// REJOIN naming itself and the dead neighbour.
func (s *SCMP) repairEndpoint(node, dead topology.NodeID) {
	if f := s.net.Faults(); f != nil && f.NodeIsDown(node) {
		return // a crashed router repairs nothing
	}
	byGroup := s.entries[node]
	for _, g := range sortedGroupsOf(byGroup) {
		e := byGroup[g]
		if !e.onTree {
			continue
		}
		delete(e.downstream, dead)
		e.downDirty = true
		if e.upstream != dead {
			continue
		}
		e.upstream = noUpstream
		if !e.repairing {
			e.repairing = true
			e.repairT0 = s.net.Now()
		}
		s.sendReliable(node, g, packet.Rejoin,
			packet.EncodeRejoin(packet.RejoinInfo{Detached: node, Dead: dead}))
	}
}

// mrouterRejoin processes a REJOIN at the m-router: prune the detached
// subtree from the group's tree copy, re-graft the stranded members
// over the healthy topology, and redistribute. Members with no path to
// the m-router are deferred for the refresh tick / next heal. If the
// requesting router ended up off the re-grafted tree (an orphaned
// relay), a directed FLUSH dismantles its stale subtree state.
func (s *SCMP) mrouterRejoin(g packet.GroupID, info packet.RejoinInfo) {
	gs := s.groups[g]
	if gs == nil || gs.hier != nil {
		// Hierarchical mode never originates REJOINs (fault repair is
		// gated off); a stray one must not touch the nil flat engine.
		return
	}
	gs.lastChange = s.net.Now()
	home := s.home(g)
	tree := gs.dcdm.Tree()
	// A dead router takes its whole subtree down; a dead link only the
	// requester's side. The m-router has the complete topology (§II-A),
	// so it can tell which case this is.
	detachAt := info.Detached
	if f := s.net.Faults(); f != nil && f.NodeIsDown(info.Dead) && info.Dead != home {
		detachAt = info.Dead
	}
	if detachAt != home && tree.OnTree(detachAt) {
		for _, m := range gs.dcdm.DetachSubtree(detachAt) {
			gs.deferMember(m)
		}
	}
	s.regraftDeferred(g, gs)
	s.syncMRouterEntry(g, gs)
	gs.version++
	s.distributeTree(g, gs)
	if !tree.OnTree(info.Detached) {
		s.net.SendUnicast(home, &netsim.Packet{
			Kind:    packet.Flush,
			Group:   g,
			Src:     home,
			Dst:     info.Detached,
			Version: gs.version,
			Size:    packet.ControlSize,
		})
	}
	s.armRefresh(g, gs)
}

// regraftDeferred grafts every deferred member that is reachable again,
// reporting whether the tree changed. Distribution is the caller's job.
func (s *SCMP) regraftDeferred(g packet.GroupID, gs *groupState) bool {
	if len(gs.deferred) == 0 || gs.hier != nil {
		// Hierarchical joins never defer (repair is gated off), so the
		// hier check is defensive: the flat regraft below must not run.
		return false
	}
	home := s.home(g)
	changed := false
	for _, m := range topology.SortedNodes(gs.deferred) {
		if !s.spDelay.Row(home).Reachable(m) {
			continue
		}
		delete(gs.deferred, m)
		gs.dcdm.Join(m)
		changed = true
	}
	return changed
}

// healGroups retries deferred grafts for every group after a topology
// heal and redistributes the trees that changed.
func (s *SCMP) healGroups() {
	for _, g := range s.sortedGroupIDs() {
		gs := s.groups[g]
		if s.regraftDeferred(g, gs) {
			gs.lastChange = s.net.Now()
			s.syncMRouterEntry(g, gs)
			gs.version++
			s.distributeTree(g, gs)
			s.armRefresh(g, gs)
		}
	}
}

// refreshPathTables recomputes the m-router's all-pairs tables with the
// currently faulted links masked out, so re-grafts route around them.
func (s *SCMP) refreshPathTables() {
	f := s.net.Faults()
	if f == nil || s.hierarchical() {
		return
	}
	// Lazy tables over a frozen fault snapshot: local repair typically
	// re-grafts a few orphans, consulting only their rows and the
	// m-router's, so the recompute cost scales with the repair, not
	// with n. The snapshot (not the live Avoid view) keeps each row's
	// content pinned to this fault event no matter when it is first
	// read — the lazy-table invalidation rule is simply "new event,
	// new table".
	avoid := f.AvoidSnapshot()
	s.spDelay = topology.NewLazyAllPairsAvoid(s.net.G, topology.ByDelay, avoid)
	s.spCost = topology.NewLazyAllPairsAvoid(s.net.G, topology.ByCost, avoid)
	for _, g := range s.sortedGroupIDs() {
		s.groups[g].dcdm.SetAllPairs(s.spDelay, s.spCost)
	}
}

// recordRecovery closes a router's repair episode when it adopts a new
// upstream, feeding the recovery-time metric.
func (s *SCMP) recordRecovery(e *entry) {
	if !e.repairing {
		return
	}
	e.repairing = false
	s.net.Metrics.OnRecovery(float64(s.net.Now() - e.repairT0))
}

// sortedGroupIDs returns the keys of s.groups in ascending order, for
// deterministic iteration wherever group processing sends packets.
func (s *SCMP) sortedGroupIDs() []packet.GroupID {
	out := make([]packet.GroupID, 0, len(s.groups))
	for g := range s.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedGroupsOf returns the group ids of one router's entry map in
// ascending order.
func sortedGroupsOf(m map[packet.GroupID]*entry) []packet.GroupID {
	out := make([]packet.GroupID, 0, len(m))
	for g := range m {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
