package core

import (
	"testing"

	destime "scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// meshGraph: m-router 0 in a redundant mesh so every single link or
// non-member router failure leaves an alternate route.
//
//	0 - 1 - 2        0-1 delay 1; the 0-5-4 side is slower, so members
//	|       |        2/3 home over the 0-1-2 rail first.
//	5       3
//	 \     /
//	  4 --+
func meshGraph() *topology.Graph {
	g := topology.New(6)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	g.MustAddEdge(3, 4, 2, 2)
	g.MustAddEdge(4, 5, 2, 2)
	g.MustAddEdge(5, 0, 2, 2)
	return g
}

// probe sends one data packet from the m-router and reports the members
// that failed to receive it.
func probe(t *testing.T, n *netsim.Network, src topology.NodeID) []topology.NodeID {
	t.Helper()
	seq := n.SendData(src, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(anomalous) != 0 {
		t.Fatalf("anomalous deliveries: %v", anomalous)
	}
	return missing
}

func TestLinkCutLocalRepairHeals(t *testing.T) {
	n, s := newNet(meshGraph(), Config{MRouter: 0, AckTimeout: 5, RefreshInterval: 50})
	f := n.InstallFaults(netsim.FaultPlan{})
	n.HostJoin(2, grp)
	n.HostJoin(3, grp)
	// A bare Run would spin the armed refresh timer forever: drain up
	// to a deadline, quiesce, then drain the leftovers.
	n.RunUntil(50)
	s.Quiesce()
	n.Run()
	if missing := probe(t, n, 0); len(missing) != 0 {
		t.Fatalf("pre-fault probe missing %v", missing)
	}

	// Cut the rail the tree runs over: 1-2. Router 2 is orphaned, sends
	// REJOIN, the m-router re-grafts 2 and 3 over the 0-5-4-3 side.
	f.ScheduleLinkDown(100, 1, 2)
	n.RunUntil(200)
	s.Quiesce()
	n.Run()

	if missing := probe(t, n, 0); len(missing) != 0 {
		t.Fatalf("post-repair probe missing %v", missing)
	}
	if n.Metrics.Recoveries() == 0 {
		t.Fatal("no recovery time recorded")
	}
	if n.Metrics.MeanRecovery() <= 0 {
		t.Fatalf("mean recovery = %g", n.Metrics.MeanRecovery())
	}
	// The orphan adopted a live upstream.
	e2, _ := s.Entry(2, grp)
	if !e2.OnTree || e2.Upstream == 1 {
		t.Fatalf("router 2 entry after repair: %+v", e2)
	}
}

func TestLinkCutWithoutRepairStrands(t *testing.T) {
	n, s := newNet(meshGraph(), Config{MRouter: 0, DisableRepair: true})
	f := n.InstallFaults(netsim.FaultPlan{})
	n.HostJoin(2, grp)
	n.HostJoin(3, grp)
	n.Run()

	f.ScheduleLinkDown(100, 1, 2)
	n.RunUntil(200)
	s.Quiesce()
	n.Run()

	missing := probe(t, n, 0)
	if len(missing) == 0 {
		t.Fatal("repair disabled, yet no member was stranded")
	}
}

func TestReliableJoinSurvivesTotalLossWindow(t *testing.T) {
	// Every control packet sent before t=30 is lost. The JOIN at t=0
	// dies; with AckTimeout 10 the retransmissions at 10 and 30 (2x
	// backoff) straddle the window, so the one at t=30 succeeds.
	n, _ := newNet(meshGraph(), Config{MRouter: 0, AckTimeout: 10, RetryCap: 4})
	n.InstallFaults(netsim.FaultPlan{ControlLoss: 1, LossUntil: 30, Seed: 7})
	n.HostJoin(2, grp)
	n.Run()
	if missing := probe(t, n, 0); len(missing) != 0 {
		t.Fatalf("member stranded despite retransmissions: %v", missing)
	}
	if n.Metrics.DroppedByKind(packet.Join) == 0 {
		t.Fatal("expected the first JOIN to be counted as dropped")
	}
}

func TestUnreliableJoinDiesInLossWindow(t *testing.T) {
	// Same fault plan, reliability off: the single JOIN is lost and the
	// member never reaches the tree.
	n, _ := newNet(meshGraph(), Config{MRouter: 0})
	n.InstallFaults(netsim.FaultPlan{ControlLoss: 1, LossUntil: 30, Seed: 7})
	n.HostJoin(2, grp)
	n.Run()
	if missing := probe(t, n, 0); len(missing) != 1 || missing[0] != 2 {
		t.Fatalf("missing = %v, want [2]", missing)
	}
}

func TestSoftStateRefreshRepairsDivergedRouter(t *testing.T) {
	// Sabotage one router's entry out-of-band; the refresh TREE wave
	// must reconverge it within one interval.
	n, s := newNet(meshGraph(), Config{MRouter: 0, RefreshInterval: 40})
	n.InstallFaults(netsim.FaultPlan{}) // enables drop-not-panic paths
	n.HostJoin(2, grp)
	n.RunUntil(5) // branch installed; refresh armed for ~t=41
	e := s.entry(2, grp)
	e.onTree = false
	e.upstream = noUpstream
	seq := n.SendData(0, grp, 100)
	n.RunUntil(20)
	if missing, _ := n.CheckDelivery(seq); len(missing) != 1 {
		t.Fatalf("sabotage did not strand the member: %v", missing)
	}
	n.RunUntil(50) // one refresh tick fires
	s.Quiesce()
	n.Run()
	if missing := probe(t, n, 0); len(missing) != 0 {
		t.Fatalf("refresh did not reconverge: missing %v", missing)
	}
}

func TestRefreshStopsWhenGroupEmpties(t *testing.T) {
	n, s := newNet(meshGraph(), Config{MRouter: 0, RefreshInterval: 10})
	n.HostJoin(2, grp)
	n.RunUntil(15)
	n.HostLeave(2, grp)
	// With the last member gone the refresh timer must let the
	// scheduler drain on its own (no Quiesce needed).
	n.Run()
	if got := len(s.GroupTree(grp).Members()); got != 0 {
		t.Fatalf("members after leave = %d", got)
	}
}

func TestNodeCrashAndRestartRecovers(t *testing.T) {
	n, s := newNet(meshGraph(), Config{MRouter: 0, AckTimeout: 5, RefreshInterval: 50})
	f := n.InstallFaults(netsim.FaultPlan{})
	n.HostJoin(2, grp)
	n.HostJoin(4, grp)
	n.RunUntil(50)
	s.Quiesce()
	n.Run()

	// Member router 2's own crash: while down it cannot receive (it is
	// still a ground-truth member, so the probe reports it missing) —
	// and member 4, whose branch ran 0-1-2-3-4, must be re-homed.
	f.ScheduleNodeDown(100, 2)
	n.RunUntil(150)
	s.Quiesce()
	n.Run()
	missing := probe(t, n, 0)
	if len(missing) != 1 || missing[0] != 2 {
		t.Fatalf("while node 2 is down, missing = %v, want [2]", missing)
	}

	// Restart: ground truth re-reports its membership, the DR re-joins,
	// and the next probe is clean again.
	f.ScheduleNodeUp(300, 2)
	n.RunUntil(400)
	s.Quiesce()
	n.Run()
	if missing := probe(t, n, 0); len(missing) != 0 {
		t.Fatalf("post-restart probe missing %v", missing)
	}
}

func TestChaosLossHealsWithFullStack(t *testing.T) {
	// The acceptance scenario: 5% uniform control-plane loss while
	// members join, full reliability + refresh stack on. After the loss
	// window closes and one refresh interval passes, delivery must be
	// exactly-once to every member. The identically-seeded run without
	// the reliability stack strands at least one member.
	build := func(hardened bool, seed int64) (*netsim.Network, *SCMP) {
		cfg := Config{MRouter: 0}
		if hardened {
			cfg.AckTimeout = 5
			cfg.RetryCap = 8
			cfg.RefreshInterval = 50
		} else {
			cfg.DisableRepair = true
		}
		n, s := newNet(meshGraph(), cfg)
		n.InstallFaults(netsim.FaultPlan{ControlLoss: 0.05, DataLoss: 0.05, LossUntil: 200, Seed: seed})
		for i, m := range []topology.NodeID{1, 2, 3, 4, 5} {
			m := m
			n.Sched.At(destime.Time(i*10), func() { n.HostJoin(m, grp) })
		}
		n.RunUntil(250) // loss window (200) + one refresh interval (50)
		s.Quiesce()
		n.Run()
		return n, s
	}
	// Deterministically find a seed whose loss draws hit at least one
	// bare JOIN: ~40% of seeds do, so the scan is short and the test does
	// not depend on the exact shape of the random stream.
	seed := int64(-1)
	for cand := int64(1); cand <= 64; cand++ {
		n, _ := build(false, cand)
		if missing := probe(t, n, 0); len(missing) != 0 {
			seed = cand
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed in 1..64 strands an unhardened member — loss plumbing broken?")
	}
	n, _ := build(true, seed)
	if missing := probe(t, n, 0); len(missing) != 0 {
		t.Fatalf("hardened run with seed %d stranded %v", seed, missing)
	}
}
