// Package core implements SCMP, the Service-Centric Multicast Protocol —
// the paper's primary contribution (§II–III).
//
// One powerful router per domain, the m-router, holds the complete
// topology and group membership. Designated routers unicast JOIN/LEAVE
// messages to it; it updates a delay-constrained minimum-cost shared
// tree (the DCDM algorithm) and installs the tree in the network with
// self-routing TREE packets (whole subtree, recursive format) or BRANCH
// packets (single new path). The tree is bi-directional: on-tree sources
// send straight along it; off-tree sources unicast-encapsulate data to
// the m-router, which decapsulates and forwards down the tree.
package core

import (
	"fmt"
	"math"
	"sort"

	"scmp/internal/des"
	"scmp/internal/mtree"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/session"
	"scmp/internal/topology"
)

// noUpstream marks the m-router's (absent) upstream.
const noUpstream topology.NodeID = -1

// entry is one multicast routing entry: the paper's triple
// (group id, upstream, downstream) plus the local-interface flag and
// the distribution version used to discard stale self-routing packets.
type entry struct {
	onTree       bool
	upstream     topology.NodeID
	downstream   map[topology.NodeID]bool
	hasLocal     bool // >=1 member interface on the local subnet
	pendingLocal bool // IGMP report seen, tree installation still in flight
	version      uint64
	// lastSeq records the highest data sequence forwarded per source —
	// the shared-tree analog of an RPF check. On a consistent tree each
	// router sees every (source, seq) exactly once, so the filter never
	// drops; when churn plus lost prune distributions leave stale
	// downstream pointers that close a forwarding cycle, the second
	// visit of a packet to any router on the cycle is suppressed here,
	// turning an infinite packet storm into at most one extra traversal.
	lastSeq map[topology.NodeID]uint64
	// downCache is the ascending downstream list the forwarding paths
	// iterate; downDirty marks it stale after a downstream mutation, so
	// the per-packet hot path never sorts (see down).
	downCache []topology.NodeID
	downDirty bool
	// repairing is set when this router's upstream tree link died and a
	// REJOIN is in flight; repairT0 timestamps the failure so the
	// recovery time can be recorded when a new upstream is adopted.
	repairing bool
	repairT0  des.Time
}

func newEntry() *entry {
	return &entry{
		upstream:   noUpstream,
		downstream: make(map[topology.NodeID]bool),
		lastSeq:    make(map[topology.NodeID]uint64),
	}
}

// down returns the downstream routers in ascending order, cached until
// the next downstream mutation (every mutation site sets downDirty).
// Callers must not retain the slice across mutations.
func (e *entry) down() []topology.NodeID {
	if e.downDirty {
		// Rebuilt only after a downstream mutation (join/leave/prune), never
		// per forwarded packet: the sort is amortized by the cache.
		e.downCache = topology.SortedNodes(e.downstream) //scmplint:ignore hotalloc
		e.downDirty = false
	}
	return e.downCache
}

// groupState is the m-router's per-group state: the DCDM tree, the
// monotonically increasing distribution version, and the accounting
// session the group's traffic is charged to (§II-C).
type groupState struct {
	dcdm *mtree.DCDM
	// hier replaces dcdm in the hierarchical multi-domain mode: the
	// per-domain composer whose composed tree is the authoritative
	// structure (exactly one of dcdm/hier is non-nil).
	hier    *mtree.HierDCDM
	version uint64
	session session.SessionID
	// refresh is the armed soft-state redistribution timer (nil when
	// idle or refresh is disabled).
	refresh *des.Event
	// deferred holds members the m-router could not graft because the
	// faulted topology has no path to them; they are retried on every
	// refresh tick and topology heal.
	deferred map[topology.NodeID]bool
	// lastChange timestamps the group's most recent membership or
	// repair change (with its accompanying distribution); the
	// refresh-suppression heuristic compares it against the refresh
	// interval. Refresh ticks themselves do not update it.
	lastChange des.Time
	// ackQueue holds membership acknowledgements deferred until the hot
	// standby confirms a replica snapshot covering them (ackDurable).
	ackQueue []deferredAck
}

// deferredAck is one membership acknowledgement waiting on replication.
type deferredAck struct {
	kind packet.Kind
	to   topology.NodeID
	seq  uint64
}

func (gs *groupState) deferMember(m topology.NodeID) {
	if gs.deferred == nil {
		gs.deferred = make(map[topology.NodeID]bool)
	}
	gs.deferred[m] = true
}

// tree returns the authoritative tree for the group: the composed tree
// in hierarchical mode, the flat DCDM's otherwise.
func (gs *groupState) tree() *mtree.Tree {
	if gs.hier != nil {
		return gs.hier.Tree()
	}
	return gs.dcdm.Tree()
}

// Config parameterises an SCMP domain.
type Config struct {
	// MRouter is the m-router's node. Its address is known to every
	// router in the domain in advance (configuration file), per §II-D.
	MRouter topology.NodeID
	// Kappa is DCDM's delay-constraint multiplier (1 = tightest;
	// +Inf = loosest). Values below 1 are rejected; 0 means 1.
	Kappa float64
	// DelayBudget, when positive, imposes an absolute QoS bound on every
	// member's multicast delay (the paper's "QoS constraint on maximum
	// end-to-end delay"), overriding Kappa. Members that cannot meet it
	// are served best-effort over their shortest-delay path.
	DelayBudget float64
	// DisableBranch forces whole-tree TREE packets even for pure grafts
	// (the BRANCH-optimisation ablation).
	DisableBranch bool
	// ServiceTime is how long one control request (a JOIN or LEAVE,
	// including the tree computation) occupies one of the m-router's
	// processors (§II-B). Zero — the default — makes control processing
	// instantaneous.
	ServiceTime float64
	// Processors is the m-router's parallel service capacity; values
	// below 1 mean 1. Only meaningful with a ServiceTime.
	Processors int
	// MRouters optionally lists several m-routers for the domain (§II-A:
	// "An ISP may own more than one m-routers in the Internet for
	// serving its customers in different geographic regions"; "our
	// approach can be easily extended to multiple m-routers per
	// domain"). When non-empty it overrides MRouter; each group is
	// homed on MRouters[group mod len(MRouters)], a static published
	// assignment every router's configuration file carries. Standby
	// failover is only supported in single-m-router mode.
	MRouters []topology.NodeID
	// AckTimeout, when positive, makes JOIN/LEAVE/REJOIN reliable: the
	// m-router acknowledges each request with an ACK echoing its
	// sequence number, and the sender retransmits unacknowledged
	// requests with exponential backoff (AckTimeout, 2x, 4x, ...). Zero
	// — the default — keeps the original fire-and-forget signalling, so
	// every fault-free run is unchanged.
	AckTimeout float64
	// RetryCap bounds the retransmissions per reliable request; values
	// below 1 mean the default of 5. Only meaningful with AckTimeout.
	RetryCap int
	// RefreshInterval, when positive, makes the m-router periodically
	// redistribute each active group's TREE packet (soft-state refresh):
	// any router whose entry diverged — lost installation, missed flush
	// — reconverges within one interval. Idempotent for routers already
	// in sync. Zero disables refresh.
	RefreshInterval float64
	// DisableRepair turns off the fault-driven local repair reaction
	// (REJOIN on upstream loss, deferred re-grafts, path-table refresh);
	// the chaos experiment's ablation arm. Faults still drop packets and
	// kill links — the protocol just no longer reacts.
	DisableRepair bool
	// Standby optionally names a secondary m-router (§V: "a hot standby
	// system, in which there is a secondary m-router concurrently
	// running with the primary"). The primary replicates membership
	// changes to it; Failover promotes it. A non-positive value (the
	// zero value included) disables the feature, so node 0 cannot serve
	// as the standby — place the m-routers elsewhere if you need one.
	Standby topology.NodeID
	// AdmitLimit, when positive, bounds the m-router's pending
	// control-operation queue: a JOIN arriving while the service
	// backlog has reached the limit is shed — refused with a NACK
	// carrying a retry-after hint (newest JOINs shed first; LEAVE and
	// REJOIN are always admitted, so departures and repairs drain the
	// tree even under overload). Only meaningful with a ServiceTime:
	// instantaneous control processing never has a backlog. Zero — the
	// default — admits everything, byte-identical to legacy.
	AdmitLimit int
	// RetryBudget, when positive, replaces RetryCap as the bound on a
	// reliable request's retransmission ladder and changes what happens
	// at exhaustion: instead of silently dropping the request, the
	// sender parks it — a degraded state holding one deferred
	// re-attempt timer (the refresh interval, or the next backoff step
	// when refresh is off) in place of the exponential ladder. Zero —
	// the default — keeps the legacy give-up behaviour.
	RetryBudget int
	// RefreshSuppress, when set, skips the soft-state TREE
	// redistribution for groups whose entry changed within the last
	// RefreshInterval: the distribution that accompanied the change
	// already reconverged any diverged router, so the tick would be a
	// redundant packet storm under churn. Groups owing deferred grafts
	// always refresh. Off by default.
	RefreshSuppress bool
	// Domains, when non-empty, labels every node with a domain id
	// (Domains[v] = the domain of node v, dense from 0) and — together
	// with DomainMRouters — switches SCMP into the hierarchical
	// multi-domain mode (PROTOCOL.md §13): one m-router per domain,
	// JOIN/LEAVE resolved at the member's local m-router, and domain
	// subtrees composed through the group's core domain over the
	// contracted backbone. Must be set together with DomainMRouters.
	Domains []int
	// DomainMRouters lists one m-router per domain (index = domain id;
	// each must lie in its domain). Group g's core domain is
	// g mod len(DomainMRouters): the composed tree roots at that
	// domain's m-router and off-tree sources encapsulate to it. A
	// single-domain configuration degenerates to the flat engine
	// byte-for-byte (the same code path runs). The hierarchical mode is
	// mutually exclusive with MRouters, Standby, and the reliable-
	// signalling/overload knobs (AckTimeout, RetryBudget, AdmitLimit,
	// ServiceTime); soft-state refresh and DisableBranch compose.
	DomainMRouters []topology.NodeID
}

// SCMP is the protocol instance managing every router in a domain.
type SCMP struct {
	cfg     Config
	homes   []topology.NodeID // the m-router(s) currently providing service
	net     *netsim.Network
	spDelay *topology.AllPairs
	spCost  *topology.AllPairs
	groups  map[packet.GroupID]*groupState
	// view is the domain decomposition of the hierarchical multi-domain
	// mode (nil in flat mode — the discriminator every hierarchical
	// branch tests). Built in Attach from Config.Domains.
	view *topology.DomainView
	// entries is indexed by node id (allocated in Attach once the
	// topology size is known). Dense indexing keeps per-node entry
	// access disjoint: under a partitioned drive concurrent windows
	// touch only their own partition's slots, and a slice read of a
	// foreign slot is never a map-structure race.
	entries []map[packet.GroupID]*entry
	// replica is the standby's copy of the membership database, fed by
	// REPLICATE packets from the primary.
	replica map[packet.GroupID]map[topology.NodeID]bool
	acct    *session.Manager
	service *serviceCenter
	// epoch counts failovers; distribution versions encode it in their
	// high 32 bits so entries installed before a failover are never
	// trusted as a source's on-tree fast path afterwards.
	epoch uint64
	// pending tracks unacknowledged reliable control requests by
	// (requester, group); reqSeq numbers them so a late ACK for a
	// superseded request is ignored. parked holds requests that
	// exhausted their retry budget and wait on a single deferred
	// re-attempt timer (overload.go).
	pending map[pendingKey]*pendingReq
	parked  map[pendingKey]*parkedReq
	reqSeq  uint64
	// ctlSeen records, per (requester, group), the highest request
	// sequence the m-router has accepted — the ordering guard against a
	// retransmitted copy of a superseded operation arriving after its
	// successor and rolling the membership back (repair.go staleCtl).
	ctlSeen map[pendingKey]uint64
	// replSeen is the standby-side equivalent for replication: the
	// highest snapshot sequence applied per group, so a straggling copy
	// of a superseded snapshot cannot overwrite a newer replica.
	replSeen map[packet.GroupID]uint64
}

var _ netsim.Protocol = (*SCMP)(nil)

// New returns an SCMP instance; attach it by passing it to netsim.New.
func New(cfg Config) *SCMP {
	if cfg.Kappa == 0 {
		cfg.Kappa = 1
	}
	if cfg.Kappa < 1 {
		panic(fmt.Sprintf("core: Kappa %g < 1", cfg.Kappa))
	}
	if cfg.Standby <= 0 {
		cfg.Standby = -1 // disabled
	}
	if (len(cfg.Domains) == 0) != (len(cfg.DomainMRouters) == 0) {
		panic("core: Domains and DomainMRouters must be set together")
	}
	if len(cfg.DomainMRouters) == 1 {
		// A single-domain hierarchical configuration IS the flat
		// protocol: run the flat code path so the degeneration is
		// byte-identical by construction (the differential gate's k=1
		// arm), and keep hierarchical() equivalent to "k >= 2".
		cfg.MRouter = cfg.DomainMRouters[0]
		cfg.Domains = nil
		cfg.DomainMRouters = nil
	}
	homes := []topology.NodeID{cfg.MRouter}
	if len(cfg.MRouters) > 0 {
		homes = append([]topology.NodeID(nil), cfg.MRouters...)
		cfg.MRouter = homes[0]
		if cfg.Standby >= 0 {
			panic("core: hot standby requires single-m-router mode")
		}
		seen := map[topology.NodeID]bool{}
		for _, h := range homes {
			if seen[h] {
				panic(fmt.Sprintf("core: duplicate m-router %d", h))
			}
			seen[h] = true
		}
	}
	if len(cfg.DomainMRouters) > 0 {
		if len(cfg.MRouters) > 0 {
			panic("core: hierarchical mode and MRouters are mutually exclusive")
		}
		if cfg.Standby >= 0 {
			panic("core: hierarchical mode does not support a hot standby")
		}
		if cfg.AckTimeout > 0 || cfg.RetryBudget > 0 || cfg.AdmitLimit > 0 {
			panic("core: hierarchical mode does not support reliable-signalling/overload knobs")
		}
		if cfg.ServiceTime > 0 {
			panic("core: hierarchical mode does not support service-time modelling (per-domain service centres are future work)")
		}
		homes = append([]topology.NodeID(nil), cfg.DomainMRouters...)
		cfg.MRouter = homes[0]
		seen := map[topology.NodeID]bool{}
		for _, h := range homes {
			if seen[h] {
				panic(fmt.Sprintf("core: duplicate domain m-router %d", h))
			}
			seen[h] = true
		}
	}
	if cfg.Standby == cfg.MRouter {
		panic("core: standby must differ from the primary m-router")
	}
	return &SCMP{
		cfg:      cfg,
		homes:    homes,
		groups:   make(map[packet.GroupID]*groupState),
		replica:  make(map[packet.GroupID]map[topology.NodeID]bool),
		pending:  make(map[pendingKey]*pendingReq),
		parked:   make(map[pendingKey]*parkedReq),
		ctlSeen:  make(map[pendingKey]uint64),
		replSeen: make(map[packet.GroupID]uint64),
	}
}

// home returns the m-router serving group g: the published static
// assignment MRouters[g mod len] (a single-m-router domain always maps
// to that m-router).
func (s *SCMP) home(g packet.GroupID) topology.NodeID {
	return s.homes[int(g)%len(s.homes)]
}

// isHome reports whether node is the m-router serving g.
func (s *SCMP) isHome(node topology.NodeID, g packet.GroupID) bool {
	return node == s.home(g)
}

// HomeOf exposes the group-to-m-router assignment (for tools/tests).
func (s *SCMP) HomeOf(g packet.GroupID) topology.NodeID { return s.home(g) }

// Name implements netsim.Protocol.
func (s *SCMP) Name() string { return "SCMP" }

// Attach implements netsim.Protocol: it verifies the m-router exists and
// precomputes the all-pairs path tables the m-router's DCDM uses (the
// m-router "possesses all the information on the network").
func (s *SCMP) Attach(n *netsim.Network) {
	if s.net != nil {
		panic("core: SCMP attached twice")
	}
	for _, h := range s.homes {
		if h < 0 || int(h) >= n.G.N() {
			panic(fmt.Sprintf("core: m-router %d out of range", h))
		}
	}
	if s.cfg.Standby >= 0 && int(s.cfg.Standby) >= n.G.N() {
		panic(fmt.Sprintf("core: standby %d out of range", s.cfg.Standby))
	}
	s.net = n
	if len(s.cfg.DomainMRouters) > 0 {
		if len(s.cfg.Domains) != n.G.N() {
			panic(fmt.Sprintf("core: %d domain labels for %d nodes", len(s.cfg.Domains), n.G.N()))
		}
		view, err := topology.NewDomainView(n.G, s.cfg.Domains)
		if err != nil {
			panic("core: " + err.Error())
		}
		if view.K() != len(s.cfg.DomainMRouters) {
			panic(fmt.Sprintf("core: %d domain m-routers for %d domains", len(s.cfg.DomainMRouters), view.K()))
		}
		for d, m := range s.cfg.DomainMRouters {
			if view.Domain(m) != d {
				panic(fmt.Sprintf("core: m-router %d assigned to domain %d but lies in domain %d", m, d, view.Domain(m)))
			}
		}
		s.view = view
	}
	s.entries = make([]map[packet.GroupID]*entry, n.G.N())
	// Lazy tables: rows materialise the first time DCDM consults a
	// source, so a domain serving small groups never pays the full
	// n-Dijkstra build (row contents are identical to an eager build).
	s.spDelay = topology.NewLazyAllPairs(n.G, topology.ByDelay)
	s.spCost = topology.NewLazyAllPairs(n.G, topology.ByCost)
	s.acct = session.NewManager(n.Sched, 0xE0000000, 1<<20)
	s.service = newServiceCenter(n.Sched, des.Time(s.cfg.ServiceTime), s.cfg.Processors)
}

// MRouter returns the node currently acting as the (first) m-router —
// the standby after a failover.
func (s *SCMP) MRouter() topology.NodeID { return s.homes[0] }

// Accounting exposes the m-router's service database (§II-C): address
// allocation, membership on-time tracking, session records.
func (s *SCMP) Accounting() *session.Manager { return s.acct }

// GroupTree returns the m-router's current tree for g (nil if the group
// has no state yet): the composed tree in hierarchical mode. Read-only.
func (s *SCMP) GroupTree(g packet.GroupID) *mtree.Tree {
	gs := s.groups[g]
	if gs == nil {
		return nil
	}
	return gs.tree()
}

// GroupComposer returns g's hierarchical composer (nil in flat mode or
// when the group has no state yet). Read-only, for tests and tooling.
func (s *SCMP) GroupComposer(g packet.GroupID) *mtree.HierDCDM {
	gs := s.groups[g]
	if gs == nil {
		return nil
	}
	return gs.hier
}

func (s *SCMP) group(g packet.GroupID) *groupState {
	gs := s.groups[g]
	if gs == nil {
		kappa := s.cfg.Kappa
		if kappa == 0 {
			kappa = 1
		}
		if math.IsInf(kappa, 1) {
			kappa = math.Inf(1)
		}
		if s.view != nil {
			core := int(g) % len(s.homes)
			gs = &groupState{hier: mtree.NewHierDCDM(s.view, s.cfg.DomainMRouters, core, kappa)}
			if s.cfg.DelayBudget > 0 {
				gs.hier.SetQoSBudget(s.cfg.DelayBudget)
			}
			gs.version = s.epoch * failoverEpoch
			s.groups[g] = gs
			return gs
		}
		gs = &groupState{dcdm: mtree.NewDCDM(s.net.G, s.home(g), kappa, s.spDelay, s.spCost)}
		if s.cfg.DelayBudget > 0 {
			gs.dcdm.SetQoSBudget(s.cfg.DelayBudget)
		}
		// A group created after a failover starts its version stream in
		// the current epoch (pre-failover groups get this in Failover
		// itself). Without the stamp, its distributions would carry
		// epoch-0 versions: stale pre-failover entries could outrank
		// them, and SendData's epoch check would force every member
		// source into the encapsulation fallback forever.
		gs.version = s.epoch * failoverEpoch
		s.groups[g] = gs
	}
	return gs
}

func (s *SCMP) entry(node topology.NodeID, g packet.GroupID) *entry {
	byGroup := s.entries[node]
	if byGroup == nil {
		byGroup = make(map[packet.GroupID]*entry)
		s.entries[node] = byGroup
	}
	e := byGroup[g]
	if e == nil {
		e = newEntry()
		byGroup[g] = e
	}
	return e
}

func (s *SCMP) peekEntry(node topology.NodeID, g packet.GroupID) *entry {
	return s.entries[node][g]
}

// EntryView is a read-only snapshot of a router's multicast routing
// entry, for tests and tooling.
type EntryView struct {
	OnTree     bool
	Upstream   topology.NodeID
	Downstream []topology.NodeID
	HasLocal   bool
}

// Entry returns a snapshot of node's routing entry for g; ok is false
// when the router holds no state for the group.
func (s *SCMP) Entry(node topology.NodeID, g packet.GroupID) (EntryView, bool) {
	e := s.peekEntry(node, g)
	if e == nil {
		return EntryView{}, false
	}
	v := EntryView{OnTree: e.onTree, Upstream: e.upstream, HasLocal: e.hasLocal}
	for d := range e.downstream {
		v.Downstream = append(v.Downstream, d)
	}
	sort.Slice(v.Downstream, func(i, j int) bool { return v.Downstream[i] < v.Downstream[j] })
	return v, true
}

// StateEntries returns the number of live multicast routing entries a
// router holds — one per group it is on the tree of (or has members
// for). SCMP's per-router state scales with group count only, never
// with source count; contrast the SPT-based protocols (§I: SPT routing
// "introduces the scalability problem ... since routers need to store
// routing information for each (source, group) pair").
func (s *SCMP) StateEntries(node topology.NodeID) int {
	count := 0
	for _, e := range s.entries[node] {
		if e.onTree || e.hasLocal || e.pendingLocal {
			count++
		}
	}
	return count
}

// --- membership (§III-B, §III-C) --------------------------------------

// HostJoin implements the member joining procedure at the DR. In
// hierarchical mode the JOIN goes to the member's *local* m-router —
// the locality the multi-domain architecture buys — instead of the
// group's (core) home.
func (s *SCMP) HostJoin(node topology.NodeID, g packet.GroupID) {
	if s.isCtrlHome(node, node, g) {
		e := s.entry(node, g)
		e.onTree, e.hasLocal = true, true
		if s.durableMode() {
			// The m-router's own membership must survive the m-router: in
			// durable mode the JOIN goes through the reliable path even
			// though it self-delivers, so the ladder stays alive until the
			// operation is replicated — and, across a failover, re-resolves
			// the home and re-lands on the promoted standby.
			s.sendReliable(node, g, packet.Join, nil)
			return
		}
		// The m-router is its own DR: no JOIN message crosses the network.
		s.mrouterJoin(node, g)
		return
	}
	e := s.entry(node, g)
	if e.onTree {
		// Already on the tree as a relay: mark the interface; the paper
		// still sends a JOIN for accounting/billing when this is the
		// first local interface.
		if !e.hasLocal {
			e.hasLocal = true
			s.sendReliable(node, g, packet.Join, nil)
		}
		return
	}
	// Off tree: remember the interface for when the TREE/BRANCH packet
	// arrives, and ask the m-router to extend the tree.
	e.pendingLocal = true
	s.sendReliable(node, g, packet.Join, nil)
}

// HostLeave implements the member leaving procedure at the DR.
func (s *SCMP) HostLeave(node topology.NodeID, g packet.GroupID) {
	e := s.peekEntry(node, g)
	if e == nil {
		return
	}
	e.hasLocal = false
	e.pendingLocal = false
	if s.isCtrlHome(node, node, g) {
		if s.durableMode() {
			// Symmetric with HostJoin: the primary's own LEAVE rides the
			// reliable path so a failover cannot resurrect it from a stale
			// replica snapshot — the live ladder re-lands the LEAVE.
			s.sendReliable(node, g, packet.Leave, nil)
			return
		}
		s.mrouterLeave(node, g)
		// A local m-router — unlike the flat home, which is the tree's
		// root — can itself be a prunable leaf of the composed tree.
		if s.hierarchical() && !s.isHome(node, g) && e.onTree && len(e.downstream) == 0 {
			s.sendPrune(node, g, e)
		}
		return
	}
	// Always tell the m-router (accounting); additionally prune when the
	// DR became a leaf.
	s.sendReliable(node, g, packet.Leave, nil)
	if e.onTree && len(e.downstream) == 0 {
		s.sendPrune(node, g, e)
	}
}

// sendControl unicasts a small control packet from node to the m-router
// (the fire-and-forget path; sendReliable wraps it with ACK/retry when
// AckTimeout is configured).
func (s *SCMP) sendControl(node topology.NodeID, g packet.GroupID, kind packet.Kind, about topology.NodeID) {
	s.net.SendUnicast(node, &netsim.Packet{
		Kind:  kind,
		Group: g,
		Src:   about,
		Dst:   s.ctrlHome(node, g),
		Size:  packet.ControlSize,
	})
}

// sendPrune tears this router's branch: it forgets its entry and tells
// its upstream.
func (s *SCMP) sendPrune(node topology.NodeID, g packet.GroupID, e *entry) {
	up := e.upstream
	e.onTree = false
	e.upstream = noUpstream
	if up == noUpstream {
		return
	}
	s.net.SendLink(node, up, &netsim.Packet{
		Kind:    packet.Prune,
		Group:   g,
		Src:     node,
		Version: e.version, // stamps the sender's epoch; see handlePrune
		Size:    packet.ControlSize,
	})
}

// --- m-router logic (§III-D, §III-E) -----------------------------------

// mrouterJoin runs DCDM for a join, records it in the service database,
// replicates it to the standby, and distributes the tree change. In
// hierarchical mode the member's local m-router runs the composer
// instead (hier.go).
func (s *SCMP) mrouterJoin(member topology.NodeID, g packet.GroupID) {
	if s.hierarchical() {
		s.hierJoin(member, g)
		return
	}
	gs := s.group(g)
	gs.lastChange = s.net.Now()
	defer s.armRefresh(g, gs)
	s.acct.Adopt(g, fmt.Sprintf("group-%d", g))
	if gs.session == 0 {
		if id, err := s.acct.StartSession(g, 0, nil); err == nil {
			gs.session = id
		}
	}
	_ = s.acct.MemberJoined(g, member)
	// Replicate on the way out: the snapshot must reflect the member set
	// after this join lands (grafted or deferred).
	defer s.replicate(g, gs)
	delete(gs.deferred, member)
	if member != s.home(g) && !s.spDelay.Row(s.home(g)).Reachable(member) {
		// The member is partitioned away from the m-router right now:
		// grafting would fail. Remember it; the refresh tick and every
		// topology heal retry the graft.
		gs.deferMember(member)
		return
	}
	res := gs.dcdm.Join(member)
	if res.Restructured {
		s.net.NoteRestructure(s.home(g))
	}
	s.syncMRouterEntry(g, gs)
	if res.AlreadyOn {
		// Tree unchanged — the member was already a relay. Refresh its
		// path with an (idempotent) BRANCH anyway: the DR may have been
		// flushed by a restructure and is waiting to re-home.
		gs.version++
		s.distributeBranch(g, gs, member)
		return
	}
	gs.version++
	if res.Restructured || s.cfg.DisableBranch {
		s.distributeTree(g, gs)
		return
	}
	s.distributeBranch(g, gs, member)
}

// mrouterLeave runs DCDM for a leave. The network-side prune is driven
// by the leaving DR's hop-by-hop PRUNE; the m-router only updates its
// own copy of the tree.
func (s *SCMP) mrouterLeave(member topology.NodeID, g packet.GroupID) {
	if s.hierarchical() {
		s.hierLeave(member, g)
		return
	}
	gs := s.groups[g]
	if gs == nil {
		return
	}
	_ = s.acct.MemberLeft(g, member)
	delete(gs.deferred, member)
	gs.lastChange = s.net.Now()
	gs.dcdm.Leave(member)
	s.syncMRouterEntry(g, gs)
	s.replicate(g, gs) // snapshot of the post-leave member set
}

// replicate streams the group's membership to the hot-standby secondary
// (§V): "a secondary m-router concurrently running with the primary".
// The payload is a full member-set snapshot, not a join/leave delta:
// snapshots are idempotent and a newer one legitimately supersedes an
// older one, which is exactly the reliable-signalling slot contract
// (one outstanding request per (node, group), newest wins) — so with an
// AckTimeout configured the snapshot rides the ACK/retransmit ladder
// and the replica converges even when the loss model eats individual
// copies. A lost delta has no such backstop: the member it carried
// would silently vanish from the replica, and a failover would rebuild
// the trees without it.
func (s *SCMP) replicate(g packet.GroupID, gs *groupState) {
	if s.cfg.Standby < 0 || s.epoch > 0 {
		return // no standby, or the standby itself is already active
	}
	members := gs.tree().Members()
	for m := range gs.deferred {
		// Deferred (currently partitioned) members are members too: a
		// failover must not forget them just because grafting is waiting
		// on a topology heal.
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	payload := packet.EncodeMembers(members)
	if s.cfg.AckTimeout > 0 {
		s.sendReliable(s.homes[0], g, packet.Replicate, payload)
		return
	}
	s.net.SendUnicast(s.homes[0], &netsim.Packet{
		Kind:    packet.Replicate,
		Group:   g,
		Src:     s.homes[0],
		Dst:     s.cfg.Standby,
		Payload: payload,
		Size:    packet.ControlSize,
	})
}

// handleReplicate installs a member-set snapshot in the standby's
// replica database and, for a reliable (sequenced) snapshot, returns
// the ACK that settles the primary's retransmission ladder. replSeen
// keeps a reordered older snapshot from overwriting a newer one.
func (s *SCMP) handleReplicate(pkt *netsim.Packet) {
	members, err := packet.DecodeMembers(pkt.Payload)
	if err != nil {
		return
	}
	if pkt.Seq != 0 {
		if pkt.Seq < s.replSeen[pkt.Group] {
			return // stale copy of a superseded snapshot
		}
		s.replSeen[pkt.Group] = pkt.Seq
		s.net.SendUnicast(s.cfg.Standby, &netsim.Packet{
			Kind:    packet.Ack,
			Group:   pkt.Group,
			Src:     s.cfg.Standby,
			Dst:     pkt.Src,
			Payload: packet.EncodeAck(packet.AckInfo{Req: packet.Replicate, Seq: pkt.Seq}),
			Size:    packet.ControlSize,
		})
	}
	set := make(map[topology.NodeID]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	s.replica[pkt.Group] = set
}

// ReplicaMembers returns the standby's replicated member set for g,
// sorted — the state a failover will rebuild trees from.
func (s *SCMP) ReplicaMembers(g packet.GroupID) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(s.replica[g]))
	for m := range s.replica[g] {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// failoverEpoch separates pre- and post-failover distribution versions
// so every packet from the new m-router outranks stale ones.
const failoverEpoch = uint64(1) << 32

// Failover promotes the hot-standby secondary to active m-router after
// a primary failure (§V: "when the primary m-router fails, the
// secondary m-router will take over the job automatically"). The new
// m-router rebuilds every group's tree rooted at itself from the
// replicated membership and installs the trees with TREE packets;
// i-routers re-home on receipt, pruning their old branches toward the
// dead primary. Subsequent JOIN/LEAVE/encapsulated traffic flows to the
// new m-router (every router's configuration lists both addresses).
func (s *SCMP) Failover() {
	if s.cfg.Standby < 0 {
		panic("core: Failover without a configured standby")
	}
	if s.homes[0] == s.cfg.Standby {
		return // already failed over
	}
	// The dead primary's forwarding entries die with it.
	for g, e := range s.entries[s.homes[0]] {
		e.onTree = false
		e.downstream = make(map[topology.NodeID]bool)
		e.downDirty = true
		_ = g
	}
	s.homes[0] = s.cfg.Standby
	s.epoch++
	// The failed primary's replication stream dies with it: in-flight
	// snapshot ladders (and parked re-attempts) would otherwise keep
	// retransmitting into the promoted standby forever.
	for key, p := range s.pending {
		if p.kind == packet.Replicate {
			if p.timer != nil {
				p.timer.Cancel()
			}
			delete(s.pending, key)
		}
	}
	for key, pk := range s.parked {
		if pk.kind == packet.Replicate {
			if pk.timer != nil {
				pk.timer.Cancel()
			}
			delete(s.parked, key)
		}
	}
	old := s.groups
	// The old group states are discarded below, but their armed refresh
	// timers would survive as closures over the dead state — firing
	// forever, redistributing the stale pre-failover tree, and
	// unreachable by Quiesce (which walks the new map). Kill them here.
	for _, gs := range old {
		if gs.refresh != nil {
			gs.refresh.Cancel()
			gs.refresh = nil
		}
	}
	s.groups = make(map[packet.GroupID]*groupState)
	gids := make([]packet.GroupID, 0, len(s.replica))
	for g := range s.replica {
		gids = append(gids, g)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, g := range gids {
		if len(s.replica[g]) == 0 {
			continue
		}
		gs := s.group(g) // rooted at the new active m-router
		gs.version = s.epoch * failoverEpoch
		if prev := old[g]; prev != nil && prev.version >= gs.version {
			gs.version = prev.version + failoverEpoch
		}
		for _, m := range s.ReplicaMembers(g) {
			if m == s.homes[0] {
				e := s.entry(m, g)
				e.onTree, e.hasLocal = true, true
			}
			gs.dcdm.Join(m)
		}
		gs.lastChange = s.net.Now()
		s.syncMRouterEntry(g, gs)
		gs.version++
		s.distributeTree(g, gs)
		s.armRefresh(g, gs) // soft state resumes under the new primary
	}
}

// syncMRouterEntry mirrors the DCDM tree's root children into the
// m-router's own forwarding entry.
func (s *SCMP) syncMRouterEntry(g packet.GroupID, gs *groupState) {
	e := s.entry(s.home(g), g)
	e.onTree = true
	e.upstream = noUpstream
	down := make(map[topology.NodeID]bool)
	for _, c := range gs.tree().Children(s.home(g)) {
		down[c] = true
	}
	e.downstream = down
	e.downDirty = true
	e.version = gs.version
	commitCheck(s.home(g), gs.tree())
}

// distributeTree sends one self-routing TREE packet per child subtree of
// the m-router (§III-E).
func (s *SCMP) distributeTree(g packet.GroupID, gs *groupState) {
	tree := gs.tree()
	for _, c := range tree.Children(s.home(g)) {
		payload := packet.EncodeSubtree(packet.BuildSubtree(tree, c))
		s.net.SendLink(s.home(g), c, &netsim.Packet{
			Kind:    packet.Tree,
			Group:   g,
			Src:     s.home(g),
			Version: gs.version,
			Payload: payload,
			Size:    len(payload) + 8,
		})
	}
}

// distributeBranch sends a BRANCH packet carrying the tree path from the
// m-router to the new member.
func (s *SCMP) distributeBranch(g packet.GroupID, gs *groupState, member topology.NodeID) {
	rev := gs.tree().PathToRoot(member) // member ... root
	if rev == nil {
		// Defensive: fall back to a full distribution.
		s.distributeTree(g, gs)
		return
	}
	path := make([]topology.NodeID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	// path = root, r1, ..., member. The packet sent to r1 carries
	// (r1, ..., member), the paper's format.
	if len(path) < 2 {
		return
	}
	payload := packet.EncodeBranch(path[1:])
	s.net.SendLink(s.home(g), path[1], &netsim.Packet{
		Kind:    packet.Branch,
		Group:   g,
		Src:     s.home(g),
		Version: gs.version,
		Payload: payload,
		Size:    len(payload) + 8,
	})
}

// --- packet processing --------------------------------------------------

// HandlePacket implements netsim.Protocol.
func (s *SCMP) HandlePacket(node topology.NodeID, pkt *netsim.Packet) {
	switch pkt.Kind {
	case packet.Join:
		if s.isCtrlHome(node, pkt.Src, pkt.Group) {
			member, g, seq := pkt.Src, pkt.Group, pkt.Seq
			if s.staleCtl(member, g, seq) {
				return // superseded op's retransmission: never roll back
			}
			if !s.admitJoin(node, g, member, seq) {
				return // shed: the NACK (if any) is already on the wire
			}
			s.service.submit(func() {
				s.mrouterJoin(member, g)
				s.ackDurable(g, packet.Join, member, seq)
			})
		}
	case packet.Leave:
		if s.isCtrlHome(node, pkt.Src, pkt.Group) {
			member, g, seq := pkt.Src, pkt.Group, pkt.Seq
			if s.staleCtl(member, g, seq) {
				return // superseded op's retransmission: never roll back
			}
			s.service.submit(func() {
				s.mrouterLeave(member, g)
				s.ackDurable(g, packet.Leave, member, seq)
			})
		}
	case packet.Graft:
		if s.hierarchical() && s.isHome(node, pkt.Group) {
			s.handleGraft(node, pkt)
		}
	case packet.Rejoin:
		if s.isHome(node, pkt.Group) {
			info, err := packet.DecodeRejoin(pkt.Payload)
			if err != nil {
				return
			}
			g, from, seq := pkt.Group, pkt.Src, pkt.Seq
			s.service.submit(func() {
				s.mrouterRejoin(g, info)
				s.ack(g, packet.Rejoin, from, seq)
			})
		}
	case packet.Ack:
		if pkt.Dst == node {
			s.handleAck(node, pkt)
		}
	case packet.Nack:
		if pkt.Dst == node {
			s.handleNack(node, pkt)
		}
	case packet.Replicate:
		if node == s.cfg.Standby {
			s.handleReplicate(pkt)
		}
	case packet.Tree:
		s.handleTree(node, pkt)
	case packet.Branch:
		s.handleBranch(node, pkt)
	case packet.Prune:
		s.handlePrune(node, pkt)
	case packet.Flush:
		s.handleFlush(node, pkt)
	case packet.Data:
		s.handleData(node, pkt)
	case packet.EncapData:
		s.handleEncap(node, pkt)
	}
}

// handleTree implements the TREE packet processing algorithm (§III-E):
// adopt the sender as upstream, replace the downstream set with the
// packet's children, split the packet and forward one subpacket per
// child. Downstream routers absent from the new subtree are flushed.
// ParallelWindowSafe implements netsim.ParallelSafe: the dispatch-order
// sensitive features — multiple m-routers or a hot standby (shared
// group/replica maps written from several homes), the service centre
// queue, reliable signalling timers, and soft-state refresh — all
// serialise through shared protocol state that a windowed drive would
// interleave nondeterministically, so a configuration using any of
// them falls back to the serial scheduler. The plain fig-8/fig-9
// forwarding workload (one m-router, fire-and-forget control) keeps
// all cross-partition interaction on the simulated wire and is safe.
func (s *SCMP) ParallelWindowSafe() bool {
	return s.view == nil && // hierarchical mode: one composer, many homes
		len(s.homes) == 1 &&
		s.cfg.Standby < 0 &&
		s.cfg.AckTimeout <= 0 &&
		s.cfg.RefreshInterval <= 0 &&
		s.cfg.ServiceTime <= 0 &&
		s.cfg.AdmitLimit <= 0 &&
		s.cfg.RetryBudget <= 0 &&
		!s.cfg.RefreshSuppress
}

func (s *SCMP) handleTree(node topology.NodeID, pkt *netsim.Packet) {
	// Split rather than decode: each child's subtree encoding is
	// embedded verbatim in the payload, so the forwarded subpackets are
	// slices of the incoming payload (byte-identical to re-encoding,
	// without materialising the Subtree or allocating new payloads).
	// SplitSubtree walks the whole payload, so corrupt packets are
	// dropped here exactly as DecodeSubtree would. The scratch is local
	// on purpose: TREE distribution is off the data hot path, and a
	// shared instance-level buffer would be written from concurrent
	// partition windows.
	children, err := packet.SplitSubtree(pkt.Payload, nil)
	if err != nil {
		return // corrupt packet: drop
	}
	e := s.entry(node, pkt.Group)
	if pkt.Version < e.version {
		return // stale distribution overtaken by a newer one
	}
	e.version = pkt.Version
	oldUp := e.upstream
	wasOnTree := e.onTree
	e.onTree = true
	e.upstream = pkt.From
	s.recordRecovery(e)
	if wasOnTree && oldUp != noUpstream && oldUp != pkt.From {
		// Restructured: break the loop by pruning toward the old parent.
		s.net.SendLink(node, oldUp, &netsim.Packet{
			Kind:    packet.Prune,
			Group:   pkt.Group,
			Src:     node,
			Version: pkt.Version,
			Size:    packet.ControlSize,
		})
	}
	newDown := make(map[topology.NodeID]bool, len(children))
	for _, c := range children {
		newDown[c.Addr] = true
		s.net.SendLink(node, c.Addr, &netsim.Packet{
			Kind:    packet.Tree,
			Group:   pkt.Group,
			Src:     pkt.Src,
			Version: pkt.Version,
			Payload: c.Sub,
			Size:    len(c.Sub) + 8,
		})
	}
	for _, d := range e.down() {
		if !newDown[d] {
			s.net.SendLink(node, d, &netsim.Packet{
				Kind:    packet.Flush,
				Group:   pkt.Group,
				Src:     node,
				Version: pkt.Version,
				Size:    packet.ControlSize,
			})
		}
	}
	e.downstream = newDown
	e.downDirty = true
	if e.pendingLocal {
		e.pendingLocal = false
		e.hasLocal = true
	}
}

// handleBranch implements BRANCH processing (§III-E): pop self off the
// head, adopt upstream if new, add the next router downstream, forward.
func (s *SCMP) handleBranch(node topology.NodeID, pkt *netsim.Packet) {
	path, err := packet.DecodeBranch(pkt.Payload)
	if err != nil || len(path) == 0 || path[0] != node {
		return
	}
	e := s.entry(node, pkt.Group)
	if pkt.Version < e.version {
		return
	}
	e.version = pkt.Version
	if !e.onTree || e.upstream == noUpstream {
		// Off tree, or an orphan whose upstream link died: adopt the
		// branch as the new upstream (local repair re-homing) — except
		// at a hierarchical install's *addressed head* (pkt.Dst is the
		// head, propagated hop-by-hop below). The head reached the
		// composed tree through an earlier install; if that install is
		// still in flight, pkt.From here is a unicast relay, not the
		// tree parent, and adopting it would wedge the entry until the
		// next refresh. Leaving upstream unset lets the in-flight
		// equal-version install adopt correctly when it lands.
		if !(s.hierarchical() && pkt.Dst == node) {
			e.onTree = true
			e.upstream = pkt.From
			s.recordRecovery(e)
		}
	}
	// Any router the BRANCH confirms on the tree can add the interface
	// it marked at IGMP-report time — the node may be a mid-path relay
	// whose own JOIN overlapped with this distribution.
	if e.pendingLocal {
		e.pendingLocal = false
		e.hasLocal = true
	}
	rest := path[1:]
	if len(rest) == 0 {
		return // this router is the new member's DR
	}
	e.downstream[rest[0]] = true
	e.downDirty = true
	payload := packet.EncodeBranch(rest)
	s.net.SendLink(node, rest[0], &netsim.Packet{
		Kind:    packet.Branch,
		Group:   pkt.Group,
		Src:     pkt.Src,
		Dst:     pkt.Dst, // the addressed head, so only it skips adoption (flat: 0, unchanged)
		Version: pkt.Version,
		Payload: payload,
		Size:    len(payload) + 8,
	})
}

// handlePrune removes the sending child; a router left as a childless
// non-member leaf prunes itself upstream in turn (§III-C).
func (s *SCMP) handlePrune(node topology.NodeID, pkt *netsim.Packet) {
	e := s.peekEntry(node, pkt.Group)
	if e == nil || !e.onTree {
		return
	}
	if pkt.Version>>32 < e.version>>32 {
		// A prune stamped with a pre-failover epoch arriving at a router
		// already re-homed by the new m-router's distribution is the old
		// tree tearing itself down, not this child leaving the new tree:
		// honouring it would detach a branch the new tree still routes
		// members through (seed 2679709531305543172). Within an epoch
		// version skew is legal — a leaf may lag its upstream's refresh —
		// so only cross-epoch prunes are rejected.
		return
	}
	delete(e.downstream, pkt.From)
	e.downDirty = true
	if s.isHome(node, pkt.Group) {
		return
	}
	if len(e.downstream) == 0 && !e.hasLocal && !e.pendingLocal {
		s.sendPrune(node, pkt.Group, e)
	}
}

// handleFlush tears down a stale branch after a restructure: the router
// forgets its entry and cascades the flush to its own downstream. A DR
// that still has local members immediately re-joins.
func (s *SCMP) handleFlush(node topology.NodeID, pkt *netsim.Packet) {
	e := s.peekEntry(node, pkt.Group)
	if e == nil || !e.onTree {
		return
	}
	if pkt.Version < e.version {
		return // already re-homed by a newer distribution
	}
	// A hop-by-hop flush must come from this router's upstream. A
	// directed flush — unicast by the m-router to an orphaned relay that
	// local repair excluded from the re-grafted tree — is addressed to
	// the node itself and bypasses the upstream match (the orphan has
	// none to match).
	if pkt.Dst != node && pkt.From != e.upstream {
		return
	}
	for _, d := range e.down() {
		s.net.SendLink(node, d, &netsim.Packet{
			Kind:    packet.Flush,
			Group:   pkt.Group,
			Src:     node,
			Version: pkt.Version,
			Size:    packet.ControlSize,
		})
	}
	hadLocal := e.hasLocal
	e.onTree = false
	e.upstream = noUpstream
	e.downstream = make(map[topology.NodeID]bool)
	e.downDirty = true
	e.hasLocal = false
	if hadLocal {
		e.pendingLocal = true
		s.sendReliable(node, pkt.Group, packet.Join, nil)
	} else {
		// A dismantled pure relay has no members waiting: its repair
		// episode (if any) ends here without a recovery sample.
		e.repairing = false
	}
}

// --- data forwarding (§III-F) -------------------------------------------

// SendData implements netsim.Protocol: an on-tree source (or the
// m-router) sends along the bi-directional tree; an off-tree source
// encapsulates to the m-router.
func (s *SCMP) SendData(src topology.NodeID, g packet.GroupID, size int, seq uint64) {
	pkt := &netsim.Packet{
		Kind:    packet.Data,
		Group:   g,
		Src:     src,
		Seq:     seq,
		Size:    size,
		Created: s.net.Now(),
	}
	e := s.peekEntry(src, g)
	if e != nil && e.onTree && e.version>>32 == s.epoch {
		// Record our own send in the duplicate filter: a forwarding
		// cycle through a router with a stale (diverged) entry can echo
		// the packet back here, and without this entry the source would
		// deliver its own packet to its local hosts. Interior routers
		// are already covered — their first copy seeds lastSeq.
		e.lastSeq[src] = seq
		s.forwardOnTree(src, e, pkt, src /* nothing to exclude: use src itself */)
		return
	}
	enc := *pkt
	enc.Kind = packet.EncapData
	enc.Dst = s.home(g)
	enc.Size = size + 20 // IP-in-IP encapsulation header
	s.net.SendUnicast(src, &enc)
}

// forwardOnTree sends pkt to upstream and all downstream except the one
// it came from.
//
//scmplint:hotpath
func (s *SCMP) forwardOnTree(node topology.NodeID, e *entry, pkt *netsim.Packet, except topology.NodeID) {
	if e.upstream != noUpstream && e.upstream != except {
		s.net.SendLink(node, e.upstream, pkt)
	}
	for _, d := range e.down() {
		if d != except {
			s.net.SendLink(node, d, pkt)
		}
	}
}

// handleData implements the multicast packet forwarding procedure: if
// the packet arrived from a router in F = {upstream} ∪ downstream,
// forward it to the rest of F and deliver locally; otherwise drop it.
//
//scmplint:hotpath
func (s *SCMP) handleData(node topology.NodeID, pkt *netsim.Packet) {
	e := s.peekEntry(node, pkt.Group)
	if e == nil || !e.onTree {
		s.net.DropData(node)
		return
	}
	fromUpstream := pkt.From == e.upstream
	fromDownstream := e.downstream[pkt.From]
	if !fromUpstream && !fromDownstream {
		s.net.DropData(node)
		return
	}
	if last, seen := e.lastSeq[pkt.Src]; seen && pkt.Seq <= last {
		s.net.DropData(node) // duplicate: a forwarding cycle is feeding us
		return
	}
	e.lastSeq[pkt.Src] = pkt.Seq
	s.recordTraffic(node, pkt.Group, pkt.Size)
	s.forwardOnTree(node, e, pkt, pkt.From)
	// A member source that fell back to encapsulation sees its own
	// packet come back down the tree: keep forwarding it (a subtree may
	// hang below us) but never hand a host its own transmission.
	if e.hasLocal && pkt.Src != node {
		s.net.DeliverLocal(node, pkt)
	}
}

// recordTraffic charges data crossing the m-router to the group's
// accounting session (§II-C: the m-router is "to check, track and
// record the multicast traffic in the corresponding multicast session").
func (s *SCMP) recordTraffic(node topology.NodeID, g packet.GroupID, size int) {
	if !s.isHome(node, g) {
		return
	}
	if gs := s.groups[g]; gs != nil && gs.session != 0 {
		_ = s.acct.RecordTraffic(g, gs.session, size)
	}
}

// TrafficRecord returns the packets and bytes the m-router has switched
// for the group's session.
func (s *SCMP) TrafficRecord(g packet.GroupID) (packets, bytes uint64) {
	gs := s.groups[g]
	if gs == nil || gs.session == 0 {
		return 0, 0
	}
	info, err := s.acct.Session(g, gs.session)
	if err != nil {
		return 0, 0
	}
	return info.Packets, info.Bytes
}

// handleEncap decapsulates data at the m-router and forwards it down the
// tree.
func (s *SCMP) handleEncap(node topology.NodeID, pkt *netsim.Packet) {
	if !s.isHome(node, pkt.Group) {
		return
	}
	e := s.peekEntry(node, pkt.Group)
	if e == nil || !e.onTree {
		s.net.DropData(node)
		return
	}
	data := *pkt
	data.Kind = packet.Data
	data.Size = pkt.Size - 20
	s.recordTraffic(node, pkt.Group, data.Size)
	s.forwardOnTree(node, e, &data, node)
	if e.hasLocal {
		s.net.DeliverLocal(node, &data)
	}
}
