package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	scmprng "scmp/internal/rng"
	"scmp/internal/session"
	"scmp/internal/topology"
)

// failoverNet builds a random domain with the primary m-router at node 1
// and the standby at node 2.
func failoverNet(t testing.TB, seed int64, n int) (*netsim.Network, *SCMP) {
	t.Helper()
	g, err := topology.Random(topology.DefaultRandom(n, 4), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{MRouter: 1, Standby: 2, Kappa: 1.5})
	net := netsim.New(g, s)
	return net, s
}

func TestStandbyConfigValidation(t *testing.T) {
	if New(Config{MRouter: 0}).cfg.Standby != -1 {
		t.Fatal("zero-value standby not disabled")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("standby == primary accepted")
			}
		}()
		New(Config{MRouter: 2, Standby: 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Failover without standby accepted")
			}
		}()
		s := New(Config{MRouter: 0})
		s.Failover()
	}()
}

func TestReplicationStreamsMembership(t *testing.T) {
	net, s := failoverNet(t, 1, 15)
	net.HostJoin(5, grp)
	net.HostJoin(9, grp)
	net.Run()
	if got := s.ReplicaMembers(grp); len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("replica = %v", got)
	}
	if net.Metrics.Crossings(packet.Replicate) == 0 {
		t.Fatal("no REPLICATE packets crossed the network")
	}
	net.HostLeave(5, grp)
	net.Run()
	if got := s.ReplicaMembers(grp); len(got) != 1 || got[0] != 9 {
		t.Fatalf("replica after leave = %v", got)
	}
}

func TestFailoverRestoresService(t *testing.T) {
	net, s := failoverNet(t, 2, 20)
	members := []topology.NodeID{4, 7, 11, 13}
	for _, m := range members {
		net.HostJoin(m, grp)
	}
	net.Run()

	s.Failover()
	net.Run() // new TREE distribution settles

	if s.MRouter() != 2 {
		t.Fatalf("active m-router = %d, want standby 2", s.MRouter())
	}
	tree := s.GroupTree(grp)
	if tree.Root() != 2 {
		t.Fatalf("tree root = %d, want 2", tree.Root())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if !tree.IsMember(m) {
			t.Fatalf("member %d lost across failover", m)
		}
	}
	// Data from every kind of source still reaches everyone.
	for _, src := range []topology.NodeID{2, 4, 0} { // new m-router, member, off-tree
		seq := net.SendData(src, grp, 500)
		net.Run()
		missing, anomalous := net.CheckDelivery(seq)
		if len(missing) != 0 || len(anomalous) != 0 {
			t.Fatalf("src %d after failover: missing=%v anomalous=%v", src, missing, anomalous)
		}
	}
}

func TestFailoverIsIdempotent(t *testing.T) {
	net, s := failoverNet(t, 3, 15)
	net.HostJoin(6, grp)
	net.Run()
	s.Failover()
	net.Run()
	s.Failover() // no-op
	net.Run()
	if s.MRouter() != 2 {
		t.Fatal("double failover changed state")
	}
	seq := net.SendData(0, grp, 100)
	net.Run()
	if missing, _ := net.CheckDelivery(seq); len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestJoinAfterFailoverGoesToNewMRouter(t *testing.T) {
	net, s := failoverNet(t, 4, 20)
	net.HostJoin(5, grp)
	net.Run()
	s.Failover()
	net.Run()
	net.HostJoin(9, grp)
	net.Run()
	tree := s.GroupTree(grp)
	if !tree.IsMember(9) {
		t.Fatal("post-failover join not served")
	}
	seq := net.SendData(9, grp, 100)
	net.Run()
	missing, anomalous := net.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

func TestLeaveAfterFailover(t *testing.T) {
	net, s := failoverNet(t, 5, 20)
	net.HostJoin(5, grp)
	net.HostJoin(9, grp)
	net.Run()
	s.Failover()
	net.Run()
	net.HostLeave(5, grp)
	net.Run()
	tree := s.GroupTree(grp)
	if tree.IsMember(5) || !tree.IsMember(9) {
		t.Fatalf("membership after post-failover leave wrong: %v", tree.Members())
	}
	seq := net.SendData(2, grp, 100)
	net.Run()
	missing, anomalous := net.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

func TestAccountingRecordsMembership(t *testing.T) {
	net, s := failoverNet(t, 6, 15)
	net.HostJoin(5, grp)
	net.Run()
	net.HostLeave(5, grp)
	net.Run()
	acct := s.Accounting()
	joins, leaves := 0, 0
	for _, e := range acct.Log() {
		switch e.Kind {
		case session.EventJoin:
			joins++
		case session.EventLeave:
			leaves++
		}
	}
	if joins != 1 || leaves != 1 {
		t.Fatalf("accounting joins=%d leaves=%d", joins, leaves)
	}
	if got := acct.MemberOnTime(grp, 5); got <= 0 {
		t.Fatalf("on-time = %v, want > 0", got)
	}
}

// failoverDelivers is the property under test: for a random topology and
// member set derived from seed, failover restores exactly-once delivery
// from arbitrary sources.
func failoverDelivers(t *testing.T, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.Random(topology.DefaultRandom(18, 4), rng)
	if err != nil {
		return false
	}
	s := New(Config{MRouter: 1, Standby: 2, Kappa: 1.5})
	net := netsim.New(g, s)
	members := map[topology.NodeID]bool{}
	for _, v := range rng.Perm(g.N())[:6] {
		if v == 1 { // don't place members on the doomed primary
			continue
		}
		net.HostJoin(topology.NodeID(v), grp)
		members[topology.NodeID(v)] = true
	}
	net.Run()
	s.Failover()
	net.Run()
	if err := s.GroupTree(grp).Validate(); err != nil {
		t.Logf("seed %d: %v", seed, err)
		return false
	}
	for i := 0; i < 3; i++ {
		src := topology.NodeID(rng.Intn(g.N()))
		if src == 1 {
			continue // the dead primary does not originate traffic
		}
		seq := net.SendData(src, grp, 200)
		net.Run()
		missing, anomalous := net.CheckDelivery(seq)
		if len(missing) != 0 || len(anomalous) != 0 {
			t.Logf("seed %d src %d: missing=%v anomalous=%v", seed, src, missing, anomalous)
			return false
		}
	}
	return true
}

// Property: failover always restores exactly-once delivery. The quick
// run draws its seeds from a fixed internal/rng stream so every CI run
// explores the same 30 cases — the old time-seeded config made failures
// unreproducible (scmplint noclock exists for exactly this reason).
func TestPropertyFailoverDelivery(t *testing.T) {
	f := func(seed int64) bool { return failoverDelivers(t, seed) }
	cfg := &quick.Config{MaxCount: 30, Rand: scmprng.New(0x5C3F)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Regression: a time-seeded quick run once drew this seed and failed.
// The old tree's teardown prunes (unversioned) raced the failover TREE
// distribution: a relay already installed on the new tree honoured a
// stale pre-failover PRUNE from a child the new tree routes a member
// through, pruned itself, and stranded that member. handlePrune now
// rejects prunes from an older failover epoch.
func TestFailoverDeliveryRegressionSeed(t *testing.T) {
	if !failoverDelivers(t, 2679709531305543172) {
		t.Fatal("seed 2679709531305543172: delivery broken after failover")
	}
}
