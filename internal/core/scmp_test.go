package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

const grp packet.GroupID = 1

// railGraph: node 0 is the m-router; a fast expensive rail 0-1-2 and a
// slow cheap rail 0-3-2, plus a stub 2-4 (same shape as the mtree tests).
func railGraph() *topology.Graph {
	g := topology.New(5)
	g.MustAddEdge(0, 1, 1, 10)
	g.MustAddEdge(1, 2, 1, 10)
	g.MustAddEdge(0, 3, 6, 1)
	g.MustAddEdge(3, 2, 6, 1)
	g.MustAddEdge(2, 4, 1, 1)
	return g
}

func newNet(g *topology.Graph, cfg Config) (*netsim.Network, *SCMP) {
	s := New(cfg)
	n := netsim.New(g, s)
	return n, s
}

func TestJoinInstallsBranch(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	// Tightest constraint: 4 connects over the fast rail 0-1-2-4.
	for _, tc := range []struct {
		node     topology.NodeID
		upstream topology.NodeID
		down     []topology.NodeID
	}{
		{1, 0, []topology.NodeID{2}},
		{2, 1, []topology.NodeID{4}},
		{4, 2, nil},
	} {
		e, ok := s.Entry(tc.node, grp)
		if !ok || !e.OnTree {
			t.Fatalf("node %d missing entry", tc.node)
		}
		if e.Upstream != tc.upstream {
			t.Fatalf("node %d upstream = %d, want %d", tc.node, e.Upstream, tc.upstream)
		}
		if len(e.Downstream) != len(tc.down) {
			t.Fatalf("node %d downstream = %v, want %v", tc.node, e.Downstream, tc.down)
		}
	}
	e4, _ := s.Entry(4, grp)
	if !e4.HasLocal {
		t.Fatal("member DR should have the local interface marked")
	}
	// JOIN went up (3 links), BRANCH came down (3 links).
	if got := n.Metrics.Crossings(packet.Join); got != 3 {
		t.Fatalf("JOIN crossings = %d, want 3", got)
	}
	if got := n.Metrics.Crossings(packet.Branch); got != 3 {
		t.Fatalf("BRANCH crossings = %d, want 3", got)
	}
	if got := n.Metrics.Crossings(packet.Tree); got != 0 {
		t.Fatalf("TREE crossings = %d, want 0 for a pure graft", got)
	}
}

func TestDataFromMRouter(t *testing.T) {
	n, _ := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.HostJoin(2, grp)
	n.Run()
	seq := n.SendData(0, grp, 1000)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	// Max delay: to member 4 over the fast rail = 1+1+1.
	if n.Metrics.MaxEndToEndDelay() != 3 {
		t.Fatalf("max e2e = %g, want 3", n.Metrics.MaxEndToEndDelay())
	}
}

func TestDataFromOnTreeMemberGoesBothWays(t *testing.T) {
	n, _ := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.HostJoin(1, grp)
	n.Run()
	// Member 4 sends: packet must climb to 1 (upstream direction) and
	// that's it — bi-directional shared tree, no m-router detour.
	seq := n.SendData(4, grp, 1000)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	if n.Metrics.Crossings(packet.EncapData) != 0 {
		t.Fatal("on-tree member must not encapsulate")
	}
	// Delay 4->1: 1+1 = 2.
	if n.Metrics.MaxEndToEndDelay() != 2 {
		t.Fatalf("max e2e = %g, want 2", n.Metrics.MaxEndToEndDelay())
	}
}

func TestOffTreeSourceEncapsulates(t *testing.T) {
	n, _ := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	// Node 3 is off the tree (tightest constraint uses the fast rail).
	seq := n.SendData(3, grp, 1000)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	if n.Metrics.Crossings(packet.EncapData) == 0 {
		t.Fatal("off-tree source should unicast-encapsulate to the m-router")
	}
}

func TestMRouterIsItsOwnDR(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(0, grp)
	n.HostJoin(4, grp)
	n.Run()
	e0, ok := s.Entry(0, grp)
	if !ok || !e0.HasLocal || !e0.OnTree {
		t.Fatalf("m-router entry = %+v", e0)
	}
	seq := n.SendData(4, grp, 500)
	n.Run()
	missing, _ := n.CheckDelivery(seq)
	if len(missing) != 0 {
		t.Fatalf("m-router missed data: %v", missing)
	}
}

func TestLeavePrunesHopByHop(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	n.HostLeave(4, grp)
	n.Run()
	for _, v := range []topology.NodeID{1, 2, 4} {
		if e, ok := s.Entry(v, grp); ok && e.OnTree {
			t.Fatalf("node %d still on tree after leave", v)
		}
	}
	if s.GroupTree(grp).Size() != 1 {
		t.Fatal("m-router tree not pruned")
	}
	if got := n.Metrics.Crossings(packet.Prune); got != 3 {
		t.Fatalf("PRUNE crossings = %d, want 3 (hop-by-hop)", got)
	}
}

func TestLeaveInteriorMemberKeepsBranch(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.HostJoin(2, grp)
	n.Run()
	n.HostLeave(2, grp) // 2 still relays for 4
	n.Run()
	e2, ok := s.Entry(2, grp)
	if !ok || !e2.OnTree {
		t.Fatal("relay 2 must stay on tree")
	}
	if e2.HasLocal {
		t.Fatal("local flag not cleared")
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

func TestRejoinAfterLeave(t *testing.T) {
	n, _ := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	n.HostLeave(4, grp)
	n.Run()
	n.HostJoin(4, grp)
	n.Run()
	seq := n.SendData(0, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

func TestLooseConstraintBuildsCheapTree(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0, Kappa: math.Inf(1)})
	n.HostJoin(2, grp)
	n.Run()
	tr := s.GroupTree(grp)
	if tr.Cost() != 2 {
		t.Fatalf("tree cost = %g, want 2 (cheap rail)", tr.Cost())
	}
	e3, ok := s.Entry(3, grp)
	if !ok || !e3.OnTree {
		t.Fatal("relay 3 not installed")
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	if missing, _ := n.CheckDelivery(seq); len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestTrafficRecordedAtMRouter(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	// Off-tree source: the packet is encapsulated to the m-router and
	// charged on decapsulation.
	n.SendData(3, grp, 1000)
	n.Run()
	pkts, bytes := s.TrafficRecord(grp)
	if pkts != 1 || bytes != 1000 {
		t.Fatalf("traffic = %d pkts / %d bytes, want 1/1000", pkts, bytes)
	}
	// On-tree member sending toward the m-router: charged when the data
	// transits the root.
	n.SendData(4, grp, 500)
	n.Run()
	pkts, bytes = s.TrafficRecord(grp)
	if pkts != 2 || bytes != 1500 {
		t.Fatalf("traffic = %d pkts / %d bytes, want 2/1500", pkts, bytes)
	}
	if p, b := s.TrafficRecord(99); p != 0 || b != 0 {
		t.Fatal("phantom traffic for unknown group")
	}
}

func TestDelayBudgetConfig(t *testing.T) {
	// Budget 5 forces the fast rail (delay 2, cost 20); without it,
	// kappa=inf would pick the cheap rail (delay 12, cost 2).
	n, s := newNet(railGraph(), Config{MRouter: 0, Kappa: math.Inf(1), DelayBudget: 5})
	n.HostJoin(2, grp)
	n.Run()
	tr := s.GroupTree(grp)
	if tr.Cost() != 20 || tr.Delay(2) != 2 {
		t.Fatalf("cost=%g ml(2)=%g, want the fast rail (20, 2)", tr.Cost(), tr.Delay(2))
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	if missing, _ := n.CheckDelivery(seq); len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestRestructureDistributesTreeAndFlushes(t *testing.T) {
	// Graph engineered so a later join reroutes an earlier member:
	// 0-1 (delay 1, cost 9), 1-2 (1,9): fast rail to 2
	// 0-3 (2,1), 3-2 (2,1): cheap rail to 2
	// 3-4 (10,1): stub member far away, joins second.
	g := topology.New(5)
	g.MustAddEdge(0, 1, 1, 9)
	g.MustAddEdge(1, 2, 1, 9)
	g.MustAddEdge(0, 3, 2, 1)
	g.MustAddEdge(3, 2, 2, 1)
	g.MustAddEdge(3, 4, 10, 1)
	n, s := newNet(g, Config{MRouter: 0})
	// Join 2 first: bound 0 -> P_sl = 0-1-2 (delay 2).
	n.HostJoin(2, grp)
	n.Run()
	// Join 4: ul(4) = 12 > 2, so P_sl(0,4) = 0-3-4 joins; bound 12. No
	// restructure yet. Then leave & rejoin 2: now the cheap graft via 3
	// is feasible (ml = 2+2 = 4 <= 12) and cheaper, re-homing 2.
	n.HostJoin(4, grp)
	n.Run()
	n.HostLeave(2, grp)
	n.Run()
	n.HostJoin(2, grp)
	n.Run()
	e2, ok := s.Entry(2, grp)
	if !ok || !e2.OnTree || e2.Upstream != 3 {
		t.Fatalf("entry(2) = %+v, want upstream 3", e2)
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

func TestDisableBranchAblation(t *testing.T) {
	n, _ := newNet(railGraph(), Config{MRouter: 0, DisableBranch: true})
	n.HostJoin(4, grp)
	n.Run()
	if got := n.Metrics.Crossings(packet.Branch); got != 0 {
		t.Fatalf("BRANCH crossings = %d with DisableBranch", got)
	}
	if got := n.Metrics.Crossings(packet.Tree); got == 0 {
		t.Fatal("TREE distribution missing")
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	if missing, _ := n.CheckDelivery(seq); len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestForeignDataDropped(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp)
	n.Run()
	// Inject a data packet arriving at on-tree node 2 from off-tree
	// neighbor 3: F-check must drop it.
	before := n.Metrics.Delivered()
	n.SendLink(3, 2, &netsim.Packet{Kind: packet.Data, Group: grp, Src: 3, Size: 10, Created: n.Now()})
	n.Run()
	if n.Metrics.Delivered() != before {
		t.Fatal("data from outside F delivered")
	}
	if n.Metrics.Dropped() == 0 {
		t.Fatal("drop not recorded")
	}
	_ = s
}

func TestOnTreeJoinSendsJoinAndBranchRefresh(t *testing.T) {
	// A DR already on the tree gaining its first local member sends a
	// JOIN (accounting); the tree does not change, but the m-router
	// refreshes the member's path with an idempotent BRANCH so that a
	// DR flushed by a concurrent restructure re-homes.
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, grp) // puts 2 on the tree as a relay
	n.Run()
	joinBefore := n.Metrics.Crossings(packet.Join)
	treeBefore := n.Metrics.Crossings(packet.Tree)
	e2before, _ := s.Entry(2, grp)
	n.HostJoin(2, grp)
	n.Run()
	if got := n.Metrics.Crossings(packet.Join); got <= joinBefore {
		t.Fatal("accounting JOIN not sent")
	}
	if got := n.Metrics.Crossings(packet.Tree); got != treeBefore {
		t.Fatal("whole-tree redistribution for an on-tree join")
	}
	if !s.GroupTree(grp).IsMember(2) {
		t.Fatal("m-router membership not updated")
	}
	e2after, _ := s.Entry(2, grp)
	if e2after.Upstream != e2before.Upstream || len(e2after.Downstream) != len(e2before.Downstream) {
		t.Fatalf("BRANCH refresh changed the entry: %+v -> %+v", e2before, e2after)
	}
}

func TestMultipleGroupsIsolated(t *testing.T) {
	n, s := newNet(railGraph(), Config{MRouter: 0})
	n.HostJoin(4, 1)
	n.HostJoin(1, 2)
	n.Run()
	seq := n.SendData(0, 2, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	if s.GroupTree(1).IsMember(1) || s.GroupTree(2).IsMember(4) {
		t.Fatal("group state leaked across groups")
	}
}

// Property: random churn with quiescence between operations always
// converges to a state where data from random sources reaches every
// member exactly once.
func TestPropertySCMPChurnDelivery(t *testing.T) {
	f := func(seed int64, kappaSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(20, 4), rng)
		if err != nil {
			return false
		}
		kappa := []float64{1, 1.5, math.Inf(1)}[int(kappaSel)%3]
		n, s := newNet(g, Config{MRouter: 0, Kappa: kappa})
		members := map[topology.NodeID]bool{}
		for op := 0; op < 25; op++ {
			v := topology.NodeID(rng.Intn(g.N()))
			if members[v] {
				n.HostLeave(v, grp)
				delete(members, v)
			} else {
				n.HostJoin(v, grp)
				members[v] = true
			}
			n.Run() // quiesce
			if err := s.GroupTree(grp).Validate(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
			if len(members) == 0 {
				continue
			}
			src := topology.NodeID(rng.Intn(g.N()))
			seq := n.SendData(src, grp, 500)
			n.Run()
			missing, anomalous := n.CheckDelivery(seq)
			if len(missing) != 0 || len(anomalous) != 0 {
				t.Logf("seed %d op %d src %d: missing=%v anomalous=%v members=%v",
					seed, op, src, missing, anomalous, members)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the network-side entries mirror the m-router's tree once
// quiescent: every on-tree tree node has a matching entry whose upstream
// equals the tree parent.
func TestPropertyEntriesMirrorTree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(18, 4), rng)
		if err != nil {
			return false
		}
		n, s := newNet(g, Config{MRouter: 0})
		for _, v := range rng.Perm(g.N())[:8] {
			if v == 0 {
				continue
			}
			n.HostJoin(topology.NodeID(v), grp)
			n.Run()
		}
		tr := s.GroupTree(grp)
		for _, v := range tr.Nodes() {
			if v == 0 {
				continue
			}
			e, ok := s.Entry(v, grp)
			if !ok || !e.OnTree {
				return false
			}
			p, _ := tr.Parent(v)
			if e.Upstream != p {
				t.Logf("seed %d: node %d upstream %d, tree parent %d", seed, v, e.Upstream, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSCMPJoinLeaveCycle(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := topology.Random(topology.DefaultRandom(50, 4), rng)
	if err != nil {
		b.Fatal(err)
	}
	n, _ := newNet(g, Config{MRouter: 0})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := topology.NodeID(1 + i%(g.N()-1))
		n.HostJoin(v, grp)
		n.Run()
		n.HostLeave(v, grp)
		n.Run()
	}
}
