package core

import (
	"bytes"
	"fmt"
	"testing"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/rng"
	"scmp/internal/topology"
)

// runScripted drives one SCMP domain through a seeded random
// join/leave/data script and returns (a) the full link-crossing trace
// and (b) the self-routing encoding of every group's final tree — the
// exact bytes a TREE packet would carry. Everything observable flows
// through these two artefacts, so two identically-seeded runs must
// produce identical bytes.
func runScripted(t *testing.T, seed int64) []byte {
	t.Helper()
	r := rng.New(seed)
	g, err := topology.Random(topology.DefaultRandom(30, 4), rng.Split(r))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{MRouter: 0, Kappa: 1.5})
	net := netsim.New(g, s)

	var log bytes.Buffer
	net.Trace = func(from, to topology.NodeID, pkt *netsim.Packet) {
		fmt.Fprintf(&log, "%v %d->%d kind=%d g=%d src=%d ver=%d size=%d payload=%x\n",
			net.Sched.Now(), from, to, pkt.Kind, pkt.Group, pkt.Src, pkt.Version, pkt.Size, pkt.Payload)
	}

	const groups = 3
	joined := make(map[packet.GroupID][]topology.NodeID)
	for step := 0; step < 40; step++ {
		gid := packet.GroupID(1 + r.Intn(groups))
		switch {
		case len(joined[gid]) == 0 || r.Intn(3) > 0:
			node := topology.NodeID(1 + r.Intn(29))
			net.HostJoin(node, gid)
			joined[gid] = append(joined[gid], node)
		case r.Intn(2) == 0:
			last := joined[gid][len(joined[gid])-1]
			net.HostLeave(last, gid)
			joined[gid] = joined[gid][:len(joined[gid])-1]
		default:
			src := topology.NodeID(r.Intn(30))
			net.SendData(src, gid, 500)
		}
		net.Run()
	}

	for gid := packet.GroupID(1); gid <= groups; gid++ {
		gs := s.groups[gid]
		if gs == nil {
			fmt.Fprintf(&log, "group %d: no state\n", gid)
			continue
		}
		tree := gs.dcdm.Tree()
		fmt.Fprintf(&log, "group %d ver=%d tree=%x\n",
			gid, gs.version, packet.EncodeSubtree(packet.BuildSubtree(tree, tree.Root())))
	}
	return log.Bytes()
}

// TestRunsAreByteIdentical is the determinism regression test behind
// the maporder fixes: protocol-visible iteration now goes through
// sorted keys, so two runs from the same seed must agree byte for byte
// — every link crossing in order, and every final tree encoding. Before
// the fixes, Go's randomised map iteration order made Flush fan-out,
// data forwarding and failover rebuild order differ run to run.
func TestRunsAreByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := runScripted(t, seed)
		b := runScripted(t, seed)
		if !bytes.Equal(a, b) {
			line := 1
			for i := 0; i < len(a) && i < len(b); i++ {
				if a[i] != b[i] {
					break
				}
				if a[i] == '\n' {
					line++
				}
			}
			t.Fatalf("seed %d: two identically-seeded runs diverge at trace line %d", seed, line)
		}
	}
}
