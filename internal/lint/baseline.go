package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The suppression baseline is the reviewed debt ledger for the analyzer
// suite: CI fails on any finding not covered here, so accepting a
// finding is an explicit, justified, checked-in act rather than a
// silently growing ignore list. Entries match on (analyzer, file,
// message) — deliberately not line numbers, so unrelated edits above a
// suppressed finding do not invalidate the baseline — and carry a
// count, so a second instance of an already-suppressed message still
// fails the build.

// BaselineEntry suppresses up to Count findings with an exact
// (analyzer, file, message) signature. Justification is the reviewer's
// reason the finding is accepted; WriteBaseline preserves it across
// regeneration and `make lint` refuses baselines with empty ones.
type BaselineEntry struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"` // module-relative, slash-separated
	Message       string `json:"message"`
	Count         int    `json:"count"`
	Justification string `json:"justification"`
}

// Baseline is a set of suppression entries, stored as indented JSON so
// diffs review line-by-line.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error (new checkouts lint strictly by default).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// Unjustified returns the entries with an empty Justification — the
// driver rejects such baselines so every suppression states its reason.
func (b *Baseline) Unjustified() []BaselineEntry {
	var out []BaselineEntry
	for _, e := range b.Entries {
		if e.Justification == "" {
			out = append(out, e)
		}
	}
	return out
}

type baselineKey struct {
	analyzer, file, message string
}

// Filter splits diags into the findings not covered by the baseline and
// the baseline entries (or portions of their counts) that matched
// nothing — stale suppressions the driver surfaces so the ledger cannot
// rot. moduleDir relativizes diagnostic filenames to baseline form.
func (b *Baseline) Filter(diags []Diagnostic, moduleDir string) (unsuppressed []Diagnostic, stale []BaselineEntry) {
	budget := make(map[baselineKey]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, moduleRel(moduleDir, d.Pos.Filename), d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		unsuppressed = append(unsuppressed, d)
	}
	for _, e := range b.Entries {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if budget[k] > 0 {
			left := e.Count
			if budget[k] < left {
				left = budget[k]
			}
			budget[k] -= left
			s := e
			s.Count = left
			stale = append(stale, s)
		}
	}
	return unsuppressed, stale
}

// NewBaseline builds a baseline covering exactly the given findings,
// carrying justifications over from prev for signatures it already
// knew. New signatures get an empty justification, which the strict
// driver rejects — forcing the author to write one.
func NewBaseline(diags []Diagnostic, moduleDir string, prev *Baseline) *Baseline {
	just := make(map[baselineKey]string)
	if prev != nil {
		for _, e := range prev.Entries {
			if e.Justification != "" {
				just[baselineKey{e.Analyzer, e.File, e.Message}] = e.Justification
			}
		}
	}
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		counts[baselineKey{d.Analyzer, moduleRel(moduleDir, d.Pos.Filename), d.Message}]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
	out := &Baseline{}
	for _, k := range keys {
		out.Entries = append(out.Entries, BaselineEntry{
			Analyzer:      k.analyzer,
			File:          k.file,
			Message:       k.message,
			Count:         counts[k],
			Justification: just[k],
		})
	}
	return out
}

// Write stores the baseline as indented JSON with a trailing newline.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// moduleRel converts an absolute diagnostic filename to the
// slash-separated module-relative form baselines store.
func moduleRel(moduleDir, filename string) string {
	rel, err := filepath.Rel(moduleDir, filename)
	if err != nil {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
