package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolLife machine-checks the pooled-value lifetimes PR 4–5 introduced.
// Two value classes are tracked through an intra-procedural
// escape/liveness walk:
//
// Pooled packets — results of Network.getPacket calls, *Packet
// parameters (including sink/trace callback literals), and *Packet
// locals type-asserted out of a SinkEvent payload. The simulator
// recycles the in-flight copy once the handler returns, so a tracked
// packet must not outlive its frame: storing it into a field, slice
// element, map, package-level variable or composite literal, sending it
// on a channel, appending it anywhere, or capturing it in a closure is
// reported, as is any use sequenced after the putPacket call that
// releases it. Field reads/writes on the packet and passing it down the
// call stack are fine — the contract is about retention, not access.
//
// des.Event handles — results of Scheduler.At/After. The slot behind a
// handle is recycled when the event fires, so after any call that can
// dispatch events (Step, Run, RunUntil on a des.Scheduler or
// netsim.Network) the only safe methods are the generation-checked
// Cancel and Cancelled; other uses (e.At(), field reads) are reported
// unless an intervening e.Cancelled() check or reassignment of the
// handle sits between the advancing call and the use. Storing a handle
// is deliberately allowed — parking timers in fields and cancelling
// them later is the control plane's documented pattern, made safe by
// the generation counter.
//
// Sequencing uses the ancestor-block rule (see dataflow.go): an event
// only poisons uses it dominates in source order, so a release on an
// early-return branch never flags the fall-through path. Loops,
// gotos, derived pointers (q := pkt.Payload) and cross-call flows are
// documented false negatives (DESIGN.md §11).
var PoolLife = &Analyzer{
	Name: "poollife",
	Doc:  "tracks pool-obtained packets and des.Event handles; flags retention past release and stale-handle use",
	Run:  runPoolLife,
}

const (
	trackPacket = iota
	trackEvent
)

// poolTracked is one tracked variable within one function.
type poolTracked struct {
	kind int
	rep  *types.Var // alias-group representative (the original source var)
}

func runPoolLife(p *Pass) {
	for _, fi := range packageFuncs(p) {
		name := fi.decl.Name.Name
		if name == "getPacket" || name == "putPacket" {
			continue // the pool implementation itself stores packets by design
		}
		checkPoolLifeFunc(p, fi.decl)
	}
}

func checkPoolLifeFunc(p *Pass, fn *ast.FuncDecl) {
	tracked := collectTracked(p, fn)
	if len(tracked) == 0 {
		return
	}

	// Event positions per alias group: releases (putPacket), scheduler
	// advances, reassignments, and Cancelled guards.
	releases := make(map[*types.Var][]token.Pos)
	var advances []token.Pos
	assigns := make(map[*types.Var][]token.Pos)
	guards := make(map[*types.Var][]token.Pos)

	group := func(v *types.Var) (*types.Var, int, bool) {
		t, ok := tracked[v]
		if !ok {
			return nil, 0, false
		}
		return t.rep, t.kind, true
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Event positions are recorded just inside the call's closing
			// paren: ordered after every argument, but still inside the
			// call's enclosing case clause / block for ancestry purposes.
			if calleeName(n) == "putPacket" {
				for _, arg := range n.Args {
					if v := objOf(p.Info, arg); v != nil {
						if rep, kind, ok := group(v); ok && kind == trackPacket {
							releases[rep] = append(releases[rep], n.End()-1)
						}
					}
				}
			}
			if isAdvancingCall(p, n) {
				advances = append(advances, n.End()-1)
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Cancelled" {
				if v := objOf(p.Info, sel.X); v != nil {
					if rep, kind, ok := group(v); ok && kind == trackEvent {
						guards[rep] = append(guards[rep], n.End())
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := objOf(p.Info, lhs); v != nil {
					if rep, _, ok := group(v); ok {
						assigns[rep] = append(assigns[rep], n.End())
					}
				}
			}
		}
		return true
	})

	checkPoolEscapes(p, fn, tracked)

	// Liveness: a use is poisoned by the nearest dominating event unless
	// a reassignment (either kind) or a Cancelled guard (event handles)
	// lies between.
	walk(fn.Body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		v, _ := p.Info.Uses[id].(*types.Var)
		if v == nil {
			return
		}
		rep, kind, ok := group(v)
		if !ok || isAssignTarget(stack, id) {
			return
		}
		if lit := innermostFuncLit(stack); lit != nil && !declaredWithin(v, lit) {
			return // captures are reported once, by the escape walk
		}
		switch kind {
		case trackPacket:
			for _, rel := range releases[rep] {
				if sequencedAfter(fn.Body, rel, id.Pos()) && !anyBetween(assigns[rep], rel, id.Pos()) {
					p.Reportf(id.Pos(), "use of pooled packet %s after putPacket released it", id.Name)
					return
				}
			}
		case trackEvent:
			if isGenCheckedUse(stack, id) {
				return // Cancel/Cancelled validate the generation themselves
			}
			for _, adv := range advances {
				if sequencedAfter(fn.Body, adv, id.Pos()) &&
					!anyBetween(assigns[rep], adv, id.Pos()) &&
					!anyBetween(guards[rep], adv, id.Pos()) {
					p.Reportf(id.Pos(), "use of des.Event handle %s after the scheduler may have recycled its slot; check Cancelled() first or use Cancel", id.Name)
					return
				}
			}
		}
	})
}

// collectTracked gathers the function's tracked variables: pooled-packet
// sources, event-handle sources, and their plain-identifier aliases
// (q := pkt), mapped to a shared group representative.
func collectTracked(p *Pass, fn *ast.FuncDecl) map[*types.Var]poolTracked {
	tracked := make(map[*types.Var]poolTracked)

	// *Packet parameters of the function itself and of every function
	// literal in its body (sink, trace and scheduler callbacks receive
	// pooled copies valid only for the call).
	trackParams := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				v, _ := p.Info.Defs[name].(*types.Var)
				if v != nil && isPooledPacketType(v.Type()) {
					tracked[v] = poolTracked{kind: trackPacket, rep: v}
				}
			}
		}
	}
	trackParams(fn.Type)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			trackParams(lit.Type)
		}
		return true
	})

	// Locals: pool-call results, event handles, and payload assertions.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			v := objOf(p.Info, as.Lhs[i])
			if v == nil {
				continue
			}
			switch r := ast.Unparen(rhs).(type) {
			case *ast.CallExpr:
				if calleeName(r) == "getPacket" {
					tracked[v] = poolTracked{kind: trackPacket, rep: v}
				} else if namedTypeIs(p.TypeOf(r), "des", "Event") {
					tracked[v] = poolTracked{kind: trackEvent, rep: v}
				}
			case *ast.TypeAssertExpr:
				if isPooledPacketType(p.TypeOf(r)) {
					tracked[v] = poolTracked{kind: trackPacket, rep: v}
				}
			}
		}
		return true
	})

	// Alias closure: a plain `q := pkt` joins pkt's group.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				src := objOf(p.Info, rhs)
				dst := objOf(p.Info, as.Lhs[i])
				if src == nil || dst == nil || dst == src {
					continue
				}
				t, ok := tracked[src]
				if !ok {
					continue
				}
				if _, known := tracked[dst]; !known {
					tracked[dst] = poolTracked{kind: t.kind, rep: t.rep}
					changed = true
				}
			}
			return true
		})
	}
	return tracked
}

// checkPoolEscapes reports stores that would retain a pooled packet past
// its release: fields, slice/map elements, globals, composite literals,
// appends, channel sends, and closure captures.
func checkPoolEscapes(p *Pass, fn *ast.FuncDecl, tracked map[*types.Var]poolTracked) {
	isTrackedPacket := func(e ast.Expr) (*types.Var, bool) {
		v := objOf(p.Info, e)
		if v == nil {
			return nil, false
		}
		t, ok := tracked[v]
		if !ok || t.kind != trackPacket {
			return nil, false
		}
		return v, true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				v, ok := isTrackedPacket(rhs)
				if !ok {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.Ident:
					if lv := objOf(p.Info, lhs); isPackageLevel(lv) {
						p.Reportf(n.Pos(), "pooled packet %s stored in package-level %s; it is recycled after the handler returns", v.Name(), lhs.Name)
					}
					// plain local: alias, handled by group tracking
				case *ast.SelectorExpr:
					p.Reportf(n.Pos(), "pooled packet %s stored in field %s; it is recycled after the handler returns", v.Name(), exprString(lhs))
				case *ast.IndexExpr:
					p.Reportf(n.Pos(), "pooled packet %s stored in element %s; it is recycled after the handler returns", v.Name(), exprString(lhs))
				case *ast.StarExpr:
					p.Reportf(n.Pos(), "pooled packet %s stored through pointer %s; it is recycled after the handler returns", v.Name(), exprString(lhs))
				}
			}
		case *ast.CallExpr:
			if isBuiltinCall(p.Info, n, "append") {
				for _, arg := range n.Args[1:] {
					if v, ok := isTrackedPacket(arg); ok {
						p.Reportf(arg.Pos(), "pooled packet %s appended to a slice; it is recycled after the handler returns", v.Name())
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if v, ok := isTrackedPacket(e); ok {
					p.Reportf(e.Pos(), "pooled packet %s stored in a composite literal; it is recycled after the handler returns", v.Name())
				}
			}
		case *ast.SendStmt:
			if v, ok := isTrackedPacket(n.Value); ok {
				p.Reportf(n.Pos(), "pooled packet %s sent on a channel; it is recycled after the handler returns", v.Name())
			}
		case *ast.FuncLit:
			for _, v := range capturedVars(p.Info, n) {
				if t, ok := tracked[v]; ok && t.kind == trackPacket {
					p.Reportf(n.Pos(), "pooled packet %s captured by closure; it is recycled after the handler returns", v.Name())
				}
			}
		}
		return true
	})
}

// isAdvancingCall reports calls that can dispatch (and therefore
// recycle) queued events: Step/Run/RunUntil on a des.Scheduler or
// netsim.Network. Wrappers in other packages are a documented false
// negative.
func isAdvancingCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Step", "Run", "RunUntil":
	default:
		return false
	}
	t := p.TypeOf(sel.X)
	return namedTypeIs(t, "des", "Scheduler") || namedTypeIs(t, "netsim", "Network")
}

// isGenCheckedUse reports whether id is the receiver of a Cancel or
// Cancelled call — the two generation-checked Event methods that are
// safe on a stale handle.
func isGenCheckedUse(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 3 {
		return false
	}
	sel, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || sel.X != id {
		return false
	}
	if sel.Sel.Name != "Cancel" && sel.Sel.Name != "Cancelled" {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && call.Fun == sel
}

// isAssignTarget reports whether id is being written (LHS of an
// assignment) rather than read.
func isAssignTarget(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 2 {
		return false
	}
	as, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == ast.Expr(id) {
			return true
		}
	}
	return false
}

// innermostFuncLit returns the deepest function literal on the stack,
// nil when the node is not inside one.
func innermostFuncLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}

// anyBetween reports whether any position in ps lies strictly between
// lo and hi.
func anyBetween(ps []token.Pos, lo, hi token.Pos) bool {
	for _, p := range ps {
		if p > lo && p < hi {
			return true
		}
	}
	return false
}

// isPooledPacketType matches *Packet where Packet is netsim's pooled
// packet type (suffix match so analyzer tests can declare their own
// netsim-shaped package).
func isPooledPacketType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	return namedTypeIs(t, "netsim", "Packet")
}
