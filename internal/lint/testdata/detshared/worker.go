// Seeded shared-state writes inside runner.Map workers for the
// detshared analyzer, against the real runner package. Workers must
// communicate through their return value; the one legal write shape is
// a captured-slice element indexed by a job-derived expression (the
// chunk pattern).
package worker

import "scmp/internal/runner"

var global int

func sharedWrites(rows []float64, opts runner.Options) []int {
	shared := 0
	seen := map[int]bool{}
	return runner.Map(opts, len(rows), func(i int) int {
		global++       // want "worker writes package-level global"
		shared += i    // want "worker writes captured shared"
		seen[i] = true // want "worker writes captured seen"
		local := i * 2 // worker-local state is private: clean
		local++
		return local
	})
}

// The chunk pattern: each job owns rows [lo, hi), so element writes
// indexed by a job-derived bound are disjoint across workers.
func chunkPattern(out []float64, opts runner.Options) {
	const chunk = 4
	jobs := (len(out) + chunk - 1) / chunk
	runner.Map(opts, jobs, func(ci int) struct{} {
		lo := ci * chunk
		hi := lo + chunk
		if hi > len(out) {
			hi = len(out)
		}
		for i := lo; i < hi; i++ {
			out[i] = float64(i) // clean: index derives from the job number
		}
		return struct{}{}
	})
}

// A captured-slice write whose index does NOT derive from the job
// number can collide across workers.
func fixedIndexWrite(out []float64, opts runner.Options) {
	runner.Map(opts, 8, func(i int) int {
		out[0] = float64(i) // want "worker writes captured out"
		return i
	})
}

// Map writes are racy regardless of key derivation.
func mapIndexWrite(m map[int]int, opts runner.Options) {
	runner.Map(opts, 8, func(i int) int {
		m[i] = i // want "worker writes captured m"
		return i
	})
}

// Transitive package-level writes are caught through exported facts.
func transitiveWrite(opts runner.Options) []int {
	return runner.Map(opts, 4, func(i int) int {
		bump() // want "which writes package-level state"
		return i
	})
}

func bump() { global++ }

// Outside a worker the same writes are legal (other analyzers own
// ordinary code).
func sequentialClean(rows []float64) {
	global++
	for i := range rows {
		rows[i] = 1
	}
}
