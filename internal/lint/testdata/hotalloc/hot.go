// Seeded hot-path allocations for the hotalloc analyzer: every
// allocation-introducing construct inside a //scmplint:hotpath function
// (or a function it statically calls) is flagged, with the reviewed
// exemptions — panic arguments, amortized appends, ignore comments —
// staying clean.
package hot

import "fmt"

type pair struct{ a, b int }

type ring struct {
	scratch []int
	buf     []pair
}

//scmplint:hotpath
func (r *ring) dispatch(n int, name string, sink func(any)) {
	p := &pair{n, n} // want "&composite literal allocates"
	_ = p
	s := []int{n} // want "slice literal allocates"
	_ = s
	m := make(map[int]int) // want "make allocates"
	_ = m
	q := new(pair) // want "new allocates"
	_ = q
	fn := func() {} // want "closure literal allocates"
	fn()
	var local []int
	local = append(local, n) // want "append to function-local local"
	_ = local
	r.scratch = append(r.scratch, n) // amortized growth into a field: clean
	msg := name + "!"                // want "string concatenation allocates"
	_ = msg
	bs := []byte(name) // want "conversion allocates"
	_ = bs
	sink(n)        // want "boxing int into interface argument allocates"
	fmt.Println(n) // want "call to fmt.Println allocates"
	r.helper(n)
	value := pair{n, n} // value struct literal: escape analysis out of scope, clean
	_ = value
	sink(&value) // pointer-shaped into interface: clean
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic argument: clean
	}
}

// helper carries no annotation: it is hot transitively, so its body is
// checked directly.
func (r *ring) helper(n int) {
	r.buf = append(r.buf, pair{n, n}) // amortized: clean
	tmp := []pair{{n, n}}             // want "slice literal allocates"
	_ = tmp
}

// caller-owned scratch through a parameter is the other amortized shape.
//
//scmplint:hotpath
func fill(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i) // clean: append into a parameter
	}
	return dst
}

// A reviewed lazy one-time init stays out of both the report and the
// allocation summary.
//
//scmplint:hotpath
func (r *ring) lazyInit(n int) {
	if r.scratch == nil {
		r.scratch = make([]int, 0, n) //scmplint:ignore hotalloc
	}
}

// cold is never reached from a hot function: nothing here is flagged.
func cold(n int) []int {
	return append([]int{}, n)
}
