//golden:path scmp/internal/lint/testdata/fake/netsim

// Seeded pooled-packet lifetime violations for the poollife analyzer.
// The package path ends in "netsim", so the local Packet type stands in
// for the simulator's pooled packet.
package netsim

type Packet struct {
	Kind int
	From int
}

type Network struct {
	pool []*Packet
	last *Packet
	all  []*Packet
	byID map[int]*Packet
}

// getPacket and putPacket are the pool implementation itself; poollife
// exempts them by name.
func (n *Network) getPacket() *Packet {
	if k := len(n.pool); k > 0 {
		p := n.pool[k-1]
		n.pool = n.pool[:k-1]
		return p
	}
	return &Packet{}
}

func (n *Network) putPacket(p *Packet) { n.pool = append(n.pool, p) }

func (n *Network) useAfterRelease() {
	pkt := n.getPacket()
	n.putPacket(pkt)
	_ = pkt.Kind // want "use of pooled packet pkt after putPacket released it"
}

func (n *Network) aliasUseAfterRelease() {
	pkt := n.getPacket()
	q := pkt
	n.putPacket(q)
	_ = pkt.From // want "use of pooled packet pkt after putPacket released it"
}

// A release on an early-return branch does not poison the fall-through
// path (ancestor-block sequencing).
func (n *Network) branchReleaseClean(drop bool) {
	pkt := n.getPacket()
	if drop {
		n.putPacket(pkt)
		return
	}
	pkt.From = 1
	n.putPacket(pkt)
}

// Reassignment between release and use starts a fresh lifetime.
func (n *Network) reassignedClean() {
	pkt := n.getPacket()
	n.putPacket(pkt)
	pkt = n.getPacket()
	pkt.Kind = 2
	n.putPacket(pkt)
}

func (n *Network) storeInField(pkt *Packet) {
	n.last = pkt // want "pooled packet pkt stored in field n.last"
}

func (n *Network) storeInGlobal(pkt *Packet) {
	lastSeen = pkt // want "pooled packet pkt stored in package-level lastSeen"
}

var lastSeen *Packet

func (n *Network) appendToSlice(pkt *Packet) {
	n.all = append(n.all, pkt) // want "pooled packet pkt appended to a slice"
}

func (n *Network) storeInMap(pkt *Packet) {
	n.byID[pkt.From] = pkt // want "pooled packet pkt stored in element"
}

func (n *Network) storeInLiteral(pkt *Packet) {
	batch := []*Packet{pkt} // want "pooled packet pkt stored in a composite literal"
	_ = batch
}

func (n *Network) sendOnChannel(pkt *Packet, ch chan *Packet) {
	ch <- pkt // want "pooled packet pkt sent on a channel"
}

var deferred func()

func (n *Network) capturedByClosure(pkt *Packet) {
	deferred = func() { _ = pkt.Kind } // want "pooled packet pkt captured by closure"
}

// A sink-style type assertion is tracked like a pool result.
func (n *Network) assertedPayload(p any) {
	pkt := p.(*Packet)
	n.putPacket(pkt)
	_ = pkt.Kind // want "use of pooled packet pkt after putPacket released it"
}

// Passing the packet down the call stack and mutating its fields before
// release is the normal, legal handler shape.
func (n *Network) handlerClean(pkt *Packet) {
	pkt.From = 3
	n.inspect(pkt)
	n.putPacket(pkt)
}

func (n *Network) inspect(pkt *Packet) { _ = pkt.Kind }
