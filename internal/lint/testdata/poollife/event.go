// Stale des.Event handle cases for the poollife analyzer, against the
// real scheduler package: any Step/Run/RunUntil may recycle the slot
// behind a handle, after which only the generation-checked Cancel and
// Cancelled are safe.
package event

import "scmp/internal/des"

func staleAfterRun(s *des.Scheduler) des.Time {
	e := s.At(1, func() {})
	s.Run()
	return e.At() // want "use of des.Event handle e after the scheduler may have recycled its slot"
}

func staleAfterStep(s *des.Scheduler) des.Time {
	e := s.After(1, func() {})
	s.Step()
	return e.At() // want "use of des.Event handle e after the scheduler may have recycled its slot"
}

// Cancel and Cancelled validate the slot generation themselves.
func genCheckedClean(s *des.Scheduler) bool {
	e := s.At(1, func() {})
	s.Run()
	e.Cancel()
	return e.Cancelled()
}

// A Cancelled guard between the advance and the use re-validates the
// handle.
func guardedClean(s *des.Scheduler) des.Time {
	e := s.At(1, func() {})
	s.Run()
	if !e.Cancelled() {
		return e.At()
	}
	return 0
}

// Reassigning the handle after the advance starts a fresh lifetime.
func reassignedClean(s *des.Scheduler) des.Time {
	e := s.At(1, func() {})
	s.Run()
	e = s.At(2, func() {})
	return e.At()
}

// Uses before the advance are untouched.
func useBeforeAdvanceClean(s *des.Scheduler) des.Time {
	e := s.At(1, func() {})
	at := e.At()
	s.Run()
	return at
}
