package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // parsed non-test files of the default build
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of the enclosing module without
// golang.org/x/tools: module packages are parsed from source and
// standard-library imports are resolved through go/importer's source
// importer, so no compiled export data or network access is needed.
//
// With IncludeTests set (before the first Load), _test.go files join the
// analysis: in-package test files are merged into their package's build
// (as in a `go test` compile, which also guarantees the merge cannot
// introduce import cycles), and external test packages (package foo_test)
// are loaded as separate packages whose import path carries a " [tests]"
// suffix.
type Loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	exts       map[string]*Package // external test package by base import path
	loading    map[string]bool

	// IncludeTests adds _test.go files to subsequent Loads.
	IncludeTests bool
}

// NewLoader builds a loader for the module containing dir (dir or any
// parent must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePathOf(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleDir:  root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		exts:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	m := moduleLineRE.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("lint: no module line in %s", gomod)
	}
	return string(m[1]), nil
}

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleDir returns the module's root directory (where go.mod lives).
func (l *Loader) ModuleDir() string { return l.moduleDir }

// Load resolves patterns ("./...", "./internal/core", or full import
// paths) into loaded packages, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.walkDirs(l.moduleDir)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				paths[l.importPathFor(d)] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dirs, err := l.walkDirs(filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimPrefix(base, "./"))))
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				paths[l.importPathFor(d)] = true
			}
		case strings.HasPrefix(pat, "./") || pat == ".":
			paths[l.importPathFor(filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))] = true
		default:
			paths[pat] = true
		}
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	out := make([]*Package, 0, len(sorted))
	for _, p := range sorted {
		pkg, err := l.loadPath(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil { // directories without buildable Go files are skipped
			out = append(out, pkg)
		}
	}
	// External test packages of the requested paths ride along after the
	// base packages, in the same sorted order.
	for _, p := range sorted {
		if ext := l.exts[p]; ext != nil {
			out = append(out, ext)
		}
	}
	return out, nil
}

// walkDirs lists every directory under root holding at least one
// non-test .go file, skipping hidden and testdata directories.
func (l *Loader) walkDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if goFileName(e.Name()) || (l.IncludeTests && testGoFileName(e.Name())) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func goFileName(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

func testGoFileName(name string) bool {
	return strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	return filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath+"/")))
}

// Import implements types.Importer: module packages load from source,
// everything else goes to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no buildable Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads and type-checks one module package (cached). It returns
// (nil, nil) for directories with no buildable files.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, extFiles []*ast.File
	for _, e := range ents {
		name := e.Name()
		isTest := l.IncludeTests && testGoFileName(name)
		if e.IsDir() || (!goFileName(name) && !isTest) {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !buildIncluded(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		switch {
		case !isTest:
			files = append(files, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extFiles = append(extFiles, f)
		default:
			files = append(files, f) // in-package test file, merged as in a test build
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	if len(extFiles) > 0 {
		// The external test package imports the base package just cached
		// above, so this check cannot recurse back into loadPath.
		ext, err := l.check(path+" [tests]", extFiles)
		if err != nil {
			return nil, err
		}
		ext.Dir = dir
		l.exts[path] = ext
	}
	return pkg, nil
}

// CheckSource type-checks synthetic sources as a package with the given
// import path (imports resolve against the real module and the standard
// library). Analyzer tests use it to exercise findings without touching
// the repository's own files. The result is not cached.
func (l *Loader) CheckSource(path string, sources map[string]string) (*Package, error) {
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, sources[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(path, files)
}

func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: l.dirFor(path), Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// buildIncluded evaluates a file's //go:build constraint (if any)
// against the default build: current GOOS/GOARCH, gc, and release tags.
// Custom tags like "invariants" evaluate false, so tag-gated hook files
// stay out of the default lint build exactly as they stay out of the
// default compile.
func buildIncluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true
			}
			return expr.Eval(defaultTag)
		}
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
	}
	return true
}

var releaseTagRE = regexp.MustCompile(`^go1\.\d+$`)

func defaultTag(tag string) bool {
	return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
		tag == "unix" && (runtime.GOOS == "linux" || runtime.GOOS == "darwin") ||
		releaseTagRE.MatchString(tag)
}
