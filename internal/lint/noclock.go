package lint

import (
	"go/ast"
	"go/types"
)

// NoClock keeps wall-clock time and ambient randomness out of the
// simulation. Simulated time comes from the DES scheduler and all
// randomness flows from explicit seeds through scmp/internal/rng, so a
// run is a pure function of its inputs. Three rules over non-test code:
//
//  1. In the deterministic core packages (core, mtree, des, packet,
//     fabric, session, netsim) any wall-clock read — time.Now, Since,
//     Until, After, Tick, Sleep — is an error.
//  2. Everywhere, calling the globally-seeded top-level math/rand
//     functions (rand.Intn, rand.Float64, rand.Perm, rand.Seed, …) is an
//     error: their shared default source is seeded nondeterministically.
//  3. Everywhere except scmp/internal/rng itself, constructing
//     generators directly (rand.New, rand.NewSource) is an error: use
//     rng.New(seed) so every stream traces back to an injected seed.
//     Relaxed in _test.go files (-tests mode): a locally seeded
//     rand.New(rand.NewSource(k)) is the standard test-fixture idiom
//     and is just as deterministic as rng.New.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc:  "forbids wall-clock reads and ambient (non-injected) randomness",
	Run:  runNoClock,
}

// noClockStrict lists the packages where wall-clock reads are forbidden
// outright: everything on the simulation's deterministic hot path.
var noClockStrict = map[string]bool{
	"scmp/internal/core":    true,
	"scmp/internal/mtree":   true,
	"scmp/internal/des":     true,
	"scmp/internal/packet":  true,
	"scmp/internal/fabric":  true,
	"scmp/internal/session": true,
	"scmp/internal/netsim":  true,
}

var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "Sleep": true,
}

// rngPackage is the only package allowed to construct math/rand
// generators directly.
const rngPackage = "scmp/internal/rng"

func runNoClock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			expr, isExpr := n.(ast.Expr)
			if !isExpr {
				return true
			}
			path, name, sel, ok := selectorPkg(p.Info, expr)
			if !ok {
				return true
			}
			switch path {
			case "time":
				if noClockStrict[p.Path] && wallClockFuncs[name] {
					p.Reportf(sel.Pos(),
						"wall-clock time.%s in deterministic package %s; use the DES scheduler's simulated clock",
						name, p.Path)
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); !isFunc {
					return true // rand.Rand, rand.Source, … — type references are fine
				}
				switch name {
				case "New", "NewSource":
					if p.Path != rngPackage && !p.InTestFile(sel.Pos()) {
						p.Reportf(sel.Pos(),
							"direct rand.%s; construct seeded generators via scmp/internal/rng (rng.New(seed))",
							name)
					}
				case "NewZipf":
					// Takes an explicit *rand.Rand: deterministic, allowed.
				default:
					p.Reportf(sel.Pos(),
						"global rand.%s uses the ambient nondeterministically-seeded source; draw from an injected *rand.Rand",
						name)
				}
			}
			return true
		})
	}
}
