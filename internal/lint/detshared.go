package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetShared guards the determinism contract of the parallel runner:
// a runner.Map worker must communicate only through its return value
// (runner.Map merges results in canonical index order), never by
// mutating state shared across workers — shared writes make the merged
// output depend on goroutine scheduling, which is exactly the
// divergence the m-router's bit-identical tree computation cannot
// absorb. Mutexes do not excuse a write: serialised-but-reordered
// updates are still nondeterministic.
//
// Within each worker function literal passed to runner.Map, the
// analyzer reports writes to package-level variables and to variables
// captured from the enclosing scope. Two reviewed idioms stay legal:
// writes into disjoint elements of a captured slice when the index
// derives from the worker's job number (the chunk pattern — each job
// owns rows [lo, hi)), and method calls on captured state (atomics,
// runner.Cache) — calls are outside this analyzer's write model and
// are vetted by review.
//
// Package-level writes are also tracked transitively: the Facts phase
// summarises which functions (directly or through static callees)
// assign package-level variables, and a worker calling such a function
// is reported at the call site. Dynamic dispatch and std-lib internals
// are documented false negatives (DESIGN.md §11).
var DetShared = &Analyzer{
	Name:  "detshared",
	Doc:   "flags runner.Map worker closures that write shared or captured state instead of returning values",
	Facts: runDetSharedFacts,
	Run:   runDetShared,
}

// detsharedFact marks a function that writes package-level state,
// directly or transitively.
type detsharedFact struct{}

func runDetSharedFacts(p *Pass) {
	funcs := packageFuncs(p)
	writes := make(map[*types.Func]bool, len(funcs))
	callees := make(map[*types.Func][]*types.Func, len(funcs))
	for _, fi := range funcs {
		if fi.obj == nil {
			continue
		}
		found := false
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if v := writtenVar(p.Info, n); v != nil && isPackageLevel(v) {
				if !p.ignoredAt(n.Pos(), p.Fset.Position(n.Pos()).Line) {
					found = true
				}
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := staticCallee(p.Info, call); callee != nil {
					callees[fi.obj] = append(callees[fi.obj], callee)
				}
			}
			return true
		})
		writes[fi.obj] = found
	}
	for changed := true; changed; {
		changed = false
		for obj, w := range writes {
			if w {
				continue
			}
			for _, callee := range callees[obj] {
				if callee.Pkg() == p.Pkg {
					if writes[callee] {
						writes[obj] = true
						changed = true
						break
					}
					continue
				}
				if _, ok := p.FactOf(callee).(detsharedFact); ok {
					writes[obj] = true
					changed = true
					break
				}
			}
		}
	}
	for obj, w := range writes {
		if w {
			p.ExportFact(obj, detsharedFact{})
		}
	}
}

func runDetShared(p *Pass) {
	for _, fi := range packageFuncs(p) {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRunnerMapCall(p, call) || len(call.Args) == 0 {
				return true
			}
			if job, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
				checkWorker(p, job)
			}
			return true
		})
	}
}

// isRunnerMapCall matches runner.Map(...) (by package path suffix, so
// analyzer tests can declare their own runner-shaped package).
func isRunnerMapCall(p *Pass, call *ast.CallExpr) bool {
	path, name, _, ok := selectorPkg(p.Info, call.Fun)
	return ok && name == "Map" && strings.HasSuffix(path, "runner")
}

// checkWorker analyzes one worker function literal.
func checkWorker(p *Pass, job *ast.FuncLit) {
	derived := jobDerivedVars(p, job)
	ast.Inspect(job.Body, func(n ast.Node) bool {
		if v := writtenVar(p.Info, n); v != nil {
			checkWorkerWrite(p, job, n, v, derived)
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := staticCallee(p.Info, call); callee != nil {
				if _, ok := p.FactOf(callee).(detsharedFact); ok {
					p.Reportf(call.Pos(), "worker calls %s, which writes package-level state; workers must communicate through their return value", callee.FullName())
				}
			}
		}
		return true
	})
}

// checkWorkerWrite classifies one write statement inside a worker.
func checkWorkerWrite(p *Pass, job *ast.FuncLit, n ast.Node, v *types.Var, derived map[*types.Var]bool) {
	if isPackageLevel(v) {
		p.Reportf(n.Pos(), "worker writes package-level %s; workers must communicate through their return value", v.Name())
		return
	}
	if declaredWithin(v, job) {
		return // worker-local state is private to the job
	}
	// Write through captured state. The one legal shape is a slice
	// element (or element field) whose index is derived from the job
	// number — each job owning a disjoint chunk.
	lhs := writeTarget(n)
	if idx := sliceIndexOf(p, lhs); idx != nil && !isMapIndex(p, lhs) && indexIsJobDerived(p, idx, derived) {
		return
	}
	p.Reportf(n.Pos(), "worker writes captured %s; workers must communicate through their return value (or index a disjoint chunk by job number)", v.Name())
}

// writtenVar returns the root variable a statement writes, nil when n
// is not a write. Covered: assignments (including op-assign and
// multi-assign roots) and ++/--.
func writtenVar(info *types.Info, n ast.Node) *types.Var {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if v := rootObj(info, lhs); v != nil {
				return v
			}
		}
	case *ast.IncDecStmt:
		return rootObj(info, n.X)
	}
	return nil
}

// writeTarget returns the first meaningful LHS expression of a write.
func writeTarget(n ast.Node) ast.Expr {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			return lhs
		}
	case *ast.IncDecStmt:
		return n.X
	}
	return nil
}

// sliceIndexOf returns the index expression when e (possibly wrapped in
// selectors) bottoms out in an index expression, nil otherwise.
func sliceIndexOf(p *Pass, e ast.Expr) ast.Expr {
	for e != nil {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			return x.Index
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
	return nil
}

// isMapIndex reports whether the innermost index expression of e
// indexes a map — map writes are racy regardless of key derivation.
func isMapIndex(p *Pass, e ast.Expr) bool {
	for e != nil {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			if t := p.TypeOf(x.X); t != nil {
				_, isMap := t.Underlying().(*types.Map)
				return isMap
			}
			return false
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
	return false
}

// jobDerivedVars computes the worker locals whose values derive from
// the job-number parameter: the parameter itself, then a fixpoint over
// assignments whose right-hand side mentions a derived variable (the
// lo/hi chunk-bound pattern).
func jobDerivedVars(p *Pass, job *ast.FuncLit) map[*types.Var]bool {
	derived := make(map[*types.Var]bool)
	if job.Type.Params != nil {
		for _, f := range job.Type.Params.List {
			for _, name := range f.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					derived[v] = true
				}
			}
		}
	}
	mentionsDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok && derived[v] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(job.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				v := objOf(p.Info, as.Lhs[i])
				if v == nil || derived[v] || !declaredWithin(v, job) {
					continue
				}
				if mentionsDerived(rhs) {
					derived[v] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// indexIsJobDerived reports whether idx mentions at least one
// job-derived variable (and is therefore disjoint across jobs under
// the chunk convention).
func indexIsJobDerived(p *Pass, idx ast.Expr, derived map[*types.Var]bool) bool {
	found := false
	ast.Inspect(idx, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := p.Info.Uses[id].(*types.Var); ok && derived[v] {
				found = true
			}
		}
		return !found
	})
	return found
}
