package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DESDiscipline enforces the discrete-event simulator's mutation
// discipline: protocol event handlers (the netsim.Protocol methods
// HandlePacket, HostJoin, HostLeave, SendData) must not mutate the
// topology graph synchronously. A handler runs in the middle of event
// dispatch; rewiring the graph there changes link lookups for packets
// already in flight in an order-dependent way. Topology changes must be
// scheduled as their own events (Scheduler.At/After closures are
// therefore exempt): the scheduler serialises them against every other
// event deterministically.
var DESDiscipline = &Analyzer{
	Name: "desdiscipline",
	Doc:  "forbids synchronous topology mutation inside DES event handlers",
	Run:  runDESDiscipline,
}

// handlerNames are the netsim.Protocol entry points (and the Network
// methods shadowing them) that run inside event dispatch.
var handlerNames = map[string]bool{
	"HandlePacket": true, "HostJoin": true, "HostLeave": true, "SendData": true,
}

// graphMutators are the topology.Graph methods that rewire the graph.
var graphMutators = map[string]bool{
	"AddEdge": true, "MustAddEdge": true,
}

func runDESDiscipline(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !handlerNames[fn.Name.Name] || fn.Body == nil {
				continue
			}
			checkHandlerBody(p, fn)
		}
	}
}

func checkHandlerBody(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSchedulerCall(p, call) {
			// Closures handed to Scheduler.At/After run as their own
			// events later — the sanctioned way to mutate topology.
			for _, arg := range call.Args {
				if _, isLit := arg.(*ast.FuncLit); isLit {
					return false
				}
			}
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !graphMutators[sel.Sel.Name] {
			return true
		}
		if recvIsType(p, sel, "scmp/internal/topology", "Graph") {
			p.Reportf(call.Pos(),
				"event handler %s mutates the topology synchronously via %s; schedule the mutation as its own event (Scheduler.At/After)",
				fn.Name.Name, sel.Sel.Name)
		}
		return true
	})
}

// isSchedulerCall reports whether call is des.Scheduler.At or .After.
func isSchedulerCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "At" && sel.Sel.Name != "After") {
		return false
	}
	return recvIsType(p, sel, "scmp/internal/des", "Scheduler")
}

// recvIsType reports whether sel is a method selection whose receiver's
// (possibly pointed-to) named type is pkgPath.typeName.
func recvIsType(p *Pass, sel *ast.SelectorExpr, pkgPath, typeName string) bool {
	selection, ok := p.Info.Selections[sel]
	var recv types.Type
	if ok {
		recv = selection.Recv()
	} else if t := p.TypeOf(sel.X); t != nil {
		recv = t
	} else {
		return false
	}
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), pkgPath)
}
