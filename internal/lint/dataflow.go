package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared intra-procedural dataflow layer the PR 4–5
// contract analyzers (poollife, hotalloc, detshared) are built on:
// function inventories, //scmplint:<name> directive parsing, static
// call resolution, and a position-ordered liveness walk that answers
// "is this use of a tracked value sequenced after that invalidating
// call?" without a full CFG.
//
// The sequencing model is deliberately simple: event A is treated as
// preceding event B only when A's statement appears earlier in source
// AND A's enclosing block is an ancestor of B (so an invalidation
// inside one if-branch never poisons uses on the sibling branch).
// That makes the analyzers false-negative-prone around loops and
// gotos — a use *before* a release inside a loop body re-executes
// after it on the next iteration and is not caught — but keeps them
// free of false positives on straight-line code, which is what the
// hot paths are. The limits are documented in DESIGN.md §11.

// funcInfo is one function declaration in a package.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func // nil only when type info is incomplete
}

// packageFuncs inventories every function declaration with a body.
func packageFuncs(p *Pass) []funcInfo {
	var out []funcInfo
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fn.Name].(*types.Func)
			out = append(out, funcInfo{decl: fn, obj: obj})
		}
	}
	return out
}

// hasDirective reports whether fn carries a "//scmplint:<name>"
// directive in its doc comment group.
func hasDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	want := "scmplint:" + name
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// staticCallee resolves the *types.Func a call statically dispatches
// to: a plain function, a method on a concrete receiver, or a
// qualified identifier. Interface method calls and calls through
// function values return nil — dynamic dispatch is outside the
// analyzers' reach (a documented false-negative class).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					// Methods found on an interface type dispatch
					// dynamically; only concrete receivers resolve.
					if _, onIface := sel.Recv().Underlying().(*types.Interface); !onIface {
						return fn
					}
				}
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // qualified identifier pkg.Fn
		}
	}
	return nil
}

// calleeName returns the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isBuiltinCall reports whether call invokes the named builtin
// (append, panic, make, new, ...).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// objOf resolves an expression to the variable object it denotes, nil
// when e is not a plain (possibly parenthesised) identifier.
func objOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	return v
}

// rootObj resolves the base variable of a selector/index/star chain
// (x.f[i].g -> x), nil when the chain does not root in an identifier.
func rootObj(info *types.Info, e ast.Expr) *types.Var {
	root := rootIdent(e)
	if root == nil {
		return nil
	}
	v, _ := info.ObjectOf(root).(*types.Var)
	return v
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// isPackageLevel reports whether v is a package-level variable.
func isPackageLevel(v *types.Var) bool {
	return v != nil && v.Parent() == v.Pkg().Scope()
}

// sequencedAfter reports whether a use at usePos is definitely executed
// after an event at eventPos, both inside fn: the event appears
// earlier in source and every block enclosing the event also encloses
// the use (so the event dominates the use on the shared straight-line
// path). Events buried in deeper branches than the use do not count.
func sequencedAfter(fn ast.Node, eventPos, usePos token.Pos) bool {
	if usePos <= eventPos {
		return false
	}
	eventBlocks := enclosingBlocks(fn, eventPos)
	useBlocks := enclosingBlocks(fn, usePos)
	inUse := make(map[ast.Node]bool, len(useBlocks))
	for _, b := range useBlocks {
		inUse[b] = true
	}
	for _, b := range eventBlocks {
		if !inUse[b] {
			return false
		}
	}
	return true
}

// enclosingBlocks returns every block-like node under fn spanning pos,
// from the outside in. Case and comm clauses count as blocks: a release
// in one switch case must not poison uses in a sibling case.
func enclosingBlocks(fn ast.Node, pos token.Pos) []ast.Node {
	var out []ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() <= pos {
			return false
		}
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			out = append(out, n)
		}
		return true
	})
	return out
}

// usesOf collects every identifier use of v inside root, excluding the
// declaring identifier itself.
func usesOf(info *types.Info, root ast.Node, v *types.Var) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && info.Uses[id] == v {
			out = append(out, id)
		}
		return true
	})
	return out
}

// insidePanicArg reports whether the innermost enclosing call on the
// stack chain leading to n is a panic(...) — allocation there is the
// process dying, not the hot path.
func insidePanicArg(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok && isBuiltinCall(info, call, "panic") {
			return true
		}
	}
	return false
}

// capturedVars returns the variables a function literal references that
// are declared outside it (its closure environment). Package-level
// variables are excluded — referencing them does not enlarge the
// closure context.
func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if declaredWithin(v, lit) || isPackageLevel(v) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// namedTypeIs reports whether t (after stripping pointers) is the named
// type typeName declared in a package whose import path ends with
// pkgSuffix.
func namedTypeIs(t types.Type, pkgSuffix, typeName string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}
