// Package lint is the repository's static-analysis framework: a
// self-contained mirror of the golang.org/x/tools/go/analysis API shape
// built only on the standard library (the build environment is offline,
// so x/tools cannot be vendored). It loads and type-checks the module's
// packages, runs a suite of repo-specific analyzers over them, and
// reports diagnostics. cmd/scmplint is the command-line driver.
//
// The analyzers guard the properties the whole reproduction depends on.
// The determinism suite (maporder, noclock, desdiscipline, floatcmp)
// protects the m-router's centrally computed trees from run-to-run
// divergence; the dataflow suite (poollife, hotalloc, detshared)
// machine-checks the manually managed performance and concurrency
// invariants the zero-allocation data plane and the parallel runner
// rely on. See the individual analyzer docs and DESIGN.md §11.
//
// Framework shape: every analyzer has a Run pass that inspects one
// type-checked package and reports diagnostics. An analyzer may also
// have a Facts pass, which runs first over every package in import
// dependency order and exports per-object facts (e.g. "this function
// allocates"); Run passes — which execute in parallel across packages —
// read those facts back to reason across package boundaries without
// whole-program analysis.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named check. Run inspects a fully type-checked package
// through the Pass and reports findings via Pass.Reportf. Facts, when
// non-nil, runs before any Run pass, over all packages in import
// dependency order, and may export per-object facts via Pass.ExportFact
// for Run passes (of the same analyzer) to read back with Pass.FactOf —
// the cross-package channel of the dataflow analyzers.
type Analyzer struct {
	Name  string // short lower-case identifier, used in output and ignore comments
	Doc   string // one-line description
	Run   func(*Pass)
	Facts func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string      // package import path ("scmp/internal/core")
	Files    []*ast.File // files of the analyzed build (test files included in -tests mode)
	Pkg      *types.Package
	Info     *types.Info

	diags   *[]Diagnostic
	mu      *sync.Mutex // guards diags when Run passes execute in parallel
	facts   *factStore
	ignores map[*ast.File]map[int][]string // line -> analyzer names ignored
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an ignore comment
// ("//scmplint:ignore <name>" on the same line or the line above)
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignoredAt(pos, position.Line) {
		return
	}
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	}
	if p.mu != nil {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	*p.diags = append(*p.diags, d)
}

// TypeOf returns the type of e, nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// InTestFile reports whether pos lies in a _test.go file (only possible
// when the loader ran with IncludeTests). Analyzers use it to relax
// rules that only bind production code — e.g. noclock permits locally
// seeded rand construction in tests.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ExportFact records a fact about obj for this analyzer. Only meaningful
// from a Facts pass; Run passes (any package) read it back with FactOf.
func (p *Pass) ExportFact(obj types.Object, fact any) {
	if p.facts == nil || obj == nil {
		return
	}
	p.facts.put(p.Analyzer.Name, obj, fact)
}

// FactOf returns the fact this analyzer exported for obj, nil when none.
func (p *Pass) FactOf(obj types.Object) any {
	if p.facts == nil || obj == nil {
		return nil
	}
	return p.facts.get(p.Analyzer.Name, obj)
}

// factStore holds every analyzer's exported facts for one Check run.
// Writes happen only during the serial Facts phase; reads during the
// parallel Run phase are lock-free on an immutable map by then, but the
// mutex keeps the store safe under any future phase interleaving.
type factStore struct {
	mu sync.Mutex
	m  map[string]map[types.Object]any
}

func (s *factStore) put(analyzer string, obj types.Object, fact any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]map[types.Object]any)
	}
	byObj := s.m[analyzer]
	if byObj == nil {
		byObj = make(map[types.Object]any)
		s.m[analyzer] = byObj
	}
	byObj[obj] = fact
}

func (s *factStore) get(analyzer string, obj types.Object) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[analyzer][obj]
}

// ignoredAt reports whether an ignore comment covers line (or the line
// above it) for this analyzer.
func (p *Pass) ignoredAt(pos token.Pos, line int) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	if p.ignores == nil {
		p.ignores = make(map[*ast.File]map[int][]string)
	}
	lines, ok := p.ignores[f]
	if !ok {
		lines = parseIgnores(p.Fset, f)
		p.ignores[f] = lines
	}
	for _, l := range []int{line, line - 1} {
		for _, name := range lines[l] {
			if name == "all" || name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// parseIgnores extracts "scmplint:ignore a b c" directives per line.
func parseIgnores(fset *token.FileSet, f *ast.File) map[int][]string {
	out := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "scmplint:ignore") {
				continue
			}
			names := strings.Fields(strings.TrimPrefix(text, "scmplint:ignore"))
			if len(names) == 0 {
				names = []string{"all"}
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], names...)
		}
	}
	return out
}

// Analyzers returns the full suite in reporting order: the PR 1
// determinism analyzers followed by the dataflow analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, NoClock, DESDiscipline, FloatCmp, PoolLife, HotAlloc, DetShared}
}

// Check runs the given analyzers over every package and returns all
// findings ordered by file position. Facts passes run first, serially,
// over packages in import dependency order; Run passes then fan out in
// parallel across packages (each (package, analyzer) pair is an
// independent read-only walk over shared type information).
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var mu sync.Mutex
	facts := &factStore{}

	ordered := dependencyOrder(pkgs)
	for _, a := range analyzers {
		if a.Facts == nil {
			continue
		}
		for _, pkg := range ordered {
			a.Facts(newPass(a, pkg, &diags, &mu, facts))
		}
	}

	type unit struct {
		pkg *Package
		a   *Analyzer
	}
	var units []unit
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run != nil {
				units = append(units, unit{pkg, a})
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(units) {
		workers = len(units)
	}
	if workers <= 1 {
		for _, u := range units {
			u.a.Run(newPass(u.a, u.pkg, &diags, &mu, facts))
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan unit)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range next {
					u.a.Run(newPass(u.a, u.pkg, &diags, &mu, facts))
				}
			}()
		}
		for _, u := range units {
			next <- u
		}
		close(next)
		wg.Wait()
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

func newPass(a *Analyzer, pkg *Package, diags *[]Diagnostic, mu *sync.Mutex, facts *factStore) *Pass {
	return &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    diags,
		mu:       mu,
		facts:    facts,
	}
}

// dependencyOrder returns pkgs sorted so that every package appears
// after all of its imports that are themselves in pkgs — the order the
// Facts phase needs so callee summaries exist before callers read them.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return // cycle (impossible in valid Go) or already emitted
		}
		state[p.Path] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// walk traverses root keeping an ancestor stack (root first). visit runs
// before descending into n; the stack includes n itself.
func walk(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(n, stack)
		return true
	})
}

// pkgNameOf returns the imported package an identifier refers to, nil
// when id is not a package name.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// selectorPkg returns the import path and selected name when e is a
// qualified identifier like time.Now; ok is false otherwise.
func selectorPkg(info *types.Info, e ast.Expr) (path, name string, sel *ast.SelectorExpr, ok bool) {
	s, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	id, isID := s.X.(*ast.Ident)
	if !isID {
		return "", "", nil, false
	}
	pn := pkgNameOf(info, id)
	if pn == nil {
		return "", "", nil, false
	}
	return pn.Imported().Path(), s.Sel.Name, s, true
}
