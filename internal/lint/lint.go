// Package lint is the repository's static-analysis framework: a
// self-contained mirror of the golang.org/x/tools/go/analysis API shape
// built only on the standard library (the build environment is offline,
// so x/tools cannot be vendored). It loads and type-checks the module's
// packages, runs a suite of repo-specific analyzers over them, and
// reports diagnostics. cmd/scmplint is the command-line driver.
//
// The analyzers guard the properties the whole reproduction depends on:
// the m-router computes every tree centrally and ships it out in
// self-routing packets, so a single nondeterministic map iteration or an
// unchecked wall-clock read silently produces different trees (and
// different Fig. 7-9 curves) run to run. See the individual analyzer
// docs: maporder, noclock, desdiscipline, floatcmp.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a fully type-checked package
// through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string // short lower-case identifier, used in output and ignore comments
	Doc  string // one-line description
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string      // package import path ("scmp/internal/core")
	Files    []*ast.File // non-test files of the default build
	Pkg      *types.Package
	Info     *types.Info

	diags   *[]Diagnostic
	ignores map[*ast.File]map[int][]string // line -> analyzer names ignored
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an ignore comment
// ("//scmplint:ignore <name>" on the same line or the line above)
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignoredAt(pos, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ignoredAt reports whether an ignore comment covers line (or the line
// above it) for this analyzer.
func (p *Pass) ignoredAt(pos token.Pos, line int) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	if p.ignores == nil {
		p.ignores = make(map[*ast.File]map[int][]string)
	}
	lines, ok := p.ignores[f]
	if !ok {
		lines = parseIgnores(p.Fset, f)
		p.ignores[f] = lines
	}
	for _, l := range []int{line, line - 1} {
		for _, name := range lines[l] {
			if name == "all" || name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// parseIgnores extracts "scmplint:ignore a b c" directives per line.
func parseIgnores(fset *token.FileSet, f *ast.File) map[int][]string {
	out := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "scmplint:ignore") {
				continue
			}
			names := strings.Fields(strings.TrimPrefix(text, "scmplint:ignore"))
			if len(names) == 0 {
				names = []string{"all"}
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], names...)
		}
	}
	return out
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, NoClock, DESDiscipline, FloatCmp}
}

// Check runs the given analyzers over every package and returns all
// findings ordered by file position.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// walk traverses root keeping an ancestor stack (root first). visit runs
// before descending into n; the stack includes n itself.
func walk(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(n, stack)
		return true
	})
}

// pkgNameOf returns the imported package an identifier refers to, nil
// when id is not a package name.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// selectorPkg returns the import path and selected name when e is a
// qualified identifier like time.Now; ok is false otherwise.
func selectorPkg(info *types.Info, e ast.Expr) (path, name string, sel *ast.SelectorExpr, ok bool) {
	s, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	id, isID := s.X.(*ast.Ident)
	if !isID {
		return "", "", nil, false
	}
	pn := pkgNameOf(info, id)
	if pn == nil {
		return "", "", nil, false
	}
	return pn.Imported().Path(), s.Sel.Name, s, true
}
