package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `for … range` over a map whose body has protocol-visible
// effects in iteration order: sending a packet (any call whose name
// carries a send/schedule-style verb), a channel send, or appending to a
// slice that outlives the loop without a deterministic sort afterwards.
// Go randomises map iteration order per run, so any such loop makes the
// m-router's centrally computed trees — and every downstream figure —
// differ run to run. The fix is to iterate a sorted key slice instead
// (see core's sortedNodes helper).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration with order-dependent protocol effects (sends, escaping appends)",
	Run:  runMapOrder,
}

// orderVerbs are call-name prefixes treated as protocol-visible effects:
// anything that transmits, schedules or hands work onward in iteration
// order. Matched case-insensitively against the final selector name.
var orderVerbs = []string{
	"send", "deliver", "schedule", "forward", "emit", "enqueue",
	"distribute", "broadcast", "publish", "submit", "replicate",
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		walk(f, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.TypeOf(rs.X)) {
				return
			}
			if reason, _ := orderSensitiveEffect(p, rs, enclosingFuncBody(stack)); reason != "" {
				p.Reportf(rs.Pos(), "range over map %s is iteration-order dependent: %s; iterate sorted keys instead",
					exprString(rs.X), reason)
			}
		})
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration on the stack (excluding the last node, the range itself).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// orderSensitiveEffect scans the range body for an effect that observes
// iteration order. It returns a description and position, or "".
func orderSensitiveEffect(p *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) (reason string, pos ast.Node) {
	var found string
	var at ast.Node
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found, at = "the body sends on a channel", n
		case *ast.CallExpr:
			if name := callName(n); hasOrderVerb(name) {
				found, at = "the body calls "+name, n
			}
		case *ast.AssignStmt:
			if target := escapingAppendTarget(p, n, rs); target != nil {
				if !sortedAfter(p, target, rs, funcBody) {
					found, at = "the body appends to "+exprString(target)+" declared outside the loop with no sort afterwards", n
				}
			}
		}
		return true
	})
	if found == "" {
		return "", nil
	}
	return found, at
}

// callName returns the called function or method's bare name.
func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

func hasOrderVerb(name string) bool {
	lower := strings.ToLower(name)
	for _, v := range orderVerbs {
		if strings.HasPrefix(lower, v) {
			return true
		}
	}
	return false
}

// escapingAppendTarget returns the destination expression of an
// `x = append(x, …)`-style assignment whose root variable was declared
// outside the range statement, nil otherwise.
func escapingAppendTarget(p *Pass, as *ast.AssignStmt, rs *ast.RangeStmt) ast.Expr {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return nil
	} else if obj, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin || obj.Name() != "append" {
		return nil
	}
	root := rootIdent(as.Lhs[0])
	if root == nil {
		return nil
	}
	obj := p.Info.ObjectOf(root)
	if obj == nil {
		return as.Lhs[0] // fields of package-level state etc.: assume escaping
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil // loop-local accumulator
	}
	return as.Lhs[0]
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether target is passed to a sort call after the
// range statement within the same function body — the "collect then
// sort" idiom, which is deterministic.
func sortedAfter(p *Pass, target ast.Expr, rs *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	if funcBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		path, name, _, ok := selectorPkg(p.Info, call.Fun)
		if !ok {
			return true
		}
		isSort := path == "sort" && (strings.HasPrefix(name, "Sort") || name == "Slice" ||
			name == "SliceStable" || name == "Ints" || name == "Strings" || name == "Float64s") ||
			path == "slices" && strings.HasPrefix(name, "Sort")
		if isSort && sameExpr(p, call.Args[0], target) {
			sorted = true
		}
		return true
	})
	return sorted
}

// sameExpr reports whether two expressions denote the same variable or
// field chain (by object identity on each step).
func sameExpr(p *Pass, a, b ast.Expr) bool {
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && p.Info.ObjectOf(av) != nil && p.Info.ObjectOf(av) == p.Info.ObjectOf(bv)
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && p.Info.ObjectOf(av.Sel) == p.Info.ObjectOf(bv.Sel) && sameExpr(p, av.X, bv.X)
	}
	return false
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[…]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(…)"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
