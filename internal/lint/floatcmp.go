package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags `==` and `!=` between two non-constant floating-point
// values (including named float types such as des.Time) in the
// deterministic core packages. Delay and cost values are sums of float
// link weights, so equality between two independently computed sums is
// representation-dependent: a different summation order — exactly what a
// future parallel tree computation would introduce — flips the result
// and with it a protocol decision. Comparisons against constants (`x ==
// 0` sentinel checks) are exact and allowed; ordered comparisons are
// allowed; ties must be broken with a `<`/`>` ladder or an explicit
// epsilon. Genuinely intentional exact equality can carry a
// "//scmplint:ignore floatcmp" comment. Test files (-tests mode) are
// exempt: determinism tests assert bit-exact equality of independently
// produced runs on purpose — that equality is the property under test.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between non-constant floating-point delay/cost values",
	Run:  runFloatCmp,
}

// floatCmpStrict mirrors noClockStrict: the packages whose float
// comparisons feed protocol decisions.
var floatCmpStrict = map[string]bool{
	"scmp/internal/core":    true,
	"scmp/internal/mtree":   true,
	"scmp/internal/des":     true,
	"scmp/internal/packet":  true,
	"scmp/internal/fabric":  true,
	"scmp/internal/session": true,
	"scmp/internal/netsim":  true,
}

func runFloatCmp(p *Pass) {
	if !floatCmpStrict[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) && !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			if isConstant(p, be.X) || isConstant(p, be.Y) {
				return true // exact sentinel comparison, e.g. kappa == 0
			}
			if p.InTestFile(be.Pos()) {
				return true // bit-exactness is often the property under test
			}
			p.Reportf(be.Pos(),
				"floating-point %s between computed values (%s); order of summation can flip this — break ties with </> or compare with an epsilon",
				be.Op, p.TypeOf(be.X))
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func isConstant(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
