package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the PR 5 zero-allocation contract on the data-plane
// hot paths. Functions annotated //scmplint:hotpath — and, transitively,
// every function they statically call within the same package — must not
// contain allocation-introducing constructs: composite literals taking
// addresses, slice/map literals, make/new, append into function-local
// slices (growth that pooling should have absorbed), closure literals,
// interface boxing of non-pointer values, string concatenation, or calls
// into allocating standard-library packages (fmt et al).
//
// Cross-package calls are checked through exported facts: the Facts
// phase summarises, for every function in the module, whether it (or
// anything it statically calls, transitively) allocates; a hot function
// calling an allocating non-hot function is reported at the call site.
// Allocations under a //scmplint:ignore hotalloc comment are amortized
// by review (pool growth, one-time lazy init) and excluded from both
// direct reports and summaries, so a reviewed amortized allocation does
// not poison every transitive caller.
//
// Known false negatives (DESIGN.md §11): dynamic dispatch (interface
// methods, function values) is invisible to the summary; value composite
// literals that escape are not flagged (escape analysis is out of
// scope); panic arguments are deliberately exempt — a dying process may
// allocate its message.
var HotAlloc = &Analyzer{
	Name:  "hotalloc",
	Doc:   "flags allocation-introducing constructs in //scmplint:hotpath functions and their callees",
	Facts: runHotAllocFacts,
	Run:   runHotAlloc,
}

// hotallocFact is the per-function summary exported for cross-package
// call-site checks.
type hotallocFact struct {
	hot       bool // in the transitive intra-package closure of a hotpath annotation
	allocates bool // body (or a transitive static callee) allocates, ignores excluded
}

// allocPkgs are standard-library packages whose exported functions
// allocate as a matter of course; calling into them from a hot path is
// reported without needing per-function summaries (the standard library
// is outside the analyzed package set).
var allocPkgs = map[string]bool{
	"bufio": true, "bytes": true, "errors": true, "fmt": true,
	"io": true, "log": true, "os": true, "regexp": true,
	"sort": true, "strconv": true, "strings": true,
}

func runHotAllocFacts(p *Pass) {
	funcs := packageFuncs(p)

	// Seed the hot set from annotations, then close it over intra-package
	// static calls: a hot function's helpers are part of the hot path
	// whether or not they carry their own annotation. An ignore comment on
	// the call severs the edge — that is how the deliberately-allocating
	// reference scheduler stays out of the hot set behind its delegation
	// calls.
	hot := make(map[*types.Func]bool)
	bodies := make(map[*types.Func]*ast.FuncDecl, len(funcs))
	for _, fi := range funcs {
		if fi.obj == nil {
			continue
		}
		bodies[fi.obj] = fi.decl
		if hasDirective(fi.decl, "hotpath") {
			hot[fi.obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj := range hot {
			decl := bodies[obj]
			if decl == nil {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if p.ignoredAt(call.Pos(), p.Fset.Position(call.Pos()).Line) {
					return true
				}
				callee := staticCallee(p.Info, call)
				if callee == nil || callee.Pkg() != p.Pkg || hot[callee] {
					return true
				}
				if _, local := bodies[callee]; local {
					hot[callee] = true
					changed = true
				}
				return true
			})
		}
	}

	// Allocation summaries: direct allocations first (ignore comments
	// excluded — a reviewed amortization is not an allocation for
	// summary purposes), then a fixpoint over static call edges. Callees
	// in already-summarised packages come from the fact store (the Facts
	// phase runs in import dependency order).
	direct := make(map[*types.Func]bool, len(funcs))
	callees := make(map[*types.Func][]*types.Func, len(funcs))
	for _, fi := range funcs {
		if fi.obj == nil {
			continue
		}
		found := false
		forEachHotAllocation(p, fi.decl, func(pos token.Pos, format string, args ...any) {
			found = true
		})
		direct[fi.obj] = found
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.ignoredAt(call.Pos(), p.Fset.Position(call.Pos()).Line) {
				return true
			}
			if callee := staticCallee(p.Info, call); callee != nil {
				callees[fi.obj] = append(callees[fi.obj], callee)
			}
			return true
		})
	}
	allocates := make(map[*types.Func]bool, len(funcs))
	for obj, d := range direct {
		allocates[obj] = d
	}
	for changed := true; changed; {
		changed = false
		for obj := range direct {
			if allocates[obj] {
				continue
			}
			for _, callee := range callees[obj] {
				if callee.Pkg() == p.Pkg {
					if allocates[callee] {
						allocates[obj] = true
						changed = true
						break
					}
					continue
				}
				if f, ok := p.FactOf(callee).(hotallocFact); ok && f.allocates {
					allocates[obj] = true
					changed = true
					break
				}
			}
		}
	}

	for obj := range direct {
		p.ExportFact(obj, hotallocFact{hot: hot[obj], allocates: allocates[obj]})
	}
}

func runHotAlloc(p *Pass) {
	for _, fi := range packageFuncs(p) {
		if fi.obj == nil {
			continue
		}
		f, ok := p.FactOf(fi.obj).(hotallocFact)
		if !ok || !f.hot {
			continue
		}
		forEachHotAllocation(p, fi.decl, p.Reportf)
		checkHotCalls(p, fi.decl)
	}
}

// checkHotCalls reports calls from a hot body to functions whose summary
// says they allocate. Hot callees are skipped — their bodies are checked
// directly — as are calls under an ignore comment.
func checkHotCalls(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(p.Info, call)
		if callee == nil {
			return true
		}
		if f, ok := p.FactOf(callee).(hotallocFact); ok && f.allocates && !f.hot {
			p.Reportf(call.Pos(), "hot path: call to %s may allocate", callee.FullName())
		}
		return true
	})
}

// forEachHotAllocation invokes emit for every allocation-introducing
// construct in fn's body, applying the reviewed exemptions: panic
// arguments, appends into non-local storage, ignore comments, value
// struct literals. The same walk backs both diagnostics (emit =
// Pass.Reportf) and the Facts summary (emit = set a flag).
func forEachHotAllocation(p *Pass, fn *ast.FuncDecl, emit func(pos token.Pos, format string, args ...any)) {
	// Caller-owned storage: the receiver, parameters and named results.
	// (Scope identity can't distinguish these from top-level body locals —
	// go/types puts both in the function scope — so collect the declared
	// objects instead.)
	callerOwned := make(map[types.Object]bool)
	ownFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					callerOwned[obj] = true
				}
			}
		}
	}
	ownFields(fn.Recv)
	ownFields(fn.Type.Params)
	ownFields(fn.Type.Results)
	report := func(pos token.Pos, format string, args ...any) {
		if p.ignoredAt(pos, p.Fset.Position(pos).Line) {
			return
		}
		emit(pos, format, args...)
	}
	var reportedEnd token.Pos // subsume children of an already-reported construct
	walk(fn.Body, func(n ast.Node, stack []ast.Node) {
		if n == nil || n.Pos() < reportedEnd {
			return
		}
		if insidePanicArg(p.Info, stack) {
			return
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "hot path: &composite literal allocates")
					reportedEnd = n.End()
				}
			}
		case *ast.CompositeLit:
			if t := p.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "hot path: %s literal allocates", typeKindName(t))
					reportedEnd = n.End()
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "hot path: closure literal allocates")
			reportedEnd = n.End()
		case *ast.GoStmt:
			report(n.Pos(), "hot path: go statement allocates")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if tv, ok := p.Info.Types[ast.Expr(n)]; !ok || tv.Value == nil {
							report(n.Pos(), "hot path: string concatenation allocates")
						}
					}
				}
			}
		case *ast.CallExpr:
			checkHotCallExpr(p, callerOwned, n, report)
		}
	})
}

func checkHotCallExpr(p *Pass, callerOwned map[types.Object]bool, call *ast.CallExpr, report func(pos token.Pos, format string, args ...any)) {
	switch {
	case isBuiltinCall(p.Info, call, "make"):
		report(call.Pos(), "hot path: make allocates")
		return
	case isBuiltinCall(p.Info, call, "new"):
		report(call.Pos(), "hot path: new allocates")
		return
	case isBuiltinCall(p.Info, call, "append"):
		if len(call.Args) == 0 {
			return
		}
		// Appending into a field, parameter, receiver, named result or
		// package-level slice is the amortized pool-growth / caller-owned
		// scratch idiom; appending into a plain body local is growth the
		// pool should have absorbed.
		dst := ast.Unparen(call.Args[0])
		if _, isSel := dst.(*ast.SelectorExpr); isSel {
			return
		}
		v := objOf(p.Info, dst)
		if v == nil || isPackageLevel(v) || callerOwned[v] {
			return
		}
		report(call.Pos(), "hot path: append to function-local %s may allocate; reuse pooled or caller-owned scratch", v.Name())
		return
	}
	// Conversions: string<->[]byte/[]rune copy; boxing a non-pointer
	// concrete value into an interface.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, p.TypeOf(call.Args[0])
		if to != nil && from != nil {
			if isStringSliceConv(to, from) {
				report(call.Pos(), "hot path: %s conversion allocates", types.TypeString(to, types.RelativeTo(p.Pkg)))
			} else if boxesIntoInterface(to, from) {
				report(call.Pos(), "hot path: conversion boxes %s into interface", types.TypeString(from, types.RelativeTo(p.Pkg)))
			}
		}
		return
	}
	if path, name, _, ok := selectorPkg(p.Info, call.Fun); ok && allocPkgs[path] {
		report(call.Pos(), "hot path: call to %s.%s allocates", path, name)
		return
	}
	// Boxing through interface-typed parameters of the called signature.
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 && !call.Ellipsis.IsValid() {
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		at := p.TypeOf(arg)
		if at != nil && boxesIntoInterface(pt, at) {
			report(arg.Pos(), "hot path: boxing %s into interface argument allocates",
				types.TypeString(at, types.RelativeTo(p.Pkg)))
		}
	}
}

// boxesIntoInterface reports whether assigning a value of type from to
// an interface of type to stores it in a heap-allocated box. Pointer-
// shaped values (pointers, channels, maps, funcs) fit the interface data
// word directly; everything else concrete is copied to the heap.
func boxesIntoInterface(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

// isStringSliceConv reports string([]byte), string([]rune), []byte(s),
// []rune(s) — conversions that copy their operand.
func isStringSliceConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteRuneSlice(from)) || (isByteRuneSlice(to) && isStr(from))
}

// typeKindName names a composite literal's kind for diagnostics.
func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
