package lint

import (
	"strings"
	"testing"
)

// runOn type-checks src as a synthetic package at importPath and
// returns the analyzer's findings as formatted strings.
func runOn(t *testing.T, a *Analyzer, importPath, src string) []string {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.CheckSource(importPath, map[string]string{importPath + "/x.go": src})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range Check([]*Package{pkg}, []*Analyzer{a}) {
		out = append(out, d.String())
	}
	return out
}

func wantFindings(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d finding(s) %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if !strings.Contains(got[i], w) {
			t.Errorf("finding %d = %q, want it to mention %q", i, got[i], w)
		}
	}
}

func TestMapOrderFlagsUnsortedSend(t *testing.T) {
	got := runOn(t, MapOrder, "scmp/internal/core", `
package core
type pkt struct{}
type net struct{}
func (net) SendLink(to int, p pkt) {}
func fanOut(n net, downstream map[int]bool) {
	for d := range downstream {
		n.SendLink(d, pkt{})
	}
}`)
	wantFindings(t, got, "range over map downstream is iteration-order dependent")
}

func TestMapOrderFlagsEscapingAppend(t *testing.T) {
	got := runOn(t, MapOrder, "scmp/internal/core", `
package core
func collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}`)
	wantFindings(t, got, "appends to keys")
}

func TestMapOrderAllowsCollectThenSort(t *testing.T) {
	got := runOn(t, MapOrder, "scmp/internal/core", `
package core
import "sort"
func collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}`)
	wantFindings(t, got)
}

func TestMapOrderAllowsLoopLocalAppendAndPureReads(t *testing.T) {
	got := runOn(t, MapOrder, "scmp/internal/core", `
package core
func sum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		parts := []float64{}
		parts = append(parts, v)
		total += parts[0]
	}
	return total
}`)
	wantFindings(t, got)
}

func TestMapOrderIgnoreComment(t *testing.T) {
	got := runOn(t, MapOrder, "scmp/internal/core", `
package core
func emit(m map[int]bool, send func(int)) {
	//scmplint:ignore maporder — order independent by construction
	for k := range m {
		send(k)
	}
}`)
	wantFindings(t, got)
}

func TestNoClockFlagsWallClockInStrictPackage(t *testing.T) {
	got := runOn(t, NoClock, "scmp/internal/des", `
package des
import "time"
func stamp() int64 { return time.Now().UnixNano() }`)
	wantFindings(t, got, "wall-clock time.Now")
}

func TestNoClockAllowsWallClockOutsideStrictPackages(t *testing.T) {
	got := runOn(t, NoClock, "scmp/cmd/scmpsim", `
package main
import "time"
func stamp() int64 { return time.Now().UnixNano() }`)
	wantFindings(t, got)
}

func TestNoClockFlagsGlobalRandEverywhere(t *testing.T) {
	got := runOn(t, NoClock, "scmp/internal/experiment", `
package experiment
import "math/rand"
func draw() int { return rand.Intn(10) }`)
	wantFindings(t, got, "global rand.Intn")
}

func TestNoClockFlagsDirectConstructionOutsideRng(t *testing.T) {
	got := runOn(t, NoClock, "scmp/internal/experiment", `
package experiment
import "math/rand"
func mk(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }`)
	wantFindings(t, got, "direct rand.New", "direct rand.NewSource")
}

func TestNoClockAllowsTypeReferencesAndRngPackage(t *testing.T) {
	got := runOn(t, NoClock, "scmp/internal/rng", `
package rng
import "math/rand"
func mk(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }`)
	wantFindings(t, got)
}

func TestDESDisciplineFlagsSyncTopologyMutation(t *testing.T) {
	got := runOn(t, DESDiscipline, "scmp/internal/protocols/bad", `
package bad
import (
	"scmp/internal/packet"
	"scmp/internal/topology"
)
type P struct{ g *topology.Graph }
func (p *P) HostJoin(node topology.NodeID, gid packet.GroupID) {
	p.g.MustAddEdge(0, node, 1, 1)
}`)
	wantFindings(t, got, "event handler HostJoin mutates the topology synchronously")
}

func TestDESDisciplineAllowsScheduledMutation(t *testing.T) {
	got := runOn(t, DESDiscipline, "scmp/internal/protocols/good", `
package good
import (
	"scmp/internal/des"
	"scmp/internal/packet"
	"scmp/internal/topology"
)
type P struct {
	g  *topology.Graph
	sc *des.Scheduler
}
func (p *P) HostJoin(node topology.NodeID, gid packet.GroupID) {
	p.sc.After(1, func() { p.g.MustAddEdge(0, node, 1, 1) })
}`)
	wantFindings(t, got)
}

func TestFloatCmpFlagsComputedEquality(t *testing.T) {
	got := runOn(t, FloatCmp, "scmp/internal/mtree", `
package mtree
func tie(a, b float64) bool { return a == b }`)
	wantFindings(t, got, "floating-point ==")
}

func TestFloatCmpAllowsConstantsOrderingAndOtherPackages(t *testing.T) {
	got := runOn(t, FloatCmp, "scmp/internal/mtree", `
package mtree
func sentinel(a float64) bool { return a == 0 }
func order(a, b float64) bool { return a < b }`)
	wantFindings(t, got)
	got = runOn(t, FloatCmp, "scmp/internal/experiment", `
package experiment
func tie(a, b float64) bool { return a == b }`)
	wantFindings(t, got)
}

func TestNamedFloatTypesAreFlagged(t *testing.T) {
	got := runOn(t, FloatCmp, "scmp/internal/des", `
package des
type Time float64
func same(a, b Time) bool { return a == b }`)
	wantFindings(t, got, "floating-point ==")
}
