package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotAllocCrossPackageFact proves the fact pipeline: the Facts phase
// summarises scmp/internal/packet first (dependency order), and a hot
// function in a later package calling packet.EncodeBranch — which
// allocates its result — is reported at the call site.
func TestHotAllocCrossPackageFact(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	deps, err := loader.Load("scmp/internal/packet")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.CheckSource("scmp/internal/lint/testdata/xpkg", map[string]string{
		"scmp/internal/lint/testdata/xpkg/x.go": `
package xpkg
import (
	"scmp/internal/packet"
	"scmp/internal/topology"
)
//scmplint:hotpath
func forward(path []topology.NodeID) []byte {
	return packet.EncodeBranch(path)
}`,
	})
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(append(deps, pkg), []*Analyzer{HotAlloc})
	var hit bool
	for _, d := range diags {
		if strings.Contains(d.Message, "call to scmp/internal/packet.EncodeBranch may allocate") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no cross-package allocation finding; got %v", diags)
	}
}

// Appends under an ignore comment are excluded from the summary, so a
// reviewed amortization does not poison transitive callers.
func TestHotAllocIgnoredCalleeDoesNotPoison(t *testing.T) {
	got := runOn(t, HotAlloc, "scmp/internal/lint/testdata/amortized", `
package amortized
type q struct{ buf []int }
func (s *q) grow(n int) {
	if cap(s.buf) < n {
		s.buf = make([]int, n) //scmplint:ignore hotalloc
	}
}
//scmplint:hotpath
func (s *q) hot(n int) {
	s.grow(n)
}`)
	wantFindings(t, got)
}

func TestNoClockRelaxedInTestFiles(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.CheckSource("scmp/internal/experiment", map[string]string{
		"scmp/internal/experiment/x_test.go": `
package experiment
import "math/rand"
func mk(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
func draw() int { return rand.Intn(10) }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range Check([]*Package{pkg}, []*Analyzer{NoClock}) {
		got = append(got, d.String())
	}
	// rand.New/NewSource are the fixture idiom in tests; the globally
	// seeded rand.Intn stays flagged everywhere.
	wantFindings(t, got, "global rand.Intn")
}

func TestFloatCmpRelaxedInTestFiles(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.CheckSource("scmp/internal/mtree", map[string]string{
		"scmp/internal/mtree/x_test.go": `
package mtree
func bitExact(a, b float64) bool { return a == b }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check([]*Package{pkg}, []*Analyzer{FloatCmp}); len(diags) != 0 {
		t.Fatalf("test-file equality flagged: %v", diags)
	}
}

func TestLoaderIncludeTests(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load("scmp/internal/des")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	des := pkgs[0]
	var testFile, plainFile bool
	for _, f := range des.Files {
		name := des.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			testFile = true
		} else {
			plainFile = true
		}
	}
	if !testFile || !plainFile {
		t.Fatalf("in-package merge incomplete: test=%v plain=%v", testFile, plainFile)
	}
	if !des.Types.Complete() {
		t.Fatal("merged package not type-checked")
	}
}

func TestBaselineFilterAndJustification(t *testing.T) {
	moduleDir := t.TempDir()
	diag := func(file, msg string) Diagnostic {
		d := Diagnostic{Analyzer: "hotalloc", Message: msg}
		d.Pos.Filename = filepath.Join(moduleDir, file)
		d.Pos.Line = 10
		return d
	}
	diags := []Diagnostic{
		diag("a/a.go", "hot path: make allocates"),
		diag("a/a.go", "hot path: make allocates"),
		diag("b/b.go", "hot path: new allocates"),
	}

	// An empty baseline suppresses nothing.
	empty := &Baseline{}
	unsup, stale := empty.Filter(diags, moduleDir)
	if len(unsup) != 3 || len(stale) != 0 {
		t.Fatalf("empty baseline: unsuppressed=%d stale=%d", len(unsup), len(stale))
	}

	// NewBaseline aggregates by (analyzer, file, message) with counts and
	// preserves justifications from the previous baseline.
	prev := &Baseline{Entries: []BaselineEntry{{
		Analyzer: "hotalloc", File: "a/a.go",
		Message: "hot path: make allocates", Count: 1,
		Justification: "warm-up only",
	}}}
	nb := NewBaseline(diags, moduleDir, prev)
	if len(nb.Entries) != 2 {
		t.Fatalf("entries = %+v", nb.Entries)
	}
	if nb.Entries[0].Count != 2 || nb.Entries[0].Justification != "warm-up only" {
		t.Fatalf("aggregated entry = %+v", nb.Entries[0])
	}
	if got := nb.Unjustified(); len(got) != 1 || got[0].File != "b/b.go" {
		t.Fatalf("unjustified = %+v", got)
	}

	// The baseline suppresses up to Count findings per key; leftover
	// budget — a vanished finding or a shrunken count — is stale, with
	// the stale entry carrying the unmatched remainder.
	nb.Entries[1].Justification = "reviewed"
	unsup, stale = nb.Filter(diags, moduleDir)
	if len(unsup) != 0 || len(stale) != 0 {
		t.Fatalf("full baseline: unsuppressed=%v stale=%v", unsup, stale)
	}
	unsup, stale = nb.Filter(diags[:1], moduleDir)
	if len(unsup) != 0 || len(stale) != 2 {
		t.Fatalf("after fix: unsuppressed=%v stale=%+v", unsup, stale)
	}
	if stale[0].File != "a/a.go" || stale[0].Count != 1 || stale[1].File != "b/b.go" {
		t.Fatalf("stale remainders = %+v", stale)
	}

	// Round-trip through disk.
	path := filepath.Join(moduleDir, ".scmplint-baseline.json")
	if err := nb.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 || back.Entries[0].Justification != "warm-up only" {
		t.Fatalf("round-trip = %+v", back.Entries)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	// A missing baseline loads empty.
	none, err := LoadBaseline(filepath.Join(moduleDir, "absent.json"))
	if err != nil || len(none.Entries) != 0 {
		t.Fatalf("missing baseline: %v %+v", err, none)
	}
}

// TestModuleIsLintClean is the self-check the CI gate relies on: the
// full analyzer suite over every module package (tests included) must
// report nothing beyond the checked-in baseline. Inline ignores are
// applied by Check itself; the baseline layer is applied here exactly
// as cmd/scmplint applies it.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(pkgs, Analyzers())
	baseline, err := LoadBaseline(filepath.Join(loader.ModuleDir(), ".scmplint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if unj := baseline.Unjustified(); len(unj) > 0 {
		t.Errorf("baseline entries without justification: %+v", unj)
	}
	unsuppressed, stale := baseline.Filter(diags, loader.ModuleDir())
	for _, d := range unsuppressed {
		t.Errorf("unsuppressed finding: %s", d)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry: %+v", e)
	}
}
