package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestGolden runs each dataflow analyzer over its corpus under
// testdata/<analyzer>/. Every .go file is type-checked as its own
// synthetic package (imports resolve against the real module and the
// standard library) and must annotate each expected finding with a
// trailing comment of the form
//
//	// want "substring" ["substring" ...]
//
// on the line the diagnostic is reported at. The test fails on any
// missing or unexpected finding. A first-line directive
// "//golden:path <import path>" overrides the synthetic package path —
// poollife's corpus uses it to take a "netsim" path suffix so its local
// Packet type is treated as the pooled one.
func TestGolden(t *testing.T) {
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	dirs, err := filepath.Glob(filepath.Join("testdata", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no golden corpora under testdata/")
	}
	for _, dir := range dirs {
		a := byName[filepath.Base(dir)]
		if a == nil {
			t.Errorf("testdata/%s does not match any analyzer", filepath.Base(dir))
			continue
		}
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Errorf("%s: empty corpus", dir)
		}
		for _, file := range files {
			file := file
			t.Run(filepath.ToSlash(file), func(t *testing.T) {
				runGoldenFile(t, a, file)
			})
		}
	}
}

var goldenPathRE = regexp.MustCompile(`(?m)^//golden:path (\S+)$`)
var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func runGoldenFile(t *testing.T, a *Analyzer, file string) {
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	path := "scmp/internal/lint/testdata/" + a.Name + "/" +
		strings.TrimSuffix(filepath.Base(file), ".go")
	if m := goldenPathRE.FindSubmatch(src); m != nil {
		path = string(m[1])
	}

	// line -> expected message substrings.
	want := map[int][]string{}
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range wantArgRE.FindAllString(m[1], -1) {
			s, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", file, i+1, q, err)
			}
			want[i+1] = append(want[i+1], s)
		}
	}

	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(file)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.CheckSource(path, map[string]string{abs: string(src)})
	if err != nil {
		t.Fatal(err)
	}

	got := map[int][]string{}
	for _, d := range Check([]*Package{pkg}, []*Analyzer{a}) {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
	}

	var wantLines []int
	for line := range want {
		wantLines = append(wantLines, line)
	}
	sort.Ints(wantLines)
	for _, line := range wantLines {
		for _, sub := range want[line] {
			idx := -1
			for i, msg := range got[line] {
				if strings.Contains(msg, sub) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: missing finding mentioning %q (got %v)", file, line, sub, got[line])
				continue
			}
			got[line] = append(got[line][:idx], got[line][idx+1:]...)
		}
	}
	var lines []int
	for line := range got {
		if len(got[line]) > 0 {
			lines = append(lines, line)
		}
	}
	sort.Ints(lines)
	for _, line := range lines {
		for _, msg := range got[line] {
			t.Errorf("%s:%d: unexpected finding: %s", file, line, msg)
		}
	}
}
