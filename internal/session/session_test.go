package session

import (
	"testing"
	"testing/quick"

	"scmp/internal/des"
)

func newMgr() (*Manager, *des.Scheduler) {
	sched := des.New()
	return NewManager(sched, 1000, 4), sched
}

func TestAllocateRevokeCycle(t *testing.T) {
	m, _ := newMgr()
	g1, err := m.Allocate("conf")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.Allocate("lecture")
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 {
		t.Fatal("duplicate address issued")
	}
	if got := m.Groups(); len(got) != 2 {
		t.Fatalf("Groups = %v", got)
	}
	if err := m.Revoke(g1); err != nil {
		t.Fatal(err)
	}
	if got := m.Groups(); len(got) != 1 || got[0] != g2 {
		t.Fatalf("Groups after revoke = %v", got)
	}
	// Freed address is reusable.
	for i := 0; i < 3; i++ {
		if _, err := m.Allocate("more"); err != nil {
			t.Fatalf("allocate %d after revoke: %v", i, err)
		}
	}
}

func TestPoolExhaustion(t *testing.T) {
	m, _ := newMgr() // pool of 4
	for i := 0; i < 4; i++ {
		if _, err := m.Allocate("g"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Allocate("overflow"); err != ErrExhausted {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestRevokeGuards(t *testing.T) {
	m, _ := newMgr()
	if err := m.Revoke(999); err != ErrUnknownGroup {
		t.Fatalf("err = %v, want ErrUnknownGroup", err)
	}
	g, _ := m.Allocate("g")
	if err := m.MemberJoined(g, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke(g); err != ErrGroupActive {
		t.Fatalf("err = %v, want ErrGroupActive", err)
	}
	if err := m.MemberLeft(g, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke(g); err != nil {
		t.Fatal(err)
	}
}

func TestMemberOnTimeAccounting(t *testing.T) {
	m, sched := newMgr()
	g, _ := m.Allocate("g")
	sched.At(10, func() { _ = m.MemberJoined(g, 7) })
	sched.At(25, func() { _ = m.MemberLeft(g, 7) })
	sched.At(40, func() { _ = m.MemberJoined(g, 7) })
	sched.Run()
	// Closed span 15s + open span since t=40; clock now at 40.
	if got := m.MemberOnTime(g, 7); got != 15 {
		t.Fatalf("on-time = %v, want 15", got)
	}
	sched.At(50, func() {
		if got := m.MemberOnTime(g, 7); got != 25 {
			t.Errorf("on-time at t=50 = %v, want 25", got)
		}
	})
	sched.Run()
}

func TestMemberJoinIdempotent(t *testing.T) {
	m, _ := newMgr()
	g, _ := m.Allocate("g")
	_ = m.MemberJoined(g, 1)
	_ = m.MemberJoined(g, 1)
	_ = m.MemberLeft(g, 1)
	_ = m.MemberLeft(g, 1)
	joins := 0
	for _, e := range m.Log() {
		if e.Kind == EventJoin {
			joins++
		}
	}
	if joins != 1 {
		t.Fatalf("join events = %d, want 1", joins)
	}
	if m.MemberJoined(999, 1) != ErrUnknownGroup {
		t.Fatal("unknown group accepted")
	}
}

func TestQuery(t *testing.T) {
	m, _ := newMgr()
	g, _ := m.Allocate("videoconf")
	_ = m.MemberJoined(g, 9)
	_ = m.MemberJoined(g, 3)
	info, err := m.Query(g)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "videoconf" || len(info.Members) != 2 || info.Members[0] != 3 {
		t.Fatalf("info = %+v", info)
	}
	if _, err := m.Query(999); err != ErrUnknownGroup {
		t.Fatal("unknown group query accepted")
	}
}

func TestSessionLifecycle(t *testing.T) {
	m, sched := newMgr()
	g, _ := m.Allocate("g")
	id, err := m.StartSession(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RecordTraffic(g, id, 1000); err != nil {
		t.Fatal(err)
	}
	if err := m.RecordTraffic(g, id, 500); err != nil {
		t.Fatal(err)
	}
	info, err := m.Session(g, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Packets != 2 || info.Bytes != 1500 || !info.Active {
		t.Fatalf("info = %+v", info)
	}
	if err := m.EndSession(g, id); err != nil {
		t.Fatal(err)
	}
	if err := m.EndSession(g, id); err != ErrSessionClosed {
		t.Fatalf("double end: %v", err)
	}
	if err := m.RecordTraffic(g, id, 1); err != ErrSessionClosed {
		t.Fatalf("traffic on closed session: %v", err)
	}
	_ = sched
}

func TestSessionExpiry(t *testing.T) {
	m, sched := newMgr()
	g, _ := m.Allocate("g")
	id, err := m.StartSession(g, 30, sched)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(29)
	if info, _ := m.Session(g, id); !info.Active {
		t.Fatal("session expired early")
	}
	sched.RunUntil(31)
	info, _ := m.Session(g, id)
	if info.Active {
		t.Fatal("session did not expire")
	}
	if info.ExpiresAt != 30 {
		t.Fatalf("ExpiresAt = %v", info.ExpiresAt)
	}
}

func TestSessionLifetimeNeedsScheduler(t *testing.T) {
	m, _ := newMgr()
	g, _ := m.Allocate("g")
	if _, err := m.StartSession(g, 5, nil); err == nil {
		t.Fatal("lifetime without scheduler accepted")
	}
}

func TestLogChronology(t *testing.T) {
	m, sched := newMgr()
	g, _ := m.Allocate("g")
	sched.At(1, func() { _ = m.MemberJoined(g, 2) })
	sched.At(2, func() { _ = m.MemberLeft(g, 2) })
	sched.Run()
	log := m.Log()
	if len(log) != 3 {
		t.Fatalf("log = %v", log)
	}
	for i := 1; i < len(log); i++ {
		if log[i].At < log[i-1].At {
			t.Fatal("log out of order")
		}
	}
	if log[0].Kind != EventAllocate || log[1].Kind != EventJoin || log[2].Kind != EventLeave {
		t.Fatalf("log kinds = %v %v %v", log[0].Kind, log[1].Kind, log[2].Kind)
	}
	// Log() must return a copy.
	log[0].Kind = EventRevoke
	if m.Log()[0].Kind != EventAllocate {
		t.Fatal("log not copied")
	}
}

func TestEventKindString(t *testing.T) {
	if EventJoin.String() != "JOIN" || EventKind(99).String() != "EventKind(99)" {
		t.Fatal("EventKind names wrong")
	}
}

// Property: on-time is always nonnegative and never exceeds elapsed
// simulated time, under arbitrary join/leave sequences.
func TestPropertyOnTimeBounded(t *testing.T) {
	f := func(ops []bool) bool {
		m, sched := newMgr()
		g, _ := m.Allocate("g")
		for i, join := range ops {
			at := des.Time(i + 1)
			join := join
			sched.At(at, func() {
				if join {
					_ = m.MemberJoined(g, 1)
				} else {
					_ = m.MemberLeft(g, 1)
				}
			})
		}
		sched.Run()
		got := m.MemberOnTime(g, 1)
		return got >= 0 && got <= sched.Now()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRevokeClosesSessions(t *testing.T) {
	m, sched := newMgr()
	g, _ := m.Allocate("g")
	id, _ := m.StartSession(g, 0, nil)
	if err := m.Revoke(g); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Session(g, id); err != ErrUnknownGroup {
		t.Fatalf("session query after revoke: %v", err)
	}
	_ = sched
}
