// Package session implements the m-router's group and session
// management database (§II-C): multicast address allocation, revocation
// and publication; session lifecycle (create, renew, expire, tear down);
// per-member on-off tracking for scheduling and accounting/billing; and
// the query interface the paper requires ("it should have abilities for
// outsiders to query proper information about multicast groups and
// sessions in the m-router").
package session

import (
	"errors"
	"fmt"
	"sort"

	"scmp/internal/des"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// Common errors.
var (
	ErrExhausted     = errors.New("session: multicast address space exhausted")
	ErrUnknownGroup  = errors.New("session: unknown group")
	ErrGroupActive   = errors.New("session: group still has members")
	ErrSessionClosed = errors.New("session: session already closed")
)

// EventKind enumerates accounting-log entries.
type EventKind int

const (
	EventAllocate EventKind = iota
	EventRevoke
	EventJoin
	EventLeave
	EventSessionStart
	EventSessionEnd
)

var eventNames = map[EventKind]string{
	EventAllocate: "ALLOCATE", EventRevoke: "REVOKE",
	EventJoin: "JOIN", EventLeave: "LEAVE",
	EventSessionStart: "SESSION-START", EventSessionEnd: "SESSION-END",
}

func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one accounting record: who did what to which group and when.
type Event struct {
	At     des.Time
	Kind   EventKind
	Group  packet.GroupID
	Member topology.NodeID // -1 when not member-specific
}

// memberSpan tracks one member's on-time for billing.
type memberSpan struct {
	joinedAt des.Time
	total    des.Time // accumulated time over closed spans
	online   bool
}

// GroupInfo is the queryable state of one managed group.
type GroupInfo struct {
	Group     packet.GroupID
	Name      string
	CreatedAt des.Time
	Members   []topology.NodeID
	Sessions  []SessionID
}

// SessionID identifies a multicast session within a group.
type SessionID uint64

// SessionInfo is the queryable state of one session.
type SessionInfo struct {
	ID        SessionID
	Group     packet.GroupID
	StartedAt des.Time
	ExpiresAt des.Time // zero value: no expiry
	Active    bool
	Packets   uint64
	Bytes     uint64
}

type groupState struct {
	name      string
	createdAt des.Time
	members   map[topology.NodeID]*memberSpan
	sessions  map[SessionID]*sessionState
}

type sessionState struct {
	info SessionInfo
	exp  *des.Event
}

// Clock supplies the current time; *des.Scheduler satisfies it.
type Clock interface{ Now() des.Time }

// Manager is the m-router's service database.
type Manager struct {
	clock Clock
	// Address pool: [base, base+size).
	base, size uint32
	nextProbe  uint32
	groups     map[packet.GroupID]*groupState
	nextSess   SessionID
	log        []Event
}

// NewManager returns a manager allocating group addresses from
// [base, base+size) and timestamping with clock.
func NewManager(clock Clock, base packet.GroupID, size int) *Manager {
	if size <= 0 {
		panic("session: pool size must be positive")
	}
	return &Manager{
		clock:  clock,
		base:   uint32(base),
		size:   uint32(size),
		groups: make(map[packet.GroupID]*groupState),
	}
}

func (m *Manager) record(kind EventKind, g packet.GroupID, member topology.NodeID) {
	m.log = append(m.log, Event{At: m.clock.Now(), Kind: kind, Group: g, Member: member})
}

// Allocate issues a fresh multicast address for a new group (§II-C:
// "issue a multicast address for a new multicast group").
func (m *Manager) Allocate(name string) (packet.GroupID, error) {
	for i := uint32(0); i < m.size; i++ {
		cand := packet.GroupID(m.base + (m.nextProbe+i)%m.size)
		if _, used := m.groups[cand]; used {
			continue
		}
		m.nextProbe = (m.nextProbe + i + 1) % m.size
		m.groups[cand] = &groupState{
			name:      name,
			createdAt: m.clock.Now(),
			members:   make(map[topology.NodeID]*memberSpan),
			sessions:  make(map[SessionID]*sessionState),
		}
		m.record(EventAllocate, cand, -1)
		return cand, nil
	}
	return 0, ErrExhausted
}

// Adopt registers a group whose address was assigned externally (e.g. a
// well-known group configured out of band) so the manager can track its
// membership and sessions. Adopting an already-managed group is a no-op.
func (m *Manager) Adopt(g packet.GroupID, name string) {
	if _, ok := m.groups[g]; ok {
		return
	}
	m.groups[g] = &groupState{
		name:      name,
		createdAt: m.clock.Now(),
		members:   make(map[topology.NodeID]*memberSpan),
		sessions:  make(map[SessionID]*sessionState),
	}
	m.record(EventAllocate, g, -1)
}

// Revoke returns an abandoned group's address to the pool. Groups with
// members cannot be revoked.
func (m *Manager) Revoke(g packet.GroupID) error {
	gs, ok := m.groups[g]
	if !ok {
		return ErrUnknownGroup
	}
	for _, span := range gs.members {
		if span.online {
			return ErrGroupActive
		}
	}
	for id := range gs.sessions {
		_ = m.EndSession(g, id) // best effort; already-closed is fine
	}
	delete(m.groups, g)
	m.record(EventRevoke, g, -1)
	return nil
}

// Groups publishes the existing multicast addresses, sorted (§II-C:
// "publish the multicast addresses for existing multicast groups").
func (m *Manager) Groups() []packet.GroupID {
	out := make([]packet.GroupID, 0, len(m.groups))
	for g := range m.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MemberJoined records a member router coming online in a group. It is
// idempotent for an already-online member.
func (m *Manager) MemberJoined(g packet.GroupID, member topology.NodeID) error {
	gs, ok := m.groups[g]
	if !ok {
		return ErrUnknownGroup
	}
	span := gs.members[member]
	if span == nil {
		span = &memberSpan{}
		gs.members[member] = span
	}
	if span.online {
		return nil
	}
	span.online = true
	span.joinedAt = m.clock.Now()
	m.record(EventJoin, g, member)
	return nil
}

// MemberLeft records a member router going offline.
func (m *Manager) MemberLeft(g packet.GroupID, member topology.NodeID) error {
	gs, ok := m.groups[g]
	if !ok {
		return ErrUnknownGroup
	}
	span := gs.members[member]
	if span == nil || !span.online {
		return nil
	}
	span.online = false
	span.total += m.clock.Now() - span.joinedAt
	m.record(EventLeave, g, member)
	return nil
}

// MemberOnTime returns the member's accumulated online time in the
// group — the paper's accounting/billing basis ("keeps track of all the
// membership on-off information ... for accounting/billing purposes").
func (m *Manager) MemberOnTime(g packet.GroupID, member topology.NodeID) des.Time {
	gs, ok := m.groups[g]
	if !ok {
		return 0
	}
	span := gs.members[member]
	if span == nil {
		return 0
	}
	total := span.total
	if span.online {
		total += m.clock.Now() - span.joinedAt
	}
	return total
}

// Query returns the queryable state of a group.
func (m *Manager) Query(g packet.GroupID) (GroupInfo, error) {
	gs, ok := m.groups[g]
	if !ok {
		return GroupInfo{}, ErrUnknownGroup
	}
	info := GroupInfo{Group: g, Name: gs.name, CreatedAt: gs.createdAt}
	for member, span := range gs.members {
		if span.online {
			info.Members = append(info.Members, member)
		}
	}
	sort.Slice(info.Members, func(i, j int) bool { return info.Members[i] < info.Members[j] })
	for id := range gs.sessions {
		info.Sessions = append(info.Sessions, id)
	}
	sort.Slice(info.Sessions, func(i, j int) bool { return info.Sessions[i] < info.Sessions[j] })
	return info, nil
}

// StartSession opens a session in a group. A positive lifetime
// schedules automatic teardown on the scheduler (which must then be the
// manager's clock); zero means the session lives until EndSession.
func (m *Manager) StartSession(g packet.GroupID, lifetime des.Time, sched *des.Scheduler) (SessionID, error) {
	gs, ok := m.groups[g]
	if !ok {
		return 0, ErrUnknownGroup
	}
	m.nextSess++
	id := m.nextSess
	ss := &sessionState{info: SessionInfo{
		ID: id, Group: g, StartedAt: m.clock.Now(), Active: true,
	}}
	if lifetime > 0 {
		if sched == nil {
			return 0, errors.New("session: lifetime requires a scheduler")
		}
		ss.info.ExpiresAt = m.clock.Now() + lifetime
		ss.exp = sched.After(lifetime, func() { _ = m.EndSession(g, id) })
	}
	gs.sessions[id] = ss
	m.record(EventSessionStart, g, -1)
	return id, nil
}

// EndSession tears a session down (expired or explicit).
func (m *Manager) EndSession(g packet.GroupID, id SessionID) error {
	gs, ok := m.groups[g]
	if !ok {
		return ErrUnknownGroup
	}
	ss, ok := gs.sessions[id]
	if !ok || !ss.info.Active {
		return ErrSessionClosed
	}
	ss.info.Active = false
	if ss.exp != nil {
		ss.exp.Cancel()
	}
	m.record(EventSessionEnd, g, -1)
	return nil
}

// RecordTraffic charges a data packet to a session ("check, track and
// record the multicast traffic in the corresponding multicast session").
func (m *Manager) RecordTraffic(g packet.GroupID, id SessionID, bytes int) error {
	gs, ok := m.groups[g]
	if !ok {
		return ErrUnknownGroup
	}
	ss, ok := gs.sessions[id]
	if !ok || !ss.info.Active {
		return ErrSessionClosed
	}
	ss.info.Packets++
	ss.info.Bytes += uint64(bytes)
	return nil
}

// Session returns the queryable state of a session.
func (m *Manager) Session(g packet.GroupID, id SessionID) (SessionInfo, error) {
	gs, ok := m.groups[g]
	if !ok {
		return SessionInfo{}, ErrUnknownGroup
	}
	ss, ok := gs.sessions[id]
	if !ok {
		return SessionInfo{}, ErrSessionClosed
	}
	return ss.info, nil
}

// Log returns the accounting log (a copy), in chronological order.
func (m *Manager) Log() []Event { return append([]Event(nil), m.log...) }
