package session_test

import (
	"fmt"

	"scmp/internal/des"
	"scmp/internal/session"
)

// Example walks the m-router's service database through a group's life:
// address allocation, members coming and going (billable on-time), a
// session with traffic records, and revocation.
func Example() {
	sched := des.New()
	mgr := session.NewManager(sched, 0xE0000000, 256)

	g, _ := mgr.Allocate("friday-standup")
	fmt.Printf("allocated group %#x\n", uint32(g))

	sched.At(10, func() { _ = mgr.MemberJoined(g, 5) })
	sched.At(40, func() { _ = mgr.MemberLeft(g, 5) })
	sched.Run()
	fmt.Println("member 5 on-time:", mgr.MemberOnTime(g, 5), "s")

	id, _ := mgr.StartSession(g, 0, nil)
	_ = mgr.RecordTraffic(g, id, 1500)
	_ = mgr.RecordTraffic(g, id, 1500)
	info, _ := mgr.Session(g, id)
	fmt.Println("session packets:", info.Packets, "bytes:", info.Bytes)

	_ = mgr.EndSession(g, id)
	fmt.Println("revoke:", mgr.Revoke(g) == nil)
	// Output:
	// allocated group 0xe0000000
	// member 5 on-time: 30 s
	// session packets: 2 bytes: 3000
	// revoke: true
}
