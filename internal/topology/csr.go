package topology

// CSR is the compressed-sparse-row view of a Graph: every directed link
// (both directions of each undirected edge) flattened into parallel
// arrays, neighbours of node u occupying dst[off[u]:off[u+1]] in the
// same order as the Graph's adjacency lists. The per-weight arrays are
// precomputed once per graph, so the Dijkstra inner loop is pure array
// arithmetic: no closure calls, no Link struct loads, no slice-of-slice
// pointer chasing.
//
// A CSR is immutable after construction and shared freely across
// goroutines.
type CSR struct {
	off   []int32   // len N+1; off[u]..off[u+1] bounds u's out-links
	dst   []NodeID  // len 2M; link targets
	delay []float64 // len 2M; ByDelay weight array (also the delay accumulator input)
	cost  []float64 // len 2M; ByCost weight array (also the cost accumulator input)
}

// N returns the node count.
func (c *CSR) N() int { return len(c.off) - 1 }

// weights returns the flat edge-weight array the given Weight selects.
func (c *CSR) weights(w Weight) []float64 {
	if w == ByCost {
		return c.cost
	}
	return c.delay
}

// buildCSR flattens g. Adjacency order is preserved per node, so any
// code sensitive to neighbour scan order behaves exactly as it does on
// the slice-of-slice representation.
func buildCSR(g *Graph) *CSR {
	n := g.N()
	c := &CSR{
		off:   make([]int32, n+1),
		dst:   make([]NodeID, 0, 2*g.M()),
		delay: make([]float64, 0, 2*g.M()),
		cost:  make([]float64, 0, 2*g.M()),
	}
	for u := 0; u < n; u++ {
		c.off[u] = int32(len(c.dst))
		for _, l := range g.adj[u] {
			c.dst = append(c.dst, l.To)
			c.delay = append(c.delay, l.Delay)
			c.cost = append(c.cost, l.Cost)
		}
	}
	c.off[n] = int32(len(c.dst))
	return c
}

// CSR returns the graph's flattened view, building and caching it on
// first use. The cache is invalidated by AddEdge, so graphs that are
// still being constructed pay nothing; once a graph goes read-only (the
// universal pattern here — generators build, everything else reads) the
// build cost is paid exactly once. Concurrent first calls may both
// build; the results are identical and one wins the publish race.
func (g *Graph) CSR() *CSR {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	if g.csr.CompareAndSwap(nil, c) {
		return c
	}
	return g.csr.Load()
}

// NumArcs returns the number of directed links (2M).
func (c *CSR) NumArcs() int { return len(c.dst) }

// Row returns the half-open arc-index range [lo, hi) of u's out-links.
// Arc indices are stable for the life of the CSR and dense over all
// directed links, so they serve as directed edge ids for per-link state
// (the simulator's busy horizons).
func (c *CSR) Row(u NodeID) (lo, hi int32) { return c.off[u], c.off[u+1] }

// ArcDst returns the target of arc i.
func (c *CSR) ArcDst(i int32) NodeID { return c.dst[i] }

// ArcDelay returns the delay of arc i.
func (c *CSR) ArcDelay(i int32) float64 { return c.delay[i] }

// ArcCost returns the cost of arc i.
func (c *CSR) ArcCost(i int32) float64 { return c.cost[i] }
