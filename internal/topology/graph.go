// Package topology provides the network graph model used throughout the
// reproduction: undirected graphs whose links carry a (delay, cost) pair,
// the topology generators from the paper's evaluation (Waxman model,
// flat random graphs with a target average degree, and the ARPANET map),
// and shortest-path machinery (Dijkstra by delay and by cost).
//
// Links are symmetric, as the paper assumes: "any link has the same delay
// and cost in both directions".
package topology

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// NodeID identifies a router in the graph. IDs are dense: 0..N-1.
type NodeID int

// Link is one direction of a symmetric edge.
type Link struct {
	To    NodeID
	Delay float64 // link delay: queueing + transmission + propagation
	Cost  float64 // link cost: a function of utilisation
}

// Graph is an undirected graph with per-link delay and cost. Construct
// with New and AddEdge; both directions of an edge always carry the same
// delay and cost.
type Graph struct {
	adj [][]Link
	m   int // number of undirected edges

	// csr caches the flattened CSR view built on first routing use;
	// AddEdge invalidates it (see CSR in csr.go).
	csr atomic.Pointer[CSR]
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Graph{adj: make([][]Link, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// AddEdge adds the symmetric edge {u,v} with the given delay and cost.
// It returns an error on self-loops, duplicate edges, out-of-range nodes,
// or non-positive delay/cost (zero-delay links would let the discrete-
// event simulator schedule infinite instantaneous loops).
func (g *Graph) AddEdge(u, v NodeID, delay, cost float64) error {
	if u == v {
		return fmt.Errorf("topology: self-loop at %d", u)
	}
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("topology: edge {%d,%d} out of range (n=%d)", u, v, g.N())
	}
	if delay <= 0 || cost <= 0 {
		return fmt.Errorf("topology: edge {%d,%d} needs positive delay and cost, got (%g,%g)", u, v, delay, cost)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("topology: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = append(g.adj[u], Link{To: v, Delay: delay, Cost: cost})
	g.adj[v] = append(g.adj[v], Link{To: u, Delay: delay, Cost: cost})
	g.m++
	g.csr.Store(nil) // adjacency changed: drop the cached CSR view
	return nil
}

// MustAddEdge is AddEdge but panics on error; for hand-built topologies.
func (g *Graph) MustAddEdge(u, v NodeID, delay, cost float64) {
	if err := g.AddEdge(u, v, delay, cost); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(u NodeID) bool { return u >= 0 && int(u) < len(g.adj) }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if !g.valid(u) || !g.valid(v) {
		return false
	}
	for _, l := range g.adj[u] {
		if l.To == v {
			return true
		}
	}
	return false
}

// Edge returns the link record from u toward v.
func (g *Graph) Edge(u, v NodeID) (Link, bool) {
	if !g.valid(u) {
		return Link{}, false
	}
	for _, l := range g.adj[u] {
		if l.To == v {
			return l, true
		}
	}
	return Link{}, false
}

// Neighbors returns the links leaving u. The returned slice is owned by
// the graph and must not be mutated.
func (g *Graph) Neighbors(u NodeID) []Link {
	if !g.valid(u) {
		return nil
	}
	return g.adj[u]
}

// Degree returns the number of links at u.
func (g *Graph) Degree(u NodeID) int { return len(g.Neighbors(u)) }

// AvgDegree returns the average node degree (2M/N).
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.N())
}

// Connected reports whether the graph is connected (true for N<=1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	return len(g.Component(0)) == g.N()
}

// Component returns the set of nodes reachable from start, in BFS order.
func (g *Graph) Component(start NodeID) []NodeID {
	if !g.valid(start) {
		return nil
	}
	seen := make([]bool, g.N())
	seen[start] = true
	order := []NodeID{start}
	for i := 0; i < len(order); i++ {
		for _, l := range g.adj[order[i]] {
			if !seen[l.To] {
				seen[l.To] = true
				order = append(order, l.To)
			}
		}
	}
	return order
}

// Components returns all connected components, each sorted, largest first.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.N())
	var comps [][]NodeID
	for u := 0; u < g.N(); u++ {
		if seen[u] {
			continue
		}
		comp := g.Component(NodeID(u))
		for _, v := range comp {
			seen[v] = true
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// Diameter returns the longest shortest-delay path length over all node
// pairs, and the pair realising it. O(N * Dijkstra).
func (g *Graph) Diameter() (float64, NodeID, NodeID) {
	best := 0.0
	var bu, bv NodeID
	e := NewEngine(g)
	var sp Paths
	for u := 0; u < g.N(); u++ {
		e.ShortestInto(&sp, NodeID(u), ByDelay, nil)
		for v := 0; v < g.N(); v++ {
			if d := sp.Dist[v]; !math.IsInf(d, 1) && d > best {
				best, bu, bv = d, NodeID(u), NodeID(v)
			}
		}
	}
	return best, bu, bv
}

// TotalCost returns the sum of cost over all undirected edges.
func (g *Graph) TotalCost() float64 {
	sum := 0.0
	for u := 0; u < g.N(); u++ {
		for _, l := range g.adj[u] {
			if NodeID(u) < l.To {
				sum += l.Cost
			}
		}
	}
	return sum
}

// ScaleDelays returns a copy of the graph with every link delay
// multiplied by factor (costs unchanged). The generators express delay
// in abstract cost-proportional units; packet-level simulations convert
// them to seconds (e.g. factor 1e-3 reads the raw values as
// milliseconds), so that a one-packet-per-second source is slow relative
// to propagation, as in the paper's NS-2 setup.
func (g *Graph) ScaleDelays(factor float64) *Graph {
	if factor <= 0 {
		panic("topology: ScaleDelays needs a positive factor")
	}
	c := g.Clone()
	for u := range c.adj {
		for i := range c.adj[u] {
			c.adj[u][i].Delay *= factor
		}
	}
	return c
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	c.m = g.m
	for u := range g.adj {
		c.adj[u] = append([]Link(nil), g.adj[u]...)
	}
	return c
}
