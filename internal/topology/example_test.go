package topology_test

import (
	"fmt"
	"math/rand"

	"scmp/internal/topology"
)

// Example builds a small graph and finds the delay- and cost-optimal
// routes — the paper's P_sl and P_lc, which DCDM considers as graft
// candidates.
func Example() {
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 10) // fast, expensive
	g.MustAddEdge(1, 3, 1, 10)
	g.MustAddEdge(0, 2, 5, 1) // slow, cheap
	g.MustAddEdge(2, 3, 5, 1)

	psl := topology.Shortest(g, 0, topology.ByDelay)
	plc := topology.Shortest(g, 0, topology.ByCost)
	fmt.Println("P_sl(0,3):", psl.To(3), "delay", psl.Delay[3], "cost", psl.Cost[3])
	fmt.Println("P_lc(0,3):", plc.To(3), "delay", plc.Delay[3], "cost", plc.Cost[3])
	// Output:
	// P_sl(0,3): [0 1 3] delay 2 cost 20
	// P_lc(0,3): [0 2 3] delay 10 cost 2
}

// ExampleWaxman generates the paper's Fig. 7 topology model.
func ExampleWaxman() {
	rng := rand.New(rand.NewSource(3))
	wg, err := topology.Waxman(topology.DefaultWaxman(100), rng)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("nodes:", wg.N(), "connected:", wg.Connected())
	// Output:
	// nodes: 100 connected: true
}

// ExampleTransitStub generates a GT-ITM-style hierarchical topology.
func ExampleTransitStub() {
	rng := rand.New(rand.NewSource(1))
	g, info, err := topology.TransitStub(topology.DefaultTransitStub(), rng)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("nodes:", g.N(), "transit:", len(info.TransitNodes()), "connected:", g.Connected())
	// Output:
	// nodes: 112 transit: 16 connected: true
}
