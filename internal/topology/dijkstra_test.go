package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds a 4-node graph where the delay-optimal and cost-optimal
// paths from 0 to 3 differ:
//
//	0 --(d1,c10)-- 1 --(d1,c10)-- 3     (delay 2, cost 20)
//	0 --(d5,c1)--- 2 --(d5,c1)--- 3     (delay 10, cost 2)
func diamond() *Graph {
	g := New(4)
	g.MustAddEdge(0, 1, 1, 10)
	g.MustAddEdge(1, 3, 1, 10)
	g.MustAddEdge(0, 2, 5, 1)
	g.MustAddEdge(2, 3, 5, 1)
	return g
}

func TestShortestByDelayVsCost(t *testing.T) {
	g := diamond()
	byDelay := Shortest(g, 0, ByDelay)
	byCost := Shortest(g, 0, ByCost)

	if got := byDelay.To(3); len(got) != 3 || got[1] != 1 {
		t.Fatalf("delay path = %v, want via node 1", got)
	}
	if got := byCost.To(3); len(got) != 3 || got[1] != 2 {
		t.Fatalf("cost path = %v, want via node 2", got)
	}
	if byDelay.Dist[3] != 2 || byDelay.Delay[3] != 2 || byDelay.Cost[3] != 20 {
		t.Fatalf("delay path metrics = dist %g delay %g cost %g", byDelay.Dist[3], byDelay.Delay[3], byDelay.Cost[3])
	}
	if byCost.Dist[3] != 2 || byCost.Delay[3] != 10 || byCost.Cost[3] != 2 {
		t.Fatalf("cost path metrics = dist %g delay %g cost %g", byCost.Dist[3], byCost.Delay[3], byCost.Cost[3])
	}
}

func TestShortestUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1, 1)
	sp := Shortest(g, 0, ByDelay)
	if sp.Reachable(2) {
		t.Fatal("node 2 should be unreachable")
	}
	if sp.To(2) != nil {
		t.Fatal("To(unreachable) should be nil")
	}
	if !math.IsInf(sp.Dist[2], 1) {
		t.Fatalf("Dist[2] = %g, want +Inf", sp.Dist[2])
	}
}

// MinCost must exclude the source row entry (whose cost is trivially 0
// and would make the minimum vacuous), skip unreachable nodes, and
// memoise: a second call returns the identical value without rescanning.
func TestPathsMinCost(t *testing.T) {
	sp := Shortest(diamond(), 0, ByDelay)
	// Path costs from 0: node 1 -> 10, node 2 -> 1, node 3 -> 20
	// (delay-optimal route 0-1-3). Src itself (cost 0) must not count.
	if got := sp.MinCost(); got != 1 {
		t.Fatalf("MinCost = %g, want 1 (cheapest non-source path)", got)
	}
	if got := sp.MinCost(); got != 1 {
		t.Fatalf("memoised MinCost = %g, want 1", got)
	}

	// Unreachable nodes contribute nothing; a fully isolated source has
	// an infinite row minimum.
	g := New(3)
	g.MustAddEdge(0, 1, 1, 4)
	sp = Shortest(g, 0, ByDelay)
	if got := sp.MinCost(); got != 4 {
		t.Fatalf("MinCost with unreachable node = %g, want 4", got)
	}
	if got := Shortest(g, 2, ByDelay).MinCost(); !math.IsInf(got, 1) {
		t.Fatalf("isolated source MinCost = %g, want +Inf", got)
	}
}

func TestShortestSelf(t *testing.T) {
	g := line(t, 3)
	sp := Shortest(g, 1, ByDelay)
	if sp.Dist[1] != 0 {
		t.Fatalf("Dist[self] = %g", sp.Dist[1])
	}
	p := sp.To(1)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("To(self) = %v", p)
	}
}

// bellmanFord is an independent reference implementation.
func bellmanFord(g *Graph, src NodeID, w Weight) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, l := range g.Neighbors(NodeID(u)) {
				if d := dist[u] + w.Of(l); d < dist[l.To] {
					dist[l.To] = d
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// Property: Dijkstra matches Bellman-Ford on random graphs, for both
// weights.
func TestPropertyDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := Random(DefaultRandom(25, 4), rng)
		if err != nil {
			return false
		}
		src := NodeID(rng.Intn(g.N()))
		for _, w := range []Weight{ByDelay, ByCost} {
			got := Shortest(g, src, w)
			want := bellmanFord(g, src, w)
			for v := range want {
				if math.Abs(got.Dist[v]-want[v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the delay/cost annotations on a shortest path equal the sums
// along the reconstructed node sequence.
func TestPropertyPathAnnotations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := Random(DefaultRandom(20, 3), rng)
		if err != nil {
			return false
		}
		sp := Shortest(g, 0, ByCost)
		for v := 0; v < g.N(); v++ {
			path := sp.To(NodeID(v))
			if path == nil {
				return false // connected graph: everything reachable
			}
			if math.Abs(PathDelay(g, path)-sp.Delay[v]) > 1e-9 {
				return false
			}
			if math.Abs(PathCost(g, path)-sp.Cost[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNextHopConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := Random(DefaultRandom(30, 4), rng)
	if err != nil {
		t.Fatal(err)
	}
	next := NextHop(g)
	// Following next-hops from any u must reach v with the shortest delay.
	ap := NewAllPairs(g, ByDelay)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				if next.Hop(NodeID(u), NodeID(v)) != -1 {
					t.Fatalf("next[%d][%d] = %d, want -1", u, v, next.Hop(NodeID(u), NodeID(v)))
				}
				continue
			}
			delay := 0.0
			cur := NodeID(u)
			for hops := 0; cur != NodeID(v); hops++ {
				if hops > g.N() {
					t.Fatalf("next-hop loop from %d to %d", u, v)
				}
				nh := next.Hop(cur, NodeID(v))
				l, ok := g.Edge(cur, nh)
				if !ok {
					t.Fatalf("next hop %d->%d not adjacent to %d", cur, nh, cur)
				}
				delay += l.Delay
				cur = nh
			}
			if math.Abs(delay-ap.Row(NodeID(u)).Delay[v]) > 1e-9 {
				t.Fatalf("next-hop delay %d->%d = %g, want %g", u, v, delay, ap.Row(NodeID(u)).Delay[v])
			}
		}
	}
}

func TestPathDelayPanicsOnNonPath(t *testing.T) {
	g := line(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PathDelay(g, []NodeID{0, 2})
}

func BenchmarkDijkstra100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	wg, err := Waxman(DefaultWaxman(100), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Shortest(wg.Graph, NodeID(i%100), ByDelay)
	}
}
