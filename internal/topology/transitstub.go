package topology

import (
	"fmt"
	"math/rand"
)

// TransitStubConfig parameterises a GT-ITM-style transit-stub topology —
// the hierarchical model of the generator the paper draws its random
// topologies from. A connected backbone of transit domains is built
// first; each transit node then anchors a number of stub domains.
// Link attributes reflect the hierarchy: backbone links are long
// (costly), intra-stub links short, with delay uniform in (0, cost] as
// in the flat generators.
type TransitStubConfig struct {
	TransitDomains      int // e.g. 4
	TransitSize         int // nodes per transit domain, e.g. 4
	StubsPerTransitNode int // stub domains hanging off each transit node
	StubSize            int // nodes per stub domain
	// EdgeProb is the probability of each optional extra intra-domain
	// edge beyond the spanning tree (default 0.4).
	EdgeProb float64
}

// DefaultTransitStub returns a ~100-node configuration
// (4 transit domains x 4 nodes, 2 stubs/node x 3 nodes = 112 nodes).
func DefaultTransitStub() TransitStubConfig {
	return TransitStubConfig{
		TransitDomains:      4,
		TransitSize:         4,
		StubsPerTransitNode: 2,
		StubSize:            3,
		EdgeProb:            0.4,
	}
}

// NodeRole classifies a node in a transit-stub topology.
type NodeRole int

const (
	RoleTransit NodeRole = iota
	RoleStub
)

// TransitStubInfo describes the hierarchy of a generated topology.
type TransitStubInfo struct {
	Roles []NodeRole
	// Domain[v] identifies v's domain: transit domains are numbered
	// 0..TransitDomains-1, stub domains continue from there.
	Domain []int
	// Attachment[v] is the transit node a stub node's domain hangs off
	// (-1 for transit nodes).
	Attachment []NodeID
}

// TransitNodes returns all transit (backbone) nodes.
func (i *TransitStubInfo) TransitNodes() []NodeID {
	var out []NodeID
	for v, r := range i.Roles {
		if r == RoleTransit {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// cost bands per link level.
const (
	tsInterTransitCost = 100.0
	tsIntraTransitCost = 20.0
	tsTransitStubCost  = 10.0
	tsIntraStubCost    = 1.0
	tsCostSpread       = 2.0 // each band spans [base, base*spread)
)

// TransitStub generates a connected transit-stub topology.
func TransitStub(cfg TransitStubConfig, rng *rand.Rand) (*Graph, *TransitStubInfo, error) {
	if cfg.TransitDomains < 1 || cfg.TransitSize < 1 || cfg.StubsPerTransitNode < 0 || cfg.StubSize < 1 {
		return nil, nil, fmt.Errorf("topology: degenerate transit-stub config %+v", cfg)
	}
	if cfg.EdgeProb <= 0 {
		cfg.EdgeProb = 0.4
	}
	transitN := cfg.TransitDomains * cfg.TransitSize
	stubDomains := transitN * cfg.StubsPerTransitNode
	total := transitN + stubDomains*cfg.StubSize
	g := New(total)
	info := &TransitStubInfo{
		Roles:      make([]NodeRole, total),
		Domain:     make([]int, total),
		Attachment: make([]NodeID, total),
	}
	for i := range info.Attachment {
		info.Attachment[i] = -1
	}
	edge := func(u, v NodeID, base float64) {
		cost := base * (1 + rng.Float64()*(tsCostSpread-1))
		delay := rng.Float64() * cost
		if delay <= 0 {
			delay = cost / 2
		}
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, delay, cost)
		}
	}

	// Transit domains: random spanning tree + extra edges inside each.
	domainNodes := func(d int) []NodeID {
		out := make([]NodeID, cfg.TransitSize)
		for i := range out {
			out[i] = NodeID(d*cfg.TransitSize + i)
		}
		return out
	}
	for d := 0; d < cfg.TransitDomains; d++ {
		nodes := domainNodes(d)
		for _, v := range nodes {
			info.Roles[v] = RoleTransit
			info.Domain[v] = d
		}
		buildDomain(g, nodes, cfg.EdgeProb, tsIntraTransitCost, rng, edge)
	}
	// Backbone: connect the transit domains in a random tree plus a few
	// extra inter-domain links.
	perm := rng.Perm(cfg.TransitDomains)
	for i := 1; i < cfg.TransitDomains; i++ {
		a := domainNodes(perm[i])[rng.Intn(cfg.TransitSize)]
		b := domainNodes(perm[rng.Intn(i)])[rng.Intn(cfg.TransitSize)]
		edge(a, b, tsInterTransitCost)
	}
	for d := 0; d < cfg.TransitDomains; d++ {
		if rng.Float64() < cfg.EdgeProb && cfg.TransitDomains > 1 {
			other := (d + 1 + rng.Intn(cfg.TransitDomains-1)) % cfg.TransitDomains
			a := domainNodes(d)[rng.Intn(cfg.TransitSize)]
			b := domainNodes(other)[rng.Intn(cfg.TransitSize)]
			if !g.HasEdge(a, b) {
				edge(a, b, tsInterTransitCost)
			}
		}
	}

	// Stub domains.
	next := NodeID(transitN)
	domainID := cfg.TransitDomains
	for t := 0; t < transitN; t++ {
		for sdom := 0; sdom < cfg.StubsPerTransitNode; sdom++ {
			nodes := make([]NodeID, cfg.StubSize)
			for i := range nodes {
				nodes[i] = next
				info.Roles[next] = RoleStub
				info.Domain[next] = domainID
				info.Attachment[next] = NodeID(t)
				next++
			}
			buildDomain(g, nodes, cfg.EdgeProb, tsIntraStubCost, rng, edge)
			// Anchor the stub domain to its transit node.
			gateway := nodes[rng.Intn(len(nodes))]
			edge(gateway, NodeID(t), tsTransitStubCost)
			domainID++
		}
	}
	return g, info, nil
}

// buildDomain wires nodes into a connected random subgraph: a random
// spanning tree plus Bernoulli(extraProb) extra edges.
func buildDomain(g *Graph, nodes []NodeID, extraProb, baseCost float64,
	rng *rand.Rand, edge func(u, v NodeID, base float64)) {

	if len(nodes) == 1 {
		return
	}
	perm := rng.Perm(len(nodes))
	for i := 1; i < len(nodes); i++ {
		edge(nodes[perm[i]], nodes[perm[rng.Intn(i)]], baseCost)
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) && rng.Float64() < extraProb/float64(len(nodes)) {
				edge(nodes[i], nodes[j], baseCost)
			}
		}
	}
}
