package topology

import (
	"math/rand"
	"runtime"
	"testing"
)

// Routing-engine benchmarks (the perf gate for the CSR/4-ary-heap
// rewrite). Run with allocation counting via:
//
//	make bench-routing
//
// BenchmarkShortest compares the preserved container/heap reference
// against the fast engine, fresh-allocating and buffer-reusing;
// BenchmarkAllPairs compares a reference loop, the eager table at
// GOMAXPROCS 1 and 4, and lazy row materialisation.

// benchGraph is the 400-node Waxman instance the acceptance criteria
// are measured on.
func benchGraph(b *testing.B) *Graph {
	b.Helper()
	wg, err := Waxman(DefaultWaxman(400), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return wg.Graph
}

func BenchmarkShortest(b *testing.B) {
	g := benchGraph(b)
	g.CSR() // build outside the timed region; all variants share it
	b.Run("ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			shortestRef(g, NodeID(i%g.N()), ByDelay, nil)
		}
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Shortest(g, NodeID(i%g.N()), ByDelay)
		}
	})
	b.Run("engine-reuse", func(b *testing.B) {
		e := NewEngine(g)
		var row Paths
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.ShortestInto(&row, NodeID(i%g.N()), ByDelay, nil)
		}
	})
}

func BenchmarkAllPairs(b *testing.B) {
	g := benchGraph(b)
	g.CSR()
	b.Run("ref-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for u := 0; u < g.N(); u++ {
				shortestRef(g, NodeID(u), ByDelay, nil)
			}
		}
	})
	b.Run("eager-serial", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			NewAllPairs(g, ByDelay)
		}
	})
	b.Run("eager-parallel", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			NewAllPairs(g, ByDelay)
		}
	})
	// Lazy pays only for consulted rows: the typical fault-recompute
	// pattern touches a handful of sources, not all n.
	b.Run("lazy-16rows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ap := NewLazyAllPairs(g, ByDelay)
			for u := 0; u < 16; u++ {
				ap.Row(NodeID(u))
			}
		}
	})
}

func BenchmarkNextHopTable(b *testing.B) {
	g := benchGraph(b)
	g.CSR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NextHop(g)
	}
}
