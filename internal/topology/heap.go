package topology

// nodeHeap is an indexed 4-ary min-heap specialised to (node, dist)
// pairs — the boxing-free replacement for container/heap in the
// Dijkstra hot loop. container/heap costs an interface allocation per
// Push (the pqItem escapes into an `any`) plus dynamic dispatch per
// Less/Swap; this heap is a flat slice of 16-byte structs with inlined
// comparisons. The 4-ary shape halves the tree depth of a binary heap,
// trading slightly wider sift-down scans (cache-friendly: all four
// children share a cache line) for fewer levels per percolation.
//
// The heap is *indexed*: pos tracks each node's slot, so a relaxation
// that improves an already-queued node decreases its key in place
// instead of pushing a duplicate. On dense graphs that keeps the heap
// at most |V| entries where lazy deletion would grow it toward |E| —
// pop cost drops with the log of that ratio, and the done-check on pop
// becomes vestigial (each node is popped at most once).
//
// Ordering is the explicit tie-break ladder (dist, then node id):
// strictly smaller dist wins, and an exact dist tie is broken by the
// lower node id. Exact float ties between independently summed path
// lengths are representation-dependent, so the ladder never decides
// them implicitly by heap layout — pop order is a pure function of the
// set of queued (node, key) pairs.
type heapItem struct {
	node NodeID
	dist float64
}

// heapLess is the (dist, node) ladder. Written as two strict
// comparisons — never float equality — so NaNs sink and exact ties fall
// through to the id comparison.
func heapLess(a, b heapItem) bool {
	if a.dist < b.dist {
		return true
	}
	if b.dist < a.dist {
		return false
	}
	return a.node < b.node
}

type nodeHeap struct {
	items []heapItem
	// pos[v] is v's index in items, -1 when v is not queued.
	pos []int32
}

func (h *nodeHeap) len() int { return len(h.items) }

// reset empties the heap for a graph of n nodes, keeping capacity for
// reuse across sources.
func (h *nodeHeap) reset(n int) {
	h.items = h.items[:0]
	if cap(h.pos) < n {
		// Grown once per graph size, reused across every source after.
		h.pos = make([]int32, n) //scmplint:ignore hotalloc
	}
	h.pos = h.pos[:n]
	for i := range h.pos {
		h.pos[i] = -1
	}
}

// push inserts node with the given key, or decreases its key in place
// when it is already queued. Keys never increase during Dijkstra, so
// an existing entry only ever sifts up.
func (h *nodeHeap) push(node NodeID, dist float64) {
	i := int(h.pos[node])
	if i < 0 {
		i = len(h.items)
		h.items = append(h.items, heapItem{node, dist})
	}
	it := heapItem{node, dist}
	for i > 0 {
		parent := (i - 1) >> 2
		if !heapLess(it, h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		h.pos[h.items[i].node] = int32(i)
		i = parent
	}
	h.items[i] = it
	h.pos[node] = int32(i)
}

// pop removes and returns the minimum item.
func (h *nodeHeap) pop() heapItem {
	top := h.items[0]
	h.pos[top.node] = -1
	last := len(h.items) - 1
	it := h.items[last]
	h.items = h.items[:last]
	if last == 0 {
		return top
	}
	// Sift the former tail down from the root.
	i := 0
	for {
		first := i<<2 + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if heapLess(h.items[c], h.items[min]) {
				min = c
			}
		}
		if !heapLess(h.items[min], it) {
			break
		}
		h.items[i] = h.items[min]
		h.pos[h.items[i].node] = int32(i)
		i = min
	}
	h.items[i] = it
	h.pos[it.node] = int32(i)
	return top
}
