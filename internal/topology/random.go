package topology

import (
	"fmt"
	"math/rand"
)

// RandomConfig parameterises the flat random topologies used for the
// paper's Fig. 8/9 network-wide comparison ("random topologies generated
// by GT-ITM", network size 50, average node degree 3 and 5).
//
// The generator builds a random spanning tree first (guaranteeing
// connectivity, as GT-ITM's post-filtering does) and then adds uniformly
// random extra edges until the average degree target is met. Link costs
// are uniform in [MinCost, MaxCost]; link delay is uniform in (0, cost],
// matching the Waxman convention used elsewhere in the evaluation.
type RandomConfig struct {
	N         int
	AvgDegree float64
	MinCost   float64 // default 1
	MaxCost   float64 // default 100
}

// DefaultRandom returns the paper's Fig. 8/9 configuration for the given
// average degree (3 or 5 in the paper).
func DefaultRandom(n int, avgDegree float64) RandomConfig {
	return RandomConfig{N: n, AvgDegree: avgDegree, MinCost: 1, MaxCost: 100}
}

// Random generates a connected random graph with approximately the target
// average degree.
func Random(cfg RandomConfig, rng *rand.Rand) (*Graph, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("topology: Random needs N > 0, got %d", cfg.N)
	}
	if cfg.AvgDegree < 2 && cfg.N > 2 {
		return nil, fmt.Errorf("topology: Random needs AvgDegree >= 2 for connectivity, got %g", cfg.AvgDegree)
	}
	maxDeg := float64(cfg.N - 1)
	if cfg.AvgDegree > maxDeg {
		return nil, fmt.Errorf("topology: AvgDegree %g impossible with N=%d", cfg.AvgDegree, cfg.N)
	}
	if cfg.MinCost <= 0 {
		cfg.MinCost = 1
	}
	if cfg.MaxCost < cfg.MinCost {
		cfg.MaxCost = cfg.MinCost
	}
	g := New(cfg.N)
	newEdge := func(u, v NodeID) {
		cost := cfg.MinCost + rng.Float64()*(cfg.MaxCost-cfg.MinCost)
		delay := rng.Float64() * cost
		if delay <= 0 {
			delay = cost / 2
		}
		g.MustAddEdge(u, v, delay, cost)
	}

	// Random spanning tree: attach each node (in random order) to a
	// uniformly chosen already-attached node.
	perm := rng.Perm(cfg.N)
	for i := 1; i < cfg.N; i++ {
		u := NodeID(perm[i])
		v := NodeID(perm[rng.Intn(i)])
		newEdge(u, v)
	}

	// Top up to the target edge count.
	target := int(cfg.AvgDegree * float64(cfg.N) / 2)
	maxEdges := cfg.N * (cfg.N - 1) / 2
	if target > maxEdges {
		target = maxEdges
	}
	for g.M() < target {
		u := NodeID(rng.Intn(cfg.N))
		v := NodeID(rng.Intn(cfg.N))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		newEdge(u, v)
	}
	return g, nil
}
