package topology

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWaxmanPaperConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wg, err := Waxman(DefaultWaxman(100), rng)
	if err != nil {
		t.Fatal(err)
	}
	if wg.N() != 100 {
		t.Fatalf("N = %d", wg.N())
	}
	if !wg.Connected() {
		t.Fatal("DefaultWaxman graph must be connected")
	}
	if len(wg.Pos) != 100 {
		t.Fatalf("positions = %d", len(wg.Pos))
	}
	for _, p := range wg.Pos {
		if p.X < 0 || p.X > 32767 || p.Y < 0 || p.Y > 32767 {
			t.Fatalf("position %v off grid", p)
		}
	}
}

func TestWaxmanLinkAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	wg, err := Waxman(DefaultWaxman(60), rng)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < wg.N(); u++ {
		for _, l := range wg.Neighbors(NodeID(u)) {
			d := Manhattan(wg.Pos[u], wg.Pos[l.To])
			wantCost := math.Max(d, 1)
			if l.Cost != wantCost {
				t.Fatalf("edge %d-%d cost %g, want Manhattan %g", u, l.To, l.Cost, wantCost)
			}
			if l.Delay <= 0 || l.Delay > l.Cost {
				t.Fatalf("edge %d-%d delay %g outside (0, cost=%g]", u, l.To, l.Delay, l.Cost)
			}
		}
	}
}

func TestWaxmanBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Waxman(WaxmanConfig{N: 0, Alpha: 1, Beta: 1}, rng); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Waxman(WaxmanConfig{N: 5, Alpha: 0, Beta: 1}, rng); err == nil {
		t.Error("Alpha=0 accepted")
	}
	if _, err := Waxman(WaxmanConfig{N: 5, Alpha: 1, Beta: -1}, rng); err == nil {
		t.Error("Beta<0 accepted")
	}
}

func TestWaxmanAlphaBetaEffect(t *testing.T) {
	// Larger beta must raise average degree substantially (paper: "increasing
	// beta increases the degree of each node"). Compare beta 0.1 vs 0.6 over
	// several seeds; disable Connect so stitching doesn't blur the signal.
	mean := func(beta float64) float64 {
		total := 0.0
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			cfg := WaxmanConfig{N: 80, Alpha: 0.25, Beta: beta, Connect: false}
			wg, err := Waxman(cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += wg.AvgDegree()
		}
		return total / 5
	}
	lo, hi := mean(0.1), mean(0.6)
	if hi <= lo*2 {
		t.Fatalf("beta effect too weak: deg(0.1)=%g deg(0.6)=%g", lo, hi)
	}
}

func TestRandomDegreeTarget(t *testing.T) {
	for _, deg := range []float64{3, 5} {
		rng := rand.New(rand.NewSource(11))
		g, err := Random(DefaultRandom(50, deg), rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("deg %g graph disconnected", deg)
		}
		if math.Abs(g.AvgDegree()-deg) > 0.2 {
			t.Fatalf("AvgDegree = %g, want ~%g", g.AvgDegree(), deg)
		}
	}
}

func TestRandomBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(RandomConfig{N: 0, AvgDegree: 3}, rng); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Random(RandomConfig{N: 10, AvgDegree: 1}, rng); err == nil {
		t.Error("AvgDegree=1 accepted")
	}
	if _, err := Random(RandomConfig{N: 10, AvgDegree: 50}, rng); err == nil {
		t.Error("impossible AvgDegree accepted")
	}
}

// Property: Random() always yields a connected graph with positive link
// attributes and delay <= cost.
func TestPropertyRandomInvariants(t *testing.T) {
	f := func(seed int64, rawN, rawDeg uint8) bool {
		n := 3 + int(rawN)%40
		deg := 2 + float64(rawDeg%3)
		if deg > float64(n-1) {
			deg = float64(n - 1)
		}
		rng := rand.New(rand.NewSource(seed))
		g, err := Random(DefaultRandom(n, deg), rng)
		if err != nil {
			return false
		}
		if !g.Connected() {
			return false
		}
		for u := 0; u < g.N(); u++ {
			for _, l := range g.Neighbors(NodeID(u)) {
				if l.Delay <= 0 || l.Cost <= 0 || l.Delay > l.Cost {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestArpanetFixed(t *testing.T) {
	a, b := Arpanet(), Arpanet()
	if a.N() != ArpanetN || a.M() != len(arpanetEdges) {
		t.Fatalf("N=%d M=%d", a.N(), a.M())
	}
	if !a.Connected() {
		t.Fatal("ARPANET must be connected")
	}
	// Two calls must produce identical instances.
	for u := 0; u < a.N(); u++ {
		la, lb := a.Neighbors(NodeID(u)), b.Neighbors(NodeID(u))
		if len(la) != len(lb) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("node %d link %d differs: %+v vs %+v", u, i, la[i], lb[i])
			}
		}
	}
	if d := a.AvgDegree(); d < 2.8 || d > 3.4 {
		t.Fatalf("ARPANET avg degree = %g, want ~3.1", d)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 3, 6)
	g.MustAddEdge(1, 2, 4, 5)
	var buf bytes.Buffer
	hl := map[[2]NodeID]bool{{1, 0}: true}
	if err := WriteDOT(&buf, g, "", hl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"topology\"", "0 -- 1", "1 -- 2", "(3,6)", "style=bold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "style=bold") != 1 {
		t.Fatalf("want exactly one bold edge:\n%s", out)
	}
}
