package topology

import (
	"math"
	"testing"

	"scmp/internal/rng"
)

func partitionTestGraph(t *testing.T) *Graph {
	t.Helper()
	wg, err := Waxman(DefaultWaxman(100), rng.New(42))
	if err != nil {
		t.Fatalf("Waxman: %v", err)
	}
	return wg.Graph
}

func TestPartitionDeterministicAndComplete(t *testing.T) {
	g := partitionTestGraph(t)
	for _, k := range []int{1, 2, 4, 8} {
		a := Partition(g, k, 7)
		b := Partition(g, k, 7)
		if len(a) != g.N() {
			t.Fatalf("k=%d: assignment has %d entries, want %d", k, len(a), g.N())
		}
		sizes := make([]int, k)
		for v, p := range a {
			if p != b[v] {
				t.Fatalf("k=%d: assignment not deterministic at node %d: %d vs %d", k, v, p, b[v])
			}
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: node %d assigned out-of-range part %d", k, v, p)
			}
			sizes[p]++
		}
		for p, sz := range sizes {
			if sz == 0 {
				t.Fatalf("k=%d: part %d is empty (farthest-point seeding must fill every part)", k, p)
			}
		}
	}
}

func TestPartitionSeedSensitivity(t *testing.T) {
	g := partitionTestGraph(t)
	a := Partition(g, 4, 1)
	b := Partition(g, 4, 2)
	same := true
	for v := range a {
		if a[v] != b[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 4-way cuts; seeding is not wired through")
	}
}

func TestPartitionClampsAndSerial(t *testing.T) {
	g := partitionTestGraph(t)
	for _, p := range Partition(g, 1, 3) {
		if p != 0 {
			t.Fatal("k=1 must be the all-zero serial assignment")
		}
	}
	// k beyond n clamps: every node becomes its own part.
	small := New(3)
	if err := small.AddEdge(0, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := small.AddEdge(1, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	part := Partition(small, 10, 5)
	seen := map[int32]bool{}
	for _, p := range part {
		if seen[p] {
			t.Fatalf("k>n: part %d assigned twice in %v", p, part)
		}
		seen[p] = true
	}
}

// TestPartitionByDomainTransitStub checks the domain-aligned sharding
// on the hierarchical topology it exists for: with enough parts every
// domain keeps its own shard and the conservative lookahead is exactly
// the shortest *border* link; with fewer parts domains are bin-packed
// whole — never split — so the lookahead can only grow coarser, not
// finer than a domain boundary.
func TestPartitionByDomainTransitStub(t *testing.T) {
	g, info, err := TransitStub(DefaultTransitStub(), rng.New(19))
	if err != nil {
		t.Fatalf("TransitStub: %v", err)
	}
	nd := 0
	for _, d := range info.Domain {
		if d+1 > nd {
			nd = d + 1
		}
	}

	// k >= domain count: the identity sharding, one domain per part.
	part := PartitionByDomain(info.Domain, nd)
	for v, d := range info.Domain {
		if part[v] != int32(d) {
			t.Fatalf("k=nd: node %d in part %d, want its domain %d", v, part[v], d)
		}
	}
	// The lookahead is the true minimum over domain-crossing links.
	want := math.Inf(1)
	intra := math.Inf(1)
	c := g.CSR()
	for u := 0; u < c.N(); u++ {
		lo, hi := c.Row(NodeID(u))
		for a := lo; a < hi; a++ {
			if info.Domain[c.ArcDst(a)] != info.Domain[u] {
				want = math.Min(want, c.ArcDelay(a))
			} else {
				intra = math.Min(intra, c.ArcDelay(a))
			}
		}
	}
	got := MinCrossDelay(g, part)
	if got != want {
		t.Fatalf("MinCrossDelay = %v, min border-link delay = %v", got, want)
	}
	// The point of domain-aligned sharding: border links are long, so
	// the lookahead beats the shortest link a blind cut could expose.
	if !(got > intra) {
		t.Fatalf("border lookahead %v not above the shortest intra-domain link %v", got, intra)
	}

	// k < domain count: domains are bin-packed whole onto the parts.
	for _, k := range []int{2, 4, 8} {
		packed := PartitionByDomain(info.Domain, k)
		domPart := make(map[int]int32, nd)
		sizes := make([]int, k)
		for v, d := range info.Domain {
			p := packed[v]
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: node %d assigned out-of-range part %d", k, v, p)
			}
			if prev, ok := domPart[d]; ok && prev != p {
				t.Fatalf("k=%d: domain %d split across parts %d and %d", k, d, prev, p)
			}
			domPart[d] = p
			sizes[p]++
		}
		for p, sz := range sizes {
			if sz == 0 {
				t.Fatalf("k=%d: part %d is empty", k, p)
			}
		}
		// Whole-domain packing ⇒ every crossing is a domain crossing ⇒
		// the lookahead is at least the border minimum.
		if l := MinCrossDelay(g, packed); l < want {
			t.Fatalf("k=%d: lookahead %v below the border minimum %v", k, l, want)
		}
	}

	// k=1 is the serial all-zero assignment.
	for _, p := range PartitionByDomain(info.Domain, 1) {
		if p != 0 {
			t.Fatal("k=1 must be the all-zero serial assignment")
		}
	}
}

func TestMinCrossDelay(t *testing.T) {
	g := partitionTestGraph(t)
	part := Partition(g, 4, 7)
	l := MinCrossDelay(g, part)
	if !(l > 0) || math.IsInf(l, 1) {
		t.Fatalf("4-way cut of a connected graph: MinCrossDelay = %v, want finite positive", l)
	}
	// Verify it is the true minimum over crossing arcs.
	c := g.CSR()
	min := math.Inf(1)
	for u := 0; u < c.N(); u++ {
		lo, hi := c.Row(NodeID(u))
		for a := lo; a < hi; a++ {
			if part[c.ArcDst(a)] != part[u] && c.ArcDelay(a) < min {
				min = c.ArcDelay(a)
			}
		}
	}
	if l != min {
		t.Fatalf("MinCrossDelay = %v, brute force = %v", l, min)
	}
	if got := MinCrossDelay(g, Partition(g, 1, 7)); !math.IsInf(got, 1) {
		t.Fatalf("serial assignment has no crossing arcs; MinCrossDelay = %v, want +Inf", got)
	}
}
