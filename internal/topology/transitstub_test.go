package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransitStubDefaultShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, info, err := TransitStub(DefaultTransitStub(), rng)
	if err != nil {
		t.Fatal(err)
	}
	wantN := 4*4 + 4*4*2*3
	if g.N() != wantN {
		t.Fatalf("N = %d, want %d", g.N(), wantN)
	}
	if !g.Connected() {
		t.Fatal("transit-stub graph disconnected")
	}
	transit := info.TransitNodes()
	if len(transit) != 16 {
		t.Fatalf("transit nodes = %d, want 16", len(transit))
	}
	for _, v := range transit {
		if info.Attachment[v] != -1 {
			t.Fatalf("transit node %d has an attachment", v)
		}
	}
}

func TestTransitStubHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultTransitStub()
	g, info, err := TransitStub(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if info.Roles[v] != RoleStub {
			continue
		}
		anchor := info.Attachment[v]
		if anchor < 0 || info.Roles[anchor] != RoleTransit {
			t.Fatalf("stub %d anchored to %d (role %v)", v, anchor, info.Roles[anchor])
		}
		// Stub nodes never link directly into another domain except via
		// their own gateway edge to the anchor transit node.
		for _, l := range g.Neighbors(NodeID(v)) {
			sameDomain := info.Domain[l.To] == info.Domain[v]
			isAnchor := l.To == anchor
			if !sameDomain && !isAnchor {
				t.Fatalf("stub %d has a foreign link to %d", v, l.To)
			}
		}
	}
}

func TestTransitStubCostBands(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, info, err := TransitStub(DefaultTransitStub(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for _, l := range g.Neighbors(NodeID(u)) {
			if NodeID(u) > l.To {
				continue
			}
			v := l.To
			var lo, hi float64
			switch {
			case info.Roles[u] == RoleTransit && info.Roles[v] == RoleTransit && info.Domain[u] != info.Domain[v]:
				lo, hi = tsInterTransitCost, tsInterTransitCost*tsCostSpread
			case info.Roles[u] == RoleTransit && info.Roles[v] == RoleTransit:
				lo, hi = tsIntraTransitCost, tsIntraTransitCost*tsCostSpread
			case info.Roles[u] != info.Roles[v]:
				lo, hi = tsTransitStubCost, tsTransitStubCost*tsCostSpread
			default:
				lo, hi = tsIntraStubCost, tsIntraStubCost*tsCostSpread
			}
			if l.Cost < lo || l.Cost >= hi {
				t.Fatalf("edge %d-%d cost %g outside band [%g, %g)", u, v, l.Cost, lo, hi)
			}
			if l.Delay <= 0 || l.Delay > l.Cost {
				t.Fatalf("edge %d-%d delay %g outside (0, cost]", u, v, l.Delay)
			}
		}
	}
}

func TestTransitStubBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []TransitStubConfig{
		{TransitDomains: 0, TransitSize: 1, StubSize: 1},
		{TransitDomains: 1, TransitSize: 0, StubSize: 1},
		{TransitDomains: 1, TransitSize: 1, StubSize: 0},
		{TransitDomains: 1, TransitSize: 1, StubsPerTransitNode: -1, StubSize: 1},
	}
	for _, cfg := range bad {
		if _, _, err := TransitStub(cfg, rng); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestTransitStubNoStubs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := TransitStubConfig{TransitDomains: 2, TransitSize: 3, StubsPerTransitNode: 0, StubSize: 1}
	g, info, err := TransitStub(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || len(info.TransitNodes()) != 6 {
		t.Fatalf("N=%d transit=%d", g.N(), len(info.TransitNodes()))
	}
	if !g.Connected() {
		t.Fatal("backbone-only graph disconnected")
	}
}

// Property: the generator always produces a connected graph with a
// consistent hierarchy, across random configurations.
func TestPropertyTransitStubInvariants(t *testing.T) {
	f := func(seed int64, td, ts, spt, ss uint8) bool {
		cfg := TransitStubConfig{
			TransitDomains:      1 + int(td)%4,
			TransitSize:         1 + int(ts)%4,
			StubsPerTransitNode: int(spt) % 3,
			StubSize:            1 + int(ss)%4,
		}
		rng := rand.New(rand.NewSource(seed))
		g, info, err := TransitStub(cfg, rng)
		if err != nil {
			return false
		}
		if !g.Connected() {
			return false
		}
		transitCount := 0
		for v := 0; v < g.N(); v++ {
			switch info.Roles[v] {
			case RoleTransit:
				transitCount++
				if info.Attachment[v] != -1 {
					return false
				}
			case RoleStub:
				a := info.Attachment[v]
				if a < 0 || info.Roles[a] != RoleTransit {
					return false
				}
			}
		}
		return transitCount == cfg.TransitDomains*cfg.TransitSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
