package topology

import (
	"container/heap"
	"math"
)

// This file preserves the original container/heap Dijkstra as the
// reference implementation the fast engine is differentially tested
// against (see equivalence_test.go). It is test-only: nothing in the
// production paths calls it, and the linker drops it from binaries.
//
// The only change from the historical code is the same explicit
// relaxation tie-break the engine uses — on an exact dist tie the
// lower-id predecessor wins — which makes the reference's output a pure
// function of the graph rather than of container/heap's sift order, so
// "fast == ref" is a meaningful exact-equality gate.

type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist < q[j].dist {
		return true
	}
	if q[j].dist < q[i].dist {
		return false
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// shortestRef runs Dijkstra from src under w using container/heap and
// per-link weight evaluation — the slow path the engine must match
// exactly.
func shortestRef(g *Graph, src NodeID, w Weight, avoid AvoidFunc) *Paths {
	n := g.N()
	p := &Paths{
		Src:    src,
		Dist:   make([]float64, n),
		Delay:  make([]float64, n),
		Cost:   make([]float64, n),
		Parent: make([]NodeID, n),
	}
	for i := range p.Dist {
		p.Dist[i] = math.Inf(1)
		p.Delay[i] = math.Inf(1)
		p.Cost[i] = math.Inf(1)
		p.Parent[i] = -1
	}
	if n == 0 || !g.valid(src) {
		return p
	}
	p.Dist[src], p.Delay[src], p.Cost[src] = 0, 0, 0
	done := make([]bool, n)
	q := pq{{src, 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, l := range g.adj[u] {
			if avoid != nil && avoid(u, l.To) {
				continue
			}
			d := p.Dist[u] + w.Of(l)
			if d < p.Dist[l.To] {
				p.Dist[l.To] = d
				p.Delay[l.To] = p.Delay[u] + l.Delay
				p.Cost[l.To] = p.Cost[u] + l.Cost
				p.Parent[l.To] = u
				heap.Push(&q, pqItem{l.To, d})
			} else if d == p.Dist[l.To] && u < p.Parent[l.To] && !done[l.To] {
				p.Delay[l.To] = p.Delay[u] + l.Delay
				p.Cost[l.To] = p.Cost[u] + l.Cost
				p.Parent[l.To] = u
			}
		}
	}
	return p
}

// nextHopRowRef derives u's next-hop row from a shortest-path tree the
// historical way — an uncompressed parent walk per destination — for
// the next-hop equivalence tests.
func nextHopRowRef(sp *Paths, u NodeID, n int) []NodeID {
	row := make([]NodeID, n)
	for v := 0; v < n; v++ {
		row[v] = -1
		if NodeID(v) == u || !sp.Reachable(NodeID(v)) {
			continue
		}
		w := NodeID(v)
		for sp.Parent[w] != u {
			w = sp.Parent[w]
		}
		row[v] = w
	}
	return row
}
