package topology

import "scmp/internal/runner"

// NextHopTable is the unicast forwarding table implied by shortest-delay
// routing, flattened to one contiguous []NodeID (row-major: entry
// (u, v) lives at u*n+v). Hop(u, v) is the first hop on u's
// shortest-delay path to v, or -1 when v is u or unreachable. The flat
// layout replaces the old [][]NodeID: a single allocation, no per-row
// pointer chase on the packet forwarding path, and row writes that
// shard cleanly over workers.
type NextHopTable struct {
	n    int
	hops []NodeID
}

// N returns the node count the table covers.
func (t *NextHopTable) N() int { return t.n }

// Hop returns the first hop on u's shortest-delay path to v (-1 when
// v == u or v is unreachable).
func (t *NextHopTable) Hop(u, v NodeID) NodeID {
	return t.hops[int(u)*t.n+int(v)]
}

// Row returns u's row of the table. The slice aliases the table and
// must not be mutated.
func (t *NextHopTable) Row(u NodeID) []NodeID {
	return t.hops[int(u)*t.n : (int(u)+1)*t.n]
}

// NextHop computes the unicast forwarding table implied by
// shortest-delay routing. This is the "link state unicast routing
// protocol" substrate the paper assumes every domain runs.
func NextHop(g *Graph) *NextHopTable {
	return NextHopAvoid(g, nil)
}

// NextHopAvoid is NextHop over the subgraph that excludes avoided links
// — the unicast substrate reconverged after a topology change. Source
// rows are independent single-source problems, so they are sharded over
// the deterministic worker pool; each worker reuses one engine and one
// transient Paths row, writing first hops straight into its disjoint
// slice of the table.
func NextHopAvoid(g *Graph, avoid AvoidFunc) *NextHopTable {
	n := g.N()
	t := &NextHopTable{n: n, hops: make([]NodeID, n*n)}
	chunks := (n + allPairsChunk - 1) / allPairsChunk
	fill := func(e *Engine, row *Paths, stack []NodeID, u int) []NodeID {
		e.ShortestInto(row, NodeID(u), ByDelay, avoid)
		return fillFirstHops(t.hops[u*n:(u+1)*n], row, NodeID(u), stack)
	}
	if chunks <= 1 {
		e := NewEngine(g)
		var row Paths
		var stack []NodeID
		for u := 0; u < n; u++ {
			stack = fill(e, &row, stack, u)
		}
		return t
	}
	runner.Map(runner.Options{}, chunks, func(ci int) struct{} {
		e := NewEngine(g)
		var row Paths
		var stack []NodeID
		lo := ci * allPairsChunk
		hi := lo + allPairsChunk
		if hi > n {
			hi = n
		}
		for u := lo; u < hi; u++ {
			stack = fill(e, &row, stack, u)
		}
		return struct{}{}
	})
	return t
}

// fillFirstHops writes u's next-hop row into dst from a shortest-path
// tree, memoising resolved prefixes so the whole row costs O(n) parent
// steps instead of one root walk per destination. stack is caller-owned
// scratch, returned for reuse.
func fillFirstHops(dst []NodeID, sp *Paths, u NodeID, stack []NodeID) []NodeID {
	for v := range dst {
		dst[v] = -1
	}
	for v := range dst {
		if NodeID(v) == u || sp.Parent[v] == -1 || dst[v] != -1 {
			continue
		}
		// Walk rootward until we hit the source or a node whose first
		// hop is already known, then unwind the walked suffix.
		w := NodeID(v)
		stack = stack[:0]
		for dst[w] == -1 && sp.Parent[w] != u {
			stack = append(stack, w)
			w = sp.Parent[w]
		}
		fh := dst[w]
		if fh == -1 {
			fh = w // sp.Parent[w] == u: w itself is the first hop
			dst[w] = w
		}
		for _, x := range stack {
			dst[x] = fh
		}
	}
	return stack
}
