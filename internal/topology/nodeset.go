package topology

import "sort"

// SortedNodes returns the keys of a node set in ascending order. Map
// iteration order is randomised per run, so any protocol-visible walk
// over a node set (forwarding a packet to each downstream neighbour,
// flushing stale branches, …) must go through a sorted slice to keep
// runs reproducible. The maporder analyzer in internal/lint flags the
// raw ranges this helper replaces.
func SortedNodes(set map[NodeID]bool) []NodeID {
	nodes := make([]NodeID, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}
