package topology

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the graph in Graphviz DOT format, labelling each edge
// with "(delay, cost)" like the paper's Fig. 5. highlight, if non-nil,
// marks a set of directed tree edges (child -> parent) to draw bold.
func WriteDOT(w io.Writer, g *Graph, name string, highlight map[[2]NodeID]bool) error {
	if name == "" {
		name = "topology"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	type edge struct {
		u, v NodeID
		l    Link
	}
	var edges []edge
	for u := 0; u < g.N(); u++ {
		for _, l := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < l.To {
				edges = append(edges, edge{NodeID(u), l.To, l})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		attrs := fmt.Sprintf("label=\"(%.0f,%.0f)\"", e.l.Delay, e.l.Cost)
		if highlight != nil && (highlight[[2]NodeID{e.u, e.v}] || highlight[[2]NodeID{e.v, e.u}]) {
			attrs += ", style=bold, color=red"
		}
		if _, err := fmt.Fprintf(w, "  %d -- %d [%s];\n", e.u, e.v, attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
