package topology

import "scmp/internal/rng"

// arpanetEdges is the classic 20-node ARPANET map widely used as a fixed
// reference topology in multicast-routing evaluations (the paper uses
// "the ARPANET" as one of its three Fig. 8/9 topologies). 31 undirected
// links, average node degree ~3.1.
var arpanetEdges = [][2]NodeID{
	{0, 1}, {0, 2}, {0, 19},
	{1, 2}, {1, 13},
	{2, 3}, {2, 5},
	{3, 4}, {3, 9},
	{4, 5}, {4, 8},
	{5, 6},
	{6, 7}, {6, 9},
	{7, 8},
	{8, 9},
	{9, 10},
	{10, 11}, {10, 12},
	{11, 12}, {11, 14},
	{12, 13}, {12, 17},
	{13, 14},
	{14, 15}, {14, 18},
	{15, 16},
	{16, 17}, {16, 19},
	{17, 18},
	{18, 19},
}

// ArpanetN is the number of nodes in the ARPANET reference topology.
const ArpanetN = 20

// Arpanet returns the fixed 20-node ARPANET reference topology. Link
// delays and costs are drawn once from a fixed seed, so every call
// returns an identical instance (cost uniform in [10,100), delay uniform
// in (0, cost], matching the conventions of the random generators).
func Arpanet() *Graph {
	rng := rng.New(1969) // ARPANET's birth year; fixed instance
	g := New(ArpanetN)
	for _, e := range arpanetEdges {
		cost := 10 + rng.Float64()*90
		delay := rng.Float64() * cost
		if delay <= 0 {
			delay = cost / 2
		}
		g.MustAddEdge(e[0], e[1], delay, cost)
	}
	return g
}
