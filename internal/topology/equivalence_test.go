package topology

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// This file is the differential-equivalence gate for the fast routing
// engine: on every tested topology family, with and without avoid
// masks, the CSR/4-ary-heap engine must produce EXACTLY the same
// Dist/Delay/Cost/Parent rows and next-hop tables as the preserved
// container/heap reference (ref.go). Exact float equality is
// intentional — both implementations accumulate delay and cost in the
// same parent-chain order, so agreement is bit-for-bit, and any drift
// is a real behaviour change, not representation noise.

// equivGraphs builds the test topologies: random Waxman instances,
// transit-stub hierarchies, flat random graphs, the fixed ARPANET map,
// and degenerate shapes (empty, single node, disconnected).
func equivGraphs(t testing.TB) map[string]*Graph {
	graphs := map[string]*Graph{
		"arpanet": Arpanet(),
		"empty":   New(0),
		"single":  New(1),
	}
	for seed := int64(1); seed <= 3; seed++ {
		wg, err := Waxman(DefaultWaxman(60), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("waxman seed %d: %v", seed, err)
		}
		graphs[fmt.Sprintf("waxman%d", seed)] = wg.Graph

		rg, err := Random(DefaultRandom(40, 3.5), rand.New(rand.NewSource(seed+100)))
		if err != nil {
			t.Fatalf("random seed %d: %v", seed, err)
		}
		graphs[fmt.Sprintf("rand%d", seed)] = rg
	}
	ts, _, err := TransitStub(DefaultTransitStub(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("transit-stub: %v", err)
	}
	graphs["transitstub"] = ts

	// Disconnected: two components, so unreachable rows are exercised.
	dg := New(6)
	dg.MustAddEdge(0, 1, 1.5, 2.5)
	dg.MustAddEdge(1, 2, 2.5, 1.5)
	dg.MustAddEdge(3, 4, 1.25, 3.5)
	dg.MustAddEdge(4, 5, 3.5, 1.25)
	graphs["disconnected"] = dg
	return graphs
}

// equivAvoids builds the avoid masks to test under: none, a random
// subset of links down, and a node-down mask (every link touching the
// node refused) — the two shapes fault injection produces.
func equivAvoids(g *Graph, seed int64) map[string]AvoidFunc {
	avoids := map[string]AvoidFunc{"none": nil}
	if g.N() < 4 {
		return avoids
	}
	rng := rand.New(rand.NewSource(seed))
	down := map[[2]NodeID]bool{}
	for u := 0; u < g.N(); u++ {
		for _, l := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < l.To && rng.Float64() < 0.15 {
				down[[2]NodeID{NodeID(u), l.To}] = true
			}
		}
	}
	avoids["links-down"] = func(u, v NodeID) bool {
		if u > v {
			u, v = v, u
		}
		return down[[2]NodeID{u, v}]
	}
	crashed := NodeID(rng.Intn(g.N()))
	avoids["node-down"] = func(u, v NodeID) bool { return u == crashed || v == crashed }
	return avoids
}

// samePaths fails the test unless a and b agree exactly on every field.
func samePaths(t *testing.T, label string, a, b *Paths) {
	t.Helper()
	if a.Src != b.Src || len(a.Dist) != len(b.Dist) {
		t.Fatalf("%s: shape mismatch src %d/%d len %d/%d", label, a.Src, b.Src, len(a.Dist), len(b.Dist))
	}
	for v := range a.Dist {
		// Exact comparison, Inf==Inf included: both sides must pick the
		// same parent chain and therefore the same sums. (NaN never
		// occurs: weights are finite and positive.)
		if a.Dist[v] != b.Dist[v] || a.Delay[v] != b.Delay[v] ||
			a.Cost[v] != b.Cost[v] || a.Parent[v] != b.Parent[v] {
			t.Fatalf("%s: node %d differs: dist %v/%v delay %v/%v cost %v/%v parent %d/%d",
				label, v, a.Dist[v], b.Dist[v], a.Delay[v], b.Delay[v],
				a.Cost[v], b.Cost[v], a.Parent[v], b.Parent[v])
		}
	}
}

// TestEquivalenceEngineVsReference is the main differential gate: fast
// engine vs container/heap reference, every topology family, every
// source, both weights, all avoid masks.
func TestEquivalenceEngineVsReference(t *testing.T) {
	for name, g := range equivGraphs(t) {
		for avoidName, avoid := range equivAvoids(g, 42) {
			for _, w := range []Weight{ByDelay, ByCost} {
				e := NewEngine(g)
				for src := 0; src < g.N(); src++ {
					fast := e.ShortestAvoid(NodeID(src), w, avoid)
					ref := shortestRef(g, NodeID(src), w, avoid)
					label := fmt.Sprintf("%s/%s/%s/src%d", name, avoidName, w, src)
					samePaths(t, label, fast, ref)
				}
			}
		}
	}
}

// TestEquivalenceAllPairsModes checks that the eager (parallel), lazy,
// and forced-serial all-pairs builds return identical rows — the
// deterministic-merge claim for the sharded table.
func TestEquivalenceAllPairsModes(t *testing.T) {
	for name, g := range equivGraphs(t) {
		for avoidName, avoid := range equivAvoids(g, 7) {
			for _, w := range []Weight{ByDelay, ByCost} {
				serial := func() *AllPairs {
					prev := runtime.GOMAXPROCS(1)
					defer runtime.GOMAXPROCS(prev)
					return NewAllPairsAvoid(g, w, avoid)
				}()
				parallel := func() *AllPairs {
					prev := runtime.GOMAXPROCS(4)
					defer runtime.GOMAXPROCS(prev)
					return NewAllPairsAvoid(g, w, avoid)
				}()
				lazy := NewLazyAllPairsAvoid(g, w, avoid)
				for src := 0; src < g.N(); src++ {
					label := fmt.Sprintf("%s/%s/%s/src%d", name, avoidName, w, src)
					samePaths(t, label+"/serial-vs-parallel", serial.Row(NodeID(src)), parallel.Row(NodeID(src)))
					samePaths(t, label+"/eager-vs-lazy", serial.Row(NodeID(src)), lazy.Row(NodeID(src)))
				}
				if got := lazy.Materialized(); got != g.N() {
					t.Fatalf("%s: lazy table materialised %d of %d rows after full scan", name, got, g.N())
				}
			}
		}
	}
}

// TestEquivalenceNextHop checks the flat parallel next-hop table
// against rows derived from the reference Dijkstra by the historical
// per-destination parent walk.
func TestEquivalenceNextHop(t *testing.T) {
	for name, g := range equivGraphs(t) {
		for avoidName, avoid := range equivAvoids(g, 13) {
			table := NextHopAvoid(g, avoid)
			if table.N() != g.N() {
				t.Fatalf("%s: table size %d, want %d", name, table.N(), g.N())
			}
			for u := 0; u < g.N(); u++ {
				ref := nextHopRowRef(shortestRef(g, NodeID(u), ByDelay, avoid), NodeID(u), g.N())
				for v := 0; v < g.N(); v++ {
					if got := table.Hop(NodeID(u), NodeID(v)); got != ref[v] {
						t.Fatalf("%s/%s: hop(%d,%d) = %d, want %d", name, avoidName, u, v, got, ref[v])
					}
				}
			}
		}
	}
}

// TestLazyAllPairsComputesOnlyConsultedRows pins the lazy table's
// central property: consulting k sources materialises exactly k rows.
func TestLazyAllPairsComputesOnlyConsultedRows(t *testing.T) {
	wg, err := Waxman(DefaultWaxman(50), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	ap := NewLazyAllPairs(wg.Graph, ByDelay)
	if got := ap.Materialized(); got != 0 {
		t.Fatalf("fresh lazy table has %d rows materialised", got)
	}
	for _, src := range []NodeID{0, 7, 7, 21} {
		ap.Row(src)
	}
	if got := ap.Materialized(); got != 3 {
		t.Fatalf("after consulting 3 distinct sources: %d rows materialised, want 3", got)
	}
}

// TestPropertyEngineEquivalenceFuzz is the randomized property check:
// arbitrary connected-or-not random graphs, random weights, random
// avoid masks, random sources — fast engine must equal the reference
// exactly on all of them.
func TestPropertyEngineEquivalenceFuzz(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 30
	}
	for seed := int64(0); seed < int64(iters); seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := New(n)
		// Random edge set with random positive weights; occasionally
		// duplicate weight values to push on the tie-break ladder.
		weights := []float64{0.5, 1, 1, 2, 2.5, 4}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.2 {
					var d, c float64
					if rng.Float64() < 0.5 {
						// Small discrete weight pool: exact float ties
						// between alternative paths become likely.
						d = weights[rng.Intn(len(weights))]
						c = weights[rng.Intn(len(weights))]
					} else {
						d = 0.1 + rng.Float64()*10
						c = 0.1 + rng.Float64()*10
					}
					g.MustAddEdge(NodeID(u), NodeID(v), d, c)
				}
			}
		}
		var avoid AvoidFunc
		if rng.Float64() < 0.5 {
			mask := rng.Int63()
			avoid = func(u, v NodeID) bool {
				if u > v {
					u, v = v, u
				}
				return mask>>(uint(u*7+v)%63)&1 == 1
			}
		}
		w := Weight(rng.Intn(2))
		src := NodeID(rng.Intn(n))
		fast := ShortestAvoid(g, src, w, avoid)
		ref := shortestRef(g, src, w, avoid)
		samePaths(t, fmt.Sprintf("fuzz seed %d (n=%d, w=%s)", seed, n, w), fast, ref)
	}
}

// TestEngineScratchReuseIsClean runs many sources through one engine
// and one reused Paths row, checking against fresh computations — the
// scratch buffers must not leak state between runs.
func TestEngineScratchReuseIsClean(t *testing.T) {
	wg, err := Waxman(DefaultWaxman(45), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	g := wg.Graph
	e := NewEngine(g)
	var row Paths
	for src := 0; src < g.N(); src++ {
		w := Weight(src % 2)
		e.ShortestInto(&row, NodeID(src), w, nil)
		fresh := shortestRef(g, NodeID(src), w, nil)
		samePaths(t, fmt.Sprintf("reuse src %d", src), &row, fresh)
	}
}
