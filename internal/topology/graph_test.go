package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1, 2)
	}
	return g
}

func TestAddEdgeSymmetric(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 3, 7)
	for _, pair := range [][2]NodeID{{0, 1}, {1, 0}} {
		l, ok := g.Edge(pair[0], pair[1])
		if !ok {
			t.Fatalf("edge %v missing", pair)
		}
		if l.Delay != 3 || l.Cost != 7 {
			t.Fatalf("edge %v = %+v, want delay 3 cost 7", pair, l)
		}
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestAddEdgeRejections(t *testing.T) {
	g := New(3)
	cases := []struct {
		name        string
		u, v        NodeID
		delay, cost float64
	}{
		{"self-loop", 1, 1, 1, 1},
		{"out of range", 0, 5, 1, 1},
		{"negative node", -1, 0, 1, 1},
		{"zero delay", 0, 1, 0, 1},
		{"zero cost", 0, 1, 1, 0},
		{"negative delay", 0, 1, -2, 1},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v, c.delay, c.cost); err == nil {
			t.Errorf("%s: AddEdge accepted", c.name)
		}
	}
	g.MustAddEdge(0, 1, 1, 1)
	if err := g.AddEdge(1, 0, 2, 2); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestConnected(t *testing.T) {
	g := line(t, 4)
	if !g.Connected() {
		t.Fatal("line graph should be connected")
	}
	g2 := New(4)
	g2.MustAddEdge(0, 1, 1, 1)
	g2.MustAddEdge(2, 3, 1, 1)
	if g2.Connected() {
		t.Fatal("two components reported connected")
	}
	comps := g2.Components()
	if len(comps) != 2 || len(comps[0]) != 2 {
		t.Fatalf("Components = %v", comps)
	}
	if New(0).Connected() == false {
		t.Fatal("empty graph should count as connected")
	}
	if New(1).Connected() == false {
		t.Fatal("singleton graph should count as connected")
	}
}

func TestDegreeAndAvgDegree(t *testing.T) {
	g := line(t, 3)
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("degrees = %d,%d", g.Degree(0), g.Degree(1))
	}
	want := 2 * 2.0 / 3.0
	if g.AvgDegree() != want {
		t.Fatalf("AvgDegree = %g, want %g", g.AvgDegree(), want)
	}
}

func TestTotalCost(t *testing.T) {
	g := line(t, 4) // 3 edges of cost 2
	if g.TotalCost() != 6 {
		t.Fatalf("TotalCost = %g, want 6", g.TotalCost())
	}
}

func TestDiameterLine(t *testing.T) {
	g := line(t, 5) // delay 1 per hop -> diameter 4
	d, u, v := g.Diameter()
	if d != 4 {
		t.Fatalf("diameter = %g, want 4", d)
	}
	if (u != 0 || v != 4) && (u != 4 || v != 0) {
		t.Fatalf("diameter endpoints = %d,%d", u, v)
	}
}

func TestClone(t *testing.T) {
	g := line(t, 3)
	c := g.Clone()
	c.MustAddEdge(0, 2, 1, 1)
	if g.HasEdge(0, 2) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.M() != g.M()+1 {
		t.Fatalf("clone M = %d, orig M = %d", c.M(), g.M())
	}
}

func TestComponentOrderIsBFS(t *testing.T) {
	g := line(t, 4)
	comp := g.Component(0)
	for i, v := range comp {
		if v != NodeID(i) {
			t.Fatalf("BFS order = %v", comp)
		}
	}
}

// Property: on random graphs, M equals the handshake count and every edge
// is seen identically from both sides.
func TestPropertySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := Random(DefaultRandom(20, 4), rng)
		if err != nil {
			return false
		}
		half := 0
		for u := 0; u < g.N(); u++ {
			for _, l := range g.Neighbors(NodeID(u)) {
				back, ok := g.Edge(l.To, NodeID(u))
				if !ok || back.Delay != l.Delay || back.Cost != l.Cost {
					return false
				}
				half++
			}
		}
		return half == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
