package topology

import "math"

// Engine runs Dijkstra over a graph's CSR view with reusable scratch
// buffers, so repeated single-source runs (all-pairs shards, next-hop
// table rows, per-source experiment loops) stop allocating. An Engine
// is NOT safe for concurrent use — give each worker its own; they share
// the immutable CSR underneath.
//
// Determinism: the result of a run is a pure function of
// (graph, src, weight, avoid), independent of heap internals and of
// neighbour scan order, because ties are broken explicitly twice over:
// the heap pops equal-dist nodes in node-id order, and the relaxation
// step prefers the lower-id predecessor on an exact dist tie. With
// strictly positive link weights every predecessor that achieves a
// node's final distance settles strictly before that node does, so by
// the time a node is popped its parent is the minimum-id predecessor
// among all optimal ones — no matter which worker computed the row or
// in what order the heap happened to surface equal keys. That is the
// argument that lets all-pairs rows be computed on any number of
// workers, or lazily at any later time, and still merge byte-identical.
type Engine struct {
	csr  *CSR
	done []bool
	heap nodeHeap
}

// NewEngine returns an engine over g's CSR view (built on first use and
// cached on the graph).
func NewEngine(g *Graph) *Engine {
	return &Engine{csr: g.CSR()}
}

// Shortest runs Dijkstra from src under w, allocating a fresh Paths.
func (e *Engine) Shortest(src NodeID, w Weight) *Paths {
	return e.ShortestAvoid(src, w, nil)
}

// ShortestAvoid is Shortest over the subgraph that excludes avoided
// links. The returned Paths is freshly allocated and owned by the
// caller; only the engine's internal scratch (heap, done set) is
// reused.
func (e *Engine) ShortestAvoid(src NodeID, w Weight, avoid AvoidFunc) *Paths {
	p := &Paths{}
	e.ShortestInto(p, src, w, avoid)
	return p
}

// ShortestInto runs Dijkstra from src under w, writing the result into
// p's existing buffers (grown only when the graph is larger than any
// previous run). Callers that consume a row transiently — next-hop
// construction, per-source sweeps — reuse one Paths across sources and
// allocate nothing after the first call.
//
//scmplint:hotpath
func (e *Engine) ShortestInto(p *Paths, src NodeID, w Weight, avoid AvoidFunc) {
	n := e.csr.N()
	p.Src = src
	p.Dist = growFloats(p.Dist, n)
	p.Delay = growFloats(p.Delay, n)
	p.Cost = growFloats(p.Cost, n)
	p.Parent = growNodes(p.Parent, n)
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		p.Dist[i] = inf
		p.Delay[i] = inf
		p.Cost[i] = inf
		p.Parent[i] = -1
	}
	if n == 0 || src < 0 || int(src) >= n {
		return
	}
	e.done = growBools(e.done, n)
	done := e.done
	for i := 0; i < n; i++ {
		done[i] = false
	}
	p.Dist[src], p.Delay[src], p.Cost[src] = 0, 0, 0

	c := e.csr
	wt := c.weights(w)
	dist, delay, cost, parent := p.Dist, p.Delay, p.Cost, p.Parent
	h := &e.heap
	h.reset(n)
	h.push(src, 0)
	for h.len() > 0 {
		u := h.pop().node
		// The indexed heap decreases keys in place, so each node pops
		// exactly once; no stale-entry check needed.
		done[u] = true
		du, dlu, dcu := dist[u], delay[u], cost[u]
		lo, hi := c.off[u], c.off[u+1]
		for i := lo; i < hi; i++ {
			v := c.dst[i]
			if avoid != nil && avoid(u, v) {
				continue
			}
			d := du + wt[i]
			if d < dist[v] {
				dist[v] = d
				delay[v] = dlu + c.delay[i]
				cost[v] = dcu + c.cost[i]
				parent[v] = u
				h.push(v, d)
			} else if d == dist[v] && u < parent[v] && !done[v] {
				// Exact dist tie: canonicalise on the lower-id
				// predecessor so the row does not depend on the order
				// equal-dist nodes left the heap. No re-push — v's key
				// is unchanged.
				delay[v] = dlu + c.delay[i]
				cost[v] = dcu + c.cost[i]
				parent[v] = u
			}
		}
	}
}

// growFloats returns s with length exactly n, reallocating only when
// capacity is insufficient — a first-call (or graph-growth) event, never
// a steady-state one, which is why the makes below carry hotalloc
// ignores.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //scmplint:ignore hotalloc
	}
	return s[:n]
}

func growNodes(s []NodeID, n int) []NodeID {
	if cap(s) < n {
		return make([]NodeID, n) //scmplint:ignore hotalloc
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n) //scmplint:ignore hotalloc
	}
	return s[:n]
}
