package topology

import (
	"fmt"
	"math"
	"sync/atomic"
)

// DomainView is the hierarchical decomposition of a graph into routing
// domains (DESIGN.md §15): a node→domain labelling (typically
// TransitStubInfo.Domain, or any connected partition), per-domain
// induced subgraphs with their own lazy all-pairs tables, and a
// contracted backbone "domain graph" whose nodes are domains and whose
// edges are the minimum-delay border links between them. The view is
// what lets the hierarchical SCMP mode keep routing state O(domain
// size + backbone) instead of materialising a global O(n²) table.
//
// A view is immutable after construction and safe for concurrent
// readers; per-domain subgraphs materialise lazily on first use (a lost
// publication race rebuilds an identical sub and discards it).
type DomainView struct {
	g      *Graph
	domain []int32 // node -> domain id, dense 0..k-1
	k      int
	nodes  [][]NodeID // domain -> member nodes, ascending
	local  []int32    // node -> index within nodes[domain[node]]
	subs   []atomic.Pointer[DomainSub]

	bb      *Graph                // contracted backbone: one node per domain
	border  map[uint64]BorderLink // directed (from<<32|to) -> chosen border link
	bbDelay *AllPairs             // lazy all-pairs over bb, by delay
}

// BorderLink is the physical link a contracted backbone edge stands
// for: the minimum-delay link between two domains, ties broken on the
// (delay, cost, lower endpoint, higher endpoint) ladder so the choice
// is a pure function of the graph and the labelling.
type BorderLink struct {
	From, To NodeID // exit node in the source domain, entry node in the destination domain
	Delay    float64
	Cost     float64
}

// NewDomainView builds the domain view for g under the given labelling.
// Labels must be dense (every domain 0..max occupied) and every domain
// must induce a connected subgraph — a disconnected domain cannot host
// a single m-router that reaches its members intra-domain, so the
// constructor rejects it with a clear error rather than producing a
// view that fails deep inside tree construction.
func NewDomainView(g *Graph, domain []int) (*DomainView, error) {
	n := g.N()
	if len(domain) != n {
		return nil, fmt.Errorf("topology: domain labelling has %d entries for %d nodes", len(domain), n)
	}
	k := 0
	for v, d := range domain {
		if d < 0 {
			return nil, fmt.Errorf("topology: node %d has negative domain label %d", v, d)
		}
		if d+1 > k {
			k = d + 1
		}
	}
	if n == 0 || k == 0 {
		return nil, fmt.Errorf("topology: empty graph has no domains")
	}
	dv := &DomainView{
		g:      g,
		domain: make([]int32, n),
		k:      k,
		nodes:  make([][]NodeID, k),
		local:  make([]int32, n),
		subs:   make([]atomic.Pointer[DomainSub], k),
		border: make(map[uint64]BorderLink),
	}
	for v := 0; v < n; v++ {
		d := domain[v]
		dv.domain[v] = int32(d)
		dv.local[v] = int32(len(dv.nodes[d]))
		dv.nodes[d] = append(dv.nodes[d], NodeID(v))
	}
	for d := 0; d < k; d++ {
		if len(dv.nodes[d]) == 0 {
			return nil, fmt.Errorf("topology: domain %d is empty (labels must be dense 0..%d)", d, k-1)
		}
	}
	if err := dv.checkDomainsConnected(); err != nil {
		return nil, err
	}
	dv.buildBackbone()
	if k > 1 && !dv.bb.Connected() {
		return nil, fmt.Errorf("topology: backbone domain graph is disconnected (%d domains)", k)
	}
	dv.bbDelay = NewLazyAllPairs(dv.bb, ByDelay)
	return dv, nil
}

// checkDomainsConnected runs one label-restricted BFS per domain over
// the original graph — O(n+m) total — and names the first offender.
func (dv *DomainView) checkDomainsConnected() error {
	c := dv.g.CSR()
	seen := make([]bool, dv.g.N())
	queue := make([]NodeID, 0, 64)
	for d := 0; d < dv.k; d++ {
		start := dv.nodes[d][0]
		seen[start] = true
		queue = append(queue[:0], start)
		reached := 1
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			lo, hi := c.Row(u)
			for a := lo; a < hi; a++ {
				v := c.ArcDst(a)
				if !seen[v] && dv.domain[v] == int32(d) {
					seen[v] = true
					reached++
					queue = append(queue, v)
				}
			}
		}
		if reached != len(dv.nodes[d]) {
			return fmt.Errorf("topology: domain %d induces a disconnected subgraph (%d of %d nodes reachable from node %d)",
				d, reached, len(dv.nodes[d]), start)
		}
	}
	return nil
}

// buildBackbone contracts each domain to one node and keeps, per domain
// pair, the minimum-delay border link under the (delay, cost, u, v)
// ladder. Scanning arcs only from the lower-numbered domain side makes
// the directed (a,b) and (b,a) entries two views of the same physical
// link, so backbone paths realise symmetrically.
func (dv *DomainView) buildBackbone() {
	c := dv.g.CSR()
	n := dv.g.N()
	for u := 0; u < n; u++ {
		du := dv.domain[u]
		lo, hi := c.Row(NodeID(u))
		for a := lo; a < hi; a++ {
			v := c.ArcDst(a)
			dvv := dv.domain[v]
			if du >= dvv {
				continue // visit each unordered pair from the lower domain only
			}
			key := uint64(du)<<32 | uint64(dvv)
			cand := BorderLink{From: NodeID(u), To: v, Delay: c.ArcDelay(a), Cost: c.ArcCost(a)}
			cur, ok := dv.border[key]
			if !ok || borderLess(cand, cur) {
				dv.border[key] = cand
			}
		}
	}
	bb := New(dv.k)
	for d := 0; d < dv.k; d++ {
		for e := d + 1; e < dv.k; e++ {
			key := uint64(d)<<32 | uint64(e)
			bl, ok := dv.border[key]
			if !ok {
				continue
			}
			bb.MustAddEdge(NodeID(d), NodeID(e), bl.Delay, bl.Cost)
			// Mirror entry for the reverse direction.
			dv.border[uint64(e)<<32|uint64(d)] = BorderLink{From: bl.To, To: bl.From, Delay: bl.Delay, Cost: bl.Cost}
		}
	}
	dv.bb = bb
}

func borderLess(a, b BorderLink) bool {
	if a.Delay != b.Delay {
		return a.Delay < b.Delay
	}
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

// Graph returns the underlying flat graph.
func (dv *DomainView) Graph() *Graph { return dv.g }

// K returns the number of domains.
func (dv *DomainView) K() int { return dv.k }

// Domain returns v's domain id.
func (dv *DomainView) Domain(v NodeID) int { return int(dv.domain[v]) }

// NodesOf returns domain d's nodes in ascending id order. The slice is
// shared — callers must not mutate it.
func (dv *DomainView) NodesOf(d int) []NodeID { return dv.nodes[d] }

// Backbone returns the contracted domain graph (one node per domain,
// edges weighted by the chosen border link's delay and cost).
func (dv *DomainView) Backbone() *Graph { return dv.bb }

// BackboneDelay returns the lazy all-pairs (by delay) table over the
// backbone graph; rows materialise per consulted source domain.
func (dv *DomainView) BackboneDelay() *AllPairs { return dv.bbDelay }

// Border returns the physical border link realising the backbone edge
// from domain `from` to domain `to` (From lies in `from`, To in `to`).
func (dv *DomainView) Border(from, to int) (BorderLink, bool) {
	bl, ok := dv.border[uint64(from)<<32|uint64(to)]
	return bl, ok
}

// MRouters returns the default m-router placement: the lowest-id node
// of each domain (deterministic, and for transit-stub labellings the
// first-generated — typically best-connected — node of the domain).
func (dv *DomainView) MRouters() []NodeID {
	out := make([]NodeID, dv.k)
	for d := 0; d < dv.k; d++ {
		out[d] = dv.nodes[d][0]
	}
	return out
}

// Sub returns domain d's induced subgraph view, building it on first
// use. For a single-domain view the sub shares the original graph (and
// the identity node mapping), which is what makes the k=1 hierarchical
// mode byte-identical to the flat engine: every local computation runs
// on exactly the flat inputs.
func (dv *DomainView) Sub(d int) *DomainSub {
	if s := dv.subs[d].Load(); s != nil {
		return s
	}
	s := dv.buildSub(d)
	if dv.subs[d].CompareAndSwap(nil, s) {
		return s
	}
	return dv.subs[d].Load()
}

func (dv *DomainView) buildSub(d int) *DomainSub {
	nodes := dv.nodes[d]
	var sg *Graph
	if dv.k == 1 {
		sg = dv.g
	} else {
		sg = New(len(nodes))
		c := dv.g.CSR()
		for li, u := range nodes {
			lo, hi := c.Row(u)
			for a := lo; a < hi; a++ {
				v := c.ArcDst(a)
				if dv.domain[v] == int32(d) && u < v {
					sg.MustAddEdge(NodeID(li), NodeID(dv.local[v]), c.ArcDelay(a), c.ArcCost(a))
				}
			}
		}
	}
	return &DomainSub{
		view:   dv,
		Domain: d,
		G:      sg,
		Nodes:  nodes,
		spd:    NewLazyAllPairs(sg, ByDelay),
		spc:    NewLazyAllPairs(sg, ByCost),
	}
}

// DomainSub is one domain's induced subgraph with local node ids
// 0..len(Nodes)-1 (ascending global-id order) and lazy per-domain
// all-pairs tables. Nodes maps local→global; Local maps back.
type DomainSub struct {
	view   *DomainView
	Domain int
	G      *Graph
	Nodes  []NodeID // local -> global, ascending
	spd    *AllPairs
	spc    *AllPairs
}

// Local translates a global node id (which must lie in this domain)
// to its local id.
func (s *DomainSub) Local(v NodeID) NodeID {
	if s.view.domain[v] != int32(s.Domain) {
		panic(fmt.Sprintf("topology: node %d is in domain %d, not %d", v, s.view.domain[v], s.Domain))
	}
	return NodeID(s.view.local[v])
}

// Global translates a local node id back to the global id.
func (s *DomainSub) Global(l NodeID) NodeID { return s.Nodes[l] }

// GlobalPath translates a local path in place-order to global ids
// (fresh slice; the input is not modified).
func (s *DomainSub) GlobalPath(lp []NodeID) []NodeID {
	out := make([]NodeID, len(lp))
	for i, l := range lp {
		out[i] = s.Nodes[l]
	}
	return out
}

// Delay returns the lazy all-pairs-by-delay table over the domain
// subgraph (local ids).
func (s *DomainSub) Delay() *AllPairs { return s.spd }

// Cost returns the lazy all-pairs-by-cost table over the domain
// subgraph (local ids).
func (s *DomainSub) Cost() *AllPairs { return s.spc }

// TableBytes sums the resident routing-table bytes across every
// materialised per-domain table plus the backbone table — the "peak
// routing-table memory" metric of the domains experiment. Unbuilt subs
// and unmaterialised lazy rows cost nothing, which is the point: the
// hierarchical mode's resident state must stay sublinear in total node
// count.
func (dv *DomainView) TableBytes() int64 {
	total := dv.bbDelay.MemoryBytes()
	for d := 0; d < dv.k; d++ {
		if s := dv.subs[d].Load(); s != nil {
			total += s.spd.MemoryBytes() + s.spc.MemoryBytes()
		}
	}
	return total
}

// CentralDomain implements locality-based core selection (ROADMAP item
// 1's cited heuristic): among domains with positive weight (weight is
// typically the member count per domain), pick the one minimising the
// weighted sum of backbone delays to every weighted domain, ties to the
// lower domain id. Candidates are restricted to the weighted domains
// themselves — the locality heuristic — so selection cost is
// O(active²) backbone row reads, not O(k²). Returns 0 when no weight
// is positive.
func (dv *DomainView) CentralDomain(weight []float64) int {
	best, bestScore := -1, math.Inf(1)
	for c := 0; c < dv.k && c < len(weight); c++ {
		if weight[c] <= 0 {
			continue
		}
		row := dv.bbDelay.Row(NodeID(c))
		score := 0.0
		for d := 0; d < dv.k && d < len(weight); d++ {
			if weight[d] <= 0 || d == c {
				continue
			}
			score += weight[d] * row.Delay[d]
		}
		if score < bestScore {
			best, bestScore = c, score
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
