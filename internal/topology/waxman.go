package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// WaxmanConfig parameterises the Waxman random-topology model exactly as
// the paper's §IV-A specifies it:
//
//   - Nodes are placed uniformly at random on a GridSize × GridSize
//     integer grid (the paper uses 32767 × 32767).
//   - For every node pair (u,v), an edge exists with probability
//     P(u,v) = Beta * exp(-d(u,v) / (Alpha * L)), where d is Manhattan
//     distance and L = 2*GridSize is the maximum Manhattan distance.
//   - Link cost = Manhattan distance between the endpoints.
//   - Link delay = Uniform(0, cost].
//
// The paper's headline configuration is N=100, Alpha=0.25, Beta=0.2.
type WaxmanConfig struct {
	N        int
	Alpha    float64 // larger -> more long edges
	Beta     float64 // larger -> higher degree
	GridSize int     // defaults to 32767
	// Connect forces connectivity by linking each stray component to the
	// giant component through the closest node pair. The paper's
	// simulations use connected graphs; default true via DefaultWaxman.
	Connect bool
}

// DefaultWaxman returns the paper's Fig. 7 configuration.
func DefaultWaxman(n int) WaxmanConfig {
	return WaxmanConfig{N: n, Alpha: 0.25, Beta: 0.2, GridSize: 32767, Connect: true}
}

// Point is a node position on the Waxman grid.
type Point struct{ X, Y int }

// Manhattan returns the Manhattan distance between two points.
func Manhattan(a, b Point) float64 {
	return math.Abs(float64(a.X-b.X)) + math.Abs(float64(a.Y-b.Y))
}

// WaxmanGraph bundles a generated graph with the node coordinates that
// produced it (useful for visualisation and for placement heuristics).
type WaxmanGraph struct {
	*Graph
	Pos []Point
}

// Waxman generates a random topology under cfg using rng. The result is
// connected when cfg.Connect is set; otherwise it may not be.
func Waxman(cfg WaxmanConfig, rng *rand.Rand) (*WaxmanGraph, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("topology: Waxman needs N > 0, got %d", cfg.N)
	}
	if cfg.GridSize <= 0 {
		cfg.GridSize = 32767
	}
	if cfg.Alpha <= 0 || cfg.Beta <= 0 {
		return nil, fmt.Errorf("topology: Waxman needs positive Alpha and Beta, got (%g,%g)", cfg.Alpha, cfg.Beta)
	}
	g := New(cfg.N)
	pos := make([]Point, cfg.N)
	for i := range pos {
		pos[i] = Point{rng.Intn(cfg.GridSize + 1), rng.Intn(cfg.GridSize + 1)}
	}
	L := 2 * float64(cfg.GridSize)
	addEdge := func(u, v NodeID) {
		d := Manhattan(pos[u], pos[v])
		cost := math.Max(d, 1) // co-located nodes still need a positive cost
		delay := rng.Float64() * cost
		if delay <= 0 {
			delay = cost / 2
		}
		g.MustAddEdge(u, v, delay, cost)
	}
	for u := 0; u < cfg.N; u++ {
		for v := u + 1; v < cfg.N; v++ {
			d := Manhattan(pos[u], pos[v])
			p := cfg.Beta * math.Exp(-d/(cfg.Alpha*L))
			if rng.Float64() < p {
				addEdge(NodeID(u), NodeID(v))
			}
		}
	}
	if cfg.Connect {
		connect(g, pos, addEdge)
	}
	return &WaxmanGraph{Graph: g, Pos: pos}, nil
}

// connect stitches all components to the largest one by repeatedly adding
// the geometrically closest inter-component edge.
func connect(g *Graph, pos []Point, addEdge func(u, v NodeID)) {
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		giant, stray := comps[0], comps[1]
		bu, bv := giant[0], stray[0]
		best := math.Inf(1)
		for _, u := range giant {
			for _, v := range stray {
				if d := Manhattan(pos[u], pos[v]); d < best {
					best, bu, bv = d, u, v
				}
			}
		}
		addEdge(bu, bv)
	}
}
