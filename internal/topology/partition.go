package topology

import (
	"math"
	"sort"

	"scmp/internal/rng"
)

// Partition splits g's nodes into k parts for the partitioned parallel
// simulator (DESIGN.md §12). The assignment is a pure function of
// (graph, k, seed): farthest-point seeding by shortest-path delay — the
// first seed drawn from the seed's rng stream, each subsequent seed the
// node farthest (by delay) from every seed chosen so far — followed by a
// multi-source Dijkstra Voronoi assignment, so each part is a
// delay-compact region around its seed. Compact regions maximise the
// minimum delay of a cross-part link, and that minimum is exactly the
// conservative lookahead window the parallel coordinator can advance
// per round, so a better cut is directly a longer window.
//
// The returned slice maps node id to part index in [0, k). k is clamped
// to the node count; k <= 1 returns the all-zero (serial) assignment.
func Partition(g *Graph, k int, seed int64) []int32 {
	n := g.N()
	part := make([]int32, n)
	if n == 0 {
		return part
	}
	if k > n {
		k = n
	}
	if k <= 1 {
		return part
	}
	c := g.CSR()
	seeds := make([]NodeID, 1, k)
	seeds[0] = NodeID(rng.New(seed).Intn(n))
	isSeed := make([]bool, n)
	isSeed[seeds[0]] = true
	dist := make([]float64, n)
	owner := make([]int32, n)
	var h nodeHeap
	for len(seeds) < k {
		voronoiByDelay(c, seeds, dist, owner, &h)
		// Next seed: the farthest reached non-seed (ties to the lowest
		// id via the ascending scan); an unreached node — a component no
		// seed lives in — takes priority so every component gets a seed
		// before any is subdivided.
		next := NodeID(-1)
		best := -1.0
		for v := 0; v < n; v++ {
			if isSeed[v] {
				continue
			}
			if math.IsInf(dist[v], 1) {
				next = NodeID(v)
				break
			}
			if dist[v] > best {
				best = dist[v]
				next = NodeID(v)
			}
		}
		seeds = append(seeds, next)
		isSeed[next] = true
	}
	voronoiByDelay(c, seeds, dist, owner, &h)
	for v := 0; v < n; v++ {
		if owner[v] < 0 {
			// Unreached even with a seed per component can only mean
			// more components than k; fold leftovers deterministically.
			owner[v] = int32(v % k)
		}
	}
	copy(part, owner)
	return part
}

// PartitionByDomain maps a domain labelling (TransitStubInfo.Domain, or
// any labelling a DomainView would accept) onto k simulator parts, so
// the partitioned parallel DES shards along the same boundaries the
// hierarchical routing mode uses. With k >= the number of domains each
// domain keeps its own part (part index = domain id); with fewer parts
// domains are bin-packed greedily — largest node count first, ties to
// the lower domain id, each placed on the currently lightest part (ties
// to the lower part index) — a pure function of (labels, k). Domain
// labels group delay-coherent regions (intra-domain links are short,
// border links long), so the resulting MinCrossDelay — the conservative
// lookahead — is the minimum *border* link delay, typically far longer
// than a Voronoi cut's.
func PartitionByDomain(domain []int, k int) []int32 {
	part := make([]int32, len(domain))
	if k <= 1 {
		return part
	}
	nd := 0
	for _, d := range domain {
		if d+1 > nd {
			nd = d + 1
		}
	}
	if k >= nd {
		for v, d := range domain {
			part[v] = int32(d)
		}
		return part
	}
	size := make([]int, nd)
	for _, d := range domain {
		size[d]++
	}
	order := make([]int, nd)
	for d := range order {
		order[d] = d
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if size[a] != size[b] {
			return size[a] > size[b]
		}
		return a < b
	})
	load := make([]int, k)
	assign := make([]int32, nd)
	for _, d := range order {
		best := 0
		for p := 1; p < k; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		assign[d] = int32(best)
		load[best] += size[d]
	}
	for v, d := range domain {
		part[v] = assign[d]
	}
	return part
}

// voronoiByDelay assigns every node reachable from a seed to the seed
// with the smallest shortest-path delay, filling dist and owner
// (owner -1 = unreached). Relaxation is strictly `<` and the heap pops
// in the (dist, node) ladder order, so equal-delay frontier ties are
// decided by the ladder, never by float summation order — the owner map
// is a pure function of the queued (node, key) sets.
func voronoiByDelay(c *CSR, seeds []NodeID, dist []float64, owner []int32, h *nodeHeap) {
	n := c.N()
	for i := 0; i < n; i++ {
		dist[i] = math.Inf(1)
		owner[i] = -1
	}
	h.reset(n)
	for i, s := range seeds {
		dist[s] = 0
		owner[s] = int32(i)
		h.push(s, 0)
	}
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		lo, hi := c.Row(u)
		for a := lo; a < hi; a++ {
			v := c.ArcDst(a)
			nd := it.dist + c.ArcDelay(a)
			if nd < dist[v] {
				dist[v] = nd
				owner[v] = owner[u]
				h.push(v, nd)
			}
		}
	}
}

// MinCrossDelay returns the smallest delay over directed links whose
// endpoints lie in different parts — the conservative lookahead of the
// partitioned simulator: no event executed at local time t can cause an
// event in another part before t + MinCrossDelay. +Inf when no link
// crosses (k = 1, or fully part-contained components).
func MinCrossDelay(g *Graph, part []int32) float64 {
	c := g.CSR()
	min := math.Inf(1)
	n := c.N()
	for u := 0; u < n; u++ {
		lo, hi := c.Row(NodeID(u))
		for a := lo; a < hi; a++ {
			if part[c.ArcDst(a)] != part[u] && c.ArcDelay(a) < min {
				min = c.ArcDelay(a)
			}
		}
	}
	return min
}
