package topology

import (
	"math"
	"sync/atomic"

	"scmp/internal/runner"
)

// Weight selects which link attribute a shortest-path computation
// minimises. It is an index into the CSR graph's precomputed per-weight
// edge arrays, so the Dijkstra inner loop reads a flat float64 slice
// instead of calling a closure per edge.
type Weight uint8

const (
	// ByDelay weights links by delay; shortest-delay paths are the
	// paper's P_sl ("shortest delay path").
	ByDelay Weight = iota
	// ByCost weights links by cost; least-cost paths are the paper's
	// P_lc.
	ByCost
)

// Of evaluates the weight on one link (the closure-free equivalent of
// the old func(Link) float64 API).
func (w Weight) Of(l Link) float64 {
	if w == ByCost {
		return l.Cost
	}
	return l.Delay
}

// String names the weight for reports and test failures.
func (w Weight) String() string {
	if w == ByCost {
		return "cost"
	}
	return "delay"
}

// Paths holds the single-source shortest-path tree from Src under some
// weight, plus the path delay and cost accumulated along those paths
// (both are tracked regardless of which attribute was minimised, because
// DCDM needs the delay of a least-cost path and vice versa).
type Paths struct {
	Src    NodeID
	Dist   []float64 // minimised weight to each node; +Inf if unreachable
	Delay  []float64 // delay along the chosen path
	Cost   []float64 // cost along the chosen path
	Parent []NodeID  // predecessor on the chosen path; -1 for Src/unreachable

	// minCost memoises MinCost: Float64bits(min)+1, 0 when unset. The
	// +1 shift keeps 0 free as the sentinel (bits(0.0) is itself 0),
	// and the encoding is sound because path costs are never NaN. A
	// lost store race just rewrites the identical value.
	minCost atomic.Uint64
}

// AvoidFunc reports whether the directed link u->v is unusable (down,
// or touching a failed node). A nil AvoidFunc means every link is up.
type AvoidFunc func(u, v NodeID) bool

// Shortest runs Dijkstra from src under the given weight.
func Shortest(g *Graph, src NodeID, w Weight) *Paths {
	return ShortestAvoid(g, src, w, nil)
}

// ShortestAvoid is Shortest over the subgraph that excludes links for
// which avoid returns true — the routing view after fault injection
// takes links or nodes down. It runs on the fast CSR engine; results are
// the canonical shortest-path tree (see Engine for the tie-break
// ladder that makes "canonical" well defined).
func ShortestAvoid(g *Graph, src NodeID, w Weight, avoid AvoidFunc) *Paths {
	e := Engine{csr: g.CSR()}
	return e.ShortestAvoid(src, w, avoid)
}

// To reconstructs the path Src -> dst as a node sequence including both
// endpoints. It returns nil if dst is unreachable. The slice is
// allocated exactly once at the final length and filled back-to-front.
func (p *Paths) To(dst NodeID) []NodeID {
	if int(dst) >= len(p.Dist) || math.IsInf(p.Dist[dst], 1) {
		return nil
	}
	hops := 1
	for v := dst; v != p.Src; {
		par := p.Parent[v]
		if par == -1 {
			return nil // parent chain broken before reaching Src
		}
		hops++
		v = par
	}
	path := make([]NodeID, hops)
	for v, i := dst, hops-1; ; v, i = p.Parent[v], i-1 {
		path[i] = v
		if v == p.Src {
			return path
		}
	}
}

// MinCost returns the smallest path cost in the row over every
// destination other than Src itself (whose cost is trivially 0 and
// would make the minimum vacuous). It is +Inf when no other node is
// reachable. The scan runs once and is memoised; concurrent callers
// may race the first computation, but both derive the same value from
// the row's immutable arrays, so the race is benign.
//
// DCDM's graft scan uses it to skip a whole candidate row: if even the
// cheapest path in the row costs strictly more than the best candidate
// found so far, no entry in the row can win the cost-first ladder.
//
//scmplint:hotpath
func (p *Paths) MinCost() float64 {
	if enc := p.minCost.Load(); enc != 0 {
		return math.Float64frombits(enc - 1)
	}
	min := math.Inf(1)
	for v := range p.Cost {
		if NodeID(v) == p.Src || math.IsInf(p.Dist[v], 1) {
			continue
		}
		if c := p.Cost[v]; c < min {
			min = c
		}
	}
	p.minCost.Store(math.Float64bits(min) + 1)
	return min
}

// Reachable reports whether dst is reachable from Src.
func (p *Paths) Reachable(dst NodeID) bool {
	return int(dst) < len(p.Dist) && !math.IsInf(p.Dist[dst], 1)
}

// AllPairs is a table of single-source shortest-path rows, one per
// source node. Rows are either built up front — sharded over the
// deterministic worker pool, each source row being an independent
// Dijkstra — or materialised lazily on first access (NewLazyAllPairs),
// which is how fault-driven recomputes that only consult a handful of
// sources stop paying a full n-Dijkstra rebuild.
//
// Row contents are identical in every mode: the engine's tie-break
// ladder makes each row a pure function of (graph, weight, avoid), so
// eager, lazy and any parallel width produce byte-identical tables.
// AllPairs is safe for concurrent readers; lazy rows are published with
// a compare-and-swap, and a lost race just discards one identical row.
type AllPairs struct {
	g     *Graph
	w     Weight
	avoid AvoidFunc
	rows  []atomic.Pointer[Paths]
}

// allPairsChunk is how many consecutive source rows one worker computes
// per job: big enough to amortise engine scratch setup, small enough to
// load-balance a 400-node build over 8 workers.
const allPairsChunk = 16

// NewAllPairs precomputes Shortest from every node under the given
// weight, sharding sources over the worker pool.
func NewAllPairs(g *Graph, w Weight) *AllPairs {
	return NewAllPairsAvoid(g, w, nil)
}

// NewAllPairsAvoid is NewAllPairs over the subgraph that excludes
// avoided links (see AvoidFunc).
func NewAllPairsAvoid(g *Graph, w Weight, avoid AvoidFunc) *AllPairs {
	ap := newAllPairsTable(g, w, avoid)
	n := g.N()
	chunks := (n + allPairsChunk - 1) / allPairsChunk
	if chunks <= 1 {
		e := NewEngine(g)
		for u := 0; u < n; u++ {
			ap.rows[u].Store(e.ShortestAvoid(NodeID(u), w, avoid))
		}
		return ap
	}
	// Each chunk owns a disjoint row range, so workers never write the
	// same slot; one engine per chunk reuses its scratch across sources.
	runner.Map(runner.Options{}, chunks, func(ci int) struct{} {
		e := NewEngine(g)
		lo := ci * allPairsChunk
		hi := lo + allPairsChunk
		if hi > n {
			hi = n
		}
		for u := lo; u < hi; u++ {
			ap.rows[u].Store(e.ShortestAvoid(NodeID(u), w, avoid))
		}
		return struct{}{}
	})
	return ap
}

// NewLazyAllPairs returns an AllPairs whose rows are computed on first
// access and memoised. Use it when only a few sources will be
// consulted — m-router path tables serving small groups, fault-repair
// re-grafts — and the full table would mostly go unread.
func NewLazyAllPairs(g *Graph, w Weight) *AllPairs {
	return NewLazyAllPairsAvoid(g, w, nil)
}

// NewLazyAllPairsAvoid is NewLazyAllPairs with an avoid mask. The mask
// must be frozen by the caller (see netsim's Faults.AvoidSnapshot):
// a live mask would make a row's content depend on when it is first
// read instead of when the table was created.
func NewLazyAllPairsAvoid(g *Graph, w Weight, avoid AvoidFunc) *AllPairs {
	return newAllPairsTable(g, w, avoid)
}

func newAllPairsTable(g *Graph, w Weight, avoid AvoidFunc) *AllPairs {
	return &AllPairs{g: g, w: w, avoid: avoid, rows: make([]atomic.Pointer[Paths], g.N())}
}

// N returns the number of source rows (the graph's node count).
func (ap *AllPairs) N() int { return len(ap.rows) }

// Row returns the shortest-path row from src, computing and memoising
// it on first access in lazy mode.
func (ap *AllPairs) Row(src NodeID) *Paths {
	if r := ap.rows[src].Load(); r != nil {
		return r
	}
	e := Engine{csr: ap.g.CSR()}
	r := e.ShortestAvoid(src, ap.w, ap.avoid)
	if ap.rows[src].CompareAndSwap(nil, r) {
		return r
	}
	return ap.rows[src].Load()
}

// Materialized reports how many rows have been computed so far — n for
// eager tables, the consulted-source count for lazy ones (capacity
// accounting and the lazy-mode tests).
func (ap *AllPairs) Materialized() int {
	m := 0
	for i := range ap.rows {
		if ap.rows[i].Load() != nil {
			m++
		}
	}
	return m
}

// MemoryBytes estimates the resident size of the materialised rows:
// each Paths row carries three float64 slices and one NodeID slice of
// the graph's length plus fixed header overhead. Lazy tables only pay
// for rows actually consulted — the figure the domains experiment
// reports as resident routing-table memory.
func (ap *AllPairs) MemoryBytes() int64 {
	n := int64(len(ap.rows))
	perRow := 32*n + 96 // 3 x []float64 + 1 x []NodeID payload, plus struct/slice headers
	return int64(ap.Materialized()) * perRow
}

// PathDelay sums link delays along a node sequence; it panics if the
// sequence is not a path in g.
func PathDelay(g *Graph, path []NodeID) float64 {
	sum := 0.0
	for i := 1; i < len(path); i++ {
		l, ok := g.Edge(path[i-1], path[i])
		if !ok {
			panic("topology: PathDelay on a non-path")
		}
		sum += l.Delay
	}
	return sum
}

// PathCost sums link costs along a node sequence; it panics if the
// sequence is not a path in g.
func PathCost(g *Graph, path []NodeID) float64 {
	sum := 0.0
	for i := 1; i < len(path); i++ {
		l, ok := g.Edge(path[i-1], path[i])
		if !ok {
			panic("topology: PathCost on a non-path")
		}
		sum += l.Cost
	}
	return sum
}
