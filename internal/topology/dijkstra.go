package topology

import (
	"container/heap"
	"math"
)

// Weight selects which link attribute a shortest-path computation
// minimises.
type Weight func(Link) float64

// ByDelay weights links by delay; shortest-delay paths are the paper's
// P_sl ("shortest delay path").
func ByDelay(l Link) float64 { return l.Delay }

// ByCost weights links by cost; least-cost paths are the paper's P_lc.
func ByCost(l Link) float64 { return l.Cost }

// Paths holds the single-source shortest-path tree from Src under some
// weight, plus the path delay and cost accumulated along those paths
// (both are tracked regardless of which attribute was minimised, because
// DCDM needs the delay of a least-cost path and vice versa).
type Paths struct {
	Src    NodeID
	Dist   []float64 // minimised weight to each node; +Inf if unreachable
	Delay  []float64 // delay along the chosen path
	Cost   []float64 // cost along the chosen path
	Parent []NodeID  // predecessor on the chosen path; -1 for Src/unreachable
}

type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// AvoidFunc reports whether the directed link u->v is unusable (down,
// or touching a failed node). A nil AvoidFunc means every link is up.
type AvoidFunc func(u, v NodeID) bool

// Shortest runs Dijkstra from src under the given weight.
func Shortest(g *Graph, src NodeID, w Weight) *Paths {
	return ShortestAvoid(g, src, w, nil)
}

// ShortestAvoid is Shortest over the subgraph that excludes links for
// which avoid returns true — the routing view after fault injection
// takes links or nodes down.
func ShortestAvoid(g *Graph, src NodeID, w Weight, avoid AvoidFunc) *Paths {
	n := g.N()
	p := &Paths{
		Src:    src,
		Dist:   make([]float64, n),
		Delay:  make([]float64, n),
		Cost:   make([]float64, n),
		Parent: make([]NodeID, n),
	}
	for i := range p.Dist {
		p.Dist[i] = math.Inf(1)
		p.Delay[i] = math.Inf(1)
		p.Cost[i] = math.Inf(1)
		p.Parent[i] = -1
	}
	if n == 0 || !g.valid(src) {
		return p
	}
	p.Dist[src], p.Delay[src], p.Cost[src] = 0, 0, 0
	done := make([]bool, n)
	q := pq{{src, 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, l := range g.adj[u] {
			if avoid != nil && avoid(u, l.To) {
				continue
			}
			d := p.Dist[u] + w(l)
			if d < p.Dist[l.To] {
				p.Dist[l.To] = d
				p.Delay[l.To] = p.Delay[u] + l.Delay
				p.Cost[l.To] = p.Cost[u] + l.Cost
				p.Parent[l.To] = u
				heap.Push(&q, pqItem{l.To, d})
			}
		}
	}
	return p
}

// To reconstructs the path Src -> dst as a node sequence including both
// endpoints. It returns nil if dst is unreachable.
func (p *Paths) To(dst NodeID) []NodeID {
	if int(dst) >= len(p.Dist) || math.IsInf(p.Dist[dst], 1) {
		return nil
	}
	var rev []NodeID
	for v := dst; v != -1; v = p.Parent[v] {
		rev = append(rev, v)
		if v == p.Src {
			break
		}
	}
	if rev[len(rev)-1] != p.Src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Reachable reports whether dst is reachable from Src.
func (p *Paths) Reachable(dst NodeID) bool {
	return int(dst) < len(p.Dist) && !math.IsInf(p.Dist[dst], 1)
}

// AllPairs precomputes Shortest from every node under the given weight.
// Index by source node.
type AllPairs []*Paths

// NewAllPairs runs Dijkstra from every source.
func NewAllPairs(g *Graph, w Weight) AllPairs {
	return NewAllPairsAvoid(g, w, nil)
}

// NewAllPairsAvoid runs Dijkstra from every source over the subgraph
// that excludes avoided links (see AvoidFunc).
func NewAllPairsAvoid(g *Graph, w Weight, avoid AvoidFunc) AllPairs {
	ap := make(AllPairs, g.N())
	for u := 0; u < g.N(); u++ {
		ap[u] = ShortestAvoid(g, NodeID(u), w, avoid)
	}
	return ap
}

// NextHop computes the unicast forwarding table implied by shortest-delay
// routing: next[u][v] is the first hop on u's shortest-delay path to v,
// or -1 when v is u or unreachable. This is the "link state unicast
// routing protocol" substrate the paper assumes every domain runs.
func NextHop(g *Graph) [][]NodeID {
	return NextHopAvoid(g, nil)
}

// NextHopAvoid is NextHop over the subgraph that excludes avoided links
// — the unicast substrate reconverged after a topology change.
func NextHopAvoid(g *Graph, avoid AvoidFunc) [][]NodeID {
	n := g.N()
	next := make([][]NodeID, n)
	for u := 0; u < n; u++ {
		sp := ShortestAvoid(g, NodeID(u), ByDelay, avoid)
		row := make([]NodeID, n)
		for v := 0; v < n; v++ {
			row[v] = -1
			if v == u || !sp.Reachable(NodeID(v)) {
				continue
			}
			// Walk back from v to the node whose parent is u.
			w := NodeID(v)
			for sp.Parent[w] != NodeID(u) {
				w = sp.Parent[w]
			}
			row[v] = w
		}
		next[u] = row
	}
	return next
}

// PathDelay sums link delays along a node sequence; it panics if the
// sequence is not a path in g.
func PathDelay(g *Graph, path []NodeID) float64 {
	sum := 0.0
	for i := 1; i < len(path); i++ {
		l, ok := g.Edge(path[i-1], path[i])
		if !ok {
			panic("topology: PathDelay on a non-path")
		}
		sum += l.Delay
	}
	return sum
}

// PathCost sums link costs along a node sequence; it panics if the
// sequence is not a path in g.
func PathCost(g *Graph, path []NodeID) float64 {
	sum := 0.0
	for i := 1; i < len(path); i++ {
		l, ok := g.Edge(path[i-1], path[i])
		if !ok {
			panic("topology: PathCost on a non-path")
		}
		sum += l.Cost
	}
	return sum
}
