package packet_test

import (
	"fmt"

	"scmp/internal/packet"
	"scmp/internal/topology"
)

// ExampleEncodeSubtree encodes the paper's §III-E worked example: the
// subtree rooted at node 2 with children 4 (a leaf), 5 (children 7 and
// 8) and 6 (child 9).
func ExampleEncodeSubtree() {
	sub := packet.Subtree{Children: []packet.Child{
		{Addr: 4},
		{Addr: 5, Sub: packet.Subtree{Children: []packet.Child{{Addr: 7}, {Addr: 8}}}},
		{Addr: 6, Sub: packet.Subtree{Children: []packet.Child{{Addr: 9}}}},
	}}
	enc := packet.EncodeSubtree(sub)
	dec, err := packet.DecodeSubtree(enc)
	if err != nil {
		fmt.Println("decode:", err)
		return
	}
	fmt.Println("bytes:", len(enc))
	fmt.Println("routers described:", dec.CountNodes())
	// An i-router splits the packet: child 5's subpacket describes its
	// own subtree.
	fmt.Println("node 5's children:", len(dec.Children[1].Sub.Children))
	// Output:
	// bytes: 76
	// routers described: 6
	// node 5's children: 2
}

// ExampleEncodeBranch encodes the paper's BRANCH example: the path
// (2, 4, 10) toward new member 10.
func ExampleEncodeBranch() {
	path := []topology.NodeID{2, 4, 10}
	dec, _ := packet.DecodeBranch(packet.EncodeBranch(path))
	fmt.Println(dec)
	// The receiving router pops itself and forwards the rest.
	rest := dec[1:]
	fmt.Println(rest)
	// Output:
	// [2 4 10]
	// [4 10]
}
