// Package packet defines the packet taxonomy shared by every protocol in
// the simulator, plus the wire encodings of SCMP's self-routing TREE and
// BRANCH packets (§III-E of the paper).
//
// Overhead accounting follows the paper: a packet crossing a link
// contributes that link's cost to either the data overhead or the
// protocol overhead, depending on the packet's Class. Byte sizes are
// additionally tracked so the TREE-vs-BRANCH trade-off (a whole-subtree
// packet is "too expensive" for a minor change) is measurable.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"scmp/internal/topology"
)

// GroupID identifies a multicast group.
type GroupID uint32

// Kind enumerates every packet type any protocol sends.
type Kind int

const (
	// Shared.
	Data      Kind = iota // native multicast data
	EncapData             // data unicast-encapsulated toward the m-router/core

	// SCMP control (§III).
	Join   // DR -> m-router: group membership gained
	Leave  // DR -> m-router: group membership lost
	Tree   // m-router -> subtree: self-routing whole-subtree install
	Branch // m-router -> new member: single-path install
	Prune  // leaf -> upstream: hop-by-hop branch teardown
	Flush  // upstream -> stale child: cascade teardown after restructure

	// SCMP hot-standby replication (§V): the primary m-router streams
	// membership changes to the secondary so it can take over.
	Replicate

	// SCMP reliability and local repair (fault model): the m-router
	// acknowledges reliable JOIN/LEAVE/REJOIN requests, and an i-router
	// whose upstream link died re-homes its orphaned subtree with a
	// REJOIN toward the m-router.
	Ack
	Rejoin

	// DVMRP control.
	DvmrpPrune
	DvmrpGraft

	// MOSPF control.
	GroupLSA // flooded group-membership LSA

	// CBT control.
	CbtJoin
	CbtJoinAck
	CbtQuit

	// SCMP overload protection (churn model): the m-router refuses an
	// admission-controlled JOIN and tells the requester when to retry.
	Nack

	// SCMP hierarchical mode (PROTOCOL.md §13): a domain m-router asks
	// the group's core m-router to install a newly realized inter-domain
	// splice. The payload is the BRANCH encoding of the full install
	// path (last already-on-tree node through the border to the first
	// member), and the core answers by distributing it as a BRANCH.
	Graft
)

// NumKinds is the number of defined packet kinds. Kind values are dense
// from 0, so hot-path per-kind counters can live in fixed-size arrays
// indexed by Kind instead of maps (internal/metrics).
const NumKinds = int(Graft) + 1

var kindNames = map[Kind]string{
	Data: "DATA", EncapData: "ENCAP-DATA",
	Join: "JOIN", Leave: "LEAVE", Tree: "TREE", Branch: "BRANCH",
	Prune: "PRUNE", Flush: "FLUSH", Replicate: "REPLICATE",
	Ack: "ACK", Rejoin: "REJOIN",
	DvmrpPrune: "DVMRP-PRUNE", DvmrpGraft: "DVMRP-GRAFT",
	GroupLSA: "GROUP-LSA",
	CbtJoin:  "CBT-JOIN", CbtJoinAck: "CBT-JOIN-ACK", CbtQuit: "CBT-QUIT",
	Nack: "NACK", Graft: "GRAFT",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Class partitions packets into the paper's two overhead buckets.
type Class int

const (
	ClassData     Class = iota // counted as data overhead
	ClassProtocol              // counted as protocol overhead
)

// ClassOf returns the overhead bucket for a packet kind. Encapsulated
// data is still data: the paper charges its detour to data overhead.
func ClassOf(k Kind) Class {
	switch k {
	case Data, EncapData:
		return ClassData
	default:
		return ClassProtocol
	}
}

// Nominal byte sizes. Control packets are small and fixed; TREE and
// BRANCH are sized by their encodings; data defaults to DefaultDataSize.
const (
	ControlSize     = 64
	DefaultDataSize = 1000
)

// --- TREE packet encoding (§III-E) -----------------------------------
//
// The paper's TREE packet for a router lists the router's downstream
// routers and, per downstream router, a recursive subpacket describing
// the subtree hanging below it:
//
//	count | addr_1 len_1 sub_1 | addr_2 len_2 sub_2 | ...
//
// We encode count/addr/len as big-endian uint32. A leaf subtree encodes
// to the 4 bytes 00 00 00 00, the paper's "(0)".

// Subtree is the decoded form of a TREE packet: the children hanging
// below the receiving router, each with its own subtree.
type Subtree struct {
	Children []Child
}

// Child pairs a downstream router with the subtree below it.
type Child struct {
	Addr topology.NodeID
	Sub  Subtree
}

// EncodeSubtree renders a Subtree in the paper's recursive TREE format.
func EncodeSubtree(s Subtree) []byte {
	return AppendSubtree(make([]byte, 0, s.EncodedSize()), s)
}

// AppendSubtree appends the TREE encoding of s to buf and returns the
// extended buffer. Subpacket lengths are precomputed (EncodedSize), so
// the encode is one pass over the output with no temporary buffers —
// the caller controls the only allocation.
func AppendSubtree(buf []byte, s Subtree) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Children)))
	for _, c := range s.Children {
		buf = binary.BigEndian.AppendUint32(buf, uint32(c.Addr))
		buf = binary.BigEndian.AppendUint32(buf, uint32(c.Sub.EncodedSize()))
		buf = AppendSubtree(buf, c.Sub)
	}
	return buf
}

// EncodedSize returns the exact byte length of s's TREE encoding.
func (s Subtree) EncodedSize() int {
	n := 4
	for _, c := range s.Children {
		n += 8 + c.Sub.EncodedSize()
	}
	return n
}

// ErrTruncated reports a TREE/BRANCH payload shorter than its headers
// claim.
var ErrTruncated = errors.New("packet: truncated payload")

// DecodeSubtree parses a TREE payload. It rejects trailing garbage and
// truncated subpackets.
func DecodeSubtree(b []byte) (Subtree, error) {
	s, rest, err := decodeSubtree(b)
	if err != nil {
		return Subtree{}, err
	}
	if len(rest) != 0 {
		return Subtree{}, fmt.Errorf("packet: %d trailing bytes after TREE payload", len(rest))
	}
	return s, nil
}

func decodeSubtree(b []byte) (Subtree, []byte, error) {
	if len(b) < 4 {
		return Subtree{}, nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	s := Subtree{}
	for i := uint32(0); i < n; i++ {
		if len(b) < 8 {
			return Subtree{}, nil, ErrTruncated
		}
		addr := topology.NodeID(binary.BigEndian.Uint32(b))
		subLen := binary.BigEndian.Uint32(b[4:])
		b = b[8:]
		if uint32(len(b)) < subLen {
			return Subtree{}, nil, ErrTruncated
		}
		sub, rest, err := decodeSubtree(b[:subLen])
		if err != nil {
			return Subtree{}, nil, err
		}
		if len(rest) != 0 {
			return Subtree{}, nil, fmt.Errorf("packet: subpacket length mismatch at child %d", addr)
		}
		b = b[subLen:]
		s.Children = append(s.Children, Child{Addr: addr, Sub: sub})
	}
	return s, b, nil
}

// ChildPayload pairs a downstream router with the verbatim TREE
// sub-payload encoding the subtree below it.
type ChildPayload struct {
	Addr topology.NodeID
	Sub  []byte
}

// SplitSubtree validates a TREE payload and splits it into its
// immediate children, each paired with the sub-payload slice (aliasing
// b) that encodes the subtree below it. The recursive format embeds
// every child's encoding verbatim, so a router forwarding a TREE
// packet hands those slices on unchanged — per-hop TREE forwarding
// re-encodes nothing. Children are appended to out (pass a reusable
// scratch slice to avoid allocation). The whole payload is walked, so
// validation is as strict as DecodeSubtree's.
func SplitSubtree(b []byte, out []ChildPayload) ([]ChildPayload, error) {
	if len(b) < 4 {
		return out, ErrTruncated
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	for i := uint32(0); i < n; i++ {
		if len(b) < 8 {
			return out, ErrTruncated
		}
		addr := topology.NodeID(binary.BigEndian.Uint32(b))
		subLen := binary.BigEndian.Uint32(b[4:])
		b = b[8:]
		if uint32(len(b)) < subLen {
			return out, ErrTruncated
		}
		sub := b[:subLen:subLen]
		if err := validateSubtree(sub); err != nil {
			return out, err
		}
		b = b[subLen:]
		out = append(out, ChildPayload{Addr: addr, Sub: sub})
	}
	if len(b) != 0 {
		return out, fmt.Errorf("packet: %d trailing bytes after TREE payload", len(b))
	}
	return out, nil
}

// validateSubtree checks one subpacket is exactly one well-formed TREE
// encoding, without materialising it.
func validateSubtree(b []byte) error {
	rest, err := skipSubtree(b)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("packet: %d trailing bytes after TREE subpacket", len(rest))
	}
	return nil
}

func skipSubtree(b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	for i := uint32(0); i < n; i++ {
		if len(b) < 8 {
			return nil, ErrTruncated
		}
		addr := topology.NodeID(binary.BigEndian.Uint32(b))
		subLen := binary.BigEndian.Uint32(b[4:])
		b = b[8:]
		if uint32(len(b)) < subLen {
			return nil, ErrTruncated
		}
		if err := validateSubtree(b[:subLen]); err != nil {
			if err == ErrTruncated {
				return nil, ErrTruncated
			}
			return nil, fmt.Errorf("packet: subpacket length mismatch at child %d", addr)
		}
		b = b[subLen:]
	}
	return b, nil
}

// TreeLike is the read-only view of a multicast tree that BuildSubtree
// needs; *mtree.Tree satisfies it.
type TreeLike interface {
	Children(v topology.NodeID) []topology.NodeID
}

// BuildSubtree extracts the Subtree below node v from a tree, children
// in ascending-address order (deterministic encodings).
func BuildSubtree(t TreeLike, v topology.NodeID) Subtree {
	kids := append([]topology.NodeID(nil), t.Children(v)...)
	sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	s := Subtree{}
	for _, c := range kids {
		s.Children = append(s.Children, Child{Addr: c, Sub: BuildSubtree(t, c)})
	}
	return s
}

// CountNodes returns the number of routers described by the subtree
// (excluding the implicit receiving router).
func (s Subtree) CountNodes() int {
	n := 0
	for _, c := range s.Children {
		n += 1 + c.Sub.CountNodes()
	}
	return n
}

// --- BRANCH packet encoding (§III-E) ----------------------------------
//
// A BRANCH packet is the ordered list of routers from the current router
// to the new group member: count | addr_1 | ... | addr_count.

// EncodeBranch renders the router sequence of a BRANCH packet.
func EncodeBranch(path []topology.NodeID) []byte {
	return AppendBranch(make([]byte, 0, 4+4*len(path)), path)
}

// AppendBranch appends the BRANCH encoding of path to buf.
func AppendBranch(buf []byte, path []topology.NodeID) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(path)))
	for _, v := range path {
		buf = binary.BigEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// DecodeBranch parses a BRANCH payload.
func DecodeBranch(b []byte) ([]topology.NodeID, error) {
	if len(b) < 4 {
		return nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) != 4*n {
		return nil, fmt.Errorf("packet: BRANCH claims %d hops, has %d bytes", n, len(b))
	}
	path := make([]topology.NodeID, n)
	for i := range path {
		path[i] = topology.NodeID(binary.BigEndian.Uint32(b[4*i:]))
	}
	return path, nil
}

// --- REPLICATE payload (§V hot standby) ---------------------------------
//
// A REPLICATE snapshot carries a group's full member set from the
// primary m-router to the hot standby, in the same count|addr_1|...
// layout as BRANCH. Snapshots (rather than join/leave deltas) keep
// replication idempotent: a retransmitted or superseded copy can never
// roll the replica back, so the reliable-signalling machinery can carry
// it over a lossy control channel.

// EncodeMembers renders a member-set snapshot payload.
func EncodeMembers(members []topology.NodeID) []byte { return EncodeBranch(members) }

// DecodeMembers parses a member-set snapshot payload.
func DecodeMembers(b []byte) ([]topology.NodeID, error) { return DecodeBranch(b) }

// --- ACK packet encoding (fault model) ---------------------------------
//
// An ACK confirms one reliable control request. It echoes the request's
// kind and sequence number so the requester can match it against its
// retransmission state: req_kind (uint32) | req_seq (uint64), all
// big-endian.

// AckInfo is the decoded form of an ACK payload.
type AckInfo struct {
	Req Kind   // the request kind being acknowledged (Join, Leave, Rejoin)
	Seq uint64 // the request's sequence number, echoed verbatim
}

// EncodeAck renders an ACK payload.
func EncodeAck(a AckInfo) []byte {
	return AppendAck(make([]byte, 0, 12), a)
}

// AppendAck appends the ACK encoding of a to buf.
func AppendAck(buf []byte, a AckInfo) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.Req))
	return binary.BigEndian.AppendUint64(buf, a.Seq)
}

// DecodeAck parses an ACK payload, rejecting truncation and trailing
// garbage.
func DecodeAck(b []byte) (AckInfo, error) {
	if len(b) < 12 {
		return AckInfo{}, ErrTruncated
	}
	if len(b) != 12 {
		return AckInfo{}, fmt.Errorf("packet: %d trailing bytes after ACK payload", len(b)-12)
	}
	return AckInfo{
		Req: Kind(binary.BigEndian.Uint32(b)),
		Seq: binary.BigEndian.Uint64(b[4:]),
	}, nil
}

// --- REJOIN packet encoding (fault model) ------------------------------
//
// A REJOIN is sent by an i-router whose upstream tree link died: it asks
// the m-router to prune the orphaned subtree from its tree copy and
// re-graft the stranded members. The payload names the detached router
// (the subtree root) and the dead upstream neighbour:
// detached (uint32) | dead_upstream (uint32), big-endian.

// RejoinInfo is the decoded form of a REJOIN payload.
type RejoinInfo struct {
	Detached topology.NodeID // the router whose upstream link died
	Dead     topology.NodeID // the unreachable upstream neighbour
}

// EncodeRejoin renders a REJOIN payload.
func EncodeRejoin(r RejoinInfo) []byte {
	return AppendRejoin(make([]byte, 0, 8), r)
}

// AppendRejoin appends the REJOIN encoding of r to buf.
func AppendRejoin(buf []byte, r RejoinInfo) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Detached))
	return binary.BigEndian.AppendUint32(buf, uint32(r.Dead))
}

// DecodeRejoin parses a REJOIN payload, rejecting truncation and
// trailing garbage.
func DecodeRejoin(b []byte) (RejoinInfo, error) {
	if len(b) < 8 {
		return RejoinInfo{}, ErrTruncated
	}
	if len(b) != 8 {
		return RejoinInfo{}, fmt.Errorf("packet: %d trailing bytes after REJOIN payload", len(b)-8)
	}
	return RejoinInfo{
		Detached: topology.NodeID(binary.BigEndian.Uint32(b)),
		Dead:     topology.NodeID(binary.BigEndian.Uint32(b[4:])),
	}, nil
}

// --- NACK packet encoding (overload model) -----------------------------
//
// A NACK is the m-router's admission-control refusal of one reliable
// control request: it echoes the request's kind and sequence number
// (like an ACK) and adds a retry-after hint — the seconds the requester
// should wait before retransmitting, derived from the m-router's
// current service backlog: req_kind (uint32) | req_seq (uint64) |
// retry_after (float64 bits as uint64), all big-endian.

// NackInfo is the decoded form of a NACK payload.
type NackInfo struct {
	Req        Kind    // the refused request kind (Join, Rejoin)
	Seq        uint64  // the request's sequence number, echoed verbatim
	RetryAfter float64 // seconds to wait before retransmitting
}

// EncodeNack renders a NACK payload.
func EncodeNack(n NackInfo) []byte {
	return AppendNack(make([]byte, 0, 20), n)
}

// AppendNack appends the NACK encoding of n to buf.
func AppendNack(buf []byte, n NackInfo) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(n.Req))
	buf = binary.BigEndian.AppendUint64(buf, n.Seq)
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(n.RetryAfter))
}

// DecodeNack parses a NACK payload, rejecting truncation and trailing
// garbage.
func DecodeNack(b []byte) (NackInfo, error) {
	if len(b) < 20 {
		return NackInfo{}, ErrTruncated
	}
	if len(b) != 20 {
		return NackInfo{}, fmt.Errorf("packet: %d trailing bytes after NACK payload", len(b)-20)
	}
	return NackInfo{
		Req:        Kind(binary.BigEndian.Uint32(b)),
		Seq:        binary.BigEndian.Uint64(b[4:]),
		RetryAfter: math.Float64frombits(binary.BigEndian.Uint64(b[12:])),
	}, nil
}
