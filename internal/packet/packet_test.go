package packet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"scmp/internal/topology"
)

func TestKindStrings(t *testing.T) {
	if Data.String() != "DATA" || Tree.String() != "TREE" || CbtQuit.String() != "CBT-QUIT" {
		t.Fatal("kind names wrong")
	}
	if Kind(999).String() != "Kind(999)" {
		t.Fatalf("unknown kind = %q", Kind(999).String())
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(Data) != ClassData || ClassOf(EncapData) != ClassData {
		t.Fatal("data kinds misclassified")
	}
	for _, k := range []Kind{Join, Leave, Tree, Branch, Prune, Flush, Replicate, Ack, Rejoin, DvmrpPrune, DvmrpGraft, GroupLSA, CbtJoin, CbtJoinAck, CbtQuit, Nack} {
		if ClassOf(k) != ClassProtocol {
			t.Fatalf("%v misclassified as data", k)
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	in := AckInfo{Req: Rejoin, Seq: 1<<40 | 17}
	out, err := DecodeAck(EncodeAck(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}

func TestAckErrors(t *testing.T) {
	full := EncodeAck(AckInfo{Req: Join, Seq: 9})
	for i := 0; i < len(full); i++ {
		if _, err := DecodeAck(full[:i]); err == nil {
			t.Errorf("truncated ACK of %d bytes accepted", i)
		}
	}
	if _, err := DecodeAck(append(full, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestNackRoundTrip(t *testing.T) {
	in := NackInfo{Req: Join, Seq: 1<<33 | 5, RetryAfter: 0.125}
	out, err := DecodeNack(EncodeNack(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}

func TestNackErrors(t *testing.T) {
	full := EncodeNack(NackInfo{Req: Join, Seq: 3, RetryAfter: 1})
	if len(full) != 20 {
		t.Fatalf("NACK payload = %d bytes, want 20", len(full))
	}
	for i := 0; i < len(full); i++ {
		if _, err := DecodeNack(full[:i]); err == nil {
			t.Errorf("truncated NACK of %d bytes accepted", i)
		}
	}
	if _, err := DecodeNack(append(full, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestRejoinRoundTrip(t *testing.T) {
	in := RejoinInfo{Detached: 12, Dead: 4}
	out, err := DecodeRejoin(EncodeRejoin(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}

func TestRejoinErrors(t *testing.T) {
	full := EncodeRejoin(RejoinInfo{Detached: 1, Dead: 2})
	for i := 0; i < len(full); i++ {
		if _, err := DecodeRejoin(full[:i]); err == nil {
			t.Errorf("truncated REJOIN of %d bytes accepted", i)
		}
	}
	if _, err := DecodeRejoin(append(full, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestEncodeLeafSubtree(t *testing.T) {
	b := EncodeSubtree(Subtree{})
	if !bytes.Equal(b, []byte{0, 0, 0, 0}) {
		t.Fatalf("leaf encoding = %v, want the paper's (0)", b)
	}
}

// TestPaperExample reproduces the §III-E worked example: the subtree
// rooted at node 2 with children 4 (leaf), 5 (children 7, 8) and
// 6 (child 9). The paper writes the packet as
// (3; 4,1,(0); 5,7,(2;7,1,(0);8,1,(0)); 6,4,(1;9,1,(0)))
// with lengths in field counts; ours are in bytes but the structure is
// identical.
func TestPaperExample(t *testing.T) {
	node5 := Subtree{Children: []Child{{Addr: 7}, {Addr: 8}}}
	node6 := Subtree{Children: []Child{{Addr: 9}}}
	root := Subtree{Children: []Child{{Addr: 4}, {Addr: 5, Sub: node5}, {Addr: 6, Sub: node6}}}

	enc := EncodeSubtree(root)
	if got := binary.BigEndian.Uint32(enc); got != 3 {
		t.Fatalf("child count = %d, want 3", got)
	}
	dec, err := DecodeSubtree(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, root) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, root)
	}
	if dec.CountNodes() != 6 {
		t.Fatalf("CountNodes = %d, want 6", dec.CountNodes())
	}

	// The split an i-router performs: child 5's subpacket alone must
	// decode to node5.
	sub5 := EncodeSubtree(node5)
	dec5, err := DecodeSubtree(sub5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec5, node5) {
		t.Fatal("subpacket split mismatch")
	}
}

func TestDecodeSubtreeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"short count":      {0, 0, 0},
		"missing child":    {0, 0, 0, 1},
		"truncated subpkt": append(binary.BigEndian.AppendUint32(binary.BigEndian.AppendUint32(binary.BigEndian.AppendUint32(nil, 1), 7), 10), 1, 2),
		"trailing garbage": append(EncodeSubtree(Subtree{}), 0xFF),
	}
	for name, b := range cases {
		if _, err := DecodeSubtree(b); err == nil {
			t.Errorf("%s: decode accepted %v", name, b)
		}
	}
}

// SplitSubtree must hand out per-child slices byte-identical to
// re-encoding each child's subtree — that equivalence is what lets the
// TREE forwarding path slice instead of decode+encode.
func TestSplitSubtreeMatchesReencode(t *testing.T) {
	root := Subtree{Children: []Child{
		{Addr: 4},
		{Addr: 5, Sub: Subtree{Children: []Child{
			{Addr: 7, Sub: Subtree{Children: []Child{{Addr: 9}}}},
			{Addr: 8},
		}}},
	}}
	enc := EncodeSubtree(root)
	children, err := SplitSubtree(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != len(root.Children) {
		t.Fatalf("split %d children, want %d", len(children), len(root.Children))
	}
	for i, c := range children {
		if c.Addr != root.Children[i].Addr {
			t.Fatalf("child %d addr = %d, want %d", i, c.Addr, root.Children[i].Addr)
		}
		if want := EncodeSubtree(root.Children[i].Sub); !bytes.Equal(c.Sub, want) {
			t.Fatalf("child %d sub-payload = %x, want %x", i, c.Sub, want)
		}
	}
}

// SplitSubtree validates the full payload: everything DecodeSubtree
// rejects, it rejects too (a corrupt TREE packet must be dropped at the
// first hop, not forwarded).
func TestSplitSubtreeRejectsWhatDecodeRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"short count":      {0, 0, 0},
		"missing child":    {0, 0, 0, 1},
		"truncated subpkt": append(binary.BigEndian.AppendUint32(binary.BigEndian.AppendUint32(binary.BigEndian.AppendUint32(nil, 1), 7), 10), 1, 2),
		"trailing garbage": append(EncodeSubtree(Subtree{}), 0xFF),
		"deep mismatch": func() []byte {
			// Child 7's subpacket claims 5 bytes but holds a 4-byte leaf
			// plus garbage: only a recursive walk catches it.
			b := binary.BigEndian.AppendUint32(nil, 1)
			b = binary.BigEndian.AppendUint32(b, 7)
			b = binary.BigEndian.AppendUint32(b, 5)
			return append(b, 0, 0, 0, 0, 0xFF)
		}(),
	}
	for name, b := range cases {
		if _, err := SplitSubtree(b, nil); err == nil {
			t.Errorf("%s: split accepted %v", name, b)
		}
		if _, err := DecodeSubtree(b); err == nil {
			t.Errorf("%s: decode accepted %v", name, b)
		}
	}
}

// Property: SplitSubtree and DecodeSubtree agree on accept/reject for
// arbitrary bytes, and on the child list when both accept.
func TestPropertySplitAgreesWithDecode(t *testing.T) {
	f := func(b []byte) bool {
		dec, decErr := DecodeSubtree(b)
		children, splitErr := SplitSubtree(b, nil)
		if (decErr == nil) != (splitErr == nil) {
			return false
		}
		if decErr != nil {
			return true
		}
		if len(children) != len(dec.Children) {
			return false
		}
		for i, c := range children {
			if c.Addr != dec.Children[i].Addr {
				return false
			}
			if !bytes.Equal(c.Sub, EncodeSubtree(dec.Children[i].Sub)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomSubtree builds a random subtree with up to depth levels.
func randomSubtree(rng *rand.Rand, depth int, next *int) Subtree {
	s := Subtree{}
	if depth == 0 {
		return s
	}
	n := rng.Intn(3)
	for i := 0; i < n; i++ {
		*next++
		s.Children = append(s.Children, Child{
			Addr: topology.NodeID(*next),
			Sub:  randomSubtree(rng, depth-1, next),
		})
	}
	return s
}

// Property: encode/decode round-trips arbitrary subtrees.
func TestPropertySubtreeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		next := 0
		s := randomSubtree(rng, 5, &next)
		dec, err := DecodeSubtree(EncodeSubtree(s))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(dec, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding never panics on arbitrary bytes.
func TestPropertyDecodeRobust(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = DecodeSubtree(b)
		_, _ = DecodeBranch(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchRoundTrip(t *testing.T) {
	path := []topology.NodeID{2, 4, 10}
	dec, err := DecodeBranch(EncodeBranch(path))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, path) {
		t.Fatalf("round trip = %v, want %v", dec, path)
	}
}

func TestBranchEmpty(t *testing.T) {
	dec, err := DecodeBranch(EncodeBranch(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded = %v", dec)
	}
}

func TestBranchErrors(t *testing.T) {
	if _, err := DecodeBranch([]byte{0, 0}); err == nil {
		t.Error("short header accepted")
	}
	if _, err := DecodeBranch([]byte{0, 0, 0, 2, 0, 0, 0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

type fakeTree map[topology.NodeID][]topology.NodeID

func (f fakeTree) Children(v topology.NodeID) []topology.NodeID { return f[v] }

func TestBuildSubtree(t *testing.T) {
	ft := fakeTree{
		2: {5, 4, 6}, // deliberately unsorted
		5: {8, 7},
		6: {9},
	}
	s := BuildSubtree(ft, 2)
	if len(s.Children) != 3 || s.Children[0].Addr != 4 || s.Children[1].Addr != 5 || s.Children[2].Addr != 6 {
		t.Fatalf("children order = %+v", s.Children)
	}
	if len(s.Children[1].Sub.Children) != 2 || s.Children[1].Sub.Children[0].Addr != 7 {
		t.Fatalf("grandchildren = %+v", s.Children[1].Sub.Children)
	}
	if s.CountNodes() != 6 {
		t.Fatalf("CountNodes = %d, want 6", s.CountNodes())
	}
}

func BenchmarkEncodeSubtree(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	next := 0
	s := randomSubtree(rng, 8, &next)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeSubtree(s)
	}
}

func BenchmarkDecodeSubtree(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	next := 0
	enc := EncodeSubtree(randomSubtree(rng, 8, &next))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSubtree(enc); err != nil {
			b.Fatal(err)
		}
	}
}
