package packet

import (
	"bytes"
	"testing"

	"scmp/internal/topology"
)

// FuzzDecodeSubtree checks the TREE-packet decoder never panics and
// that accepted payloads round-trip through the encoder byte-for-byte
// (the encoding is canonical).
func FuzzDecodeSubtree(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeSubtree(Subtree{Children: []Child{{Addr: 4}, {Addr: 5, Sub: Subtree{Children: []Child{{Addr: 7}}}}}}))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 9, 0, 0, 0, 4, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSubtree(data)
		if err != nil {
			return
		}
		re := EncodeSubtree(s)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeBranch checks the BRANCH decoder likewise: no panics,
// canonical round-trips, and graceful rejection of truncated payloads
// (every prefix of a valid encoding must error, never decode).
func FuzzDecodeBranch(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeBranch([]topology.NodeID{2, 4, 10}))
	full := EncodeBranch([]topology.NodeID{1, 2, 3, 4})
	for i := 1; i < len(full); i++ {
		f.Add(full[:i])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeBranch(data)
		if err != nil {
			return
		}
		re := EncodeBranch(p)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeAck checks the ACK decoder: decode∘encode identity on
// accepted payloads, errors (never panics) on everything else.
func FuzzDecodeAck(f *testing.F) {
	full := EncodeAck(AckInfo{Req: Join, Seq: 0xDEADBEEF})
	f.Add(full)
	for i := 1; i < len(full); i++ {
		f.Add(full[:i])
	}
	f.Add(append(full, 0)) // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAck(data)
		if err != nil {
			return
		}
		re := EncodeAck(a)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeRejoin checks the REJOIN decoder likewise.
func FuzzDecodeRejoin(f *testing.F) {
	full := EncodeRejoin(RejoinInfo{Detached: 7, Dead: 3})
	f.Add(full)
	for i := 1; i < len(full); i++ {
		f.Add(full[:i])
	}
	f.Add(append(full, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRejoin(data)
		if err != nil {
			return
		}
		re := EncodeRejoin(r)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
