package packet

import (
	"bytes"
	"testing"

	"scmp/internal/topology"
)

// FuzzDecodeSubtree checks the TREE-packet decoder never panics and
// that accepted payloads round-trip through the encoder byte-for-byte
// (the encoding is canonical).
func FuzzDecodeSubtree(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeSubtree(Subtree{Children: []Child{{Addr: 4}, {Addr: 5, Sub: Subtree{Children: []Child{{Addr: 7}}}}}}))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 9, 0, 0, 0, 4, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSubtree(data)
		if err != nil {
			return
		}
		re := EncodeSubtree(s)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzSplitSubtree differentially checks the zero-copy TREE splitter
// against the full decoder: the two accept exactly the same payloads
// (SplitSubtree's validation is as strict as DecodeSubtree's), the
// split children agree with the decoded tree, and every child
// sub-payload is a full-capacity alias into the parent buffer at its
// encoded offset — never a copy, never reaching outside the parent's
// bounds. Malformed encodings must be rejected with an error, not a
// panic or an out-of-range slice.
func FuzzSplitSubtree(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	deep := EncodeSubtree(Subtree{Children: []Child{
		{Addr: 4},
		{Addr: 5, Sub: Subtree{Children: []Child{{Addr: 7}, {Addr: 9}}}},
	}})
	f.Add(deep)
	for i := 1; i < len(deep); i++ {
		f.Add(deep[:i]) // truncations
	}
	f.Add(append(append([]byte{}, deep...), 0))               // trailing garbage
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 9, 255, 255, 255, 255}) // huge claimed sublen
	f.Fuzz(func(t *testing.T, data []byte) {
		children, err := SplitSubtree(data, nil)
		s, derr := DecodeSubtree(data)
		if (err == nil) != (derr == nil) {
			t.Fatalf("split err=%v but decode err=%v", err, derr)
		}
		if err != nil {
			return
		}
		if len(children) != len(s.Children) {
			t.Fatalf("%d split children, %d decoded", len(children), len(s.Children))
		}
		off := 4
		for i, c := range children {
			if c.Addr != s.Children[i].Addr {
				t.Fatalf("child %d addr %d, decoded %d", i, c.Addr, s.Children[i].Addr)
			}
			off += 8 // addr + length header
			sub := c.Sub
			if cap(sub) != len(sub) {
				t.Fatalf("child %d sub cap %d > len %d: append would scribble on the parent", i, cap(sub), len(sub))
			}
			if off+len(sub) > len(data) {
				t.Fatalf("child %d sub [%d, %d) exceeds parent length %d", i, off, off+len(sub), len(data))
			}
			if len(sub) > 0 && &sub[0] != &data[off] {
				t.Fatalf("child %d sub is not an alias of the parent at offset %d", i, off)
			}
			if !bytes.Equal(sub, EncodeSubtree(s.Children[i].Sub)) {
				t.Fatalf("child %d sub bytes disagree with the decoded subtree", i)
			}
			off += len(sub)
		}
		if off != len(data) {
			t.Fatalf("children cover [4, %d) of a %d-byte payload", off, len(data))
		}
		// Appending into caller scratch preserves the prefix.
		scratch := make([]ChildPayload, 1, 1+len(children))
		scratch[0] = ChildPayload{Addr: 42}
		again, err := SplitSubtree(data, scratch)
		if err != nil || len(again) != 1+len(children) || again[0].Addr != 42 {
			t.Fatalf("scratch reuse: err=%v len=%d", err, len(again))
		}
	})
}

// FuzzDecodeBranch checks the BRANCH decoder likewise: no panics,
// canonical round-trips, and graceful rejection of truncated payloads
// (every prefix of a valid encoding must error, never decode).
func FuzzDecodeBranch(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeBranch([]topology.NodeID{2, 4, 10}))
	full := EncodeBranch([]topology.NodeID{1, 2, 3, 4})
	for i := 1; i < len(full); i++ {
		f.Add(full[:i])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeBranch(data)
		if err != nil {
			return
		}
		re := EncodeBranch(p)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeAck checks the ACK decoder: decode∘encode identity on
// accepted payloads, errors (never panics) on everything else.
func FuzzDecodeAck(f *testing.F) {
	full := EncodeAck(AckInfo{Req: Join, Seq: 0xDEADBEEF})
	f.Add(full)
	for i := 1; i < len(full); i++ {
		f.Add(full[:i])
	}
	f.Add(append(full, 0)) // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAck(data)
		if err != nil {
			return
		}
		re := EncodeAck(a)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeNack checks the NACK decoder likewise.
func FuzzDecodeNack(f *testing.F) {
	full := EncodeNack(NackInfo{Req: Join, Seq: 0xCAFE, RetryAfter: 0.25})
	f.Add(full)
	for i := 1; i < len(full); i++ {
		f.Add(full[:i])
	}
	f.Add(append(full, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeNack(data)
		if err != nil {
			return
		}
		re := EncodeNack(n)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeRejoin checks the REJOIN decoder likewise.
func FuzzDecodeRejoin(f *testing.F) {
	full := EncodeRejoin(RejoinInfo{Detached: 7, Dead: 3})
	f.Add(full)
	for i := 1; i < len(full); i++ {
		f.Add(full[:i])
	}
	f.Add(append(full, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRejoin(data)
		if err != nil {
			return
		}
		re := EncodeRejoin(r)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
