package packet

import (
	"bytes"
	"testing"

	"scmp/internal/topology"
)

// FuzzDecodeSubtree checks the TREE-packet decoder never panics and
// that accepted payloads round-trip through the encoder byte-for-byte
// (the encoding is canonical).
func FuzzDecodeSubtree(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeSubtree(Subtree{Children: []Child{{Addr: 4}, {Addr: 5, Sub: Subtree{Children: []Child{{Addr: 7}}}}}}))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 9, 0, 0, 0, 4, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSubtree(data)
		if err != nil {
			return
		}
		re := EncodeSubtree(s)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeBranch checks the BRANCH decoder likewise.
func FuzzDecodeBranch(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeBranch([]topology.NodeID{2, 4, 10}))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeBranch(data)
		if err != nil {
			return
		}
		re := EncodeBranch(p)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
