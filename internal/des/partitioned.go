package des

import (
	"math"
	"sort"
	"sync"
)

// mailMsg is one buffered cross-partition sink event: the AtSink
// argument tuple plus the (at, seq, src) merge key. seq is a per-source
// counter, so the key is assigned race-free during a parallel window
// (each source partition's goroutine is the only writer of its slice
// and counter) yet the merged order is a pure function of what was
// sent, not of goroutine interleaving.
type mailMsg struct {
	at   Time
	seq  uint64
	src  int32
	dst  int32
	a, b int32
	op   uint8
	flag bool
	p    any
}

// Partitioned coordinates one Scheduler per topology partition plus the
// shared global scheduler under conservative windowed execution
// (DESIGN.md §12). Within a window of length bounded by the lookahead —
// the minimum cross-partition link delay — partitions run concurrently
// on their own goroutines; cross-partition events are buffered in
// per-source mailboxes and injected at the next window boundary in
// canonical (time, seq, srcPartition) order, the same merge trick
// runner.Map uses, so the dispatch sequence in every partition is a
// pure function of the scenario.
//
// The global scheduler holds harness and control events (joins, data
// sends, fault injections, route recomputes). Whenever its earliest
// event is due it runs alone at a barrier, with every partition first
// caught up to that time — global events may touch state in any
// partition, so they never overlap a parallel window.
//
// Halt is not supported while a Partitioned drive is running: a window
// restart clears the halted flag, so a callback's Halt only ends its
// own partition's current window.
type Partitioned struct {
	global    *Scheduler
	parts     []*Scheduler
	lookahead Time
	mail      [][]mailMsg // per-source append slices; src goroutine is sole writer
	seqs      []uint64    // per-source mail sequence counters
	buf       []mailMsg   // merged flush scratch, reused across windows
}

// NewPartitioned wires a coordinator over the global scheduler and one
// scheduler per partition. lookahead is the minimum cross-partition
// event latency: an event executing at local time t may only Post
// events at t + lookahead or later. +Inf (no cross-partition links) is
// valid; zero or negative is not — the window could then never advance
// past a busy instant.
func NewPartitioned(global *Scheduler, parts []*Scheduler, lookahead Time) *Partitioned {
	if len(parts) < 2 {
		panic("des: partitioned drive needs at least two partitions")
	}
	if !(lookahead > 0) {
		panic("des: partitioned drive needs a positive lookahead")
	}
	if global.ref != nil {
		panic("des: partitioned drive over a reference scheduler")
	}
	for _, p := range parts {
		if p.ref != nil {
			panic("des: partitioned drive over a reference scheduler")
		}
	}
	return &Partitioned{
		global:    global,
		parts:     parts,
		lookahead: lookahead,
		mail:      make([][]mailMsg, len(parts)),
		seqs:      make([]uint64, len(parts)),
	}
}

// Lookahead reports the conservative lookahead the drive windows use.
func (pd *Partitioned) Lookahead() Time { return pd.lookahead }

// Post buffers a typed sink event from partition src for partition dst,
// firing at absolute time at. It must be called from src's goroutine
// (or between windows) and at must respect the lookahead contract:
// at >= src's current time + lookahead. The event is injected into dst
// at the next window boundary.
func (pd *Partitioned) Post(src, dst int32, at Time, op uint8, a, b int32, p any, flag bool) {
	pd.mail[src] = append(pd.mail[src], mailMsg{
		at: at, seq: pd.seqs[src], src: src, dst: dst,
		a: a, b: b, op: op, flag: flag, p: p,
	})
	pd.seqs[src]++
}

// Run executes events until every scheduler's queue drains, then syncs
// all clocks to the maximum reached — the partitioned analogue of
// Scheduler.Run leaving the clock at the last dispatched event.
func (pd *Partitioned) Run() { pd.drive(0, false) }

// RunUntil executes events with firing time <= deadline, then advances
// every clock to the deadline — the partitioned analogue of
// Scheduler.RunUntil.
func (pd *Partitioned) RunUntil(deadline Time) { pd.drive(deadline, true) }

// drive is the conservative window loop. Each iteration flushes the
// mailboxes, then either finishes (nothing pending, or nothing within
// the deadline), runs a global barrier (the earliest event is global),
// or runs one parallel window.
//
// Safety of mail injection: a window never advances any partition past
// w = tp + lookahead, where tp is the earliest pending partition event
// at the window's start. Every message posted during the window was
// posted by an event executing at some t >= tp, so it fires at
// t + lookahead >= w — never in the past of the destination clock,
// which is at most w when the message is injected.
//
// Termination: every barrier fires at least one global event and every
// parallel window fires at least one partition event (the tp event lies
// inside [tp, w] since lookahead > 0), so the loop takes at most one
// iteration per event.
func (pd *Partitioned) drive(deadline Time, bounded bool) {
	for {
		pd.flushMail()
		tp := Time(math.Inf(1))
		for _, p := range pd.parts {
			if at, ok := p.peek(); ok && at < tp {
				tp = at
			}
		}
		next := tp
		tg := Time(math.Inf(1))
		if at, ok := pd.global.peek(); ok {
			tg = at
			if tg < next {
				next = tg
			}
		}
		if math.IsInf(float64(next), 1) {
			if bounded {
				pd.advanceAll(deadline)
			} else {
				pd.syncClocks()
			}
			return
		}
		if bounded && next > deadline {
			pd.advanceAll(deadline)
			return
		}
		if tg <= tp {
			// Barrier: catch every partition up to the global event's
			// time first — a global event may schedule onto any
			// partition at or after tg — then run the global queue
			// alone. Partitions advance in index order, single-threaded:
			// a barrier is also where cross-partition determinism is
			// re-anchored.
			for _, p := range pd.parts {
				p.RunUntil(tg)
			}
			pd.global.RunUntil(tg)
			continue
		}
		w := tp + pd.lookahead
		if tg < w {
			w = tg
		}
		if bounded && deadline < w {
			w = deadline
		}
		if math.IsInf(float64(w), 1) {
			// No cross-partition links and no pending global events:
			// the partitions are fully independent, drain them freely.
			pd.runWindow(func(p *Scheduler) { p.Run() })
			continue
		}
		pd.runWindow(func(p *Scheduler) { p.RunUntil(w) })
	}
}

// runWindow executes one parallel window: every partition scheduler on
// its own goroutine, joined before any shared state is touched again.
// The WaitGroup join gives the happens-before edge that publishes each
// partition's mailbox appends to the flushing goroutine.
func (pd *Partitioned) runWindow(run func(*Scheduler)) {
	var wg sync.WaitGroup
	wg.Add(len(pd.parts))
	for _, p := range pd.parts {
		go func(p *Scheduler) {
			defer wg.Done()
			run(p)
		}(p)
	}
	wg.Wait()
}

// flushMail merges all buffered cross-partition messages in canonical
// (time, seq, srcPartition) order and injects them into their
// destination schedulers. The sort key is total — messages from one
// source have distinct seqs, and equal (time, seq) across sources is
// broken by the source index — so the injection order, and therefore
// the (time, insertion-seq) dispatch order inside every destination, is
// deterministic.
func (pd *Partitioned) flushMail() {
	pd.buf = pd.buf[:0]
	for i := range pd.mail {
		pd.buf = append(pd.buf, pd.mail[i]...)
		pd.mail[i] = pd.mail[i][:0]
	}
	if len(pd.buf) == 0 {
		return
	}
	sort.Slice(pd.buf, func(i, j int) bool {
		a, b := &pd.buf[i], &pd.buf[j]
		// Two strict comparisons, never float equality: an exact time
		// tie falls through to the integer keys.
		if a.at < b.at {
			return true
		}
		if b.at < a.at {
			return false
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.src < b.src
	})
	for i := range pd.buf {
		m := &pd.buf[i]
		pd.parts[m.dst].AtSink(m.at, m.op, m.a, m.b, m.p, m.flag)
		m.p = nil // drop the payload reference; buf is reused
	}
}

// advanceAll moves every clock that is behind the deadline up to it
// (bounded drives only reach here with all clocks <= deadline).
func (pd *Partitioned) advanceAll(deadline Time) {
	if pd.global.now < deadline {
		pd.global.now = deadline
	}
	for _, p := range pd.parts {
		if p.now < deadline {
			p.now = deadline
		}
	}
}

// syncClocks aligns every scheduler to the maximum clock reached, so a
// post-drain caller scheduling "now or later" on any scheduler cannot
// violate causality on another.
func (pd *Partitioned) syncClocks() {
	t := pd.global.now
	for _, p := range pd.parts {
		if p.now > t {
			t = p.now
		}
	}
	pd.global.now = t
	for _, p := range pd.parts {
		p.now = t
	}
}
