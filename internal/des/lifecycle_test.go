package des

import "testing"

// Regression: RunUntil used to advance the clock to the deadline even
// when a callback halted the scheduler mid-window, silently jumping time
// past the halt point. The clock must stay at the halting event's firing
// time, and a later RunUntil must resume from there.
func TestRunUntilHaltPreservesClock(t *testing.T) {
	s := New()
	var fired []Time
	s.At(1, func() { fired = append(fired, s.Now()) })
	s.At(2, func() {
		fired = append(fired, s.Now())
		s.Halt()
	})
	s.At(3, func() { fired = append(fired, s.Now()) })

	s.RunUntil(10)
	if got := s.Now(); got != 2 {
		t.Fatalf("halt mid-window: Now() = %v, want the halting event's firing time 2", got)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("events fired before halt = %v, want [1 2]", fired)
	}

	// Resuming completes the window: the remaining event fires and the
	// clock advances to the deadline.
	s.RunUntil(10)
	if got := s.Now(); got != 10 {
		t.Fatalf("after resume: Now() = %v, want deadline 10", got)
	}
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("events fired after resume = %v, want [1 2 3]", fired)
	}
}

// RunUntil with no halt keeps its contract: drained queue advances the
// clock to the deadline, and a next event beyond the deadline leaves it
// queued.
func TestRunUntilAdvancesOnDrainAndBeyondDeadline(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(5, func() {})
	s.RunUntil(3)
	if got := s.Now(); got != 3 {
		t.Fatalf("next event beyond deadline: Now() = %v, want 3", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want the beyond-deadline event still queued", s.Pending())
	}
	s.RunUntil(8)
	if got := s.Now(); got != 8 {
		t.Fatalf("drained queue: Now() = %v, want 8", got)
	}
}

// peek discards a cancelled root and recycles its slot exactly once; the
// recycled slot's bumped generation makes the old handle inert, so a
// stale Cancel cannot kill the live event that reused the slot.
func TestPeekRecyclesCancelledRootOnce(t *testing.T) {
	s := New()
	ev := s.At(1, func() {})
	ev.Cancel()
	if _, ok := s.peek(); ok {
		t.Fatal("peek returned a cancelled event")
	}
	if len(s.free) != 1 || s.free[0] != ev.slot {
		t.Fatalf("free list = %v, want exactly the cancelled event's slot %d", s.free, ev.slot)
	}
	var ran bool
	live := s.At(2, func() { ran = true })
	if live.slot != ev.slot {
		t.Fatalf("expected slot reuse, got slot %d (was %d)", live.slot, ev.slot)
	}
	ev.Cancel() // stale handle: generation mismatch, must be a no-op
	s.Run()
	if !ran {
		t.Fatal("stale Cancel killed a live event through a recycled slot")
	}
}
