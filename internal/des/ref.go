package des

import "container/heap"

// This file preserves the historical scheduler — container/heap over
// per-event allocations — verbatim in behaviour, as the reference
// implementation for the differential-equivalence gate (the same role
// shortestRef plays for the routing engine). A reference scheduler is
// obtained with NewRef; it shares the Scheduler API, clock, sequence
// counter and fired count, differing only in how the queue is stored
// and dispatched. Production code never constructs one.

// refEvent is the old heap element: one allocation per scheduled event,
// ordered through the container/heap interface.
type refEvent struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at < h[j].at {
		return true
	}
	if h[j].at < h[i].at {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// refScheduler is the queue state of a reference scheduler; the shared
// Scheduler front-end delegates here when it is non-nil.
type refScheduler struct {
	queue refHeap
}

// NewRef returns a scheduler backed by the historical container/heap
// implementation. Test-only: the differential gate runs every scenario
// on both New and NewRef and asserts identical outputs.
func NewRef() *Scheduler { return &Scheduler{ref: &refScheduler{}} }

// IsRef reports whether this scheduler uses the reference queue.
func (s *Scheduler) IsRef() bool { return s.ref != nil }

func (r *refScheduler) at(s *Scheduler, t Time, fn func()) *Event {
	e := &refEvent{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&r.queue, e)
	return &Event{s: s, at: t, ref: e}
}

// atSink emulates the typed path by capturing the tuple in a closure —
// exactly the allocation profile the fast path exists to avoid, which
// is what makes the benchmark comparison honest.
func (r *refScheduler) atSink(s *Scheduler, t Time, op uint8, a, b int32, p any, flag bool) {
	sink := s.sink
	r.at(s, t, func() { sink.SinkEvent(op, a, b, p, flag) })
}

func (r *refScheduler) step(s *Scheduler) bool {
	for len(r.queue) > 0 {
		e := heap.Pop(&r.queue).(*refEvent)
		if e.dead {
			continue
		}
		s.now = e.at
		e.dead = true
		s.fired++
		e.fn()
		return true
	}
	return false
}

func (r *refScheduler) peek(s *Scheduler) (Time, bool) {
	for len(r.queue) > 0 {
		if r.queue[0].dead {
			heap.Pop(&r.queue)
			continue
		}
		return r.queue[0].at, true
	}
	return 0, false
}
