//go:build !invariants

package des

import "testing"

// Without the invariants tag, a forged generation-mismatched root entry
// (a slot recycled out from under a queued entry — a scheduler bug the
// invariants build panics on) must be handled identically by peek and
// Step: discarded without recycling, because the slot now belongs to a
// different live event and recycling it would hand it out twice.
func TestPeekAndStepDiscardGenMismatchWithoutRecycle(t *testing.T) {
	forge := func() *Scheduler {
		s := New()
		s.At(5, func() {}) // live event: slot 0, current generation
		// Forge a stale root addressing the same slot with an older
		// generation, as if the slot were recycled while queued.
		s.heap = append(s.heap, entry{at: 1, seq: 999, slot: 0, gen: s.slab[0].gen + 1})
		s.siftUp(len(s.heap) - 1)
		return s
	}

	s := forge()
	if at, ok := s.peek(); !ok || at != 5 {
		t.Fatalf("peek = (%v, %v), want the live event at 5", at, ok)
	}
	if len(s.free) != 0 {
		t.Fatalf("peek recycled a slot it does not own: free = %v", s.free)
	}

	s = forge()
	if !s.Step() {
		t.Fatal("Step found no event; the live event must survive the stale root")
	}
	if got := s.Now(); got != 5 {
		t.Fatalf("Step dispatched at %v, want the live event at 5", got)
	}
}
