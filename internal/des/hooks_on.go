//go:build invariants

package des

import "scmp/internal/invariant"

// checkPop validates every entry popped from the pooled heap before it
// is recycled or dispatched: the slot generation must still match the
// entry's (no slot was recycled while queued) and the event time must
// not precede the clock (heap order held). A violation is a scheduler
// bug, never bad input, so it panics.
func checkPop(s *Scheduler, e entry, nd *node) {
	if err := invariant.CheckEventSlot(e.gen, nd.gen, float64(e.at), float64(s.now)); err != nil {
		panic("des: " + err.Error())
	}
}

// checkPeek applies the identical validation to every root entry peek
// inspects, asserting the peek/Step symmetry: both paths see the same
// generations, so the queue view RunUntil acts on is the dispatch order.
func checkPeek(s *Scheduler, e entry, nd *node) {
	if err := invariant.CheckEventSlot(e.gen, nd.gen, float64(e.at), float64(s.now)); err != nil {
		panic("des: " + err.Error())
	}
}
