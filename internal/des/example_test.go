package des_test

import (
	"fmt"

	"scmp/internal/des"
)

func ExampleScheduler() {
	s := des.New()
	s.At(2, func() { fmt.Println("world at", s.Now()) })
	s.At(1, func() { fmt.Println("hello at", s.Now()) })
	s.After(3, func() { fmt.Println("done at", s.Now()) })
	s.Run()
	// Output:
	// hello at 1
	// world at 2
	// done at 3
}

func ExampleScheduler_RunUntil() {
	s := des.New()
	for t := 1; t <= 5; t++ {
		t := t
		s.At(des.Time(t), func() { fmt.Println("tick", t) })
	}
	s.RunUntil(3)
	fmt.Println("paused at", s.Now())
	// Output:
	// tick 1
	// tick 2
	// tick 3
	// paused at 3
}

func ExampleEvent_Cancel() {
	s := des.New()
	e := s.At(1, func() { fmt.Println("never") })
	e.Cancel()
	s.Run()
	fmt.Println("cancelled:", e.Cancelled())
	// Output:
	// cancelled: true
}
