//go:build invariants

package des

import (
	"strings"
	"testing"
)

// Under -tags invariants, peek and Step must apply the identical
// staleness guard: a generation-mismatched root entry panics through
// checkPeek exactly as it would through checkPop.
func TestPeekStepGenMismatchSymmetry(t *testing.T) {
	forge := func() *Scheduler {
		s := New()
		s.At(5, func() {})
		s.heap = append(s.heap, entry{at: 1, seq: 999, slot: 0, gen: s.slab[0].gen + 1})
		s.siftUp(len(s.heap) - 1)
		return s
	}
	mustPanic := func(name string, f func()) (msg string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s did not panic on a generation-mismatched root", name)
			}
			msg = r.(string)
		}()
		f()
		return ""
	}

	s1 := forge()
	peekMsg := mustPanic("peek", func() { s1.peek() })
	s2 := forge()
	stepMsg := mustPanic("Step", func() { s2.Step() })
	if peekMsg != stepMsg {
		t.Fatalf("asymmetric staleness checks:\n peek: %s\n Step: %s", peekMsg, stepMsg)
	}
	if !strings.Contains(peekMsg, "slot recycled under a queued event") {
		t.Fatalf("unexpected invariant message: %s", peekMsg)
	}
}
