package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var s Scheduler
	ran := false
	s.After(1, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if s.Now() != 1 {
		t.Fatalf("Now = %v, want 1", s.Now())
	}
}

func TestOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: %v", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.At(1, func() { ran = true })
	e.Cancel()
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false")
	}
}

func TestCancelAlreadyFired(t *testing.T) {
	s := New()
	var e *Event
	e = s.At(1, func() {})
	s.Run()
	e.Cancel() // must not panic
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var got []Time
	s.At(1, func() {
		got = append(got, s.Now())
		s.After(2, func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on past event")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []int
	s.At(1, func() { got = append(got, 1) })
	s.At(5, func() { got = append(got, 5) })
	s.At(10, func() { got = append(got, 10) })
	s.RunUntil(5)
	if len(got) != 2 {
		t.Fatalf("events run = %v, want [1 5]", got)
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %v, want 5", s.Now())
	}
	s.RunUntil(20)
	if len(got) != 3 {
		t.Fatalf("events run = %v, want [1 5 10]", got)
	}
	if s.Now() != 20 {
		t.Fatalf("Now = %v, want 20", s.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New()
	ran := false
	s.At(5, func() { ran = true })
	s.RunUntil(5)
	if !ran {
		t.Fatal("event at deadline did not run")
	}
}

func TestHalt(t *testing.T) {
	s := New()
	n := 0
	s.At(1, func() { n++; s.Halt() })
	s.At(2, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("events run = %d, want 1", n)
	}
	s.Run() // resume
	if n != 2 {
		t.Fatalf("events run = %d, want 2", n)
	}
}

func TestFiredCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
}

func TestPending(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Step()
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

// Property: events always fire in nondecreasing time order, regardless of
// insertion order.
func TestPropertyMonotonicDispatch(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		var fired []Time
		for _, raw := range times {
			tm := Time(raw)
			s.At(tm, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		want := make([]Time, len(times))
		for i, raw := range times {
			want[i] = Time(raw)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range fired {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a randomly-generated cascade of nested events is reproducible:
// two schedulers fed the same seed dispatch identical sequences.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var trace []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, s.Now())
			if depth >= 4 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				s.After(Time(rng.Float64()), func() { spawn(depth + 1) })
			}
		}
		for i := 0; i < 5; i++ {
			s.After(Time(rng.Float64()), func() { spawn(0) })
		}
		s.Run()
		return trace
	}
	for seed := int64(0); seed < 20; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d", seed, i)
			}
		}
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		s.Step()
	}
}
