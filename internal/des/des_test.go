package des

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var s Scheduler
	ran := false
	s.After(1, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if s.Now() != 1 {
		t.Fatalf("Now = %v, want 1", s.Now())
	}
}

func TestOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: %v", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.At(1, func() { ran = true })
	e.Cancel()
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false")
	}
}

func TestCancelAlreadyFired(t *testing.T) {
	s := New()
	var e *Event
	e = s.At(1, func() {})
	s.Run()
	e.Cancel() // must not panic
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var got []Time
	s.At(1, func() {
		got = append(got, s.Now())
		s.After(2, func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on past event")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []int
	s.At(1, func() { got = append(got, 1) })
	s.At(5, func() { got = append(got, 5) })
	s.At(10, func() { got = append(got, 10) })
	s.RunUntil(5)
	if len(got) != 2 {
		t.Fatalf("events run = %v, want [1 5]", got)
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %v, want 5", s.Now())
	}
	s.RunUntil(20)
	if len(got) != 3 {
		t.Fatalf("events run = %v, want [1 5 10]", got)
	}
	if s.Now() != 20 {
		t.Fatalf("Now = %v, want 20", s.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New()
	ran := false
	s.At(5, func() { ran = true })
	s.RunUntil(5)
	if !ran {
		t.Fatal("event at deadline did not run")
	}
}

func TestHalt(t *testing.T) {
	s := New()
	n := 0
	s.At(1, func() { n++; s.Halt() })
	s.At(2, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("events run = %d, want 1", n)
	}
	s.Run() // resume
	if n != 2 {
		t.Fatalf("events run = %d, want 2", n)
	}
}

func TestFiredCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
}

func TestPending(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Step()
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

// Property: events always fire in nondecreasing time order, regardless of
// insertion order.
func TestPropertyMonotonicDispatch(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		var fired []Time
		for _, raw := range times {
			tm := Time(raw)
			s.At(tm, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		want := make([]Time, len(times))
		for i, raw := range times {
			want[i] = Time(raw)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range fired {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a randomly-generated cascade of nested events is reproducible:
// two schedulers fed the same seed dispatch identical sequences.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var trace []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, s.Now())
			if depth >= 4 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				s.After(Time(rng.Float64()), func() { spawn(depth + 1) })
			}
		}
		for i := 0; i < 5; i++ {
			s.After(Time(rng.Float64()), func() { spawn(0) })
		}
		s.Run()
		return trace
	}
	for seed := int64(0); seed < 20; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d", seed, i)
			}
		}
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		s.Step()
	}
}

// --- pooled-slot semantics ---------------------------------------------

// A cancelled event's slot is recycled and reused by a later event; the
// stale handle must stay inert: Cancel is a no-op, Cancelled stays true,
// and the recycled slot's new occupant fires exactly once. Run with
// -tags invariants to additionally assert (via invariant.CheckEventSlot)
// that no recycled slot is ever dispatched.
func TestCancelledSlotRecycledSafely(t *testing.T) {
	s := New()
	var fired []string
	stale := s.At(1, func() { fired = append(fired, "cancelled") })
	stale.Cancel()
	if s.Step() {
		t.Fatal("Step fired the cancelled event")
	}
	// The sweep recycled the cancelled entry's slot; this event reuses it.
	// Reading .slot on the stale handle past the Step is the point of this
	// white-box test — exactly the access poollife exists to flag.
	fresh := s.At(2, func() { fired = append(fired, "fresh") })
	if fresh.slot != stale.slot { //scmplint:ignore poollife
		t.Fatalf("free list did not recycle: fresh slot %d, stale slot %d", fresh.slot, stale.slot) //scmplint:ignore poollife
	}
	stale.Cancel() // stale handle on a reused slot: must not touch it
	if !stale.Cancelled() {
		t.Fatal("stale handle no longer reads cancelled")
	}
	if fresh.Cancelled() {
		t.Fatal("stale Cancel leaked into the recycled slot")
	}
	s.Run()
	if len(fired) != 1 || fired[0] != "fresh" {
		t.Fatalf("fired = %v, want [fresh]", fired)
	}
}

// Step returns false when only cancelled events remain, discarding them.
func TestStepSkipsCancelledToEmpty(t *testing.T) {
	s := New()
	s.At(1, func() {}).Cancel()
	s.At(2, func() {}).Cancel()
	if s.Step() {
		t.Fatal("Step fired a cancelled event")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after sweep, want 0", s.Pending())
	}
}

// A handle held across its event's firing reads Cancelled (the old
// scheduler marked firing events dead) and its Cancel must not disturb
// whatever event has since been given the recycled slot.
func TestStaleHandleAfterFiring(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.Run()
	if !e.Cancelled() {
		t.Fatal("fired event's handle should read Cancelled")
	}
	ran := false
	f := s.At(2, func() { ran = true })
	e.Cancel() // slot likely reused by f; must be a no-op
	s.Run()
	if !ran {
		// White-box read of stale slots after Run, deliberately.
		t.Fatalf("stale Cancel killed the recycled slot's event (reused=%v)", f.slot == e.slot) //scmplint:ignore poollife
	}
}

// Cancelled() from inside the event's own callback: the old scheduler
// set dead before dispatch, so this was observable true. Preserved.
func TestCancelledInsideOwnCallback(t *testing.T) {
	s := New()
	var e *Event
	saw := false
	e = s.At(1, func() { saw = e.Cancelled() })
	s.Run()
	if !saw {
		t.Fatal("Cancelled() inside own callback = false, want true")
	}
}

// Slots must actually be recycled: a long alternating schedule/fire run
// must not grow the slab beyond the peak number of simultaneously
// queued events.
func TestSlabBoundedByPeakQueue(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.After(1, func() {})
	}
	for i := 0; i < 10_000; i++ {
		s.After(1, func() {})
		s.Step()
	}
	s.Run()
	if len(s.slab) > 11 {
		t.Fatalf("slab grew to %d slots for a peak queue of 11", len(s.slab))
	}
}

// --- typed sink path ----------------------------------------------------

type recordingSink struct {
	s    *Scheduler
	got  []string
	seen []Time
}

func (r *recordingSink) SinkEvent(op uint8, a, b int32, p any, flag bool) {
	r.got = append(r.got, fmt.Sprintf("op%d %d->%d p=%v flag=%v", op, a, b, p, flag))
	r.seen = append(r.seen, r.s.Now())
}

func TestSinkEvents(t *testing.T) {
	s := New()
	sink := &recordingSink{s: s}
	s.SetSink(sink)
	s.AtSink(2, 1, 10, 20, "x", true)
	s.AtSink(1, 0, 7, 8, nil, false)
	s.Run()
	want := []string{"op0 7->8 p=<nil> flag=false", "op1 10->20 p=x flag=true"}
	if len(sink.got) != 2 || sink.got[0] != want[0] || sink.got[1] != want[1] {
		t.Fatalf("sink saw %v, want %v", sink.got, want)
	}
	if sink.seen[0] != 1 || sink.seen[1] != 2 {
		t.Fatalf("sink clock = %v", sink.seen)
	}
}

// Sink and closure events interleave in one (time, seq) order.
func TestSinkClosureInterleaving(t *testing.T) {
	s := New()
	sink := &recordingSink{s: s}
	s.SetSink(sink)
	var order []string
	s.At(1, func() { order = append(order, "closure") })
	s.AtSink(1, 0, 0, 0, nil, false)
	s.At(1, func() { order = append(order, "closure2") })
	s.Run()
	// The sink event sits between the closures in seq order.
	if len(order) != 2 || len(sink.got) != 1 || sink.seen[0] != 1 {
		t.Fatalf("order=%v sink=%v", order, sink.got)
	}
}

func TestAtSinkWithoutSinkPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AtSink(1, 0, 0, 0, nil, false)
}

func TestSetSinkTwicePanics(t *testing.T) {
	s := New()
	s.SetSink(&recordingSink{s: s})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SetSink(&recordingSink{s: s})
}

// Steady-state scheduling through both the closure and sink paths must
// be allocation-free (the handle for At is the one deliberate remaining
// allocation; the hot path uses AtSink which returns none).
func TestSinkPathAllocFree(t *testing.T) {
	s := New()
	sink := &recordingSink{s: s}
	s.SetSink(sink)
	// Warm the slab and the sink's record slices.
	for i := 0; i < 100; i++ {
		s.AtSink(s.Now()+1, 0, 0, 0, nil, false)
		s.Step()
	}
	sink.got = sink.got[:0]
	sink.seen = sink.seen[:0]
	avg := testing.AllocsPerRun(1000, func() {
		s.AtSink(s.Now()+1, 0, 0, 0, nil, false)
		s.Step()
		if len(sink.got) > 500 {
			sink.got = sink.got[:0]
			sink.seen = sink.seen[:0]
		}
	})
	// The recording sink's fmt.Sprintf allocates; measure only up to its
	// bookkeeping — anything beyond ~4 allocs/op means the scheduler
	// itself is allocating per event.
	if avg > 4 {
		t.Fatalf("sink round-trip allocates %.1f/op", avg)
	}
}

// --- reference-scheduler differential -----------------------------------

// The preserved container/heap scheduler and the pooled 4-ary scheduler
// must dispatch identical (time, value) sequences for any workload,
// including nested scheduling and cancellations.
func TestRefEquivalence(t *testing.T) {
	run := func(s *Scheduler, seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		var trace []Time
		var events []*Event
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, s.Now())
			if depth >= 5 {
				return
			}
			for i, n := 0, rng.Intn(4); i < n; i++ {
				e := s.After(Time(rng.Float64()), func() { spawn(depth + 1) })
				events = append(events, e)
				if rng.Intn(5) == 0 && len(events) > 0 {
					events[rng.Intn(len(events))].Cancel()
				}
			}
		}
		for i := 0; i < 8; i++ {
			s.After(Time(rng.Float64()), func() { spawn(0) })
		}
		s.Run()
		return trace
	}
	for seed := int64(0); seed < 50; seed++ {
		fast, ref := run(New(), seed), run(NewRef(), seed)
		if len(fast) != len(ref) {
			t.Fatalf("seed %d: fast fired %d, ref fired %d", seed, len(fast), len(ref))
		}
		for i := range fast {
			if fast[i] != ref[i] {
				t.Fatalf("seed %d: dispatch %d at %v (fast) vs %v (ref)", seed, i, fast[i], ref[i])
			}
		}
	}
}

// Every Scheduler behaviour test above must hold on the reference
// scheduler too; spot-check the load-bearing ones.
func TestRefSchedulerContract(t *testing.T) {
	s := NewRef()
	if !s.IsRef() {
		t.Fatal("IsRef = false")
	}
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	e := s.At(3, func() { got = append(got, -1) })
	e.Cancel()
	if e.ref == nil || !e.Cancelled() {
		t.Fatal("ref handle broken")
	}
	s.RunUntil(4)
	if len(got) != 0 || s.Now() != 4 {
		t.Fatalf("got=%v now=%v", got, s.Now())
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("ref tie-break not FIFO at %d: %v", i, v)
		}
	}
	if s.Fired() != 50 || s.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", s.Fired(), s.Pending())
	}
	// Sink path on ref: closure-wrapped but same order.
	s2 := NewRef()
	sink := &recordingSink{s: s2}
	s2.SetSink(sink)
	s2.AtSink(s2.Now()+1, 3, 1, 2, nil, true)
	s2.Run()
	if len(sink.got) != 1 || sink.got[0] != "op3 1->2 p=<nil> flag=true" {
		t.Fatalf("ref sink saw %v", sink.got)
	}
}
