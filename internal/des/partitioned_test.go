package des

import (
	"testing"
)

// prec is one dispatched logical event in the partitioned-oracle tests:
// (chain, hop) identifies the event uniquely, node is where it ran, at
// is when. Comparing sequences of precs sorted by (at, chain, hop)
// compares the global time order of the two executions.
type prec struct {
	at    Time
	chain int32
	hop   int32
	node  int32
}

func precLess(a, b prec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.chain != b.chain {
		return a.chain < b.chain
	}
	return a.hop < b.hop
}

// hopSink drives multi-hop "packet" chains over two logical nodes. op
// carries the node id; even hops cross to the other node after the
// lookahead plus a per-chain jitter, odd hops stay local. In the
// partitioned run node == partition and crossings go through Post; in
// the oracle run both nodes live on one scheduler and crossings are
// plain AtSink — the logical event times are identical by construction.
type hopSink struct {
	s    *Scheduler
	pd   *Partitioned // nil in the oracle
	node int32        // partition id; -1 in the oracle (op is the node)
	recs *[]prec
	la   Time
}

func (k *hopSink) SinkEvent(op uint8, a, b int32, p any, flag bool) {
	node := int32(op)
	now := k.s.Now()
	*k.recs = append(*k.recs, prec{at: now, chain: a, hop: b, node: node})
	if b == 0 {
		return
	}
	if b%2 == 0 {
		at := now + k.la + Time(a+1)*0.015625
		if k.pd != nil {
			k.pd.Post(node, 1-node, at, uint8(1-node), a, b-1, nil, false)
		} else {
			k.s.AtSink(at, uint8(1-node), a, b-1, nil, false)
		}
	} else {
		k.s.AtSink(now+0.046875, op, a, b-1, nil, false)
	}
}

const hopLookahead = Time(1.0)

// seedChains starts chain c at node c%2, time (c+1)*0.0625, with 6 hops.
func seedChains(scheds func(node int32) *Scheduler, chains int) {
	for c := 0; c < chains; c++ {
		node := int32(c % 2)
		scheds(node).AtSink(Time(c+1)*0.0625, uint8(node), int32(c), 6, nil, false)
	}
}

// runOracle executes the scenario on a single scheduler and returns the
// dispatch sequence (naturally in global (time, seq) order).
func runOracle(t *testing.T, chains int) []prec {
	t.Helper()
	s := New()
	var recs []prec
	s.SetSink(&hopSink{s: s, node: -1, recs: &recs, la: hopLookahead})
	seedChains(func(int32) *Scheduler { return s }, chains)
	s.At(2.0, func() {
		recs = append(recs, prec{at: s.Now(), chain: 100, hop: -1, node: -1})
		s.AtSink(s.Now(), 0, 100, 4, nil, false)
		s.AtSink(s.Now(), 1, 101, 4, nil, false)
	})
	s.Run()
	return recs
}

// runPartitioned executes the same scenario over two partition
// schedulers plus a global scheduler, via drive. Per-partition record
// slices need no locking: a partition's sink runs only on that
// partition's window goroutine (or the barrier thread), and window
// joins order the appends.
func runPartitioned(t *testing.T, chains int, split Time) (p0, p1 []prec, pd *Partitioned) {
	t.Helper()
	g := New()
	parts := []*Scheduler{New(), New()}
	pd = NewPartitioned(g, parts, hopLookahead)
	for i, p := range parts {
		recs := []*[]prec{&p0, &p1}[i]
		p.SetSink(&hopSink{s: p, pd: pd, node: int32(i), recs: recs, la: hopLookahead})
	}
	seedChains(func(node int32) *Scheduler { return parts[node] }, chains)
	g.At(2.0, func() {
		p0 = append(p0, prec{at: g.Now(), chain: 100, hop: -1, node: -1})
		parts[0].AtSink(g.Now(), 0, 100, 4, nil, false)
		parts[1].AtSink(g.Now(), 1, 101, 4, nil, false)
	})
	if split > 0 {
		pd.RunUntil(split)
		for i, p := range parts {
			if p.Now() != split {
				t.Fatalf("after RunUntil(%v): partition %d clock = %v", split, i, p.Now())
			}
		}
		if g.Now() != split {
			t.Fatalf("after RunUntil(%v): global clock = %v", split, g.Now())
		}
	}
	pd.Run()
	return p0, p1, pd
}

func mergeByTime(t *testing.T, p0, p1 []prec) []prec {
	t.Helper()
	out := make([]prec, 0, len(p0)+len(p1))
	out = append(out, p0...)
	out = append(out, p1...)
	// Insertion sort by the (at, chain, hop) key — n is small and the
	// inputs are nearly sorted.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && precLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// The tentpole determinism contract: cross-window injection preserves
// the global (time, seq) dispatch order — the partitioned execution
// dispatches exactly the events the single-scheduler oracle does, at
// the same times, on the same nodes, in the same global time order.
func TestPartitionedMatchesSingleSchedulerOracle(t *testing.T) {
	const chains = 5
	oracle := runOracle(t, chains)
	p0, p1, _ := runPartitioned(t, chains, 0)
	got := mergeByTime(t, p0, p1)

	want := make([]prec, len(oracle))
	copy(want, oracle)
	for i := 1; i < len(want); i++ {
		for j := i; j > 0 && precLess(want[j], want[j-1]); j-- {
			want[j], want[j-1] = want[j-1], want[j]
		}
	}
	if len(got) != len(want) {
		t.Fatalf("partitioned dispatched %d events, oracle %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d diverges: partitioned %+v, oracle %+v", i, got[i], want[i])
		}
	}
}

// Two identical partitioned runs must produce byte-identical
// per-partition dispatch sequences — order included, not just content —
// and a bounded/unbounded split must not change them.
func TestPartitionedDeterministicAcrossRunsAndSplits(t *testing.T) {
	const chains = 5
	a0, a1, _ := runPartitioned(t, chains, 0)
	b0, b1, _ := runPartitioned(t, chains, 0)
	c0, c1, _ := runPartitioned(t, chains, 2.5) // RunUntil(2.5) then Run()
	check := func(name string, x, y []prec) {
		t.Helper()
		if len(x) != len(y) {
			t.Fatalf("%s: %d vs %d events", name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: dispatch %d diverges: %+v vs %+v", name, i, x[i], y[i])
			}
		}
	}
	check("rerun p0", a0, b0)
	check("rerun p1", a1, b1)
	check("split p0", a0, c0)
	check("split p1", a1, c1)
}

// After an unbounded drive all clocks agree (post-drain scheduling on
// any scheduler must be causally safe), and a bounded drive ends with
// every clock at the deadline even when no events were pending.
func TestPartitionedClockContracts(t *testing.T) {
	_, _, pd0 := runPartitioned(t, 3, 0)
	want := pd0.global.Now()
	for i, p := range pd0.parts {
		if p.Now() != want {
			t.Fatalf("after unbounded drive: partition %d clock %v != global clock %v", i, p.Now(), want)
		}
	}

	g := New()
	parts := []*Scheduler{New(), New()}
	pd := NewPartitioned(g, parts, hopLookahead)
	for _, p := range parts {
		p.SetSink(&hopSink{s: p, pd: pd, node: 0, recs: new([]prec), la: hopLookahead})
	}
	pd.RunUntil(7)
	if g.Now() != 7 || parts[0].Now() != 7 || parts[1].Now() != 7 {
		t.Fatalf("empty bounded drive: clocks = %v/%v/%v, want 7", g.Now(), parts[0].Now(), parts[1].Now())
	}
}
