// Package des implements a deterministic discrete-event scheduler.
//
// It is the execution substrate for the network simulator (the offline
// replacement for NS-2 used throughout this reproduction). Events are
// ordered by simulated time; ties are broken by insertion sequence so a
// simulation run is bit-reproducible regardless of map iteration order or
// host scheduling.
package des

import "container/heap"

// Time is simulated time in seconds.
type Time float64

// Event is a callback scheduled to run at a simulated instant.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// At reports the simulated time this event fires at.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.dead }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at < h[j].at {
		return true
	}
	if h[j].at < h[i].at {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event simulator. The zero value
// is ready to use.
type Scheduler struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// New returns a fresh scheduler at time zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past (t < Now) panics: it would violate causality.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic("des: event scheduled in the past")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d seconds from now.
func (s *Scheduler) After(d Time, fn func()) *Event {
	if d < 0 {
		panic("des: negative delay")
	}
	return s.At(s.now+d, fn)
}

// Halt stops Run/RunUntil before the next event is dispatched.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the single earliest pending event. It returns false when
// the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.dead {
			continue
		}
		s.now = e.at
		e.dead = true
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with firing time <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Scheduler) RunUntil(deadline Time) {
	s.halted = false
	for !s.halted {
		e := s.peek()
		if e == nil || e.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		if s.queue[0].dead {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}
