// Package des implements a deterministic discrete-event scheduler.
//
// It is the execution substrate for the network simulator (the offline
// replacement for NS-2 used throughout this reproduction). Events are
// ordered by simulated time; ties are broken by insertion sequence so a
// simulation run is bit-reproducible regardless of map iteration order or
// host scheduling.
//
// The scheduler is allocation-free in steady state: queued events live in
// a pooled slab of fixed-size slots recycled through a free list, ordered
// by a 4-ary min-heap of (time, seq, slot) entries — no container/heap
// interface boxing, no per-event garbage. Callers that would otherwise
// capture a closure per event (the packet-forwarding hot path) can use
// the typed sink path (SetSink / AtSink), which carries a small fixed
// argument tuple instead of a func value; At/After remain as the
// general-purpose closure API. See DESIGN.md §10 for the free-list
// safety argument.
package des

// Time is simulated time in seconds.
type Time float64

// Sink receives typed events scheduled with AtSink. The argument tuple
// (op, a, b, p, flag) is opaque to the scheduler; the simulator packs a
// delivery descriptor into it (operation code, endpoints, packet
// pointer, loss flag) so the per-hop event carries no closure.
type Sink interface {
	SinkEvent(op uint8, a, b int32, p any, flag bool)
}

// Event is a cancellation handle for a scheduled callback. The callback
// itself lives in a pooled scheduler slot; the handle pairs the slot
// with the generation it was issued for, so holding a handle past the
// event's firing (the timer-management pattern in the SCMP control
// plane) is safe: once the slot is recycled the generations diverge and
// Cancel degrades to a no-op.
type Event struct {
	s    *Scheduler
	at   Time
	slot int32
	gen  uint32
	ref  *refEvent // non-nil iff the owning scheduler is a reference scheduler
}

// At reports the simulated time this event fires at.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e.ref != nil {
		e.ref.dead = true
		return
	}
	nd := &e.s.slab[e.slot]
	if nd.gen == e.gen {
		nd.dead = true
	}
}

// Cancelled reports whether the event will not (or did not) run again:
// true once cancelled or fired.
func (e *Event) Cancelled() bool {
	if e.ref != nil {
		return e.ref.dead
	}
	nd := &e.s.slab[e.slot]
	return nd.gen != e.gen || nd.dead
}

// node is one pooled event slot. gen increments every time the slot is
// recycled, invalidating any outstanding Event handles and (under the
// invariants build tag) proving the heap never dispatches a stale slot.
type node struct {
	gen  uint32
	dead bool
	kind uint8 // kClosure or kSink
	op   uint8
	flag bool
	a, b int32
	fn   func()
	p    any
}

const (
	kClosure uint8 = iota
	kSink
)

// entry is one 4-ary heap element: the (time, seq) ordering key plus the
// slot the payload lives in. 24 bytes, moved by value during sifts — no
// pointer chasing in the comparison loop.
type entry struct {
	at   Time
	seq  uint64
	slot int32
	gen  uint32
}

// Scheduler is a single-threaded discrete-event simulator. The zero value
// is ready to use.
type Scheduler struct {
	now    Time
	seq    uint64
	fired  uint64
	halted bool

	heap []entry
	slab []node
	free []int32

	sink Sink

	ref *refScheduler // non-nil for reference schedulers (NewRef)
}

// New returns a fresh scheduler at time zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (s *Scheduler) Pending() int {
	if s.ref != nil {
		return len(s.ref.queue)
	}
	return len(s.heap)
}

// SetSink installs the receiver for AtSink events. One sink per
// scheduler; installing it twice panics (a silently replaced sink would
// reroute in-flight events).
func (s *Scheduler) SetSink(k Sink) {
	if s.sink != nil && k != s.sink {
		panic("des: sink installed twice")
	}
	s.sink = k
}

// alloc takes a slot from the free list (or grows the slab) and stamps
// it live. The caller fills the payload fields.
func (s *Scheduler) alloc() int32 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return slot
	}
	s.slab = append(s.slab, node{})
	return int32(len(s.slab) - 1)
}

// recycle returns a slot to the free list. Bumping gen first invalidates
// every outstanding handle and heap entry stamped with the old
// generation.
func (s *Scheduler) recycle(slot int32) {
	nd := &s.slab[slot]
	nd.gen++
	nd.dead = false
	nd.fn = nil
	nd.p = nil
	s.free = append(s.free, slot)
}

// push enqueues a heap entry for a freshly filled slot.
func (s *Scheduler) push(t Time, slot int32) {
	e := entry{at: t, seq: s.seq, slot: slot, gen: s.slab[slot].gen}
	s.seq++
	s.heap = append(s.heap, e)
	s.siftUp(len(s.heap) - 1)
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past (t < Now) panics: it would violate causality.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic("des: event scheduled in the past")
	}
	if s.ref != nil {
		return s.ref.at(s, t, fn)
	}
	slot := s.alloc()
	nd := &s.slab[slot]
	nd.kind = kClosure
	nd.fn = fn
	s.push(t, slot)
	return &Event{s: s, at: t, slot: slot, gen: nd.gen}
}

// After schedules fn to run d seconds from now.
func (s *Scheduler) After(d Time, fn func()) *Event {
	if d < 0 {
		panic("des: negative delay")
	}
	return s.At(s.now+d, fn)
}

// AtSink schedules a typed event for the installed sink at absolute
// time t. It is the closure-free fast path: the argument tuple is
// stored in the pooled slot, so a steady-state packet hop allocates
// nothing (a *Packet in p is a pointer-shaped interface — no boxing).
// Sink events return no handle; they cannot be cancelled.
//
//scmplint:hotpath
func (s *Scheduler) AtSink(t Time, op uint8, a, b int32, p any, flag bool) {
	if t < s.now {
		panic("des: event scheduled in the past")
	}
	if s.sink == nil {
		panic("des: AtSink without a sink installed")
	}
	if s.ref != nil {
		// The reference scheduler allocates by design (that comparison is
		// the point of the differential gate); sever the hot-path edge.
		s.ref.atSink(s, t, op, a, b, p, flag) //scmplint:ignore hotalloc
		return
	}
	slot := s.alloc()
	nd := &s.slab[slot]
	nd.kind = kSink
	nd.op = op
	nd.a, nd.b = a, b
	nd.p = p
	nd.flag = flag
	s.push(t, slot)
}

// Halt stops Run/RunUntil before the next event is dispatched.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the single earliest pending event. It returns false when
// the queue is empty.
//
//scmplint:hotpath
func (s *Scheduler) Step() bool {
	if s.ref != nil {
		// Reference queue: allocating by design, outside the hot path.
		return s.ref.step(s) //scmplint:ignore hotalloc
	}
	for len(s.heap) > 0 {
		e := s.heap[0]
		s.popRoot()
		nd := &s.slab[e.slot]
		checkPop(s, e, nd)
		if stale(e, nd) {
			// Same guard and same recycling rule as peek: a slot is
			// returned to the free list only by the entry that owns its
			// current generation.
			if e.gen == nd.gen {
				s.recycle(e.slot)
			}
			continue
		}
		s.now = e.at
		s.fired++
		// Copy the payload out and recycle before dispatching: the
		// callback may schedule (reusing this slot immediately — the
		// dominant pattern in chained forwarding) or run nested Steps.
		// The old scheduler marked a firing event dead before its
		// callback; the generation bump preserves that observable
		// (handle.Cancelled() is true from inside the callback).
		if nd.kind == kClosure {
			fn := nd.fn
			s.recycle(e.slot)
			fn()
		} else {
			op, a, b, p, flag := nd.op, nd.a, nd.b, nd.p, nd.flag
			s.recycle(e.slot)
			s.sink.SinkEvent(op, a, b, p, flag)
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called.
//
//scmplint:hotpath
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with firing time <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
// If a callback calls Halt mid-window the clock stays at that event's
// firing time — the window did not complete, so the deadline advance
// does not apply.
//
//scmplint:hotpath
func (s *Scheduler) RunUntil(deadline Time) {
	s.halted = false
	for !s.halted {
		at, ok := s.peek()
		if !ok || at > deadline {
			// The window completed: the queue drained or the next event is
			// beyond the deadline. Only now does the clock advance to the
			// window's end.
			if s.now < deadline {
				s.now = deadline
			}
			return
		}
		s.Step()
	}
}

// stale reports whether a heap entry no longer addresses the live event
// it was pushed for: cancelled, or the slot was recycled out from under
// it (generation mismatch). Step and peek apply this same predicate, so
// the queue view peek/RunUntil act on always matches what Step would
// dispatch.
func stale(e entry, nd *node) bool {
	return e.gen != nd.gen || nd.dead
}

// peek reports the firing time of the earliest live event, discarding
// stale ones.
func (s *Scheduler) peek() (Time, bool) {
	if s.ref != nil {
		// Reference queue: allocating by design, outside the hot path.
		return s.ref.peek(s) //scmplint:ignore hotalloc
	}
	for len(s.heap) > 0 {
		e := s.heap[0]
		nd := &s.slab[e.slot]
		checkPeek(s, e, nd)
		if stale(e, nd) {
			s.popRoot()
			// Recycle only when the entry still owns its slot: on a
			// generation mismatch the slot already belongs to a later
			// event, and recycling it here would hand the same slot out
			// twice.
			if e.gen == nd.gen {
				s.recycle(e.slot)
			}
			continue
		}
		return e.at, true
	}
	return 0, false
}

// --- 4-ary min-heap over entry ----------------------------------------
//
// Same (time, seq) order as the old container/heap implementation, so
// every dispatch sequence is preserved exactly. 4-ary halves the tree
// depth versus binary (fewer cache lines per sift) and the entries are
// plain values, so sifts are memmoves — no interface calls.

func entryLess(a, b entry) bool {
	if a.at < b.at {
		return true
	}
	if b.at < a.at {
		return false
	}
	return a.seq < b.seq
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(e, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

// popRoot removes the minimum entry (the caller has already read
// s.heap[0]).
func (s *Scheduler) popRoot() {
	h := s.heap
	n := len(h) - 1
	e := h[n]
	s.heap = h[:n]
	if n == 0 {
		return
	}
	h = s.heap
	// Sift e down from the root.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[min]) {
				min = j
			}
		}
		if !entryLess(h[min], e) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = e
}
