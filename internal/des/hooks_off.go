//go:build !invariants

package des

// checkPop is a no-op unless built with -tags invariants; see hooks_on.go.
func checkPop(*Scheduler, entry, *node) {}

// checkPeek is a no-op unless built with -tags invariants; see hooks_on.go.
func checkPeek(*Scheduler, entry, *node) {}
