//go:build invariants

package fabric

// verifyHook re-verifies every configuration Configure routes. A
// failure is a routing bug in this package, never bad caller input
// (Configure validates that first), so it panics.
func verifyHook(c *Configuration) {
	if err := c.Verify(); err != nil {
		panic("fabric: invariant violated after Configure: " + err.Error())
	}
}
