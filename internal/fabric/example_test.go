package fabric_test

import (
	"fmt"

	"scmp/internal/fabric"
	"scmp/internal/packet"
)

// Example routes two simultaneous conferences through one 8x8 sandwich
// fabric: each group's sources merge onto its own output port, and the
// groups never touch.
func Example() {
	f, _ := fabric.New(8)
	cfg, err := f.Configure(map[packet.GroupID]fabric.GroupConn{
		1: {Inputs: []int{0, 3, 5}, Output: 2},
		2: {Inputs: []int{1, 6}, Output: 7},
	})
	if err != nil {
		fmt.Println("configure:", err)
		return
	}
	for _, in := range []int{0, 3, 5, 1, 6} {
		out, gid, _ := cfg.Route(in)
		fmt.Printf("input %d -> output %d (group %d)\n", in, out, gid)
	}
	_, _, busy := cfg.Route(4)
	fmt.Println("input 4 busy:", busy)
	// Output:
	// input 0 -> output 2 (group 1)
	// input 3 -> output 2 (group 1)
	// input 5 -> output 2 (group 1)
	// input 1 -> output 7 (group 2)
	// input 6 -> output 7 (group 2)
	// input 4 busy: false
}

// ExampleConfiguration_SimulateStream shows the conference-network
// merge: three sources of one group injected in the same cell slot
// leave the fabric as a single merged cell.
func ExampleConfiguration_SimulateStream() {
	f, _ := fabric.New(8)
	cfg, _ := f.Configure(map[packet.GroupID]fabric.GroupConn{
		1: {Inputs: []int{0, 3, 5}, Output: 2},
	})
	arrivals, _ := cfg.SimulateStream([][]int{{0, 3, 5}})
	a := arrivals[0]
	fmt.Printf("output %d, group %d, merged sources %v\n", a.Output, a.Group, a.Sources)
	fmt.Println("pipeline latency (slots):", a.Slot)
	// Output:
	// output 2, group 1, merged sources [0 3 5]
	// pipeline latency (slots): 12
}
