package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/packet"
)

func TestBenesIdentityAndReverse(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		id := make([]int, n)
		rev := make([]int, n)
		for i := range id {
			id[i] = i
			rev[i] = n - 1 - i
		}
		for name, perm := range map[string][]int{"identity": id, "reverse": rev} {
			b, err := routeBenes(perm)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, name, err)
			}
			for i := range perm {
				if got := b.route(i); got != perm[i] {
					t.Fatalf("n=%d %s: route(%d) = %d, want %d", n, name, i, got, perm[i])
				}
			}
		}
	}
}

func TestBenesRejectsBadInput(t *testing.T) {
	cases := [][]int{
		{},        // empty
		{0},       // n=1
		{0, 1, 2}, // not a power of two
		{0, 0},    // duplicate output
		{0, 2},    // out of range
		{-1, 0},   // negative
	}
	for _, perm := range cases {
		if _, err := routeBenes(perm); err == nil {
			t.Errorf("routeBenes(%v) accepted", perm)
		}
	}
}

func TestBenesDepth(t *testing.T) {
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b, err := routeBenes(perm)
	if err != nil {
		t.Fatal(err)
	}
	if b.depth() != 5 { // 2*log2(8) - 1
		t.Fatalf("depth = %d, want 5", b.depth())
	}
}

// Property: Beneš realises arbitrary random permutations for all sizes
// up to 64.
func TestPropertyBenesArbitraryPermutations(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		n := []int{2, 4, 8, 16, 32, 64}[int(sizeSel)%6]
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		b, err := routeBenes(perm)
		if err != nil {
			return false
		}
		for i := range perm {
			if b.route(i) != perm[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFabricSizeValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
	if _, err := New(8); err != nil {
		t.Fatal(err)
	}
}

func TestConfigureManyToMany(t *testing.T) {
	f, _ := New(8)
	cfg, err := f.Configure(map[packet.GroupID]GroupConn{
		1: {Inputs: []int{0, 3, 5}, Output: 2},
		2: {Inputs: []int{1, 6}, Output: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every source of a group must emerge at the group's output port.
	for in, want := range map[int]struct {
		out int
		gid packet.GroupID
	}{
		0: {2, 1}, 3: {2, 1}, 5: {2, 1},
		1: {7, 2}, 6: {7, 2},
	} {
		out, gid, ok := cfg.Route(in)
		if !ok {
			t.Fatalf("input %d not routed", in)
		}
		if out != want.out || gid != want.gid {
			t.Fatalf("Route(%d) = (%d, %d), want (%d, %d)", in, out, gid, want.out, want.gid)
		}
	}
	// Idle inputs route nowhere.
	for _, idle := range []int{2, 4, 7} {
		if _, _, ok := cfg.Route(idle); ok {
			t.Fatalf("idle input %d routed", idle)
		}
	}
	if cfg.MergeDepth() != 2 { // largest run = 3 sources -> 2 levels
		t.Fatalf("MergeDepth = %d, want 2", cfg.MergeDepth())
	}
	if cfg.Stages() != 2*cfg.pn.depth()+2 {
		t.Fatalf("Stages = %d", cfg.Stages())
	}
}

func TestConfigureRejections(t *testing.T) {
	f, _ := New(4)
	cases := map[string]map[packet.GroupID]GroupConn{
		"no inputs":    {1: {Output: 0}},
		"dup inputs":   {1: {Inputs: []int{0}, Output: 0}, 2: {Inputs: []int{0}, Output: 1}},
		"dup outputs":  {1: {Inputs: []int{0}, Output: 3}, 2: {Inputs: []int{1}, Output: 3}},
		"input range":  {1: {Inputs: []int{9}, Output: 0}},
		"output range": {1: {Inputs: []int{0}, Output: 9}},
	}
	for name, groups := range cases {
		if _, err := f.Configure(groups); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestConfigureEmpty(t *testing.T) {
	f, _ := New(4)
	cfg, err := f.Configure(nil)
	if err != nil {
		t.Fatal(err)
	}
	for in := 0; in < 4; in++ {
		if _, _, ok := cfg.Route(in); ok {
			t.Fatalf("input %d routed in empty config", in)
		}
	}
	if cfg.MergeDepth() != 0 {
		t.Fatalf("MergeDepth = %d", cfg.MergeDepth())
	}
}

// Property: for random many-to-many patterns, (a) every source reaches
// exactly its group's output, (b) sources of different groups are never
// merged — i.e. their PN positions land in disjoint runs — and (c) the
// full fabric (all ports busy) still routes.
func TestPropertyFabricIsolation(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		n := []int{4, 8, 16, 32, 64}[int(sizeSel)%5]
		rng := rand.New(rand.NewSource(seed))
		fab, err := New(n)
		if err != nil {
			return false
		}
		// Random grouping of a random subset of inputs.
		nGroups := 1 + rng.Intn(4)
		inPerm := rng.Perm(n)
		outPerm := rng.Perm(n)
		groups := make(map[packet.GroupID]GroupConn)
		idx := 0
		for gi := 0; gi < nGroups && idx < n; gi++ {
			size := 1 + rng.Intn(n/nGroups)
			if idx+size > n {
				size = n - idx
			}
			groups[packet.GroupID(gi+1)] = GroupConn{
				Inputs: append([]int(nil), inPerm[idx:idx+size]...),
				Output: outPerm[gi],
			}
			idx += size
		}
		cfg, err := fab.Configure(groups)
		if err != nil {
			return false
		}
		// (a) and (b): correct outputs, disjoint mid-stage runs.
		midOwner := make(map[int]packet.GroupID)
		for gid, gc := range groups {
			for _, in := range gc.Inputs {
				out, g2, ok := cfg.Route(in)
				if !ok || g2 != gid || out != gc.Output {
					return false
				}
				mid := cfg.pn.route(in)
				if owner, taken := midOwner[mid]; taken && owner != gid {
					return false // cross-group contact in the CCN
				}
				midOwner[mid] = gid
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFabricConfigure64(b *testing.B) {
	fab, _ := New(64)
	groups := map[packet.GroupID]GroupConn{}
	for g := 0; g < 8; g++ {
		var ins []int
		for i := 0; i < 8; i++ {
			ins = append(ins, g*8+i)
		}
		groups[packet.GroupID(g+1)] = GroupConn{Inputs: ins, Output: g}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fab.Configure(groups); err != nil {
			b.Fatal(err)
		}
	}
}
