package fabric

import (
	"fmt"
	"sort"

	"scmp/internal/packet"
)

// GroupConn describes one many-to-many connection through the fabric:
// the input ports carrying the group's sources and the output port that
// roots the group's multicast tree in the network.
type GroupConn struct {
	Inputs []int
	Output int
}

// Fabric is an n x n sandwich switching network (PN + CCN + DN).
type Fabric struct {
	n int
}

// New returns an n x n fabric. n must be a power of two, n >= 2.
func New(n int) (*Fabric, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fabric: size %d is not a power of two >= 2", n)
	}
	return &Fabric{n: n}, nil
}

// N returns the port count.
func (f *Fabric) N() int { return f.n }

// Configuration is a routed fabric state for a set of simultaneous
// many-to-many connections.
type Configuration struct {
	n      int
	pn     *benes
	dn     *benes
	groups map[packet.GroupID]GroupConn
	// runStart[line] = first line of the CCN run the line belongs to;
	// -1 for idle lines. The CCN merges each run onto its first line.
	runStart []int
	// groupOfRun[firstLine] identifies the run's group.
	groupOfRun map[int]packet.GroupID
}

// Configure routes a set of many-to-many connections through the
// sandwich network: the PN permutes each group's inputs into a
// contiguous run, the CCN merges each run onto its leading line, and
// the DN carries each leading line to the group's output port.
func (f *Fabric) Configure(groups map[packet.GroupID]GroupConn) (*Configuration, error) {
	usedIn := make(map[int]packet.GroupID)
	usedOut := make(map[int]packet.GroupID)
	total := 0
	gids := make([]packet.GroupID, 0, len(groups))
	for gid, gc := range groups {
		gids = append(gids, gid)
		if len(gc.Inputs) == 0 {
			return nil, fmt.Errorf("fabric: group %d has no inputs", gid)
		}
		if gc.Output < 0 || gc.Output >= f.n {
			return nil, fmt.Errorf("fabric: group %d output %d out of range", gid, gc.Output)
		}
		if prev, dup := usedOut[gc.Output]; dup {
			return nil, fmt.Errorf("fabric: output %d claimed by groups %d and %d", gc.Output, prev, gid)
		}
		usedOut[gc.Output] = gid
		for _, in := range gc.Inputs {
			if in < 0 || in >= f.n {
				return nil, fmt.Errorf("fabric: group %d input %d out of range", gid, in)
			}
			if prev, dup := usedIn[in]; dup {
				return nil, fmt.Errorf("fabric: input %d claimed by groups %d and %d", in, prev, gid)
			}
			usedIn[in] = gid
			total++
		}
	}
	if total > f.n {
		return nil, fmt.Errorf("fabric: %d inputs exceed fabric size %d", total, f.n)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })

	// PN: pack each group's inputs into a contiguous run of middle lines.
	pnPerm := make([]int, f.n)
	for i := range pnPerm {
		pnPerm[i] = -1
	}
	runStart := make([]int, f.n)
	for i := range runStart {
		runStart[i] = -1
	}
	groupOfRun := make(map[int]packet.GroupID)
	next := 0
	for _, gid := range gids {
		gc := groups[gid]
		ins := append([]int(nil), gc.Inputs...)
		sort.Ints(ins)
		start := next
		groupOfRun[start] = gid
		for _, in := range ins {
			pnPerm[in] = next
			runStart[next] = start
			next++
		}
	}
	fillPartial(pnPerm)

	// DN: each run's leading line goes to the group's output port.
	dnPerm := make([]int, f.n)
	for i := range dnPerm {
		dnPerm[i] = -1
	}
	for start, gid := range groupOfRun {
		dnPerm[start] = groups[gid].Output
	}
	fillPartial(dnPerm)

	pn, err := routeBenes(pnPerm)
	if err != nil {
		return nil, err
	}
	dn, err := routeBenes(dnPerm)
	if err != nil {
		return nil, err
	}
	cfgGroups := make(map[packet.GroupID]GroupConn, len(groups))
	for gid, gc := range groups {
		cfgGroups[gid] = GroupConn{Inputs: append([]int(nil), gc.Inputs...), Output: gc.Output}
	}
	cfg := &Configuration{
		n: f.n, pn: pn, dn: dn,
		groups: cfgGroups, runStart: runStart, groupOfRun: groupOfRun,
	}
	verifyHook(cfg)
	return cfg, nil
}

// fillPartial completes a partial permutation (-1 = unassigned) by
// assigning leftover outputs to leftover inputs in order.
func fillPartial(perm []int) {
	used := make([]bool, len(perm))
	for _, o := range perm {
		if o != -1 {
			used[o] = true
		}
	}
	free := 0
	for i, o := range perm {
		if o != -1 {
			continue
		}
		for used[free] {
			free++
		}
		perm[i] = free
		used[free] = true
	}
}

// N returns the configuration's port count.
func (c *Configuration) N() int { return c.n }

// Route traces a configured input port through PN, CCN and DN. ok is
// false for ports not carrying any group's source.
func (c *Configuration) Route(in int) (out int, gid packet.GroupID, ok bool) {
	if in < 0 || in >= c.n {
		return 0, 0, false
	}
	mid := c.pn.route(in)
	start := c.runStart[mid]
	if start == -1 {
		return 0, 0, false
	}
	gid = c.groupOfRun[start]
	// The CCN's reversed merge tree carries every line of the run onto
	// the run's leading line.
	out = c.dn.route(start)
	return out, gid, true
}

// MergeDepth returns the depth of the CCN merge tree needed for the
// largest configured group (ceil(log2(max run length)) levels).
func (c *Configuration) MergeDepth() int {
	longest := 0
	counts := make(map[int]int)
	for _, s := range c.runStart {
		if s != -1 {
			counts[s]++
			if counts[s] > longest {
				longest = counts[s]
			}
		}
	}
	depth := 0
	for size := 1; size < longest; size *= 2 {
		depth++
	}
	return depth
}

// Stages returns the total switching stages a cell traverses
// (PN depth + CCN merge depth + DN depth).
func (c *Configuration) Stages() int {
	return c.pn.depth() + c.MergeDepth() + c.dn.depth()
}
