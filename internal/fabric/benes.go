// Package fabric simulates the m-router's internal switching fabric
// (§II-B): a three-stage sandwich network made of a permutation network
// (PN), a connection component network (CCN) and a distribution network
// (DN). The PN gathers the input links of each multicast group into a
// contiguous run, the CCN merges each run in a reversed binary tree onto
// one line, and the DN permutes each merged line onto the output port
// that roots the group's multicast tree in the Internet. Sources of
// different groups are never connected inside the fabric.
//
// PN and DN are Beneš networks — rearrangeably non-blocking — routed
// with the classic looping algorithm.
package fabric

import "fmt"

// benes is an n x n Beneš network (n a power of two, n >= 2), built
// recursively: an input column and an output column of n/2 two-by-two
// crossbars around an upper and a lower n/2 Beneš subnetwork.
type benes struct {
	n        int
	cross    bool   // n == 2: the single switch's state
	inCross  []bool // n > 2: input-column switch states
	outCross []bool // n > 2: output-column switch states
	upper    *benes
	lower    *benes
}

// routeBenes builds switch settings realising the permutation perm
// (perm[i] is the output port for input i) using the looping algorithm.
func routeBenes(perm []int) (*benes, error) {
	n := len(perm)
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fabric: Beneš size %d is not a power of two >= 2", n)
	}
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for i, o := range perm {
		if o < 0 || o >= n {
			return nil, fmt.Errorf("fabric: output %d out of range", o)
		}
		if inv[o] != -1 {
			return nil, fmt.Errorf("fabric: output %d assigned twice", o)
		}
		inv[o] = i
	}
	return buildBenes(perm, inv), nil
}

func buildBenes(perm, inv []int) *benes {
	n := len(perm)
	if n == 2 {
		return &benes{n: 2, cross: perm[0] == 1}
	}
	// Loop colouring: colour[i] selects input i's subnetwork (0 = upper).
	// Constraints: switch partners (i, i^1) differ; inputs whose outputs
	// are switch partners differ.
	colour := make([]int, n)
	for i := range colour {
		colour[i] = -1
	}
	for start := 0; start < n; start++ {
		if colour[start] != -1 {
			continue
		}
		i, c := start, 0
		for i != -1 && colour[i] == -1 {
			colour[i] = c
			partner := i ^ 1
			if colour[partner] != -1 {
				break
			}
			colour[partner] = 1 - c
			// The input sharing partner's output switch must take
			// partner's colour's complement = c.
			j := inv[perm[partner]^1]
			i = j
		}
	}
	half := n / 2
	upperPerm := make([]int, half)
	lowerPerm := make([]int, half)
	inCross := make([]bool, half)
	outCross := make([]bool, half)
	for i, c := range colour {
		s, t := i/2, perm[i]/2
		if c == 0 {
			upperPerm[s] = t
		} else {
			lowerPerm[s] = t
		}
		if i%2 == 0 {
			inCross[s] = c == 1 // even port routed to the lower subnet
		}
		if perm[i]%2 == 0 {
			outCross[t] = c == 1 // even output fed from the lower subnet
		}
	}
	upInv := invert(upperPerm)
	loInv := invert(lowerPerm)
	return &benes{
		n:        n,
		inCross:  inCross,
		outCross: outCross,
		upper:    buildBenes(upperPerm, upInv),
		lower:    buildBenes(lowerPerm, loInv),
	}
}

func invert(perm []int) []int {
	inv := make([]int, len(perm))
	for i, o := range perm {
		inv[o] = i
	}
	return inv
}

// route traces input port in through the switch settings to its output.
func (b *benes) route(in int) int {
	if b.n == 2 {
		if b.cross {
			return in ^ 1
		}
		return in
	}
	s := in / 2
	toLower := in%2 == 1
	if b.inCross[s] {
		toLower = !toLower
	}
	var t int
	if toLower {
		t = b.lower.route(s)
	} else {
		t = b.upper.route(s)
	}
	fromLower := toLower
	outBit := 0
	if fromLower != b.outCross[t] {
		outBit = 1
	}
	return 2*t + outBit
}

// depth returns the number of switching stages (2*log2(n) - 1).
func (b *benes) depth() int {
	if b.n == 2 {
		return 1
	}
	return 2 + b.upper.depth()
}
