package fabric

import (
	"fmt"
	"sort"

	"scmp/internal/packet"
)

// Cell-level simulation of a configured sandwich network. The fabric is
// synchronous: time advances in cell slots, a cell crosses one switching
// stage per slot, and cells of the same group that reach the CCN merge
// tree in the same slot are combined onto the group's line — the
// conference-network semantics of the paper's references [11], [12]
// (simultaneous sources are merged, never queued against each other,
// and sources of different groups never meet).

// Arrival is one merged cell emerging from an output port.
type Arrival struct {
	Slot    int // slot the merged cell leaves the fabric
	Output  int
	Group   packet.GroupID
	Sources []int // input ports whose cells were merged, ascending
}

// SimulateStream injects cells into a configured fabric over a sequence
// of slots: injections[s] lists the input ports carrying a cell in slot
// s. It returns the merged arrivals, ordered by (slot, output). Cells on
// idle (unconfigured) inputs are rejected with an error, because a real
// fabric has nowhere to route them.
func (c *Configuration) SimulateStream(injections [][]int) ([]Arrival, error) {
	latency := c.Stages()
	var out []Arrival
	for slot, inputs := range injections {
		// Group this slot's cells by the run (group) they merge into.
		merged := map[int][]int{} // run start -> sources
		seen := map[int]bool{}
		for _, in := range inputs {
			if in < 0 || in >= c.n {
				return nil, fmt.Errorf("fabric: slot %d: input %d out of range", slot, in)
			}
			if seen[in] {
				return nil, fmt.Errorf("fabric: slot %d: input %d injected twice", slot, in)
			}
			seen[in] = true
			mid := c.pn.route(in)
			start := c.runStart[mid]
			if start == -1 {
				return nil, fmt.Errorf("fabric: slot %d: input %d carries no group", slot, in)
			}
			merged[start] = append(merged[start], in)
		}
		starts := make([]int, 0, len(merged))
		for s := range merged {
			starts = append(starts, s)
		}
		sort.Ints(starts)
		for _, s := range starts {
			sources := merged[s]
			sort.Ints(sources)
			out = append(out, Arrival{
				Slot:    slot + latency,
				Output:  c.dn.route(s),
				Group:   c.groupOfRun[s],
				Sources: sources,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		return out[i].Output < out[j].Output
	})
	return out, nil
}

// Throughput reports the fabric's per-slot delivery capacity for a
// configuration: the number of distinct group outputs that can emit a
// merged cell simultaneously (one per configured group — the sandwich
// network is non-blocking across groups).
func (c *Configuration) Throughput() int { return len(c.groups) }
