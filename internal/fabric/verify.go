package fabric

import (
	"fmt"
	"sort"

	"scmp/internal/packet"
)

// Groups returns a copy of the configured group connections, for
// external validators (scmp/internal/invariant) and diagnostics.
func (c *Configuration) Groups() map[packet.GroupID]GroupConn {
	out := make(map[packet.GroupID]GroupConn, len(c.groups))
	for gid, gc := range c.groups {
		out[gid] = GroupConn{Inputs: append([]int(nil), gc.Inputs...), Output: gc.Output}
	}
	return out
}

// Verify checks the configuration's group-isolation property from the
// inside: every line of a CCN run belongs to exactly the group the run
// is labelled with, every group's inputs land on its own run, runs are
// contiguous, and each run's leading line reaches the group's output
// through the DN. This is the conference-switch guarantee the paper's
// m-router throughput argument rests on — a violation would merge two
// groups' cells. It returns nil or a descriptive error; the invariants
// build tag makes Configure call it on every routed configuration.
func (c *Configuration) Verify() error {
	gids := make([]packet.GroupID, 0, len(c.groups))
	for gid := range c.groups {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })

	// Each group's inputs must occupy one run, labelled with the group.
	usedOut := make(map[int]packet.GroupID)
	runOf := make(map[packet.GroupID]int)
	for _, gid := range gids {
		gc := c.groups[gid]
		if prev, dup := usedOut[gc.Output]; dup {
			return fmt.Errorf("fabric: output %d serves groups %d and %d", gc.Output, prev, gid)
		}
		usedOut[gc.Output] = gid
		for _, in := range gc.Inputs {
			mid := c.pn.route(in)
			start := c.runStart[mid]
			if start == -1 {
				return fmt.Errorf("fabric: group %d input %d lands on idle middle line %d", gid, in, mid)
			}
			if got := c.groupOfRun[start]; got != gid {
				return fmt.Errorf("fabric: group %d input %d lands in group %d's run", gid, in, got)
			}
			if prev, seen := runOf[gid]; seen && prev != start {
				return fmt.Errorf("fabric: group %d split across runs %d and %d", gid, prev, start)
			}
			runOf[gid] = start
		}
		if start, seen := runOf[gid]; seen {
			if out := c.dn.route(start); out != gc.Output {
				return fmt.Errorf("fabric: group %d's run %d exits at output %d, want %d", gid, start, out, gc.Output)
			}
		}
	}

	// Run labels must refer to configured groups, runs must be
	// contiguous, and their line counts must match the group sizes.
	lines := make(map[packet.GroupID]int)
	for mid, start := range c.runStart {
		if start == -1 {
			continue
		}
		gid, labelled := c.groupOfRun[start]
		if !labelled {
			return fmt.Errorf("fabric: middle line %d belongs to unlabelled run %d", mid, start)
		}
		if _, known := c.groups[gid]; !known {
			return fmt.Errorf("fabric: run %d labelled with unconfigured group %d", start, gid)
		}
		if mid > 0 && c.runStart[mid-1] != start && start != mid {
			return fmt.Errorf("fabric: run %d is not contiguous at middle line %d", start, mid)
		}
		lines[gid]++
	}
	for _, gid := range gids {
		if got, want := lines[gid], len(c.groups[gid].Inputs); got != want {
			return fmt.Errorf("fabric: group %d run carries %d lines for %d inputs", gid, got, want)
		}
	}
	return nil
}

// Tamper relabels the CCN run that input in feeds as belonging to gid —
// a deliberate group-isolation violation. It exists solely so tests
// outside this package can hand the invariant checker a corrupted
// configuration; production code must never call it.
func (c *Configuration) Tamper(in int, gid packet.GroupID) {
	mid := c.pn.route(in)
	if start := c.runStart[mid]; start != -1 {
		c.groupOfRun[start] = gid
	}
}
