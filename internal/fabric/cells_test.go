package fabric

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"scmp/internal/packet"
)

func confConfig(t *testing.T) *Configuration {
	t.Helper()
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Configure(map[packet.GroupID]GroupConn{
		1: {Inputs: []int{0, 3, 5}, Output: 2},
		2: {Inputs: []int{1, 6}, Output: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestSimulateMergesSameGroupSameSlot(t *testing.T) {
	cfg := confConfig(t)
	arrivals, err := cfg.SimulateStream([][]int{{0, 3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 1 {
		t.Fatalf("arrivals = %+v", arrivals)
	}
	a := arrivals[0]
	if a.Output != 2 || a.Group != 1 {
		t.Fatalf("arrival = %+v", a)
	}
	if !reflect.DeepEqual(a.Sources, []int{0, 3, 5}) {
		t.Fatalf("sources = %v", a.Sources)
	}
	if a.Slot != cfg.Stages() {
		t.Fatalf("slot = %d, want pipeline latency %d", a.Slot, cfg.Stages())
	}
}

func TestSimulateKeepsGroupsApart(t *testing.T) {
	cfg := confConfig(t)
	arrivals, err := cfg.SimulateStream([][]int{{0, 1, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %+v", arrivals)
	}
	for _, a := range arrivals {
		switch a.Group {
		case 1:
			if !reflect.DeepEqual(a.Sources, []int{0, 5}) || a.Output != 2 {
				t.Fatalf("group 1 arrival = %+v", a)
			}
		case 2:
			if !reflect.DeepEqual(a.Sources, []int{1, 6}) || a.Output != 7 {
				t.Fatalf("group 2 arrival = %+v", a)
			}
		default:
			t.Fatalf("unexpected group %d", a.Group)
		}
	}
}

func TestSimulateMultiSlotOrdering(t *testing.T) {
	cfg := confConfig(t)
	arrivals, err := cfg.SimulateStream([][]int{{0}, {}, {3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %+v", arrivals)
	}
	lat := cfg.Stages()
	if arrivals[0].Slot != lat || arrivals[1].Slot != lat+2 || arrivals[2].Slot != lat+2 {
		t.Fatalf("slots = %d %d %d", arrivals[0].Slot, arrivals[1].Slot, arrivals[2].Slot)
	}
	// Same slot ordered by output port.
	if arrivals[1].Output > arrivals[2].Output {
		t.Fatal("same-slot arrivals not ordered by output")
	}
}

func TestSimulateRejections(t *testing.T) {
	cfg := confConfig(t)
	cases := map[string][][]int{
		"idle input":    {{2}},
		"out of range":  {{9}},
		"negative":      {{-1}},
		"double inject": {{0, 0}},
	}
	for name, inj := range cases {
		if _, err := cfg.SimulateStream(inj); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestThroughput(t *testing.T) {
	if got := confConfig(t).Throughput(); got != 2 {
		t.Fatalf("Throughput = %d, want 2", got)
	}
}

// Property: every arrival's sources belong to exactly the arrival's
// group, all injected cells are accounted for, and latency is uniform.
func TestPropertySimulationConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab, err := New(16)
		if err != nil {
			return false
		}
		cfg, err := fab.Configure(map[packet.GroupID]GroupConn{
			1: {Inputs: []int{0, 1, 2, 3}, Output: 5},
			2: {Inputs: []int{4, 5, 6}, Output: 9},
			3: {Inputs: []int{8, 12}, Output: 0},
		})
		if err != nil {
			return false
		}
		owner := map[int]packet.GroupID{}
		for gid, gc := range map[packet.GroupID][]int{1: {0, 1, 2, 3}, 2: {4, 5, 6}, 3: {8, 12}} {
			for _, in := range gc {
				owner[in] = gid
			}
		}
		// Random injections over 5 slots. Inputs are visited in sorted
		// order so the rng draws (and thus the generated case) are a pure
		// function of the seed, not of map iteration order.
		inputs := make([]int, 0, len(owner))
		for in := range owner {
			inputs = append(inputs, in)
		}
		sort.Ints(inputs)
		injections := make([][]int, 5)
		injected := 0
		for s := range injections {
			for _, in := range inputs {
				if rng.Float64() < 0.5 {
					injections[s] = append(injections[s], in)
					injected++
				}
			}
		}
		arrivals, err := cfg.SimulateStream(injections)
		if err != nil {
			return false
		}
		arrived := 0
		for _, a := range arrivals {
			if a.Slot < cfg.Stages() {
				return false
			}
			for _, src := range a.Sources {
				if owner[src] != a.Group {
					return false // cross-group mixing
				}
				arrived++
			}
		}
		return arrived == injected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
