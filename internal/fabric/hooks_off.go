//go:build !invariants

package fabric

// verifyHook is a no-op unless built with -tags invariants, which turns
// it into a Verify call on every configuration Configure routes.
func verifyHook(*Configuration) {}
