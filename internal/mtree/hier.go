package mtree

import (
	"fmt"
	"math"

	"scmp/internal/topology"
)

// HierDCDM is the inter-domain composer of the hierarchical SCMP mode
// (DESIGN.md §15): one incremental DCDM per *active* domain, each run
// over that domain's induced subgraph with its own lazy all-pairs
// tables, stitched into a single composed global tree rooted at the
// core domain's m-router. Domains activate on their first member join —
// realising a concrete splice path from the core m-router over the
// contracted backbone graph to the border router where it enters the
// domain, which anchors the domain subtree (head-to-tail with the
// splice, so local grafts never run against a splice edge) — and
// deactivate when their last member leaves, so resident routing state
// is proportional to the *touched* domains, not the whole network.
//
// QoS accounting stays exact across the domain boundary: the composed
// tree tracks real link-delay sums on the realized global paths, and an
// absolute delay budget pushes down to each domain as
// (budget − exact splice delay of that domain's anchor).
//
// With a single domain the composer degenerates to the flat engine
// byte-for-byte: the domain subgraph *is* the original graph (same
// pointer, identity id mapping), the local DCDM sees exactly the flat
// inputs, and the composed tree mirrors its every graft — the
// equivalence the differential gate (hier_test.go) enforces.
type HierDCDM struct {
	view     *topology.DomainView
	kappa    float64
	budget   float64           // absolute QoS budget; 0 = relative-only
	mrouters []topology.NodeID // per-domain m-router, index = domain id
	core     int
	root     topology.NodeID // mrouters[core]
	tree     *Tree           // composed global tree (authoritative structure)
	locals   []*hierLocal    // nil until the domain activates
	active   int
}

type hierLocal struct {
	dcdm *DCDM
	sub  *topology.DomainSub
	// anchor is the domain subtree's root in global ids: the border
	// router where the splice enters the domain (the core m-router for
	// the core domain). Rooting at the entry point — not the domain
	// m-router — keeps the splice and the local tree orientation-
	// aligned: the splice ends exactly where local paths begin, so a
	// local graft can never run against a splice edge inside its own
	// domain.
	anchor topology.NodeID
}

// HierJoinResult describes how a join changed the composed tree, in
// the terms the per-domain m-router runtime distributes: a local graft
// path, plus — when the join activated its domain — the border splice
// the core m-router must install.
type HierJoinResult struct {
	Member topology.NodeID
	Domain int
	// AlreadyOn: the member was already a relay on its domain tree;
	// only the membership bit changed.
	AlreadyOn bool
	// Activated: this join was the domain's first — SplicePath holds
	// the newly grafted segment of the realized core→m-router splice
	// (nil for the core domain itself, and empty of new hops when the
	// domain m-router was already a relay on the composed tree).
	Activated  bool
	SplicePath []topology.NodeID
	// Path is the global graft path of the local (intra-domain) graft,
	// oriented graft-node-first; nil when AlreadyOn.
	Path []topology.NodeID
	// Restructured reports a composed-tree restructure (loop break /
	// reparent) — the signal to re-distribute the whole tree.
	Restructured bool
	// BestEffort: the member's delay exceeds the pushed-down absolute
	// budget and it was connected by its shortest-delay path instead.
	BestEffort bool
}

// HierLeaveResult describes how a leave changed the composed tree.
type HierLeaveResult struct {
	Member topology.NodeID
	Domain int
	// Pruned lists the composed-tree nodes removed by the cascading
	// prune, member-first order.
	Pruned []topology.NodeID
	// Deactivated: this was the domain's last member; its local DCDM
	// state has been released.
	Deactivated bool
}

// NewHierDCDM builds the composer for the given domain view. mrouters
// holds one m-router per domain (index = domain id; each must lie in
// its domain — topology.DomainView.MRouters gives the default
// placement), core selects the core domain, and kappa is the paper's
// relative delay-bound factor applied within every domain.
func NewHierDCDM(view *topology.DomainView, mrouters []topology.NodeID, core int, kappa float64) *HierDCDM {
	if len(mrouters) != view.K() {
		panic(fmt.Sprintf("mtree: %d m-routers for %d domains", len(mrouters), view.K()))
	}
	for d, m := range mrouters {
		if view.Domain(m) != d {
			panic(fmt.Sprintf("mtree: m-router %d assigned to domain %d but lies in domain %d", m, d, view.Domain(m)))
		}
	}
	if core < 0 || core >= view.K() {
		panic(fmt.Sprintf("mtree: core domain %d out of range [0,%d)", core, view.K()))
	}
	h := &HierDCDM{
		view:     view,
		kappa:    kappa,
		mrouters: append([]topology.NodeID(nil), mrouters...),
		core:     core,
		root:     mrouters[core],
		locals:   make([]*hierLocal, view.K()),
	}
	h.tree = NewTree(view.Graph(), h.root)
	// The core domain is active from the start — its m-router is the
	// composed root — exactly as the flat engine's tree starts rooted.
	h.activate(core, nil)
	return h
}

// SetQoSBudget imposes an absolute bound on every member's composed
// multicast delay. It pushes down to each active domain as the budget
// minus that domain's exact splice delay; domains whose splice alone
// exhausts the budget admit every member best-effort. Must be set
// before the first non-core activation to apply uniformly.
func (h *HierDCDM) SetQoSBudget(budget float64) {
	if budget < 0 {
		budget = 0
	}
	h.budget = budget
	for d, ld := range h.locals {
		if ld != nil {
			ld.dcdm.SetQoSBudget(h.localBudget(d))
		}
	}
}

// localBudget is the absolute budget pushed down to domain d: the
// global budget minus the exact realized splice delay of d's anchor
// (its splice entry border router). A domain whose splice exhausts the
// budget gets an infinitesimal budget (not zero — zero would *remove*
// the constraint) so every member is flagged best-effort.
func (h *HierDCDM) localBudget(d int) float64 {
	if h.budget <= 0 {
		return 0
	}
	rem := h.budget - h.tree.Delay(h.locals[d].anchor)
	if rem <= 0 {
		return math.SmallestNonzeroFloat64
	}
	return rem
}

// Tree returns the composed global tree. Its delays are exact link-
// delay sums over the realized global paths — the QoS accounting the
// tentpole requires across domain boundaries.
func (h *HierDCDM) Tree() *Tree { return h.tree }

// View returns the domain view the composer runs over.
func (h *HierDCDM) View() *topology.DomainView { return h.view }

// Core returns the core domain id; Root its m-router (the composed
// tree's root).
func (h *HierDCDM) Core() int                   { return h.core }
func (h *HierDCDM) Root() topology.NodeID       { return h.root }
func (h *HierDCDM) ActiveDomains() int          { return h.active }
func (h *HierDCDM) QoSBudget() float64          { return h.budget }
func (h *HierDCDM) MRouters() []topology.NodeID { return h.mrouters }

// LocalTree returns domain d's local tree, nil when d is inactive
// (tests and the invariant checker).
func (h *HierDCDM) LocalTree(d int) *Tree {
	if h.locals[d] == nil {
		return nil
	}
	return h.locals[d].dcdm.Tree()
}

// DomainAnchor returns the domain subtree's root in global ids — the
// border router where the splice enters the domain (the core m-router
// for the core domain) — and whether the domain is active.
func (h *HierDCDM) DomainAnchor(d int) (topology.NodeID, bool) {
	if h.locals[d] == nil {
		return -1, false
	}
	return h.locals[d].anchor, true
}

// Join admits member s: activates s's domain if this is its first
// member (realising and grafting the backbone splice), runs the
// domain-local incremental DCDM join, and mirrors the graft onto the
// composed tree in global coordinates.
//
//scmplint:hotpath
func (h *HierDCDM) Join(s topology.NodeID) HierJoinResult {
	d := h.view.Domain(s)
	res := HierJoinResult{Member: s, Domain: d}
	ld := h.locals[d]
	if ld == nil {
		// Domain activation (splice realization, local-engine build) is
		// the amortized slow path: it runs once per domain membership
		// epoch, not per join, so its allocations are off the budget.
		ld = h.activate(d, &res) //scmplint:ignore hotalloc
	}
	lres := ld.dcdm.Join(ld.sub.Local(s))
	res.BestEffort = lres.BestEffort
	if lres.AlreadyOn {
		res.AlreadyOn = true
		if !h.tree.IsMember(s) {
			h.tree.SetMember(s, true)
		}
		hierCheckHook(h)
		return res
	}
	gpath := ld.sub.GlobalPath(lres.Path) //scmplint:ignore hotalloc — the one budgeted alloc: the translated path handed to the caller
	_, restructured := h.tree.Graft(gpath)
	h.tree.SetMember(s, true)
	res.Path = gpath
	res.Restructured = restructured
	hierCheckHook(h)
	return res
}

// Leave removes member s, pruning the composed tree and releasing the
// domain's local engine when its last member departs.
//
//scmplint:hotpath
func (h *HierDCDM) Leave(s topology.NodeID) HierLeaveResult {
	d := h.view.Domain(s)
	res := HierLeaveResult{Member: s, Domain: d}
	ld := h.locals[d]
	if ld == nil {
		return res
	}
	lsID := ld.sub.Local(s)
	if !ld.dcdm.Tree().IsMember(lsID) {
		return res
	}
	ld.dcdm.Leave(lsID)
	if h.tree.IsMember(s) {
		res.Pruned = h.tree.Leave(s)
	}
	if ld.dcdm.Tree().MemberCount() == 0 {
		// Last member gone: release the local engine. Composed-tree
		// relays this domain still carries for *other* domains'
		// splices stay — a later reactivation re-splices through them.
		h.locals[d] = nil
		h.active--
		res.Deactivated = true
	}
	hierCheckHook(h)
	return res
}

// activate brings domain d up: realizes the splice path from the
// composed root over the backbone graph (non-core domains), grafts its
// new suffix onto the composed tree, and builds the local DCDM over
// the domain subgraph rooted at the splice's entry border router.
func (h *HierDCDM) activate(d int, res *HierJoinResult) *hierLocal {
	sub := h.view.Sub(d)
	ld := &hierLocal{sub: sub, anchor: h.root}
	h.locals[d] = ld
	h.active++
	if res != nil {
		res.Activated = true
	}
	if d != h.core {
		full := h.realizeSplice(d)
		ld.anchor = full[len(full)-1]
		// Graft only the suffix past the LAST composed-tree node on the
		// path: everything before it is already installed, and
		// truncating there means the graft can only attach fresh nodes
		// — it can never re-enter the tree, so splices never trigger a
		// restructure and the composed structure stays consistent with
		// what the m-routers install (the suffix is exactly the BRANCH
		// the core distributes).
		last := 0
		for i, v := range full {
			if h.tree.OnTree(v) {
				last = i
			}
		}
		suffix := full[last:]
		h.tree.Graft(suffix)
		if res != nil {
			res.SplicePath = suffix
		}
	}
	ld.dcdm = NewDCDM(sub.G, sub.Local(ld.anchor), h.kappa, sub.Delay(), sub.Cost())
	if h.budget > 0 {
		ld.dcdm.SetQoSBudget(h.localBudget(d))
	}
	return ld
}

// realizeSplice maps the backbone shortest-delay domain path core→d to
// a concrete global node path from the composed root to the border
// router where the final backbone hop enters d: per backbone hop, the
// intra-domain shortest-delay segment to the chosen border link's exit
// node (per-domain lazy tables), then the border link itself. The path
// deliberately stops at d's entry border router — the domain subtree
// anchors there, so the splice and the local tree meet head-to-tail
// with no overlap — and its delay sum is the exact inter-domain delay
// the QoS accounting charges.
func (h *HierDCDM) realizeSplice(d int) []topology.NodeID {
	bbRow := h.view.BackboneDelay().Row(topology.NodeID(h.core))
	domPath := bbRow.To(topology.NodeID(d))
	if domPath == nil {
		panic(fmt.Sprintf("mtree: domain %d unreachable from core domain %d over the backbone", d, h.core))
	}
	path := make([]topology.NodeID, 1, 16)
	path[0] = h.root
	cur := h.root
	for i := 1; i < len(domPath); i++ {
		from, to := int(domPath[i-1]), int(domPath[i])
		bl, ok := h.view.Border(from, to)
		if !ok {
			panic(fmt.Sprintf("mtree: backbone edge %d-%d has no border link", from, to))
		}
		sub := h.view.Sub(from)
		seg := sub.Delay().Row(sub.Local(cur)).To(sub.Local(bl.From))
		if seg == nil {
			panic(fmt.Sprintf("mtree: no intra-domain path %d->%d in domain %d", cur, bl.From, from))
		}
		for _, l := range seg[1:] {
			path = append(path, sub.Global(l))
		}
		path = append(path, bl.To)
		cur = bl.To
	}
	return path
}

// TableBytes reports the resident routing-table bytes of the view the
// composer consults (shared across groups using the same view).
func (h *HierDCDM) TableBytes() int64 { return h.view.TableBytes() }

// Validate checks the composed/local consistency contract the
// correctness argument rests on (DESIGN.md §15): the composed tree is
// a valid tree with exact delay accounting; every active domain's
// m-router sits on the composed tree; every *local-tree* node's
// composed parent equals its local parent translated to global ids
// (local roots excepted — their composed parent is the splice); and
// membership bits agree node-for-node, summing to the composed count.
func (h *HierDCDM) Validate() error {
	if err := h.tree.Validate(); err != nil {
		return fmt.Errorf("composed tree: %w", err)
	}
	totalMembers := 0
	for d, ld := range h.locals {
		if ld == nil {
			continue
		}
		lt := ld.dcdm.Tree()
		if err := lt.Validate(); err != nil {
			return fmt.Errorf("domain %d local tree: %w", d, err)
		}
		if !h.tree.OnTree(ld.anchor) {
			return fmt.Errorf("domain %d active but its anchor %d is off the composed tree", d, ld.anchor)
		}
		totalMembers += lt.MemberCount()
		for _, lv := range lt.Nodes() {
			gv := ld.sub.Global(lv)
			if !h.tree.OnTree(gv) {
				return fmt.Errorf("domain %d: local-tree node %d is off the composed tree", d, gv)
			}
			if lt.IsMember(lv) != h.tree.IsMember(gv) {
				return fmt.Errorf("domain %d: node %d membership bit differs local=%v composed=%v",
					d, gv, lt.IsMember(lv), h.tree.IsMember(gv))
			}
			lp, ok := lt.Parent(lv)
			if !ok {
				continue // local root: composed parent is the splice (or none for the core)
			}
			gp, ok := h.tree.Parent(gv)
			if !ok || gp != ld.sub.Global(lp) {
				return fmt.Errorf("domain %d: node %d composed parent %d != local parent %d",
					d, gv, gp, ld.sub.Global(lp))
			}
		}
	}
	if totalMembers != h.tree.MemberCount() {
		return fmt.Errorf("local member counts sum to %d but composed tree has %d members",
			totalMembers, h.tree.MemberCount())
	}
	return nil
}
