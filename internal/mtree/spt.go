package mtree

import "scmp/internal/topology"

// SPT builds the shortest-delay-path tree: the union of the
// shortest-delay paths from the root to every member. This is the tree
// DVMRP, MOSPF and CBT all use in the paper's Fig. 7 comparison (with
// the CBT core placed at the source, the three trees coincide: every
// member hangs off the root by its shortest-delay path).
//
// spDelay may be nil (computed internally).
func SPT(g *topology.Graph, root topology.NodeID, members []topology.NodeID, spDelay *topology.AllPairs) *Tree {
	var sp *topology.Paths
	if spDelay != nil {
		sp = spDelay.Row(root)
	} else {
		sp = topology.Shortest(g, root, topology.ByDelay)
	}
	tree := NewTree(g, root)
	for _, m := range members {
		path := sp.To(m)
		if path == nil {
			continue // unreachable member: skip, like a partitioned domain
		}
		for i := 1; i < len(path); i++ {
			if !tree.OnTree(path[i]) {
				tree.attach(path[i], path[i-1])
			}
		}
		tree.SetMember(m, true)
	}
	return tree
}
