package mtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/topology"
)

func TestSPTShape(t *testing.T) {
	g := fig5Graph()
	tr := SPT(g, 0, []topology.NodeID{2, 4}, nil)
	// Shortest-delay routes: 0-1-2 and 0-1-2-4.
	if !tr.OnTree(1) || tr.OnTree(3) {
		t.Fatal("SPT should use the fast rail only")
	}
	if tr.TreeDelay() != 3 {
		t.Fatalf("TreeDelay = %g, want 3", tr.TreeDelay())
	}
	if tr.Cost() != 21 {
		t.Fatalf("Cost = %g, want 21", tr.Cost())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSPTEmptyMembers(t *testing.T) {
	tr := SPT(fig5Graph(), 0, nil, nil)
	if tr.Size() != 1 {
		t.Fatalf("Size = %d, want 1", tr.Size())
	}
}

func TestSPTMemberIsRoot(t *testing.T) {
	tr := SPT(fig5Graph(), 0, []topology.NodeID{0}, nil)
	if tr.Size() != 1 || !tr.IsMember(0) {
		t.Fatalf("size=%d member(0)=%v", tr.Size(), tr.IsMember(0))
	}
}

func TestKMBPrefersCheapRail(t *testing.T) {
	g := fig5Graph()
	tr := KMB(g, 0, []topology.NodeID{2}, nil)
	if tr.Cost() != 2 {
		t.Fatalf("KMB cost = %g, want 2 (cheap rail)", tr.Cost())
	}
	if tr.OnTree(1) {
		t.Fatal("KMB should avoid the expensive rail")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKMBEmptyAndSelf(t *testing.T) {
	g := fig5Graph()
	if tr := KMB(g, 0, nil, nil); tr.Size() != 1 {
		t.Fatalf("empty KMB size = %d", tr.Size())
	}
	if tr := KMB(g, 0, []topology.NodeID{0}, nil); tr.Size() != 1 {
		t.Fatalf("self KMB size = %d", tr.Size())
	}
}

func TestKMBDuplicateMembers(t *testing.T) {
	g := fig5Graph()
	tr := KMB(g, 0, []topology.NodeID{2, 2, 4, 4}, nil)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.IsMember(2) || !tr.IsMember(4) {
		t.Fatal("members lost")
	}
}

// dreyfusWagner computes the optimal Steiner tree cost for small graphs;
// used as the reference for the KMB approximation guarantee.
func dreyfusWagner(g *topology.Graph, terminals []topology.NodeID) float64 {
	n := g.N()
	k := len(terminals)
	if k <= 1 {
		return 0
	}
	sp := topology.NewAllPairs(g, topology.ByCost)
	const inf = math.MaxFloat64 / 4
	// dp[S][v]: min cost of a tree spanning terminal-set S ∪ {v}.
	dp := make([][]float64, 1<<uint(k))
	for S := range dp {
		dp[S] = make([]float64, n)
		for v := range dp[S] {
			dp[S][v] = inf
		}
	}
	for i, t := range terminals {
		for v := 0; v < n; v++ {
			dp[1<<uint(i)][v] = sp.Row(t).Dist[v]
		}
	}
	for S := 1; S < 1<<uint(k); S++ {
		if S&(S-1) == 0 {
			continue // singleton handled above
		}
		// Merge two subsets at v.
		for sub := (S - 1) & S; sub > 0; sub = (sub - 1) & S {
			other := S &^ sub
			if other == 0 || sub > other {
				continue
			}
			for v := 0; v < n; v++ {
				if c := dp[sub][v] + dp[other][v]; c < dp[S][v] {
					dp[S][v] = c
				}
			}
		}
		// Relax: route the merged tree to every other node.
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if c := dp[S][u] + sp.Row(topology.NodeID(u)).Dist[v]; c < dp[S][v] {
					dp[S][v] = c
				}
			}
		}
	}
	full := 1<<uint(k) - 1
	best := inf
	for v := 0; v < n; v++ {
		if dp[full][v] < best {
			best = dp[full][v]
		}
	}
	return best
}

// Property: KMB spans root+members, stays within the 2x approximation
// guarantee of the optimum, and is never better than the optimum.
func TestPropertyKMBApproximation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(10, 3), rng)
		if err != nil {
			return false
		}
		members := pickMembers(rng, g.N(), 3, 0)
		tr := KMB(g, 0, members, nil)
		if err := tr.Validate(); err != nil {
			return false
		}
		for _, m := range members {
			if !tr.OnTree(m) || !tr.IsMember(m) {
				return false
			}
		}
		opt := dreyfusWagner(g, append([]topology.NodeID{0}, members...))
		cost := tr.Cost()
		// 2(1 - 1/l) < 2; allow float slack.
		return cost >= opt-1e-6 && cost <= 2*opt+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: SPT achieves the minimum possible tree delay (each member
// at exactly its unicast delay) and spans all members.
func TestPropertySPTDelayOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(20, 4), rng)
		if err != nil {
			return false
		}
		members := pickMembers(rng, g.N(), 6, 0)
		spDelay := topology.NewAllPairs(g, topology.ByDelay)
		tr := SPT(g, 0, members, spDelay)
		if err := tr.Validate(); err != nil {
			return false
		}
		for _, m := range members {
			if math.Abs(tr.Delay(m)-spDelay.Row(0).Delay[m]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFig7Ordering verifies the headline statistical shape of Fig. 7 on
// averages over seeds: cost(KMB) <= cost(DCDM loosest) <= cost(SPT) and
// delay(SPT) <= delay(DCDM tightest) <= delay(KMB).
func TestFig7Ordering(t *testing.T) {
	var kmbCost, dcdmCost, sptCost float64
	var kmbDelay, dcdmDelay, sptDelay float64
	const runs = 15
	for seed := int64(0); seed < runs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wg, err := topology.Waxman(topology.DefaultWaxman(60), rng)
		if err != nil {
			t.Fatal(err)
		}
		g := wg.Graph
		members := pickMembers(rng, g.N(), 20, 0)
		spDelay := topology.NewAllPairs(g, topology.ByDelay)
		spCost := topology.NewAllPairs(g, topology.ByCost)

		kmb := KMB(g, 0, members, spCost)
		spt := SPT(g, 0, members, spDelay)
		loose := NewDCDM(g, 0, math.Inf(1), spDelay, spCost)
		tight := NewDCDM(g, 0, 1, spDelay, spCost)
		for _, m := range members {
			loose.Join(m)
			tight.Join(m)
		}
		kmbCost += kmb.Cost()
		sptCost += spt.Cost()
		dcdmCost += loose.Tree().Cost()
		kmbDelay += kmb.TreeDelay()
		sptDelay += spt.TreeDelay()
		dcdmDelay += tight.Tree().TreeDelay()
	}
	if !(kmbCost <= dcdmCost*1.05 && dcdmCost < sptCost) {
		t.Fatalf("cost ordering violated: KMB %.0f, DCDM-loosest %.0f, SPT %.0f", kmbCost/runs, dcdmCost/runs, sptCost/runs)
	}
	if !(sptDelay <= dcdmDelay*1.001 && dcdmDelay < kmbDelay) {
		t.Fatalf("delay ordering violated: SPT %.0f, DCDM-tightest %.0f, KMB %.0f", sptDelay/runs, dcdmDelay/runs, kmbDelay/runs)
	}
}

func BenchmarkKMB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	wg, err := topology.Waxman(topology.DefaultWaxman(100), rng)
	if err != nil {
		b.Fatal(err)
	}
	g := wg.Graph
	spCost := topology.NewAllPairs(g, topology.ByCost)
	members := pickMembers(rng, g.N(), 40, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KMB(g, 0, members, spCost)
	}
}

func BenchmarkSPT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	wg, err := topology.Waxman(topology.DefaultWaxman(100), rng)
	if err != nil {
		b.Fatal(err)
	}
	g := wg.Graph
	spDelay := topology.NewAllPairs(g, topology.ByDelay)
	members := pickMembers(rng, g.N(), 40, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SPT(g, 0, members, spDelay)
	}
}
