//go:build invariants

package mtree

// treeCheckHook re-validates the tree after every DCDM Join/Leave. The
// safe mutators are supposed to make corruption impossible, so a
// failure here is a bug in this package and panics. (The full
// cross-package check, including rootedness at the m-router's home,
// runs in core's commit hook via scmp/internal/invariant — this package
// sits below invariant in the import graph and cannot call it.)
func treeCheckHook(t *Tree) {
	if err := t.Validate(); err != nil {
		panic("mtree: invariant violated after tree mutation: " + err.Error())
	}
}
