//go:build invariants

package mtree

import "fmt"

// InvariantChecksArmed reports whether the runtime invariant hooks are
// compiled in. Allocation-floor tests consult it: the per-mutation
// Validate pass allocates freely, so steady-state alloc budgets only
// hold in untagged builds.
const InvariantChecksArmed = true

// treeCheckHook re-validates the tree after every DCDM Join/Leave. The
// safe mutators are supposed to make corruption impossible, so a
// failure here is a bug in this package and panics. (The full
// cross-package check, including rootedness at the m-router's home,
// runs in core's commit hook via scmp/internal/invariant — this package
// sits below invariant in the import graph and cannot call it.)
func treeCheckHook(t *Tree) {
	if err := t.Validate(); err != nil {
		panic("mtree: invariant violated after tree mutation: " + err.Error())
	}
}

// dcdmCheckHook extends treeCheckHook with the incremental-bound
// cross-check: the lazy-deletion max-UL multiset must agree exactly
// with a from-scratch rescan of the member set (the historical
// recomputeMaxUL, retained for this comparison).
// hierCheckHook re-validates the hierarchical composer's composed/local
// consistency contract after every HierDCDM mutation (see
// HierDCDM.Validate).
func hierCheckHook(h *HierDCDM) {
	if err := h.Validate(); err != nil {
		panic("mtree: hierarchical invariant violated: " + err.Error())
	}
}

func dcdmCheckHook(d *DCDM) {
	treeCheckHook(d.tree)
	if got, want := d.ul.Max(), d.recomputeMaxUL(); got != want {
		panic(fmt.Sprintf("mtree: incremental maxUL %g diverged from member rescan %g", got, want))
	}
	if got, want := d.ul.Len(), d.tree.MemberCount(); got != want {
		panic(fmt.Sprintf("mtree: maxUL multiset tracks %d delays for %d members", got, want))
	}
}
