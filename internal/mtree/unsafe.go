package mtree

import (
	"math"

	"scmp/internal/topology"
)

// Rebuild constructs a Tree directly from a parent map, bypassing the
// attach/detach mutators and ALL structural validation. It exists for
// two callers only: deserialising a tree whose well-formedness is
// checked separately, and tests that need deliberately corrupt trees
// (cycles, orphaned branches, phantom edges) to prove the invariant
// checker rejects them. Protocol code must never call it — the safe
// mutators are the reason committed trees are trees.
//
// The delay cache is filled with step-capped parent walks so a corrupt
// input (cycle, dead-end chain) yields +Inf entries instead of a hang;
// Validate and invariant.CheckTree reject such trees before any caller
// trusts Delay.
func Rebuild(g *topology.Graph, root topology.NodeID, parents map[topology.NodeID]topology.NodeID, members []topology.NodeID) *Tree {
	t := NewTree(g, root)
	n := g.N()
	for child, parent := range parents {
		if child < 0 || int(child) >= n {
			continue
		}
		if t.parent[child] == offTree {
			t.size++
		}
		t.parent[child] = parent
		if parent >= 0 && int(parent) < n {
			t.insertChild(parent, child)
		}
	}
	for vi := range t.parent {
		v := topology.NodeID(vi)
		if t.parent[v] == offTree || v == root {
			continue
		}
		t.ml[v] = t.rebuildDelay(v)
	}
	for _, m := range members {
		if m >= 0 && int(m) < n {
			t.member[m>>6] |= 1 << (uint(m) & 63)
			t.nMember++
		}
	}
	t.nodesStale, t.membersStale = true, true
	return t
}

// rebuildDelay recomputes ml(v) by collecting the parent chain and
// summing it top-down (root toward v) — the canonical summation order
// of the incremental cache. Walks are capped at n steps; a chain that
// fails to reach the root (cycle, dead end) yields +Inf.
func (t *Tree) rebuildDelay(v topology.NodeID) float64 {
	n := len(t.parent)
	chain := make([]topology.NodeID, 0, 8)
	cur := v
	for cur != t.root {
		if cur < 0 || int(cur) >= n {
			return math.Inf(1) // parent pointer outside the graph
		}
		p := t.parent[cur]
		if p < 0 {
			return math.Inf(1) // chain dead-ends before the root
		}
		chain = append(chain, cur)
		if len(chain) > n {
			return math.Inf(1) // cycle
		}
		cur = p
	}
	sum := 0.0
	for i := len(chain) - 1; i >= 0; i-- {
		p := t.root
		if i+1 < len(chain) {
			p = chain[i+1]
		}
		l, ok := t.g.Edge(chain[i], p)
		if !ok {
			return math.Inf(1)
		}
		sum += l.Delay
	}
	return sum
}
