package mtree

import "scmp/internal/topology"

// Rebuild constructs a Tree directly from a parent map, bypassing the
// attach/detach mutators and ALL structural validation. It exists for
// two callers only: deserialising a tree whose well-formedness is
// checked separately, and tests that need deliberately corrupt trees
// (cycles, orphaned branches, phantom edges) to prove the invariant
// checker rejects them. Protocol code must never call it — the safe
// mutators are the reason committed trees are trees.
func Rebuild(g *topology.Graph, root topology.NodeID, parents map[topology.NodeID]topology.NodeID, members []topology.NodeID) *Tree {
	t := NewTree(g, root)
	for child, parent := range parents {
		t.parent[child] = parent
		if t.children[parent] == nil {
			t.children[parent] = make(map[topology.NodeID]bool)
		}
		t.children[parent][child] = true
	}
	for _, m := range members {
		t.members[m] = true
	}
	return t
}
