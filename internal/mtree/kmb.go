package mtree

import (
	"math"
	"sort"

	"scmp/internal/topology"
)

// KMB builds a Steiner tree over {root} ∪ members using the
// Kou–Markowsky–Berman approximation (the paper's min-cost baseline,
// ref [19]; 2(1-1/l)-approximation on tree cost, delay-oblivious):
//
//  1. Build the metric closure on the terminals under least-cost
//     distances.
//  2. Take its minimum spanning tree.
//  3. Expand every closure edge into its underlying least-cost path,
//     forming a subgraph of g.
//  4. Take a minimum spanning tree of that subgraph.
//  5. Repeatedly delete non-terminal leaves.
//
// spCost may be nil (computed internally). The result is rooted at root
// with all members marked.
func KMB(g *topology.Graph, root topology.NodeID, members []topology.NodeID, spCost *topology.AllPairs) *Tree {
	if spCost == nil {
		spCost = topology.NewAllPairs(g, topology.ByCost)
	}
	terminals := []topology.NodeID{root}
	seen := map[topology.NodeID]bool{root: true}
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			terminals = append(terminals, m)
		}
	}
	tree := NewTree(g, root)
	if len(terminals) == 1 {
		return tree
	}

	// Step 1+2: Prim's MST over the metric closure of the terminals.
	type cedge struct{ u, v topology.NodeID }
	inMST := map[topology.NodeID]bool{root: true}
	bestDist := make(map[topology.NodeID]float64, len(terminals))
	bestFrom := make(map[topology.NodeID]topology.NodeID, len(terminals))
	for _, t := range terminals[1:] {
		bestDist[t] = spCost.Row(root).Dist[t]
		bestFrom[t] = root
	}
	var closureMST []cedge
	for len(inMST) < len(terminals) {
		pick := topology.NodeID(-1)
		pickDist := math.Inf(1)
		for _, t := range terminals {
			if inMST[t] {
				continue
			}
			switch d := bestDist[t]; {
			case pick == -1 || d < pickDist:
				pick, pickDist = t, d
			case pickDist < d:
				// strictly farther: keep the current pick
			case t < pick:
				pick, pickDist = t, d // exact tie on distance: lowest id
			}
		}
		if pick == -1 || math.IsInf(pickDist, 1) {
			break // unreachable terminal: return the partial tree
		}
		inMST[pick] = true
		closureMST = append(closureMST, cedge{bestFrom[pick], pick})
		for _, t := range terminals {
			if inMST[t] {
				continue
			}
			if d := spCost.Row(pick).Dist[t]; d < bestDist[t] {
				bestDist[t], bestFrom[t] = d, pick
			}
		}
	}

	// Step 3: expand closure edges into real paths; collect the subgraph.
	type edge struct{ u, v topology.NodeID }
	norm := func(a, b topology.NodeID) edge {
		if a > b {
			a, b = b, a
		}
		return edge{a, b}
	}
	subEdges := map[edge]bool{}
	subNodes := map[topology.NodeID]bool{}
	for _, ce := range closureMST {
		path := spCost.Row(ce.u).To(ce.v)
		for i := 1; i < len(path); i++ {
			subEdges[norm(path[i-1], path[i])] = true
		}
		for _, n := range path {
			subNodes[n] = true
		}
	}

	// Step 4: Kruskal MST over the subgraph (by link cost).
	var edges []edge
	for e := range subEdges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		li, _ := g.Edge(edges[i].u, edges[i].v)
		lj, _ := g.Edge(edges[j].u, edges[j].v)
		if li.Cost < lj.Cost {
			return true
		}
		if lj.Cost < li.Cost {
			return false
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	parent := map[topology.NodeID]topology.NodeID{}
	var find func(topology.NodeID) topology.NodeID
	find = func(x topology.NodeID) topology.NodeID {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for n := range subNodes {
		parent[n] = n
	}
	adj := map[topology.NodeID][]topology.NodeID{}
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
	}

	// Step 5: prune non-terminal leaves (iterate to a fixed point).
	isTerminal := map[topology.NodeID]bool{}
	for _, t := range terminals {
		isTerminal[t] = true
	}
	for {
		removedAny := false
		for n, nbrs := range adj {
			if len(nbrs) == 1 && !isTerminal[n] {
				peer := nbrs[0]
				delete(adj, n)
				pn := adj[peer][:0]
				for _, x := range adj[peer] {
					if x != n {
						pn = append(pn, x)
					}
				}
				adj[peer] = pn
				removedAny = true
			}
		}
		if !removedAny {
			break
		}
	}

	// Orient from the root into a Tree (deterministic BFS).
	queue := []topology.NodeID{root}
	visited := map[topology.NodeID]bool{root: true}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbrs := append([]topology.NodeID(nil), adj[u]...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, v := range nbrs {
			if visited[v] {
				continue
			}
			visited[v] = true
			tree.attach(v, u)
			queue = append(queue, v)
		}
	}
	for _, t := range terminals[1:] {
		if tree.OnTree(t) {
			tree.SetMember(t, true)
		}
	}
	if tree.OnTree(root) {
		// Root is the m-router; membership of the root itself is implicit.
	}
	return tree
}
