package mtree

import (
	"math/rand"
	"testing"

	"scmp/internal/topology"
)

// tsView generates a transit-stub graph and its domain view from the
// generator's own domain labels.
func tsView(t testing.TB, cfg topology.TransitStubConfig, seed int64) (*topology.Graph, *topology.DomainView) {
	t.Helper()
	g, info, err := topology.TransitStub(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("TransitStub: %v", err)
	}
	view, err := topology.NewDomainView(g, info.Domain)
	if err != nil {
		t.Fatalf("NewDomainView: %v", err)
	}
	return g, view
}

// flatView wraps g in a single all-covering domain (the k=1 degenerate
// labelling).
func flatView(t testing.TB, g *topology.Graph) *topology.DomainView {
	t.Helper()
	view, err := topology.NewDomainView(g, make([]int, g.N()))
	if err != nil {
		t.Fatalf("NewDomainView(flat): %v", err)
	}
	return view
}

// requireTreesIdentical asserts node-for-node equality of structure,
// membership and exact delay between two trees over the same graph.
func requireTreesIdentical(t *testing.T, step int, flat, hier *Tree) {
	t.Helper()
	n := flat.Graph().N()
	for v := 0; v < n; v++ {
		id := topology.NodeID(v)
		if flat.OnTree(id) != hier.OnTree(id) {
			t.Fatalf("step %d: node %d onTree flat=%v hier=%v", step, v, flat.OnTree(id), hier.OnTree(id))
		}
		if !flat.OnTree(id) {
			continue
		}
		fp, fok := flat.Parent(id)
		hp, hok := hier.Parent(id)
		if fok != hok || fp != hp {
			t.Fatalf("step %d: node %d parent flat=%d,%v hier=%d,%v", step, v, fp, fok, hp, hok)
		}
		if flat.IsMember(id) != hier.IsMember(id) {
			t.Fatalf("step %d: node %d member flat=%v hier=%v", step, v, flat.IsMember(id), hier.IsMember(id))
		}
		if flat.Delay(id) != hier.Delay(id) {
			t.Fatalf("step %d: node %d delay flat=%g hier=%g", step, v, flat.Delay(id), hier.Delay(id))
		}
	}
	if flat.Cost() != hier.Cost() {
		t.Fatalf("step %d: cost flat=%g hier=%g", step, flat.Cost(), hier.Cost())
	}
	if flat.TreeDelay() != hier.TreeDelay() {
		t.Fatalf("step %d: tree delay flat=%g hier=%g", step, flat.TreeDelay(), hier.TreeDelay())
	}
}

// TestHierSingleDomainMatchesFlat is the k=1 arm of the differential
// gate: with one domain covering the whole graph, the hierarchical
// composer must reproduce the flat incremental DCDM *exactly* — same
// graft paths, same tree bytes, same delays — under a long random
// join/leave churn. The single-domain sub shares the original graph
// pointer, so any divergence is a composer bug, not a float artifact.
func TestHierSingleDomainMatchesFlat(t *testing.T) {
	g, _ := tsView(t, topology.DefaultTransitStub(), 11)
	view := flatView(t, g)
	root := view.MRouters()[0]
	const kappa = 1.5
	flat := NewDCDM(g, root, kappa, topology.NewLazyAllPairs(g, topology.ByDelay), topology.NewLazyAllPairs(g, topology.ByCost))
	hier := NewHierDCDM(view, view.MRouters(), 0, kappa)

	r := rand.New(rand.NewSource(42))
	on := make(map[topology.NodeID]bool)
	var members []topology.NodeID
	for step := 0; step < 400; step++ {
		if len(on) == 0 || (r.Intn(3) != 0 && len(on) < g.N()/2) {
			v := topology.NodeID(r.Intn(g.N()))
			if on[v] || v == root {
				continue
			}
			fres := flat.Join(v)
			hres := hier.Join(v)
			if fres.AlreadyOn != hres.AlreadyOn || fres.Restructured != hres.Restructured || fres.BestEffort != hres.BestEffort {
				t.Fatalf("step %d: join(%d) results differ: flat=%+v hier=%+v", step, v, fres, hres)
			}
			if len(fres.Path) != len(hres.Path) {
				t.Fatalf("step %d: join(%d) paths differ: flat=%v hier=%v", step, v, fres.Path, hres.Path)
			}
			for i := range fres.Path {
				if fres.Path[i] != hres.Path[i] {
					t.Fatalf("step %d: join(%d) paths differ at %d: flat=%v hier=%v", step, v, i, fres.Path, hres.Path)
				}
			}
			on[v] = true
			members = append(members, v)
		} else {
			v := members[r.Intn(len(members))]
			if !on[v] {
				continue
			}
			flat.Leave(v)
			hier.Leave(v)
			delete(on, v)
		}
		requireTreesIdentical(t, step, flat.Tree(), hier.Tree())
		if err := hier.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestHierMultiDomainChurn is the multi-domain arm of the gate: a long
// random churn over every domain of the default transit-stub topology,
// re-validating the composed/local consistency contract after each
// operation and holding the composed tree to a bounded cost factor of
// the flat engine serving the same member set. The hierarchy gives up
// some cost optimality for locality; the bound pins how much.
func TestHierMultiDomainChurn(t *testing.T) {
	g, view := tsView(t, topology.DefaultTransitStub(), 7)
	mrouters := view.MRouters()
	const kappa = 2.0
	hier := NewHierDCDM(view, mrouters, 0, kappa)
	flat := NewDCDM(g, mrouters[0], kappa, topology.NewLazyAllPairs(g, topology.ByDelay), topology.NewLazyAllPairs(g, topology.ByCost))

	r := rand.New(rand.NewSource(99))
	on := make(map[topology.NodeID]bool)
	var pool []topology.NodeID
	steps, joins := 600, 0
	for step := 0; step < steps; step++ {
		if len(on) == 0 || r.Intn(3) != 0 {
			v := topology.NodeID(r.Intn(g.N()))
			if on[v] || v == mrouters[0] {
				continue
			}
			hres := hier.Join(v)
			flat.Join(v)
			if hres.Member != v || hres.Domain != view.Domain(v) {
				t.Fatalf("step %d: join result %+v for node %d (domain %d)", step, hres, v, view.Domain(v))
			}
			on[v] = true
			pool = append(pool, v)
			joins++
		} else {
			v := pool[r.Intn(len(pool))]
			if !on[v] {
				continue
			}
			hres := hier.Leave(v)
			flat.Leave(v)
			if hres.Domain != view.Domain(v) {
				t.Fatalf("step %d: leave result %+v", step, hres)
			}
			delete(on, v)
		}
		if err := hier.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got, want := hier.Tree().MemberCount(), len(on); got != want {
			t.Fatalf("step %d: composed members %d, want %d", step, got, want)
		}
	}
	if joins < 100 {
		t.Fatalf("churn too shallow: %d joins", joins)
	}
	// Bounded-cost comparison: deterministic seeds make the ratio a
	// fixed number; 3x is far above what the run actually produces and
	// far below "unboundedly worse".
	if fc, hc := flat.Tree().Cost(), hier.Tree().Cost(); hc > 3*fc {
		t.Fatalf("hierarchical cost %g more than 3x flat cost %g", hc, fc)
	}
	// Every active domain's engine must be released once emptied (the
	// core lingers only if it never hosted a member).
	for v := range on {
		hier.Leave(v)
	}
	if hier.ActiveDomains() > 1 {
		t.Fatalf("%d domains still active after all members left", hier.ActiveDomains())
	}
	if got := hier.Tree().MemberCount(); got != 0 {
		t.Fatalf("%d members left on composed tree", got)
	}
}

// TestHierDomainReactivation drains a domain and re-joins through it:
// the splice must re-realize against whatever composed relays remain,
// and the consistency contract must survive the round trip.
func TestHierDomainReactivation(t *testing.T) {
	_, view := tsView(t, topology.DefaultTransitStub(), 5)
	hier := NewHierDCDM(view, view.MRouters(), 0, 1.5)
	// Pick the two highest domains (farthest from the core's transit
	// domain) and churn them through activate/drain/reactivate.
	dA, dB := view.K()-1, view.K()-2
	a0, a1 := view.NodesOf(dA)[0], view.NodesOf(dA)[len(view.NodesOf(dA))-1]
	b0 := view.NodesOf(dB)[0]

	res := hier.Join(a0)
	if !res.Activated || res.SplicePath == nil {
		t.Fatalf("first join in domain %d: %+v", dA, res)
	}
	hier.Join(a1)
	hier.Join(b0)
	if hier.ActiveDomains() != 3 { // core + dA + dB
		t.Fatalf("active domains = %d, want 3", hier.ActiveDomains())
	}
	if r := hier.Leave(a0); r.Deactivated {
		t.Fatalf("leave of first member deactivated a non-empty domain: %+v", r)
	}
	if r := hier.Leave(a1); !r.Deactivated {
		t.Fatalf("last leave did not deactivate: %+v", r)
	}
	if hier.LocalTree(dA) != nil {
		t.Fatal("local tree survives deactivation")
	}
	res = hier.Join(a1)
	if !res.Activated {
		t.Fatalf("rejoin did not reactivate: %+v", res)
	}
	if err := hier.Validate(); err != nil {
		t.Fatal(err)
	}
	if !hier.Tree().IsMember(a1) || !hier.Tree().IsMember(b0) {
		t.Fatal("membership lost across reactivation")
	}
}

// TestHierQoSBudget pushes an absolute delay budget down through the
// splice: members whose composed delay fits the budget must not be
// flagged, members beyond it come in best-effort on their local
// shortest-delay path, and the accounting uses the *exact* splice
// delay — the composed tree's link-delay sum, not an estimate.
func TestHierQoSBudget(t *testing.T) {
	_, view := tsView(t, topology.DefaultTransitStub(), 5)
	hier := NewHierDCDM(view, view.MRouters(), 0, 1.5)
	// A generous budget first: nothing should be best-effort, and every
	// member's composed delay must respect it.
	hier.SetQoSBudget(1e9)
	far := view.NodesOf(view.K() - 1)
	for _, v := range far {
		if res := hier.Join(v); res.BestEffort {
			t.Fatalf("join(%d) best-effort under an infinite budget", v)
		}
	}
	for _, v := range far {
		if d := hier.Tree().Delay(v); d > 1e9 {
			t.Fatalf("member %d delay %g exceeds budget", v, d)
		}
	}
	// Now a budget below the splice delay of a fresh far domain: every
	// member there must come in best-effort.
	lm := view.MRouters()[view.K()-2]
	hier2 := NewHierDCDM(view, view.MRouters(), 0, 1.5)
	hier2.SetQoSBudget(1e-6)
	for _, v := range view.NodesOf(view.K() - 2) {
		if v == lm {
			continue
		}
		if res := hier2.Join(v); !res.BestEffort {
			t.Fatalf("join(%d) not best-effort under a vanishing budget (delay %g)", v, hier2.Tree().Delay(v))
		}
	}
}

// bench10kCfg is the 10k-node transit-stub instance of the domains
// benchmarks: 40 transit nodes, 120 stub domains of 83 nodes.
func bench10kCfg() topology.TransitStubConfig {
	return topology.TransitStubConfig{
		TransitDomains:      5,
		TransitSize:         8,
		StubsPerTransitNode: 3,
		StubSize:            83,
		EdgeProb:            0.4,
	}
}

func benchMembers(n int, g *topology.Graph, exclude topology.NodeID) []topology.NodeID {
	r := rand.New(rand.NewSource(31))
	seen := make(map[topology.NodeID]bool, n)
	out := make([]topology.NodeID, 0, n)
	for len(out) < n {
		v := topology.NodeID(r.Intn(g.N()))
		if v == exclude || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// domainBenchScales is the node-count ladder of the BENCH_domains
// per-join benchmarks: fixed 20-node stub domains, growing *domain
// count* — the way the hierarchical architecture is meant to scale.
// The sublinearity claim is that the hier join touches O(domain)-sized
// rows and its resident tables cover only the *touched* domains, while
// the flat join touches O(n)-sized rows and tables: ns/join and
// table-bytes grow ~linearly with n under the flat engine and stay
// nearly put under the composer.
func domainBenchScales() []struct {
	name string
	cfg  topology.TransitStubConfig
} {
	mk := func(stubsPerTransit int) topology.TransitStubConfig {
		return topology.TransitStubConfig{
			TransitDomains:      5,
			TransitSize:         8,
			StubsPerTransitNode: stubsPerTransit,
			StubSize:            20,
			EdgeProb:            0.4,
		}
	}
	return []struct {
		name string
		cfg  topology.TransitStubConfig
	}{
		{"n=2440", mk(3)},  // 40 transit + 120 stubs x 20
		{"n=4840", mk(6)},  // 240 stubs
		{"n=9640", mk(12)}, // 480 stubs
	}
}

// BenchmarkDomainJoinFlat / BenchmarkDomainJoinHier are the per-join
// cost arms of BENCH_domains: 256 member joins on the transit-stub
// ladder, flat engine (global lazy tables) vs the hierarchical composer
// (per-domain tables). Timed region: the joins; ns/join and the
// resident table bytes at full membership are reported as metrics.
func BenchmarkDomainJoinFlat(b *testing.B) {
	for _, sc := range domainBenchScales() {
		b.Run(sc.name, func(b *testing.B) {
			g, _, err := topology.TransitStub(sc.cfg, rand.New(rand.NewSource(3)))
			if err != nil {
				b.Fatal(err)
			}
			root := topology.NodeID(0)
			members := benchMembers(256, g, root)
			var tableBytes int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spDelay := topology.NewLazyAllPairs(g, topology.ByDelay)
				spCost := topology.NewLazyAllPairs(g, topology.ByCost)
				d := NewDCDM(g, root, 2.0, spDelay, spCost)
				for _, m := range members {
					d.Join(m)
				}
				b.StopTimer()
				tableBytes = spDelay.MemoryBytes() + spCost.MemoryBytes()
				for _, m := range members {
					d.Leave(m)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(members))), "ns/join")
			b.ReportMetric(float64(tableBytes), "table-bytes")
		})
	}
}

func BenchmarkDomainJoinHier(b *testing.B) {
	for _, sc := range domainBenchScales() {
		b.Run(sc.name, func(b *testing.B) {
			g, info, err := topology.TransitStub(sc.cfg, rand.New(rand.NewSource(3)))
			if err != nil {
				b.Fatal(err)
			}
			view, err := topology.NewDomainView(g, info.Domain)
			if err != nil {
				b.Fatal(err)
			}
			mrouters := view.MRouters()
			members := benchMembers(256, g, mrouters[0])
			var tableBytes int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := NewHierDCDM(view, mrouters, 0, 2.0)
				for _, m := range members {
					h.Join(m)
				}
				b.StopTimer()
				tableBytes = h.TableBytes()
				for _, m := range members {
					h.Leave(m)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(members))), "ns/join")
			b.ReportMetric(float64(tableBytes), "table-bytes")
		})
	}
}
