package mtree_test

import (
	"fmt"
	"math"

	"scmp/internal/mtree"
	"scmp/internal/topology"
)

// rails builds the two-rail topology used across the documentation: a
// fast expensive path 0-1-2 and a slow cheap path 0-3-2.
func rails() *topology.Graph {
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 10)
	g.MustAddEdge(1, 2, 1, 10)
	g.MustAddEdge(0, 3, 6, 1)
	g.MustAddEdge(3, 2, 6, 1)
	return g
}

// ExampleDCDM shows how the delay constraint changes the tree: the
// tightest constraint takes the fast rail, no constraint takes the
// cheap one.
func ExampleDCDM() {
	tight := mtree.NewDCDM(rails(), 0, 1, nil, nil)
	tight.Join(2)
	fmt.Printf("tightest: cost=%.0f delay=%.0f\n", tight.Tree().Cost(), tight.Tree().TreeDelay())

	loose := mtree.NewDCDM(rails(), 0, math.Inf(1), nil, nil)
	loose.Join(2)
	fmt.Printf("loosest:  cost=%.0f delay=%.0f\n", loose.Tree().Cost(), loose.Tree().TreeDelay())
	// Output:
	// tightest: cost=20 delay=2
	// loosest:  cost=2 delay=12
}

func ExampleDCDM_Leave() {
	d := mtree.NewDCDM(rails(), 0, 1, nil, nil)
	d.Join(2)
	res := d.Leave(2)
	fmt.Println("pruned routers:", res.Pruned)
	fmt.Println("tree size:", d.Tree().Size())
	// Output:
	// pruned routers: [2 1]
	// tree size: 1
}

func ExampleKMB() {
	tr := mtree.KMB(rails(), 0, []topology.NodeID{2}, nil)
	fmt.Printf("cost=%.0f (the cheap rail)\n", tr.Cost())
	// Output:
	// cost=2 (the cheap rail)
}

func ExampleSPT() {
	tr := mtree.SPT(rails(), 0, []topology.NodeID{2}, nil)
	fmt.Printf("delay=%.0f (the fast rail)\n", tr.TreeDelay())
	// Output:
	// delay=2 (the fast rail)
}
