package mtree

import (
	"math"
	"testing"

	"scmp/internal/topology"
)

// chainGraph returns 0-1-2-...-(n-1) with delay 1, cost 2 per link.
func chainGraph(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(topology.NodeID(i), topology.NodeID(i+1), 1, 2)
	}
	return g
}

// chainTree builds a tree 0 -> 1 -> ... -> (k) on chainGraph.
func chainTree(t *testing.T, g *topology.Graph, k int) *Tree {
	t.Helper()
	tr := NewTree(g, 0)
	for i := 1; i <= k; i++ {
		tr.attach(topology.NodeID(i), topology.NodeID(i-1))
	}
	return tr
}

func TestNewTreeRootOnly(t *testing.T) {
	g := chainGraph(3)
	tr := NewTree(g, 0)
	if !tr.OnTree(0) || tr.OnTree(1) {
		t.Fatal("fresh tree should contain exactly the root")
	}
	if tr.Size() != 1 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if tr.Cost() != 0 || tr.TreeDelay() != 0 {
		t.Fatalf("empty tree cost=%g delay=%g", tr.Cost(), tr.TreeDelay())
	}
	if _, ok := tr.Parent(0); ok {
		t.Fatal("root must have no parent")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachAndMetrics(t *testing.T) {
	g := chainGraph(4)
	tr := chainTree(t, g, 3)
	tr.SetMember(3, true)
	tr.SetMember(2, true)
	if tr.Cost() != 6 { // 3 edges x cost 2
		t.Fatalf("Cost = %g, want 6", tr.Cost())
	}
	if tr.Delay(3) != 3 || tr.Delay(2) != 2 || tr.Delay(0) != 0 {
		t.Fatalf("delays = %g %g %g", tr.Delay(3), tr.Delay(2), tr.Delay(0))
	}
	if tr.TreeDelay() != 3 {
		t.Fatalf("TreeDelay = %g, want 3", tr.TreeDelay())
	}
	if !math.IsInf(tr.Delay(99), 1) {
		t.Fatal("off-tree delay should be +Inf")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachPanics(t *testing.T) {
	g := chainGraph(4)
	tr := chainTree(t, g, 2)
	for name, fn := range map[string]func(){
		"already on tree":     func() { tr.attach(1, 0) },
		"off-tree parent":     func() { tr.attach(3, 99) },
		"non-adjacent parent": func() { tr.attach(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSetMemberOffTreePanics(t *testing.T) {
	g := chainGraph(3)
	tr := NewTree(g, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.SetMember(2, true)
}

func TestLeavePrunesBranch(t *testing.T) {
	g := chainGraph(5)
	tr := chainTree(t, g, 4)
	tr.SetMember(2, true)
	tr.SetMember(4, true)
	removed := tr.Leave(4)
	if len(removed) != 2 || removed[0] != 4 || removed[1] != 3 {
		t.Fatalf("removed = %v, want [4 3]", removed)
	}
	if tr.OnTree(3) || tr.OnTree(4) {
		t.Fatal("pruned nodes still on tree")
	}
	if !tr.OnTree(2) || !tr.IsMember(2) {
		t.Fatal("member 2 must survive")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveStopsAtFork(t *testing.T) {
	// 0 -> 1 -> 2 and 1 -> 3 on a star-ish graph.
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(1, 3, 1, 1)
	tr := NewTree(g, 0)
	tr.attach(1, 0)
	tr.attach(2, 1)
	tr.attach(3, 1)
	tr.SetMember(2, true)
	tr.SetMember(3, true)
	removed := tr.Leave(3)
	if len(removed) != 1 || removed[0] != 3 {
		t.Fatalf("removed = %v, want [3]", removed)
	}
	if !tr.OnTree(1) || !tr.OnTree(2) {
		t.Fatal("fork node or sibling branch pruned")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveNonLeafMemberKeepsBranch(t *testing.T) {
	g := chainGraph(4)
	tr := chainTree(t, g, 3)
	tr.SetMember(1, true)
	tr.SetMember(3, true)
	removed := tr.Leave(1) // interior member: tree unchanged
	if len(removed) != 0 {
		t.Fatalf("removed = %v, want none", removed)
	}
	if !tr.OnTree(1) {
		t.Fatal("relay node 1 must stay (still carries 3)")
	}
}

func TestPruneFromRootIsNoop(t *testing.T) {
	g := chainGraph(2)
	tr := NewTree(g, 0)
	if got := tr.PruneFrom(0); len(got) != 0 {
		t.Fatalf("pruned root: %v", got)
	}
	if !tr.OnTree(0) {
		t.Fatal("root removed")
	}
}

func TestPathToRoot(t *testing.T) {
	g := chainGraph(4)
	tr := chainTree(t, g, 3)
	p := tr.PathToRoot(3)
	want := []topology.NodeID{3, 2, 1, 0}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if tr.PathToRoot(99) != nil {
		t.Fatal("off-tree path should be nil")
	}
}

func TestChildrenSorted(t *testing.T) {
	g := topology.New(4)
	g.MustAddEdge(0, 3, 1, 1)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(0, 2, 1, 1)
	tr := NewTree(g, 0)
	tr.attach(3, 0)
	tr.attach(1, 0)
	tr.attach(2, 0)
	kids := tr.Children(0)
	for i := 1; i < len(kids); i++ {
		if kids[i-1] >= kids[i] {
			t.Fatalf("children unsorted: %v", kids)
		}
	}
}

func TestEdges(t *testing.T) {
	g := chainGraph(3)
	tr := chainTree(t, g, 2)
	e := tr.Edges()
	if len(e) != 2 || !e[[2]topology.NodeID{1, 0}] || !e[[2]topology.NodeID{2, 1}] {
		t.Fatalf("Edges = %v", e)
	}
}

func TestValidateCatchesNonMemberLeaf(t *testing.T) {
	g := chainGraph(3)
	tr := chainTree(t, g, 2)
	// Node 2 is a childless non-member.
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted a non-member leaf")
	}
	tr.SetMember(2, true)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
