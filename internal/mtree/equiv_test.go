package mtree

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"scmp/internal/topology"
)

// This file is the differential gate for the incremental DCDM engine:
// the dense-tree fast path (tree.go/dcdm.go) is driven through seeded
// Poisson and Pareto churn side by side with the preserved historical
// implementation (ref.go) and must match it EXACTLY — same tree edges,
// same JoinResult/LeaveResult fields, same bound, bit-identical
// per-node delays. Any tolerance here would let the caches drift; the
// whole point of the canonical top-down summation order is that no
// tolerance is needed.

// churnOp is one scripted membership event.
type churnOp struct {
	t      float64
	member topology.NodeID
	join   bool
}

// genChurnOps mirrors netsim's churn generator shape: each member gets
// an alternating join/leave timeline with inter-event gaps drawn from
// the given distribution, and the per-member timelines are merged into
// one time-ordered script (stable sort, so same-time events keep
// member-major order).
func genChurnOps(rng *rand.Rand, members []topology.NodeID, perMember int, pareto bool) []churnOp {
	var ops []churnOp
	for _, m := range members {
		t := 0.0
		join := true
		for i := 0; i < perMember; i++ {
			var gap float64
			if pareto {
				gap = 0.5 / math.Pow(1-rng.Float64(), 1/1.5) // xm=0.5, alpha=1.5
			} else {
				gap = rng.ExpFloat64() * 1.0
			}
			t += gap
			ops = append(ops, churnOp{t: t, member: m, join: join})
			join = !join
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].t < ops[j].t })
	return ops
}

// connectedAvoidTables finds a single link whose removal keeps every
// node reachable from root and returns delay/cost tables over that
// masked subgraph — alternate tables for exercising SetAllPairs with
// genuinely different path values.
func connectedAvoidTables(g *topology.Graph, root topology.NodeID) (*topology.AllPairs, *topology.AllPairs) {
	n := g.N()
	for u := 0; u < n; u++ {
		for _, nb := range g.Neighbors(topology.NodeID(u)) {
			if int(nb.To) < u {
				continue // undirected: try each link once
			}
			au, av := topology.NodeID(u), nb.To
			avoid := func(x, y topology.NodeID) bool {
				return (x == au && y == av) || (x == av && y == au)
			}
			spDelay := topology.NewAllPairsAvoid(g, topology.ByDelay, avoid)
			row := spDelay.Row(root)
			ok := true
			for v := 0; v < n; v++ {
				if !row.Reachable(topology.NodeID(v)) {
					ok = false
					break
				}
			}
			if ok {
				return spDelay, topology.NewAllPairsAvoid(g, topology.ByCost, avoid)
			}
		}
	}
	return nil, nil // every single link is a bridge to somewhere; caller skips the swap
}

// compareEngines demands exact equality of every observable: bound,
// member set, node set, edge set, per-node multicast delay (bitwise),
// and structural validity of both trees.
func compareEngines(t *testing.T, tag string, d *DCDM, r *dcdmRef) {
	t.Helper()
	ft, rt := d.Tree(), r.Tree()
	if fb, rb := d.Bound(), r.Bound(); fb != rb {
		t.Fatalf("%s: bound diverged: fast %v ref %v", tag, fb, rb)
	}
	if fm, rm := ft.Members(), rt.Members(); !slices.Equal(fm, rm) {
		t.Fatalf("%s: members diverged: fast %v ref %v", tag, fm, rm)
	}
	if got, want := ft.MemberCount(), len(rt.Members()); got != want {
		t.Fatalf("%s: MemberCount %d, ref has %d members", tag, got, want)
	}
	fn, rn := ft.Nodes(), rt.Nodes()
	if !slices.Equal(fn, rn) {
		t.Fatalf("%s: nodes diverged: fast %v ref %v", tag, fn, rn)
	}
	fe, re := ft.Edges(), rt.Edges()
	if len(fe) != len(re) {
		t.Fatalf("%s: edge counts diverged: fast %d ref %d", tag, len(fe), len(re))
	}
	for e := range fe {
		if !re[e] {
			t.Fatalf("%s: fast has edge %v, ref does not", tag, e)
		}
	}
	for _, v := range fn {
		if fd, rd := ft.Delay(v), rt.Delay(v); fd != rd {
			t.Fatalf("%s: ml(%d) diverged: fast %v ref %v", tag, v, fd, rd)
		}
	}
	if fd, rd := ft.TreeDelay(), rt.TreeDelay(); fd != rd {
		t.Fatalf("%s: tree delay diverged: fast %v ref %v", tag, fd, rd)
	}
	if err := ft.Validate(); err != nil {
		t.Fatalf("%s: fast tree invalid: %v", tag, err)
	}
	if err := rt.Validate(); err != nil {
		t.Fatalf("%s: ref tree invalid: %v", tag, err)
	}
}

func compareJoin(t *testing.T, tag string, f, r JoinResult) {
	t.Helper()
	if f.Member != r.Member || f.AlreadyOn != r.AlreadyOn ||
		f.Restructured != r.Restructured || f.BestEffort != r.BestEffort {
		t.Fatalf("%s: join flags diverged: fast %+v ref %+v", tag, f, r)
	}
	if !slices.Equal(f.Path, r.Path) {
		t.Fatalf("%s: join path diverged: fast %v ref %v", tag, f.Path, r.Path)
	}
	if !slices.Equal(f.Pruned, r.Pruned) {
		t.Fatalf("%s: join pruned diverged: fast %v ref %v", tag, f.Pruned, r.Pruned)
	}
}

// TestDCDMFastMatchesRef runs every (kappa, churn distribution, QoS
// budget) combination through a few hundred scripted operations —
// joins, leaves, batched leaves, subtree detaches and table swaps —
// checking results op by op and full state periodically.
func TestDCDMFastMatchesRef(t *testing.T) {
	kappas := []struct {
		name string
		k    float64
	}{{"kappa1", 1}, {"kappa1.5", 1.5}, {"kappaInf", math.Inf(1)}}
	for _, kc := range kappas {
		for _, pareto := range []bool{false, true} {
			for _, withBudget := range []bool{false, true} {
				dist := "poisson"
				if pareto {
					dist = "pareto"
				}
				budget := "nobudget"
				if withBudget {
					budget = "budget"
				}
				name := fmt.Sprintf("%s/%s/%s", kc.name, dist, budget)
				t.Run(name, func(t *testing.T) {
					runEquivChurn(t, kc.k, pareto, withBudget)
				})
			}
		}
	}
}

func runEquivChurn(t *testing.T, kappa float64, pareto, withBudget bool) {
	rng := rand.New(rand.NewSource(42))
	wg, err := topology.Waxman(topology.DefaultWaxman(100), rng)
	if err != nil {
		t.Fatal(err)
	}
	g := wg.Graph
	root := topology.NodeID(0)
	spDelay := topology.NewAllPairs(g, topology.ByDelay)
	spCost := topology.NewAllPairs(g, topology.ByCost)
	altDelay, altCost := connectedAvoidTables(g, root)

	// Both engines share the same table instances, so every float they
	// read is bit-identical; divergence can only come from the engines
	// themselves.
	fast := NewDCDM(g, root, kappa, spDelay, spCost)
	ref := newDCDMRef(g, root, kappa, spDelay, spCost)
	if withBudget {
		// A budget below the farthest node's unicast delay forces some
		// best-effort admissions; 80% of the max exercises both sides.
		maxUL := 0.0
		row := spDelay.Row(root)
		for v := 0; v < g.N(); v++ {
			if d := row.Delay[v]; !math.IsInf(d, 1) && d > maxUL {
				maxUL = d
			}
		}
		fast.SetQoSBudget(0.8 * maxUL)
		ref.SetQoSBudget(0.8 * maxUL)
	}

	members := pickMembers(rng, g.N(), 30, root)
	ops := genChurnOps(rng, members, 10, pareto)
	onAlt := false
	for i, op := range ops {
		tag := fmt.Sprintf("op %d (member %d join=%v)", i, op.member, op.join)
		if op.join {
			compareJoin(t, tag, fast.Join(op.member), ref.Join(op.member))
		} else {
			fr, rr := fast.Leave(op.member), ref.Leave(op.member)
			if fr.Member != rr.Member || !slices.Equal(fr.Pruned, rr.Pruned) {
				t.Fatalf("%s: leave diverged: fast %+v ref %+v", tag, fr, rr)
			}
		}

		switch {
		case i%37 == 36:
			// Batched leave: the fast engine prunes the departures in
			// one shared pass, the reference leaves sequentially. The
			// final trees must agree exactly; the pruned sets must be
			// equal as sets (the pass order differs by design).
			cur := slices.Clone(fast.Tree().Members())
			if len(cur) >= 3 {
				batch := cur[:3]
				fp := slices.Clone(fast.LeaveBatch(batch))
				var rp []topology.NodeID
				for _, m := range batch {
					rp = append(rp, ref.Leave(m).Pruned...)
				}
				slices.Sort(fp)
				slices.Sort(rp)
				if !slices.Equal(fp, rp) {
					t.Fatalf("%s: batch-leave pruned sets diverged: fast %v ref %v", tag, fp, rp)
				}
			}
		case i%53 == 52:
			// Detach a non-root subtree, as link-fault repair would.
			nodes := fast.Tree().Nodes()
			if len(nodes) > 1 {
				victim := nodes[1+rng.Intn(len(nodes)-1)]
				fo, ro := fast.DetachSubtree(victim), ref.DetachSubtree(victim)
				if !slices.Equal(fo, ro) {
					t.Fatalf("%s: detach orphans diverged: fast %v ref %v", tag, fo, ro)
				}
			}
		case i%71 == 70 && altDelay != nil:
			// Swap shortest-path tables, as fault repair does, and back
			// again later; the bound multiset is rebuilt both times.
			if onAlt {
				fast.SetAllPairs(spDelay, spCost)
				ref.SetAllPairs(spDelay, spCost)
			} else {
				fast.SetAllPairs(altDelay, altCost)
				ref.SetAllPairs(altDelay, altCost)
			}
			onAlt = !onAlt
		}

		if i%7 == 0 || i == len(ops)-1 {
			compareEngines(t, tag, fast, ref)
		} else if fb, rb := fast.Bound(), ref.Bound(); fb != rb {
			t.Fatalf("%s: bound diverged: fast %v ref %v", tag, fb, rb)
		}
	}
	compareEngines(t, "final", fast, ref)
}
