//go:build !invariants

package mtree

// InvariantChecksArmed reports whether the runtime invariant hooks are
// compiled in (see hooks_on.go).
const InvariantChecksArmed = false

// treeCheckHook is a no-op unless built with -tags invariants, which
// turns it into a Validate call after every DCDM tree mutation.
func treeCheckHook(*Tree) {}

// dcdmCheckHook is a no-op unless built with -tags invariants, which
// turns it into treeCheckHook plus the incremental max-UL cross-check.
func dcdmCheckHook(*DCDM) {}

// hierCheckHook is a no-op unless built with -tags invariants, which
// turns it into a HierDCDM.Validate call after every composer mutation.
func hierCheckHook(*HierDCDM) {}
