//go:build !invariants

package mtree

// treeCheckHook is a no-op unless built with -tags invariants, which
// turns it into a Validate call after every DCDM tree mutation.
func treeCheckHook(*Tree) {}
