package mtree

import (
	"math/rand"
	"testing"

	"scmp/internal/topology"
)

// Benchmarks for the incremental DCDM engine, each paired with its
// *Ref twin running the preserved historical implementation on the
// identical fixture — the ratio is the speedup the incremental caches
// buy (the PR's acceptance floor is 5x on steady-state joins).
//
// The fixture is the ISSUE's sizing: a 400-node Waxman graph with 128
// members on the tree, which is where the O(m) delay walks and bound
// rescans of the old engine start to dominate.

type dcdmBenchFixture struct {
	g       *topology.Graph
	spDelay *topology.AllPairs
	spCost  *topology.AllPairs
	members []topology.NodeID // the 128 resident members
	pool    []topology.NodeID // off-tree nodes cycled through join/leave
	churn   []churnOp         // net-zero scripted churn for the Churn pair
}

func newDCDMBenchFixture(b *testing.B) *dcdmBenchFixture {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	wg, err := topology.Waxman(topology.DefaultWaxman(400), rng)
	if err != nil {
		b.Fatal(err)
	}
	f := &dcdmBenchFixture{
		g:       wg.Graph,
		spDelay: topology.NewAllPairs(wg.Graph, topology.ByDelay),
		spCost:  topology.NewAllPairs(wg.Graph, topology.ByCost),
	}
	f.members = pickMembers(rng, f.g.N(), 128, 0)

	// The pool is drawn from nodes that stay off the resident tree, so
	// each benchmark pair is a real graft + prune, not an AlreadyOn hit.
	d := NewDCDM(f.g, 0, 1.5, f.spDelay, f.spCost)
	for _, m := range f.members {
		d.Join(m)
	}
	for v := topology.NodeID(1); v < topology.NodeID(f.g.N()) && len(f.pool) < 64; v++ {
		if !d.Tree().OnTree(v) {
			f.pool = append(f.pool, v)
		}
	}
	if len(f.pool) < 8 {
		b.Fatal("fixture degenerate: tree covers almost the whole graph")
	}

	// A net-zero churn script: every member that joins during the
	// script leaves again, so a fresh engine can replay it repeatedly.
	script := pickMembers(rng, f.g.N(), 128, 0)
	for _, m := range script {
		f.churn = append(f.churn, churnOp{member: m, join: true})
	}
	perm := rng.Perm(len(script))
	for _, i := range perm {
		f.churn = append(f.churn, churnOp{member: script[i], join: false})
	}
	return f
}

// prejoin stands up the resident 128-member tree on either engine.
func (f *dcdmBenchFixture) prejoinFast(kappa float64) *DCDM {
	d := NewDCDM(f.g, 0, kappa, f.spDelay, f.spCost)
	for _, m := range f.members {
		d.Join(m)
	}
	return d
}

func (f *dcdmBenchFixture) prejoinRef(kappa float64) *dcdmRef {
	d := newDCDMRef(f.g, 0, kappa, f.spDelay, f.spCost)
	for _, m := range f.members {
		d.Join(m)
	}
	return d
}

// BenchmarkDCDMJoin measures a steady-state membership cycle: one Join
// of an off-tree router followed by its Leave, at m=128 residents.
func BenchmarkDCDMJoin(b *testing.B) {
	f := newDCDMBenchFixture(b)
	d := f.prejoinFast(1.5)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := f.pool[i%len(f.pool)]
		d.Join(v)
		d.Leave(v)
	}
}

func BenchmarkDCDMJoinRef(b *testing.B) {
	f := newDCDMBenchFixture(b)
	d := f.prejoinRef(1.5)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := f.pool[i%len(f.pool)]
		d.Join(v)
		d.Leave(v)
	}
}

// BenchmarkDCDMLeave measures batched departures: 32 members leave in
// one LeaveBatch (one shared prune pass, one bound update each), then
// rejoin to restore the resident tree.
func BenchmarkDCDMLeave(b *testing.B) {
	f := newDCDMBenchFixture(b)
	d := f.prejoinFast(1.5)
	batch := f.members[:32]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.LeaveBatch(batch)
		for _, m := range batch {
			d.Join(m)
		}
	}
}

func BenchmarkDCDMLeaveRef(b *testing.B) {
	f := newDCDMBenchFixture(b)
	d := f.prejoinRef(1.5)
	batch := f.members[:32]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range batch {
			d.Leave(m)
		}
		for _, m := range batch {
			d.Join(m)
		}
	}
}

// BenchmarkDCDMChurn replays a 256-op net-zero churn script on a fresh
// engine each iteration — the whole-lifecycle cost including tree
// growth from empty.
func BenchmarkDCDMChurn(b *testing.B) {
	f := newDCDMBenchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDCDM(f.g, 0, 1.5, f.spDelay, f.spCost)
		for _, op := range f.churn {
			if op.join {
				d.Join(op.member)
			} else {
				d.Leave(op.member)
			}
		}
	}
}

func BenchmarkDCDMChurnRef(b *testing.B) {
	f := newDCDMBenchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := newDCDMRef(f.g, 0, 1.5, f.spDelay, f.spCost)
		for _, op := range f.churn {
			if op.join {
				d.Join(op.member)
			} else {
				d.Leave(op.member)
			}
		}
	}
}
