package mtree

// maxMultiset tracks the maximum of a multiset of float64 values (the
// members' unicast delays that drive DCDM's relative bound) with O(log
// m) inserts and amortised O(1) deletes below the maximum. It is a
// binary max-heap with lazy deletion: removing a value strictly below
// the top just records a pending deletion — the O(1) leave fast path —
// while removing the top itself pops in O(log m) and purges any pending
// deletions that surface. The heap is compacted in place (walking the
// array in index order, so layout stays a pure function of the
// operation sequence) once pending deletions outnumber live entries.
//
// Values are never NaN here: unicast delays are sums of non-negative
// link delays, +Inf for unreachable members, so == comparisons and heap
// ordering are well defined.
type maxMultiset struct {
	heap  []float64       // max-heap of live + pending-deleted entries
	dead  map[float64]int // value -> pending lazy-deletion count (all < heap[0])
	nDead int             // total pending deletions
	live  int             // logical multiset size
}

// Len returns the logical multiset size.
func (s *maxMultiset) Len() int { return s.live }

// Max returns the largest live value, 0 when the multiset is empty.
// heap[0] is always live (pending deletions are strictly below the
// maximum by construction and the pop path purges surfacing ones).
//
//scmplint:hotpath
func (s *maxMultiset) Max() float64 {
	if s.live == 0 {
		return 0
	}
	return s.heap[0]
}

// Add inserts x. An insert that cancels a pending deletion of the same
// value touches no heap entries at all.
//
//scmplint:hotpath
func (s *maxMultiset) Add(x float64) {
	s.live++
	if c, ok := s.dead[x]; ok && c > 0 {
		s.unmarkDead(x, c)
		return
	}
	s.heap = append(s.heap, x) //scmplint:ignore hotalloc — amortised growth; capacity is retained, steady-state churn re-uses it
	s.up(len(s.heap) - 1)
}

// Remove deletes one instance of x, which must be present. When x sits
// strictly below the current maximum the removal is a lazy O(1) note;
// only a departure of the maximum itself (the member whose unicast
// delay defines the bound) pays the O(log m) pop.
//
//scmplint:hotpath
func (s *maxMultiset) Remove(x float64) {
	s.live--
	if s.live == 0 {
		s.Reset()
		return
	}
	if x == s.heap[0] { //scmplint:ignore floatcmp — exact by construction: every Remove(x) passes the bit-identical value a prior Add(x) stored (both read the same immutable table entry), never a re-derived sum
		s.pop()
		s.purgeTop()
		return
	}
	if s.dead == nil {
		s.dead = make(map[float64]int) //scmplint:ignore hotalloc — one-time lazy init
	}
	s.dead[x]++ //scmplint:ignore hotalloc — lazy-deletion note; map buckets are recycled across the balanced Add/Remove stream
	s.nDead++
	if s.nDead > len(s.heap)/2 {
		s.compact()
	}
}

// Reset empties the multiset, retaining the heap's capacity.
func (s *maxMultiset) Reset() {
	s.heap = s.heap[:0]
	if s.nDead > 0 {
		clear(s.dead)
		s.nDead = 0
	}
	s.live = 0
}

func (s *maxMultiset) unmarkDead(x float64, c int) {
	if c == 1 {
		delete(s.dead, x)
	} else {
		s.dead[x] = c - 1
	}
	s.nDead--
}

// purgeTop pops pending-deleted values off the heap top until a live
// value (or an empty heap) surfaces.
func (s *maxMultiset) purgeTop() {
	for len(s.heap) > 0 {
		c, ok := s.dead[s.heap[0]]
		if !ok || c == 0 {
			return
		}
		s.unmarkDead(s.heap[0], c)
		s.pop()
	}
}

// compact rebuilds the heap in place keeping only live entries. The
// array is walked in index order and pending-deletion counts are
// consumed first-come, so the result is deterministic (no map
// iteration).
func (s *maxMultiset) compact() {
	w := 0
	for _, x := range s.heap {
		if c, ok := s.dead[x]; ok && c > 0 {
			s.unmarkDead(x, c)
			continue
		}
		s.heap[w] = x
		w++
	}
	s.heap = s.heap[:w]
	for i := w/2 - 1; i >= 0; i-- {
		s.down(i)
	}
}

//scmplint:hotpath
func (s *maxMultiset) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p] >= s.heap[i] {
			return
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

//scmplint:hotpath
func (s *maxMultiset) pop() {
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	s.down(0)
}

//scmplint:hotpath
func (s *maxMultiset) down(i int) {
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && s.heap[r] > s.heap[l] {
			big = r
		}
		if s.heap[i] >= s.heap[big] {
			return
		}
		s.heap[i], s.heap[big] = s.heap[big], s.heap[i]
		i = big
	}
}
