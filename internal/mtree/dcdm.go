package mtree

import (
	"fmt"
	"math"

	"scmp/internal/topology"
)

// DCDM is the paper's Delay-Constrained Dynamic Multicast tree algorithm
// (§III-D, from the authors' ICCCN'05 paper), run centrally at the
// m-router. It maintains a shared tree rooted at the m-router and
// updates it incrementally on member joins and leaves:
//
//   - The delay bound l is the longest unicast delay among current
//     members, scaled by the constraint multiplier Kappa (Kappa = 1 is
//     the paper's "tightest" level; Kappa = +Inf is "loosest").
//   - When a new member s has unicast delay above l, its shortest-delay
//     path to the m-router is added and l grows to ul(s).
//   - Otherwise, among the 2m candidate paths — the least-cost path P_lc
//     and the shortest-delay path P_sl from s to each of the m on-tree
//     routers — the cheapest path keeping ml(s) <= l is grafted.
//   - If the grafted path re-enters the tree, the loop is broken by
//     pruning the re-entered node's old upstream branch (Fig. 5(c,d)).
//   - On leave, the branch serving only the leaving member is pruned.
type DCDM struct {
	g       *topology.Graph
	root    topology.NodeID
	kappa   float64
	absMax  float64 // optional absolute QoS budget; 0 = none
	tree    *Tree
	spDelay *topology.AllPairs // P_sl tables, one per source
	spCost  *topology.AllPairs // P_lc tables, one per source
	maxUL   float64            // longest unicast delay among current members
}

// JoinResult describes how a join changed the tree, which is what SCMP
// needs to decide between a BRANCH packet (pure graft) and a TREE packet
// (restructured tree).
type JoinResult struct {
	Member       topology.NodeID
	AlreadyOn    bool              // s was an on-tree router; no new links
	Path         []topology.NodeID // grafted path, graft node first, s last
	Restructured bool              // a loop was broken (old branches pruned)
	Pruned       []topology.NodeID // routers removed while breaking loops
	// BestEffort is set when an absolute QoS budget is configured and
	// the member cannot meet it (its unicast delay already exceeds the
	// budget): the member is connected by its shortest-delay path, the
	// best any tree can do.
	BestEffort bool
}

// SetQoSBudget imposes an absolute bound on every member's multicast
// delay (the paper's "QoS constraint on maximum end-to-end delay"),
// overriding the relative Kappa bound while set. Members whose unicast
// delay exceeds the budget are admitted best-effort (flagged in
// JoinResult). A non-positive budget removes the constraint.
func (d *DCDM) SetQoSBudget(budget float64) {
	if budget <= 0 {
		d.absMax = 0
		return
	}
	d.absMax = budget
}

// QoSBudget returns the absolute budget, 0 when none is set.
func (d *DCDM) QoSBudget() float64 { return d.absMax }

// LeaveResult describes how a leave changed the tree.
type LeaveResult struct {
	Member topology.NodeID
	Pruned []topology.NodeID // routers removed, leaf upward
}

// NewDCDM builds a DCDM instance for group trees rooted at root. Kappa
// scales the delay bound (>= 1, or +Inf for no delay constraint).
// spDelay/spCost are optional precomputed all-pairs tables (pass nil to
// compute them here); sharing them across instances makes the Fig. 7
// sweep cheap.
func NewDCDM(g *topology.Graph, root topology.NodeID, kappa float64, spDelay, spCost *topology.AllPairs) *DCDM {
	if kappa < 1 {
		panic(fmt.Sprintf("mtree: DCDM kappa %g < 1 would reject every tree", kappa))
	}
	if spDelay == nil {
		spDelay = topology.NewAllPairs(g, topology.ByDelay)
	}
	if spCost == nil {
		spCost = topology.NewAllPairs(g, topology.ByCost)
	}
	return &DCDM{
		g:       g,
		root:    root,
		kappa:   kappa,
		tree:    NewTree(g, root),
		spDelay: spDelay,
		spCost:  spCost,
	}
}

// Tree returns the live tree. Callers must treat it as read-only.
func (d *DCDM) Tree() *Tree { return d.tree }

// Bound returns the current delay bound l: the absolute QoS budget when
// one is set, otherwise Kappa x the longest member unicast delay. With
// no members, no budget and finite Kappa the bound is 0.
func (d *DCDM) Bound() float64 {
	if d.absMax > 0 {
		return d.absMax
	}
	if math.IsInf(d.kappa, 1) {
		return math.Inf(1)
	}
	return d.kappa * d.maxUL
}

// UnicastDelay returns ul(v): the shortest-path delay between v and the
// m-router.
func (d *DCDM) UnicastDelay(v topology.NodeID) float64 {
	return d.spDelay.Row(d.root).Delay[v]
}

// Join adds member router s to the group and updates the tree.
func (d *DCDM) Join(s topology.NodeID) JoinResult {
	res := JoinResult{Member: s}
	ul := d.UnicastDelay(s)
	if d.tree.OnTree(s) {
		// Already a relay (or the root itself): just mark membership.
		res.AlreadyOn = true
		d.tree.SetMember(s, true)
		if ul > d.maxUL {
			d.maxUL = ul
		}
		return res
	}
	bound := d.Bound()
	var path []topology.NodeID
	if ul > bound {
		// s is farther than the bound allows: connect it by its
		// shortest-delay path — no tree can serve it faster. Under the
		// relative bound this also raises the bound; under an absolute
		// QoS budget the member is flagged best-effort.
		path = d.spDelay.Row(d.root).To(s)
		res.BestEffort = d.absMax > 0
	} else {
		path = d.bestGraftPath(s, bound)
	}
	if path == nil {
		panic(fmt.Sprintf("mtree: no graft path for %d (disconnected graph?)", s))
	}
	res.Path = path
	res.Pruned, res.Restructured = d.tree.Graft(path)
	d.tree.SetMember(s, true)
	if ul > d.maxUL {
		d.maxUL = ul
	}
	treeCheckHook(d.tree)
	return res
}

// bestGraftPath scans the 2m candidate paths (P_lc and P_sl from s to
// every on-tree router) and returns the least-cost one whose resulting
// multicast delay respects the bound, oriented graft-node-first. The
// shortest-delay path to the root is always feasible, so a path always
// exists on a connected graph.
func (d *DCDM) bestGraftPath(s topology.NodeID, bound float64) []topology.NodeID {
	type cand struct {
		cost, ml float64
		node     topology.NodeID
		sp       *topology.Paths
	}
	var best *cand
	consider := func(v topology.NodeID, sp *topology.Paths) {
		if !sp.Reachable(v) {
			return
		}
		ml := d.tree.Delay(v) + sp.Delay[v]
		if ml > bound {
			return
		}
		c := cand{cost: sp.Cost[v], ml: ml, node: v, sp: sp}
		// Strict </> ladder: cost, then multicast delay, then node id.
		// Exact float equality as a tie-break would make the choice
		// depend on summation order.
		better := best == nil
		if !better {
			switch {
			case c.cost < best.cost:
				better = true
			case best.cost < c.cost:
			case c.ml < best.ml:
				better = true
			case best.ml < c.ml:
			default:
				better = c.node < best.node
			}
		}
		if better {
			best = &c
		}
	}
	for _, v := range d.tree.Nodes() {
		consider(v, d.spCost.Row(s))  // P_lc(s, v)
		consider(v, d.spDelay.Row(s)) // P_sl(s, v)
	}
	if best == nil {
		// Guaranteed fallback: shortest-delay path to the root
		// (ml = ul(s) <= bound whenever this branch is reached).
		sp := d.spDelay.Row(d.root)
		return sp.To(s)
	}
	// best.sp paths run s -> v; reverse to graft-node-first order.
	path := best.sp.To(best.node)
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Leave removes member router s from the group, pruning the branch that
// served only s (§III-D: prune upstream until a member or a fork).
func (d *DCDM) Leave(s topology.NodeID) LeaveResult {
	res := LeaveResult{Member: s, Pruned: d.tree.Leave(s)}
	d.recomputeMaxUL()
	treeCheckHook(d.tree)
	return res
}

// DetachSubtree removes the subtree rooted at v (whose upstream tree
// link died) from the m-router's tree copy, returning the stranded
// member routers in ascending order so the caller can re-graft them
// with fresh Join calls.
func (d *DCDM) DetachSubtree(v topology.NodeID) []topology.NodeID {
	orphans := d.tree.DetachSubtree(v)
	d.recomputeMaxUL()
	treeCheckHook(d.tree)
	return orphans
}

// SetAllPairs swaps in freshly computed shortest-path tables — after a
// topology fault the old tables route through dead links, so local
// repair recomputes them with the faulted links masked (see
// topology.NewAllPairsAvoid) before re-grafting. The member delay bound
// is recomputed against the new tables; members currently unreachable
// contribute an infinite unicast delay, which relaxes the relative
// bound to +Inf for the duration of the partition (repair is
// best-effort: connectivity first, delay discipline after the heal).
func (d *DCDM) SetAllPairs(spDelay, spCost *topology.AllPairs) {
	d.spDelay = spDelay
	d.spCost = spCost
	d.recomputeMaxUL()
}

// recomputeMaxUL rebuilds the longest-member-unicast-delay bound input
// from the current member set.
func (d *DCDM) recomputeMaxUL() {
	d.maxUL = 0
	for _, m := range d.tree.Members() {
		if ul := d.UnicastDelay(m); ul > d.maxUL {
			d.maxUL = ul
		}
	}
}

// Graft splices path (which starts at an on-tree router and ends at the
// joining router) into the tree, breaking any loops the paper's way:
// when the path re-enters the tree at a node x, x adopts the path as its
// new upstream and x's old upstream branch is pruned back to a member or
// fork. It returns the routers pruned while breaking loops and whether
// any restructuring happened.
func (t *Tree) Graft(path []topology.NodeID) (pruned []topology.NodeID, restructured bool) {
	if len(path) == 0 || !t.OnTree(path[0]) {
		panic("mtree: Graft path must start on the tree")
	}
	var orphans []topology.NodeID
	prev := path[0]
	for _, x := range path[1:] {
		switch {
		case !t.OnTree(x):
			t.attach(x, prev)
		case x == t.root, t.isAncestor(x, prev):
			// Re-parenting x under prev would orphan the root or create
			// a cycle (prev lives in x's subtree). Abandon the chain
			// built so far — it dangles and is pruned below — and
			// continue along the tree from x.
			if p, ok := t.Parent(x); !ok || p != prev {
				orphans = append(orphans, prev)
				restructured = true
			}
		case func() bool { p, ok := t.Parent(x); return ok && p == prev }():
			// The path follows an existing tree edge; nothing to do.
		default:
			// Loop detected at x: adopt the new upstream, prune the old
			// branch upstream until a member or a fork survives.
			oldParent := t.parent[x]
			t.reparent(x, prev)
			pruned = append(pruned, t.PruneFrom(oldParent)...)
			restructured = true
		}
		prev = x
	}
	for _, o := range orphans {
		pruned = append(pruned, t.PruneFrom(o)...)
	}
	return pruned, restructured
}

// isAncestor reports whether a lies on v's path to the root (a == v
// counts as true).
func (t *Tree) isAncestor(a, v topology.NodeID) bool {
	for {
		if v == a {
			return true
		}
		p, ok := t.parent[v]
		if !ok {
			return false
		}
		v = p
	}
}
