package mtree

import (
	"fmt"
	"math"

	"scmp/internal/topology"
)

// DCDM is the paper's Delay-Constrained Dynamic Multicast tree algorithm
// (§III-D, from the authors' ICCCN'05 paper), run centrally at the
// m-router. It maintains a shared tree rooted at the m-router and
// updates it incrementally on member joins and leaves:
//
//   - The delay bound l is the longest unicast delay among current
//     members, scaled by the constraint multiplier Kappa (Kappa = 1 is
//     the paper's "tightest" level; Kappa = +Inf is "loosest").
//   - When a new member s has unicast delay above l, its shortest-delay
//     path to the m-router is added and l grows to ul(s).
//   - Otherwise, among the 2m candidate paths — the least-cost path P_lc
//     and the shortest-delay path P_sl from s to each of the m on-tree
//     routers — the cheapest path keeping ml(s) <= l is grafted.
//   - If the grafted path re-enters the tree, the loop is broken by
//     pruning the re-entered node's old upstream branch (Fig. 5(c,d)).
//   - On leave, the branch serving only the leaving member is pruned.
//
// This is the incremental engine: the longest member unicast delay is a
// lazy-deletion max-multiset updated in O(log m) instead of an O(m)
// rescan per leave, and the graft scan reads the tree's cached ml(v)
// (two array loads per candidate) over candidates ordered by that cache
// so the bound-infeasible tail is never touched (see bestGraftPath).
// The historical scanning implementation survives as dcdmRef (ref.go)
// behind the differential gate in equiv_test.go.
type DCDM struct {
	g       *topology.Graph
	root    topology.NodeID
	kappa   float64
	absMax  float64 // optional absolute QoS budget; 0 = none
	tree    *Tree
	spDelay *topology.AllPairs // P_sl tables, one per source
	spCost  *topology.AllPairs // P_lc tables, one per source
	ul      maxMultiset        // member unicast delays; Max() drives the relative bound

	cands []topology.NodeID // graft-scan scratch: on-tree candidates by (ml, id)
}

// JoinResult describes how a join changed the tree, which is what SCMP
// needs to decide between a BRANCH packet (pure graft) and a TREE packet
// (restructured tree).
type JoinResult struct {
	Member       topology.NodeID
	AlreadyOn    bool              // s was an on-tree router; no new links
	Path         []topology.NodeID // grafted path, graft node first, s last
	Restructured bool              // a loop was broken (old branches pruned)
	Pruned       []topology.NodeID // routers removed while breaking loops
	// BestEffort is set when an absolute QoS budget is configured and
	// the member cannot meet it (its unicast delay already exceeds the
	// budget): the member is connected by its shortest-delay path, the
	// best any tree can do.
	BestEffort bool
}

// SetQoSBudget imposes an absolute bound on every member's multicast
// delay (the paper's "QoS constraint on maximum end-to-end delay"),
// overriding the relative Kappa bound while set. Members whose unicast
// delay exceeds the budget are admitted best-effort (flagged in
// JoinResult). A non-positive budget removes the constraint.
func (d *DCDM) SetQoSBudget(budget float64) {
	if budget <= 0 {
		d.absMax = 0
		return
	}
	d.absMax = budget
}

// QoSBudget returns the absolute budget, 0 when none is set.
func (d *DCDM) QoSBudget() float64 { return d.absMax }

// LeaveResult describes how a leave changed the tree.
type LeaveResult struct {
	Member topology.NodeID
	Pruned []topology.NodeID // routers removed, leaf upward
}

// NewDCDM builds a DCDM instance for group trees rooted at root. Kappa
// scales the delay bound (>= 1, or +Inf for no delay constraint).
// spDelay/spCost are optional precomputed all-pairs tables (pass nil to
// compute them here); sharing them across instances makes the Fig. 7
// sweep cheap.
func NewDCDM(g *topology.Graph, root topology.NodeID, kappa float64, spDelay, spCost *topology.AllPairs) *DCDM {
	if kappa < 1 {
		panic(fmt.Sprintf("mtree: DCDM kappa %g < 1 would reject every tree", kappa))
	}
	if spDelay == nil {
		spDelay = topology.NewAllPairs(g, topology.ByDelay)
	}
	if spCost == nil {
		spCost = topology.NewAllPairs(g, topology.ByCost)
	}
	return &DCDM{
		g:       g,
		root:    root,
		kappa:   kappa,
		tree:    NewTree(g, root),
		spDelay: spDelay,
		spCost:  spCost,
	}
}

// Tree returns the live tree. Callers must treat it as read-only.
func (d *DCDM) Tree() *Tree { return d.tree }

// Bound returns the current delay bound l: the absolute QoS budget when
// one is set, otherwise Kappa x the longest member unicast delay. With
// no members, no budget and finite Kappa the bound is 0.
//
//scmplint:hotpath
func (d *DCDM) Bound() float64 {
	if d.absMax > 0 {
		return d.absMax
	}
	if math.IsInf(d.kappa, 1) {
		return math.Inf(1)
	}
	return d.kappa * d.ul.Max()
}

// UnicastDelay returns ul(v): the shortest-path delay between v and the
// m-router.
//
//scmplint:hotpath
func (d *DCDM) UnicastDelay(v topology.NodeID) float64 {
	return d.spDelay.Row(d.root).Delay[v] //scmplint:ignore hotalloc — Row only allocates on a lazy table's first access; steady state is a pointer load
}

// Join adds member router s to the group and updates the tree. Steady
// state it performs exactly one allocation: the grafted path slice the
// caller owns through JoinResult.
//
//scmplint:hotpath
func (d *DCDM) Join(s topology.NodeID) JoinResult {
	res := JoinResult{Member: s}
	ul := d.UnicastDelay(s)
	if d.tree.OnTree(s) {
		// Already a relay (or the root itself): just mark membership.
		res.AlreadyOn = true
		if !d.tree.IsMember(s) {
			d.tree.SetMember(s, true)
			d.ul.Add(ul)
		}
		return res
	}
	bound := d.Bound()
	var path []topology.NodeID
	if ul > bound {
		// s is farther than the bound allows: connect it by its
		// shortest-delay path — no tree can serve it faster. Under the
		// relative bound this also raises the bound; under an absolute
		// QoS budget the member is flagged best-effort.
		path = d.spDelay.Row(d.root).To(s) //scmplint:ignore hotalloc — the one budgeted alloc: the path handed to the caller
		res.BestEffort = d.absMax > 0
	} else {
		path = d.bestGraftPath(s, bound)
	}
	if path == nil {
		panic(fmt.Sprintf("mtree: no graft path for %d (disconnected graph?)", s))
	}
	res.Path = path
	res.Pruned, res.Restructured = d.tree.Graft(path)
	d.tree.SetMember(s, true)
	d.ul.Add(ul) // s was off tree, so it cannot already be a member
	dcdmCheckHook(d)
	return res
}

// bestGraftPath returns the least-cost candidate among the 2m paths
// (P_lc and P_sl from s to every on-tree router) whose resulting
// multicast delay respects the bound, oriented graft-node-first. The
// shortest-delay path to the root is always feasible, so a path always
// exists on a connected graph.
//
// Selection is the minimum under the strict total order (cost, ml,
// node id, cost-row-before-delay-row); the historical scan realised
// that order by considering candidates node-by-node with a keep-first
// tie rule, and this scan realises the same order differently, so both
// pick the identical candidate (DESIGN.md §14):
//
//   - candidates are walked in ascending cached-ml order, so once a
//     candidate's tree delay alone exceeds the bound the whole
//     remaining tail is infeasible (path delays are non-negative) and
//     the scan stops without touching those rows;
//   - the P_lc row is scanned to completion first, then the P_sl row
//     is skipped wholesale when even its cheapest entry (the lazily
//     cached row minimum) costs strictly more than the best found —
//     on a cost tie it must still be scanned, because the ladder can
//     prefer it on ml or id.
//
// Candidate evaluation is two array reads (cached ml + row entry); the
// ordering scratch is caller-owned and reused across joins.
//
//scmplint:hotpath
func (d *DCDM) bestGraftPath(s topology.NodeID, bound float64) []topology.NodeID {
	rowCost := d.spCost.Row(s)   //scmplint:ignore hotalloc — Row only allocates on a lazy table's first access; steady state is a pointer load
	rowDelay := d.spDelay.Row(s) //scmplint:ignore hotalloc — Row only allocates on a lazy table's first access; steady state is a pointer load
	cands := d.tree.Nodes()
	sorted := false
	if !math.IsInf(bound, 1) {
		// Order candidates by (cached ml, id) so the bound-infeasible
		// tail is skipped; with no bound in force the order is
		// irrelevant and the copy + sort is skipped too.
		d.cands = append(d.cands[:0], cands...) //scmplint:ignore hotalloc — reused scratch; capacity is retained across joins
		d.sortCands(d.cands)
		cands = d.cands
		sorted = true
	}
	var best graftCand
	for _, v := range cands { // P_lc(s, v)
		tml := d.tree.ml[v]
		if tml > bound {
			if sorted {
				break
			}
			continue
		}
		best.consider(v, rowCost, tml, bound)
	}
	// P_sl(s, v): skippable when even the row's cheapest path is
	// strictly costlier than the best P_lc candidate.
	if !best.have || !(rowDelay.MinCost() > best.cost) {
		for _, v := range cands {
			tml := d.tree.ml[v]
			if tml > bound {
				if sorted {
					break
				}
				continue
			}
			best.consider(v, rowDelay, tml, bound)
		}
	}
	if !best.have {
		// Guaranteed fallback: shortest-delay path to the root
		// (ml = ul(s) <= bound whenever this branch is reached).
		sp := d.spDelay.Row(d.root) //scmplint:ignore hotalloc — Row only allocates on a lazy table's first access
		return sp.To(s)             //scmplint:ignore hotalloc — the one budgeted alloc: the path handed to the caller
	}
	// best.sp paths run s -> v; reverse to graft-node-first order.
	path := best.sp.To(best.node) //scmplint:ignore hotalloc — the one budgeted alloc: the path handed to the caller
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// graftCand accumulates the best graft candidate seen so far under the
// strict (cost, ml, id) ladder. It is a plain value on bestGraftPath's
// stack — a closure here would heap-allocate its capture block on every
// join.
type graftCand struct {
	have     bool
	cost, ml float64
	node     topology.NodeID
	sp       *topology.Paths
}

// consider folds candidate v (reached via sp's path from the joining
// router) into the running best.
//
//scmplint:hotpath
func (b *graftCand) consider(v topology.NodeID, sp *topology.Paths, tml, bound float64) {
	if !sp.Reachable(v) {
		return
	}
	ml := tml + sp.Delay[v]
	if ml > bound {
		return
	}
	cost := sp.Cost[v]
	// Strict </> ladder: cost, then multicast delay, then node id.
	// Exact float equality as a tie-break would make the choice
	// depend on summation order.
	better := !b.have
	if !better {
		switch {
		case cost < b.cost:
			better = true
		case b.cost < cost:
		case ml < b.ml:
			better = true
		case b.ml < ml:
		default:
			better = v < b.node
		}
	}
	if better {
		b.have = true
		b.cost, b.ml, b.node, b.sp = cost, ml, v, sp
	}
}

// sortCands heapsorts the candidate scratch ascending by (cached ml,
// node id) — a strict total order, so the result is deterministic. The
// sort is hand-rolled to stay allocation-free on the join hot path
// (sort.Slice boxes its comparator).
func (d *DCDM) sortCands(c []topology.NodeID) {
	n := len(c)
	for i := n/2 - 1; i >= 0; i-- {
		d.siftCand(c, i, n)
	}
	for i := n - 1; i > 0; i-- {
		c[0], c[i] = c[i], c[0]
		d.siftCand(c, 0, i)
	}
}

// candLess orders candidates ascending by (cached ml, id).
func (d *DCDM) candLess(a, b topology.NodeID) bool {
	ma, mb := d.tree.ml[a], d.tree.ml[b]
	if ma != mb { //scmplint:ignore floatcmp — ordering key only: equal-bits ties fall through to the id tie-break, and candidate order never changes which candidate the (cost, ml, id) ladder selects (DESIGN.md §14)
		return ma < mb
	}
	return a < b
}

func (d *DCDM) siftCand(c []topology.NodeID, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && d.candLess(c[l], c[r]) {
			big = r
		}
		if !d.candLess(c[i], c[big]) {
			return
		}
		c[i], c[big] = c[big], c[i]
		i = big
	}
}

// Leave removes member router s from the group, pruning the branch that
// served only s (§III-D: prune upstream until a member or a fork).
// Steady state it allocates nothing: the prune walk reuses tree-owned
// scratch, and the bound update is an O(1) lazy-deletion note unless
// the departing member's unicast delay IS the current maximum (only
// then does the multiset pop, in O(log m)).
//
//scmplint:hotpath
func (d *DCDM) Leave(s topology.NodeID) LeaveResult {
	if d.tree.IsMember(s) {
		d.ul.Remove(d.UnicastDelay(s))
	}
	res := LeaveResult{Member: s, Pruned: d.tree.Leave(s)}
	dcdmCheckHook(d)
	return res
}

// LeaveBatch removes several member routers in one shared prune pass
// (see Tree.LeaveBatch): membership bits clear first, then each
// departure point prunes against the final member set. Equivalent to
// one Leave per member up to the order of the returned pruned slice,
// which is tree-owned scratch valid until the next mutation.
func (d *DCDM) LeaveBatch(members []topology.NodeID) []topology.NodeID {
	for _, s := range members {
		if d.tree.IsMember(s) {
			d.ul.Remove(d.UnicastDelay(s))
		}
	}
	pruned := d.tree.LeaveBatch(members)
	dcdmCheckHook(d)
	return pruned
}

// DetachSubtree removes the subtree rooted at v (whose upstream tree
// link died) from the m-router's tree copy, returning the stranded
// member routers in ascending order so the caller can re-graft them
// with fresh Join calls. Each stranded member's unicast delay leaves
// the bound multiset individually — O(k log m) for k orphans, not an
// O(m) rescan.
func (d *DCDM) DetachSubtree(v topology.NodeID) []topology.NodeID {
	orphans := d.tree.DetachSubtree(v)
	for _, m := range orphans {
		d.ul.Remove(d.UnicastDelay(m))
	}
	dcdmCheckHook(d)
	return orphans
}

// SetAllPairs swaps in freshly computed shortest-path tables — after a
// topology fault the old tables route through dead links, so local
// repair recomputes them with the faulted links masked (see
// topology.NewAllPairsAvoid) before re-grafting. The member delay bound
// is rebuilt against the new tables (every member's unicast delay
// changed, so this is the one remaining full rescan); members currently
// unreachable contribute an infinite unicast delay, which relaxes the
// relative bound to +Inf for the duration of the partition (repair is
// best-effort: connectivity first, delay discipline after the heal).
func (d *DCDM) SetAllPairs(spDelay, spCost *topology.AllPairs) {
	d.spDelay = spDelay
	d.spCost = spCost
	d.ul.Reset()
	for _, m := range d.tree.Members() {
		d.ul.Add(d.UnicastDelay(m))
	}
	dcdmCheckHook(d)
}

// recomputeMaxUL rescans the member set for the longest unicast delay —
// the historical O(m) bound computation, retained only as the
// invariants-build cross-check against the incremental multiset (see
// dcdmCheckHook in hooks_on.go).
func (d *DCDM) recomputeMaxUL() float64 {
	max := 0.0
	for _, m := range d.tree.Members() {
		if ul := d.UnicastDelay(m); ul > max {
			max = ul
		}
	}
	return max
}

// Graft splices path (which starts at an on-tree router and ends at the
// joining router) into the tree, breaking any loops the paper's way:
// when the path re-enters the tree at a node x, x adopts the path as its
// new upstream and x's old upstream branch is pruned back to a member or
// fork. It returns the routers pruned while breaking loops and whether
// any restructuring happened.
//
//scmplint:hotpath
func (t *Tree) Graft(path []topology.NodeID) (pruned []topology.NodeID, restructured bool) {
	if len(path) == 0 || !t.OnTree(path[0]) {
		panic("mtree: Graft path must start on the tree")
	}
	var orphans []topology.NodeID
	prev := path[0]
	for _, x := range path[1:] {
		if !t.OnTree(x) {
			t.attach(x, prev)
		} else if x == t.root || t.isAncestor(x, prev) {
			// Re-parenting x under prev would orphan the root or create
			// a cycle (prev lives in x's subtree). Abandon the chain
			// built so far — it dangles and is pruned below — and
			// continue along the tree from x.
			if t.parent[x] != prev {
				orphans = append(orphans, prev) //scmplint:ignore hotalloc — restructuring path only; clean steady-state grafts never reach it
				restructured = true
			}
		} else if t.parent[x] == prev {
			// The path follows an existing tree edge; nothing to do.
		} else {
			// Loop detected at x: adopt the new upstream, prune the old
			// branch upstream until a member or a fork survives.
			oldParent := t.parent[x]
			t.reparent(x, prev)
			pruned = append(pruned, t.PruneFrom(oldParent)...) //scmplint:ignore hotalloc — restructuring path only; clean steady-state grafts never reach it
			restructured = true
		}
		prev = x
	}
	for _, o := range orphans {
		pruned = append(pruned, t.PruneFrom(o)...) //scmplint:ignore hotalloc — restructuring path only
	}
	return pruned, restructured
}

// isAncestor reports whether a lies on v's path to the root (a == v
// counts as true).
//
//scmplint:hotpath
func (t *Tree) isAncestor(a, v topology.NodeID) bool {
	for {
		if v == a {
			return true
		}
		p := t.parent[v]
		if p < 0 {
			return false
		}
		v = p
	}
}
