// Package mtree implements rooted multicast trees over a topology graph
// and the three tree-construction algorithms compared in the paper's
// Fig. 7: DCDM (the authors' Delay-Constrained Dynamic Multicast
// heuristic, used by SCMP), KMB (the Kou–Markowsky–Berman Steiner-tree
// approximation, the min-cost baseline) and SPT (shortest-delay-path
// tree, the DVMRP/MOSPF/CBT baseline).
//
// Tree is an incremental engine: all per-node state lives in dense
// slices indexed by NodeID (parent array, sorted child lists, a
// membership bitset) and the multicast delay ml(v) of every on-tree
// node is maintained as a cache that mutations extend or rewrite, so
// OnTree/IsMember/Delay are O(1) and the sorted Nodes/Members views are
// rebuilt at most once per mutation. The historical map-backed
// implementation survives as TreeRef (ref.go) and backs the
// differential equivalence gate in equiv_test.go.
package mtree

import (
	"fmt"
	"math"
	"math/bits"
	"slices"

	"scmp/internal/topology"
)

// Parent-array sentinels. On-tree nodes have parent >= 0, except the
// root which carries noParent; everything else is offTree.
const (
	offTree  topology.NodeID = -2
	noParent topology.NodeID = -1
)

// Tree is a multicast tree rooted at the m-router. Every on-tree node
// except the root has exactly one upstream (parent); the set of member
// nodes marks routers whose subnets contain group members. Non-member
// relay nodes may appear anywhere except as leaves (the algorithms prune
// non-member leaves).
//
// Accessor contract: Children, Nodes, Members and the slices returned
// by PruneFrom/Leave/LeaveBatch are views into state the tree owns and
// rebuilds in place — they are valid until the next mutation and must
// not be modified or retained by the caller. (Every pre-existing caller
// either iterates immediately or copies; packet.BuildSubtree copies.)
type Tree struct {
	g    *topology.Graph
	root topology.NodeID

	parent   []topology.NodeID   // offTree / noParent sentinels, see above
	children [][]topology.NodeID // sorted child lists; capacity retained across detach
	member   []uint64            // membership bitset
	ml       []float64           // cached multicast delay root->v (top-down summation)

	size    int // on-tree node count, root included
	nMember int

	nodesView    []topology.NodeID // sorted on-tree nodes, rebuilt when stale
	nodesStale   bool
	membersView  []topology.NodeID // sorted members, rebuilt when stale
	membersStale bool

	pruneScratch []topology.NodeID // backing for PruneFrom/Leave results
	walkScratch  []topology.NodeID // DFS stack for reparent/DetachSubtree
}

// NewTree returns a tree containing only the root (the m-router).
func NewTree(g *topology.Graph, root topology.NodeID) *Tree {
	if root < 0 || int(root) >= g.N() {
		panic(fmt.Sprintf("mtree: root %d out of range", root))
	}
	n := g.N()
	t := &Tree{
		g:            g,
		root:         root,
		parent:       make([]topology.NodeID, n),
		children:     make([][]topology.NodeID, n),
		member:       make([]uint64, (n+63)/64),
		ml:           make([]float64, n),
		size:         1,
		nodesStale:   true,
		membersStale: true,
	}
	for i := range t.parent {
		t.parent[i] = offTree
		t.ml[i] = math.Inf(1)
	}
	t.parent[root] = noParent
	t.ml[root] = 0
	return t
}

// Root returns the tree root (the m-router).
func (t *Tree) Root() topology.NodeID { return t.root }

// Graph returns the underlying topology.
func (t *Tree) Graph() *topology.Graph { return t.g }

// OnTree reports whether v is currently on the tree.
func (t *Tree) OnTree(v topology.NodeID) bool {
	return v >= 0 && int(v) < len(t.parent) && t.parent[v] != offTree
}

// Parent returns v's upstream router; ok is false for the root and for
// off-tree nodes.
func (t *Tree) Parent(v topology.NodeID) (topology.NodeID, bool) {
	if v < 0 || int(v) >= len(t.parent) || t.parent[v] < 0 {
		return 0, false
	}
	return t.parent[v], true
}

// Children returns v's downstream routers, sorted. The slice is the
// tree's own sorted child list — valid until the next mutation.
func (t *Tree) Children(v topology.NodeID) []topology.NodeID {
	if v < 0 || int(v) >= len(t.children) {
		return nil
	}
	return t.children[v]
}

// IsMember reports whether v is marked as a member router.
func (t *Tree) IsMember(v topology.NodeID) bool {
	if v < 0 || int(v) >= len(t.parent) {
		return false
	}
	return t.member[v>>6]&(1<<(uint(v)&63)) != 0
}

// SetMember marks or unmarks v as a member router. v must be on the tree
// to be marked.
//
//scmplint:hotpath
func (t *Tree) SetMember(v topology.NodeID, member bool) {
	if member {
		if !t.OnTree(v) {
			panic(fmt.Sprintf("mtree: SetMember(%d) off tree", v))
		}
		if !t.IsMember(v) {
			t.member[v>>6] |= 1 << (uint(v) & 63)
			t.nMember++
			t.membersStale = true
		}
	} else if t.IsMember(v) {
		t.member[v>>6] &^= 1 << (uint(v) & 63)
		t.nMember--
		t.membersStale = true
	}
}

// Members returns the member routers, sorted. The slice is a shared
// view rebuilt in place — valid until the next membership change.
func (t *Tree) Members() []topology.NodeID {
	if t.membersStale {
		t.membersView = t.membersView[:0]
		for wi, w := range t.member {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				t.membersView = append(t.membersView, topology.NodeID(wi<<6+b))
			}
		}
		t.membersStale = false
	}
	return t.membersView
}

// MemberCount returns the number of member routers in O(1).
func (t *Tree) MemberCount() int { return t.nMember }

// Nodes returns every on-tree node, sorted, root included. The slice is
// a shared view rebuilt in place — valid until the next mutation.
func (t *Tree) Nodes() []topology.NodeID {
	if t.nodesStale {
		t.nodesView = t.nodesView[:0]
		for v, p := range t.parent {
			if p != offTree {
				t.nodesView = append(t.nodesView, topology.NodeID(v))
			}
		}
		t.nodesStale = false
	}
	return t.nodesView
}

// Size returns the number of on-tree nodes.
func (t *Tree) Size() int { return t.size }

// insertChild adds c to p's sorted child list, keeping it sorted.
//
//scmplint:hotpath
func (t *Tree) insertChild(p, c topology.NodeID) {
	kids := t.children[p]
	i, _ := slices.BinarySearch(kids, c)
	kids = append(kids, 0) //scmplint:ignore hotalloc — amortised growth; capacity is retained across detach, so steady-state churn re-uses it
	copy(kids[i+1:], kids[i:])
	kids[i] = c
	t.children[p] = kids
}

// removeChild deletes c from p's sorted child list, keeping capacity.
//
//scmplint:hotpath
func (t *Tree) removeChild(p, c topology.NodeID) {
	kids := t.children[p]
	i, ok := slices.BinarySearch(kids, c)
	if !ok {
		return
	}
	copy(kids[i:], kids[i+1:])
	t.children[p] = kids[:len(kids)-1]
}

// attach links child under parent; both must be adjacent in the graph
// and child must not already be on the tree. The child's cached
// multicast delay extends the parent's — the incremental half of the
// delay-cache invariant (DESIGN.md §14).
//
//scmplint:hotpath
func (t *Tree) attach(child, parent topology.NodeID) {
	if t.OnTree(child) {
		panic(fmt.Sprintf("mtree: attach(%d) already on tree", child))
	}
	if !t.OnTree(parent) {
		panic(fmt.Sprintf("mtree: attach under off-tree parent %d", parent))
	}
	l, ok := t.g.Edge(child, parent)
	if !ok {
		panic(fmt.Sprintf("mtree: attach %d under non-adjacent %d", child, parent))
	}
	t.parent[child] = parent
	t.insertChild(parent, child)
	t.ml[child] = t.ml[parent] + l.Delay
	t.size++
	t.nodesStale = true
}

// detach unlinks v from its parent, leaving v's subtree hanging off v.
//
//scmplint:hotpath
func (t *Tree) detach(v topology.NodeID) {
	p := t.parent[v]
	if p < 0 {
		return
	}
	t.parent[v] = offTree
	t.removeChild(p, v)
	t.size--
	t.nodesStale = true
}

// reparent moves on-tree node v (and its whole subtree) under newParent.
func (t *Tree) reparent(v, newParent topology.NodeID) {
	if !t.OnTree(v) || v == t.root {
		panic(fmt.Sprintf("mtree: reparent(%d) invalid", v))
	}
	l, ok := t.g.Edge(v, newParent)
	if !ok {
		panic(fmt.Sprintf("mtree: reparent %d under non-adjacent %d", v, newParent))
	}
	t.detach(v)
	t.parent[v] = newParent
	t.insertChild(newParent, v)
	t.size++
	t.nodesStale = true
	t.refreshSubtreeDelay(v, t.ml[newParent]+l.Delay)
}

// refreshSubtreeDelay rewrites the cached multicast delay of v and its
// whole subtree after v acquired a new upstream. Each node's delay is
// its parent's cached value plus the connecting link's delay — the same
// left-to-right summation a fresh root-down walk performs — so cached
// values stay bit-identical to recomputation. (A numeric delta applied
// subtree-wide would drift: float addition is not associative.)
func (t *Tree) refreshSubtreeDelay(v topology.NodeID, dv float64) {
	t.ml[v] = dv
	stack := append(t.walkScratch[:0], v)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.children[x] {
			l, _ := t.g.Edge(c, x)
			t.ml[c] = t.ml[x] + l.Delay
			stack = append(stack, c) //scmplint:ignore hotalloc — walkScratch-backed; growth is retained via the storeback below
		}
	}
	t.walkScratch = stack[:0]
}

// PruneFrom removes v if it is a removable leaf (non-member, childless,
// not root), then walks upstream removing newly exposed removable leaves;
// this is the hop-by-hop PRUNE of §III-C and the leave handling of
// §III-D. It returns the nodes removed, bottom-up; the slice is scratch
// the tree owns, valid until the next mutation.
//
//scmplint:hotpath
func (t *Tree) PruneFrom(v topology.NodeID) []topology.NodeID {
	removed := t.pruneScratch[:0]
	for v != t.root && t.OnTree(v) && !t.IsMember(v) && len(t.children[v]) == 0 {
		p := t.parent[v]
		t.detach(v)
		removed = append(removed, v) //scmplint:ignore hotalloc — scratch append; capacity is retained across calls
		v = p
	}
	t.pruneScratch = removed
	if len(removed) == 0 {
		return nil
	}
	return removed
}

// Leave unmarks v as a member and prunes any branch it no longer
// justifies. It returns the routers removed from the tree (tree-owned
// scratch, valid until the next mutation).
//
//scmplint:hotpath
func (t *Tree) Leave(v topology.NodeID) []topology.NodeID {
	t.SetMember(v, false)
	return t.PruneFrom(v)
}

// LeaveBatch unmarks several members, then prunes once: every
// membership bit is cleared before the shared prune pass walks each
// departure point, so a relay kept alive solely by another member of
// the same batch is removed in this pass rather than surviving until
// that member's own prune reaches it. The final tree and removed-router
// set equal those of sequential Leave calls; only the removal order may
// differ. The returned slice is tree-owned scratch, valid until the
// next mutation.
func (t *Tree) LeaveBatch(vs []topology.NodeID) []topology.NodeID {
	for _, v := range vs {
		t.SetMember(v, false)
	}
	removed := t.pruneScratch[:0]
	for _, v := range vs {
		for v != t.root && t.OnTree(v) && !t.IsMember(v) && len(t.children[v]) == 0 {
			p := t.parent[v]
			t.detach(v)
			removed = append(removed, v)
			v = p
		}
	}
	t.pruneScratch = removed
	if len(removed) == 0 {
		return nil
	}
	return removed
}

// DetachSubtree removes v and its entire subtree from the tree — the
// local-repair primitive for a subtree that lost its upstream link. The
// relay chain above v that served only this subtree is pruned back to a
// member or a fork (as if the subtree had issued a PRUNE). It returns
// the member routers that were stranded, in ascending order, so the
// caller can re-graft them. Detaching an off-tree node is a no-op;
// detaching the root is nonsensical and panics.
func (t *Tree) DetachSubtree(v topology.NodeID) []topology.NodeID {
	if v == t.root {
		panic("mtree: DetachSubtree of the root")
	}
	if !t.OnTree(v) {
		return nil
	}
	p := t.parent[v]
	t.detach(v)
	var orphans []topology.NodeID
	stack := append(t.walkScratch[:0], v)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.IsMember(x) {
			orphans = append(orphans, x)
			t.SetMember(x, false)
		}
		stack = append(stack, t.children[x]...)
		t.children[x] = t.children[x][:0]
		if x != v {
			t.parent[x] = offTree
			t.size--
		}
	}
	t.walkScratch = stack[:0]
	t.nodesStale = true
	t.PruneFrom(p)
	slices.Sort(orphans)
	return orphans
}

// Cost returns the tree cost: the sum of link costs over tree edges,
// accumulated in ascending child-id order (deterministic).
func (t *Tree) Cost() float64 {
	sum := 0.0
	for v, p := range t.parent {
		if p < 0 {
			continue
		}
		l, ok := t.g.Edge(topology.NodeID(v), p)
		if !ok {
			panic("mtree: tree edge not in graph")
		}
		sum += l.Cost
	}
	return sum
}

// Delay returns the multicast delay ml(v): the delay of the unique tree
// path from the root to v, read from the incremental cache. It returns
// +Inf for off-tree nodes. The cached value is the top-down (root
// toward v) left-to-right summation; see DESIGN.md §14 for why that
// order is the canonical one.
//
//scmplint:hotpath
func (t *Tree) Delay(v topology.NodeID) float64 {
	if !t.OnTree(v) {
		return math.Inf(1)
	}
	return t.ml[v]
}

// TreeDelay returns the longest multicast delay over all members (the
// paper's "tree delay"). It is 0 for a tree with no members.
func (t *Tree) TreeDelay() float64 {
	max := 0.0
	for wi, w := range t.member {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			if d := t.ml[wi<<6+b]; d > max {
				max = d
			}
		}
	}
	return max
}

// PathToRoot returns the tree path v -> root inclusive, or nil when v is
// off tree.
func (t *Tree) PathToRoot(v topology.NodeID) []topology.NodeID {
	if !t.OnTree(v) {
		return nil
	}
	path := []topology.NodeID{v}
	for v != t.root {
		v = t.parent[v]
		path = append(path, v)
	}
	return path
}

// Edges returns the set of (child, parent) tree edges, for visualisation.
func (t *Tree) Edges() map[[2]topology.NodeID]bool {
	out := make(map[[2]topology.NodeID]bool, t.size-1)
	for v, p := range t.parent {
		if p >= 0 {
			out[[2]topology.NodeID{topology.NodeID(v), p}] = true
		}
	}
	return out
}

// Validate checks the structural invariants: every non-root node has a
// parent chain reaching the root with no cycles, every tree edge exists
// in the graph, child lists mirror the parent array, every member is on
// the tree, every leaf is a member or the root, and the size/member
// counters and the ml delay cache agree with recomputation. It must
// return errors (not hang) on the deliberately corrupt trees Rebuild
// can produce, so chain walks are step-capped.
func (t *Tree) Validate() error {
	n := len(t.parent)
	for vi, p := range t.parent {
		v := topology.NodeID(vi)
		if p < 0 {
			continue
		}
		if _, ok := t.g.Edge(v, p); !ok {
			return fmt.Errorf("mtree: edge %d->%d not in graph", v, p)
		}
		if _, ok := slices.BinarySearch(t.children[p], v); !ok {
			return fmt.Errorf("mtree: child list missing %d under %d", v, p)
		}
		cur, steps := v, 0
		for cur != t.root {
			next := t.parent[cur]
			if next < 0 {
				return fmt.Errorf("mtree: %d's chain dead-ends at %d", v, cur)
			}
			if steps++; steps > n {
				return fmt.Errorf("mtree: cycle through %d", next)
			}
			cur = next
		}
	}
	size := 0
	for pi, kids := range t.children {
		p := topology.NodeID(pi)
		if t.parent[p] != offTree {
			size++
		}
		if !slices.IsSorted(kids) {
			return fmt.Errorf("mtree: child list of %d unsorted", p)
		}
		for _, c := range kids {
			if c < 0 || int(c) >= n || t.parent[c] != p {
				return fmt.Errorf("mtree: child list claims %d under %d", c, p)
			}
		}
	}
	if size != t.size {
		return fmt.Errorf("mtree: size counter %d, counted %d", t.size, size)
	}
	members := 0
	for _, m := range t.Members() {
		members++
		if !t.OnTree(m) {
			return fmt.Errorf("mtree: member %d off tree", m)
		}
	}
	if members != t.nMember {
		return fmt.Errorf("mtree: member counter %d, counted %d", t.nMember, members)
	}
	for vi, p := range t.parent {
		v := topology.NodeID(vi)
		if p >= 0 && len(t.children[v]) == 0 && !t.IsMember(v) {
			return fmt.Errorf("mtree: non-member leaf %d", v)
		}
	}
	// Delay cache: structure is a rooted tree at this point, so the
	// parent-extension identity must hold exactly at every edge.
	if t.ml[t.root] != 0 {
		return fmt.Errorf("mtree: root delay cache %g, want 0", t.ml[t.root])
	}
	for vi, p := range t.parent {
		if p < 0 {
			continue
		}
		v := topology.NodeID(vi)
		l, _ := t.g.Edge(v, p)
		if want := t.ml[p] + l.Delay; t.ml[v] != want { //scmplint:ignore floatcmp — exactness IS the invariant: the cache only ever stores this same parent-extension sum, so any bit difference means a stale entry
			return fmt.Errorf("mtree: stale delay cache at %d: %g, want %g", v, t.ml[v], want)
		}
	}
	return nil
}
