// Package mtree implements rooted multicast trees over a topology graph
// and the three tree-construction algorithms compared in the paper's
// Fig. 7: DCDM (the authors' Delay-Constrained Dynamic Multicast
// heuristic, used by SCMP), KMB (the Kou–Markowsky–Berman Steiner-tree
// approximation, the min-cost baseline) and SPT (shortest-delay-path
// tree, the DVMRP/MOSPF/CBT baseline).
package mtree

import (
	"fmt"
	"math"
	"sort"

	"scmp/internal/topology"
)

// Tree is a multicast tree rooted at the m-router. Every on-tree node
// except the root has exactly one upstream (parent); the set of member
// nodes marks routers whose subnets contain group members. Non-member
// relay nodes may appear anywhere except as leaves (the algorithms prune
// non-member leaves).
type Tree struct {
	g        *topology.Graph
	root     topology.NodeID
	parent   map[topology.NodeID]topology.NodeID
	children map[topology.NodeID]map[topology.NodeID]bool
	members  map[topology.NodeID]bool
}

// NewTree returns a tree containing only the root (the m-router).
func NewTree(g *topology.Graph, root topology.NodeID) *Tree {
	if root < 0 || int(root) >= g.N() {
		panic(fmt.Sprintf("mtree: root %d out of range", root))
	}
	return &Tree{
		g:        g,
		root:     root,
		parent:   make(map[topology.NodeID]topology.NodeID),
		children: make(map[topology.NodeID]map[topology.NodeID]bool),
		members:  make(map[topology.NodeID]bool),
	}
}

// Root returns the tree root (the m-router).
func (t *Tree) Root() topology.NodeID { return t.root }

// Graph returns the underlying topology.
func (t *Tree) Graph() *topology.Graph { return t.g }

// OnTree reports whether v is currently on the tree.
func (t *Tree) OnTree(v topology.NodeID) bool {
	if v == t.root {
		return true
	}
	_, ok := t.parent[v]
	return ok
}

// Parent returns v's upstream router; ok is false for the root and for
// off-tree nodes.
func (t *Tree) Parent(v topology.NodeID) (topology.NodeID, bool) {
	p, ok := t.parent[v]
	return p, ok
}

// Children returns v's downstream routers, sorted for determinism.
func (t *Tree) Children(v topology.NodeID) []topology.NodeID {
	set := t.children[v]
	out := make([]topology.NodeID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMember reports whether v is marked as a member router.
func (t *Tree) IsMember(v topology.NodeID) bool { return t.members[v] }

// SetMember marks or unmarks v as a member router. v must be on the tree
// to be marked.
func (t *Tree) SetMember(v topology.NodeID, member bool) {
	if member {
		if !t.OnTree(v) {
			panic(fmt.Sprintf("mtree: SetMember(%d) off tree", v))
		}
		t.members[v] = true
	} else {
		delete(t.members, v)
	}
}

// Members returns the member routers, sorted.
func (t *Tree) Members() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(t.members))
	for v := range t.members {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nodes returns every on-tree node, sorted, root included.
func (t *Tree) Nodes() []topology.NodeID {
	out := []topology.NodeID{t.root}
	for v := range t.parent {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of on-tree nodes.
func (t *Tree) Size() int { return len(t.parent) + 1 }

// attach links child under parent; both must be adjacent in the graph
// and child must not already be on the tree.
func (t *Tree) attach(child, parent topology.NodeID) {
	if t.OnTree(child) {
		panic(fmt.Sprintf("mtree: attach(%d) already on tree", child))
	}
	if !t.OnTree(parent) {
		panic(fmt.Sprintf("mtree: attach under off-tree parent %d", parent))
	}
	if _, ok := t.g.Edge(child, parent); !ok {
		panic(fmt.Sprintf("mtree: attach %d under non-adjacent %d", child, parent))
	}
	t.parent[child] = parent
	if t.children[parent] == nil {
		t.children[parent] = make(map[topology.NodeID]bool)
	}
	t.children[parent][child] = true
}

// detach unlinks v from its parent, leaving v's subtree hanging off v.
func (t *Tree) detach(v topology.NodeID) {
	p, ok := t.parent[v]
	if !ok {
		return
	}
	delete(t.parent, v)
	delete(t.children[p], v)
	if len(t.children[p]) == 0 {
		delete(t.children, p)
	}
}

// reparent moves on-tree node v (and its whole subtree) under newParent.
func (t *Tree) reparent(v, newParent topology.NodeID) {
	if !t.OnTree(v) || v == t.root {
		panic(fmt.Sprintf("mtree: reparent(%d) invalid", v))
	}
	if _, ok := t.g.Edge(v, newParent); !ok {
		panic(fmt.Sprintf("mtree: reparent %d under non-adjacent %d", v, newParent))
	}
	t.detach(v)
	t.parent[v] = newParent
	if t.children[newParent] == nil {
		t.children[newParent] = make(map[topology.NodeID]bool)
	}
	t.children[newParent][v] = true
}

// PruneFrom removes v if it is a removable leaf (non-member, childless,
// not root), then walks upstream removing newly exposed removable leaves;
// this is the hop-by-hop PRUNE of §III-C and the leave handling of
// §III-D. It returns the nodes removed, bottom-up.
func (t *Tree) PruneFrom(v topology.NodeID) []topology.NodeID {
	var removed []topology.NodeID
	for v != t.root && t.OnTree(v) && !t.members[v] && len(t.children[v]) == 0 {
		p := t.parent[v]
		t.detach(v)
		removed = append(removed, v)
		v = p
	}
	return removed
}

// Leave unmarks v as a member and prunes any branch it no longer
// justifies. It returns the routers removed from the tree.
func (t *Tree) Leave(v topology.NodeID) []topology.NodeID {
	delete(t.members, v)
	return t.PruneFrom(v)
}

// DetachSubtree removes v and its entire subtree from the tree — the
// local-repair primitive for a subtree that lost its upstream link. The
// relay chain above v that served only this subtree is pruned back to a
// member or a fork (as if the subtree had issued a PRUNE). It returns
// the member routers that were stranded, in ascending order, so the
// caller can re-graft them. Detaching an off-tree node is a no-op;
// detaching the root is nonsensical and panics.
func (t *Tree) DetachSubtree(v topology.NodeID) []topology.NodeID {
	if v == t.root {
		panic("mtree: DetachSubtree of the root")
	}
	if !t.OnTree(v) {
		return nil
	}
	p := t.parent[v]
	t.detach(v)
	var orphans []topology.NodeID
	stack := []topology.NodeID{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.members[x] {
			orphans = append(orphans, x)
			delete(t.members, x)
		}
		stack = append(stack, topology.SortedNodes(t.children[x])...)
		delete(t.children, x)
		delete(t.parent, x)
	}
	t.PruneFrom(p)
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	return orphans
}

// Cost returns the tree cost: the sum of link costs over tree edges.
func (t *Tree) Cost() float64 {
	sum := 0.0
	for v, p := range t.parent {
		l, ok := t.g.Edge(v, p)
		if !ok {
			panic("mtree: tree edge not in graph")
		}
		sum += l.Cost
	}
	return sum
}

// Delay returns the multicast delay ml(v): the delay of the unique tree
// path from the root to v. It returns +Inf for off-tree nodes.
func (t *Tree) Delay(v topology.NodeID) float64 {
	if !t.OnTree(v) {
		return math.Inf(1)
	}
	sum := 0.0
	for v != t.root {
		p := t.parent[v]
		l, _ := t.g.Edge(v, p)
		sum += l.Delay
		v = p
	}
	return sum
}

// TreeDelay returns the longest multicast delay over all members (the
// paper's "tree delay"). It is 0 for a tree with no members.
func (t *Tree) TreeDelay() float64 {
	max := 0.0
	for v := range t.members {
		if d := t.Delay(v); d > max {
			max = d
		}
	}
	return max
}

// PathToRoot returns the tree path v -> root inclusive, or nil when v is
// off tree.
func (t *Tree) PathToRoot(v topology.NodeID) []topology.NodeID {
	if !t.OnTree(v) {
		return nil
	}
	path := []topology.NodeID{v}
	for v != t.root {
		v = t.parent[v]
		path = append(path, v)
	}
	return path
}

// Edges returns the set of (child, parent) tree edges, for visualisation.
func (t *Tree) Edges() map[[2]topology.NodeID]bool {
	out := make(map[[2]topology.NodeID]bool, len(t.parent))
	for v, p := range t.parent {
		out[[2]topology.NodeID{v, p}] = true
	}
	return out
}

// Validate checks the structural invariants: every non-root node has a
// parent chain reaching the root with no cycles, every tree edge exists
// in the graph, children maps mirror parent maps, every member is on the
// tree, and every leaf is a member or the root.
func (t *Tree) Validate() error {
	for v, p := range t.parent {
		if _, ok := t.g.Edge(v, p); !ok {
			return fmt.Errorf("mtree: edge %d->%d not in graph", v, p)
		}
		if t.children[p] == nil || !t.children[p][v] {
			return fmt.Errorf("mtree: child map missing %d under %d", v, p)
		}
		seen := map[topology.NodeID]bool{v: true}
		cur := v
		for cur != t.root {
			next, ok := t.parent[cur]
			if !ok {
				return fmt.Errorf("mtree: %d's chain dead-ends at %d", v, cur)
			}
			if seen[next] {
				return fmt.Errorf("mtree: cycle through %d", next)
			}
			seen[next] = true
			cur = next
		}
	}
	for p, kids := range t.children {
		for c := range kids {
			if t.parent[c] != p {
				return fmt.Errorf("mtree: children map claims %d under %d", c, p)
			}
		}
	}
	for m := range t.members {
		if !t.OnTree(m) {
			return fmt.Errorf("mtree: member %d off tree", m)
		}
	}
	for v := range t.parent {
		if len(t.children[v]) == 0 && !t.members[v] {
			return fmt.Errorf("mtree: non-member leaf %d", v)
		}
	}
	return nil
}
